package pinatubo

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestOptionsExplicitDefaultEquivalence pins that spelling the defaults
// out as options changes nothing: a bare call and one passing
// WithArbiter(ArbFIFO) + WithContext(Background) produce identical
// reports and schedules.
func TestOptionsExplicitDefaultEquivalence(t *testing.T) {
	cfg := Config{Tech: PCM, Geometry: spreadGeometry()}
	bare, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spelled, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := bare.Plan(OpOr, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spelled.Plan(OpOr, 4, 0, WithArbiter(ArbFIFO), WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Plan bare %+v != with explicit defaults %+v", a, b)
	}

	opsA := buildBatchOps(t, bare, 4096)
	opsB := buildBatchOps(t, spelled, 4096)
	ra, err := bare.Batch(opsA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := spelled.Batch(opsB, WithArbiter(ArbFIFO), WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	// Results reference distinct vectors, but the schedule numbers
	// must be identical.
	if ra.Makespan != rb.Makespan || ra.Sequential != rb.Sequential ||
		ra.Shards != rb.Shards || ra.Arb != rb.Arb {
		t.Errorf("Batch bare %+v != with explicit defaults %+v", ra, rb)
	}
}

// TestOptionsDefaults checks the zero-option call is the legacy default:
// FIFO arbitration, background context, and WithContext(nil) restored to
// the background context.
func TestOptionsDefaults(t *testing.T) {
	o, err := resolveOpts(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.arb != ArbFIFO {
		t.Errorf("default arbiter %v, want fifo", o.arb)
	}
	if o.ctx == nil {
		t.Error("default context is nil")
	}
	if o.progCache != nil {
		t.Error("default call carries a program-cache override")
	}
	o, err = resolveOpts([]Option{WithContext(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if o.ctx == nil {
		t.Error("WithContext(nil) left a nil context")
	}
}

// TestNilOptionRejected pins the nil-Option contract: a nil in the option
// list is a caller bug (typically an uninitialised Option variable) and
// every options-taking entry point must reject it with a clear error
// instead of panicking or silently skipping it.
func TestNilOptionRejected(t *testing.T) {
	if _, err := resolveOpts([]Option{WithArbiter(ArbFIFO), nil}); err == nil {
		t.Fatal("resolveOpts accepted a nil option")
	} else if want := "option 1 of 2"; !strings.Contains(err.Error(), want) {
		t.Errorf("nil-option error %q does not locate the option (%q)", err, want)
	}

	sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := sys.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Stats()
	if _, err := sys.Apply(OpNot, dst, []*BitVector{a}, nil); err == nil {
		t.Error("Apply accepted a nil option")
	}
	if _, err := sys.Batch([]BatchOp{{Op: OpNot, Dst: dst, Srcs: []*BitVector{a}}}, nil); err == nil {
		t.Error("Batch accepted a nil option")
	}
	if _, err := sys.Plan(OpOr, 4, 0, nil); err == nil {
		t.Error("Plan accepted a nil option")
	}
	if _, err := sys.NewBatchBuilder().Start(nil); err == nil {
		t.Error("BatchBuilder.Start accepted a nil option")
	}
	if after := sys.Stats(); !reflect.DeepEqual(before, after) {
		t.Errorf("nil-option rejection touched the ledger: %+v -> %+v", before, after)
	}
}

// TestPlanCancellation checks a cancelled context aborts Plan with the
// context's error and, since planning is fully sandboxed, leaves the
// live system's ledger untouched.
func TestPlanCancellation(t *testing.T) {
	sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Stats()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Plan(OpOr, 8, 0, WithContext(ctx)); err != context.Canceled {
		t.Fatalf("Plan with cancelled ctx: err=%v, want context.Canceled", err)
	}
	if after := sys.Stats(); !reflect.DeepEqual(before, after) {
		t.Errorf("cancelled Plan touched the ledger: %+v -> %+v", before, after)
	}
}

// TestBatchContextCancelledUpfront checks Batch rejects an
// already-cancelled context before touching any operand.
func TestBatchContextCancelledUpfront(t *testing.T) {
	sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	ops := buildBatchOps(t, sys, 4096)
	twin, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	buildBatchOps(t, twin, 4096)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Batch(ops, WithContext(ctx)); err != context.Canceled {
		t.Fatalf("Batch with cancelled ctx: err=%v, want context.Canceled", err)
	}
	if a, b := sys.Stats(), twin.Stats(); !reflect.DeepEqual(a, b) {
		t.Errorf("cancelled Batch touched the ledger: %+v != %+v", a, b)
	}
}

package pinatubo

import (
	"context"
	"reflect"
	"testing"
)

// TestOptionsShimEquivalence pins the deprecated BatchWith/PlanWith shims
// to the option forms: same arbiter through either spelling, same report.
func TestOptionsShimEquivalence(t *testing.T) {
	cfg := Config{Tech: PCM, Geometry: spreadGeometry()}
	for _, arb := range []Arbiter{ArbFIFO, ArbOldestReady} {
		viaOpt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		viaShim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, err := viaOpt.Plan(OpOr, 4, 0, WithArbiter(arb))
		if err != nil {
			t.Fatal(err)
		}
		b, err := viaShim.PlanWith(OpOr, 4, 0, arb)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: Plan via option %+v != via shim %+v", arb, a, b)
		}

		opsA := buildBatchOps(t, viaOpt, 4096)
		opsB := buildBatchOps(t, viaShim, 4096)
		ra, err := viaOpt.Batch(opsA, WithArbiter(arb))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := viaShim.BatchWith(opsB, arb)
		if err != nil {
			t.Fatal(err)
		}
		// Results reference distinct vectors, but the schedule numbers
		// must be identical.
		if ra.Makespan != rb.Makespan || ra.Sequential != rb.Sequential ||
			ra.Shards != rb.Shards || ra.Arb != rb.Arb {
			t.Errorf("%v: Batch via option %+v != via shim %+v", arb, ra, rb)
		}
	}
}

// TestOptionsDefaults checks the zero-option call is the legacy default:
// FIFO arbitration, background context, nil options tolerated.
func TestOptionsDefaults(t *testing.T) {
	o := resolveOpts(nil)
	if o.arb != ArbFIFO {
		t.Errorf("default arbiter %v, want fifo", o.arb)
	}
	if o.ctx == nil {
		t.Error("default context is nil")
	}
	o = resolveOpts([]Option{nil, WithContext(nil), nil})
	if o.ctx == nil {
		t.Error("WithContext(nil) left a nil context")
	}
}

// TestPlanCancellation checks a cancelled context aborts Plan with the
// context's error and, since planning is fully sandboxed, leaves the
// live system's ledger untouched.
func TestPlanCancellation(t *testing.T) {
	sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Stats()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Plan(OpOr, 8, 0, WithContext(ctx)); err != context.Canceled {
		t.Fatalf("Plan with cancelled ctx: err=%v, want context.Canceled", err)
	}
	if after := sys.Stats(); !reflect.DeepEqual(before, after) {
		t.Errorf("cancelled Plan touched the ledger: %+v -> %+v", before, after)
	}
}

// TestBatchContextCancelledUpfront checks Batch rejects an
// already-cancelled context before touching any operand.
func TestBatchContextCancelledUpfront(t *testing.T) {
	sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	ops := buildBatchOps(t, sys, 4096)
	twin, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	buildBatchOps(t, twin, 4096)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Batch(ops, WithContext(ctx)); err != context.Canceled {
		t.Fatalf("Batch with cancelled ctx: err=%v, want context.Canceled", err)
	}
	if a, b := sys.Stats(), twin.Stats(); !reflect.DeepEqual(a, b) {
		t.Errorf("cancelled Batch touched the ledger: %+v != %+v", a, b)
	}
}

// Batch example: execute a mixed bag of bulk bitwise operations as one
// scheduled batch through the public System.Batch API. The batch lowers
// every op into its command-stream program, schedules the programs through
// the event-driven channel arbiter, and runs the data effects concurrently
// on isolated per-bank shards — then the example checks the results are
// exactly what issuing the ops one at a time would have produced, and that
// the makespan of a uniform deep-OR batch reproduces the planner's
// prediction bit-identically.
//
//	go run ./examples/batch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pinatubo"
)

// spread is a single-channel geometry with one subarray per bank:
// consecutive allocation groups land in consecutive banks, so batched ops
// contend only on the shared command bus, not on bank resources.
func spread() pinatubo.Geometry {
	return pinatubo.Geometry{
		Channels:         1,
		RanksPerChannel:  1,
		ChipsPerRank:     8,
		BanksPerChip:     16,
		SubarraysPerBank: 1,
		MatsPerSubarray:  16,
		RowsPerSubarray:  256,
		MatRowBits:       4096,
		MuxRatio:         32,
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := pinatubo.DefaultConfig()
	cfg.Geometry = spread()
	sys, err := pinatubo.New(cfg)
	if err != nil {
		return err
	}
	// A twin system executes the same ops one Apply at a time: the golden
	// sequential order the batch must be indistinguishable from.
	twin, err := pinatubo.New(cfg)
	if err != nil {
		return err
	}

	// A mixed batch: one deep OR, an AND, an XOR and a NOT, each on its own
	// full-row operands so the footprints are disjoint.
	bits := sys.RowBits()
	rng := rand.New(rand.NewSource(42))
	shapes := []struct {
		op   pinatubo.Op
		nsrc int
	}{
		{pinatubo.OpOr, sys.MaxORRows()},
		{pinatubo.OpAnd, 2},
		{pinatubo.OpXor, 2},
		{pinatubo.OpNot, 1},
	}
	words := make([]uint64, (bits+63)/64)
	var ops, twinOps []pinatubo.BatchOp
	for _, sh := range shapes {
		srcs, err := sys.AllocGroup(sh.nsrc, bits)
		if err != nil {
			return err
		}
		tsrcs, err := twin.AllocGroup(sh.nsrc, bits)
		if err != nil {
			return err
		}
		for i := range srcs {
			for j := range words {
				words[j] = rng.Uint64()
			}
			if _, err := sys.Write(srcs[i], words); err != nil {
				return err
			}
			if _, err := twin.Write(tsrcs[i], words); err != nil {
				return err
			}
		}
		dst, err := sys.Alloc(bits)
		if err != nil {
			return err
		}
		tdst, err := twin.Alloc(bits)
		if err != nil {
			return err
		}
		ops = append(ops, pinatubo.BatchOp{Op: sh.op, Dst: dst, Srcs: srcs})
		twinOps = append(twinOps, pinatubo.BatchOp{Op: sh.op, Dst: tdst, Srcs: tsrcs})
		// Pad out the rest of the subarray (its last row is scratch) so the
		// next op starts in the next bank rather than queueing behind this
		// one on the same bank resource.
		if pad := cfg.Geometry.RowsPerSubarray - 1 - (sh.nsrc + 1); pad > 0 {
			if _, err := sys.AllocGroup(pad, bits); err != nil {
				return err
			}
			if _, err := twin.AllocGroup(pad, bits); err != nil {
				return err
			}
		}
	}

	br, err := sys.Batch(ops)
	if err != nil {
		return err
	}
	fmt.Printf("batch of %d ops on %d shard(s), %v arbitration:\n", len(ops), br.Shards, br.Arb)
	for i, r := range br.Results {
		fmt.Printf("  %-8v latency %-12v done at %v\n", ops[i].Op, r.Latency, br.Completion[i])
	}
	fmt.Printf("sequential %v → makespan %v (%.2fx)\n", br.Sequential, br.Makespan, br.Speedup)

	// Indistinguishability: every result vector matches the sequential twin
	// bit for bit.
	for i := range ops {
		if _, err := twin.Apply(twinOps[i].Op, twinOps[i].Dst, twinOps[i].Srcs); err != nil {
			return err
		}
		got, _, err := sys.Read(ops[i].Dst)
		if err != nil {
			return err
		}
		want, _, err := twin.Read(twinOps[i].Dst)
		if err != nil {
			return err
		}
		for j := range want {
			if got[j] != want[j] {
				return fmt.Errorf("op %d: batch and sequential results differ at word %d", i, j)
			}
		}
	}
	fmt.Println("cross-check: all results bit-identical to sequential Apply")

	// Model check: a uniform deep-OR batch must land exactly on the
	// planner's predicted makespan — the two derive their schedules from
	// the same command-stream lowering.
	fresh, err := pinatubo.New(cfg)
	if err != nil {
		return err
	}
	const k = 8
	uniform := make([]pinatubo.BatchOp, k)
	for i := range uniform {
		srcs, err := fresh.AllocGroup(fresh.MaxORRows(), bits)
		if err != nil {
			return err
		}
		dst, err := fresh.Alloc(bits)
		if err != nil {
			return err
		}
		uniform[i] = pinatubo.BatchOp{Op: pinatubo.OpOr, Dst: dst, Srcs: srcs}
	}
	ubr, err := fresh.Batch(uniform)
	if err != nil {
		return err
	}
	rep, err := fresh.Plan(pinatubo.OpOr, k, 0)
	if err != nil {
		return err
	}
	plan := rep.Points[len(rep.Points)-1].Makespan
	if ubr.Makespan != plan {
		return fmt.Errorf("batch makespan %v != plan %v", ubr.Makespan, plan)
	}
	fmt.Printf("cross-check: %d-OR batch makespan %v matches the plan bit-identically\n", k, ubr.Makespan)
	return nil
}

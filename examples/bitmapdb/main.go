// Bitmap-database example: the paper's FastBit workload end to end.
//
// Part 1 answers one multi-dimensional range query with the bitmap algebra
// executed *inside* the simulated Pinatubo memory: the bin bitmaps of each
// indexed column live one-per-row, a range becomes a multi-row OR over the
// covered bins, and the dimensions combine with in-memory ANDs. The result
// is checked against a brute-force scan.
//
// Part 2 prices the 240-query evaluation batch on every engine.
//
//	go run ./examples/bitmapdb
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pinatubo"
	"pinatubo/internal/bitvec"
	"pinatubo/internal/fastbit"
	"pinatubo/internal/figures"
)

func main() {
	if err := functionalQuery(); err != nil {
		log.Fatal(err)
	}
	if err := engineComparison(); err != nil {
		log.Fatal(err)
	}
}

func functionalQuery() error {
	const rows, nbins = 1 << 14, 32
	table, err := fastbit.SyntheticSTAR(rows, nbins, 0x57A2)
	if err != nil {
		return err
	}
	sys, err := pinatubo.New(pinatubo.DefaultConfig())
	if err != nil {
		return err
	}

	// Load every column's bin bitmaps into the PIM memory, one subarray
	// group per column (pim_malloc's affinity).
	colBitmaps := map[string][]*pinatubo.BitVector{}
	for _, name := range table.Columns() {
		col, _ := table.Column(name)
		group, err := sys.AllocGroup(col.NBins(), rows)
		if err != nil {
			return err
		}
		for b := 0; b < col.NBins(); b++ {
			if _, err := sys.Write(group[b], col.Bitmap(b).Words()); err != nil {
				return err
			}
		}
		colBitmaps[name] = group
	}

	// A 3-dimensional range query.
	rng := rand.New(rand.NewSource(9))
	q := table.RandomQuery(rng, 0.35)
	fmt.Println("query:")
	for _, c := range q.Conds {
		fmt.Printf("  %.3g <= %s < %.3g\n", c.Lo, c.Col, c.Hi)
	}

	result, err := sys.Alloc(rows)
	if err != nil {
		return err
	}
	dim, err := sys.Alloc(rows)
	if err != nil {
		return err
	}
	totalLatency := 0.0
	for i, cond := range q.Conds {
		col, _ := table.Column(cond.Col)
		lo, hi := col.BinOf(cond.Lo), col.BinOf(cond.Hi)
		operands := colBitmaps[cond.Col][lo : hi+1]
		target := result
		if i > 0 {
			target = dim
		}
		res, err := sys.Or(target, operands...)
		if err != nil {
			return err
		}
		totalLatency += res.Latency.Seconds()
		fmt.Printf("  %-7s bins %d..%d OR'd in %d request(s), %v (%s)\n",
			cond.Col, lo, hi, res.Requests, res.Latency, res.Class)
		if i > 0 {
			res, err := sys.And(result, result, dim)
			if err != nil {
				return err
			}
			totalLatency += res.Latency.Seconds()
		}
	}

	// Boundary-bin candidates are re-checked on the host, as FastBit does.
	words, _, err := sys.Read(result)
	if err != nil {
		return err
	}
	approx := bitvec.FromWords(rows, words)
	for _, cond := range q.Conds {
		col, _ := table.Column(cond.Col)
		for _, b := range []int{col.BinOf(cond.Lo), col.BinOf(cond.Hi)} {
			col.Bitmap(b).ForEachSet(func(row int) {
				if !approx.Get(row) {
					return
				}
				// Re-read the raw value; evict false positives.
				v := colValue(table, cond.Col, row)
				if v < cond.Lo || v >= cond.Hi {
					approx.Clear(row)
				}
			})
		}
	}

	want, err := table.BruteForce(q)
	if err != nil {
		return err
	}
	fmt.Printf("matches: %d (brute force: %d) — in-memory algebra time %.3g s\n",
		approx.Popcount(), want.Popcount(), totalLatency)
	if !approx.Equal(want) {
		return fmt.Errorf("PIM result differs from brute-force scan")
	}
	fmt.Println("PIM result verified against the row scan ✓")
	fmt.Println()
	return nil
}

// colValue exposes one raw value through the index (the boundary re-check).
func colValue(t *fastbit.Table, col string, row int) float64 {
	c, _ := t.Column(col)
	return c.Value(row)
}

func engineComparison() error {
	tr, err := figures.FastbitTrace(240)
	if err != nil {
		return err
	}
	engines, err := figures.Engines()
	if err != nil {
		return err
	}
	base, err := tr.Run(engines.SIMD)
	if err != nil {
		return err
	}
	fmt.Println("240-query batch on the engine matrix:")
	fmt.Printf("  %-14s %10s %12s\n", "engine", "speedup", "overall")
	for _, e := range engines.Compared() {
		r, err := tr.Run(e)
		if err != nil {
			return err
		}
		fmt.Printf("  %-14s %9.1fx %11.2fx\n", e.Name(), r.Speedup(base), r.OverallSpeedup(base))
	}
	return nil
}

// Segmentation example: the image-processing use the paper motivates
// (fast color segmentation à la Bruce et al.). Per-channel threshold masks
// of a synthetic camera frame are combined into color-class masks with
// in-memory ANDs, and composite masks with a multi-row OR — all on the
// simulated Pinatubo system, verified per pixel.
//
//	go run ./examples/segmentation
package main

import (
	"fmt"
	"log"

	"pinatubo"
	"pinatubo/internal/bitvec"
	"pinatubo/internal/imgproc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const w, h = 512, 512
	classes := []imgproc.ColorClass{
		{Name: "ball", Lo: [3]uint8{180, 140, 160}, Hi: [3]uint8{255, 200, 220}},
		{Name: "field", Lo: [3]uint8{80, 60, 60}, Hi: [3]uint8{140, 110, 110}},
		{Name: "line", Lo: [3]uint8{200, 100, 100}, Hi: [3]uint8{255, 139, 159}},
	}
	frame, err := imgproc.Synthetic(w, h, []imgproc.Blob{
		{CX: 120, CY: 140, R: 28, Color: [3]uint8{220, 170, 190}}, // ball
		{CX: 360, CY: 300, R: 90, Color: [3]uint8{100, 80, 80}},   // field patch
		{CX: 420, CY: 80, R: 18, Color: [3]uint8{230, 120, 130}},  // line marking
	}, 0x1316)
	if err != nil {
		return err
	}
	bits := frame.Pixels()
	fmt.Printf("frame: %dx%d → %d-bit masks\n", w, h, bits)

	sys, err := pinatubo.New(pinatubo.DefaultConfig())
	if err != nil {
		return err
	}

	// For each class: load the three channel masks, AND them in memory.
	classMasks := make([]*pinatubo.BitVector, 0, len(classes))
	for _, class := range classes {
		group, err := sys.AllocGroup(4, bits) // 3 channel masks + result
		if err != nil {
			return err
		}
		for c := 0; c < 3; c++ {
			m, err := frame.ChannelMask(c, class.Lo[c], class.Hi[c])
			if err != nil {
				return err
			}
			if _, err := sys.Write(group[c], m.Words()); err != nil {
				return err
			}
		}
		mask := group[3]
		if _, err := sys.And(mask, group[0], group[1]); err != nil {
			return err
		}
		res, err := sys.And(mask, mask, group[2])
		if err != nil {
			return err
		}
		n, _, err := sys.Popcount(mask)
		if err != nil {
			return err
		}
		// Verify per pixel.
		words, _, err := sys.Read(mask)
		if err != nil {
			return err
		}
		got := bitvec.FromWords(bits, words)
		if !got.Equal(imgproc.BruteForceSegment(frame, class)) {
			return fmt.Errorf("%s: in-memory mask differs from per-pixel classification", class.Name)
		}
		fmt.Printf("  %-6s %6d px  (2 in-memory ANDs, last %v, %s) ✓\n",
			class.Name, n, res.Latency, res.Class)
		classMasks = append(classMasks, mask)
	}

	// Composite "anything interesting" mask: one multi-row OR.
	all, err := sys.Alloc(bits)
	if err != nil {
		return err
	}
	res, err := sys.Or(all, classMasks...)
	if err != nil {
		return err
	}
	n, _, err := sys.Popcount(all)
	if err != nil {
		return err
	}
	fmt.Printf("composite mask: %d px in %d request(s), %v\n", n, res.Requests, res.Latency)

	st := sys.Stats()
	fmt.Printf("stats: %d intra ops, %d inter ops, %.3g s busy, %.3g J\n",
		st.Ops["intra-subarray"], st.Ops["inter-subarray"], st.BusySeconds, st.EnergyJoules)
	return nil
}

// Graph BFS example: the paper's graph-processing workload end to end.
//
// Part 1 runs a bitmap BFS *functionally* on a simulated Pinatubo memory:
// the adjacency rows of a small graph live one-per-row, and every frontier
// expansion is a real in-memory multi-row OR through the public API.
//
// Part 2 builds the full dblp-like evaluation trace and prices it on every
// engine of the paper's comparison (SIMD, S-DRAM, AC-PIM, Pinatubo-2/-128),
// reproducing the Fig. 10/12 story for one dataset.
//
//	go run ./examples/graphbfs
package main

import (
	"fmt"
	"log"

	"pinatubo"
	"pinatubo/internal/bitvec"
	"pinatubo/internal/figures"
	"pinatubo/internal/graph"
)

func main() {
	if err := functionalBFS(); err != nil {
		log.Fatal(err)
	}
	if err := engineComparison(); err != nil {
		log.Fatal(err)
	}
}

// functionalBFS runs BFS where the frontier expansion is executed by the
// simulated memory itself.
func functionalBFS() error {
	g, err := graph.RMAT(9, 8, 7) // 512 vertices
	if err != nil {
		return err
	}
	n := g.N()

	sys, err := pinatubo.New(pinatubo.DefaultConfig())
	if err != nil {
		return err
	}

	// One adjacency bitmap per vertex, co-located for one-step ORs.
	adj, err := sys.AllocGroup(n, n)
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if _, err := sys.Write(adj[v], g.AdjacencyBitmap(v).Words()); err != nil {
			return err
		}
	}
	next, err := sys.Alloc(n)
	if err != nil {
		return err
	}

	visited := bitvec.New(n)
	visited.Set(0)
	frontier := []int{0}
	level := 0
	totalLatency := 0.0
	totalRequests := 0

	for len(frontier) > 0 {
		level++
		// next = OR of the adjacency rows of the whole frontier — one
		// logical op regardless of frontier width.
		operands := make([]*pinatubo.BitVector, len(frontier))
		for i, v := range frontier {
			operands[i] = adj[v]
		}
		res, err := sys.Or(next, operands...)
		if err != nil {
			return err
		}
		totalLatency += res.Latency.Seconds()
		totalRequests += res.Requests

		words, _, err := sys.Read(next)
		if err != nil {
			return err
		}
		nextBits := bitvec.FromWords(n, words)
		nextBits.AndNot(nextBits, visited)
		visited.Or(visited, nextBits)
		frontier = frontier[:0]
		nextBits.ForEachSet(func(i int) { frontier = append(frontier, i) })
		if len(frontier) > 0 {
			fmt.Printf("level %d: frontier %4d vertices, OR in %d request(s), %v\n",
				level, len(frontier), res.Requests, res.Latency)
		}
	}

	fmt.Printf("visited %d/%d vertices in %d levels; in-memory time %.3g s over %d requests\n\n",
		visited.Popcount(), n, level-1, totalLatency, totalRequests)
	return nil
}

// engineComparison prices the dblp workload on the paper's engine matrix.
func engineComparison() error {
	tr, err := figures.GraphTrace("dblp")
	if err != nil {
		return err
	}
	engines, err := figures.Engines()
	if err != nil {
		return err
	}
	base, err := tr.Run(engines.SIMD)
	if err != nil {
		return err
	}
	fmt.Println("dblp bitmap-BFS on the engine matrix (bitwise phase | whole app):")
	fmt.Printf("  %-14s %12s %10s %12s\n", "engine", "bitwise", "speedup", "overall")
	fmt.Printf("  %-14s %12.4gs %10s %12s\n", "SIMD", base.Bitwise.Seconds, "1.0x", "1.00x")
	for _, e := range engines.Compared() {
		r, err := tr.Run(e)
		if err != nil {
			return err
		}
		fmt.Printf("  %-14s %12.4gs %9.1fx %11.2fx\n",
			e.Name(), r.Bitwise.Seconds, r.Speedup(base), r.OverallSpeedup(base))
	}
	return nil
}

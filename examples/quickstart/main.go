// Quickstart: allocate bit-vectors in a simulated Pinatubo PCM memory, run
// a one-step multi-row OR inside the memory, and inspect what it cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pinatubo"
)

func main() {
	// A default system: PCM main memory, 4 channels, 2^19-bit rank rows,
	// modified SAs good for one-step ORs over up to 128 rows.
	sys, err := pinatubo.New(pinatubo.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pinatubo system: rank row %d bits, one-step OR depth %d\n\n",
		sys.RowBits(), sys.MaxORRows())

	// pim_malloc: 32 bit-vectors of 64 Kbit, co-located in one subarray so
	// the OR below is a single multi-row activation.
	const nVectors, bits = 32, 1 << 16
	vectors, err := sys.AllocGroup(nVectors, bits)
	if err != nil {
		log.Fatal(err)
	}

	// Fill them with random data through the host interface.
	rng := rand.New(rand.NewSource(42))
	words := make([]uint64, bits/64)
	for _, v := range vectors {
		for i := range words {
			words[i] = rng.Uint64() & rng.Uint64() & rng.Uint64() // sparse-ish
		}
		if _, err := sys.Write(v, words); err != nil {
			log.Fatal(err)
		}
	}

	// One bulk OR over all 32 vectors — computed by the sense amplifiers,
	// the result written back through the write drivers without ever
	// touching the DDR bus.
	dst, err := sys.Alloc(bits)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Or(dst, vectors...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OR over %d × %d-bit vectors:\n", nVectors, bits)
	fmt.Printf("  placement class: %s\n", res.Class)
	fmt.Printf("  hardware requests: %d (one-step multi-row activation)\n", res.Requests)
	fmt.Printf("  latency: %v\n", res.Latency)
	fmt.Printf("  energy:  %.3g J\n", res.EnergyJoules)
	operandGB := float64(nVectors) * bits / 8 / 1e9
	fmt.Printf("  operand throughput: %.1f GBps\n\n", operandGB/res.Latency.Seconds())

	// AND / XOR / INV work too (2-row and 1-row SA modes).
	other, err := sys.Alloc(bits)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Not(other, dst); err != nil {
		log.Fatal(err)
	}
	and, err := sys.Alloc(bits)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.And(and, dst, other); err != nil {
		log.Fatal(err)
	}
	n, _, err := sys.Popcount(and)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x AND NOT x has %d set bits (should be 0)\n\n", n)

	st := sys.Stats()
	fmt.Printf("session stats: %d intra-subarray ops, %d requests, %.3g s busy, %.3g J\n",
		st.Ops["intra-subarray"], st.Requests, st.BusySeconds, st.EnergyJoules)
}

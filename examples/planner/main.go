// Planner example: use the public concurrency-planning API to decide how
// many deep ORs to keep in flight, first on a fault-free system and then
// under an injected sense-error rate where the resilience ladder widens
// every trace. As a sanity check, the fault-free saturation point is
// recomputed the long way — a bare controller command trace replayed
// through the channel scheduler — and must agree exactly.
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"log"
	"time"

	"pinatubo"
	"pinatubo/internal/chansim"
	"pinatubo/internal/ddr"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
)

const concurrency = 16

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := pinatubo.DefaultConfig()
	cfg.Fault = pinatubo.FaultConfig{Seed: 1}
	sys, err := pinatubo.New(cfg)
	if err != nil {
		return err
	}

	// How does throughput scale with in-flight deep ORs on clean cells?
	clean, err := sys.Plan(pinatubo.OpOr, concurrency, 0)
	if err != nil {
		return err
	}
	show("fault-free", clean)

	// And once one bit in 10^5 flips at the sense margin floor? The plan
	// samples the resilience ladder's retries, depth splits and
	// verification passes into the traces it schedules.
	faulty, err := sys.Plan(pinatubo.OpOr, concurrency, 1e-5)
	if err != nil {
		return err
	}
	show("rate 1e-5", faulty)

	// Cross-check: the fault-free answer is what scheduling a bare
	// controller trace says, computed here without the Plan API.
	sat, err := saturationTheLongWay(sys.MaxORRows())
	if err != nil {
		return err
	}
	if sat != clean.SaturationPoint {
		return fmt.Errorf("plan says %d, direct chansim says %d", clean.SaturationPoint, sat)
	}
	fmt.Printf("cross-check: direct chansim.SaturationPoint agrees: %d in flight\n", sat)
	return nil
}

func show(label string, rep pinatubo.PlanReport) {
	fmt.Printf("%s: saturates at %d in flight, headroom %.2fx\n",
		label, rep.SaturationPoint, rep.Headroom)
	for _, p := range rep.Points {
		fmt.Printf("  k=%-3d %12.0f ops/s   p50 %-10v p99 %-10v\n",
			p.Concurrency, p.Throughput,
			p.Latency.P50.Round(10*time.Nanosecond),
			p.Latency.P99.Round(10*time.Nanosecond))
	}
}

// saturationTheLongWay rebuilds the fault-free plan from first principles:
// execute one maximally deep OR on a bare controller, lower its DDR
// command sequence into a schedulable request, and ask the channel
// simulator where replication stops paying.
func saturationTheLongWay(depth int) (int, error) {
	geo := memarch.Default()
	mem, err := memarch.NewMemory(geo, nvm.Get(nvm.PCM))
	if err != nil {
		return 0, err
	}
	ctl, err := pim.NewController(mem, 0)
	if err != nil {
		return 0, err
	}
	srcs := make([]memarch.RowAddr, depth)
	for i := range srcs {
		srcs[i] = memarch.RowAddr{Subarray: 0, Row: i}
	}
	dst := memarch.RowAddr{Subarray: 0, Row: geo.RowsPerSubarray - 1}
	res, err := ctl.Execute(sense.OpOR, srcs, geo.RowBits(), &dst)
	if err != nil {
		return 0, err
	}
	req := chansim.FromDDR("or", res.Commands,
		nvm.Get(nvm.PCM).Timing, ddr.DefaultBus(), geo.BanksPerChip)
	var ks []int
	for k := 1; k < concurrency; k *= 2 {
		ks = append(ks, k)
	}
	ks = append(ks, concurrency)
	return chansim.SaturationPoint(req, ks, 0.05)
}

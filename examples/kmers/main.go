// K-mer example: the bio-informatics use the paper motivates. A family of
// related genomes is reduced to k-mer presence bitmaps; the pan-genome
// spectrum (union), conserved core (intersection) and containment screens
// all execute as bulk bitwise operations inside the simulated Pinatubo
// memory, verified against the CPU reference.
//
//	go run ./examples/kmers
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pinatubo"
	"pinatubo/internal/bioseq"
	"pinatubo/internal/bitvec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		members   = 48
		genomeLen = 50000
		k         = 9 // 4^9 = 2^18-bit spectra
	)
	fam, err := bioseq.NewFamily(members, genomeLen, k, 0xB10)
	if err != nil {
		return err
	}
	bits := bioseq.SpectrumBits(k)
	fmt.Printf("family: %d genomes of %d bases, k=%d → %d-bit spectra\n",
		members, genomeLen, k, bits)

	sys, err := pinatubo.New(pinatubo.DefaultConfig())
	if err != nil {
		return err
	}
	spectra, err := sys.AllocGroup(members, bits)
	if err != nil {
		return err
	}
	for i, sp := range fam.Spectra {
		if _, err := sys.Write(spectra[i], sp.Words()); err != nil {
			return err
		}
	}

	// Pan-genome: one multi-row OR over all 48 spectra.
	pan, err := sys.Alloc(bits)
	if err != nil {
		return err
	}
	res, err := sys.Or(pan, spectra...)
	if err != nil {
		return err
	}
	panBits, _, err := sys.Popcount(pan)
	if err != nil {
		return err
	}
	fmt.Printf("pan-genome union: %d distinct k-mers — %d request(s), %v, %.3g J\n",
		panBits, res.Requests, res.Latency, res.EnergyJoules)

	// Conserved core: AND chain in memory.
	core, err := sys.Alloc(bits)
	if err != nil {
		return err
	}
	if _, err := sys.Copy(core, spectra[0]); err != nil {
		return err
	}
	coreLatency := 0.0
	for _, sp := range spectra[1:] {
		r, err := sys.And(core, core, sp)
		if err != nil {
			return err
		}
		coreLatency += r.Latency.Seconds()
	}
	coreBits, _, err := sys.Popcount(core)
	if err != nil {
		return err
	}
	fmt.Printf("conserved core: %d k-mers shared by all %d genomes (%.3g s of AND chain)\n",
		coreBits, members, coreLatency)

	// Verify against the CPU reference.
	wantPan := bitvec.New(bits)
	wantPan.OrAll(fam.Spectra...)
	wantCore := bitvec.New(bits)
	wantCore.AndAll(fam.Spectra...)
	if wantPan.Popcount() != panBits || wantCore.Popcount() != coreBits {
		return fmt.Errorf("PIM results diverge from CPU reference")
	}
	fmt.Println("verified against the CPU reference ✓")

	// Containment screen: is an unknown sample part of the family?
	rng := rand.New(rand.NewSource(5))
	stranger, err := bioseq.KmerSpectrum(bioseq.RandomGenome(rng, genomeLen, 8), k)
	if err != nil {
		return err
	}
	sBV, err := sys.Alloc(bits)
	if err != nil {
		return err
	}
	if _, err := sys.Write(sBV, stranger.Words()); err != nil {
		return err
	}
	hit, err := sys.Alloc(bits)
	if err != nil {
		return err
	}
	if _, err := sys.And(hit, sBV, pan); err != nil {
		return err
	}
	hits, _, err := sys.Popcount(hit)
	if err != nil {
		return err
	}
	fmt.Printf("stranger screen: %.1f%% of its k-mers hit the pan-genome (member would be ~100%%)\n",
		100*float64(hits)/float64(stranger.Popcount()))
	return nil
}

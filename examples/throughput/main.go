// Throughput example: sweep the Fig. 9 design space from the public API.
// For each one-step OR depth and bit-vector length, run the operation on a
// live system and report the operand throughput, annotated with the
// bandwidth region it falls in.
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"

	"pinatubo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := pinatubo.New(pinatubo.DefaultConfig())
	if err != nil {
		return err
	}

	const ddrBusGBps = 12.8
	depths := []int{2, 8, 32, 128}
	fmt.Println("Pinatubo OR throughput (GBps of operand data), live from the public API")
	fmt.Printf("%-8s", "len")
	for _, d := range depths {
		fmt.Printf("%12d-row", d)
	}
	fmt.Println()

	for lenLog := 10; lenLog <= 19; lenLog++ {
		bits := 1 << lenLog
		fmt.Printf("2^%-6d", lenLog)
		for _, d := range depths {
			// Allocate operands and destination together so the writeback
			// is the in-place SA→WD path (no GDL move).
			group, err := sys.AllocGroup(d+1, bits)
			if err != nil {
				return err
			}
			vs, dst := group[:d], group[d]
			res, err := sys.Or(dst, vs...)
			if err != nil {
				return err
			}
			gbps := float64(d) * float64(bits) / 8 / res.Latency.Seconds() / 1e9
			marker := " "
			if gbps < ddrBusGBps {
				marker = "v" // below the DDR bus — not worth offloading
			}
			fmt.Printf("%15.1f%s", gbps, marker)
			// Return the rows so the sweep fits one subarray walk.
			for _, v := range group {
				if err := sys.Free(v); err != nil {
					return err
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(v = below the 12.8 GBps DDR-3 channel bandwidth;")
	fmt.Println(" the 128-row column tops out far beyond the rank's internal bandwidth —")
	fmt.Println(" the region the paper notes DRAM systems can never reach)")
	return nil
}

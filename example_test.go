package pinatubo_test

import (
	"fmt"
	"log"

	"pinatubo"
)

// ExampleSystem_Or demonstrates the headline operation: a one-step
// multi-row OR computed by the modified sense amplifiers.
func ExampleSystem_Or() {
	sys, err := pinatubo.New(pinatubo.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// Three 256-bit vectors co-located in one subarray.
	vs, err := sys.AllocGroup(3, 256)
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range vs {
		if _, err := sys.Write(v, []uint64{1 << (8 * i)}); err != nil {
			log.Fatal(err)
		}
	}
	dst, err := sys.Alloc(256)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Or(dst, vs...)
	if err != nil {
		log.Fatal(err)
	}
	words, _, err := sys.Read(dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("class=%s requests=%d result=%#x\n", res.Class, res.Requests, words[0])
	// Output: class=intra-subarray requests=1 result=0x10101
}

// ExampleSystem_Not shows the single-row inversion (the SA latch's
// differential output).
func ExampleSystem_Not() {
	sys, err := pinatubo.New(pinatubo.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.Alloc(64)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Write(a, []uint64{0x0F}); err != nil {
		log.Fatal(err)
	}
	dst, err := sys.Alloc(64)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Not(dst, a); err != nil {
		log.Fatal(err)
	}
	words, _, err := sys.Read(dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%#x\n", words[0])
	// Output: 0xfffffffffffffff0
}

// ExampleSystem_MaxORRows shows the technology-dependent one-step depth.
func ExampleSystem_MaxORRows() {
	pcm, err := pinatubo.New(pinatubo.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stt, err := pinatubo.New(pinatubo.Config{Tech: pinatubo.STTMRAM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pcm.MaxORRows(), stt.MaxORRows())
	// Output: 128 2
}

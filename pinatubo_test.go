package pinatubo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pinatubo/internal/memarch"
)

func newSys(t testing.TB) *System {
	t.Helper()
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTechStrings(t *testing.T) {
	if PCM.String() != "PCM" || STTMRAM.String() != "STT-MRAM" || ReRAM.String() != "ReRAM" {
		t.Error("tech names wrong")
	}
	if Tech(9).String() == "" {
		t.Error("unknown tech string empty")
	}
	if _, err := New(Config{Tech: Tech(9)}); err == nil {
		t.Error("unknown tech accepted")
	}
}

func TestDefaults(t *testing.T) {
	s := newSys(t)
	if s.MaxORRows() != 128 {
		t.Errorf("MaxORRows=%d want 128 for PCM", s.MaxORRows())
	}
	if s.RowBits() != 1<<19 {
		t.Errorf("RowBits=%d want 2^19", s.RowBits())
	}
	// Zero geometry in the config means default.
	s2, err := New(Config{Tech: PCM})
	if err != nil {
		t.Fatal(err)
	}
	if s2.RowBits() != 1<<19 {
		t.Error("zero geometry did not default")
	}
}

func TestSTTMRAMSystem(t *testing.T) {
	s, err := New(Config{Tech: STTMRAM, AnalogCheckBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxORRows() != 2 {
		t.Errorf("STT-MRAM MaxORRows=%d want 2", s.MaxORRows())
	}
}

func TestAllocAndFree(t *testing.T) {
	s := newSys(t)
	b, err := s.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1000 || b.Rows() != 1 {
		t.Errorf("Len=%d Rows=%d", b.Len(), b.Rows())
	}
	big, err := s.Alloc(1 << 21) // 4 rows
	if err != nil {
		t.Fatal(err)
	}
	if big.Rows() != 4 {
		t.Errorf("2^21-bit vector has %d rows want 4", big.Rows())
	}
	if err := s.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(b); err == nil {
		t.Error("double free accepted")
	}
	if _, err := s.Alloc(0); err == nil {
		t.Error("zero-bit alloc accepted")
	}
}

func TestForeignVectorRejected(t *testing.T) {
	s1 := newSys(t)
	s2 := newSys(t)
	b, err := s1.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Read(b); err == nil {
		t.Error("vector from another system accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newSys(t)
	b, err := s.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	words := []uint64{0xDEADBEEF, ^uint64(0), 0x42, 0xFF}
	res, err := s.Write(b, words)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 || res.EnergyJoules <= 0 {
		t.Error("write should cost time and energy")
	}
	got, _, err := s.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	// Tail bits beyond 200 must read back zero.
	if got[0] != 0xDEADBEEF || got[1] != ^uint64(0) || got[2] != 0x42 {
		t.Errorf("read back %x", got[:3])
	}
	if got[3] != 0xFF&((1<<8)-1) {
		t.Errorf("tail word %x want %x", got[3], 0xFF)
	}
	if _, err := s.Write(b, make([]uint64, 10)); err == nil {
		t.Error("oversized write accepted")
	}
}

func TestGroupOrOneStep(t *testing.T) {
	s := newSys(t)
	const n, bits = 64, 4096
	vs, err := s.AllocGroup(n, bits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	want := make([]uint64, bits/64)
	for _, v := range vs {
		words := make([]uint64, bits/64)
		for i := range words {
			words[i] = rng.Uint64()
			want[i] |= words[i]
		}
		if _, err := s.Write(v, words); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := s.Alloc(bits)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Or(dst, vs...)
	if err != nil {
		t.Fatal(err)
	}
	// 64 co-located operands ≤ 128-row depth: a single one-step request.
	if res.Requests != 1 {
		t.Errorf("requests=%d want 1 (one-step 64-row OR)", res.Requests)
	}
	if res.Class != PlaceIntraSubarray {
		t.Errorf("class=%q", res.Class)
	}
	got, _, err := s.Read(dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("word %d mismatch", i)
		}
	}
}

func TestWideOrChains(t *testing.T) {
	s := newSys(t)
	vs, err := s.AllocGroup(200, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if _, err := s.Write(v, []uint64{1 << (i % 60)}); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := s.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Or(dst, vs...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 2 {
		t.Errorf("200-operand OR took %d requests, want 2 (128 + chain)", res.Requests)
	}
	got, _, err := s.Read(dst)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := range vs {
		want |= 1 << (i % 60)
	}
	if got[0] != want {
		t.Errorf("OR=%x want %x", got[0], want)
	}
}

func TestBinaryOpsFunctional(t *testing.T) {
	s := newSys(t)
	const bits = 256
	a, _ := s.Alloc(bits)
	b, _ := s.Alloc(bits)
	dst, _ := s.Alloc(bits)
	rng := rand.New(rand.NewSource(2))
	aw := make([]uint64, 4)
	bw := make([]uint64, 4)
	for i := range aw {
		aw[i], bw[i] = rng.Uint64(), rng.Uint64()
	}
	if _, err := s.Write(a, aw); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(b, bw); err != nil {
		t.Fatal(err)
	}

	check := func(name string, run func() error, want func(i int) uint64) {
		if err := run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, _, err := s.Read(dst)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want(i) {
				t.Fatalf("%s word %d mismatch", name, i)
			}
		}
	}
	check("and", func() error { _, err := s.And(dst, a, b); return err },
		func(i int) uint64 { return aw[i] & bw[i] })
	check("xor", func() error { _, err := s.Xor(dst, a, b); return err },
		func(i int) uint64 { return aw[i] ^ bw[i] })
	check("not", func() error { _, err := s.Not(dst, a); return err },
		func(i int) uint64 { return ^aw[i] })
	check("copy", func() error { _, err := s.Copy(dst, a); return err },
		func(i int) uint64 { return aw[i] })
}

func TestMultiRowVectors(t *testing.T) {
	// Vectors spanning several physical rows operate batch by batch.
	s := newSys(t)
	bits := s.RowBits() * 2
	a, _ := s.Alloc(bits)
	b, _ := s.Alloc(bits)
	dst, _ := s.Alloc(bits)
	w := bits / 64
	aw := make([]uint64, w)
	bw := make([]uint64, w)
	aw[0], aw[w-1] = 5, 9
	bw[0], bw[w-1] = 3, 12
	if _, err := s.Write(a, aw); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(b, bw); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Or(dst, a, b); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Read(dst)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || got[w-1] != 13 {
		t.Errorf("multi-row OR wrong: %d %d", got[0], got[w-1])
	}
}

func TestLengthMismatchRejected(t *testing.T) {
	s := newSys(t)
	a, _ := s.Alloc(64)
	b, _ := s.Alloc(128)
	dst, _ := s.Alloc(64)
	if _, err := s.Or(dst, a, b); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := s.And(dst, a, b); err == nil {
		t.Error("length mismatch accepted by And")
	}
	if _, err := s.Or(dst); err == nil {
		t.Error("empty OR accepted")
	}
}

func TestPopcount(t *testing.T) {
	s := newSys(t)
	b, _ := s.Alloc(128)
	if _, err := s.Write(b, []uint64{0xF, 0x3}); err != nil {
		t.Fatal(err)
	}
	n, res, err := s.Popcount(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("popcount=%d want 6", n)
	}
	if res.Latency <= 0 {
		t.Error("popcount should charge a host read")
	}
	if res.Count == nil || *res.Count != 6 {
		t.Errorf("Result.Count=%v want 6", res.Count)
	}
}

func TestApplyPopcount(t *testing.T) {
	s := newSys(t)
	b, _ := s.Alloc(128)
	if _, err := s.Write(b, []uint64{0xFF, 0x1}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Apply(OpPopcount, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == nil || *res.Count != 9 {
		t.Errorf("Apply(OpPopcount) Count=%v want 9", res.Count)
	}
	if res.Class != PlaceHostRead {
		t.Errorf("popcount class %v want %v", res.Class, PlaceHostRead)
	}
	if _, err := s.Apply(OpPopcount, b, []*BitVector{b}); err == nil {
		t.Error("popcount with a source operand accepted")
	}
	other, _ := s.Alloc(128)
	if ores, err := s.Or(b, other); err != nil {
		t.Fatal(err)
	} else if ores.Count != nil {
		t.Error("non-popcount result carries a Count")
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := newSys(t)
	vs, _ := s.AllocGroup(4, 64)
	dst, _ := s.Alloc(64)
	for _, v := range vs {
		if _, err := s.Write(v, []uint64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Or(dst, vs...); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Ops["intra-subarray"] != 1 {
		t.Errorf("intra ops=%d want 1", st.Ops["intra-subarray"])
	}
	if st.Ops["host-write"] != 4 {
		t.Errorf("host writes=%d want 4", st.Ops["host-write"])
	}
	if st.BusySeconds <= 0 || st.EnergyJoules <= 0 || st.Requests < 5 {
		t.Errorf("stats not accumulating: %+v", st)
	}
	// The snapshot is a copy.
	st.Ops["intra-subarray"] = 99
	if s.Stats().Ops["intra-subarray"] == 99 {
		t.Error("Stats leaked internal map")
	}
}

func TestInterSubarrayClass(t *testing.T) {
	s := newSys(t)
	// Allocate enough single-row vectors to cross a subarray boundary.
	per := memarch.Default().RowsPerSubarray - 1
	var a, b *BitVector
	for i := 0; i < per+1; i++ {
		v, err := s.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			a = v
		}
		b = v
	}
	dst, _ := s.Alloc(64)
	res, err := s.Or(dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != PlaceInterSubarray {
		t.Errorf("class=%q want inter-subarray", res.Class)
	}
}

// Property: Or over random operand sets matches the word-wise reference.
func TestPropOrMatchesReference(t *testing.T) {
	s := newSys(t)
	const bits = 192
	f := func(seed int64, nSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSeed)%7 + 1
		vs, err := s.AllocGroup(n, bits)
		if err != nil {
			return false
		}
		want := make([]uint64, 3)
		for _, v := range vs {
			words := make([]uint64, 3)
			for i := range words {
				words[i] = rng.Uint64()
				want[i] |= words[i]
			}
			if _, err := s.Write(v, words); err != nil {
				return false
			}
		}
		dst, err := s.Alloc(bits)
		if err != nil {
			return false
		}
		if _, err := s.Or(dst, vs...); err != nil {
			return false
		}
		got, _, err := s.Read(dst)
		if err != nil {
			return false
		}
		ok := true
		for i := range want {
			ok = ok && got[i] == want[i]
		}
		for _, v := range vs {
			if err := s.Free(v); err != nil {
				return false
			}
		}
		if err := s.Free(dst); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSystemOr64(b *testing.B) {
	s := newSys(b)
	vs, err := s.AllocGroup(64, 1<<14)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := s.Alloc(1 << 14)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Or(dst, vs...); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHardwareCountersExposed(t *testing.T) {
	s := newSys(t)
	vs, err := s.AllocGroup(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if _, err := s.Write(v, []uint64{3}); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := s.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Or(dst, vs...); err != nil {
		t.Fatal(err)
	}
	hc := s.HardwareCounters()
	if hc.Activations < 4 {
		t.Errorf("activations=%d want >= 4", hc.Activations)
	}
	if hc.SenseSteps < 1 || hc.Writebacks < 5 {
		t.Errorf("counters %+v", hc)
	}
	// Data crossed the bus only for the host writes (4 x 64 bits).
	if hc.BusBits != 4*64 {
		t.Errorf("bus bits %d want 256 (host writes only)", hc.BusBits)
	}
	if hc.OpsByClass["intra-subarray"] < 1 {
		t.Errorf("class counts %v", hc.OpsByClass)
	}
}

func TestHottestRowExposed(t *testing.T) {
	s := newSys(t)
	if desc, n := s.HottestRow(); desc != "" || n != 0 {
		t.Error("fresh system has a hottest row")
	}
	v, err := s.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Write(v, []uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	desc, n := s.HottestRow()
	if n != 3 || desc == "" {
		t.Errorf("HottestRow=%q/%d want 3 writes", desc, n)
	}
}

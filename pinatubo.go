// Package pinatubo is a software reproduction of "Pinatubo: A
// Processing-in-Memory Architecture for Bulk Bitwise Operations in Emerging
// Non-volatile Memories" (Li et al., DAC 2016).
//
// A System is a simulated NVM main memory (PCM by default) whose sense
// amplifiers, wordline drivers and buffers carry the Pinatubo
// modifications. Bit-vectors allocated through the PIM-aware allocator live
// one-per-row; bulk AND/OR/XOR/INV between them executes inside the memory,
// and every operation reports the latency and energy the architectural
// model attributes to it.
//
//	sys, _ := pinatubo.New(pinatubo.DefaultConfig())
//	vs, _ := sys.AllocGroup(64, 1<<16) // 64 co-located 64-Kbit vectors
//	dst, _ := sys.Alloc(1 << 16)
//	res, _ := sys.Or(dst, vs...)      // one-step 64-row OR in the SAs
//	fmt.Println(res.Latency, res.EnergyJoules)
//
// The internal packages contain the full evaluation apparatus: the analog
// sense-amplifier model, the DDR command layer, the SIMD / S-DRAM / AC-PIM
// baselines, the graph and bitmap-database workloads, and the figure
// harness that regenerates the paper's evaluation section (see cmd/figures
// and EXPERIMENTS.md).
package pinatubo

import (
	"errors"
	"fmt"
	"time"

	"pinatubo/internal/analog"
	"pinatubo/internal/bitvec"
	"pinatubo/internal/fault"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/pimrt"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// Tech selects the memory cell technology.
type Tech int

const (
	// PCM is 1T1R phase-change memory — the paper's case study, with
	// one-step OR of up to 128 rows.
	PCM Tech = iota
	// STTMRAM limits every operation to 2 rows (low ON/OFF ratio).
	STTMRAM
	// ReRAM behaves like PCM for Pinatubo purposes.
	ReRAM
)

func (t Tech) internal() (nvm.Tech, error) {
	switch t {
	case PCM:
		return nvm.PCM, nil
	case STTMRAM:
		return nvm.STTMRAM, nil
	case ReRAM:
		return nvm.ReRAM, nil
	default:
		return 0, fmt.Errorf("pinatubo: unknown technology %d", int(t))
	}
}

// String names the technology.
func (t Tech) String() string {
	switch t {
	case PCM:
		return "PCM"
	case STTMRAM:
		return "STT-MRAM"
	case ReRAM:
		return "ReRAM"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Config parameterises a System.
type Config struct {
	// Tech is the cell technology (default PCM).
	Tech Tech
	// Geometry overrides the memory organisation; zero value = default
	// (4 channels, 8 lock-step chips per rank, 2^19-bit rank rows).
	Geometry memarch.Geometry
	// AnalogCheckBits is the number of bit positions per operation that
	// are cross-validated through the analog sensing model (0 disables;
	// the default 8 catches reference-placement regressions at negligible
	// cost).
	AnalogCheckBits int
	// Fault injects hardware faults; the zero value injects nothing and
	// leaves every latency/energy number bit-identical to a fault-free
	// system.
	Fault FaultConfig
	// Resilience tunes the verify-and-retry ladder that guards results
	// when faults are injected.
	Resilience ResilienceConfig
}

// FaultConfig selects which hardware faults the simulated memory suffers.
// The zero value injects nothing. All faults are drawn deterministically
// from Seed, so a run is exactly reproducible.
type FaultConfig struct {
	// Seed makes the injected fault sequence reproducible.
	Seed int64
	// SenseFlipRate is the per-bit sense-amplifier misresolve probability
	// at the analog margin floor. The effective rate decays exponentially
	// as an operation's margin widens, so deep multi-row ORs flip near
	// this rate while 2-row ops and plain reads are orders of magnitude
	// safer.
	SenseFlipRate float64
	// ActivationFailRate is the transient multi-row activation failure
	// probability per additional simultaneously-opened row.
	ActivationFailRate float64
	// WearLimit is how many programs a row endures before developing a
	// permanent stuck-at bit (one more per further WearLimit programs).
	// 0 means unlimited endurance.
	WearLimit int64
	// DriftSeconds derates sensing margins for data that has drifted
	// since programming (PCM drift widens OR margins, making flips
	// rarer). 0 uses the fresh cell.
	DriftSeconds float64
}

func (f FaultConfig) internal() fault.Config {
	return fault.Config{
		Seed:               f.Seed,
		SenseFlipRate:      f.SenseFlipRate,
		ActivationFailRate: f.ActivationFailRate,
		WearLimit:          f.WearLimit,
		DriftSeconds:       f.DriftSeconds,
	}
}

// ResilienceConfig tunes the verify-and-retry layer. By default the layer
// turns on exactly when Config.Fault injects something: every operation is
// then verified against the digital reference and walked down the
// degradation ladder (retry → depth-split → inter-digital → host CPU)
// until it is provably correct — degraded results cost more but are never
// wrong.
type ResilienceConfig struct {
	// Disable turns verification off even with faults injected — the
	// system then returns whatever the faulty hardware produced (useful
	// for measuring raw error rates).
	Disable bool
	// AlwaysVerify enables verification even with no faults configured.
	AlwaysVerify bool
	// MaxRetries bounds re-executions per ladder rung (0 = default 3).
	MaxRetries int
	// MinSplitDepth floors the depth-reduction rung (0 = default 2).
	MinSplitDepth int
	// DisableHostFallback removes the final CPU rung; exhausting the
	// ladder then returns an error instead.
	DisableHostFallback bool
}

// DefaultConfig returns the evaluation configuration: PCM, default
// geometry, light analog cross-checking.
func DefaultConfig() Config {
	return Config{Tech: PCM, Geometry: memarch.Default(), AnalogCheckBits: 8}
}

// System is one simulated Pinatubo memory plus its runtime stack.
type System struct {
	cfg   Config
	mem   *memarch.Memory
	ctl   *pim.Controller
	alloc *pimrt.Allocator
	sched *pimrt.Scheduler

	stats Stats
	// host-path resilience activity (Write/Read verification), kept apart
	// from the scheduler's own counters.
	hostVerifies      int64
	hostRetries       int64
	hostRowsRetired   int64
	hostBitsCorrected int64
}

// Stats accumulates the system's lifetime activity.
type Stats struct {
	// Ops counts completed bulk operations by placement class name
	// ("intra-subarray", "inter-subarray", "inter-bank").
	Ops map[string]int64
	// Requests is the number of hardware requests issued (a logical OR
	// over many rows may take several).
	Requests int64
	// BusySeconds and EnergyJoules total the simulated time and energy of
	// all operations, including host reads/writes.
	BusySeconds  float64
	EnergyJoules float64
}

// New builds a system.
func New(cfg Config) (*System, error) {
	tech, err := cfg.Tech.internal()
	if err != nil {
		return nil, err
	}
	geo := cfg.Geometry
	if geo == (memarch.Geometry{}) {
		geo = memarch.Default()
	}
	mem, err := memarch.NewMemory(geo, nvm.Get(tech))
	if err != nil {
		return nil, err
	}
	ctl, err := pim.NewController(mem, cfg.AnalogCheckBits)
	if err != nil {
		return nil, err
	}
	alloc, err := pimrt.NewAllocator(geo, true)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:   cfg,
		mem:   mem,
		ctl:   ctl,
		alloc: alloc,
		stats: Stats{Ops: make(map[string]int64)},
	}
	s.sched = &pimrt.Scheduler{
		Ctl:     ctl,
		Scratch: func(sub memarch.RowAddr) memarch.RowAddr { return pimrt.ScratchRow(geo, sub) },
	}
	faultCfg := cfg.Fault.internal()
	if err := faultCfg.Validate(); err != nil {
		return nil, err
	}
	if faultCfg.Enabled() {
		inj, err := fault.New(faultCfg, nvm.Get(tech), analog.DefaultSenseConfig(), geo.RowBits())
		if err != nil {
			return nil, err
		}
		ctl.AttachInjector(inj)
	}
	if (faultCfg.Enabled() && !cfg.Resilience.Disable) || cfg.Resilience.AlwaysVerify {
		res := pimrt.DefaultResilience()
		if cfg.Resilience.MaxRetries > 0 {
			res.MaxRetries = cfg.Resilience.MaxRetries
		}
		if cfg.Resilience.MinSplitDepth > 0 {
			res.MinDepth = cfg.Resilience.MinSplitDepth
		}
		if cfg.Resilience.DisableHostFallback {
			res.HostFallback = false
		}
		s.sched.Res = res
		s.sched.Remap = s.remapRow
		s.sched.Release = s.alloc.Free
	}
	return s, nil
}

// remapRow retires a worn-out row and hands back a fresh one.
func (s *System) remapRow(old memarch.RowAddr) (memarch.RowAddr, error) {
	s.alloc.Retire(old)
	rows, err := s.alloc.AllocRows(1)
	if err != nil {
		return memarch.RowAddr{}, err
	}
	return rows[0], nil
}

// MaxORRows returns the one-step OR depth of the configured technology
// (128 for PCM/ReRAM, 2 for STT-MRAM). Wider ORs are legal — the runtime
// chains them — but pay intermediate writebacks.
func (s *System) MaxORRows() int { return s.ctl.MaxORRows() }

// RowBits returns the rank-logical row length in bits: vectors up to this
// length occupy a single row and enjoy one-step operations.
func (s *System) RowBits() int { return s.mem.Geometry().RowBits() }

// Stats returns a snapshot of the accumulated statistics.
func (s *System) Stats() Stats {
	out := s.stats
	out.Ops = make(map[string]int64, len(s.stats.Ops))
	for k, v := range s.stats.Ops {
		out.Ops[k] = v
	}
	return out
}

// BitVector is a handle to a bit-vector stored in the PIM memory.
type BitVector struct {
	sys  *System
	bits int
	rows []memarch.RowAddr
}

// Len returns the vector length in bits.
func (b *BitVector) Len() int { return b.bits }

// Rows returns the number of physical rows backing the vector.
func (b *BitVector) Rows() int { return len(b.rows) }

// ErrFreed is returned when a freed vector is used.
var ErrFreed = errors.New("pinatubo: bit-vector already freed")

func (b *BitVector) check(s *System) error {
	if b == nil || b.sys == nil {
		return ErrFreed
	}
	if b.sys != s {
		return errors.New("pinatubo: bit-vector belongs to a different system")
	}
	return nil
}

func (s *System) rowsFor(bits int) (int, error) {
	if bits < 1 {
		return 0, fmt.Errorf("pinatubo: vector of %d bits", bits)
	}
	rb := s.RowBits()
	return (bits + rb - 1) / rb, nil
}

// Alloc allocates one bit-vector (pim_malloc).
func (s *System) Alloc(bits int) (*BitVector, error) {
	n, err := s.rowsFor(bits)
	if err != nil {
		return nil, err
	}
	rows, err := s.alloc.AllocRows(n)
	if err != nil {
		return nil, err
	}
	return &BitVector{sys: s, bits: bits, rows: rows}, nil
}

// AllocGroup allocates count single-row vectors guaranteed to share a
// subarray, so operations across the whole group are one-step multi-row
// ops. Each vector must fit one row.
func (s *System) AllocGroup(count, bits int) ([]*BitVector, error) {
	if count < 1 {
		return nil, fmt.Errorf("pinatubo: group of %d vectors", count)
	}
	if bits < 1 || bits > s.RowBits() {
		return nil, fmt.Errorf("pinatubo: group vectors must fit one row (1..%d bits), got %d",
			s.RowBits(), bits)
	}
	rows, err := s.alloc.AllocGroupRows(count)
	if err != nil {
		return nil, err
	}
	out := make([]*BitVector, count)
	for i := range out {
		out[i] = &BitVector{sys: s, bits: bits, rows: rows[i : i+1]}
	}
	return out, nil
}

// Free returns the vector's rows to the allocator.
func (s *System) Free(b *BitVector) error {
	if err := b.check(s); err != nil {
		return err
	}
	s.alloc.Free(b.rows)
	b.sys = nil
	return nil
}

// Result reports one logical operation's cost.
type Result struct {
	// Class is the dominant placement class ("intra-subarray", ...).
	Class string
	// Requests is the number of hardware requests the runtime issued.
	Requests int
	// Latency is the simulated time on the memory channel.
	Latency time.Duration
	// EnergyJoules is the simulated energy.
	EnergyJoules float64

	// Resilience outcome — all zero unless faults were injected and the
	// verify-and-retry layer had to intervene.
	//
	// Retries counts hardware re-executions; Degraded names the worst
	// degradation rung taken ("", "depth-split", "inter-digital",
	// "host-cpu"); BitsCorrected counts wrong bits the verification layer
	// intercepted before they could reach the caller.
	Retries       int
	Degraded      string
	BitsCorrected int64
}

func (s *System) account(class string, requests int, seconds, joules float64) Result {
	s.stats.Ops[class]++
	s.stats.Requests += int64(requests)
	s.stats.BusySeconds += seconds
	s.stats.EnergyJoules += joules
	return Result{
		Class:        class,
		Requests:     requests,
		Latency:      time.Duration(seconds * float64(time.Second)),
		EnergyJoules: joules,
	}
}

// Write stores words into the vector through the host interface (DDR
// burst + cell programming), zero-filling beyond len(words).
func (s *System) Write(b *BitVector, words []uint64) (Result, error) {
	if err := b.check(s); err != nil {
		return Result{}, err
	}
	if len(words) > bitvec.WordsFor(b.bits) {
		return Result{}, fmt.Errorf("pinatubo: %d words exceed %d-bit vector", len(words), b.bits)
	}
	var seconds, joules float64
	perRow := s.RowBits() / 64
	for i := range b.rows {
		lo := i * perRow
		hi := lo + perRow
		if hi > len(words) {
			hi = len(words)
		}
		var chunk []uint64
		if lo < len(words) {
			chunk = words[lo:hi]
		}
		bitsHere := s.RowBits()
		if i == len(b.rows)-1 {
			bitsHere = b.bits - i*s.RowBits()
		}
		sec, j, err := s.writeRow(&b.rows[i], chunk, bitsHere)
		if err != nil {
			return Result{}, err
		}
		seconds += sec
		joules += j
	}
	return s.account("host-write", len(b.rows), seconds, joules), nil
}

// writeRow programs one row from the host. With resilience on, the stored
// row is verified against the intended data; stuck cells retire the row to
// a fresh one (updating *addr — data rows must hold true data, or the
// runtime's digital reference would be built on garbage).
func (s *System) writeRow(addr *memarch.RowAddr, chunk []uint64, bitsHere int) (float64, float64, error) {
	r, err := s.ctl.WriteRowFromHost(*addr, chunk, bitsHere)
	if err != nil {
		return 0, 0, err
	}
	seconds, joules := r.Seconds, r.Energy.Total()
	if s.sched.Res == nil {
		return seconds, joules, nil
	}
	golden := make([]uint64, bitvec.WordsFor(bitsHere))
	copy(golden, chunk)
	for try := 0; ; try++ {
		v, err := s.ctl.VerifyAgainst(0, bitsHere, *addr, golden, golden)
		if err != nil {
			return seconds, joules, err
		}
		s.hostVerifies++
		seconds += v.Seconds
		joules += v.Energy.Total()
		if v.OK {
			return seconds, joules, nil
		}
		s.hostBitsCorrected += int64(v.MismatchedBits)
		if try >= s.sched.Res.MaxRetries {
			return seconds, joules, fmt.Errorf("pinatubo: writing row %v: %w",
				*addr, pimrt.ErrResilienceExhausted)
		}
		s.hostRetries++
		if v.WriteFault {
			if fresh, err := s.remapRow(*addr); err == nil {
				*addr = fresh
				s.hostRowsRetired++
			}
		}
		r, err := s.ctl.WriteRowFromHost(*addr, chunk, bitsHere)
		if err != nil {
			return seconds, joules, err
		}
		seconds += r.Seconds
		joules += r.Energy.Total()
	}
}

// Read returns the vector contents through the host interface.
func (s *System) Read(b *BitVector) ([]uint64, Result, error) {
	if err := b.check(s); err != nil {
		return nil, Result{}, err
	}
	words := make([]uint64, 0, bitvec.WordsFor(b.bits))
	var seconds, joules float64
	for i, addr := range b.rows {
		bitsHere := s.RowBits()
		if i == len(b.rows)-1 {
			bitsHere = b.bits - i*s.RowBits()
		}
		row, sec, j, err := s.readRow(addr, bitsHere)
		if err != nil {
			return nil, Result{}, err
		}
		words = append(words, row...)
		seconds += sec
		joules += j
	}
	words = words[:bitvec.WordsFor(b.bits)]
	return words, s.account("host-read", len(b.rows), seconds, joules), nil
}

// readRow bursts one row to the host. With resilience on, the sensed words
// are checked against the row's true contents and the read reissued on a
// flip (plain reads run at the full read margin, so this almost never
// loops — but a wrong word never escapes).
func (s *System) readRow(addr memarch.RowAddr, bitsHere int) ([]uint64, float64, float64, error) {
	var seconds, joules float64
	for try := 0; ; try++ {
		r, err := s.ctl.ReadRow(addr, bitsHere)
		if err != nil {
			return nil, seconds, joules, err
		}
		seconds += r.Seconds
		joules += r.Energy.Total()
		if s.sched.Res == nil {
			return r.Words, seconds, joules, nil
		}
		golden, err := s.ctl.Golden(sense.OpRead, []memarch.RowAddr{addr}, bitsHere)
		if err != nil {
			return nil, seconds, joules, err
		}
		s.hostVerifies++
		got := bitvec.FromWords(bitsHere, r.Words)
		want := bitvec.FromWords(bitsHere, golden)
		if !got.Equal(want) {
			x := bitvec.New(bitsHere)
			x.Xor(got, want)
			s.hostBitsCorrected += int64(x.Popcount())
			if try >= s.sched.Res.MaxRetries {
				return nil, seconds, joules, fmt.Errorf("pinatubo: reading row %v: %w",
					addr, pimrt.ErrResilienceExhausted)
			}
			s.hostRetries++
			continue
		}
		return r.Words, seconds, joules, nil
	}
}

// sameLength validates operand lengths.
func sameLength(dst *BitVector, srcs ...*BitVector) error {
	for _, src := range srcs {
		if src.bits != dst.bits {
			return fmt.Errorf("pinatubo: length mismatch: %d vs %d bits", src.bits, dst.bits)
		}
	}
	return nil
}

// Or computes dst = OR of all srcs inside the memory. Any number of
// operands ≥ 1 is accepted: the runtime schedules per-subarray one-step
// multi-row ORs (up to MaxORRows) and combines partial results.
func (s *System) Or(dst *BitVector, srcs ...*BitVector) (Result, error) {
	if err := b0check(s, dst, srcs); err != nil {
		return Result{}, err
	}
	if err := sameLength(dst, srcs...); err != nil {
		return Result{}, err
	}
	if len(srcs) == 0 {
		return Result{}, errors.New("pinatubo: OR of no operands")
	}
	var seconds, joules float64
	requests := 0
	intra := true
	var resil resilienceTally
	for batch := 0; batch < len(dst.rows); batch++ {
		rows := make([]memarch.RowAddr, len(srcs))
		for i, src := range srcs {
			rows[i] = src.rows[batch]
		}
		p, err := pimrt.PlacementOf(rows)
		if err != nil {
			return Result{}, err
		}
		if p != workload.PlaceIntra {
			intra = false
		}
		bitsHere := s.RowBits()
		if batch == len(dst.rows)-1 {
			bitsHere = dst.bits - batch*s.RowBits()
		}
		res, err := s.sched.OR(rows, bitsHere, dst.rows[batch])
		if err != nil {
			return Result{}, err
		}
		dst.rows[batch] = res.FinalDst
		seconds += res.Cost.Seconds
		joules += res.Cost.Joules
		requests += res.Requests
		resil.add(res)
	}
	class := "intra-subarray"
	if !intra {
		class = "inter-subarray"
	}
	return resil.fill(s.account(class, requests, seconds, joules)), nil
}

// resilienceTally folds per-batch schedule outcomes into one Result.
type resilienceTally struct {
	retries       int
	degraded      string
	bitsCorrected int64
}

func (t *resilienceTally) add(res *pimrt.ScheduleResult) {
	t.retries += res.Retries
	t.degraded = pimrt.WorseDegraded(t.degraded, res.Degraded)
	t.bitsCorrected += res.BitsCorrected
}

func (t *resilienceTally) fill(r Result) Result {
	r.Retries = t.retries
	r.Degraded = t.degraded
	r.BitsCorrected = t.bitsCorrected
	return r
}

// b0check validates dst and srcs handles.
func b0check(s *System, dst *BitVector, srcs []*BitVector) error {
	if err := dst.check(s); err != nil {
		return err
	}
	for _, src := range srcs {
		if err := src.check(s); err != nil {
			return err
		}
	}
	return nil
}

// binary runs a fixed-arity op per row batch through the controller.
func (s *System) binary(op sense.Op, dst *BitVector, srcs ...*BitVector) (Result, error) {
	if err := b0check(s, dst, srcs); err != nil {
		return Result{}, err
	}
	if err := sameLength(dst, srcs...); err != nil {
		return Result{}, err
	}
	var seconds, joules float64
	requests := 0
	class := ""
	var resil resilienceTally
	for batch := 0; batch < len(dst.rows); batch++ {
		rows := make([]memarch.RowAddr, len(srcs))
		for i, src := range srcs {
			rows[i] = src.rows[batch]
		}
		bitsHere := s.RowBits()
		if batch == len(dst.rows)-1 {
			bitsHere = dst.bits - batch*s.RowBits()
		}
		if s.sched.Res == nil {
			res, err := s.ctl.Execute(op, rows, bitsHere, &dst.rows[batch])
			if err != nil {
				return Result{}, err
			}
			seconds += res.Seconds
			joules += res.Energy.Total()
			requests++
			if class == "" {
				class = res.Class.String()
			}
			continue
		}
		// Resilient path: the scheduler verifies the result and degrades as
		// needed. Class reports the operands' placement (the native path),
		// even when a batch was degraded to a slower one.
		cl, err := s.ctl.Classify(rows)
		if err != nil {
			return Result{}, err
		}
		if class == "" {
			class = cl.String()
		}
		res, err := s.sched.Execute(op, rows, bitsHere, dst.rows[batch])
		if err != nil {
			return Result{}, err
		}
		dst.rows[batch] = res.FinalDst
		seconds += res.Cost.Seconds
		joules += res.Cost.Joules
		requests += res.Requests
		resil.add(res)
	}
	return resil.fill(s.account(class, requests, seconds, joules)), nil
}

// And computes dst = a AND b (2-row operation via the shifted reference).
func (s *System) And(dst, a, b *BitVector) (Result, error) {
	return s.binary(sense.OpAND, dst, a, b)
}

// Xor computes dst = a XOR b (two SA micro-steps).
func (s *System) Xor(dst, a, b *BitVector) (Result, error) {
	return s.binary(sense.OpXOR, dst, a, b)
}

// Not computes dst = NOT a (the latch's differential output).
func (s *System) Not(dst, a *BitVector) (Result, error) {
	return s.binary(sense.OpINV, dst, a)
}

// Copy computes dst = a through a read/write-back pass.
func (s *System) Copy(dst, a *BitVector) (Result, error) {
	return s.binary(sense.OpRead, dst, a)
}

// Popcount reads the vector to the host and counts set bits, charging the
// host-read cost (Pinatubo has no in-memory popcount; the paper leaves
// reduction operations to the CPU).
func (s *System) Popcount(b *BitVector) (int, Result, error) {
	words, res, err := s.Read(b)
	if err != nil {
		return 0, Result{}, err
	}
	v := bitvec.FromWords(b.bits, words)
	return v.Popcount(), res, nil
}

// HardwareCounters mirrors the memory controller's lifetime activity
// counters — the DIMM-side view of the work done (row activations, sensing
// steps, cell programs, and how many data bits actually crossed the DDR
// bus — the quantity Pinatubo exists to minimise).
type HardwareCounters struct {
	OpsByClass  map[string]int64
	Activations int64
	SenseSteps  int64
	Writebacks  int64
	BusBits     int64
}

// HardwareCounters returns the controller's counters.
func (s *System) HardwareCounters() HardwareCounters {
	c := s.ctl.Counters()
	out := HardwareCounters{
		OpsByClass:  make(map[string]int64, len(c.Ops)),
		Activations: c.Activations,
		SenseSteps:  c.SenseSteps,
		Writebacks:  c.Writebacks,
		BusBits:     c.BusBits,
	}
	for class, n := range c.Ops {
		out.OpsByClass[class.String()] = n
	}
	return out
}

// FaultStats is the system's cumulative fault-and-resilience ledger: what
// the injected fault model actually did to the hardware (ground truth) and
// what the verify-and-retry layer did about it. All zero when Config.Fault
// is zero.
type FaultStats struct {
	// Ground truth from the injector.
	SenseFlips       int64 // bits flipped on the sensing path
	ActivationFaults int64 // transient multi-row activation failures
	StuckRows        int64 // rows that developed stuck-at bits
	StuckBitsForced  int64 // written bits overridden by stuck cells
	RowWrites        int64 // row programs seen by the wear model

	// The resilience layer's response (PIM scheduler + host paths).
	Verifies        int64 // read-back verification passes
	Retries         int64 // request re-executions
	DepthReductions int64 // failing deep ORs re-run at lower depth
	InterFallbacks  int64 // requests degraded to the digital inter path
	HostFallbacks   int64 // requests degraded to the host CPU
	RowsRetired     int64 // worn rows retired and remapped
	BitsCorrected   int64 // wrong bits intercepted before reaching a caller
}

// FaultStats returns a snapshot of the cumulative fault activity.
func (s *System) FaultStats() FaultStats {
	out := FaultStats{
		Verifies:      s.hostVerifies,
		Retries:       s.hostRetries,
		RowsRetired:   s.hostRowsRetired,
		BitsCorrected: s.hostBitsCorrected,
	}
	if inj := s.ctl.Injector(); inj != nil {
		st := inj.Stats()
		out.SenseFlips = st.SenseFlips
		out.ActivationFaults = st.ActivationFaults
		out.StuckRows = st.StuckRows
		out.StuckBitsForced = st.StuckBitsForced
		out.RowWrites = st.RowWrites
	}
	sc := s.sched.FaultStats()
	out.Verifies += sc.Verifies
	out.Retries += sc.Retries
	out.DepthReductions = sc.DepthReductions
	out.InterFallbacks = sc.InterFallbacks
	out.HostFallbacks = sc.HostFallbacks
	out.RowsRetired += sc.RowsRetired
	out.BitsCorrected += sc.BitsCorrected
	return out
}

// HottestRow reports the most-programmed physical row and its write count —
// the PCM endurance hot spot (chained operations concentrate writes on
// accumulator rows; one-step multi-row ops do not).
func (s *System) HottestRow() (rowDescription string, writes int64) {
	addr, n := s.mem.HottestRow()
	if n == 0 {
		return "", 0
	}
	return addr.String(), n
}

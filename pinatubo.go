// Package pinatubo is a software reproduction of "Pinatubo: A
// Processing-in-Memory Architecture for Bulk Bitwise Operations in Emerging
// Non-volatile Memories" (Li et al., DAC 2016).
//
// A System is a simulated NVM main memory (PCM by default) whose sense
// amplifiers, wordline drivers and buffers carry the Pinatubo
// modifications. Bit-vectors allocated through the PIM-aware allocator live
// one-per-row; bulk AND/OR/XOR/INV between them executes inside the memory,
// and every operation reports the latency and energy the architectural
// model attributes to it.
//
//	sys, _ := pinatubo.New(pinatubo.DefaultConfig())
//	vs, _ := sys.AllocGroup(64, 1<<16) // 64 co-located 64-Kbit vectors
//	dst, _ := sys.Alloc(1 << 16)
//	res, _ := sys.Or(dst, vs...)      // one-step 64-row OR in the SAs
//	fmt.Println(res.Latency, res.EnergyJoules)
//
// The internal packages contain the full evaluation apparatus: the analog
// sense-amplifier model, the DDR command layer, the SIMD / S-DRAM / AC-PIM
// baselines, the graph and bitmap-database workloads, and the figure
// harness that regenerates the paper's evaluation section (see cmd/figures
// and EXPERIMENTS.md).
package pinatubo

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pinatubo/internal/analog"
	"pinatubo/internal/bitvec"
	"pinatubo/internal/cmdstream"
	"pinatubo/internal/ecc"
	"pinatubo/internal/fault"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/pimrt"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// Tech selects the memory cell technology.
type Tech int

const (
	// PCM is 1T1R phase-change memory — the paper's case study, with
	// one-step OR of up to 128 rows.
	PCM Tech = iota
	// STTMRAM limits every operation to 2 rows (low ON/OFF ratio).
	STTMRAM
	// ReRAM behaves like PCM for Pinatubo purposes.
	ReRAM
	// DRAM selects the in-DRAM processing-using-memory backend: AND/OR by
	// triple-row activation over a designated compute-row group (majority
	// of the charge-shared cells), NOT through a dual-contact-cell row,
	// XOR synthesized from both, operands staged by RowClone-style bulk
	// copies. Operations are pairwise (like STT-MRAM, deep ORs chain),
	// each subarray loses 7 rows to the compute group, and the resistive
	// fault/replication machinery does not apply — DRAM has no sensing
	// margins to derate.
	DRAM
)

func (t Tech) internal() (nvm.Tech, error) {
	switch t {
	case PCM:
		return nvm.PCM, nil
	case STTMRAM:
		return nvm.STTMRAM, nil
	case ReRAM:
		return nvm.ReRAM, nil
	case DRAM:
		return nvm.DRAM, nil
	default:
		return 0, fmt.Errorf("pinatubo: unknown technology %d", int(t))
	}
}

// String names the technology.
func (t Tech) String() string {
	switch t {
	case PCM:
		return "PCM"
	case STTMRAM:
		return "STT-MRAM"
	case ReRAM:
		return "ReRAM"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Config parameterises a System.
type Config struct {
	// Tech is the cell technology (default PCM).
	Tech Tech
	// Geometry overrides the memory organisation; zero value = default
	// (4 channels, 8 lock-step chips per rank, 2^19-bit rank rows).
	Geometry Geometry
	// AnalogCheckBits is the number of bit positions per operation that
	// are cross-validated through the analog sensing model (0 disables;
	// the default 8 catches reference-placement regressions at negligible
	// cost).
	AnalogCheckBits int
	// Fault injects hardware faults; the zero value injects nothing and
	// leaves every latency/energy number bit-identical to a fault-free
	// system.
	Fault FaultConfig
	// Resilience tunes the verify-and-retry ladder that guards results
	// when faults are injected.
	Resilience ResilienceConfig
	// DisableProgramCache turns the lowered-program cache off by default
	// for this System. The cache is a pure wall-clock optimisation —
	// cached and uncached runs are bit-identical — so this is an escape
	// hatch for measuring lowering cost, not a correctness knob. A
	// per-call WithProgramCache option overrides it (see Option).
	DisableProgramCache bool
}

// FaultConfig selects which hardware faults the simulated memory suffers.
// The zero value injects nothing. All faults are drawn deterministically
// from Seed, so a run is exactly reproducible.
type FaultConfig struct {
	// Seed makes the injected fault sequence reproducible.
	Seed int64
	// SenseFlipRate is the per-bit sense-amplifier misresolve probability
	// at the analog margin floor. The effective rate decays exponentially
	// as an operation's margin widens, so deep multi-row ORs flip near
	// this rate while 2-row ops and plain reads are orders of magnitude
	// safer.
	SenseFlipRate float64
	// ActivationFailRate is the transient multi-row activation failure
	// probability per additional simultaneously-opened row.
	ActivationFailRate float64
	// WearLimit is how many programs a row endures before developing a
	// permanent stuck-at bit (one more per further WearLimit programs).
	// 0 means unlimited endurance.
	WearLimit int64
	// DriftSeconds derates sensing margins for data that has drifted
	// since programming (PCM drift widens OR margins, making flips
	// rarer). 0 uses the fresh cell.
	DriftSeconds float64
}

func (f FaultConfig) internal() fault.Config {
	return fault.Config{
		Seed:               f.Seed,
		SenseFlipRate:      f.SenseFlipRate,
		ActivationFailRate: f.ActivationFailRate,
		WearLimit:          f.WearLimit,
		DriftSeconds:       f.DriftSeconds,
	}
}

// VerifyMode selects how (and whether) operation results are verified.
type VerifyMode int

const (
	// VerifyAuto (the zero value) turns read-back verification on exactly
	// when Config.Fault injects something — the historical default.
	VerifyAuto VerifyMode = iota
	// VerifyOff trusts the hardware even with faults injected — the system
	// returns whatever the faulty silicon produced (useful for measuring
	// raw error rates).
	VerifyOff
	// VerifyReadback verifies every operation by re-reading the
	// destination row and re-streaming the operands through the digital
	// checker — always correct, but the zero-fault overhead is ~44x on a
	// deep OR (see EXPERIMENTS.md).
	VerifyReadback
	// VerifyECC verifies through in-array SECDED check bits stored in
	// spare columns of each row: syndrome decode rides the program-verify
	// sense, single-bit errors are fixed in place, and only
	// detected-uncorrectable syndromes fall back to the read-back
	// degradation ladder. Zero-fault overhead is a few command-bus slots
	// per operation.
	VerifyECC
)

// String names the mode as the CLI -verify flag spells it.
func (m VerifyMode) String() string {
	switch m {
	case VerifyAuto:
		return "auto"
	case VerifyOff:
		return "off"
	case VerifyReadback:
		return "readback"
	case VerifyECC:
		return "ecc"
	default:
		return fmt.Sprintf("VerifyMode(%d)", int(m))
	}
}

// ResilienceConfig tunes the verify-and-retry layer. By default
// (VerifyAuto) the layer turns on exactly when Config.Fault injects
// something: every operation is then verified and walked down the
// degradation ladder (retry → depth-split → inter-digital → host CPU)
// until it is provably correct — degraded results cost more but are never
// wrong.
type ResilienceConfig struct {
	// Verify selects the verification mode. VerifyAuto defers to the
	// fault configuration; VerifyECC stores SECDED check bits in spare
	// columns and verifies by syndrome decode instead of read-back.
	Verify VerifyMode
	// ECCWordBits is the SECDED word-group width for VerifyECC: 8, 16, 32
	// or 64 (0 = the default 64, the (72,64) code of ECC DIMMs). Setting
	// it with any other mode is a configuration error.
	ECCWordBits int

	// MaxRetries bounds re-executions per ladder rung (0 = default 3).
	MaxRetries int
	// MinSplitDepth floors the depth-reduction rung (0 = default 2).
	MinSplitDepth int
	// DisableHostFallback removes the final CPU rung; exhausting the
	// ladder then returns an error instead.
	DisableHostFallback bool

	// Replicate enables the proactive replication + majority-vote rung:
	// every allocated row gets Replicate-1 extra copies in its subarray,
	// intra-subarray operations activate and sense each copy set in turn,
	// and the result is the bitwise majority of the Replicate senses — so
	// a sense flip must strike the same bit in most copies to survive,
	// which turns reactive ladder degradations into clean first-try
	// results at the cost of Replicate× row capacity and extra activation
	// groups per request. Legal values are 0 (off) and odd counts 3..7.
	// The rung engages only when the resilience layer is active (the
	// effective verify mode is VerifyReadback or VerifyECC); with
	// verification off — including VerifyAuto with no faults injected —
	// replication is fully inert and the system stays bit-identical to an
	// unreplicated one.
	Replicate int
}

// mode validates and returns the configured mode.
func (rc ResilienceConfig) mode() (VerifyMode, error) {
	if rc.Verify < VerifyAuto || rc.Verify > VerifyECC {
		return 0, fmt.Errorf("pinatubo: unknown VerifyMode %d", int(rc.Verify))
	}
	if !analog.ValidReplication(rc.Replicate) {
		return 0, fmt.Errorf("pinatubo: Replicate=%d not 0 or an odd count in 3..7", rc.Replicate)
	}
	if rc.Verify == VerifyECC {
		switch rc.ECCWordBits {
		case 0, 8, 16, 32, 64:
		default:
			return 0, fmt.Errorf("pinatubo: ECCWordBits %d not one of 8, 16, 32, 64", rc.ECCWordBits)
		}
		return VerifyECC, nil
	}
	if rc.ECCWordBits != 0 {
		return 0, fmt.Errorf("pinatubo: ECCWordBits=%d requires Verify=VerifyECC", rc.ECCWordBits)
	}
	return rc.Verify, nil
}

// DefaultConfig returns the evaluation configuration: PCM, default
// geometry, light analog cross-checking.
func DefaultConfig() Config {
	return Config{Tech: PCM, Geometry: DefaultGeometry(), AnalogCheckBits: 8}
}

// System is one simulated Pinatubo memory plus its runtime stack.
type System struct {
	cfg    Config
	verify VerifyMode // effective mode (VerifyAuto already resolved)
	mem    *memarch.Memory
	ctl    *pim.Controller
	alloc  *pimrt.Allocator
	sched  *pimrt.Scheduler

	// Proactive replication state (nil maps when the rung is inert):
	// replicate is the effective factor, repRows maps an encoded primary
	// row to its replica rows, repMember marks every participating row
	// (primary and replica) for the wear-spread hook.
	replicate int
	repRows   map[uint64][]memarch.RowAddr
	repMember map[uint64]bool

	// layoutGen counts row-layout mutations (remaps, frees, replica
	// teardowns). A BatchBuilder records the generation its footprints were
	// computed against and recomputes them at Start when the layout moved
	// underneath it.
	layoutGen uint64

	stats Stats

	// rowScratch is Apply's per-row-batch operand address buffer, reused
	// across calls so a steady-state fixed-arity Apply allocates nothing
	// for it.
	rowScratch []memarch.RowAddr

	// sandboxPool recycles shard-sandbox Systems across batch windows
	// (window.go): reset-on-get, capped, guarded by poolMu because Start
	// and Wait may run while shard goroutines of an earlier window are
	// still winding down. poolGets/poolReuses are the observability
	// counters PerfStats reports.
	poolMu      sync.Mutex
	sandboxPool []*System
	poolGets    int64
	poolReuses  int64
	// cacheAbsorbed accumulates program-cache traffic merged back from
	// released sandboxes, so PerfStats covers shard executions too.
	cacheAbsorbed cmdstream.CacheStats

	// host-path resilience activity (Write/Read verification), kept apart
	// from the scheduler's own counters.
	hostVerifies         int64
	hostRetries          int64
	hostRowsRetired      int64
	hostBitsCorrected    int64
	hostEccDecodes       int64
	hostEccCorrected     int64
	hostEccUncorrectable int64
}

// VerifyMode returns the effective verification mode the system runs under
// (VerifyAuto resolved against the fault configuration at New time).
func (s *System) VerifyMode() VerifyMode { return s.verify }

// Stats accumulates the system's lifetime activity. Batch execution feeds
// the same ledger: after a Batch the counters equal what the same ops
// issued sequentially through Apply would have left (integer counters
// exactly; summed float totals can differ by ULPs when more than one shard
// ran, because float addition is not associative).
type Stats struct {
	// Ops counts completed bulk operations by placement class name
	// ("intra-subarray", "inter-subarray", "inter-bank").
	Ops map[string]int64
	// Requests is the number of hardware requests issued (a logical OR
	// over many rows may take several).
	Requests int64
	// BusySeconds and EnergyJoules total the simulated time and energy of
	// all operations, including host reads/writes.
	BusySeconds  float64
	EnergyJoules float64
}

// New builds a system.
func New(cfg Config) (*System, error) {
	tech, err := cfg.Tech.internal()
	if err != nil {
		return nil, err
	}
	mode, err := cfg.Resilience.mode()
	if err != nil {
		return nil, err
	}
	geo := cfg.Geometry.internal()
	if geo == (memarch.Geometry{}) {
		geo = memarch.Default()
	}
	mem, err := memarch.NewMemory(geo, nvm.Get(tech))
	if err != nil {
		return nil, err
	}
	ctl, err := pim.NewController(mem, cfg.AnalogCheckBits)
	if err != nil {
		return nil, err
	}
	// Reserve the scheduler's scratch row plus whatever the technology
	// backend claims as designated compute rows (0 for the NVMs, the TRA
	// group for DRAM) at the tail of every subarray.
	reserve := 1 + ctl.Backend().Caps().ComputeRows
	if geo.RowsPerSubarray-reserve < 2 {
		return nil, fmt.Errorf("pinatubo: %d rows per subarray leave fewer than 2 usable after the %d reserved for scratch and the %s backend",
			geo.RowsPerSubarray, reserve, cfg.Tech)
	}
	alloc, err := pimrt.NewAllocatorTail(geo, reserve)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:   cfg,
		mem:   mem,
		ctl:   ctl,
		alloc: alloc,
		stats: Stats{Ops: make(map[string]int64)},
	}
	ctl.SetProgramCache(!cfg.DisableProgramCache)
	s.sched = &pimrt.Scheduler{
		Ctl:     ctl,
		Scratch: func(sub memarch.RowAddr) memarch.RowAddr { return pimrt.ScratchRow(geo, sub) },
	}
	faultCfg := cfg.Fault.internal()
	if err := faultCfg.Validate(); err != nil {
		return nil, err
	}
	if tech == nvm.DRAM {
		// The fault model derates resistive sensing margins and the
		// replication rung majority-votes repeated analog senses — neither
		// has a physical meaning for charge-based TRA compute, so both are
		// configuration errors rather than silent no-ops.
		if faultCfg.Enabled() {
			return nil, errors.New("pinatubo: fault injection models resistive sensing margins; not supported with Tech: DRAM")
		}
		if cfg.Resilience.Replicate != 0 {
			return nil, errors.New("pinatubo: Replicate requires modified-SA multi-row sensing; not supported with Tech: DRAM")
		}
	}
	if mode == VerifyAuto {
		// The historical default: read-back verification exactly when the
		// fault model injects something.
		if faultCfg.Enabled() {
			mode = VerifyReadback
		} else {
			mode = VerifyOff
		}
	}
	s.verify = mode
	rowBits := geo.RowBits()
	if mode == VerifyECC {
		wb := cfg.Resilience.ECCWordBits
		if wb == 0 {
			wb = 64
		}
		codec, err := ecc.New(wb)
		if err != nil {
			return nil, err
		}
		ctl.EnableECC(codec)
		// Stuck-at positions must be able to land in the spare columns too.
		rowBits = pim.ECCRowBits(geo, codec)
	}
	if faultCfg.Enabled() {
		inj, err := fault.New(faultCfg, nvm.Get(tech), analog.DefaultSenseConfig(), rowBits)
		if err != nil {
			return nil, err
		}
		ctl.AttachInjector(inj)
	}
	if mode == VerifyReadback || mode == VerifyECC {
		res := pimrt.DefaultResilience()
		if cfg.Resilience.MaxRetries > 0 {
			res.MaxRetries = cfg.Resilience.MaxRetries
		}
		if cfg.Resilience.MinSplitDepth > 0 {
			res.MinDepth = cfg.Resilience.MinSplitDepth
		}
		if cfg.Resilience.DisableHostFallback {
			res.HostFallback = false
		}
		res.ECC = mode == VerifyECC
		s.sched.Res = res
		s.sched.Remap = s.remapRow
		s.sched.Release = s.alloc.Free
		if cfg.Resilience.Replicate != 0 {
			// The proactive rung: replicate rows at allocation, majority-vote
			// intra-subarray requests, spread wear across the copies. Gated
			// on the resilience layer being active so that a fault-free
			// system with Replicate set stays bit-identical to the baseline.
			s.replicate = cfg.Resilience.Replicate
			s.repRows = make(map[uint64][]memarch.RowAddr)
			s.repMember = make(map[uint64]bool)
			s.sched.Replicas = s.replicaRows
			ctl.SetWearSpread(func(a memarch.RowAddr) int {
				if s.repMember[geo.Encode(a)] {
					return s.replicate
				}
				return 1
			})
		}
	}
	return s, nil
}

// replicaRows returns the replica rows of a primary row (nil when the row
// is not replicated or replication is inert).
func (s *System) replicaRows(a memarch.RowAddr) []memarch.RowAddr {
	if s.repRows == nil {
		return nil
	}
	return s.repRows[s.mem.Geometry().Encode(a)]
}

// registerReplicas records a primary row's replica copies for the voting
// and wear-spread hooks.
func (s *System) registerReplicas(primary memarch.RowAddr, reps []memarch.RowAddr) {
	geo := s.mem.Geometry()
	s.repRows[geo.Encode(primary)] = reps
	s.repMember[geo.Encode(primary)] = true
	for _, r := range reps {
		s.repMember[geo.Encode(r)] = true
	}
}

// dropReplicas releases a row's replicas back to the allocator and forgets
// them — used when a primary row is retired and remapped mid-operation
// (the fresh row starts life unreplicated; voting simply stops applying to
// requests that touch it).
func (s *System) dropReplicas(primary memarch.RowAddr) {
	if s.repRows == nil {
		return
	}
	geo := s.mem.Geometry()
	key := geo.Encode(primary)
	reps, ok := s.repRows[key]
	if !ok {
		return
	}
	delete(s.repRows, key)
	delete(s.repMember, key)
	for _, r := range reps {
		delete(s.repMember, geo.Encode(r))
	}
	s.alloc.Free(reps)
	s.bumpLayout()
}

// bumpLayout records a row-layout mutation: the generation counter that
// re-footprints in-flight BatchBuilders also invalidates the lowered-
// program cache, so a cached program can never be served for a layout it
// was not lowered against.
func (s *System) bumpLayout() {
	s.layoutGen++
	s.ctl.InvalidateProgramCache()
}

// beginOp opens a fresh per-operation fault substream. Every public
// operation (Apply/Batch op, Write, Read) draws its faults from a stream
// seeded by (Seed, operation sequence number), which is what lets Batch
// run fault-injected shards concurrently yet produce exactly the faults
// sequential execution would have drawn.
func (s *System) beginOp() {
	if inj := s.ctl.Injector(); inj != nil {
		inj.BeginOp()
	}
}

// remapRow retires a worn-out row and hands back a fresh one.
func (s *System) remapRow(old memarch.RowAddr) (memarch.RowAddr, error) {
	s.alloc.Retire(old)
	rows, err := s.alloc.AllocRows(1)
	if err != nil {
		return memarch.RowAddr{}, err
	}
	s.bumpLayout()
	return rows[0], nil
}

// MaxORRows returns the one-step OR depth of the configured technology
// (128 for PCM/ReRAM, 2 for STT-MRAM and DRAM). Wider ORs are legal — the
// runtime chains them — but pay intermediate writebacks.
func (s *System) MaxORRows() int { return s.ctl.MaxORRows() }

// UsableRowsPerSubarray reports how many rows of each subarray the
// allocator may hand out: the geometry's rows minus the scheduler's
// scratch row and the technology backend's reserved compute rows (0 for
// the NVMs, 7 for DRAM).
func (s *System) UsableRowsPerSubarray() int { return s.alloc.UsableRowsPerSubarray() }

// RowBits returns the rank-logical row length in bits: vectors up to this
// length occupy a single row and enjoy one-step operations.
func (s *System) RowBits() int { return s.mem.Geometry().RowBits() }

// Stats returns a snapshot of the accumulated statistics.
func (s *System) Stats() Stats {
	out := s.stats
	out.Ops = make(map[string]int64, len(s.stats.Ops))
	for k, v := range s.stats.Ops {
		out.Ops[k] = v
	}
	return out
}

// PerfStats are the simulator's own raw-speed counters: how often the
// lowered-program cache short-circuited lowering and how often a batch
// window reused a pooled shard sandbox instead of building a fresh one.
// They live apart from Stats on purpose — Stats describes the simulated
// hardware's activity (identical whether or not the cache is on), while
// PerfStats describes the wall-clock machinery underneath it.
type PerfStats struct {
	// ProgramCacheHits / ProgramCacheMisses count executions served from /
	// added to the lowered-program cache, including executions inside
	// batch-shard sandboxes (folded in when a sandbox is released).
	ProgramCacheHits   int64
	ProgramCacheMisses int64
	// ProgramCacheEntries is the live System's current cached-program count.
	ProgramCacheEntries int
	// SandboxPoolGets counts shard sandboxes handed out for batch windows;
	// SandboxPoolReuses counts how many of those were recycled from the
	// pool rather than constructed.
	SandboxPoolGets   int64
	SandboxPoolReuses int64
}

// PerfStats returns a snapshot of the raw-speed counters.
func (s *System) PerfStats() PerfStats {
	cs := s.ctl.CacheStats()
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	return PerfStats{
		ProgramCacheHits:    cs.Hits + s.cacheAbsorbed.Hits,
		ProgramCacheMisses:  cs.Misses + s.cacheAbsorbed.Misses,
		ProgramCacheEntries: cs.Entries,
		SandboxPoolGets:     s.poolGets,
		SandboxPoolReuses:   s.poolReuses,
	}
}

// sandboxPoolCap bounds how many released shard sandboxes the pool keeps.
// A window runs one sandbox per shard, so the cap only matters for
// pathologically wide windows; beyond it, sandboxes fall back to GC.
const sandboxPoolCap = 64

// getSandbox returns a shard-sandbox System: a pooled one, reset to the
// exact observable state New(s.cfg) would produce, or a freshly built one
// when the pool is empty.
func (s *System) getSandbox() (*System, error) {
	s.poolMu.Lock()
	var sb *System
	if n := len(s.sandboxPool); n > 0 {
		sb = s.sandboxPool[n-1]
		s.sandboxPool[n-1] = nil
		s.sandboxPool = s.sandboxPool[:n-1]
	}
	s.poolGets++
	if sb != nil {
		s.poolReuses++
	}
	s.poolMu.Unlock()
	if sb == nil {
		return New(s.cfg)
	}
	sb.resetForReuse()
	return sb, nil
}

// putSandbox releases a shard sandbox back to the pool once its window is
// finished (merged or discarded). The sandbox's program-cache traffic is
// folded into the live System's PerfStats first, so cache observability
// covers shard executions; the sandbox itself is reset on its next get.
func (s *System) putSandbox(sb *System) {
	if sb == nil {
		return
	}
	cs := sb.ctl.CacheStats()
	s.poolMu.Lock()
	s.cacheAbsorbed.Hits += cs.Hits
	s.cacheAbsorbed.Misses += cs.Misses
	if len(s.sandboxPool) < sandboxPoolCap {
		s.sandboxPool = append(s.sandboxPool, sb)
	}
	s.poolMu.Unlock()
}

// resetForReuse restores a pooled sandbox to the observable state of a
// fresh New(s.cfg) System: memory content, allocator frontier, controller
// counters and mode registers, analog-check sampling stream, fault state,
// scheduler and host ledgers all rewind, so a reused sandbox replays a
// shard bit-identically to a fresh one. Differential tests pin that.
func (s *System) resetForReuse() {
	s.mem.Reset()
	s.alloc.Reset()
	s.ctl.ResetForReuse()
	if inj := s.ctl.Injector(); inj != nil {
		inj.Reset()
	}
	s.sched.ResetStats()
	for k := range s.stats.Ops {
		delete(s.stats.Ops, k)
	}
	s.stats.Requests = 0
	s.stats.BusySeconds = 0
	s.stats.EnergyJoules = 0
	for k := range s.repRows {
		delete(s.repRows, k)
	}
	for k := range s.repMember {
		delete(s.repMember, k)
	}
	s.layoutGen = 0
	s.hostVerifies = 0
	s.hostRetries = 0
	s.hostRowsRetired = 0
	s.hostBitsCorrected = 0
	s.hostEccDecodes = 0
	s.hostEccCorrected = 0
	s.hostEccUncorrectable = 0
}

// BitVector is a handle to a bit-vector stored in the PIM memory.
type BitVector struct {
	sys  *System
	bits int
	rows []memarch.RowAddr
}

// Len returns the vector length in bits.
func (b *BitVector) Len() int { return b.bits }

// Rows returns the number of physical rows backing the vector.
func (b *BitVector) Rows() int { return len(b.rows) }

// ErrFreed is returned when a freed vector is used.
var ErrFreed = errors.New("pinatubo: bit-vector already freed")

// ErrResilienceExhausted is wrapped into the error returned when the
// verify-and-retry layer walks every rung of its degradation ladder without
// obtaining a verified result. Match with errors.Is.
var ErrResilienceExhausted = pimrt.ErrResilienceExhausted

// ErrUncorrectable is wrapped alongside ErrResilienceExhausted when the
// failure began as a SECDED detected-uncorrectable syndrome (VerifyECC
// mode) and the ladder could not recover either. Match with errors.Is.
var ErrUncorrectable = pimrt.ErrUncorrectable

func (b *BitVector) check(s *System) error {
	if b == nil || b.sys == nil {
		return ErrFreed
	}
	if b.sys != s {
		return errors.New("pinatubo: bit-vector belongs to a different system")
	}
	return nil
}

func (s *System) rowsFor(bits int) (int, error) {
	if bits < 1 {
		return 0, fmt.Errorf("pinatubo: vector of %d bits", bits)
	}
	rb := s.RowBits()
	return (bits + rb - 1) / rb, nil
}

// Alloc allocates one bit-vector (pim_malloc). With the replication rung
// active, every row is allocated as a subarray-local group of Replicate
// copies: the first is the primary the vector names, the rest are the
// replicas the majority vote senses.
func (s *System) Alloc(bits int) (*BitVector, error) {
	n, err := s.rowsFor(bits)
	if err != nil {
		return nil, err
	}
	if s.replicate >= 3 {
		rows := make([]memarch.RowAddr, 0, n)
		for i := 0; i < n; i++ {
			grp, err := s.alloc.AllocGroupRows(s.replicate)
			if err != nil {
				return nil, err
			}
			s.registerReplicas(grp[0], grp[1:])
			rows = append(rows, grp[0])
		}
		return &BitVector{sys: s, bits: bits, rows: rows}, nil
	}
	rows, err := s.alloc.AllocRows(n)
	if err != nil {
		return nil, err
	}
	return &BitVector{sys: s, bits: bits, rows: rows}, nil
}

// AllocGroup allocates count single-row vectors guaranteed to share a
// subarray, so operations across the whole group are one-step multi-row
// ops. Each vector must fit one row.
func (s *System) AllocGroup(count, bits int) ([]*BitVector, error) {
	if count < 1 {
		return nil, fmt.Errorf("pinatubo: group of %d vectors", count)
	}
	if bits < 1 || bits > s.RowBits() {
		return nil, fmt.Errorf("pinatubo: group vectors must fit one row (1..%d bits), got %d",
			s.RowBits(), bits)
	}
	n := count
	if s.replicate >= 3 {
		// One group allocation holds the primaries and every replica in the
		// same subarray, so grouped operands stay votable.
		n = count * s.replicate
	}
	rows, err := s.alloc.AllocGroupRows(n)
	if err != nil {
		return nil, err
	}
	if s.replicate >= 3 {
		per := s.replicate - 1
		for i := 0; i < count; i++ {
			s.registerReplicas(rows[i], rows[count+i*per:count+(i+1)*per])
		}
	}
	out := make([]*BitVector, count)
	for i := range out {
		out[i] = &BitVector{sys: s, bits: bits, rows: rows[i : i+1]}
	}
	return out, nil
}

// Free returns the vector's rows to the allocator.
func (s *System) Free(b *BitVector) error {
	if err := b.check(s); err != nil {
		return err
	}
	for _, row := range b.rows {
		s.dropReplicas(row)
	}
	s.alloc.Free(b.rows)
	s.bumpLayout()
	b.sys = nil
	return nil
}

// Result reports one logical operation's cost.
type Result struct {
	// Class is the dominant placement class. Its String() form ("intra-
	// subarray", ...) matches the pre-enum API, so %s formatting and JSON
	// output are unchanged.
	Class PlacementClass
	// Requests is the number of hardware requests the runtime issued.
	Requests int
	// Latency is the simulated time on the memory channel.
	Latency time.Duration
	// EnergyJoules is the simulated energy.
	EnergyJoules float64
	// Count is the population count for OpPopcount results; nil for every
	// other operation.
	Count *int

	// Resilience outcome — all zero unless faults were injected and the
	// verify-and-retry layer had to intervene.
	//
	// Retries counts hardware re-executions; Degraded names the worst
	// degradation rung taken ("", "depth-split", "inter-digital",
	// "host-cpu"); BitsCorrected counts wrong bits the verification layer
	// intercepted before they could reach the caller.
	Retries       int
	Degraded      string
	BitsCorrected int64

	// Proactive replication outcome — all zero unless Resilience.Replicate
	// was set. Votes counts majority-voted activations taken; BitsOutvoted
	// counts bit positions where the replica copies disagreed and the
	// majority overruled the minority.
	Votes        int
	BitsOutvoted int64
}

func (s *System) account(class PlacementClass, requests int, seconds, joules float64) Result {
	s.stats.Ops[class.String()]++
	s.stats.Requests += int64(requests)
	s.stats.BusySeconds += seconds
	s.stats.EnergyJoules += joules
	return Result{
		Class:        class,
		Requests:     requests,
		Latency:      time.Duration(seconds * float64(time.Second)),
		EnergyJoules: joules,
	}
}

// Write stores words into the vector through the host interface (DDR
// burst + cell programming), zero-filling beyond len(words).
func (s *System) Write(b *BitVector, words []uint64) (Result, error) {
	if err := b.check(s); err != nil {
		return Result{}, err
	}
	if len(words) > bitvec.WordsFor(b.bits) {
		return Result{}, fmt.Errorf("pinatubo: %d words exceed %d-bit vector", len(words), b.bits)
	}
	s.beginOp()
	var seconds, joules float64
	perRow := s.RowBits() / 64
	for i := range b.rows {
		lo := i * perRow
		hi := lo + perRow
		if hi > len(words) {
			hi = len(words)
		}
		var chunk []uint64
		if lo < len(words) {
			chunk = words[lo:hi]
		}
		bitsHere := s.RowBits()
		if i == len(b.rows)-1 {
			bitsHere = b.bits - i*s.RowBits()
		}
		old := b.rows[i]
		sec, j, err := s.writeRow(&b.rows[i], chunk, bitsHere)
		if err != nil {
			return Result{}, err
		}
		seconds += sec
		joules += j
		if b.rows[i] != old {
			// The write retired and remapped the row: the fresh row has no
			// replicas, so it simply falls back to unreplicated execution
			// (verification still guards it).
			s.dropReplicas(old)
		}
		sec, j, err = s.programReplicas(b.rows[i], chunk, bitsHere)
		if err != nil {
			return Result{}, err
		}
		seconds += sec
		joules += j
	}
	return s.account(PlaceHostWrite, len(b.rows), seconds, joules), nil
}

// programReplicas mirrors a freshly written primary row into its replicas
// with plain (unverified) host programs — the majority vote tolerates an
// imperfect copy, and every voted result is still verified downstream.
// The cost of keeping R copies is priced as the R-1 extra programs it is.
func (s *System) programReplicas(primary memarch.RowAddr, chunk []uint64, bitsHere int) (float64, float64, error) {
	var seconds, joules float64
	for _, rep := range s.replicaRows(primary) {
		r, err := s.ctl.WriteRowFromHost(rep, chunk, bitsHere)
		if err != nil {
			return seconds, joules, err
		}
		seconds += r.Seconds
		joules += r.Energy.Total()
	}
	return seconds, joules, nil
}

// writeRow programs one row from the host. With resilience on, the stored
// row is verified against the intended data; stuck cells retire the row to
// a fresh one (updating *addr — data rows must hold true data, or the
// runtime's digital reference would be built on garbage).
func (s *System) writeRow(addr *memarch.RowAddr, chunk []uint64, bitsHere int) (float64, float64, error) {
	r, err := s.ctl.WriteRowFromHost(*addr, chunk, bitsHere)
	if err != nil {
		return 0, 0, err
	}
	seconds, joules := r.Seconds, r.Energy.Total()
	if s.sched.Res == nil {
		return seconds, joules, nil
	}
	golden := make([]uint64, bitvec.WordsFor(bitsHere))
	copy(golden, chunk)
	if s.verify == VerifyECC {
		return s.writeRowECC(addr, chunk, golden, bitsHere, seconds, joules)
	}
	for try := 0; ; try++ {
		v, err := s.ctl.VerifyAgainst(0, bitsHere, *addr, golden, golden)
		if err != nil {
			return seconds, joules, err
		}
		s.hostVerifies++
		seconds += v.Seconds
		joules += v.Energy.Total()
		if v.OK {
			return seconds, joules, nil
		}
		s.hostBitsCorrected += int64(v.MismatchedBits)
		if try >= s.sched.Res.MaxRetries {
			return seconds, joules, fmt.Errorf("pinatubo: writing row %v: %w",
				*addr, ErrResilienceExhausted)
		}
		s.hostRetries++
		if v.WriteFault {
			if fresh, err := s.remapRow(*addr); err == nil {
				*addr = fresh
				s.hostRowsRetired++
			}
		}
		r, err := s.ctl.WriteRowFromHost(*addr, chunk, bitsHere)
		if err != nil {
			return seconds, joules, err
		}
		seconds += r.Seconds
		joules += r.Energy.Total()
	}
}

// writeRowECC verifies a host write through the row's SECDED check bits:
// the syndrome decode rides the final program-verify sense, single stuck
// bits are repaired in place, and an uncorrectable syndrome retires the row
// (host writes fail through worn cells, not sense flips, so retrying the
// same row would burn it further).
func (s *System) writeRowECC(addr *memarch.RowAddr, chunk, golden []uint64, bitsHere int, seconds, joules float64) (float64, float64, error) {
	for try := 0; ; try++ {
		v, err := s.ctl.CorrectOrEscalate(*addr, bitsHere, golden)
		if err != nil {
			return seconds, joules, err
		}
		s.hostEccDecodes++
		seconds += v.Seconds
		joules += v.Energy.Total()
		s.hostEccCorrected += int64(v.CorrectedBits)
		if v.OK {
			return seconds, joules, nil
		}
		s.hostEccUncorrectable++
		if try >= s.sched.Res.MaxRetries {
			return seconds, joules, fmt.Errorf("pinatubo: writing row %v: %w (%w)",
				*addr, ErrResilienceExhausted, ErrUncorrectable)
		}
		s.hostRetries++
		if fresh, err := s.remapRow(*addr); err == nil {
			*addr = fresh
			s.hostRowsRetired++
		}
		r, err := s.ctl.WriteRowFromHost(*addr, chunk, bitsHere)
		if err != nil {
			return seconds, joules, err
		}
		seconds += r.Seconds
		joules += r.Energy.Total()
	}
}

// Read returns the vector contents through the host interface.
func (s *System) Read(b *BitVector) ([]uint64, Result, error) {
	s.beginOp()
	return s.readInto(b, nil)
}

// readInto is Read with an optional program capture: when prog is non-nil
// every controller request and verification pass of the read is lowered
// into it, so the batch executor can schedule host reads (OpPopcount) on
// the channel like any other operation.
func (s *System) readInto(b *BitVector, prog *cmdstream.Program) ([]uint64, Result, error) {
	if err := b.check(s); err != nil {
		return nil, Result{}, err
	}
	words := make([]uint64, 0, bitvec.WordsFor(b.bits))
	var seconds, joules float64
	for i, addr := range b.rows {
		bitsHere := s.RowBits()
		if i == len(b.rows)-1 {
			bitsHere = b.bits - i*s.RowBits()
		}
		row, sec, j, err := s.readRow(addr, bitsHere, prog)
		if err != nil {
			return nil, Result{}, err
		}
		words = append(words, row...)
		seconds += sec
		joules += j
	}
	words = words[:bitvec.WordsFor(b.bits)]
	return words, s.account(PlaceHostRead, len(b.rows), seconds, joules), nil
}

// readRow bursts one row to the host. With resilience on, the sensed words
// are checked against the row's true contents and the read reissued on a
// flip (plain reads run at the full read margin, so this almost never
// loops — but a wrong word never escapes).
func (s *System) readRow(addr memarch.RowAddr, bitsHere int, prog *cmdstream.Program) ([]uint64, float64, float64, error) {
	var seconds, joules float64
	for try := 0; ; try++ {
		r, err := s.ctl.ReadRow(addr, bitsHere)
		if err != nil {
			return nil, seconds, joules, err
		}
		if prog != nil {
			prog.Emit(r.Instr())
		}
		seconds += r.Seconds
		joules += r.Energy.Total()
		if s.sched.Res == nil {
			return r.Words, seconds, joules, nil
		}
		if s.verify == VerifyECC {
			// Correct the sensed words through the row's check bits first;
			// the golden compare below then only catches (and retries) the
			// uncorrectable residue.
			v, err := s.ctl.ECCCorrectRead(addr, bitsHere, r.Words)
			if err != nil {
				return nil, seconds, joules, err
			}
			if v.Seconds > 0 { // a decode actually ran (row was encoded)
				s.hostEccDecodes++
			}
			if prog != nil {
				prog.Emit(v.Instr(addr))
			}
			seconds += v.Seconds
			joules += v.Energy.Total()
			s.hostEccCorrected += int64(v.CorrectedBits)
			if v.Uncorrectable {
				s.hostEccUncorrectable++
			}
		}
		golden, err := s.ctl.Golden(sense.OpRead, []memarch.RowAddr{addr}, bitsHere)
		if err != nil {
			return nil, seconds, joules, err
		}
		s.hostVerifies++
		if !bitvec.EqualWords(r.Words, golden, bitsHere) {
			s.hostBitsCorrected += int64(bitvec.DiffCount(r.Words, golden, bitsHere))
			if try >= s.sched.Res.MaxRetries {
				return nil, seconds, joules, fmt.Errorf("pinatubo: reading row %v: %w",
					addr, ErrResilienceExhausted)
			}
			s.hostRetries++
			continue
		}
		return r.Words, seconds, joules, nil
	}
}

// sameLength validates operand lengths.
func sameLength(dst *BitVector, srcs ...*BitVector) error {
	for _, src := range srcs {
		if src.bits != dst.bits {
			return fmt.Errorf("pinatubo: length mismatch: %d vs %d bits", src.bits, dst.bits)
		}
	}
	return nil
}

// Op identifies one of the public bulk bitwise operations. It exists so
// generic callers (benchmark harnesses, workload replayers) can drive the
// system through a single entry point — Apply — instead of switching over
// method names; Or/And/Xor/Not/Copy are thin wrappers over it.
type Op int

const (
	// OpOr ORs any number of operands ≥ 1 (one-step multi-row activation,
	// chained past the technology's depth limit).
	OpOr Op = iota
	// OpAnd ANDs exactly 2 operands (shifted-reference sensing).
	OpAnd
	// OpXor XORs exactly 2 operands (two SA micro-steps).
	OpXor
	// OpNot inverts exactly 1 operand (the latch's differential output).
	OpNot
	// OpCopy copies exactly 1 operand (read/write-back pass).
	OpCopy
	// OpPopcount counts the set bits of dst on the host CPU (no sources —
	// Pinatubo has no in-memory reduction; the vector is burst over the
	// bus and counted there). The count lands in Result.Count.
	OpPopcount
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpOr:
		return "or"
	case OpAnd:
		return "and"
	case OpXor:
		return "xor"
	case OpNot:
		return "not"
	case OpCopy:
		return "copy"
	case OpPopcount:
		return "popcount"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// internal maps the public op onto the sense-amplifier command.
func (o Op) internal() (sense.Op, error) {
	switch o {
	case OpOr:
		return sense.OpOR, nil
	case OpAnd:
		return sense.OpAND, nil
	case OpXor:
		return sense.OpXOR, nil
	case OpNot:
		return sense.OpINV, nil
	case OpCopy:
		return sense.OpRead, nil
	case OpPopcount:
		return 0, fmt.Errorf("pinatubo: %v runs on the host, not the sense amplifiers", o)
	default:
		return 0, fmt.Errorf("pinatubo: unknown Op %d", int(o))
	}
}

// arity returns the operation's source-operand bounds (max < 0 = unbounded).
func (o Op) arity() (min, max int) {
	switch o {
	case OpOr:
		return 1, -1
	case OpNot, OpCopy:
		return 1, 1
	case OpPopcount:
		return 0, 0
	default:
		return 2, 2
	}
}

// PlacementClass identifies the data path a completed operation took,
// ordered from host traffic through the in-memory classes fastest to
// slowest — comparing two classes with < / > ranks them, and the worst
// (largest) in-memory class is the one that bounds a batched operation.
type PlacementClass int

const (
	// PlaceNone is the zero value: no class established yet.
	PlaceNone PlacementClass = iota
	// PlaceHostRead is a host-interface read (DDR burst to the CPU).
	PlaceHostRead
	// PlaceHostWrite is a host-interface write (DDR burst + programming).
	PlaceHostWrite
	// PlaceIntraSubarray: all operand rows share a subarray; one-step
	// multi-row sensing.
	PlaceIntraSubarray
	// PlaceInterSubarray: operands share a bank but not a subarray.
	PlaceInterSubarray
	// PlaceInterBank: operands share a rank but not a bank.
	PlaceInterBank
)

// String names the class exactly as the pre-enum string API spelled it, so
// text and JSON output are unchanged.
func (c PlacementClass) String() string {
	switch c {
	case PlaceNone:
		return ""
	case PlaceHostRead:
		return "host-read"
	case PlaceHostWrite:
		return "host-write"
	case PlaceIntraSubarray:
		return "intra-subarray"
	case PlaceInterSubarray:
		return "inter-subarray"
	case PlaceInterBank:
		return "inter-bank"
	default:
		return fmt.Sprintf("PlacementClass(%d)", int(c))
	}
}

// MarshalJSON encodes the class as its name, keeping JSON output identical
// to the former string-typed field.
func (c PlacementClass) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", c.String())), nil
}

// worseClass folds per-batch placement classes into the dominant (slowest)
// one, so a multi-row vector reports the class that actually bounds it.
func worseClass(a, b PlacementClass) PlacementClass {
	if b > a {
		return b
	}
	return a
}

// placementClass maps an operand placement onto the public class.
func placementClass(p workload.Placement) PlacementClass {
	switch p {
	case workload.PlaceInterBank:
		return PlaceInterBank
	case workload.PlaceInterSub:
		return PlaceInterSubarray
	default:
		return PlaceIntraSubarray
	}
}

// classFromPim maps the controller's class onto the public one.
func classFromPim(c pim.Class) PlacementClass {
	switch c {
	case pim.ClassInterBank:
		return PlaceInterBank
	case pim.ClassInterSub:
		return PlaceInterSubarray
	default:
		return PlaceIntraSubarray
	}
}

// validateOp checks an operation's arity and operand handles/lengths — the
// shared front door of Apply and Batch.
func (s *System) validateOp(op Op, dst *BitVector, srcs []*BitVector) error {
	if op == OpPopcount {
		if len(srcs) != 0 {
			return fmt.Errorf("pinatubo: %v takes no source operands, got %d", op, len(srcs))
		}
		return dst.check(s)
	}
	if _, err := op.internal(); err != nil {
		return err
	}
	if lo, hi := op.arity(); len(srcs) < lo || (hi >= 0 && len(srcs) > hi) {
		if lo == hi {
			return fmt.Errorf("pinatubo: %v takes %d operand(s), got %d", op, lo, len(srcs))
		}
		return fmt.Errorf("pinatubo: %v takes at least %d operand(s), got %d", op, lo, len(srcs))
	}
	if err := b0check(s, dst, srcs); err != nil {
		return err
	}
	return sameLength(dst, srcs...)
}

// Apply computes dst = op(srcs...) inside the memory. It validates the
// operation's arity, runs every row batch of the vectors, and reports the
// folded cost with Class set to the worst placement class any batch took
// (the native path of the operands, even when a batch was degraded to a
// slower one by the resilience layer).
//
// Options: WithContext attaches cancellation, observed between row
// chunks — a cancelled multi-row Apply stops with ctx.Err() and the
// completed prefix of row batches stays applied, exactly as if a shorter
// vector had been processed. WithProgramCache overrides the System's
// program-cache default for this call. WithArbiter is accepted for
// signature uniformity but has no effect: a single Apply issues its
// requests back-to-back, so there is nothing to arbitrate.
func (s *System) Apply(op Op, dst *BitVector, srcs []*BitVector, opts ...Option) (Result, error) {
	o, err := resolveOpts(opts)
	if err != nil {
		return Result{}, err
	}
	return s.applyOpts(op, dst, srcs, nil, o)
}

// apply is Apply with an optional program capture under default options:
// when prog is non-nil the operation's full lowered cmdstream program
// (every controller request and verification pass, in execution order) is
// appended to it. The batch executor schedules those programs through
// chansim and owns its own cancellation (between ops, not row chunks).
func (s *System) apply(op Op, dst *BitVector, srcs []*BitVector, prog *cmdstream.Program) (Result, error) {
	return s.applyOpts(op, dst, srcs, prog, callOpts{arb: ArbFIFO})
}

// applyOpts is the Apply implementation with resolved per-call options.
func (s *System) applyOpts(op Op, dst *BitVector, srcs []*BitVector, prog *cmdstream.Program, o callOpts) (Result, error) {
	if o.progCache != nil && *o.progCache != s.ctl.ProgramCacheEnabled() {
		prev := s.ctl.ProgramCacheEnabled()
		s.ctl.SetProgramCache(*o.progCache)
		defer s.ctl.SetProgramCache(prev)
	}
	if err := s.validateOp(op, dst, srcs); err != nil {
		return Result{}, err
	}
	s.beginOp()
	if op == OpPopcount {
		// Host-side reduction over dst itself: read the vector out and
		// count there; the cost is exactly the host read. The count masks
		// the final partial word in place — no Vector round-trip.
		words, res, err := s.readInto(dst, prog)
		if err != nil {
			return Result{}, err
		}
		n := bitvec.PopcountWords(words, dst.bits)
		res.Count = &n
		return res, nil
	}
	sop, err := op.internal()
	if err != nil {
		return Result{}, err
	}
	var seconds, joules float64
	requests := 0
	class := PlaceNone
	var resil resilienceTally
	if cap(s.rowScratch) < len(srcs) {
		s.rowScratch = make([]memarch.RowAddr, len(srcs))
	}
	for batch := 0; batch < len(dst.rows); batch++ {
		if batch > 0 && o.ctx != nil {
			// Cancellation is observed between row chunks: the completed
			// prefix stays applied, the remainder never starts.
			if err := o.ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		rows := s.rowScratch[:len(srcs)]
		for i, src := range srcs {
			rows[i] = src.rows[batch]
		}
		bitsHere := s.RowBits()
		if batch == len(dst.rows)-1 {
			bitsHere = dst.bits - batch*s.RowBits()
		}
		if op == OpOr {
			// The OR scheduler owns its own placement planning (per-subarray
			// one-step groups plus a combine step) and verification.
			p, err := pimrt.PlacementOf(rows)
			if err != nil {
				return Result{}, err
			}
			class = worseClass(class, placementClass(p))
			res, err := s.sched.OR(rows, bitsHere, dst.rows[batch])
			if err != nil {
				return Result{}, err
			}
			if res.FinalDst != dst.rows[batch] {
				s.dropReplicas(dst.rows[batch])
			}
			dst.rows[batch] = res.FinalDst
			if prog != nil {
				prog.Append(res.Program)
			}
			seconds += res.Cost.Seconds
			joules += res.Cost.Joules
			requests += res.Requests
			resil.add(res)
			continue
		}
		if s.sched.Res == nil {
			res, err := s.ctl.Execute(sop, rows, bitsHere, &dst.rows[batch])
			if err != nil {
				return Result{}, err
			}
			if prog != nil {
				prog.Emit(res.Instr())
			}
			seconds += res.Seconds
			joules += res.Energy.Total()
			requests++
			class = worseClass(class, classFromPim(res.Class))
			continue
		}
		cl, err := s.ctl.Classify(rows)
		if err != nil {
			return Result{}, err
		}
		class = worseClass(class, classFromPim(cl))
		res, err := s.sched.Execute(sop, rows, bitsHere, dst.rows[batch])
		if err != nil {
			return Result{}, err
		}
		if res.FinalDst != dst.rows[batch] {
			s.dropReplicas(dst.rows[batch])
		}
		dst.rows[batch] = res.FinalDst
		if prog != nil {
			prog.Append(res.Program)
		}
		seconds += res.Cost.Seconds
		joules += res.Cost.Joules
		requests += res.Requests
		resil.add(res)
	}
	return resil.fill(s.account(class, requests, seconds, joules)), nil
}

// Or computes dst = OR of all srcs inside the memory. Any number of
// operands ≥ 1 is accepted: the runtime schedules per-subarray one-step
// multi-row ORs (up to MaxORRows) and combines partial results.
func (s *System) Or(dst *BitVector, srcs ...*BitVector) (Result, error) {
	return s.Apply(OpOr, dst, srcs)
}

// resilienceTally folds per-batch schedule outcomes into one Result.
type resilienceTally struct {
	retries       int
	degraded      string
	bitsCorrected int64
	votes         int
	bitsOutvoted  int64
}

func (t *resilienceTally) add(res *pimrt.ScheduleResult) {
	t.retries += res.Retries
	t.degraded = pimrt.WorseDegraded(t.degraded, res.Degraded)
	t.bitsCorrected += res.BitsCorrected
	t.votes += res.Votes
	t.bitsOutvoted += res.BitsOutvoted
}

func (t *resilienceTally) fill(r Result) Result {
	r.Retries = t.retries
	r.Degraded = t.degraded
	r.BitsCorrected = t.bitsCorrected
	r.Votes = t.votes
	r.BitsOutvoted = t.bitsOutvoted
	return r
}

// b0check validates dst and srcs handles.
func b0check(s *System, dst *BitVector, srcs []*BitVector) error {
	if err := dst.check(s); err != nil {
		return err
	}
	for _, src := range srcs {
		if err := src.check(s); err != nil {
			return err
		}
	}
	return nil
}

// And computes dst = a AND b (2-row operation via the shifted reference).
func (s *System) And(dst, a, b *BitVector) (Result, error) {
	return s.Apply(OpAnd, dst, []*BitVector{a, b})
}

// Xor computes dst = a XOR b (two SA micro-steps).
func (s *System) Xor(dst, a, b *BitVector) (Result, error) {
	return s.Apply(OpXor, dst, []*BitVector{a, b})
}

// Not computes dst = NOT a (the latch's differential output).
func (s *System) Not(dst, a *BitVector) (Result, error) {
	return s.Apply(OpNot, dst, []*BitVector{a})
}

// Copy computes dst = a through a read/write-back pass.
func (s *System) Copy(dst, a *BitVector) (Result, error) {
	return s.Apply(OpCopy, dst, []*BitVector{a})
}

// Popcount reads the vector to the host and counts set bits, charging the
// host-read cost (Pinatubo has no in-memory popcount; the paper leaves
// reduction operations to the CPU). It is a thin wrapper over
// Apply(OpPopcount, b): the count also lands in Result.Count.
func (s *System) Popcount(b *BitVector) (int, Result, error) {
	res, err := s.Apply(OpPopcount, b, nil)
	if err != nil {
		return 0, Result{}, err
	}
	return *res.Count, res, nil
}

// HardwareCounters mirrors the memory controller's lifetime activity
// counters — the DIMM-side view of the work done (row activations, sensing
// steps, cell programs, and how many data bits actually crossed the DDR
// bus — the quantity Pinatubo exists to minimise).
type HardwareCounters struct {
	OpsByClass  map[string]int64
	Activations int64
	SenseSteps  int64
	Writebacks  int64
	BusBits     int64
}

// HardwareCounters returns the controller's counters.
func (s *System) HardwareCounters() HardwareCounters {
	c := s.ctl.Counters()
	out := HardwareCounters{
		OpsByClass:  make(map[string]int64, len(c.Ops)),
		Activations: c.Activations,
		SenseSteps:  c.SenseSteps,
		Writebacks:  c.Writebacks,
		BusBits:     c.BusBits,
	}
	for class, n := range c.Ops {
		out.OpsByClass[class.String()] = n
	}
	return out
}

// FaultStats is the system's cumulative fault-and-resilience ledger: what
// the injected fault model actually did to the hardware (ground truth) and
// what the verify-and-retry layer did about it. All zero when Config.Fault
// is zero. Batch execution updates this ledger too: with an injector
// attached a batch runs its ops in order on the live system, so the ledger
// reads exactly as a sequence of Apply calls.
type FaultStats struct {
	// Ground truth from the injector.
	SenseFlips       int64 // bits flipped on the sensing path
	ActivationFaults int64 // transient multi-row activation failures
	StuckRows        int64 // rows that developed stuck-at bits
	StuckBitsForced  int64 // written bits overridden by stuck cells
	RowWrites        int64 // row programs seen by the wear model

	// The resilience layer's response (PIM scheduler + host paths).
	Verifies        int64 // read-back verification passes
	Retries         int64 // request re-executions
	DepthReductions int64 // failing deep ORs re-run at lower depth
	InterFallbacks  int64 // requests degraded to the digital inter path
	HostFallbacks   int64 // requests degraded to the host CPU
	RowsRetired     int64 // worn rows retired and remapped
	BitsCorrected   int64 // wrong bits intercepted before reaching a caller

	// In-array SECDED activity — all zero outside VerifyECC mode.
	EccDecodes        int64 // syndrome decodes issued (PIM scheduler + host paths)
	EccCorrectedBits  int64 // bits fixed in place by SECDED correction
	EccUncorrectables int64 // double-bit syndromes escalated to the ladder

	// Proactive replication activity — all zero unless Resilience.Replicate
	// was set.
	Votes        int64 // majority-voted activations taken
	BitsOutvoted int64 // disagreeing bit positions overruled by the majority
}

// FaultStats returns a snapshot of the cumulative fault activity.
func (s *System) FaultStats() FaultStats {
	out := FaultStats{
		Verifies:      s.hostVerifies,
		Retries:       s.hostRetries,
		RowsRetired:   s.hostRowsRetired,
		BitsCorrected: s.hostBitsCorrected,
	}
	if inj := s.ctl.Injector(); inj != nil {
		st := inj.Stats()
		out.SenseFlips = st.SenseFlips
		out.ActivationFaults = st.ActivationFaults
		out.StuckRows = st.StuckRows
		out.StuckBitsForced = st.StuckBitsForced
		out.RowWrites = st.RowWrites
	}
	sc := s.sched.FaultStats()
	out.Verifies += sc.Verifies
	out.Retries += sc.Retries
	out.DepthReductions = sc.DepthReductions
	out.InterFallbacks = sc.InterFallbacks
	out.HostFallbacks = sc.HostFallbacks
	out.RowsRetired += sc.RowsRetired
	out.BitsCorrected += sc.BitsCorrected
	out.EccDecodes = s.hostEccDecodes + sc.EccDecodes
	out.EccCorrectedBits = s.hostEccCorrected + sc.EccCorrectedBits
	out.EccUncorrectables = s.hostEccUncorrectable + sc.EccUncorrectables
	out.Votes = sc.Votes
	out.BitsOutvoted = sc.BitsOutvoted
	return out
}

// HottestRow reports the most-programmed physical row and its write count —
// the PCM endurance hot spot (chained operations concentrate writes on
// accumulator rows; one-step multi-row ops do not).
func (s *System) HottestRow() (rowDescription string, writes int64) {
	addr, n := s.mem.HottestRow()
	if n == 0 {
		return "", 0
	}
	return addr.String(), n
}

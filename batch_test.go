package pinatubo

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// spreadGeometry is a single-channel, single-rank organisation with one
// subarray per bank, so successive operand groups land in successive banks
// and a batch's ops are bank-disjoint — the layout the batch scheduler's
// concurrency (and its bit-identity with the planner) is easiest to see in.
func spreadGeometry() Geometry {
	return Geometry{
		Channels:         1,
		RanksPerChannel:  1,
		ChipsPerRank:     8,
		BanksPerChip:     16,
		SubarraysPerBank: 1,
		MatsPerSubarray:  16,
		RowsPerSubarray:  256,
		MatRowBits:       4096,
		MuxRatio:         32,
	}
}

// buildBatchOps allocates and seeds one op of every public kind on s, each
// in its own operand group (its own bank under spreadGeometry), with data
// drawn from a fixed seed — calling it on two identically configured
// systems produces bit-identical twins.
func buildBatchOps(t *testing.T, s *System, bits int) []BatchOp {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	words := (bits + 63) / 64
	seed := func(v *BitVector) {
		data := make([]uint64, words)
		for i := range data {
			data[i] = rng.Uint64()
		}
		if _, err := s.Write(v, data); err != nil {
			t.Fatal(err)
		}
	}
	var ops []BatchOp
	add := func(op Op, nsrc int) {
		g, err := s.AllocGroup(nsrc+1, bits)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range g {
			seed(v)
		}
		ops = append(ops, BatchOp{Op: op, Dst: g[nsrc], Srcs: g[:nsrc]})
	}
	add(OpOr, 4) // 4 operands: chained past STT-MRAM's 2-row depth limit
	add(OpAnd, 2)
	add(OpXor, 2)
	add(OpNot, 1)
	add(OpCopy, 1)
	add(OpPopcount, 0)
	return ops
}

// TestBatchDifferential checks the batch executor against the sequential
// path it must be indistinguishable from: for every technology and verify
// mode, Batch of N ops on one system and N Apply calls on an identically
// seeded twin produce bit-identical per-op Results, memory contents, and
// statistics ledgers.
func TestBatchDifferential(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"pcm", Config{Tech: PCM, Geometry: spreadGeometry()}},
		{"stt-mram", Config{Tech: STTMRAM, Geometry: spreadGeometry()}},
		{"reram", Config{Tech: ReRAM, Geometry: spreadGeometry()}},
		{"pcm-readback", Config{Tech: PCM, Geometry: spreadGeometry(),
			Resilience: ResilienceConfig{Verify: VerifyReadback}}},
		{"pcm-ecc", Config{Tech: PCM, Geometry: spreadGeometry(),
			Resilience: ResilienceConfig{Verify: VerifyECC}}},
		{"pcm-faulty", Config{Tech: PCM, Geometry: spreadGeometry(),
			Fault: FaultConfig{Seed: 3, SenseFlipRate: 1e-4, ActivationFailRate: 1e-4}}},
		{"pcm-faulty-hot", Config{Tech: PCM, Geometry: spreadGeometry(),
			Fault: FaultConfig{Seed: 9, SenseFlipRate: 1e-3, ActivationFailRate: 1e-4}}},
		{"pcm-replicated-faulty", Config{Tech: PCM, Geometry: spreadGeometry(),
			Resilience: ResilienceConfig{Verify: VerifyReadback, Replicate: 3},
			Fault:      FaultConfig{Seed: 3, SenseFlipRate: 1e-3, ActivationFailRate: 1e-4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batched, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			const bits = 4096
			opsA := buildBatchOps(t, batched, bits)
			opsB := buildBatchOps(t, serial, bits)

			want := make([]Result, len(opsB))
			for i, op := range opsB {
				res, err := serial.Apply(op.Op, op.Dst, op.Srcs)
				if err != nil {
					t.Fatalf("sequential op %d (%v): %v", i, op.Op, err)
				}
				want[i] = res
			}
			br, err := batched.Batch(opsA)
			if err != nil {
				t.Fatal(err)
			}

			for i := range opsA {
				if !reflect.DeepEqual(br.Results[i], want[i]) {
					t.Errorf("op %d (%v): batch result %+v != sequential %+v",
						i, opsA[i].Op, br.Results[i], want[i])
				}
			}
			// Per-op fault substreams let even fault-injected batches shard:
			// these ops are bank-disjoint, so every case runs one op per
			// shard (a mid-batch row retirement would replay sequentially,
			// but none of these configs wears a row out).
			if br.Shards != len(opsA) {
				t.Errorf("Shards=%d, want %d (bank-disjoint ops)", br.Shards, len(opsA))
			}
			if br.Makespan <= 0 || br.Makespan > br.Sequential {
				t.Errorf("Makespan=%v outside (0, Sequential=%v]", br.Makespan, br.Sequential)
			}
			if len(br.Completion) != len(opsA) {
				t.Errorf("Completion has %d entries, want %d", len(br.Completion), len(opsA))
			}

			// Ledgers. Every counter is integer except BusySeconds and
			// EnergyJoules, and with one op per shard even those merge in
			// op order — so the comparison is fully bit-identical.
			if a, b := batched.Stats(), serial.Stats(); !reflect.DeepEqual(a, b) {
				t.Errorf("Stats diverge: batch %+v, sequential %+v", a, b)
			}
			if a, b := batched.HardwareCounters(), serial.HardwareCounters(); !reflect.DeepEqual(a, b) {
				t.Errorf("HardwareCounters diverge: batch %+v, sequential %+v", a, b)
			}
			if a, b := batched.FaultStats(), serial.FaultStats(); a != b {
				t.Errorf("FaultStats diverge: batch %+v, sequential %+v", a, b)
			}
			if tc.cfg.Resilience.Verify == VerifyECC && batched.FaultStats().EccDecodes == 0 {
				t.Error("VerifyECC batch recorded no ECC decodes — batch path dropped counters")
			}

			// Memory contents, vector by vector (sources included: the
			// batch must not corrupt what it only reads).
			for i := range opsA {
				vecsA := append([]*BitVector{opsA[i].Dst}, opsA[i].Srcs...)
				vecsB := append([]*BitVector{opsB[i].Dst}, opsB[i].Srcs...)
				for j := range vecsA {
					wa, _, err := batched.Read(vecsA[j])
					if err != nil {
						t.Fatal(err)
					}
					wb, _, err := serial.Read(vecsB[j])
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(wa, wb) {
						t.Errorf("op %d (%v) vector %d: batch contents diverge from sequential",
							i, opsA[i].Op, j)
					}
				}
			}
		})
	}
}

// TestBatchMakespanMatchesPlan pins the tentpole acceptance criterion: at
// fault rate 0, Batch of k bank-disjoint ORs reports exactly the makespan
// Plan predicts for k in-flight ORs — bit-identical, both arbiters.
// Planner and executor lower through the same cmdstream programs and
// schedule through the same engine, so the planner's model is checked
// against execution, not estimated.
func TestBatchMakespanMatchesPlan(t *testing.T) {
	const k = 8
	for _, arb := range []Arbiter{ArbFIFO, ArbOldestReady} {
		t.Run(arb.String(), func(t *testing.T) {
			sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
			if err != nil {
				t.Fatal(err)
			}
			ops := make([]BatchOp, k)
			for i := range ops {
				srcs, err := sys.AllocGroup(sys.MaxORRows(), sys.RowBits())
				if err != nil {
					t.Fatal(err)
				}
				dst, err := sys.Alloc(sys.RowBits())
				if err != nil {
					t.Fatal(err)
				}
				// The layout the identity depends on: op i wholly in bank i,
				// mirroring the planner's template-in-bank-0 offset by i.
				if b := srcs[0].rows[0].Bank; b != i || dst.rows[0].Bank != i {
					t.Fatalf("op %d landed in banks %d/%d, want %d — allocator layout changed",
						i, b, dst.rows[0].Bank, i)
				}
				ops[i] = BatchOp{Op: OpOr, Dst: dst, Srcs: srcs}
			}
			rep, err := sys.Plan(OpOr, k, 0, WithArbiter(arb))
			if err != nil {
				t.Fatal(err)
			}
			br, err := sys.Batch(ops, WithArbiter(arb))
			if err != nil {
				t.Fatal(err)
			}
			last := rep.Points[len(rep.Points)-1]
			if last.Concurrency != k {
				t.Fatalf("plan's last point is k=%d, want %d", last.Concurrency, k)
			}
			if br.Makespan != last.Makespan {
				t.Errorf("batch makespan %v != planned makespan %v (must be bit-identical at fault 0)",
					br.Makespan, last.Makespan)
			}
			if br.Speedup <= 1 {
				t.Errorf("bank-disjoint batch speedup %v, want > 1", br.Speedup)
			}
			if br.Shards != k {
				t.Errorf("Shards=%d want %d", br.Shards, k)
			}
		})
	}
}

// TestBatchSharedVectors checks sequential semantics under data
// dependencies: an op reading another op's destination must see the
// earlier op's output, exactly as consecutive Apply calls would.
func TestBatchSharedVectors(t *testing.T) {
	cfg := Config{Tech: PCM, Geometry: spreadGeometry()}
	batched, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const bits = 2048
	mk := func(s *System) []BatchOp {
		g, err := s.AllocGroup(5, bits)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		for _, v := range g[:3] {
			data := make([]uint64, bits/64)
			for i := range data {
				data[i] = rng.Uint64()
			}
			if _, err := s.Write(v, data); err != nil {
				t.Fatal(err)
			}
		}
		a, b, c, d1, d2 := g[0], g[1], g[2], g[3], g[4]
		return []BatchOp{
			{Op: OpOr, Dst: d1, Srcs: []*BitVector{a, b}},
			{Op: OpAnd, Dst: d2, Srcs: []*BitVector{d1, c}}, // reads op 0's output
		}
	}
	opsA, opsB := mk(batched), mk(serial)
	var want []Result
	for _, op := range opsB {
		res, err := serial.Apply(op.Op, op.Dst, op.Srcs)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	br, err := batched.Batch(opsA)
	if err != nil {
		t.Fatal(err)
	}
	if br.Shards != 1 {
		t.Errorf("dependent ops ran on %d shards, want 1 (shared footprint)", br.Shards)
	}
	for i := range opsA {
		if !reflect.DeepEqual(br.Results[i], want[i]) {
			t.Errorf("op %d: %+v != sequential %+v", i, br.Results[i], want[i])
		}
	}
	wa, _, err := batched.Read(opsA[1].Dst)
	if err != nil {
		t.Fatal(err)
	}
	wb, _, err := serial.Read(opsB[1].Dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wa, wb) {
		t.Error("dependent op's destination diverges from sequential execution")
	}
}

// TestBatchStatsNoDropNoDouble checks the satellite guarantee directly:
// the lifetime Stats deltas of a batch equal the sum of its per-op Results
// — nothing dropped by the shard merge, nothing double-counted.
func TestBatchStatsNoDropNoDouble(t *testing.T) {
	sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	ops := buildBatchOps(t, sys, 4096)
	before := sys.Stats()
	br, err := sys.Batch(ops)
	if err != nil {
		t.Fatal(err)
	}
	after := sys.Stats()

	var wantReq int64
	var wantJoules float64
	for _, r := range br.Results {
		wantReq += int64(r.Requests)
		wantJoules += r.EnergyJoules
	}
	if got := after.Requests - before.Requests; got != wantReq {
		t.Errorf("Requests delta %d != summed per-op requests %d", got, wantReq)
	}
	var opsDelta int64
	for k, v := range after.Ops {
		opsDelta += v - before.Ops[k]
	}
	if opsDelta != int64(len(ops)) {
		t.Errorf("Ops delta %d != %d batch ops", opsDelta, len(ops))
	}
	gotJoules := after.EnergyJoules - before.EnergyJoules
	if math.Abs(gotJoules-wantJoules) > 1e-12*wantJoules {
		t.Errorf("EnergyJoules delta %g != summed per-op energy %g", gotJoules, wantJoules)
	}
}

// TestBatchRejects covers the validation surface: empty batches, unknown
// arbiters, arity violations, freed vectors and cross-rank operand sets
// all fail up front, before any memory effect.
func TestBatchRejects(t *testing.T) {
	sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Batch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	g, err := sys.AllocGroup(3, 512)
	if err != nil {
		t.Fatal(err)
	}
	ok := []BatchOp{{Op: OpAnd, Dst: g[2], Srcs: []*BitVector{g[0], g[1]}}}
	if _, err := sys.Batch(ok, WithArbiter(Arbiter(9))); err == nil {
		t.Error("unknown arbiter accepted")
	}
	if _, err := sys.Batch([]BatchOp{{Op: OpAnd, Dst: g[2], Srcs: []*BitVector{g[0]}}}); err == nil {
		t.Error("arity violation accepted")
	}
	if _, err := sys.Batch([]BatchOp{{Op: OpPopcount, Dst: g[2], Srcs: []*BitVector{g[0]}}}); err == nil {
		t.Error("popcount with sources accepted")
	}
	freed, err := sys.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Free(freed); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Batch([]BatchOp{{Op: OpNot, Dst: g[2], Srcs: []*BitVector{freed}}}); err == nil {
		t.Error("freed vector accepted")
	}

	// Cross-rank: exhaust rank 0 so the next vector lands in rank 1.
	small := Geometry{
		Channels: 1, RanksPerChannel: 2, ChipsPerRank: 1, BanksPerChip: 1,
		SubarraysPerBank: 1, MatsPerSubarray: 1, RowsPerSubarray: 4,
		MatRowBits: 2048, MuxRatio: 32,
	}
	tiny, err := New(Config{Tech: PCM, Geometry: small})
	if err != nil {
		t.Fatal(err)
	}
	var last *BitVector
	for last == nil || last.rows[0].Rank == 0 {
		v, err := tiny.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if last != nil && v.rows[0].Rank == 1 {
			src := last
			_, err := tiny.Batch([]BatchOp{{Op: OpCopy, Dst: v, Srcs: []*BitVector{src}}})
			if err == nil || !strings.Contains(err.Error(), "span ranks") {
				t.Errorf("cross-rank op error = %v, want span-ranks rejection", err)
			}
			return
		}
		last = v
	}
}

module pinatubo

go 1.24

// Command pinatubo is a small driver around the public API: it builds a
// simulated Pinatubo system, runs a bulk bitwise operation of the requested
// shape, and reports the DDR command sequence class, latency, energy and
// throughput — a quick way to explore the design space from the shell.
//
// Usage:
//
//	pinatubo -op or -rows 128 -bits 524288
//	pinatubo -op xor -bits 4096 -tech stt
//	pinatubo -batch 8 -op or -rows 128   # schedule 8 deep ORs as one batch
//	pinatubo -inspect            # print geometry and technology tables
//	pinatubo -showcmds -rows 4   # dump the DDR command sequence of the op
//	pinatubo -waveform           # render the CSA sensing transient (Fig. 6)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"pinatubo"
	"pinatubo/internal/analog"
	"pinatubo/internal/ddr"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
)

func main() {
	op := flag.String("op", "or", "operation: or, and, xor, not")
	rows := flag.Int("rows", 2, "operand rows (or: any >= 1; and/xor: 2; not: 1)")
	bits := flag.Int("bits", 1<<19, "bit-vector length")
	tech := flag.String("tech", "pcm", "technology: pcm, stt, reram, dram")
	inspect := flag.Bool("inspect", false, "print geometry and technology tables and exit")
	showCmds := flag.Bool("showcmds", false, "dump the DDR command sequence of the operation")
	waveform := flag.Bool("waveform", false, "render the CSA sensing transient and exit")
	seed := flag.Int64("seed", 1, "data seed")
	faultRate := flag.Float64("faultrate", 0, "sense-flip probability per bit at the margin floor (0 = no faults)")
	actFail := flag.Float64("actfail", 0, "transient activation failure probability per extra open row")
	wearLimit := flag.Int64("wearlimit", 0, "row programs before a stuck-at bit appears (0 = unlimited)")
	faultSeed := flag.Int64("faultseed", 1, "fault injection seed")
	drift := flag.Float64("drift", 0, "seconds of resistance drift before sensing (0 = fresh cells)")
	verify := flag.String("verify", "auto", "verification mode: auto, off, readback, ecc")
	plan := flag.Int("plan", 0, "plan concurrency headroom for -op at -faultrate with up to this many in-flight operations, instead of executing")
	arb := flag.String("arb", "fifo", "channel arbitration policy for -plan and -batch: fifo, oldest-ready")
	batch := flag.Int("batch", 0, "execute this many -op operations as one scheduled batch on a bank-spread geometry, instead of one at a time")
	flag.Parse()

	fc := pinatubo.FaultConfig{
		Seed:               *faultSeed,
		SenseFlipRate:      *faultRate,
		ActivationFailRate: *actFail,
		WearLimit:          *wearLimit,
		DriftSeconds:       *drift,
	}

	if *waveform {
		printWaveform()
		return
	}
	if *showCmds {
		if err := runShowCmds(*op, *rows, *bits); err != nil {
			fmt.Fprintln(os.Stderr, "pinatubo:", err)
			os.Exit(1)
		}
		return
	}
	if *plan > 0 {
		if err := runPlan(*op, *plan, *tech, fc, *verify, *arb); err != nil {
			fmt.Fprintln(os.Stderr, "pinatubo:", err)
			os.Exit(1)
		}
		return
	}
	if *batch > 0 {
		if err := runBatch(*op, *rows, *batch, *tech, *seed, fc, *verify, *arb); err != nil {
			fmt.Fprintln(os.Stderr, "pinatubo:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*op, *rows, *bits, *tech, *inspect, *seed, fc, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "pinatubo:", err)
		os.Exit(1)
	}
}

// parseVerify maps the -verify flag onto the public mode enum.
func parseVerify(name string) (pinatubo.VerifyMode, error) {
	switch strings.ToLower(name) {
	case "auto":
		return pinatubo.VerifyAuto, nil
	case "off":
		return pinatubo.VerifyOff, nil
	case "readback":
		return pinatubo.VerifyReadback, nil
	case "ecc":
		return pinatubo.VerifyECC, nil
	default:
		return 0, fmt.Errorf("unknown verification mode %q", name)
	}
}

func run(opName string, rows, bits int, techName string, inspect bool, seed int64, fc pinatubo.FaultConfig, verifyName string) error {
	if inspect {
		printInspect()
		return nil
	}

	cfg := pinatubo.DefaultConfig()
	cfg.Fault = fc
	mode, err := parseVerify(verifyName)
	if err != nil {
		return err
	}
	cfg.Resilience.Verify = mode
	cfg.Tech, err = parseTech(techName)
	if err != nil {
		return err
	}
	sys, err := pinatubo.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("system: %v, %d-bit rank rows, one-step OR depth %d, verify %v\n",
		cfg.Tech, sys.RowBits(), sys.MaxORRows(), sys.VerifyMode())

	rng := rand.New(rand.NewSource(seed))
	alloc := func(n int) ([]*pinatubo.BitVector, error) {
		if bits <= sys.RowBits() {
			return sys.AllocGroup(n, bits)
		}
		out := make([]*pinatubo.BitVector, n)
		for i := range out {
			v, err := sys.Alloc(bits)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var nops int
	switch strings.ToLower(opName) {
	case "or":
		nops = rows
		if nops < 1 {
			return fmt.Errorf("or needs at least 1 row")
		}
	case "and", "xor":
		nops = 2
	case "not":
		nops = 1
	default:
		return fmt.Errorf("unknown op %q", opName)
	}

	srcs, err := alloc(nops)
	if err != nil {
		return err
	}
	words := make([]uint64, (bits+63)/64)
	for _, v := range srcs {
		for i := range words {
			words[i] = rng.Uint64()
		}
		if _, err := sys.Write(v, words); err != nil {
			return err
		}
	}
	dst, err := sys.Alloc(bits)
	if err != nil {
		return err
	}

	var res pinatubo.Result
	switch strings.ToLower(opName) {
	case "or":
		res, err = sys.Or(dst, srcs...)
	case "and":
		res, err = sys.And(dst, srcs[0], srcs[1])
	case "xor":
		res, err = sys.Xor(dst, srcs[0], srcs[1])
	case "not":
		res, err = sys.Not(dst, srcs[0])
	}
	if err != nil {
		return err
	}

	operandBytes := float64(nops) * float64(bits) / 8
	fmt.Printf("%s over %d row(s) of %d bits:\n", strings.ToUpper(opName), nops, bits)
	fmt.Printf("  class      %s\n", res.Class)
	fmt.Printf("  requests   %d\n", res.Requests)
	fmt.Printf("  latency    %v\n", res.Latency)
	fmt.Printf("  energy     %.3g J\n", res.EnergyJoules)
	fmt.Printf("  throughput %.1f GBps of operand data\n",
		operandBytes/res.Latency.Seconds()/1e9)

	if res.Retries > 0 || res.Degraded != "" {
		fmt.Printf("  resilience %d retries, degraded=%q, %d bits corrected\n",
			res.Retries, res.Degraded, res.BitsCorrected)
	}

	n, _, err := sys.Popcount(dst)
	if err != nil {
		return err
	}
	fmt.Printf("  result popcount %d / %d\n", n, bits)

	if st := sys.FaultStats(); st != (pinatubo.FaultStats{}) {
		fmt.Println("fault stats:")
		fmt.Printf("  injected   %d sense flips, %d activation faults, %d stuck rows (%d bits forced)\n",
			st.SenseFlips, st.ActivationFaults, st.StuckRows, st.StuckBitsForced)
		fmt.Printf("  recovered  %d verifies, %d retries, %d depth splits, %d inter / %d host fallbacks\n",
			st.Verifies, st.Retries, st.DepthReductions, st.InterFallbacks, st.HostFallbacks)
		fmt.Printf("  retired    %d rows, %d wrong bits intercepted\n",
			st.RowsRetired, st.BitsCorrected)
		if st.EccDecodes > 0 {
			fmt.Printf("  secded     %d syndrome decodes, %d bits corrected in-array, %d escalated\n",
				st.EccDecodes, st.EccCorrectedBits, st.EccUncorrectables)
		}
	}
	return nil
}

// parseTech maps the -tech flag onto the public technology enum.
func parseTech(name string) (pinatubo.Tech, error) {
	switch strings.ToLower(name) {
	case "pcm":
		return pinatubo.PCM, nil
	case "stt", "stt-mram":
		return pinatubo.STTMRAM, nil
	case "reram":
		return pinatubo.ReRAM, nil
	case "dram":
		return pinatubo.DRAM, nil
	default:
		return 0, fmt.Errorf("unknown technology %q", name)
	}
}

// parseOp maps the -op flag onto the public operation enum.
func parseOp(name string) (pinatubo.Op, error) {
	switch strings.ToLower(name) {
	case "or":
		return pinatubo.OpOr, nil
	case "and":
		return pinatubo.OpAnd, nil
	case "xor":
		return pinatubo.OpXor, nil
	case "not":
		return pinatubo.OpNot, nil
	default:
		return 0, fmt.Errorf("unknown op %q", name)
	}
}

// parseArb maps the -arb flag onto the public arbitration enum.
func parseArb(name string) (pinatubo.Arbiter, error) {
	switch strings.ToLower(name) {
	case "fifo":
		return pinatubo.ArbFIFO, nil
	case "oldest-ready", "oldestready":
		return pinatubo.ArbOldestReady, nil
	default:
		return 0, fmt.Errorf("unknown arbiter %q", name)
	}
}

// runPlan answers "how many of these should I keep in flight?" through the
// public planning API: the op's command traces (including any resilience
// expansions at the requested fault rate) replayed through the channel
// scheduler at increasing concurrency.
func runPlan(opName string, concurrency int, techName string, fc pinatubo.FaultConfig, verifyName, arbName string) error {
	cfg := pinatubo.DefaultConfig()
	cfg.Fault = fc
	mode, err := parseVerify(verifyName)
	if err != nil {
		return err
	}
	cfg.Resilience.Verify = mode
	cfg.Tech, err = parseTech(techName)
	if err != nil {
		return err
	}
	op, err := parseOp(opName)
	if err != nil {
		return err
	}
	arb, err := parseArb(arbName)
	if err != nil {
		return err
	}
	sys, err := pinatubo.New(cfg)
	if err != nil {
		return err
	}
	rep, err := sys.Plan(op, concurrency, fc.SenseFlipRate, pinatubo.WithArbiter(arb))
	if err != nil {
		return err
	}
	fmt.Printf("plan: %v on %v at fault rate %g under %v arbitration (%d replication(s))\n",
		rep.Op, cfg.Tech, rep.FaultRate, rep.Arb, rep.Replications)
	fmt.Printf("  %-6s %14s %12s %12s %8s\n", "k", "ops/s", "p50", "p99", "bus")
	for _, p := range rep.Points {
		marker := ""
		if p.Concurrency == rep.SaturationPoint {
			marker = "  <- saturation"
		}
		fmt.Printf("  %-6d %14.0f %12v %12v %7.0f%%%s\n",
			p.Concurrency, p.Throughput, p.Latency.P50, p.Latency.P99,
			100*p.BusUtilisation, marker)
	}
	fmt.Printf("  saturates at %d in flight, headroom %.2fx over one at a time\n",
		rep.SaturationPoint, rep.Headroom)
	return nil
}

// runBatch executes n operations of the requested shape as one scheduled
// batch through the public System.Batch API, on a single-channel geometry
// with one subarray per bank so each operation's rows land in their own
// bank and the event-driven scheduler can overlap them.
func runBatch(opName string, rows, n int, techName string, seed int64, fc pinatubo.FaultConfig, verifyName, arbName string) error {
	cfg := pinatubo.DefaultConfig()
	cfg.Fault = fc
	mode, err := parseVerify(verifyName)
	if err != nil {
		return err
	}
	cfg.Resilience.Verify = mode
	cfg.Tech, err = parseTech(techName)
	if err != nil {
		return err
	}
	op, err := parseOp(opName)
	if err != nil {
		return err
	}
	arb, err := parseArb(arbName)
	if err != nil {
		return err
	}
	cfg.Geometry = pinatubo.Geometry{
		Channels:         1,
		RanksPerChannel:  1,
		ChipsPerRank:     8,
		BanksPerChip:     16,
		SubarraysPerBank: 1,
		MatsPerSubarray:  16,
		RowsPerSubarray:  256,
		MatRowBits:       4096,
		MuxRatio:         32,
	}
	sys, err := pinatubo.New(cfg)
	if err != nil {
		return err
	}

	nsrc := rows
	switch op {
	case pinatubo.OpAnd, pinatubo.OpXor:
		nsrc = 2
	case pinatubo.OpNot:
		nsrc = 1
	default:
		if nsrc < 1 {
			return fmt.Errorf("or needs at least 1 row")
		}
		if nsrc > sys.MaxORRows() {
			nsrc = sys.MaxORRows()
		}
	}

	bits := sys.RowBits()
	rng := rand.New(rand.NewSource(seed))
	words := make([]uint64, (bits+63)/64)
	ops := make([]pinatubo.BatchOp, n)
	for i := range ops {
		srcs, err := sys.AllocGroup(nsrc, bits)
		if err != nil {
			return fmt.Errorf("allocating op %d (the spread geometry holds 16 one-op banks): %w", i, err)
		}
		for _, v := range srcs {
			for j := range words {
				words[j] = rng.Uint64()
			}
			if _, err := sys.Write(v, words); err != nil {
				return err
			}
		}
		dst, err := sys.Alloc(bits)
		if err != nil {
			return err
		}
		ops[i] = pinatubo.BatchOp{Op: op, Dst: dst, Srcs: srcs}
		// Pad out the rest of the subarray (its tail rows are reserved for
		// scratch and the backend's compute group) so the next op's rows
		// land in the next bank instead of packing behind this op and
		// serialising on its bank resource.
		usable := sys.UsableRowsPerSubarray()
		if pad := usable - (nsrc + 1); pad > 0 && i < n-1 {
			if _, err := sys.AllocGroup(pad, bits); err != nil {
				return err
			}
		}
	}

	br, err := sys.Batch(ops, pinatubo.WithArbiter(arb))
	if err != nil {
		return err
	}
	fmt.Printf("batch: %d × %v over %d row(s) of %d bits on %v, %v arbitration\n",
		n, op, nsrc, bits, cfg.Tech, br.Arb)
	for i, r := range br.Results {
		fmt.Printf("  op %-3d class %-14s latency %10v  done at %10v\n",
			i, r.Class, r.Latency, br.Completion[i])
	}
	fmt.Printf("  sequential %v, makespan %v, speedup %.2fx, %d shard(s)\n",
		br.Sequential, br.Makespan, br.Speedup, br.Shards)
	return nil
}

func printInspect() {
	geo := memarch.Default()
	fmt.Println("geometry (default):")
	fmt.Printf("  channels=%d ranks/ch=%d chips/rank=%d banks/chip=%d\n",
		geo.Channels, geo.RanksPerChannel, geo.ChipsPerRank, geo.BanksPerChip)
	fmt.Printf("  subarrays/bank=%d mats/subarray=%d rows/subarray=%d\n",
		geo.SubarraysPerBank, geo.MatsPerSubarray, geo.RowsPerSubarray)
	fmt.Printf("  mat row=%d bits, mux=%d:1, rank row=%d bits, sense width=%d bits\n",
		geo.MatRowBits, geo.MuxRatio, geo.RowBits(), geo.SenseWidthBits())
	fmt.Printf("  capacity %.1f GiB\n", float64(geo.CapacityBits())/8/(1<<30))
	fmt.Println("technologies:")
	for _, p := range append(nvm.All(), nvm.Get(nvm.DRAM)) {
		fmt.Printf("  %-9s Rlow=%-8.0f Rhigh=%-9.0f tRCD=%.1fns tCL=%.1fns tWR=%.1fns maxRows=%d\n",
			p.Tech, p.Cell.RLow, p.Cell.RHigh,
			p.Timing.TRCD*1e9, p.Timing.TCL*1e9, p.Timing.TWR*1e9, p.MaxOpenRows)
	}
}

// runShowCmds executes one op on a bare controller and dumps the DDR
// command sequence the controller issued — the paper's "only commands and
// addresses on the bus" property made visible.
func runShowCmds(opName string, rows, bits int) error {
	mem, err := memarch.NewMemory(memarch.Default(), nvm.Get(nvm.PCM))
	if err != nil {
		return err
	}
	ctl, err := pim.NewController(mem, 0)
	if err != nil {
		return err
	}
	var op sense.Op
	n := rows
	switch strings.ToLower(opName) {
	case "or":
		op = sense.OpOR
	case "and":
		op, n = sense.OpAND, 2
	case "xor":
		op, n = sense.OpXOR, 2
	case "not":
		op, n = sense.OpINV, 1
	default:
		return fmt.Errorf("unknown op %q", opName)
	}
	srcs := make([]memarch.RowAddr, n)
	for i := range srcs {
		srcs[i] = memarch.RowAddr{Subarray: 0, Row: i}
	}
	dst := memarch.RowAddr{Subarray: 0, Row: memarch.Default().RowsPerSubarray - 1}
	res, err := ctl.Execute(op, srcs, bits, &dst)
	if err != nil {
		return err
	}
	tech := nvm.Get(nvm.PCM)
	bus := ddr.DefaultBus()
	fmt.Printf("%v over %d row(s), %d bits → %s, %.4g s total\n",
		op, n, bits, res.Class, res.Seconds)
	t := 0.0
	for i, c := range res.Commands {
		d := ddr.CmdTime(c, tech.Timing, bus)
		fmt.Printf("  %3d  t=%8.2fns  %-10v %v", i, t*1e9, c.Kind, c.Addr)
		if c.Bits > 0 {
			fmt.Printf("  (%d bits)", c.Bits)
		}
		fmt.Println()
		t += d
	}
	return nil
}

// printWaveform renders the three-phase CSA transient for a weakest-"1"
// 128-row OR (the hardest pattern) as an ASCII plot — the Fig. 6 HSPICE
// panel, regenerated.
func printWaveform() {
	cfg := analog.DefaultSenseConfig()
	cell := nvm.Get(nvm.PCM).Cell
	iBL := cfg.VRead / analog.BLResistance(cell, 1, 127)
	iRef := cfg.VRead / analog.RefOR(cell, 128)
	csa := analog.DefaultCSAParams()
	trace, out := csa.Transient(iBL, iRef, 60)

	fmt.Println("CSA transient — 128-row OR, weakest '1' pattern (one low cell)")
	fmt.Printf("iBL=%.3gA iRef=%.3gA → output %v\n", iBL, iRef, out)
	const width = 40
	for _, p := range trace {
		vc := int(p.VC / 0.8 * width)
		vr := int(p.VR / 0.8 * width)
		line := make([]byte, width+1)
		for i := range line {
			line[i] = ' '
		}
		if vr >= 0 && vr <= width {
			line[vr] = 'r'
		}
		if vc >= 0 && vc <= width {
			line[vc] = 'C'
		}
		fmt.Printf("%7.2fns |%s| %-26s\n", p.T*1e9, line, p.Phase)
	}
	fmt.Println("(C = cell-side node, r = reference-side node; rails 0..0.8 V)")
}

// Command pinatubod is the batch-window service front-end: a persistent
// server that owns one simulated Pinatubo system and executes streams of
// bulk bitwise-op requests from many concurrent clients as pipelined
// batch windows — requests admitted while window N executes accumulate
// into window N+1, and the admission controller sizes windows from the
// live planner's saturation point.
//
// Clients speak line-delimited JSON (one request object per line; see
// internal/serve for the schema):
//
//	{"id":1,"tenant":"a","type":"alloc","name":"x","bits":4096}
//	{"id":2,"tenant":"a","type":"write","name":"x","words":["deadbeef"]}
//	{"id":3,"tenant":"a","type":"op","op":"or","dst":"x","srcs":["x"]}
//	{"id":4,"tenant":"a","type":"stats"}
//
// Usage:
//
//	pinatubod -listen :7117            # serve TCP clients
//	pinatubod -stdin                   # serve one session on stdin/stdout
//	pinatubod -demo 64                 # 64 in-process clients, print metrics
//	pinatubod -demo 64 -tech reram -faultrate 1e-4 -verify readback
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"pinatubo"
	"pinatubo/internal/serve"
)

func main() {
	listen := flag.String("listen", "", "serve TCP clients on this address (e.g. :7117)")
	stdin := flag.Bool("stdin", false, "serve one client session on stdin/stdout (pipe mode)")
	demo := flag.Int("demo", 0, "run an in-process demo with this many concurrent clients and print sustained metrics")
	tech := flag.String("tech", "pcm", "technology: pcm, stt, reram, dram")
	verify := flag.String("verify", "auto", "verification mode: auto, off, readback, ecc")
	faultRate := flag.Float64("faultrate", 0, "sense-flip probability per bit (0 = no faults)")
	actFail := flag.Float64("actfail", 0, "transient activation failure probability per extra open row")
	faultSeed := flag.Int64("faultseed", 1, "fault injection seed")
	window := flag.Int("window", 0, "ops per batch window (0 = size from the live planner's saturation point)")
	arbName := flag.String("arb", "fifo", "channel arbitration policy: fifo, oldest-ready")
	queue := flag.Int("queue", 0, "backlog bound before shedding (0 = 8 windows)")
	demoOps := flag.Int("ops", 16, "demo: OR+popcount rounds per client")
	demoBits := flag.Int("bits", 4096, "demo: bit-vector length per client")
	flag.Parse()

	if err := run(*listen, *stdin, *demo, *tech, *verify, *faultRate, *actFail,
		*faultSeed, *window, *arbName, *queue, *demoOps, *demoBits); err != nil {
		fmt.Fprintln(os.Stderr, "pinatubod:", err)
		os.Exit(1)
	}
}

func run(listen string, stdin bool, demo int, tech, verify string,
	faultRate, actFail float64, faultSeed int64, window int, arbName string,
	queue, demoOps, demoBits int) error {
	cfg := pinatubo.DefaultConfig()
	switch strings.ToLower(tech) {
	case "pcm":
		cfg.Tech = pinatubo.PCM
	case "stt", "stt-mram":
		cfg.Tech = pinatubo.STTMRAM
	case "reram":
		cfg.Tech = pinatubo.ReRAM
	case "dram":
		cfg.Tech = pinatubo.DRAM
	default:
		return fmt.Errorf("unknown technology %q", tech)
	}
	switch strings.ToLower(verify) {
	case "auto":
		cfg.Resilience.Verify = pinatubo.VerifyAuto
	case "off":
		cfg.Resilience.Verify = pinatubo.VerifyOff
	case "readback":
		cfg.Resilience.Verify = pinatubo.VerifyReadback
	case "ecc":
		cfg.Resilience.Verify = pinatubo.VerifyECC
	default:
		return fmt.Errorf("unknown verification mode %q", verify)
	}
	cfg.Fault = pinatubo.FaultConfig{
		Seed:               faultSeed,
		SenseFlipRate:      faultRate,
		ActivationFailRate: actFail,
	}
	var arb pinatubo.Arbiter
	switch strings.ToLower(arbName) {
	case "fifo":
		arb = pinatubo.ArbFIFO
	case "oldest-ready":
		arb = pinatubo.ArbOldestReady
	default:
		return fmt.Errorf("unknown arbiter %q", arbName)
	}

	sys, err := pinatubo.New(cfg)
	if err != nil {
		return err
	}
	if demo > 0 && queue == 0 {
		// The demo's offered load is bounded, so default to queueing it
		// all; pass -queue to watch the admission controller shed.
		queue = demo * (2*demoOps + 8)
	}
	srv, err := serve.New(serve.Config{
		System:      sys,
		Arb:         arb,
		WindowCap:   window,
		QueueLimit:  queue,
		ReplanEvery: 256,
	})
	if err != nil {
		return err
	}

	switch {
	case demo > 0:
		return runDemo(srv, demo, demoOps, demoBits)
	case stdin:
		return runStdin(srv)
	case listen != "":
		return runListen(srv, listen)
	default:
		return fmt.Errorf("pick a mode: -listen, -stdin or -demo (see -help)")
	}
}

// runListen serves TCP clients until the process is killed.
func runListen(srv *serve.Server, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pinatubod: listening on %s\n", ln.Addr())
	ctx := context.Background()
	//pinlint:ignore joinall Serve's accept loop joins on listener close (cross-package body the callgraph cannot see); the process exits with Run
	go srv.Serve(ctx, ln)
	return srv.Run(ctx)
}

// runStdin serves one line-delimited session on stdin/stdout and exits
// when the client closes its side and every response has been written.
func runStdin(srv *serve.Server) error {
	ctx, cancel := context.WithCancel(context.Background())
	conn := &stdioConn{onClose: cancel}
	srv.HandleConn(conn)
	if err := srv.Run(ctx); err != context.Canceled {
		return err
	}
	return nil
}

// stdioConn adapts stdin/stdout to net.Conn for HandleConn. Close (the
// writer goroutine's deferred call, after the reader saw EOF and the
// outbox drained) cancels the server's context.
type stdioConn struct {
	onClose func()
	once    sync.Once
}

func (c *stdioConn) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (c *stdioConn) Write(p []byte) (int, error) { return os.Stdout.Write(p) }
func (c *stdioConn) Close() error {
	c.once.Do(c.onClose)
	return nil
}
func (c *stdioConn) LocalAddr() net.Addr                { return stdioAddr{} }
func (c *stdioConn) RemoteAddr() net.Addr               { return stdioAddr{} }
func (c *stdioConn) SetDeadline(t time.Time) error      { return nil }
func (c *stdioConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *stdioConn) SetWriteDeadline(t time.Time) error { return nil }

type stdioAddr struct{}

func (stdioAddr) Network() string { return "stdio" }
func (stdioAddr) String() string  { return "stdio" }

// runDemo drives n in-process clients (each its own tenant, own
// connection, own goroutine) through alloc/write, demoOps OR+popcount
// rounds and a verified read-back, then prints the server's sustained
// metrics: the ≥64-concurrent-client smoke the service is sized for.
func runDemo(srv *serve.Server, n, demoOps, demoBits int) error {
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx) }()
	//pinlint:ignore detrand wall-clock throughput is the demo's measurement, not a simulated result
	start := time.Now()

	words := (demoBits + 63) / 64
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if err := demoClient(srv, c, demoOps, demoBits, words); err != nil {
				errCh <- fmt.Errorf("client %d: %w", c, err)
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	//pinlint:ignore detrand wall-clock throughput is the demo's measurement, not a simulated result
	wall := time.Since(start)
	cancel()
	<-runDone
	for err := range errCh {
		return err
	}

	m := srv.Metrics()
	fmt.Printf("pinatubod demo: %d concurrent clients, %d ops each\n", n, 2*demoOps)
	fmt.Printf("  windows          %d (cap %d ops)\n", m.Windows, m.WindowCap)
	fmt.Printf("  ops done/shed    %d / %d   host ops %d\n", m.OpsDone, m.OpsShed, m.HostOps)
	fmt.Printf("  sustained        %.3g ops/s simulated   %.3g ops/s wall (%.2fs)\n",
		m.SimOpsPerSec, m.WallOpsPerSec, wall.Seconds())
	fmt.Printf("  op latency       p50 %v  p99 %v  max %v (in-window, simulated)\n",
		m.Latency.P50, m.Latency.P99, m.Latency.Max)
	fmt.Printf("  window makespan  p50 %v  p99 %v\n", m.WindowLatency.P50, m.WindowLatency.P99)
	fmt.Printf("  program cache    %d hits / %d misses   sandbox pool %d reused / %d gets\n",
		m.ProgramCacheHits, m.ProgramCacheMisses, m.SandboxPoolReuses, m.SandboxPoolGets)

	// Fairness spread: with identical offered load per tenant, admitted
	// counts should be flat.
	minA, maxA := int64(-1), int64(-1)
	for _, tm := range m.Tenants {
		if minA < 0 || tm.Admitted < minA {
			minA = tm.Admitted
		}
		if tm.Admitted > maxA {
			maxA = tm.Admitted
		}
	}
	fmt.Printf("  fairness         %d tenants, admitted min %d / max %d\n",
		len(m.Tenants), minA, maxA)
	out, _ := json.Marshal(m)
	fmt.Printf("  metrics json     %s\n", out)
	return nil
}

// demoClient is one tenant's scripted session over a net.Pipe connection.
func demoClient(srv *serve.Server, c, demoOps, demoBits, words int) error {
	cliConn, srvConn := net.Pipe()
	srv.HandleConn(srvConn)
	defer cliConn.Close()
	enc := json.NewEncoder(cliConn)
	dec := json.NewDecoder(cliConn)
	var nextID int64
	call := func(req serve.Request) (serve.Response, error) {
		nextID++
		req.ID = nextID
		req.Tenant = fmt.Sprintf("tenant-%03d", c)
		if err := enc.Encode(req); err != nil {
			return serve.Response{}, err
		}
		for {
			var resp serve.Response
			if err := dec.Decode(&resp); err != nil {
				return serve.Response{}, err
			}
			if resp.ID != req.ID {
				continue
			}
			if !resp.OK && !resp.Shed {
				return resp, fmt.Errorf("%s", resp.Error)
			}
			return resp, nil
		}
	}

	rng := rand.New(rand.NewSource(int64(1000 + c)))
	a := make([]uint64, words)
	b := make([]uint64, words)
	hexA := make([]string, words)
	hexB := make([]string, words)
	for i := range a {
		a[i], b[i] = rng.Uint64(), rng.Uint64()
		hexA[i] = fmt.Sprintf("%x", a[i])
		hexB[i] = fmt.Sprintf("%x", b[i])
	}
	steps := []serve.Request{
		{Type: "alloc", Name: "a", Bits: demoBits},
		{Type: "alloc", Name: "b", Bits: demoBits},
		{Type: "alloc", Name: "out", Bits: demoBits},
		{Type: "write", Name: "a", Words: hexA},
		{Type: "write", Name: "b", Words: hexB},
	}
	for _, st := range steps {
		if _, err := call(st); err != nil {
			return err
		}
	}
	orDone := 0
	for round := 0; round < demoOps; round++ {
		or, err := call(serve.Request{Type: "op", Op: "or", Dst: "out", Srcs: []string{"a", "b"}})
		if err != nil {
			return err
		}
		if or.OK {
			orDone++
		}
		if _, err := call(serve.Request{Type: "op", Op: "popcount", Dst: "out"}); err != nil {
			return err
		}
	}
	if orDone == 0 {
		// Every OR was shed (tiny -queue): nothing to verify.
		return nil
	}
	rd, err := call(serve.Request{Type: "read", Name: "out"})
	if err != nil {
		return err
	}
	for i, w := range rd.Words {
		var got uint64
		if _, err := fmt.Sscanf(w, "%x", &got); err != nil {
			return err
		}
		if got != a[i]|b[i] {
			return fmt.Errorf("word %d read back %x, want %x", i, got, a[i]|b[i])
		}
	}
	return nil
}

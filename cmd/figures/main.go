// Command figures regenerates the paper's evaluation tables and figures
// (Table 1, Figs. 9–13) from the simulator and prints them as aligned text
// tables. EXPERIMENTS.md records a reference run next to the paper's
// numbers.
//
// Usage:
//
//	figures            # everything
//	figures -fig 9     # one figure: table1, 9, 10, 11, 12, 13, margins, ablation, faults, replication, ecc, batch
//	figures -fig batch -benchout BENCH_batch.json   # batch sweep + CI benchmark artifact
//	figures -fig batch -benchgate BENCH_batch.json  # fail on >15% makespan regression
//	figures -fig apply -applyout BENCH_apply.json   # Apply hot-path benchmark artifact
//	figures -fig apply -applygate BENCH_apply.json  # fail on >15% allocs/op or hit-rate regression
//	figures -fig techcompare                        # NVM-vs-DRAM latency/throughput/energy sweep
//	figures -fig dram -dramout BENCH_dram.json      # DRAM TRA backend benchmark artifact
//	figures -fig dram -dramgate BENCH_dram.json     # fail on >15% allocs/op, hit-rate, sim-time or energy regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pinatubo/internal/analog"
	"pinatubo/internal/figures"
	"pinatubo/internal/nvm"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: table1, 9, 10, 11, 12, 13, margins, ablation, extended, faults, replication, ecc, headroom, batch, apply, techcompare, dram, all")
	csvOut := flag.Bool("csv", false, "emit CSV instead of text tables (figs 9-13)")
	benchOut := flag.String("benchout", "", "also write the batch smoke benchmark JSON to this file")
	benchGate := flag.String("benchgate", "", "fail if the fresh batch benchmark's simulated makespan regresses >15% vs this baseline JSON")
	applyOut := flag.String("applyout", "", "also write the Apply hot-path benchmark JSON to this file")
	applyGate := flag.String("applygate", "", "fail if the fresh Apply benchmark's allocs/op or cache hit rate regresses >15% vs this baseline JSON")
	dramOut := flag.String("dramout", "", "also write the DRAM TRA backend benchmark JSON to this file")
	dramGate := flag.String("dramgate", "", "fail if the fresh DRAM benchmark's gated figures regress >15% vs this baseline JSON")
	flag.Parse()

	if err := run(*fig, *csvOut, *benchOut, *benchGate, *applyOut, *applyGate, *dramOut, *dramGate); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(fig string, csvOut bool, benchOut, benchGate, applyOut, applyGate, dramOut, dramGate string) error {
	want := func(name string) bool { return fig == "all" || fig == name }
	printed := false

	if want("table1") {
		fmt.Println(figures.FormatTable1())
		printed = true
	}
	if want("9") {
		rows, err := figures.Fig9()
		if err != nil {
			return err
		}
		if csvOut {
			return figures.WriteFig9CSV(os.Stdout, rows)
		}
		fmt.Println(figures.FormatFig9(rows))
		fmt.Println("  turning point A at 2^14 (SA sharing), B at 2^19 (rank row);")
		fmt.Println("  regions: <12.8 GBps below the DDR bus, >1842 GBps beyond internal bandwidth")
		fmt.Println()
		printed = true
	}
	if want("10") {
		rows, err := figures.Fig10()
		if err != nil {
			return err
		}
		if csvOut {
			return figures.WriteComparisonCSV(os.Stdout, rows)
		}
		fmt.Println(figures.FormatComparison("Fig. 10 — bitwise-operation speedup vs SIMD baseline", rows))
		printed = true
	}
	if want("11") {
		rows, err := figures.Fig11()
		if err != nil {
			return err
		}
		if csvOut {
			return figures.WriteComparisonCSV(os.Stdout, rows)
		}
		fmt.Println(figures.FormatComparison("Fig. 11 — bitwise-operation energy saving vs SIMD baseline", rows))
		printed = true
	}
	if want("12") {
		rows, err := figures.Fig12()
		if err != nil {
			return err
		}
		if csvOut {
			return figures.WriteFig12CSV(os.Stdout, rows)
		}
		fmt.Println(figures.FormatFig12(rows))
		printed = true
	}
	if want("13") {
		res, err := figures.Fig13()
		if err != nil {
			return err
		}
		if csvOut {
			return figures.WriteFig13CSV(os.Stdout, res)
		}
		fmt.Println(figures.FormatFig13(res))
		printed = true
	}
	if want("margins") {
		printMargins()
		printed = true
	}
	if want("ablation") {
		d, err := figures.DepthAblation()
		if err != nil {
			return err
		}
		m, err := figures.MuxAblation()
		if err != nil {
			return err
		}
		te, err := figures.TechAblation()
		if err != nil {
			return err
		}
		fmt.Println(figures.FormatAblations(d, m, te))
		conc, err := figures.ConcurrencyAblation()
		if err != nil {
			return err
		}
		fmt.Println(figures.FormatConcurrency(conc))
		printed = true
	}
	if want("extended") {
		rows, err := figures.Extended()
		if err != nil {
			return err
		}
		fmt.Println(figures.FormatExtended(rows))
		printed = true
	}
	if want("faults") {
		rows, err := figures.FaultSweep(figures.DefaultFaultRates)
		if err != nil {
			return err
		}
		if csvOut {
			return figures.WriteFaultSweepCSV(os.Stdout, rows)
		}
		fmt.Println(figures.FormatFaultSweep(rows))
		printed = true
	}
	if want("replication") {
		rows, err := figures.ReplicationSweep(figures.DefaultFaultRates)
		if err != nil {
			return err
		}
		if csvOut {
			return figures.WriteReplicationCSV(os.Stdout, rows)
		}
		fmt.Println(figures.FormatReplicationSweep(rows))
		printed = true
	}
	if want("ecc") {
		rows, err := figures.ECCSweep(figures.DefaultFaultRates)
		if err != nil {
			return err
		}
		if csvOut {
			return figures.WriteECCSweepCSV(os.Stdout, rows)
		}
		fmt.Println(figures.FormatECCSweep(rows))
		printed = true
	}
	if want("headroom") {
		rows, err := figures.HeadroomSweep(figures.DefaultFaultRates, figures.DefaultHeadroomConcurrency)
		if err != nil {
			return err
		}
		if csvOut {
			return figures.WriteHeadroomCSV(os.Stdout, rows)
		}
		fmt.Println(figures.FormatHeadroom(rows))
		printed = true
	}
	if want("batch") {
		rows, err := figures.BatchSweep(figures.DefaultBatchKs)
		if err != nil {
			return err
		}
		if csvOut {
			return figures.WriteBatchCSV(os.Stdout, rows)
		}
		fmt.Println(figures.FormatBatch(rows))
		printed = true
	}
	if want("apply") {
		res, err := figures.ApplyBench()
		if err != nil {
			return err
		}
		fmt.Println(figures.FormatApplyBench(res))
		printed = true
	}
	if want("techcompare") {
		rows, err := figures.TechCompare()
		if err != nil {
			return err
		}
		if csvOut {
			return figures.WriteTechCompareCSV(os.Stdout, rows)
		}
		fmt.Println(figures.FormatTechCompare(rows))
		printed = true
	}
	if want("dram") {
		res, err := figures.DRAMBench()
		if err != nil {
			return err
		}
		fmt.Println(figures.FormatDRAMBench(res))
		printed = true
	}
	if !printed {
		return fmt.Errorf("unknown figure %q", fig)
	}
	if benchOut != "" || benchGate != "" {
		if err := runBench(benchOut, benchGate); err != nil {
			return err
		}
	}
	if applyOut != "" || applyGate != "" {
		if err := runApplyBench(applyOut, applyGate); err != nil {
			return err
		}
	}
	if dramOut != "" || dramGate != "" {
		return runDRAMBench(dramOut, dramGate)
	}
	return nil
}

// runDRAMBench runs the DRAM TRA backend benchmark once, optionally
// persisting the result and optionally gating its host-independent
// figures against a committed baseline.
func runDRAMBench(dramOut, dramGate string) error {
	res, err := figures.DRAMBench()
	if err != nil {
		return err
	}
	if dramOut != "" {
		f, err := os.Create(dramOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := figures.WriteDRAMBenchResultJSON(f, res); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if dramGate != "" {
		data, err := os.ReadFile(dramGate)
		if err != nil {
			return err
		}
		var baseline figures.DRAMBenchResult
		if err := json.Unmarshal(data, &baseline); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", dramGate, err)
		}
		if err := figures.GateDRAMBench(res, baseline, 0.15); err != nil {
			return err
		}
		fmt.Printf("dramgate: %.1f allocs/op, hit rate %.3f, %.3es sim/op, %.3f pJ/bit within 15%% of baseline (%s)\n",
			res.AllocsPerOp, res.CacheHitRate, res.SimSecondsPerOp, res.PJPerBit, dramGate)
	}
	return nil
}

// runApplyBench runs the Apply hot-path benchmark once, optionally
// persisting the result and optionally gating its host-independent
// figures against a committed baseline.
func runApplyBench(applyOut, applyGate string) error {
	res, err := figures.ApplyBench()
	if err != nil {
		return err
	}
	if applyOut != "" {
		f, err := os.Create(applyOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := figures.WriteApplyBenchResultJSON(f, res); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if applyGate != "" {
		data, err := os.ReadFile(applyGate)
		if err != nil {
			return err
		}
		var baseline figures.ApplyBenchResult
		if err := json.Unmarshal(data, &baseline); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", applyGate, err)
		}
		if err := figures.GateApplyBench(res, baseline, 0.15); err != nil {
			return err
		}
		fmt.Printf("applygate: %.1f allocs/op, hit rate %.3f within 15%% of baseline (%s)\n",
			res.AllocsPerOp, res.CacheHitRate, applyGate)
	}
	return nil
}

// runBench runs the batch smoke benchmark once, optionally persisting the
// result and optionally gating it against a committed baseline.
func runBench(benchOut, benchGate string) error {
	res, err := figures.BatchBench()
	if err != nil {
		return err
	}
	if benchOut != "" {
		f, err := os.Create(benchOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := figures.WriteBatchBenchResultJSON(f, res); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if benchGate != "" {
		data, err := os.ReadFile(benchGate)
		if err != nil {
			return err
		}
		var baseline figures.BatchBenchResult
		if err := json.Unmarshal(data, &baseline); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", benchGate, err)
		}
		if err := figures.GateBatchBench(res, baseline, 0.15); err != nil {
			return err
		}
		fmt.Printf("benchgate: makespan %.6es within +15%% of baseline %.6es (%s)\n",
			res.MakespanSeconds, baseline.MakespanSeconds, benchGate)
	}
	return nil
}

// printMargins reports the sensing-margin analysis behind the paper's
// multi-row claims (the Fig. 5/6 design-space content).
func printMargins() {
	cfg := analog.DefaultSenseConfig()
	fmt.Println("Sensing margins (worst case, 4σ variation, 5% SA offset tolerance)")
	for _, p := range nvm.All() {
		orMax, err := analog.MaxORRows(cfg, p, 512)
		if err != nil {
			fmt.Printf("  %-9s %v\n", p.Tech, err)
			continue
		}
		andMax, err := analog.MaxANDRows(cfg, p, 16)
		if err != nil {
			fmt.Printf("  %-9s %v\n", p.Tech, err)
			continue
		}
		fmt.Printf("  %-9s ON/OFF %6.1f  analog OR depth %3d  AND depth %d  architectural cap %d\n",
			p.Tech, p.Cell.OnOffRatio(), orMax, andMax, p.MaxOpenRows)
		for _, n := range []int{2, 8, 32, 128} {
			m := analog.ORMargin(cfg, p.Cell, n)
			fmt.Printf("      %3d-row OR margin %+.3f\n", n, m)
		}
	}
	fmt.Println()
	printReliability(cfg)
}

// printReliability reports the PCM drift/temperature sensitivity of the
// multi-row margins (an extension beyond the paper's fixed-condition
// analysis).
func printReliability(cfg analog.SenseConfig) {
	p := nvm.Get(nvm.PCM)
	fmt.Println("PCM reliability sweeps (128-row OR margin / depth)")
	drift, err := analog.DriftSweep(cfg, p, []float64{1, 1e3, 1e6, 1e8})
	if err != nil {
		fmt.Println("  drift sweep:", err)
		return
	}
	for _, pt := range drift {
		fmt.Printf("  drift %8.0es:  ON/OFF %7.0f  margin %+.3f  depth %3d\n",
			pt.Condition, pt.Ratio, pt.Margin128, pt.Depth)
	}
	temps, err := analog.TemperatureSweep(cfg, p, []float64{0, 25, 50, 85})
	if err != nil {
		fmt.Println("  temperature sweep:", err)
		return
	}
	for _, pt := range temps {
		fmt.Printf("  +%3.0f°C:          ON/OFF %7.1f  margin %+.3f  depth %3d\n",
			pt.Condition, pt.Ratio, pt.Margin128, pt.Depth)
	}
	fmt.Println()
}

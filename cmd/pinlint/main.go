// Command pinlint is the project's invariant checker: a multichecker over
// the internal/lint analyzer suite, built on the standard library alone so
// the repo stays dependency-free. It machine-checks the conventions the
// simulator's bit-exactness claims rest on — seeded randomness only, no
// wall clock, no map-iteration order in results, no exact float comparison
// in cost math, %w-wrapped sentinels, exhaustive enum switches, trace/cost
// pairing — and, through the CFG/dataflow suite, the concurrency
// discipline of the batch and server hot paths: state-loop field
// ownership, program-cache immutability, alias-guarded row writes,
// goroutine join points and lock pairing.
//
// Usage:
//
//	go run ./cmd/pinlint ./...            # lint the whole module
//	go run ./cmd/pinlint -list            # describe the analyzers
//	go run ./cmd/pinlint -only detrand,floateq ./internal/...
//	go run ./cmd/pinlint -json ./...      # machine-readable report
//
// Findings print as file:line:col: analyzer: message and make the exit
// status 1. With -json the report is a single JSON object carrying the
// findings (file/line/col/analyzer/message) and per-analyzer wall time,
// for CI to archive and gate on. A finding can be acknowledged in place
// with `//pinlint:ignore <analyzer> <reason>` on or above the flagged
// line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"pinatubo/internal/lint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonTiming is one analyzer's wall time summed across all packages.
type jsonTiming struct {
	Analyzer string  `json:"analyzer"`
	Millis   float64 `json:"ms"`
}

// jsonReport is the -json document.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Timings  []jsonTiming  `json:"timings"`
	Packages int           `json:"packages"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("pinlint", flag.ExitOnError)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	asJSON := fs.Bool("json", false, "emit a JSON report (findings + per-analyzer wall time)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	analyzers, err := selectAnalyzers(*only, *disable)
	if err != nil {
		return err
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return err
	}
	dirs, err := loader.Expand(patterns, cwd)
	if err != nil {
		return err
	}

	report := jsonReport{
		Findings: []jsonFinding{},
		Packages: len(dirs),
	}
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return err
		}
		for _, a := range analyzers {
			//pinlint:ignore detrand analyzer wall time is tooling telemetry, not simulated output
			start := time.Now()
			diags, err := lint.Run(a, pkg)
			//pinlint:ignore detrand analyzer wall time is tooling telemetry, not simulated output
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				return err
			}
			for _, d := range diags {
				if !*asJSON {
					fmt.Println(d)
				}
				report.Findings = append(report.Findings, jsonFinding{
					File:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
			}
		}
	}
	for _, a := range analyzers {
		report.Timings = append(report.Timings, jsonTiming{
			Analyzer: a.Name,
			Millis:   float64(elapsed[a.Name].Microseconds()) / 1000,
		})
	}
	sort.Slice(report.Timings, func(i, j int) bool {
		return report.Timings[i].Millis > report.Timings[j].Millis
	})

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	}
	if n := len(report.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "pinlint: %d finding(s)\n", n)
		os.Exit(1)
	}
	return nil
}

// selectAnalyzers filters the suite by the -only / -disable flags.
func selectAnalyzers(only, disable string) ([]*lint.Analyzer, error) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	if only != "" {
		for _, name := range strings.Split(only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return nil, fmt.Errorf("pinlint: unknown analyzer %q", name)
			}
			out = append(out, a)
		}
		return out, nil
	}
	skip := map[string]bool{}
	for _, name := range strings.Split(disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("pinlint: unknown analyzer %q", name)
			}
			skip[name] = true
		}
	}
	for _, a := range lint.All() {
		if !skip[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// Command pinlint is the project's invariant checker: a multichecker over
// the internal/lint analyzer suite, built on the standard library alone so
// the repo stays dependency-free. It machine-checks the conventions the
// simulator's bit-exactness claims rest on — seeded randomness only, no
// wall clock, no map-iteration order in results, no exact float comparison
// in cost math, %w-wrapped sentinels, exhaustive enum switches, and
// trace/cost pairing.
//
// Usage:
//
//	go run ./cmd/pinlint ./...            # lint the whole module
//	go run ./cmd/pinlint -list            # describe the analyzers
//	go run ./cmd/pinlint -only detrand,floateq ./internal/...
//
// Findings print as file:line:col: analyzer: message and make the exit
// status 1. A finding can be acknowledged in place with
// `//pinlint:ignore <analyzer> <reason>` on or above the flagged line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pinatubo/internal/lint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pinlint", flag.ExitOnError)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	if err := fs.Parse(args); err != nil {
		return err
	}

	analyzers, err := selectAnalyzers(*only, *disable)
	if err != nil {
		return err
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return err
	}
	dirs, err := loader.Expand(patterns, cwd)
	if err != nil {
		return err
	}

	findings := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return err
		}
		for _, a := range analyzers {
			diags, err := lint.Run(a, pkg)
			if err != nil {
				return err
			}
			for _, d := range diags {
				fmt.Println(d)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "pinlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
	return nil
}

// selectAnalyzers filters the suite by the -only / -disable flags.
func selectAnalyzers(only, disable string) ([]*lint.Analyzer, error) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	if only != "" {
		for _, name := range strings.Split(only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return nil, fmt.Errorf("pinlint: unknown analyzer %q", name)
			}
			out = append(out, a)
		}
		return out, nil
	}
	skip := map[string]bool{}
	for _, name := range strings.Split(disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("pinlint: unknown analyzer %q", name)
			}
			skip[name] = true
		}
	}
	for _, a := range lint.All() {
		if !skip[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

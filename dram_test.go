package pinatubo

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// The DRAM backend computes AND/OR through triple-row activation and NOT
// through a dual-contact cell, nothing like the modified-sense-amplifier
// path the NVM technologies use — yet both lower through the same
// cmdstream IR and the same controller. These tests pin the only contract
// that makes the backend seam safe: for every public operation the DRAM
// backend is bit-identical to the sequential NVM path in memory contents,
// and bit-identical to its own sequential path in every Result field,
// ledger and hardware counter when ops run through Batch.
//
// All test names carry the TestDRAM prefix so CI can run exactly this
// suite under the race detector: go test -race -run TestDRAM .

// seedVector fills v with words drawn from rng and writes them to s.
func seedVector(t *testing.T, s *System, rng *rand.Rand, v *BitVector, bits int) []uint64 {
	t.Helper()
	data := make([]uint64, (bits+63)/64)
	for i := range data {
		data[i] = rng.Uint64()
	}
	if _, err := s.Write(v, data); err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDRAMMatchesNVMApply runs every public operation on a DRAM system and
// a PCM twin seeded with identical data and requires raw memory contents
// to match word for word — including tail-word bits beyond the vector
// length, which Write stores and Read returns unmasked on both paths.
// Where the host can compute the answer cheaply (whole-word vectors) the
// result is also checked against host arithmetic, so the two systems
// cannot agree by being wrong the same way.
func TestDRAMMatchesNVMApply(t *testing.T) {
	type opCase struct {
		name   string
		nsrc   int
		run    func(s *System, dst *BitVector, srcs []*BitVector) error
		golden func(srcs [][]uint64) []uint64
	}
	word := func(f func(ws []uint64) uint64) func(srcs [][]uint64) []uint64 {
		return func(srcs [][]uint64) []uint64 {
			out := make([]uint64, len(srcs[0]))
			ws := make([]uint64, len(srcs))
			for i := range out {
				for j := range srcs {
					ws[j] = srcs[j][i]
				}
				out[i] = f(ws)
			}
			return out
		}
	}
	cases := []opCase{
		{"and", 2, func(s *System, d *BitVector, v []*BitVector) error {
			_, err := s.And(d, v[0], v[1])
			return err
		}, word(func(ws []uint64) uint64 { return ws[0] & ws[1] })},
		{"or2", 2, func(s *System, d *BitVector, v []*BitVector) error {
			_, err := s.Or(d, v...)
			return err
		}, word(func(ws []uint64) uint64 { return ws[0] | ws[1] })},
		// Six operands: far past DRAM's pairwise TRA depth, so the
		// controller chains through the scratch row; PCM does it in one
		// multi-row activation. Same answer required.
		{"or6", 6, func(s *System, d *BitVector, v []*BitVector) error {
			_, err := s.Or(d, v...)
			return err
		}, word(func(ws []uint64) uint64 {
			var acc uint64
			for _, w := range ws {
				acc |= w
			}
			return acc
		})},
		{"xor", 2, func(s *System, d *BitVector, v []*BitVector) error {
			_, err := s.Xor(d, v[0], v[1])
			return err
		}, word(func(ws []uint64) uint64 { return ws[0] ^ ws[1] })},
		{"not", 1, func(s *System, d *BitVector, v []*BitVector) error {
			_, err := s.Not(d, v[0])
			return err
		}, word(func(ws []uint64) uint64 { return ^ws[0] })},
		{"copy", 1, func(s *System, d *BitVector, v []*BitVector) error {
			_, err := s.Copy(d, v[0])
			return err
		}, word(func(ws []uint64) uint64 { return ws[0] })},
	}
	sizes := []struct {
		name string
		bits func(s *System) int
	}{
		{"one-row", func(*System) int { return 4096 }},
		// Ragged: not a word multiple, so the last word carries stored
		// tail bits; golden comparison is skipped, raw-word equality
		// between the two technologies is still required.
		{"ragged", func(*System) int { return 1000 }},
		// Spans subarrays: exercises per-row-group lowering on both.
		{"two-rows", func(s *System) int { return s.RowBits() + 64 }},
	}
	for _, sz := range sizes {
		t.Run(sz.name, func(t *testing.T) {
			dram, err := New(Config{Tech: DRAM, Geometry: spreadGeometry()})
			if err != nil {
				t.Fatal(err)
			}
			pcm, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
			if err != nil {
				t.Fatal(err)
			}
			bits := sz.bits(dram)
			wholeWords := bits%64 == 0
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					run := func(s *System, seed int64) (dstW []uint64, srcW [][]uint64, golden [][]uint64) {
						var g []*BitVector
						if bits <= s.RowBits() {
							var err error
							g, err = s.AllocGroup(tc.nsrc+1, bits)
							if err != nil {
								t.Fatal(err)
							}
						} else {
							// Multi-row vectors: Alloc only (groups are
							// single-row); the op runs chunk by chunk.
							for i := 0; i < tc.nsrc+1; i++ {
								v, err := s.Alloc(bits)
								if err != nil {
									t.Fatal(err)
								}
								g = append(g, v)
							}
						}
						rng := rand.New(rand.NewSource(seed))
						for _, v := range g {
							golden = append(golden, seedVector(t, s, rng, v, bits))
						}
						if err := tc.run(s, g[tc.nsrc], g[:tc.nsrc]); err != nil {
							t.Fatal(err)
						}
						for _, v := range g[:tc.nsrc] {
							w, _, err := s.Read(v)
							if err != nil {
								t.Fatal(err)
							}
							srcW = append(srcW, w)
						}
						dstW, _, err = s.Read(g[tc.nsrc])
						if err != nil {
							t.Fatal(err)
						}
						return dstW, srcW, golden
					}
					dDst, dSrc, seeds := run(dram, 42)
					pDst, pSrc, _ := run(pcm, 42)
					if !reflect.DeepEqual(dDst, pDst) {
						t.Errorf("destination diverges: DRAM %x, PCM %x", dDst, pDst)
					}
					for i := range dSrc {
						if !reflect.DeepEqual(dSrc[i], pSrc[i]) {
							t.Errorf("source %d corrupted differently across technologies", i)
						}
						if wholeWords && !reflect.DeepEqual(dSrc[i], seeds[i]) {
							t.Errorf("source %d modified by a read-only operand", i)
						}
					}
					if wholeWords {
						if want := tc.golden(seeds[:tc.nsrc]); !reflect.DeepEqual(dDst, want) {
							t.Errorf("DRAM result %x != host golden %x", dDst, want)
						}
					}
				})
			}
			// Popcount: counts, not contents.
			t.Run("popcount", func(t *testing.T) {
				count := func(s *System) (int, []uint64) {
					v, err := s.Alloc(bits)
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(13))
					data := seedVector(t, s, rng, v, bits)
					n, _, err := s.Popcount(v)
					if err != nil {
						t.Fatal(err)
					}
					return n, data
				}
				dn, _ := count(dram)
				pn, _ := count(pcm)
				if dn != pn {
					t.Errorf("popcount diverges: DRAM %d, PCM %d", dn, pn)
				}
			})
		})
	}
}

// TestDRAMBatchDifferential is the DRAM instance of the batch-executor
// contract: Batch of N ops on a DRAM system and N sequential Apply calls
// on an identically seeded DRAM twin must produce bit-identical per-op
// Results, memory contents, statistics ledgers and hardware counters —
// under both arbiters, and with the ops sharded across goroutines (the
// race detector sees this test in CI).
func TestDRAMBatchDifferential(t *testing.T) {
	for _, arb := range []Arbiter{ArbFIFO, ArbOldestReady} {
		t.Run(arb.String(), func(t *testing.T) {
			cfg := Config{Tech: DRAM, Geometry: spreadGeometry()}
			batched, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const bits = 4096
			opsA := buildBatchOps(t, batched, bits)
			opsB := buildBatchOps(t, serial, bits)

			want := make([]Result, len(opsB))
			for i, op := range opsB {
				res, err := serial.Apply(op.Op, op.Dst, op.Srcs)
				if err != nil {
					t.Fatalf("sequential op %d (%v): %v", i, op.Op, err)
				}
				want[i] = res
			}
			br, err := batched.Batch(opsA, WithArbiter(arb))
			if err != nil {
				t.Fatal(err)
			}
			for i := range opsA {
				if !reflect.DeepEqual(br.Results[i], want[i]) {
					t.Errorf("op %d (%v): batch result %+v != sequential %+v",
						i, opsA[i].Op, br.Results[i], want[i])
				}
			}
			if br.Shards != len(opsA) {
				t.Errorf("Shards=%d, want %d (bank-disjoint ops)", br.Shards, len(opsA))
			}
			if a, b := batched.Stats(), serial.Stats(); !reflect.DeepEqual(a, b) {
				t.Errorf("Stats diverge: batch %+v, sequential %+v", a, b)
			}
			if a, b := batched.HardwareCounters(), serial.HardwareCounters(); !reflect.DeepEqual(a, b) {
				t.Errorf("HardwareCounters diverge: batch %+v, sequential %+v", a, b)
			}
			for i := range opsA {
				vecsA := append([]*BitVector{opsA[i].Dst}, opsA[i].Srcs...)
				vecsB := append([]*BitVector{opsB[i].Dst}, opsB[i].Srcs...)
				for j := range vecsA {
					wa, _, err := batched.Read(vecsA[j])
					if err != nil {
						t.Fatal(err)
					}
					wb, _, err := serial.Read(vecsB[j])
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(wa, wb) {
						t.Errorf("op %d (%v) vector %d: batch contents diverge from sequential",
							i, opsA[i].Op, j)
					}
				}
			}
		})
	}
}

// TestDRAMCachedBitIdentical pins the lowered-program cache on the DRAM
// backend: a cached second run of the same op template must report the
// exact Result of the uncached first run on a twin system (the cache
// replays priced commands and recomputes words through the backend's
// ComputeInto, so nothing may drift).
func TestDRAMCachedBitIdentical(t *testing.T) {
	cached, err := New(Config{Tech: DRAM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := New(Config{Tech: DRAM, Geometry: spreadGeometry(), DisableProgramCache: true})
	if err != nil {
		t.Fatal(err)
	}
	const bits = 4096
	run := func(s *System) ([]Result, [][]uint64) {
		var results []Result
		var contents [][]uint64
		for round := 0; round < 3; round++ {
			g, err := s.AllocGroup(3, bits)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(100 + round)))
			for _, v := range g {
				seedVector(t, s, rng, v, bits)
			}
			for _, op := range []Op{OpAnd, OpOr, OpXor, OpNot} {
				srcs := g[:2]
				if op == OpNot {
					srcs = g[:1]
				}
				res, err := s.Apply(op, g[2], srcs)
				if err != nil {
					t.Fatalf("round %d %v: %v", round, op, err)
				}
				results = append(results, res)
				w, _, err := s.Read(g[2])
				if err != nil {
					t.Fatal(err)
				}
				contents = append(contents, w)
			}
		}
		return results, contents
	}
	cr, cw := run(cached)
	ur, uw := run(uncached)
	if !reflect.DeepEqual(cr, ur) {
		t.Errorf("cached Results diverge from uncached:\ncached   %+v\nuncached %+v", cr, ur)
	}
	if !reflect.DeepEqual(cw, uw) {
		t.Error("cached memory contents diverge from uncached")
	}
	if hits := cached.PerfStats().ProgramCacheHits; hits == 0 {
		t.Error("cached system recorded zero cache hits — cache never engaged, test is vacuous")
	}
}

// TestDRAMConfigGates pins the configuration surface: the fault injector
// and replication model resistive sensing margins, so a DRAM system must
// refuse them with a diagnostic naming the technology, while the
// digital-side verify modes (readback, ECC) remain available.
func TestDRAMConfigGates(t *testing.T) {
	if _, err := New(Config{Tech: DRAM, Fault: FaultConfig{Seed: 1, SenseFlipRate: 1e-4}}); err == nil {
		t.Error("fault injection on DRAM accepted, want config error")
	} else if !strings.Contains(err.Error(), "DRAM") {
		t.Errorf("fault-injection error %q does not name DRAM", err)
	}
	if _, err := New(Config{Tech: DRAM, Resilience: ResilienceConfig{Replicate: 3}}); err == nil {
		t.Error("replication on DRAM accepted, want config error")
	} else if !strings.Contains(err.Error(), "DRAM") {
		t.Errorf("replication error %q does not name DRAM", err)
	}
	for _, mode := range []VerifyMode{VerifyReadback, VerifyECC} {
		sys, err := New(Config{Tech: DRAM, Geometry: spreadGeometry(),
			Resilience: ResilienceConfig{Verify: mode}})
		if err != nil {
			t.Fatalf("%v on DRAM rejected: %v", mode, err)
		}
		g, err := sys.AllocGroup(3, 1024)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		a := seedVector(t, sys, rng, g[0], 1024)
		b := seedVector(t, sys, rng, g[1], 1024)
		if _, err := sys.And(g[2], g[0], g[1]); err != nil {
			t.Fatalf("%v AND failed: %v", mode, err)
		}
		w, _, err := sys.Read(g[2])
		if err != nil {
			t.Fatal(err)
		}
		for i := range w {
			if w[i] != a[i]&b[i] {
				t.Fatalf("%v word %d: got %x want %x", mode, i, w[i], a[i]&b[i])
			}
		}
	}
}

package pinatubo

import (
	"context"
	"fmt"
	"sync"

	"pinatubo/internal/cmdstream"
	"pinatubo/internal/memarch"
	"pinatubo/internal/pimrt"
)

// shardSet is an incremental union-find over op footprints: ops that share
// any footprint key coalesce into one shard. Unlike a from-scratch
// partition, adding op N is O(|footprint(N)|·α) — the structure a
// batch-window admission loop grows one request at a time while the
// previous window is still executing.
type shardSet struct {
	parent []int
	owner  map[fpKey]int
}

func newShardSet() *shardSet {
	return &shardSet{owner: make(map[fpKey]int)}
}

// add appends the next op (index len(parent) before the call) and unions
// it with every earlier op it shares a key with.
func (ss *shardSet) add(fp []fpKey) {
	i := len(ss.parent)
	ss.parent = append(ss.parent, i)
	for _, k := range fp {
		if j, ok := ss.owner[k]; ok {
			ss.union(i, j)
		} else {
			ss.owner[k] = i
		}
	}
}

// find returns x's root with path halving.
func (ss *shardSet) find(x int) int {
	for ss.parent[x] != x {
		ss.parent[x] = ss.parent[ss.parent[x]]
		x = ss.parent[x]
	}
	return x
}

func (ss *shardSet) union(a, b int) {
	ra, rb := ss.find(a), ss.find(b)
	if ra != rb {
		ss.parent[ra] = rb
	}
}

// count returns the number of shards without materialising them.
func (ss *shardSet) count() int {
	n := 0
	for i := range ss.parent {
		if ss.find(i) == i {
			n++
		}
	}
	return n
}

// shards returns the partition as op-index lists, each ascending, ordered
// by first op — the same deterministic shape the batch merge relies on.
func (ss *shardSet) shards() [][]int {
	index := make(map[int]int)
	var shards [][]int
	for i := range ss.parent {
		root := ss.find(i)
		si, ok := index[root]
		if !ok {
			si = len(shards)
			index[root] = si
			shards = append(shards, nil)
		}
		shards[si] = append(shards[si], i)
	}
	return shards
}

// BatchBuilder accumulates a batch incrementally: each Add validates the
// op, computes its resource footprint and grows the shard partition in
// place. A builder is how a service overlaps admission with execution —
// requests arriving while window N runs are Added to window N+1's
// builder, and by the time window N finishes, N+1's sharding is already
// computed. Builders are not goroutine-safe: Add, Start and Wait must all
// run on the goroutine that owns the System (the shard execution inside a
// BatchRun is what parallelises, not the builder).
type BatchBuilder struct {
	sys        *System
	ops        []BatchOp
	footprints [][]fpKey
	ss         *shardSet
	gen        uint64
}

// NewBatchBuilder returns an empty builder bound to s.
func (s *System) NewBatchBuilder() *BatchBuilder {
	return &BatchBuilder{sys: s, ss: newShardSet(), gen: s.layoutGen}
}

// Add validates one op and admits it to the pending batch, growing the
// shard partition incrementally. The op is not executed until Start.
func (b *BatchBuilder) Add(op BatchOp) error {
	if err := b.refresh(); err != nil {
		return err
	}
	i := len(b.ops)
	if err := b.sys.validateOp(op.Op, op.Dst, op.Srcs); err != nil {
		return fmt.Errorf("pinatubo: batch op %d (%v): %w", i, op.Op, err)
	}
	fp, err := b.sys.opFootprint(op)
	if err != nil {
		return fmt.Errorf("pinatubo: batch op %d (%v): %w", i, op.Op, err)
	}
	b.ops = append(b.ops, op)
	b.footprints = append(b.footprints, fp)
	b.ss.add(fp)
	return nil
}

// Len returns the number of ops admitted so far.
func (b *BatchBuilder) Len() int { return len(b.ops) }

// Shards returns how many independent shards the admitted ops currently
// partition into — the concurrency the window would run at if Started
// now. An admission controller compares this against the planner's
// saturation point to decide when a window is full.
func (b *BatchBuilder) Shards() int {
	if len(b.ops) == 0 {
		return 0
	}
	return b.ss.count()
}

// refresh recomputes every footprint when the system's row layout moved
// (a remap, Free or replica teardown) since they were computed. Rare:
// only fault-induced retirements and frees bump the generation.
func (b *BatchBuilder) refresh() error {
	if b.gen == b.sys.layoutGen {
		return nil
	}
	ss := newShardSet()
	for i, op := range b.ops {
		if err := b.sys.validateOp(op.Op, op.Dst, op.Srcs); err != nil {
			return fmt.Errorf("pinatubo: batch op %d (%v): %w", i, op.Op, err)
		}
		fp, err := b.sys.opFootprint(op)
		if err != nil {
			return fmt.Errorf("pinatubo: batch op %d (%v): %w", i, op.Op, err)
		}
		b.footprints[i] = fp
		ss.add(fp)
	}
	b.ss = ss
	b.gen = b.sys.layoutGen
	return nil
}

// shardState is one shard's sandboxed execution environment: an isolated
// System seeded with the shard's footprint rows, plus mirrors of the live
// operand vectors bound to it.
type shardState struct {
	sys  *System
	vecs map[*BitVector]*BitVector
}

// BatchRun is a batch in flight. Between Start and Wait the shard
// goroutines touch only their sandboxes, never the live System — so the
// owning goroutine is free to keep Adding to the next window's builder,
// answer host reads of untouched vectors, or Plan. All live-state
// mutation (the merge) happens inside Wait, on the caller's goroutine.
type BatchRun struct {
	sys        *System
	ops        []BatchOp
	footprints [][]fpKey
	shards     [][]int
	states     []shardState
	arb        Arbiter
	ctx        context.Context
	opSeqBase  int64

	results []Result
	progs   []cmdstream.Program
	errs    []error
	ctxErrs []error
	done    chan struct{}

	// Owned by the caller's Wait: shard goroutines report through
	// results/errs slots and done, never through these.
	waited bool        //pinlint:owned Wait
	res    BatchResult //pinlint:owned Wait
	err    error       //pinlint:owned Wait
}

// Start launches the admitted batch: it snapshots the live rows every
// shard needs into per-shard sandboxes (synchronously, on the calling
// goroutine) and starts one goroutine per shard. After Start returns, the
// live System is not touched again until Wait — the window executes
// entirely on sandboxes, which is what makes overlapping the next
// window's admission race-free. The builder is reset to empty.
//
// Unlike Batch, Start always sandboxes, even a single-shard window: the
// point is overlap, and the merge in Wait keeps every integer counter
// exact (float totals are summed per shard, so they can differ from the
// op-order sum by ULPs).
func (b *BatchBuilder) Start(opts ...Option) (*BatchRun, error) {
	o, err := resolveOpts(opts)
	if err != nil {
		return nil, err
	}
	if _, err := o.arb.internal(); err != nil {
		return nil, err
	}
	if len(b.ops) == 0 {
		return nil, fmt.Errorf("pinatubo: empty batch")
	}
	if err := o.ctx.Err(); err != nil {
		return nil, err
	}
	if err := b.refresh(); err != nil {
		return nil, err
	}
	s := b.sys
	ops, footprints := b.ops, b.footprints
	shards := b.ss.shards()
	states, err := s.prepareShards(ops, footprints, shards)
	if err != nil {
		return nil, err
	}
	r := &BatchRun{
		sys:        s,
		ops:        ops,
		footprints: footprints,
		shards:     shards,
		states:     states,
		arb:        o.arb,
		ctx:        o.ctx,
		results:    make([]Result, len(ops)),
		progs:      make([]cmdstream.Program, len(ops)),
		errs:       make([]error, len(ops)),
		ctxErrs:    make([]error, len(shards)),
		done:       make(chan struct{}),
	}
	if liveInj := s.ctl.Injector(); liveInj != nil {
		r.opSeqBase = liveInj.OpSeq()
	}
	b.ops, b.footprints, b.ss = nil, nil, newShardSet()

	var wg sync.WaitGroup
	for si := range shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			st := r.states[si]
			inj := st.sys.ctl.Injector()
			for _, i := range r.shards[si] {
				if err := r.ctx.Err(); err != nil {
					r.ctxErrs[si] = err
					return
				}
				if inj != nil {
					// Pin the sandbox to op i's substream: apply's beginOp
					// advances it to opSeqBase+i+1, the exact stream the op
					// would draw running sequentially on the live system.
					inj.SetOpSeq(r.opSeqBase + int64(i))
				}
				srcs := make([]*BitVector, len(r.ops[i].Srcs))
				for j, src := range r.ops[i].Srcs {
					srcs[j] = st.vecs[src]
				}
				res, err := st.sys.apply(r.ops[i].Op, st.vecs[r.ops[i].Dst], srcs, &r.progs[i])
				if err != nil {
					r.errs[i] = err
					return
				}
				r.results[i] = res
			}
		}(si)
	}
	go func() {
		wg.Wait()
		close(r.done)
	}()
	return r, nil
}

// Done is closed when every shard goroutine has finished (or stopped on
// cancellation). A service loop selects on it to know the window is ready
// to Wait without blocking admission.
func (r *BatchRun) Done() <-chan struct{} {
	return r.done
}

// Wait joins the shards and merges their effects into the live System.
// It must be called from the goroutine that owns the System (the same
// one that called Start). Wait is idempotent: later calls return the
// first call's result.
//
// If the run's context was cancelled before the shards finished, nothing
// merges: every sandbox is discarded and the System is exactly as if the
// window never ran — the all-or-nothing guarantee a service needs to
// retry or shed the window's requests. The exception is a fault-injected
// run that retired a row mid-window: that falls back to a sequential
// replay on the live system, where cancellation stops between ops and
// the completed prefix stays applied.
func (r *BatchRun) Wait() (BatchResult, error) {
	<-r.done
	if r.waited {
		return r.res, r.err
	}
	r.waited = true
	r.res, r.err = r.finish()
	return r.res, r.err
}

func (r *BatchRun) finish() (BatchResult, error) {
	// Every shard goroutine has joined (Wait saw done close), so the
	// sandboxes are quiescent; whatever path finish takes — merge, replay
	// or discard — they go back to the pool on the way out.
	defer r.release()
	for _, e := range r.ctxErrs {
		if e != nil {
			// Cancelled mid-window: the sandboxes hold partial state the
			// live system never sees. Drop them wholesale.
			return BatchResult{}, e
		}
	}
	s := r.sys
	liveInj := s.ctl.Injector()
	if liveInj != nil {
		// A sandbox that touched its allocator hit a row retirement (remap,
		// replica teardown) or failed an op outright: its side effects
		// cannot merge into the live allocator's address space. The live
		// system was never touched, so replaying sequentially here yields
		// exactly the sequential execution — same substreams, same faults,
		// same remaps — at the cost of the concurrency.
		replay := false
		for i := range r.ops {
			if r.errs[i] != nil {
				replay = true
			}
		}
		for si := range r.shards {
			sh := r.states[si].sys
			if sh.alloc.AllocatedRows() != 0 || sh.alloc.RetiredRows() != 0 {
				replay = true
			}
		}
		if replay {
			for i := range r.results {
				r.results[i] = Result{}
			}
			if err := s.runSequential(r.ctx, r.ops, r.results, r.progs); err != nil {
				return BatchResult{}, err
			}
			return s.scheduleBatch(r.ops, r.progs, r.results, 1, r.arb)
		}
	}

	geo := s.mem.Geometry()
	for si, shard := range r.shards {
		sh := r.states[si].sys
		for _, a := range sh.mem.MaterializedAddrs() {
			if sh.mem.Aliased(a) {
				// Borrowed read-only from the live memory — already current.
				continue
			}
			copy(s.mem.PeekRow(a), sh.mem.PeekRow(a))
		}
		sh.ctl.ECCEntries(func(a memarch.RowAddr, bits int, words []uint64) {
			s.ctl.SetECCState(a, bits, words)
		})
		s.mem.AbsorbCounters(sh.mem)
		s.ctl.AbsorbCounters(sh.ctl.Counters())
		s.sched.AbsorbStats(sh.sched.FaultStats())
		if liveInj != nil {
			shInj := sh.ctl.Injector()
			seen := make(map[uint64]bool)
			for _, i := range shard {
				for _, k := range r.footprints[i] {
					if k.kind != 'r' {
						continue
					}
					key := geo.Encode(k.addr)
					if seen[key] {
						continue
					}
					seen[key] = true
					st, _ := shInj.RowState(key)
					liveInj.SetRowState(key, st)
				}
			}
			liveInj.AbsorbStats(shInj.Stats())
		}
		for k, v := range sh.stats.Ops {
			s.stats.Ops[k] += v
		}
		s.stats.Requests += sh.stats.Requests
		s.stats.BusySeconds += sh.stats.BusySeconds
		s.stats.EnergyJoules += sh.stats.EnergyJoules
		s.hostVerifies += sh.hostVerifies
		s.hostRetries += sh.hostRetries
		s.hostRowsRetired += sh.hostRowsRetired
		s.hostBitsCorrected += sh.hostBitsCorrected
		s.hostEccDecodes += sh.hostEccDecodes
		s.hostEccCorrected += sh.hostEccCorrected
		s.hostEccUncorrectable += sh.hostEccUncorrectable
		for live, mirror := range r.states[si].vecs {
			copy(live.rows, mirror.rows)
		}
	}
	if liveInj != nil {
		// Leave the live injector where sequential execution would have:
		// the next public op begins substream opSeqBase+len(ops)+1.
		liveInj.SetOpSeq(r.opSeqBase + int64(len(r.ops)))
	}
	for i := range r.ops {
		if r.errs[i] != nil {
			return BatchResult{}, fmt.Errorf("pinatubo: batch op %d (%v): %w", i, r.ops[i].Op, r.errs[i])
		}
	}
	return s.scheduleBatch(r.ops, r.progs, r.results, len(r.shards), r.arb)
}

// release returns every shard sandbox to the pool and drops the run's
// references to them. Called exactly once, from finish, after all shard
// goroutines have joined.
func (r *BatchRun) release() {
	for i := range r.states {
		r.sys.putSandbox(r.states[i].sys)
		r.states[i] = shardState{}
	}
	r.states = nil
}

// prepareShards snapshots the live state every shard's ops can touch into
// per-shard sandbox Systems: footprint rows, their ECC state, replica
// registrations and per-row fault-injector state, plus mirror BitVectors
// bound to the sandbox. Sandboxes come from the System's pool — a reused
// one is reset to fresh-construction state first — and go back to it when
// the run finishes.
//
// On the ideal-hardware path (no injector, no ECC, no replication) the
// shard only ever writes its destination and OR-scratch rows; every other
// footprint row is borrowed read-only from the live memory via AliasRow
// instead of copied — the live System is untouched between Start and
// Wait, so the borrowed words cannot change under the shard. Any write
// path the classification missed fails loudly in Memory.WriteRow.
func (s *System) prepareShards(ops []BatchOp, footprints [][]fpKey, shards [][]int) ([]shardState, error) {
	liveInj := s.ctl.Injector()
	geo := s.mem.Geometry()
	aliasOK := liveInj == nil && !s.ctl.ECCEnabled() && len(s.repRows) == 0
	states := make([]shardState, len(shards))
	for si, shard := range shards {
		sh, err := s.getSandbox()
		if err != nil {
			for _, st := range states[:si] {
				s.putSandbox(st.sys)
			}
			return nil, err
		}
		var written map[uint64]bool
		if aliasOK {
			written = s.shardWriteSet(ops, shard)
		}
		for _, i := range shard {
			for _, k := range footprints[i] {
				if k.kind != 'r' {
					continue
				}
				if aliasOK && !written[geo.Encode(k.addr)] {
					if !sh.mem.Aliased(k.addr) {
						sh.mem.AliasRow(k.addr, s.mem.PeekRow(k.addr))
					}
					continue
				}
				copy(sh.mem.PeekRow(k.addr), s.mem.PeekRow(k.addr))
				if bits, words, ok := s.ctl.ECCState(k.addr); ok {
					sh.ctl.SetECCState(k.addr, bits, words)
				}
				if reps := s.replicaRows(k.addr); reps != nil {
					sh.registerReplicas(k.addr, reps)
				}
				if liveInj != nil {
					if st, ok := liveInj.RowState(geo.Encode(k.addr)); ok {
						sh.ctl.Injector().SetRowState(geo.Encode(k.addr), st)
					}
				}
			}
		}
		vecs := make(map[*BitVector]*BitVector)
		mirror := func(b *BitVector) *BitVector {
			v, ok := vecs[b]
			if !ok {
				v = &BitVector{sys: sh, bits: b.bits,
					rows: append([]memarch.RowAddr(nil), b.rows...)}
				vecs[b] = v
			}
			return v
		}
		for _, i := range shard {
			mirror(ops[i].Dst)
			for _, src := range ops[i].Srcs {
				mirror(src)
			}
		}
		states[si] = shardState{sys: sh, vecs: vecs}
	}
	return states, nil
}

// shardWriteSet returns the encoded keys of every row the shard's ops can
// program on the ideal-hardware path: the destination rows of every op
// except popcount (host traffic that only reads), plus the per-subarray
// scratch row of every multi-row OR source group. This mirrors the write
// side of opFootprint's classification; every other footprint row is
// sensed but never driven, so prepareShards aliases it instead of copying.
func (s *System) shardWriteSet(ops []BatchOp, shard []int) map[uint64]bool {
	geo := s.mem.Geometry()
	written := make(map[uint64]bool)
	for _, i := range shard {
		op := ops[i]
		if op.Op == OpPopcount {
			continue
		}
		for _, r := range op.Dst.rows {
			written[geo.Encode(r)] = true
		}
		if op.Op != OpOr {
			continue
		}
		for batch := range op.Dst.rows {
			srcRows := make([]memarch.RowAddr, 0, len(op.Srcs))
			for _, src := range op.Srcs {
				srcRows = append(srcRows, src.rows[batch])
			}
			for _, g := range pimrt.GroupBySubarray(srcRows) {
				if len(g) > 1 {
					written[geo.Encode(pimrt.ScratchRow(geo, g[0]))] = true
				}
			}
		}
	}
	return written
}

package pinatubo

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPipelinedWindowsDifferential pins the batch-window executor to the
// sequential baseline: the same ops executed as a sequence of pipelined
// windows — each next window admitted (validated, footprinted, sharded)
// WHILE the previous window's shards are still running — produce memory
// contents, per-op Results and statistics ledgers bit-identical to one
// Apply call per op on an identically seeded twin. Runs with and without
// a fault injector attached; the per-operation fault substreams are what
// make window boundaries invisible to the fault sequence.
func TestPipelinedWindowsDifferential(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"pcm", Config{Tech: PCM, Geometry: spreadGeometry()}},
		{"pcm-readback", Config{Tech: PCM, Geometry: spreadGeometry(),
			Resilience: ResilienceConfig{Verify: VerifyReadback}}},
		{"pcm-faulty", Config{Tech: PCM, Geometry: spreadGeometry(),
			Fault: FaultConfig{Seed: 3, SenseFlipRate: 1e-4, ActivationFailRate: 1e-4}}},
		{"pcm-faulty-readback", Config{Tech: PCM, Geometry: spreadGeometry(),
			Resilience: ResilienceConfig{Verify: VerifyReadback},
			Fault:      FaultConfig{Seed: 9, SenseFlipRate: 1e-3, ActivationFailRate: 1e-4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			piped, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			const bits = 4096
			opsA := buildBatchOps(t, piped, bits)
			opsB := buildBatchOps(t, serial, bits)

			want := make([]Result, len(opsB))
			for i, op := range opsB {
				res, err := serial.Apply(op.Op, op.Dst, op.Srcs)
				if err != nil {
					t.Fatalf("sequential op %d (%v): %v", i, op.Op, err)
				}
				want[i] = res
			}

			// Pipelined execution: windows of 2 ops; window N+1 is admitted
			// between window N's Start and Wait — live validation and
			// sharding racing the sandboxed shard goroutines, which the
			// -race build checks is sound.
			const windowLen = 2
			var got []Result
			builder := piped.NewBatchBuilder()
			var run *BatchRun
			for i := 0; i < len(opsA); i += windowLen {
				if run != nil {
					br, err := run.Wait()
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, br.Results...)
				}
				for j := i; j < i+windowLen && j < len(opsA); j++ {
					if err := builder.Add(opsA[j]); err != nil {
						t.Fatal(err)
					}
				}
				run, err = builder.Start()
				if err != nil {
					t.Fatal(err)
				}
			}
			br, err := run.Wait()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, br.Results...)

			if len(got) != len(want) {
				t.Fatalf("windows returned %d results, want %d", len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("op %d (%v): windowed result %+v != sequential %+v",
						i, opsA[i].Op, got[i], want[i])
				}
			}
			if a, b := piped.Stats(), serial.Stats(); !reflect.DeepEqual(a, b) {
				t.Errorf("Stats diverge: windowed %+v, sequential %+v", a, b)
			}
			if a, b := piped.HardwareCounters(), serial.HardwareCounters(); !reflect.DeepEqual(a, b) {
				t.Errorf("HardwareCounters diverge: windowed %+v, sequential %+v", a, b)
			}
			if a, b := piped.FaultStats(), serial.FaultStats(); a != b {
				t.Errorf("FaultStats diverge: windowed %+v, sequential %+v", a, b)
			}
			for i := range opsA {
				vecsA := append([]*BitVector{opsA[i].Dst}, opsA[i].Srcs...)
				vecsB := append([]*BitVector{opsB[i].Dst}, opsB[i].Srcs...)
				for j := range vecsA {
					wa, _, err := piped.Read(vecsA[j])
					if err != nil {
						t.Fatal(err)
					}
					wb, _, err := serial.Read(vecsB[j])
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(wa, wb) {
						t.Errorf("op %d (%v) vector %d: windowed contents diverge", i, opsA[i].Op, j)
					}
				}
			}
		})
	}
}

// TestBatchBuilderIncrementalSharding checks the incremental union-find
// agrees with the batch executor: bank-disjoint ops stay one shard each,
// ops sharing a vector coalesce, and Len/Shards track admission.
func TestBatchBuilderIncrementalSharding(t *testing.T) {
	sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	ops := buildBatchOps(t, sys, 4096)
	b := sys.NewBatchBuilder()
	if b.Len() != 0 || b.Shards() != 0 {
		t.Fatalf("empty builder: Len=%d Shards=%d", b.Len(), b.Shards())
	}
	for i, op := range ops {
		if err := b.Add(op); err != nil {
			t.Fatal(err)
		}
		if b.Len() != i+1 {
			t.Fatalf("after %d adds Len=%d", i+1, b.Len())
		}
		if b.Shards() != i+1 {
			t.Fatalf("bank-disjoint ops: after %d adds Shards=%d", i+1, b.Shards())
		}
	}
	// Two more ops on op 0's destination: both must coalesce into op 0's
	// shard, leaving the count unchanged plus nothing.
	n := b.Shards()
	for i := 0; i < 2; i++ {
		if err := b.Add(BatchOp{Op: OpNot, Dst: ops[0].Dst, Srcs: []*BitVector{ops[0].Dst}}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Shards() != n {
		t.Fatalf("conflicting adds changed shard count: %d -> %d", n, b.Shards())
	}
	run, err := b.Start()
	if err != nil {
		t.Fatal(err)
	}
	br, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if br.Shards != n {
		t.Fatalf("executed Shards=%d, builder predicted %d", br.Shards, n)
	}
	if b.Len() != 0 {
		t.Fatalf("builder not reset after Start: Len=%d", b.Len())
	}
}

// countdownCtx is a deterministic context: Err() reports Canceled from
// the Nth call on. It makes cancellation tests timing-free — the cancel
// lands at an exact, repeatable point in the run's control flow.
type countdownCtx struct {
	context.Context
	calls int64
	after int64
}

func newCountdownCtx(after int64) *countdownCtx {
	return &countdownCtx{Context: context.Background(), after: after}
}

func (c *countdownCtx) Err() error {
	if atomic.AddInt64(&c.calls, 1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestBatchRunCancellationAllOrNothing pins the window cancellation
// guarantee: a run cancelled after its shard already executed part of the
// window merges NOTHING — the live System is bit-identical to a twin that
// never saw the batch, and re-running the same ops afterwards succeeds.
func TestBatchRunCancellationAllOrNothing(t *testing.T) {
	cfg := Config{Tech: PCM, Geometry: spreadGeometry()}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const bits = 4096
	ops := buildBatchOps(t, sys, bits)
	twinOps := buildBatchOps(t, twin, bits)

	// Chain the ops into one shard: op i+1 reads op i's destination, so
	// the sandbox executes them in op order on one goroutine and the
	// countdown context is hit deterministically.
	var chained []BatchOp
	for i := 1; i < len(ops); i++ {
		chained = append(chained, BatchOp{Op: OpCopy, Dst: ops[i].Dst, Srcs: []*BitVector{ops[i-1].Dst}})
	}
	b := sys.NewBatchBuilder()
	for _, op := range chained {
		if err := b.Add(op); err != nil {
			t.Fatal(err)
		}
	}
	if b.Shards() != 1 {
		t.Fatalf("chained ops split into %d shards, want 1", b.Shards())
	}
	// Call 1 is Start's admission check; calls 2..3 let the shard run two
	// ops; call 4 (before op 3) cancels — mid-window, with real sandbox
	// effects already applied.
	ctx := newCountdownCtx(3)
	run, err := b.Start(WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(); err != context.Canceled {
		t.Fatalf("Wait after cancel: err=%v, want context.Canceled", err)
	}
	// Idempotent Wait reports the same outcome.
	if _, err := run.Wait(); err != context.Canceled {
		t.Fatalf("second Wait: err=%v, want context.Canceled", err)
	}

	// The live system must be exactly the twin that never ran the batch.
	if a, bst := sys.Stats(), twin.Stats(); !reflect.DeepEqual(a, bst) {
		t.Errorf("cancelled run leaked stats: %+v != %+v", a, bst)
	}
	if a, bhc := sys.HardwareCounters(), twin.HardwareCounters(); !reflect.DeepEqual(a, bhc) {
		t.Errorf("cancelled run leaked hardware counters: %+v != %+v", a, bhc)
	}
	for i := range ops {
		wa, _, err := sys.Read(ops[i].Dst)
		if err != nil {
			t.Fatal(err)
		}
		wb, _, err := twin.Read(twinOps[i].Dst)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wa, wb) {
			t.Errorf("cancelled run mutated vector %d", i)
		}
	}

	// The same window re-admitted under a live context completes, and
	// matches the twin running the same ops sequentially.
	for _, op := range chained {
		if err := b.Add(op); err != nil {
			t.Fatal(err)
		}
	}
	run, err = b.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(twinOps); i++ {
		if _, err := twin.Apply(OpCopy, twinOps[i].Dst, []*BitVector{twinOps[i-1].Dst}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range ops {
		wa, _, err := sys.Read(ops[i].Dst)
		if err != nil {
			t.Fatal(err)
		}
		wb, _, err := twin.Read(twinOps[i].Dst)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wa, wb) {
			t.Errorf("retried run diverged on vector %d", i)
		}
	}
}

// TestBatchRunStartCancelled checks an already-cancelled context stops
// the window before any sandbox is built.
func TestBatchRunStartCancelled(t *testing.T) {
	sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	ops := buildBatchOps(t, sys, 4096)
	b := sys.NewBatchBuilder()
	if err := b.Add(ops[0]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Start(WithContext(ctx)); err != context.Canceled {
		t.Fatalf("Start with cancelled ctx: err=%v, want context.Canceled", err)
	}
}

// TestBatchBuilderStaleAfterFree checks the layout-generation guard: a
// vector freed after admission is caught when the builder revalidates,
// instead of executing against recycled rows.
func TestBatchBuilderStaleAfterFree(t *testing.T) {
	sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	ops := buildBatchOps(t, sys, 4096)
	b := sys.NewBatchBuilder()
	if err := b.Add(ops[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.Free(ops[0].Dst); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Start(); err == nil || !strings.Contains(err.Error(), "batch op 0") {
		t.Fatalf("Start on freed operand: err=%v, want batch op 0 validation error", err)
	}
}

// TestBatchRunDoneSignal checks Done() closes and Wait returns a
// schedule consistent with the admitted ops.
func TestBatchRunDoneSignal(t *testing.T) {
	sys, err := New(Config{Tech: PCM, Geometry: spreadGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	ops := buildBatchOps(t, sys, 4096)
	b := sys.NewBatchBuilder()
	for _, op := range ops {
		if err := b.Add(op); err != nil {
			t.Fatal(err)
		}
	}
	run, err := b.Start(WithArbiter(ArbOldestReady))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-run.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("Done() never closed")
	}
	br, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if br.Arb != ArbOldestReady {
		t.Fatalf("Arb=%v, want oldest-ready", br.Arb)
	}
	if len(br.Results) != len(ops) || len(br.Completion) != len(ops) {
		t.Fatalf("result shape %d/%d, want %d", len(br.Results), len(br.Completion), len(ops))
	}
	if br.Makespan <= 0 || br.Makespan > br.Sequential {
		t.Fatalf("Makespan=%v outside (0, %v]", br.Makespan, br.Sequential)
	}
}

package pinatubo

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"

	"pinatubo/internal/bitvec"
)

// TestReplicatedExecutionProperty is the replication rung's correctness
// property: for every operation × technology × replica count R ∈ {3, 5},
// across fault rates {0, 1e-4, 1e-3}, replicated execution never returns
// a wrong or unverified result, and the vote ledgers reconcile — per-op
// Result vote counters sum to the FaultStats totals, and the majority
// never outvotes more bit positions than the injector actually flipped.
func TestReplicatedExecutionProperty(t *testing.T) {
	techs := []Tech{PCM, STTMRAM, ReRAM}
	for _, tech := range techs {
		for _, r := range []int{3, 5} {
			for _, rate := range []float64{0, 1e-4, 1e-3} {
				tech, r, rate := tech, r, rate
				t.Run(fmt.Sprintf("%v/r%d/rate%g", tech, r, rate), func(t *testing.T) {
					t.Parallel()
					runReplicatedProperty(t, tech, r, rate)
				})
			}
		}
	}
}

func runReplicatedProperty(t *testing.T, tech Tech, r int, rate float64) {
	cfg := DefaultConfig()
	cfg.Tech = tech
	cfg.Resilience = ResilienceConfig{Verify: VerifyReadback, Replicate: r}
	cfg.Fault = FaultConfig{Seed: 7, SenseFlipRate: rate, ActivationFailRate: rate / 10}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const nvec = 16
	const vbits = 1 << 13
	w := bitvec.WordsFor(vbits)
	vs, err := s.AllocGroup(nvec, vbits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	golden := make([][]uint64, nvec)
	for i, v := range vs {
		golden[i] = make([]uint64, w)
		for j := range golden[i] {
			golden[i][j] = rng.Uint64()
		}
		mask := uint64(1)<<(vbits%64) - 1
		if vbits%64 == 0 {
			mask = ^uint64(0)
		}
		golden[i][w-1] &= mask
		if _, err := s.Write(v, golden[i]); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := s.Alloc(vbits)
	if err != nil {
		t.Fatal(err)
	}

	var votes int
	var outvoted int64
	check := func(name string, res Result, want func(j int) uint64) {
		t.Helper()
		votes += res.Votes
		outvoted += res.BitsOutvoted
		got, _, err := s.Read(dst)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		for j := 0; j < w; j++ {
			if got[j] != want(j) {
				t.Fatalf("%s: word %d wrong despite replication (R=%d, rate=%g)",
					name, j, r, rate)
			}
		}
	}

	res, err := s.Or(dst, vs...)
	if err != nil {
		t.Fatal(err)
	}
	check("or", res, func(j int) uint64 {
		var or uint64
		for i := range golden {
			or |= golden[i][j]
		}
		return or
	})

	res, err = s.And(dst, vs[0], vs[1])
	if err != nil {
		t.Fatal(err)
	}
	check("and", res, func(j int) uint64 { return golden[0][j] & golden[1][j] })

	res, err = s.Xor(dst, vs[2], vs[3])
	if err != nil {
		t.Fatal(err)
	}
	check("xor", res, func(j int) uint64 { return golden[2][j] ^ golden[3][j] })

	notMask := func(j int) uint64 {
		m := ^uint64(0)
		if j == w-1 && vbits%64 != 0 {
			m = uint64(1)<<(vbits%64) - 1
		}
		return m
	}
	res, err = s.Not(dst, vs[4])
	if err != nil {
		t.Fatal(err)
	}
	check("not", res, func(j int) uint64 { return ^golden[4][j] & notMask(j) })

	res, err = s.Copy(dst, vs[5])
	if err != nil {
		t.Fatal(err)
	}
	check("copy", res, func(j int) uint64 { return golden[5][j] })

	n, res, err := s.Popcount(dst)
	if err != nil {
		t.Fatal(err)
	}
	votes += res.Votes
	outvoted += res.BitsOutvoted
	wantPop := 0
	for j := 0; j < w; j++ {
		wantPop += bits.OnesCount64(golden[5][j])
	}
	if n != wantPop {
		t.Fatalf("popcount %d, want %d", n, wantPop)
	}

	fs := s.FaultStats()
	// With the resilience layer explicitly on, replicated intra-subarray
	// requests must actually vote — at every fault rate, including zero.
	if fs.Votes == 0 {
		t.Fatal("no majority votes taken with Replicate set")
	}
	// Reconciliation: the per-op Result counters and the system ledger are
	// two views of the same events.
	if int64(votes) != fs.Votes || outvoted != fs.BitsOutvoted {
		t.Fatalf("vote ledgers diverge: Results %d votes/%d outvoted, FaultStats %d/%d",
			votes, outvoted, fs.Votes, fs.BitsOutvoted)
	}
	// Every outvoted bit position had at least one disagreeing copy, and
	// every disagreement traces back to an injected sense flip.
	if fs.BitsOutvoted > fs.SenseFlips {
		t.Fatalf("outvoted %d bits but only %d sense flips injected",
			fs.BitsOutvoted, fs.SenseFlips)
	}
	if rate == 0 {
		degraded := fs.DepthReductions != 0 || fs.InterFallbacks != 0 || fs.HostFallbacks != 0
		if fs.SenseFlips != 0 || fs.BitsOutvoted != 0 || fs.Retries != 0 || degraded {
			t.Fatalf("fault-free replicated run shows fault activity: %+v", fs)
		}
	}
}

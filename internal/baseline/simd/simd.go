// Package simd models the paper's conventional-processor baseline: a
// 4-core, 4-issue out-of-order x86 at 3.3 GHz with 128-bit SSE/AVX bitwise
// units and a 32 KB / 256 KB / 6 MB cache hierarchy, attached to either a
// DRAM or a PCM main memory. A bulk bitwise operation streams every operand
// through the DDR bus and the whole hierarchy, computes in the SIMD units,
// and writes the result back — the data movement Pinatubo eliminates.
package simd

import (
	"fmt"

	"pinatubo/internal/nvm"
	"pinatubo/internal/workload"
)

// Config describes the processor and its memory.
type Config struct {
	Cores         int
	FreqHz        float64
	SIMDBits      int     // bitwise datapath width per op
	SIMDPerCycle  int     // SIMD bitwise ops issued per cycle per core
	CorePowerW    float64 // package power while streaming
	PerOpOverhead float64 // fixed software overhead per request (call, loop setup)

	L3Bytes     int     // last-level cache size (residency threshold)
	L3BytesPerS float64 // LLC streaming bandwidth (aggregate)

	MemReadBW  float64 // effective main-memory read bandwidth (aggregate)
	MemWriteBW float64 // effective main-memory write bandwidth (aggregate)

	// Per-bit main-memory access energies (array + bus), from the memory
	// technology.
	MemReadPerBit  float64
	MemWritePerBit float64
	CachePerByte   float64 // cache hierarchy dynamic energy per byte moved
}

// HaswellConfig returns the paper's SIMD baseline attached to a main memory
// of the given technology (DRAM when compared against S-DRAM, PCM when
// compared against AC-PIM and Pinatubo).
func HaswellConfig(mem nvm.Tech) Config {
	p := nvm.Get(mem)
	cfg := Config{
		Cores:          4,
		FreqHz:         3.3e9,
		SIMDBits:       128,
		SIMDPerCycle:   2,
		CorePowerW:     65,
		PerOpOverhead:  150e-9,
		L3Bytes:        6 << 20,
		L3BytesPerS:    200e9,
		MemReadPerBit:  p.Energy.ActPerBit + p.Energy.SensePerBit + p.Energy.IOBusPerBit,
		MemWritePerBit: p.Energy.WritePerBit + p.Energy.IOBusPerBit,
		CachePerByte:   4e-12,
	}
	switch mem {
	case nvm.DRAM:
		// 4-channel DDR3-1600: 51.2 GB/s peak, ~80% streaming efficiency.
		cfg.MemReadBW = 41e9
		cfg.MemWriteBW = 41e9
	default:
		// PCM DIMMs read near bus speed but write far below it (long tWR,
		// limited write drivers / power budget).
		cfg.MemReadBW = 41e9
		cfg.MemWriteBW = 8e9
	}
	return cfg
}

// Engine prices requests on the processor model.
type Engine struct {
	cfg Config
}

// New builds the engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Cores <= 0 || cfg.FreqHz <= 0 || cfg.SIMDBits <= 0 || cfg.SIMDPerCycle <= 0 {
		return nil, fmt.Errorf("simd: non-positive core parameter in %+v", cfg)
	}
	if cfg.MemReadBW <= 0 || cfg.MemWriteBW <= 0 || cfg.L3BytesPerS <= 0 {
		return nil, fmt.Errorf("simd: non-positive bandwidth in %+v", cfg)
	}
	return &Engine{cfg: cfg}, nil
}

// Name implements workload.Engine.
func (e *Engine) Name() string { return "SIMD" }

// Parallelism implements workload.Engine: the cost model is already
// aggregate over all cores and channels.
func (e *Engine) Parallelism() float64 { return 1 }

// OpCost implements workload.Engine.
//
// The request reads all n operand vectors, combines them pairwise in the
// SIMD units ((n-1) bitwise ops per lane), and writes one result vector.
// Time is the maximum of the compute stream and the memory stream (they
// overlap in an OoO core), plus fixed per-request overhead. INV is a read +
// NOT + write of a single vector.
func (e *Engine) OpCost(spec workload.OpSpec) (workload.Cost, error) {
	if err := spec.Validate(); err != nil {
		return workload.Cost{}, err
	}
	n := float64(spec.Operands)
	bits := float64(spec.Bits)

	readBytes := n * bits / 8
	writeBytes := bits / 8

	// Compute stream: load each operand lane, combine, store result lane.
	lanes := bits / float64(e.cfg.SIMDBits)
	simdOps := lanes * (2*n + 1) // n loads, n-1 logic ops (≥1), 1 store, rounded up
	tCompute := simdOps / (float64(e.cfg.Cores*e.cfg.SIMDPerCycle) * e.cfg.FreqHz)

	// Memory stream.
	var tMem float64
	cacheFits := spec.CacheResident && int(readBytes+writeBytes) <= e.cfg.L3Bytes
	if cacheFits {
		tMem = (readBytes + writeBytes) / e.cfg.L3BytesPerS
	} else {
		tMem = readBytes/e.cfg.MemReadBW + writeBytes/e.cfg.MemWriteBW
	}

	t := tCompute
	if tMem > t {
		t = tMem
	}
	t += e.cfg.PerOpOverhead

	j := t * e.cfg.CorePowerW
	j += (readBytes + writeBytes) * e.cfg.CachePerByte
	if !cacheFits {
		j += readBytes*8*e.cfg.MemReadPerBit + writeBytes*8*e.cfg.MemWritePerBit
	}
	return workload.Cost{Seconds: t, Joules: j}, nil
}

var _ workload.Engine = (*Engine)(nil)

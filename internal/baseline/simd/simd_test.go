package simd

import (
	"testing"

	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

func TestCacheBasics(t *testing.T) {
	c, err := NewCache(1024, 2, 64) // 8 sets, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) || !c.Access(63) {
		t.Error("warm line missed")
	}
	if c.Access(64) {
		t.Error("different line hit")
	}
	acc, miss := c.Stats()
	if acc != 4 || miss != 2 {
		t.Errorf("stats %d/%d want 4/2", acc, miss)
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate %g", c.MissRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2*64, 2, 64) // 1 set, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0 * 64)
	c.Access(1 * 64)
	c.Access(0 * 64) // 0 becomes MRU
	c.Access(2 * 64) // evicts 1 (LRU)
	if !c.Access(0 * 64) {
		t.Error("line 0 should have survived")
	}
	if c.Access(1 * 64) {
		t.Error("line 1 should have been evicted")
	}
}

func TestCacheReset(t *testing.T) {
	c, _ := NewCache(1024, 2, 64)
	c.Access(0)
	c.Reset()
	if acc, _ := c.Stats(); acc != 0 {
		t.Error("reset did not clear counters")
	}
	if c.Access(0) {
		t.Error("reset did not clear contents")
	}
	if c.MissRate() == 0 {
		t.Error("miss after reset should count")
	}
}

func TestCacheErrors(t *testing.T) {
	if _, err := NewCache(0, 2, 64); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewCache(100, 3, 64); err == nil {
		t.Error("non-divisible size accepted")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy()
	if lvl := h.Access(4096); lvl != 4 {
		t.Errorf("cold access hit level %d", lvl)
	}
	if lvl := h.Access(4096); lvl != 1 {
		t.Errorf("hot access hit level %d want 1 (L1)", lvl)
	}
	// Stream 64 KB: too big for L1 (32 KB), fits L2.
	for addr := uint64(0); addr < 64<<10; addr += 64 {
		h.Access(addr)
	}
	if lvl := h.Access(0); lvl != 2 {
		t.Errorf("64KB working set re-access hit level %d want 2 (L2)", lvl)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := HaswellConfig(nvm.PCM)
	cfg.MemReadBW = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestEngineMetadata(t *testing.T) {
	e, err := New(HaswellConfig(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "SIMD" || e.Parallelism() != 1 {
		t.Error("metadata wrong")
	}
}

func TestOpCostScalesWithTraffic(t *testing.T) {
	e, err := New(HaswellConfig(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	small, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	large, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	if large.Seconds <= small.Seconds || large.Joules <= small.Joules {
		t.Error("longer vectors must cost more")
	}
	wide, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 128, Bits: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	// 128 operands carry 64x the read traffic of 2 operands, but the fixed
	// result-write time (slow PCM writes) damps the ratio.
	if ratio := wide.Seconds / large.Seconds; ratio < 10 || ratio > 64 {
		t.Errorf("128-operand / 2-operand time ratio %g, want within (10,64)", ratio)
	}
}

func TestCacheResidencySpeedsUp(t *testing.T) {
	e, err := New(HaswellConfig(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: 1 << 14}
	mem, err := e.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.CacheResident = true
	hot, err := e.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Seconds >= mem.Seconds || hot.Joules >= mem.Joules {
		t.Error("cache-resident op should be cheaper")
	}
}

func TestCacheResidencyIgnoredWhenTooBig(t *testing.T) {
	e, err := New(HaswellConfig(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	// 128 × 2^19 bits = 8 MB > 6 MB LLC: residency flag cannot apply.
	spec := workload.OpSpec{Op: sense.OpOR, Operands: 128, Bits: 1 << 19}
	cold, err := e.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.CacheResident = true
	hot, err := e.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	if hot != cold {
		t.Error("oversized working set should ignore the residency flag")
	}
}

func TestPCMWritesSlowerThanDRAM(t *testing.T) {
	pcm, err := New(HaswellConfig(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	dram, err := New(HaswellConfig(nvm.DRAM))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: 1 << 19}
	cp, err := pcm.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := dram.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Seconds <= cd.Seconds {
		t.Error("SIMD on PCM should be slower than on DRAM (write bandwidth)")
	}
}

func TestOpCostRejectsInvalid(t *testing.T) {
	e, _ := New(HaswellConfig(nvm.PCM))
	if _, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 1, Bits: 64}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func BenchmarkHierarchyStream(b *testing.B) {
	h := NewHierarchy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i) * 64)
	}
}

package simd

import "fmt"

// Cache is a set-associative cache with LRU replacement, used to determine
// residency behaviour of the SIMD baseline on small working sets and in the
// application models' non-bitwise phases.
type Cache struct {
	lineBytes int
	sets      int
	ways      int
	// lru[set] holds line tags, most recently used last.
	lru [][]uint64

	accesses int64
	misses   int64
}

// NewCache builds a cache of the given total size, associativity and line
// size. Size must be divisible by ways*lineBytes.
func NewCache(sizeBytes, ways, lineBytes int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("simd: non-positive cache parameter (%d,%d,%d)", sizeBytes, ways, lineBytes)
	}
	if sizeBytes%(ways*lineBytes) != 0 {
		return nil, fmt.Errorf("simd: size %d not divisible by ways*line %d", sizeBytes, ways*lineBytes)
	}
	sets := sizeBytes / (ways * lineBytes)
	c := &Cache{lineBytes: lineBytes, sets: sets, ways: ways}
	c.lru = make([][]uint64, sets)
	return c, nil
}

// Access touches the byte address and reports whether it hit. Misses fill
// the line, evicting the least recently used line of the set.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	line := addr / uint64(c.lineBytes)
	set := int(line % uint64(c.sets))
	ways := c.lru[set]
	for i, tag := range ways {
		if tag == line {
			// Move to MRU position.
			copy(ways[i:], ways[i+1:])
			ways[len(ways)-1] = line
			return true
		}
	}
	c.misses++
	if len(ways) < c.ways {
		c.lru[set] = append(ways, line)
	} else {
		copy(ways, ways[1:])
		ways[len(ways)-1] = line
	}
	return false
}

// Stats returns accesses and misses so far.
func (c *Cache) Stats() (accesses, misses int64) { return c.accesses, c.misses }

// MissRate returns misses/accesses (0 when unused).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.lru {
		c.lru[i] = nil
	}
	c.accesses, c.misses = 0, 0
}

// Hierarchy is the baseline's three-level cache.
type Hierarchy struct {
	L1, L2, L3 *Cache
}

// NewHierarchy builds the paper's Haswell-class hierarchy: 32 KB 8-way L1,
// 256 KB 8-way L2, 6 MB 12-way L3, 64 B lines. Panics only if NewCache
// rejects these built-in parameters — impossible unless its validation
// changes out from under the constants.
func NewHierarchy() *Hierarchy {
	l1, err := NewCache(32<<10, 8, 64)
	if err != nil {
		panic(err)
	}
	l2, err := NewCache(256<<10, 8, 64)
	if err != nil {
		panic(err)
	}
	l3, err := NewCache(6<<20, 12, 64)
	if err != nil {
		panic(err)
	}
	return &Hierarchy{L1: l1, L2: l2, L3: l3}
}

// Access walks the hierarchy and returns the level that hit: 1, 2, 3, or 4
// for main memory.
func (h *Hierarchy) Access(addr uint64) int {
	if h.L1.Access(addr) {
		return 1
	}
	if h.L2.Access(addr) {
		return 2
	}
	if h.L3.Access(addr) {
		return 3
	}
	return 4
}

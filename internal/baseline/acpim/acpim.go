// Package acpim models the accelerator-in-memory comparison point: bulk
// bitwise operations computed by digital logic gates attached to the memory
// buffers (the paper's Fig. 8b), with *no* analog multi-row sensing. Even
// operands that share a subarray must be read out row by row through the
// normal sensing path and streamed through the adder-style logic, so every
// operation costs n serial row reads regardless of operand count — the
// one-step advantage of Pinatubo never applies — and every bit toggles
// full-swing digital logic rather than an analog comparison.
package acpim

import (
	"fmt"

	"pinatubo/internal/ddr"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/workload"
)

// Config describes the accelerator.
type Config struct {
	Tech nvm.Params
	Geo  memarch.Geometry
	Bus  ddr.BusParams
	// Channels is request-level parallelism.
	Channels int
}

// DefaultConfig returns the paper's setup: AC-PIM on the same 1T1R PCM main
// memory as Pinatubo.
func DefaultConfig() Config {
	return Config{
		Tech:     nvm.Get(nvm.PCM),
		Geo:      memarch.Default(),
		Bus:      ddr.DefaultBus(),
		Channels: 4,
	}
}

// Engine prices requests on the AC-PIM model.
type Engine struct {
	cfg Config
}

// New builds the engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Geo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("acpim: non-positive channel count %d", cfg.Channels)
	}
	return &Engine{cfg: cfg}, nil
}

// Name implements workload.Engine.
func (e *Engine) Name() string { return "AC-PIM" }

// Parallelism implements workload.Engine.
func (e *Engine) Parallelism() float64 { return float64(e.cfg.Channels) }

// OpCost implements workload.Engine.
func (e *Engine) OpCost(spec workload.OpSpec) (workload.Cost, error) {
	if err := spec.Validate(); err != nil {
		return workload.Cost{}, err
	}
	t := e.cfg.Tech.Timing
	en := e.cfg.Tech.Energy
	geo := e.cfg.Geo
	rowBits := geo.RowBits()
	sw := geo.SenseWidthBits()

	// Operands beyond the accumulating buffer's bank stream over the
	// chip-level I/O datapath instead of the bank's GDLs. Either way the
	// stream is throttled by the synthesized combine logic, which closes
	// timing at half the datapath clock.
	moveBitsPerSec := e.cfg.Bus.GDLBitsPerSec
	movePerBit := en.GDLPerBit
	if spec.Placement == workload.PlaceInterBank {
		moveBitsPerSec = e.cfg.Bus.IOBitsPerSec
		movePerBit = en.IOBusPerBit
	}
	moveBitsPerSec /= 2

	var total workload.Cost
	remaining := spec.Bits
	for remaining > 0 {
		bits := remaining
		if bits > rowBits {
			bits = rowBits
		}
		remaining -= bits
		fb := float64(bits)
		groups := (bits + sw - 1) / sw

		var batch workload.Cost
		// Serial row reads: activate + per-group sensing + stream through
		// the local digital logic.
		for k := 0; k < spec.Operands; k++ {
			batch.Seconds += t.TRCD + float64(groups)*t.TCL + fb/moveBitsPerSec
			batch.Joules += fb * (en.ActPerBit + en.SensePerBit + movePerBit +
				en.LogicPerBit + en.BufferPerBit)
			batch.Joules += en.LWLPerAct
		}
		// Result write-back through the write drivers.
		batch.Seconds += fb/moveBitsPerSec + t.TWR
		batch.Joules += fb * (en.WritePerBit + movePerBit)
		total.Add(batch)
	}
	return total, nil
}

var _ workload.Engine = (*Engine)(nil)

package acpim

import (
	"testing"

	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero channels accepted")
	}
	cfg = DefaultConfig()
	cfg.Geo.MuxRatio = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestMetadata(t *testing.T) {
	e := newEngine(t)
	if e.Name() != "AC-PIM" || e.Parallelism() != 4 {
		t.Error("metadata wrong")
	}
}

func TestSerialRowReads(t *testing.T) {
	// AC-PIM has no one-step multi-row operation: cost grows linearly with
	// the operand count.
	e := newEngine(t)
	c2, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	c128, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 128, Bits: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := c128.Seconds / c2.Seconds; ratio < 40 || ratio > 70 {
		t.Errorf("128/2-operand ratio %.1f, want ~64 (serial reads)", ratio)
	}
}

func TestAllOpsSupported(t *testing.T) {
	e := newEngine(t)
	specs := []workload.OpSpec{
		{Op: sense.OpAND, Operands: 2, Bits: 4096},
		{Op: sense.OpOR, Operands: 16, Bits: 4096},
		{Op: sense.OpXOR, Operands: 2, Bits: 4096},
		{Op: sense.OpINV, Operands: 1, Bits: 4096},
	}
	for _, s := range specs {
		c, err := e.OpCost(s)
		if err != nil {
			t.Errorf("%v: %v", s.Op, err)
		}
		if c.Seconds <= 0 || c.Joules <= 0 {
			t.Errorf("%v: non-positive cost %+v", s.Op, c)
		}
	}
}

func TestLongVectorsBatch(t *testing.T) {
	e := newEngine(t)
	one, err := e.OpCost(workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	four, err := e.OpCost(workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: 1 << 21})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := four.Seconds / one.Seconds; ratio < 3.9 || ratio > 4.1 {
		t.Errorf("2^21/2^19 ratio %.2f want 4", ratio)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	e := newEngine(t)
	if _, err := e.OpCost(workload.OpSpec{Op: sense.OpAND, Operands: 1, Bits: 64}); err == nil {
		t.Error("invalid spec accepted")
	}
}

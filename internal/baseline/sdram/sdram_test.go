package sdram

import (
	"testing"

	"pinatubo/internal/baseline/simd"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	fb, err := simd.New(simd.HaswellConfig(nvm.DRAM))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(DefaultConfig(fb))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{RowBits: 0, Channels: 4, Fallback: workload.Ideal{}}); err == nil {
		t.Error("zero row bits accepted")
	}
	if _, err := New(Config{RowBits: 1 << 16, Channels: 4}); err == nil {
		t.Error("missing fallback accepted")
	}
}

func TestMetadata(t *testing.T) {
	e := newEngine(t)
	if e.Name() != "S-DRAM" || e.Parallelism() != 4 {
		t.Error("metadata wrong")
	}
}

func TestTwoRowOpUsesCopies(t *testing.T) {
	// A 2-row OR over one DRAM row must cost 3 copies + 1 triple
	// activation + result copy — the paper's operand-copy overhead.
	e := newEngine(t)
	c, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	tm := nvm.Get(nvm.DRAM).Timing
	want := 3*(tm.TRCD+tm.TWR) + (tm.TRCD + tm.TCL + tm.TWR)
	if diff := c.Seconds - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("2-row op time %.4g want %.4g", c.Seconds, want)
	}
}

func TestMultiRowIsChained(t *testing.T) {
	// S-DRAM has no multi-row operations: n operands need n-1 triple
	// activations and n operand copies.
	e := newEngine(t)
	c2, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	c8, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 8, Bits: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := c8.Seconds / c2.Seconds; ratio < 2.5 {
		t.Errorf("8-operand op only %.2fx a 2-operand op; chaining missing", ratio)
	}
}

func TestLongVectorsBatchOverRows(t *testing.T) {
	e := newEngine(t)
	one, err := e.OpCost(workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := e.OpCost(workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := eight.Seconds / one.Seconds; ratio < 7.9 || ratio > 8.1 {
		t.Errorf("2^19-bit op is %.2fx a 2^16-bit op, want 8x (row batches)", ratio)
	}
}

func TestXORFallsBackToCPU(t *testing.T) {
	fb, err := simd.New(simd.HaswellConfig(nvm.DRAM))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(DefaultConfig(fb))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.OpSpec{Op: sense.OpXOR, Operands: 2, Bits: 1 << 16}
	got, err := e.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fb.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("XOR cost %+v want CPU fallback %+v", got, want)
	}
	// Same for INV.
	inv := workload.OpSpec{Op: sense.OpINV, Operands: 1, Bits: 1 << 16}
	gi, err := e.OpCost(inv)
	if err != nil {
		t.Fatal(err)
	}
	wi, err := fb.OpCost(inv)
	if err != nil {
		t.Fatal(err)
	}
	if gi != wi {
		t.Error("INV should fall back to CPU")
	}
}

func TestEnergyPositiveAndScales(t *testing.T) {
	e := newEngine(t)
	c2, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	c4, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 4, Bits: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Joules <= 0 || c4.Joules <= c2.Joules {
		t.Errorf("energy wrong: %g then %g", c2.Joules, c4.Joules)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	e := newEngine(t)
	if _, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: 0}); err == nil {
		t.Error("invalid spec accepted")
	}
}

// Package sdram models the in-DRAM bulk bitwise computing baseline
// (Seshadri et al., CAL 2015): triple-row activation in a DRAM subarray
// computes a 2-row AND or OR by charge sharing. Because DRAM sensing is
// destructive and the mechanism needs designated compute rows, both
// operands must first be row-copied into the compute rows, and the result
// copied out — overhead Pinatubo's non-destructive resistive sensing
// avoids. Only 2-row AND/OR is supported; anything else falls back to the
// CPU baseline.
package sdram

import (
	"fmt"

	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// Config describes the DRAM and the computation mechanism.
type Config struct {
	Tech nvm.Params
	// RowBits is the rank-logical DRAM row (8 chips × 8 Kb = 2^16 bits).
	// DRAM has no column mux in front of its SAs, so a whole row computes
	// in one triple activation — the "larger row buffer" advantage the
	// paper concedes to S-DRAM.
	RowBits int
	// Channels is the request-level parallelism.
	Channels int
	// Fallback prices ops the mechanism cannot run (XOR, INV).
	Fallback workload.Engine
}

// DefaultConfig returns the paper's 65 nm 4-channel DDR3-1600 setup with a
// SIMD-on-DRAM fallback.
func DefaultConfig(fallback workload.Engine) Config {
	return Config{
		Tech:     nvm.Get(nvm.DRAM),
		RowBits:  1 << 16,
		Channels: 4,
		Fallback: fallback,
	}
}

// Engine prices requests on the S-DRAM model.
type Engine struct {
	cfg Config
}

// New builds the engine.
func New(cfg Config) (*Engine, error) {
	if cfg.RowBits <= 0 || cfg.Channels <= 0 {
		return nil, fmt.Errorf("sdram: non-positive geometry in %+v", cfg)
	}
	if cfg.Fallback == nil {
		return nil, fmt.Errorf("sdram: fallback engine required (XOR/INV are not computable in DRAM)")
	}
	return &Engine{cfg: cfg}, nil
}

// Name implements workload.Engine.
func (e *Engine) Name() string { return "S-DRAM" }

// Parallelism implements workload.Engine.
func (e *Engine) Parallelism() float64 { return float64(e.cfg.Channels) }

// rowCopy prices one in-DRAM row copy (RowClone-style back-to-back
// activation): activate source, restore into destination.
func (e *Engine) rowCopy(bits float64) workload.Cost {
	t := e.cfg.Tech.Timing
	en := e.cfg.Tech.Energy
	return workload.Cost{
		Seconds: t.TRCD + t.TWR,
		Joules:  bits * (en.ActPerBit + en.WritePerBit),
	}
}

// tripleActivate prices the simultaneous three-row activation that computes
// AND/OR by charge sharing, including the full-row sensing and restore.
func (e *Engine) tripleActivate(bits float64) workload.Cost {
	t := e.cfg.Tech.Timing
	en := e.cfg.Tech.Energy
	return workload.Cost{
		Seconds: t.TRCD + t.TCL + t.TWR, // activate, sense, restore result
		Joules:  bits * (3*en.ActPerBit + en.SensePerBit + en.WritePerBit),
	}
}

// OpCost implements workload.Engine.
func (e *Engine) OpCost(spec workload.OpSpec) (workload.Cost, error) {
	if err := spec.Validate(); err != nil {
		return workload.Cost{}, err
	}
	if spec.Op != sense.OpAND && spec.Op != sense.OpOR {
		// The mechanism cannot produce XOR/INV; the driver routes those to
		// the CPU.
		return e.cfg.Fallback.OpCost(spec)
	}

	var total workload.Cost
	remaining := spec.Bits
	for remaining > 0 {
		bits := remaining
		if bits > e.cfg.RowBits {
			bits = e.cfg.RowBits
		}
		remaining -= bits
		fb := float64(bits)

		// First pair: copy both operands in, compute.
		batch := e.rowCopy(fb)
		batch.Add(e.rowCopy(fb))
		batch.Add(e.tripleActivate(fb))
		// Each further operand: copy it in, recompute against the running
		// result already sitting in the compute rows.
		for k := 2; k < spec.Operands; k++ {
			batch.Add(e.rowCopy(fb))
			batch.Add(e.tripleActivate(fb))
		}
		// Copy the result out to its destination row.
		batch.Add(e.rowCopy(fb))
		total.Add(batch)
	}
	return total, nil
}

var _ workload.Engine = (*Engine)(nil)

// Package ecc implements the SECDED (single-error-correct,
// double-error-detect) code the Pinatubo reproduction stores in dedicated
// spare columns of each rank row: an extended Hamming code — Hamming check
// bits plus one overall parity bit — over fixed-width data word groups,
// (72,64)-style at the default 64-bit width.
//
// The codec is pure arithmetic: it knows nothing about rows, latency or
// energy. The controller (internal/pim) owns where the check bits live and
// what sensing, programming and syndrome decoding cost; the scheduler
// (internal/pimrt) owns when to decode and when a detected-uncorrectable
// syndrome escalates to the read-back degradation ladder.
//
// Linearity matters to the cost model above: the code is linear over GF(2),
// so Encode(a^b) == Encode(a)^Encode(b) — the spare-column sense amplifiers
// can compute the check bits of an XOR (and of INV, which is XOR with
// all-ones) directly from the operands' stored check bits. OR and AND are
// not GF(2)-linear, so their check bits must be regenerated from the result
// stream at the write drivers. TestXorLinearity pins the property.
package ecc

import (
	"fmt"
	"math/bits"
)

// Codec is one extended-Hamming SECDED code over dataBits-wide word groups.
// Construct with New; the zero value is unusable.
type Codec struct {
	dataBits int
	hamming  int // Hamming check bits (syndrome width)
	n        int // codeword length excluding the overall parity bit
	// masks[i] is the data-bit coverage of Hamming check bit i.
	masks []uint64
	// posToData maps a codeword position (1-based) to its data-bit index;
	// -1 for check-bit (power-of-two) positions.
	posToData []int
	// dataToPos is the inverse map.
	dataToPos []int
}

// New builds a codec over dataBits-wide groups (4..64). The standard widths
// are 8 (13,8), 16 (22,16), 32 (39,32) and 64 bits — the (72,64) code of
// ECC DIMMs.
func New(dataBits int) (*Codec, error) {
	if dataBits < 4 || dataBits > 64 {
		return nil, fmt.Errorf("ecc: data width %d outside 4..64", dataBits)
	}
	h := 2
	for 1<<h < dataBits+h+1 {
		h++
	}
	c := &Codec{
		dataBits:  dataBits,
		hamming:   h,
		n:         dataBits + h,
		masks:     make([]uint64, h),
		posToData: make([]int, dataBits+h+1),
		dataToPos: make([]int, dataBits),
	}
	d := 0
	for p := 1; p <= c.n; p++ {
		if p&(p-1) == 0 {
			c.posToData[p] = -1
			continue
		}
		c.posToData[p] = d
		c.dataToPos[d] = p
		for i := 0; i < h; i++ {
			if p&(1<<i) != 0 {
				c.masks[i] |= 1 << uint(d)
			}
		}
		d++
	}
	return c, nil
}

// Default returns the (72,64) codec used by the controller. Panics only if
// New rejects the built-in width — impossible unless New's validation
// changes out from under this constant.
func Default() *Codec {
	c, err := New(64)
	if err != nil {
		panic(err) // 64 is a valid width
	}
	return c
}

// DataBits returns the data width of one word group.
func (c *Codec) DataBits() int { return c.dataBits }

// CheckBits returns the check bits per word group (Hamming + overall
// parity): 8 for the 64-bit code.
func (c *Codec) CheckBits() int { return c.hamming + 1 }

func (c *Codec) dataMask() uint64 {
	if c.dataBits == 64 {
		return ^uint64(0)
	}
	return 1<<uint(c.dataBits) - 1
}

func parity64(x uint64) uint64 { return uint64(bits.OnesCount64(x) & 1) }

// Encode returns the check bits of one data group: Hamming check bit i in
// bit i, the overall parity bit in bit CheckBits()-1.
func (c *Codec) Encode(data uint64) uint64 {
	data &= c.dataMask()
	var check uint64
	for i, m := range c.masks {
		check |= parity64(data&m) << uint(i)
	}
	check |= (parity64(data) ^ parity64(check)) << uint(c.hamming)
	return check
}

// Outcome classifies one decoded group.
type Outcome int

const (
	// OK: syndrome clean, data returned as stored.
	OK Outcome = iota
	// CorrectedData: a single data-bit error was corrected.
	CorrectedData
	// CorrectedCheck: a single check-bit error was absorbed; the data was
	// intact.
	CorrectedCheck
	// Detected: a double-bit (or syndrome-invalid) error — uncorrectable.
	// The data cannot be trusted.
	Detected
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data"
	case CorrectedCheck:
		return "corrected-check"
	case Detected:
		return "detected-uncorrectable"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Decoded is the result of decoding one group.
type Decoded struct {
	Outcome Outcome
	// Data is the (possibly corrected) data group. Meaningless when
	// Outcome is Detected.
	Data uint64
	// Pos is the corrected data-bit index for CorrectedData.
	Pos int
}

// Decode checks one stored data group against its stored check bits and
// applies the standard SECDED syndrome cases.
func (c *Codec) Decode(data, check uint64) Decoded {
	data &= c.dataMask()
	check &= 1<<uint(c.hamming+1) - 1
	var expect uint64
	for i, m := range c.masks {
		expect |= parity64(data&m) << uint(i)
	}
	recvH := check & (1<<uint(c.hamming) - 1)
	s := expect ^ recvH
	// Overall parity over data + Hamming bits + the parity bit itself:
	// odd means an odd number of bit errors (i.e. exactly one, under the
	// double-error bound).
	odd := parity64(data)^parity64(recvH)^(check>>uint(c.hamming)&1) == 1
	switch {
	case s == 0 && !odd:
		return Decoded{Outcome: OK, Data: data}
	case s == 0:
		// Only the overall parity bit flipped; data and Hamming bits agree.
		return Decoded{Outcome: CorrectedCheck, Data: data}
	case odd:
		if s&(s-1) == 0 {
			// The syndrome names a power-of-two position: a Hamming check
			// bit itself flipped.
			return Decoded{Outcome: CorrectedCheck, Data: data}
		}
		if int(s) <= c.n {
			if d := c.posToData[s]; d >= 0 {
				return Decoded{Outcome: CorrectedData, Data: data ^ 1<<uint(d), Pos: d}
			}
		}
		// Syndrome points outside the codeword: at least three errors.
		return Decoded{Outcome: Detected, Data: data}
	default:
		// Non-zero syndrome with even parity: the double-bit signature.
		return Decoded{Outcome: Detected, Data: data}
	}
}

// Groups returns how many word groups cover `bits` data bits.
func (c *Codec) Groups(bits int) int { return (bits + c.dataBits - 1) / c.dataBits }

// CheckRowBits returns the spare-column bits backing `bits` data bits —
// the row-level storage overhead (bits/8 for the 64-bit code).
func (c *Codec) CheckRowBits(bits int) int { return c.Groups(bits) * c.CheckBits() }

// CheckWords returns how many packed uint64 words hold the check bits of
// `bits` data bits.
func (c *Codec) CheckWords(bits int) int { return (c.CheckRowBits(bits) + 63) / 64 }

// groupWidth returns the data width of group g of a bits-long vector (the
// tail group may be partial; its padding encodes as zeros).
func (c *Codec) groupWidth(g, bits int) int {
	if w := bits - g*c.dataBits; w < c.dataBits {
		return w
	}
	return c.dataBits
}

// EncodeRow computes the packed spare-column check words of the first
// `bits` bits of data: group g's check bits sit at bit offset
// g*CheckBits() of the returned slice.
func (c *Codec) EncodeRow(data []uint64, bits int) []uint64 {
	out := make([]uint64, c.CheckWords(bits))
	cb := c.CheckBits()
	for g := 0; g < c.Groups(bits); g++ {
		d := getBits(data, g*c.dataBits, c.groupWidth(g, bits))
		setBits(out, g*cb, cb, c.Encode(d))
	}
	return out
}

// RowResult summarises decoding one row.
type RowResult struct {
	CorrectedData  int // data bits corrected in place
	CorrectedCheck int // check-bit errors absorbed (data intact)
	Detected       int // uncorrectable groups
}

// Clean reports whether every group decoded without a detected-
// uncorrectable syndrome.
func (r RowResult) Clean() bool { return r.Detected == 0 }

// DecodeRow decodes every group of the first `bits` bits of data against
// the packed check words, correcting single data-bit errors in data in
// place. A correction that names a bit inside a tail group's zero padding
// is physically impossible and counts as Detected.
func (c *Codec) DecodeRow(data, check []uint64, bits int) RowResult {
	var out RowResult
	cb := c.CheckBits()
	for g := 0; g < c.Groups(bits); g++ {
		nb := c.groupWidth(g, bits)
		d := getBits(data, g*c.dataBits, nb)
		ch := getBits(check, g*cb, cb)
		dec := c.Decode(d, ch)
		switch dec.Outcome {
		case OK:
		case CorrectedCheck:
			out.CorrectedCheck++
		case CorrectedData:
			if dec.Pos >= nb {
				out.Detected++
				continue
			}
			out.CorrectedData++
			setBits(data, g*c.dataBits, nb, dec.Data)
		case Detected:
			out.Detected++
		}
	}
	return out
}

// getBits extracts n (≤ 64) bits at bit offset off from a packed word
// slice.
func getBits(words []uint64, off, n int) uint64 {
	wi, bo := off/64, uint(off%64)
	v := words[wi] >> bo
	if bo != 0 && wi+1 < len(words) {
		v |= words[wi+1] << (64 - bo)
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	return v
}

// setBits stores the low n (≤ 64) bits of v at bit offset off.
func setBits(words []uint64, off, n int, v uint64) {
	mask := ^uint64(0)
	if n < 64 {
		mask = 1<<uint(n) - 1
		v &= mask
	}
	wi, bo := off/64, uint(off%64)
	words[wi] = words[wi]&^(mask<<bo) | v<<bo
	if bo != 0 && n > int(64-bo) {
		words[wi+1] = words[wi+1]&^(mask>>(64-bo)) | v>>(64-bo)
	}
}

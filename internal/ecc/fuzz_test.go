package ecc

import "testing"

// FuzzDecode drives arbitrary (data, corruption) pairs through the (72,64)
// codec and asserts the SECDED contract: clean words decode OK, any single
// codeword-bit corruption is corrected back to the original data, and any
// double corruption is detected — never silently miscorrected.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint8(0))
	f.Add(uint64(0xdeadbeefcafef00d), uint8(3), uint8(70))
	f.Add(^uint64(0), uint8(64), uint8(71))
	f.Fuzz(func(t *testing.T, data uint64, a, b uint8) {
		c := Default()
		total := c.DataBits() + c.CheckBits()
		check := c.Encode(data)
		flip := func(d, ch uint64, pos int) (uint64, uint64) {
			if pos < c.DataBits() {
				return d ^ 1<<uint(pos), ch
			}
			return d, ch ^ 1<<uint(pos-c.DataBits())
		}

		if dec := c.Decode(data, check); dec.Outcome != OK || dec.Data != data {
			t.Fatalf("clean decode of %#x: %+v", data, dec)
		}

		i, j := int(a)%total, int(b)%total
		d1, c1 := flip(data, check, i)
		dec := c.Decode(d1, c1)
		if i < c.DataBits() {
			if dec.Outcome != CorrectedData || dec.Data != data {
				t.Fatalf("single data flip at %d: %+v", i, dec)
			}
		} else if dec.Outcome != CorrectedCheck || dec.Data != data {
			t.Fatalf("single check flip at %d: %+v", i, dec)
		}

		if i == j {
			return
		}
		d2, c2 := flip(d1, c1, j)
		if dec := c.Decode(d2, c2); dec.Outcome != Detected {
			t.Fatalf("double flip (%d,%d) of %#x: %+v", i, j, data, dec)
		}
	})
}

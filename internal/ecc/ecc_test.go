package ecc

import (
	"math/rand"
	"testing"
)

var widths = []int{8, 16, 32, 64}

func TestCodecParams(t *testing.T) {
	want := map[int]int{8: 5, 16: 6, 32: 7, 64: 8} // width -> check bits
	for w, cb := range want {
		c, err := New(w)
		if err != nil {
			t.Fatalf("New(%d): %v", w, err)
		}
		if c.DataBits() != w || c.CheckBits() != cb {
			t.Errorf("width %d: got %d data / %d check bits, want %d/%d",
				w, c.DataBits(), c.CheckBits(), w, cb)
		}
	}
	for _, bad := range []int{0, 3, 65, -8} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%d) accepted", bad)
		}
	}
	if Default().DataBits() != 64 {
		t.Error("Default is not the (72,64) code")
	}
}

func TestCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range widths {
		c, _ := New(w)
		for trial := 0; trial < 200; trial++ {
			d := rng.Uint64() & c.dataMask()
			dec := c.Decode(d, c.Encode(d))
			if dec.Outcome != OK || dec.Data != d {
				t.Fatalf("width %d: clean word %#x decoded %v/%#x", w, d, dec.Outcome, dec.Data)
			}
		}
	}
}

// TestSingleBitCorrection flips every single bit of the codeword — every
// data bit and every check bit — and requires the decoder to recover the
// data exactly.
func TestSingleBitCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, w := range widths {
		c, _ := New(w)
		for trial := 0; trial < 50; trial++ {
			d := rng.Uint64() & c.dataMask()
			ch := c.Encode(d)
			for b := 0; b < w; b++ {
				dec := c.Decode(d^1<<uint(b), ch)
				if dec.Outcome != CorrectedData || dec.Data != d || dec.Pos != b {
					t.Fatalf("width %d: data bit %d flip not corrected: %+v", w, b, dec)
				}
			}
			for b := 0; b < c.CheckBits(); b++ {
				dec := c.Decode(d, ch^1<<uint(b))
				if dec.Outcome != CorrectedCheck || dec.Data != d {
					t.Fatalf("width %d: check bit %d flip not absorbed: %+v", w, b, dec)
				}
			}
		}
	}
}

// TestDoubleBitDetection exercises every pair of codeword bit flips for the
// 8-bit code (exhaustive) and random pairs for the wider ones: all must be
// Detected, never silently miscorrected.
func TestDoubleBitDetection(t *testing.T) {
	check := func(t *testing.T, c *Codec, d uint64, i, j int) {
		t.Helper()
		data, ch := d, c.Encode(d)
		flip := func(b int) {
			if b < c.DataBits() {
				data ^= 1 << uint(b)
			} else {
				ch ^= 1 << uint(b-c.DataBits())
			}
		}
		flip(i)
		flip(j)
		if dec := c.Decode(data, ch); dec.Outcome != Detected {
			t.Fatalf("double flip (%d,%d) of %#x decoded %v", i, j, d, dec.Outcome)
		}
	}
	c8, _ := New(8)
	total := c8.DataBits() + c8.CheckBits()
	for d := uint64(0); d < 256; d += 17 {
		for i := 0; i < total; i++ {
			for j := i + 1; j < total; j++ {
				check(t, c8, d, i, j)
			}
		}
	}
	rng := rand.New(rand.NewSource(3))
	for _, w := range []int{16, 32, 64} {
		c, _ := New(w)
		total := c.DataBits() + c.CheckBits()
		for trial := 0; trial < 2000; trial++ {
			d := rng.Uint64() & c.dataMask()
			i := rng.Intn(total)
			j := rng.Intn(total - 1)
			if j >= i {
				j++
			}
			check(t, c, d, i, j)
		}
	}
}

// TestXorLinearity pins the GF(2) linearity the controller's fast path
// exploits: check bits of an XOR are the XOR of the check bits, and INV is
// the affine case (XOR with all-ones).
func TestXorLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, w := range widths {
		c, _ := New(w)
		for trial := 0; trial < 200; trial++ {
			a := rng.Uint64() & c.dataMask()
			b := rng.Uint64() & c.dataMask()
			if c.Encode(a^b) != c.Encode(a)^c.Encode(b) {
				t.Fatalf("width %d: Encode not linear for %#x ^ %#x", w, a, b)
			}
			if c.Encode(^a&c.dataMask()) != c.Encode(a)^c.Encode(c.dataMask()) {
				t.Fatalf("width %d: INV not affine for %#x", w, a)
			}
		}
	}
}

func TestRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, w := range widths {
		c, _ := New(w)
		for _, bits := range []int{w, 3 * w, 1024, 1000, 64*7 + 13} {
			if bits < w {
				continue
			}
			nw := (bits + 63) / 64
			data := make([]uint64, nw)
			for i := range data {
				data[i] = rng.Uint64()
			}
			// Zero the tail beyond `bits`, as stored rows are.
			if tail := uint(bits % 64); tail != 0 {
				data[nw-1] &= 1<<tail - 1
			}
			check := c.EncodeRow(data, bits)
			if len(check) != c.CheckWords(bits) {
				t.Fatalf("width %d bits %d: %d check words, want %d",
					w, bits, len(check), c.CheckWords(bits))
			}
			if r := c.DecodeRow(data, check, bits); r != (RowResult{}) {
				t.Fatalf("width %d bits %d: clean row decoded %+v", w, bits, r)
			}
		}
	}
}

// TestRowSingleBitCorrection flips one stored data bit per group across a
// row and checks DecodeRow repairs the row in place.
func TestRowSingleBitCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := Default()
	const bits = 1024
	data := make([]uint64, bits/64)
	for i := range data {
		data[i] = rng.Uint64()
	}
	want := append([]uint64(nil), data...)
	check := c.EncodeRow(data, bits)
	flips := 0
	for g := 0; g < c.Groups(bits); g++ {
		pos := g*c.DataBits() + rng.Intn(c.DataBits())
		data[pos/64] ^= 1 << uint(pos%64)
		flips++
	}
	r := c.DecodeRow(data, check, bits)
	if r.CorrectedData != flips || r.Detected != 0 {
		t.Fatalf("corrected %d of %d flips, detected %d", r.CorrectedData, flips, r.Detected)
	}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("word %d not repaired: %#x != %#x", i, data[i], want[i])
		}
	}
}

// TestRowDoubleBitDetected flips two data bits in one group: the group must
// come back Detected with the rest of the row untouched.
func TestRowDoubleBitDetected(t *testing.T) {
	c := Default()
	const bits = 512
	data := make([]uint64, bits/64)
	for i := range data {
		data[i] = 0xdeadbeefcafef00d * uint64(i+1)
	}
	check := c.EncodeRow(data, bits)
	data[2] ^= 0b101 // two flips in group 2
	r := c.DecodeRow(data, check, bits)
	if r.Detected != 1 || r.CorrectedData != 0 {
		t.Fatalf("want exactly one detected group, got %+v", r)
	}
}

// TestTailPaddingCorrection corrupts a check group so the syndrome points
// into the tail group's zero padding; the decoder must refuse the
// impossible correction.
func TestTailPaddingCorrection(t *testing.T) {
	c := Default()
	bits := 64 + 8 // tail group holds 8 real bits of the 64-bit group
	data := []uint64{0x0123456789abcdef, 0x5a}
	check := c.EncodeRow(data, bits)
	// Find a check corruption whose syndrome names a padding bit (Pos >= 8).
	cb := c.CheckBits()
	found := false
	for m := uint64(1); m < 1<<uint(cb); m++ {
		ch := append([]uint64(nil), check...)
		d := append([]uint64(nil), data...)
		orig := getBits(ch, cb, cb)
		setBits(ch, cb, cb, orig^m)
		dec := c.Decode(getBits(d, 64, 8), orig^m)
		if dec.Outcome == CorrectedData && dec.Pos >= 8 {
			r := c.DecodeRow(d, ch, bits)
			if r.Detected != 1 {
				t.Fatalf("padding correction accepted: %+v", r)
			}
			if d[1] != data[1] {
				t.Fatal("padding correction mutated the tail word")
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("no single check corruption maps to padding for this data")
	}
}

func TestBitPacking(t *testing.T) {
	words := make([]uint64, 3)
	setBits(words, 60, 9, 0x1ff) // spans words[0] and words[1]
	if words[0] != 0xf<<60 || words[1] != 0x1f {
		t.Fatalf("setBits span wrong: %#x %#x", words[0], words[1])
	}
	if got := getBits(words, 60, 9); got != 0x1ff {
		t.Fatalf("getBits span = %#x", got)
	}
	setBits(words, 60, 9, 0)
	if words[0] != 0 || words[1] != 0 {
		t.Fatalf("setBits clear wrong: %#x %#x", words[0], words[1])
	}
	words[2] = ^uint64(0)
	setBits(words, 128, 64, 0x1234)
	if words[2] != 0x1234 {
		t.Fatalf("full-word setBits = %#x", words[2])
	}
}

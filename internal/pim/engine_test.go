package pim

import (
	"testing"

	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

func newEngine(t testing.TB, maxRows int) *Engine {
	t.Helper()
	e, err := NewEngine(nvm.PCM, maxRows)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineMetadata(t *testing.T) {
	e2 := newEngine(t, 2)
	e128 := newEngine(t, 128)
	if e2.Name() != "Pinatubo-2" || e128.Name() != "Pinatubo-128" {
		t.Errorf("names %q %q", e2.Name(), e128.Name())
	}
	if e2.Parallelism() != 4 {
		t.Errorf("parallelism %g", e2.Parallelism())
	}
	if e2.MaxRows() != 2 || e128.MaxRows() != 128 {
		t.Error("MaxRows wrong")
	}
}

func TestEngineClampsToTechLimit(t *testing.T) {
	// Asking for 128-row OR on STT-MRAM must clamp to its 2-row limit.
	e, err := NewEngine(nvm.STTMRAM, 128)
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxRows() != 2 {
		t.Errorf("STT-MRAM engine depth %d want 2", e.MaxRows())
	}
}

func TestEngineRejectsBadDepth(t *testing.T) {
	if _, err := NewEngine(nvm.PCM, 1); err == nil {
		t.Error("maxRows=1 accepted")
	}
}

func TestMultiRowBeatsChained(t *testing.T) {
	// The paper's headline: one-step 128-row OR vastly outperforms a
	// 2-row chain over the same 128 operands.
	e2 := newEngine(t, 2)
	e128 := newEngine(t, 128)
	spec := workload.OpSpec{Op: sense.OpOR, Operands: 128, Bits: 1 << 19, Placement: workload.PlaceIntra}
	c2, err := e2.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	c128, err := e128.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	if speedup := c2.Seconds / c128.Seconds; speedup < 20 {
		t.Errorf("128-row speedup over chained 2-row is %.1fx, want > 20x", speedup)
	}
	if saving := c2.Joules / c128.Joules; saving < 10 {
		t.Errorf("128-row energy saving over chained is %.1fx, want > 10x", saving)
	}
}

func TestRandomPlacementKillsMultiRow(t *testing.T) {
	// Paper, Fig. 10 (14-16-7r): when operands land in different
	// banks/subarrays, Pinatubo-128 degenerates to Pinatubo-2 speed.
	e2 := newEngine(t, 2)
	e128 := newEngine(t, 128)
	spec := workload.OpSpec{Op: sense.OpOR, Operands: 128, Bits: 1 << 14, Placement: workload.PlaceInterBank}
	c2, err := e2.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	c128, err := e128.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := c2.Seconds / c128.Seconds; ratio > 1.5 {
		t.Errorf("inter-bank 128-row 'advantage' %.2fx, should be ~1x", ratio)
	}
}

func TestAllOpsPriced(t *testing.T) {
	e := newEngine(t, 128)
	for _, p := range []workload.Placement{workload.PlaceIntra, workload.PlaceInterSub, workload.PlaceInterBank} {
		specs := []workload.OpSpec{
			{Op: sense.OpAND, Operands: 2, Bits: 4096, Placement: p},
			{Op: sense.OpOR, Operands: 7, Bits: 4096, Placement: p},
			{Op: sense.OpXOR, Operands: 2, Bits: 4096, Placement: p},
			{Op: sense.OpINV, Operands: 1, Bits: 4096, Placement: p},
		}
		for _, s := range specs {
			c, err := e.OpCost(s)
			if err != nil {
				t.Errorf("%v/%v: %v", s.Op, p, err)
				continue
			}
			if c.Seconds <= 0 || c.Joules <= 0 {
				t.Errorf("%v/%v: non-positive cost", s.Op, p)
			}
		}
	}
}

func TestChainedANDXOR(t *testing.T) {
	e := newEngine(t, 128)
	c2, err := e.OpCost(workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: 4096, Placement: workload.PlaceIntra})
	if err != nil {
		t.Fatal(err)
	}
	c5, err := e.OpCost(workload.OpSpec{Op: sense.OpAND, Operands: 5, Bits: 4096, Placement: workload.PlaceIntra})
	if err != nil {
		t.Fatal(err)
	}
	// 5 operands = 4 chained 2-row ANDs (multi-row AND is not sensible).
	if ratio := c5.Seconds / c2.Seconds; ratio < 3.9 || ratio > 4.1 {
		t.Errorf("5-operand AND is %.2fx a 2-operand AND, want 4x", ratio)
	}
}

func TestLongVectorBatchesOverRankRows(t *testing.T) {
	// Fig. 9 turning point B: vectors beyond 2^19 bits serialise over
	// rank rows.
	e := newEngine(t, 128)
	one, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: 1 << 19, Placement: workload.PlaceIntra})
	if err != nil {
		t.Fatal(err)
	}
	two, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: 1 << 20, Placement: workload.PlaceIntra})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := two.Seconds / one.Seconds; ratio < 1.9 || ratio > 2.1 {
		t.Errorf("2^20/2^19 ratio %.2f want 2", ratio)
	}
}

func TestDeepChunkedInterOR(t *testing.T) {
	// More operands than the inter request cap must still price (chunked).
	e := newEngine(t, 128)
	spec := workload.OpSpec{Op: sense.OpOR, Operands: InterORLimit + 10, Bits: 4096, Placement: workload.PlaceInterSub}
	c, err := e.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seconds <= 0 {
		t.Error("chunked inter OR priced at zero")
	}
}

func TestEngineInvalidSpec(t *testing.T) {
	e := newEngine(t, 128)
	if _, err := e.OpCost(workload.OpSpec{Op: sense.OpOR, Operands: 1, Bits: 64}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := e.OpCost(workload.OpSpec{Op: sense.Op(9), Operands: 2, Bits: 64}); err == nil {
		t.Error("unknown op accepted")
	}
}

func BenchmarkEngineOR128Intra(b *testing.B) {
	e := newEngine(b, 128)
	spec := workload.OpSpec{Op: sense.OpOR, Operands: 128, Bits: 1 << 19, Placement: workload.PlaceIntra}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.OpCost(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGroupedORPricing(t *testing.T) {
	e := newEngine(t, 128)
	// 96 operands: 3 subarray groups of 32 vs the same operands fully
	// scattered (one per "group") vs pure inter placement.
	grouped := workload.OpSpec{
		Op: sense.OpOR, Operands: 96, Bits: 1 << 14,
		Placement: workload.PlaceInterSub, Groups: []int{32, 32, 32},
	}
	scattered := workload.OpSpec{
		Op: sense.OpOR, Operands: 96, Bits: 1 << 14,
		Placement: workload.PlaceInterSub,
	}
	cg, err := e.OpCost(grouped)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := e.OpCost(scattered)
	if err != nil {
		t.Fatal(err)
	}
	// Grouping collapses 96 serial reads into 3 one-step ORs + a 3-way
	// combine: far cheaper.
	if cg.Seconds >= cs.Seconds {
		t.Errorf("grouped OR (%.3g s) not cheaper than scattered (%.3g s)",
			cg.Seconds, cs.Seconds)
	}
	if cg.Seconds > cs.Seconds/3 {
		t.Errorf("grouping saved too little: %.3g vs %.3g", cg.Seconds, cs.Seconds)
	}
}

func TestGroupedORSingletonGroupsFree(t *testing.T) {
	e := newEngine(t, 128)
	// All-singleton groups degenerate to the plain inter path.
	singletons := workload.OpSpec{
		Op: sense.OpOR, Operands: 4, Bits: 4096,
		Placement: workload.PlaceInterBank, Groups: []int{1, 1, 1, 1},
	}
	plain := workload.OpSpec{
		Op: sense.OpOR, Operands: 4, Bits: 4096,
		Placement: workload.PlaceInterBank,
	}
	cgs, err := e.OpCost(singletons)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := e.OpCost(plain)
	if err != nil {
		t.Fatal(err)
	}
	if cgs != cp {
		t.Errorf("singleton groups %.4g s, plain inter %.4g s — should match", cgs.Seconds, cp.Seconds)
	}
}

func TestEngineCostCacheConsistent(t *testing.T) {
	e := newEngine(t, 128)
	spec := workload.OpSpec{
		Op: sense.OpOR, Operands: 16, Bits: 1 << 14,
		Placement: workload.PlaceInterSub, Groups: []int{8, 8},
	}
	first, err := e.OpCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.OpCost(spec) // cached
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("cache returned a different cost")
	}
	// A different grouping must NOT hit the same cache entry.
	other := spec
	other.Groups = []int{15, 1}
	third, err := e.OpCost(other)
	if err != nil {
		t.Fatal(err)
	}
	if third == first {
		t.Error("different groupings collided in the cache")
	}
}

package pim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/ddr"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

func newCtl(t testing.TB, tech nvm.Tech) *Controller {
	t.Helper()
	mem, err := memarch.NewMemory(memarch.Default(), nvm.Get(tech))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fillRow writes pseudo-random words into a row and returns the first w
// words for reference computation.
func fillRow(t testing.TB, c *Controller, addr memarch.RowAddr, w int, rng *rand.Rand) []uint64 {
	t.Helper()
	words := make([]uint64, w)
	for i := range words {
		words[i] = rng.Uint64()
	}
	if err := c.Memory().WriteRow(addr, words); err != nil {
		t.Fatal(err)
	}
	return words
}

func addrsInSubarray(n int) []memarch.RowAddr {
	out := make([]memarch.RowAddr, n)
	for i := range out {
		out[i] = memarch.RowAddr{Channel: 0, Bank: 1, Subarray: 2, Row: i}
	}
	return out
}

func TestLWLProtocol(t *testing.T) {
	l := NewLWL(16)
	if err := l.Latch(0); err == nil {
		t.Fatal("latch before RESET should fail")
	}
	l.Reset()
	for _, r := range []int{3, 1, 7} {
		if err := l.Latch(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Latch(3); err == nil {
		t.Fatal("double latch should fail")
	}
	if err := l.Latch(16); err == nil {
		t.Fatal("out-of-range latch should fail")
	}
	open := l.Open()
	if len(open) != 3 || open[0] != 1 || open[1] != 3 || open[2] != 7 {
		t.Fatalf("Open=%v", open)
	}
	l.Reset()
	if l.OpenCount() != 0 {
		t.Fatal("RESET did not clear latches")
	}
	if err := l.Latch(3); err != nil {
		t.Fatal("re-latch after RESET should work")
	}
}

func TestClassify(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	intra := addrsInSubarray(2)
	if cl, err := c.Classify(intra); err != nil || cl != ClassIntraSub {
		t.Errorf("intra: %v %v", cl, err)
	}
	interSub := []memarch.RowAddr{
		{Bank: 1, Subarray: 0, Row: 0},
		{Bank: 1, Subarray: 5, Row: 0},
	}
	if cl, err := c.Classify(interSub); err != nil || cl != ClassInterSub {
		t.Errorf("inter-sub: %v %v", cl, err)
	}
	interBank := []memarch.RowAddr{
		{Bank: 0, Subarray: 0, Row: 0},
		{Bank: 3, Subarray: 0, Row: 0},
	}
	if cl, err := c.Classify(interBank); err != nil || cl != ClassInterBank {
		t.Errorf("inter-bank: %v %v", cl, err)
	}
	cross := []memarch.RowAddr{
		{Channel: 0}, {Channel: 1},
	}
	if _, err := c.Classify(cross); !errors.Is(err, ErrCrossRank) {
		t.Errorf("cross-channel err=%v", err)
	}
	shared := []memarch.RowAddr{{Row: 4}, {Row: 4}}
	if _, err := c.Classify(shared); !errors.Is(err, ErrSharedRow) {
		t.Errorf("shared row err=%v", err)
	}
	if _, err := c.Classify(nil); err == nil {
		t.Error("empty operand set accepted")
	}
	if _, err := c.Classify([]memarch.RowAddr{{Channel: 99}}); err == nil {
		t.Error("invalid address accepted")
	}
}

func TestClassString(t *testing.T) {
	if ClassIntraSub.String() != "intra-subarray" ||
		ClassInterSub.String() != "inter-subarray" ||
		ClassInterBank.String() != "inter-bank" {
		t.Error("class names wrong")
	}
	if Class(9).String() == "" {
		t.Error("unknown class string empty")
	}
}

func TestExecuteIntraORFunctional(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	rng := rand.New(rand.NewSource(1))
	srcs := addrsInSubarray(4)
	const bits = 1 << 12
	w := bitvec.WordsFor(bits)
	var want []uint64
	for i, s := range srcs {
		row := fillRow(t, c, s, w, rng)
		if i == 0 {
			want = append([]uint64(nil), row...)
		} else {
			for j := range want {
				want[j] |= row[j]
			}
		}
	}
	dst := memarch.RowAddr{Bank: 1, Subarray: 2, Row: 100}
	res, err := c.Execute(sense.OpOR, srcs, bits, &dst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassIntraSub {
		t.Errorf("class=%v", res.Class)
	}
	for j := range want {
		if res.Words[j] != want[j] {
			t.Fatalf("word %d mismatch", j)
		}
	}
	// The destination row must hold the result.
	got := c.Memory().ReadRow(dst)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("dst word %d mismatch", j)
		}
	}
}

func TestExecuteAllOpsMatchReference(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	rng := rand.New(rand.NewSource(2))
	const bits = 3000 // deliberately not word- or group-aligned
	w := bitvec.WordsFor(bits)
	srcs := addrsInSubarray(2)
	a := fillRow(t, c, srcs[0], w, rng)
	b := fillRow(t, c, srcs[1], w, rng)

	cases := []struct {
		op   sense.Op
		n    int
		want func(j int) uint64
	}{
		{sense.OpAND, 2, func(j int) uint64 { return a[j] & b[j] }},
		{sense.OpOR, 2, func(j int) uint64 { return a[j] | b[j] }},
		{sense.OpXOR, 2, func(j int) uint64 { return a[j] ^ b[j] }},
		{sense.OpINV, 1, func(j int) uint64 { return ^a[j] }},
		{sense.OpRead, 1, func(j int) uint64 { return a[j] }},
	}
	for _, tc := range cases {
		res, err := c.Execute(tc.op, srcs[:tc.n], bits, nil)
		if err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		for j := 0; j < w; j++ {
			if res.Words[j] != tc.want(j) {
				t.Fatalf("%v word %d mismatch", tc.op, j)
			}
		}
	}
}

func TestExecuteInterSubFunctional(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	rng := rand.New(rand.NewSource(3))
	srcs := []memarch.RowAddr{
		{Bank: 2, Subarray: 1, Row: 10},
		{Bank: 2, Subarray: 9, Row: 20},
		{Bank: 2, Subarray: 30, Row: 5},
	}
	const bits = 1 << 19
	w := bitvec.WordsFor(bits)
	var want []uint64
	for i, s := range srcs {
		row := fillRow(t, c, s, w, rng)
		if i == 0 {
			want = append([]uint64(nil), row...)
		} else {
			for j := range want {
				want[j] |= row[j]
			}
		}
	}
	dst := memarch.RowAddr{Bank: 2, Subarray: 0, Row: 0}
	res, err := c.Execute(sense.OpOR, srcs, bits, &dst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassInterSub {
		t.Fatalf("class=%v", res.Class)
	}
	got := c.Memory().ReadRow(dst)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("dst word %d mismatch", j)
		}
	}
}

func TestExecuteInterBankFunctional(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	rng := rand.New(rand.NewSource(4))
	srcs := []memarch.RowAddr{
		{Bank: 0, Subarray: 1, Row: 1},
		{Bank: 7, Subarray: 2, Row: 2},
	}
	const bits = 4096
	w := bitvec.WordsFor(bits)
	a := fillRow(t, c, srcs[0], w, rng)
	b := fillRow(t, c, srcs[1], w, rng)
	res, err := c.Execute(sense.OpXOR, srcs, bits, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassInterBank {
		t.Fatalf("class=%v", res.Class)
	}
	for j := 0; j < w; j++ {
		if res.Words[j] != a[j]^b[j] {
			t.Fatalf("word %d mismatch", j)
		}
	}
}

func TestIntraMultiRowOR128(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	rng := rand.New(rand.NewSource(5))
	srcs := addrsInSubarray(128)
	const bits = 1 << 14
	w := bitvec.WordsFor(bits)
	want := make([]uint64, w)
	for _, s := range srcs {
		row := fillRow(t, c, s, w, rng)
		for j := range want {
			want[j] |= row[j]
		}
	}
	res, err := c.Execute(sense.OpOR, srcs, bits, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if res.Words[j] != want[j] {
			t.Fatalf("word %d mismatch", j)
		}
	}
	if res.Rows != 128 {
		t.Errorf("Rows=%d", res.Rows)
	}
}

func TestSTTMRAMRejectsDeepOR(t *testing.T) {
	c := newCtl(t, nvm.STTMRAM)
	srcs := addrsInSubarray(4)
	if _, err := c.Execute(sense.OpOR, srcs, 64, nil); err == nil {
		t.Fatal("4-row OR on STT-MRAM should fail")
	}
	if _, err := c.Execute(sense.OpOR, srcs[:2], 64, nil); err != nil {
		t.Fatalf("2-row OR on STT-MRAM should pass: %v", err)
	}
}

func TestExecuteValidation(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	srcs := addrsInSubarray(2)
	if _, err := c.Execute(sense.OpOR, srcs, 0, nil); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := c.Execute(sense.OpOR, srcs, 1<<20, nil); err == nil {
		t.Error("bits beyond row accepted")
	}
	badDst := memarch.RowAddr{Channel: 99}
	if _, err := c.Execute(sense.OpOR, srcs, 64, &badDst); err == nil {
		t.Error("invalid dst accepted")
	}
	crossDst := memarch.RowAddr{Channel: 1}
	if _, err := c.Execute(sense.OpOR, srcs, 64, &crossDst); !errors.Is(err, ErrCrossRank) {
		t.Errorf("cross-rank dst err=%v", err)
	}
	if _, err := c.Execute(sense.OpAND, addrsInSubarray(3), 64, nil); err == nil {
		t.Error("3-operand AND accepted")
	}
	// Inter-path INV with 2 operands must fail.
	two := []memarch.RowAddr{{Bank: 0}, {Bank: 1}}
	if _, err := c.Execute(sense.OpINV, two, 64, nil); err == nil {
		t.Error("2-operand INV accepted")
	}
	// Inter-path AND with 3 operands must fail.
	three := []memarch.RowAddr{{Bank: 0}, {Bank: 1}, {Bank: 2}}
	if _, err := c.Execute(sense.OpAND, three, 64, nil); err == nil {
		t.Error("3-operand inter AND accepted")
	}
}

func TestCommandSequenceIntra(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	srcs := addrsInSubarray(3)
	dst := memarch.RowAddr{Bank: 1, Subarray: 2, Row: 50}
	res, err := c.Execute(sense.OpOR, srcs, 1<<19, &dst)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ddr.CmdKind]int{}
	for _, cmd := range res.Commands {
		counts[cmd.Kind]++
	}
	if counts[ddr.CmdMRS] != 1 || counts[ddr.CmdLWLReset] != 1 {
		t.Errorf("MRS/RESET counts: %v", counts)
	}
	if counts[ddr.CmdAct] != 1 || counts[ddr.CmdActLatch] != 2 {
		t.Errorf("activation counts: %v", counts)
	}
	// Full row at 32:1 mux → 32 sense steps.
	if counts[ddr.CmdSense] != 32 {
		t.Errorf("sense steps=%d want 32", counts[ddr.CmdSense])
	}
	if counts[ddr.CmdWBack] != 1 || counts[ddr.CmdPre] != 1 {
		t.Errorf("writeback counts: %v", counts)
	}
	// In-place update: no data on the DDR bus at all.
	if counts[ddr.CmdRd] != 0 || counts[ddr.CmdWr] != 0 {
		t.Errorf("data burst on the bus during PIM op: %v", counts)
	}
}

func TestXORTakesTwoMicroSteps(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	srcs := addrsInSubarray(2)
	or, err := c.Execute(sense.OpOR, srcs, 1<<14, nil)
	if err != nil {
		t.Fatal(err)
	}
	xor, err := c.Execute(sense.OpXOR, srcs, 1<<14, nil)
	if err != nil {
		t.Fatal(err)
	}
	nSense := func(r *Result) int {
		n := 0
		for _, cmd := range r.Commands {
			if cmd.Kind == ddr.CmdSense {
				n++
			}
		}
		return n
	}
	if nSense(xor) != 2*nSense(or) {
		t.Errorf("XOR sense steps=%d, OR=%d; want 2x", nSense(xor), nSense(or))
	}
}

func TestLatencyScalesWithColumnGroups(t *testing.T) {
	// Fig. 9 turning point A: beyond the 2^14-bit sense width, sensing
	// serialises over column groups.
	c := newCtl(t, nvm.PCM)
	srcs := addrsInSubarray(2)
	short, err := c.Execute(sense.OpOR, srcs, 1<<14, nil)
	if err != nil {
		t.Fatal(err)
	}
	long, err := c.Execute(sense.OpOR, srcs, 1<<19, nil)
	if err != nil {
		t.Fatal(err)
	}
	tcl := nvm.Get(nvm.PCM).Timing.TCL
	wantDelta := 31 * tcl
	// The RD burst also grows; subtract it for a clean comparison.
	bus := ddr.DefaultBus()
	rdShort := float64(1<<14) / 8 / bus.BytesPerSec
	rdLong := float64(1<<19) / 8 / bus.BytesPerSec
	delta := (long.Seconds - rdLong) - (short.Seconds - rdShort)
	if math.Abs(delta-wantDelta) > 1e-12 {
		t.Errorf("group-serialisation delta %.4g want %.4g", delta, wantDelta)
	}
}

func TestMultiRowAmortisesLatency(t *testing.T) {
	// A 128-row OR must be far cheaper than 127 sequential 2-row ORs.
	c := newCtl(t, nvm.PCM)
	srcs := addrsInSubarray(128)
	dst := memarch.RowAddr{Bank: 1, Subarray: 2, Row: 200}
	one, err := c.Execute(sense.OpOR, srcs, 1<<19, &dst)
	if err != nil {
		t.Fatal(err)
	}
	two, err := c.Execute(sense.OpOR, srcs[:2], 1<<19, &dst)
	if err != nil {
		t.Fatal(err)
	}
	if one.Seconds > 2*two.Seconds {
		t.Errorf("128-row OR (%.3g s) should cost at most ~2x a 2-row OR (%.3g s)",
			one.Seconds, two.Seconds)
	}
}

func TestInterSlowerThanIntra(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	intra, err := c.Execute(sense.OpOR, addrsInSubarray(2), 1<<19, nil)
	if err != nil {
		t.Fatal(err)
	}
	interSrcs := []memarch.RowAddr{{Bank: 1, Subarray: 0}, {Bank: 1, Subarray: 5}}
	inter, err := c.Execute(sense.OpOR, interSrcs, 1<<19, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Seconds <= intra.Seconds {
		t.Errorf("inter-subarray (%.3g) should be slower than intra (%.3g)",
			inter.Seconds, intra.Seconds)
	}
	if inter.Energy.Total() <= intra.Energy.Total() {
		t.Errorf("inter-subarray energy (%s) should exceed intra (%s)",
			inter.Energy.String(), intra.Energy.String())
	}
}

func TestEnergyGrowsWithRowsButSublinearly(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	srcs := addrsInSubarray(128)
	e2, err := c.Execute(sense.OpOR, srcs[:2], 1<<19, nil)
	if err != nil {
		t.Fatal(err)
	}
	e128, err := c.Execute(sense.OpOR, srcs, 1<<19, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e128.Energy.Total() <= e2.Energy.Total() {
		t.Error("more open rows must cost more energy")
	}
	// But per operand row, the 128-row op must be much cheaper.
	per2 := e2.Energy.Total() / 2
	per128 := e128.Energy.Total() / 128
	if per128 >= per2 {
		t.Errorf("per-row energy should shrink: 2-row %.3g vs 128-row %.3g", per2, per128)
	}
}

func TestModeRegisterReflectsOp(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	if _, err := c.Execute(sense.OpOR, addrsInSubarray(7), 64, nil); err != nil {
		t.Fatal(err)
	}
	op, n := c.ModeRegister().Decode()
	if op != sense.OpOR || n != 7 {
		t.Errorf("MR4 = (%v,%d) want (OR,7)", op, n)
	}
}

func TestWriteRowFromHostAndReadRow(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	addr := memarch.RowAddr{Bank: 3, Subarray: 4, Row: 5}
	words := []uint64{0xAA, 0xBB}
	res, err := c.WriteRowFromHost(addr, words, 128)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Energy.Total() <= 0 {
		t.Error("host write should cost time and energy")
	}
	rd, err := c.ReadRow(addr, 128)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Words[0] != 0xAA || rd.Words[1] != 0xBB {
		t.Errorf("read back %x %x", rd.Words[0], rd.Words[1])
	}
	// Errors.
	if _, err := c.WriteRowFromHost(addr, words, 64); err == nil {
		t.Error("too many words accepted")
	}
	if _, err := c.WriteRowFromHost(addr, words, 0); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := c.WriteRowFromHost(memarch.RowAddr{Channel: 9}, words, 128); err == nil {
		t.Error("bad addr accepted")
	}
}

func TestNewControllerSelectsDRAMBackend(t *testing.T) {
	mem, err := memarch.NewMemory(memarch.Default(), nvm.Get(nvm.DRAM))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(mem, 0)
	if err != nil {
		t.Fatalf("DRAM controller: %v", err)
	}
	caps := ctl.Backend().Caps()
	if caps.VotedSensing {
		t.Error("DRAM backend must not offer voted sensing (TRA is destructive)")
	}
	if caps.ComputeRows == 0 {
		t.Error("DRAM backend must reserve compute rows")
	}
	if got := ctl.MaxORRows(); got != 2 {
		t.Errorf("DRAM MaxORRows = %d, want 2 (pairwise TRA)", got)
	}
	// Voted execution is gated on the capability, not the request shape.
	geo := mem.Geometry()
	sets := [][]memarch.RowAddr{
		{{Row: 0}, {Row: 1}},
		{{Row: 2}, {Row: 3}},
		{{Row: 4}, {Row: 5}},
	}
	if _, err := ctl.ExecuteVoted(sense.OpOR, sets, geo.RowBits(), nil); err == nil {
		t.Fatal("ExecuteVoted on the DRAM backend should fail")
	}
}

// Property: for random placements and operand data, Execute(OR) matches the
// bitvec reference and classifies consistently with the predicates.
func TestPropExecuteORMatchesReference(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	rng := rand.New(rand.NewSource(77))
	f := func(seed int64, nSeed, spread uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nSeed)%6 + 2
		srcs := make([]memarch.RowAddr, n)
		rowUsed := map[uint64]bool{}
		for i := range srcs {
			a := memarch.RowAddr{Bank: 1, Subarray: 2, Row: r.Intn(1024)}
			if spread%3 == 1 {
				a.Subarray = r.Intn(32)
			}
			if spread%3 == 2 {
				a.Bank = r.Intn(8)
				a.Subarray = r.Intn(32)
			}
			key := memarch.Default().Encode(a)
			if rowUsed[key] {
				a.Row = (a.Row + 1 + i) % 1024 // nudge duplicates apart
			}
			rowUsed[memarch.Default().Encode(a)] = true
			srcs[i] = a
		}
		if !memarch.DistinctRows(memarch.Default(), srcs...) {
			return true // skip rare residual collisions
		}
		const bits = 2048
		w := bitvec.WordsFor(bits)
		want := make([]uint64, w)
		for _, s := range srcs {
			row := fillRow(t, c, s, w, rng)
			for j := range want {
				want[j] |= row[j]
			}
		}
		res, err := c.Execute(sense.OpOR, srcs, bits, nil)
		if err != nil {
			return false
		}
		for j := range want {
			if res.Words[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExecuteIntraOR2(b *testing.B) {
	c := newCtl(b, nvm.PCM)
	srcs := addrsInSubarray(2)
	dst := memarch.RowAddr{Bank: 1, Subarray: 2, Row: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Execute(sense.OpOR, srcs, 1<<19, &dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteIntraOR128(b *testing.B) {
	c := newCtl(b, nvm.PCM)
	srcs := addrsInSubarray(128)
	dst := memarch.RowAddr{Bank: 1, Subarray: 2, Row: 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Execute(sense.OpOR, srcs, 1<<19, &dst); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCountersAccumulate(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	srcs := addrsInSubarray(3)
	dst := memarch.RowAddr{Bank: 1, Subarray: 2, Row: 77}
	if _, err := c.Execute(sense.OpOR, srcs, 1<<19, &dst); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(sense.OpOR, srcs, 1<<19, nil); err != nil {
		t.Fatal(err)
	}
	ct := c.Counters()
	if ct.Ops[ClassIntraSub] != 2 {
		t.Errorf("intra ops=%d want 2", ct.Ops[ClassIntraSub])
	}
	if ct.Activations != 6 {
		t.Errorf("activations=%d want 6 (3 rows x 2 ops)", ct.Activations)
	}
	if ct.SenseSteps != 64 {
		t.Errorf("sense steps=%d want 64 (32 groups x 2 ops)", ct.SenseSteps)
	}
	if ct.Writebacks != 1 {
		t.Errorf("writebacks=%d want 1 (second op bursts to host)", ct.Writebacks)
	}
	// Only the host-read op put data on the bus.
	if ct.BusBits != 1<<19 {
		t.Errorf("bus bits=%d want 2^19", ct.BusBits)
	}
	// Snapshot is a copy.
	ct.Ops[ClassIntraSub] = 99
	if c.Counters().Ops[ClassIntraSub] == 99 {
		t.Error("Counters leaked internal map")
	}
}

func TestEveryOpSequenceIsProtocolValid(t *testing.T) {
	// Execute validates its own command stream against the DDR bank-state
	// model (a violation panics). Exercise every class and op.
	c := newCtl(t, nvm.PCM)
	intra := addrsInSubarray(2)
	interSub := []memarch.RowAddr{{Bank: 1, Subarray: 0}, {Bank: 1, Subarray: 5}}
	interBank := []memarch.RowAddr{{Bank: 0, Subarray: 1}, {Bank: 5, Subarray: 1}}
	dst := memarch.RowAddr{Bank: 1, Subarray: 2, Row: 99}
	for _, srcs := range [][]memarch.RowAddr{intra, interSub, interBank} {
		for _, op := range []sense.Op{sense.OpAND, sense.OpOR, sense.OpXOR} {
			if _, err := c.Execute(op, srcs, 4096, &dst); err != nil {
				t.Fatalf("%v over %v: %v", op, srcs, err)
			}
		}
		if _, err := c.Execute(sense.OpINV, srcs[:1], 4096, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Serial inter reads from the SAME subarray must also be legal (the
	// per-operand precharge closes the row between reads).
	sameSub := []memarch.RowAddr{
		{Bank: 1, Subarray: 3, Row: 0},
		{Bank: 1, Subarray: 3, Row: 1},
		{Bank: 2, Subarray: 3, Row: 0},
	}
	if _, err := c.Execute(sense.OpOR, sameSub, 4096, &dst); err != nil {
		t.Fatal(err)
	}
}

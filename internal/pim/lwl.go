package pim

import "pinatubo/internal/backend"

// LWL is the modified local-wordline driver model. It moved to the
// backend seam (the sense-amp backend owns multi-row activation); these
// aliases keep the controller's voted path and existing callers working
// against the same type.
type LWL = backend.LWL

// NewLWL builds the driver model for a subarray with the given row count.
func NewLWL(rowsPerSubarray int) *LWL { return backend.NewLWL(rowsPerSubarray) }

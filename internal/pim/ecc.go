package pim

// This file is the controller half of the in-array SECDED verification path
// (the codec lives in internal/ecc, the escalation policy in internal/pimrt).
// Check bits occupy dedicated spare columns of each rank row — the ECC
// DIMM's ninth chip folded into the array — so they are sensed and
// programmed by the same wordline activations as the data they protect:
//
//   - Programming. A host write or an op writeback programs the spare
//     columns in the same tWR window as the data, so check-bit storage
//     costs write energy but no extra latency. The check bits themselves
//     come from the encoder trees at the bank row buffer (OR/AND results:
//     parity is not GF(2)-linear under either, so the WD-bypass writeback
//     must regenerate from the result stream) or from the spare columns of
//     the operands (XOR/INV/copy: the code is linear, so the spare-column
//     sense amplifiers compute the result's check bits directly — the fast
//     path TestXorLinearity pins).
//
//   - Verification. PCM programming is inherently iterative
//     program-and-verify — tWR already includes the sense passes that
//     confirm each cell reached its target resistance. CorrectOrEscalate
//     rides that last verify sense: the data and spare columns are already
//     on the sense amplifiers, so the marginal cost of checking them is the
//     syndrome pipeline (one command-bus slot per column group) plus the
//     decode logic energy — not the full read-back an external checker pays.
//
// The check bits of an op destination are encoded from the digital
// reference (golden) result, the same idealisation VerifyAgainst makes for
// its comparison value; the spare columns' own failure modes stay honest
// because stuck-at wear and sense flips are injected on them exactly as on
// data columns (fault.CorruptStoredOffset / FlipSensed).

import (
	"fmt"
	"sort"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/ecc"
	"pinatubo/internal/energy"
	"pinatubo/internal/memarch"
	"pinatubo/internal/sense"
)

// eccEntry is the stored spare-column state of one row: the packed check
// words and the data-bit count they were encoded over.
type eccEntry struct {
	bits  int
	words []uint64
}

// EnableECC attaches a SECDED codec to the controller: every subsequent
// host write and ECCProgram call maintains spare-column check bits for the
// written row. Passing nil disables the path.
func (c *Controller) EnableECC(codec *ecc.Codec) {
	c.codec = codec
	if codec != nil && c.checks == nil {
		c.checks = make(map[uint64]eccEntry)
	}
}

// ECCEnabled reports whether the in-array SECDED path is active.
func (c *Controller) ECCEnabled() bool { return c.codec != nil }

// ECCCodec returns the attached codec (nil when ECC is off).
func (c *Controller) ECCCodec() *ecc.Codec { return c.codec }

// ECCState returns a copy of the stored check-bit entry for addr's row,
// reporting ok=false when the row has never been ECC-programmed. The batch
// executor uses it (with SetECCState) to carry spare-column state into and
// out of per-shard controller stacks.
func (c *Controller) ECCState(addr memarch.RowAddr) (bits int, words []uint64, ok bool) {
	entry, ok := c.checks[c.eccSpareKey(addr)]
	if !ok {
		return 0, nil, false
	}
	cp := make([]uint64, len(entry.words))
	copy(cp, entry.words)
	return entry.bits, cp, true
}

// SetECCState installs (or replaces) the check-bit entry for addr's row,
// copying words. A no-op when ECC is off.
func (c *Controller) SetECCState(addr memarch.RowAddr, bits int, words []uint64) {
	if c.codec == nil {
		return
	}
	cp := make([]uint64, len(words))
	copy(cp, words)
	c.checks[c.eccSpareKey(addr)] = eccEntry{bits: bits, words: cp}
}

// ECCEntries calls fn for every stored check-bit entry in ascending
// row-key order (deterministic regardless of map iteration order).
func (c *Controller) ECCEntries(fn func(addr memarch.RowAddr, bits int, words []uint64)) {
	keys := make([]uint64, 0, len(c.checks))
	for k := range c.checks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	geo := c.mem.Geometry()
	for _, k := range keys {
		entry := c.checks[k]
		fn(geo.Decode(k), entry.bits, entry.words)
	}
}

// ECCCost is the latency/energy bill of one check-bit maintenance step.
type ECCCost struct {
	Seconds float64
	Energy  energy.Meter
}

// ECCVerification reports one syndrome-decode verification or read
// correction pass.
type ECCVerification struct {
	// OK is true when every group decoded clean or corrected, and (for
	// CorrectOrEscalate) the corrected row matches the digital reference.
	OK bool
	// CorrectedBits counts single-bit errors fixed this pass (data bits
	// repaired plus check-bit errors absorbed).
	CorrectedBits int
	// Rewritten is true when the stored row itself was repaired in place.
	Rewritten bool
	// Uncorrectable is true on a detected-uncorrectable (double-bit)
	// syndrome, or when the decoded row still disagrees with the reference:
	// the ECC path cannot fix this row and the caller must escalate.
	Uncorrectable bool
	// Seconds and Energy are the cost of the pass.
	Seconds float64
	Energy  energy.Meter
}

// eccSpareKey returns the injector row key of addr (spare columns share the
// data row's wear identity: one physical row, one program pulse).
func (c *Controller) eccSpareKey(addr memarch.RowAddr) uint64 {
	return c.mem.Geometry().Encode(addr)
}

// eccCorruptSpare forces worn spare-column cells into freshly-programmed
// check words. Spare stuck positions are injector positions at or past the
// data row width.
func (c *Controller) eccCorruptSpare(addr memarch.RowAddr, check []uint64) {
	if c.inj == nil {
		return
	}
	key := c.eccSpareKey(addr)
	if c.inj.Worn(key) {
		c.inj.CorruptStoredOffset(key, check, c.mem.Geometry().RowBits())
	}
}

// eccProgramHost encodes and stores the check bits of a host-written row,
// charging the encoder and spare programming into res. The spare columns
// program inside the same tWR window as the data, so no latency is added.
func (c *Controller) eccProgramHost(addr memarch.RowAddr, data []uint64, bits int, res *Result) {
	w := bitvec.WordsFor(bits)
	padded := data
	if len(padded) < w {
		padded = make([]uint64, w)
		copy(padded, data)
	}
	check := c.codec.EncodeRow(padded, bits)
	e := c.mem.Tech().Energy
	res.Energy.Add(energy.ECCLogic, float64(bits)*e.ECCPerBit)
	res.Energy.Add(energy.WriteDriver, float64(c.codec.CheckRowBits(bits))*e.WritePerBit)
	c.eccCorruptSpare(addr, check)
	c.checks[c.eccSpareKey(addr)] = eccEntry{bits: bits, words: check}
}

// ECCProgram regenerates the spare-column check bits of a just-written op
// destination. golden is the digital reference result the writeback aimed
// to store; op and nsrc describe the operation, selecting between the two
// physical paths:
//
//   - XOR / INV / READ(copy): the code is GF(2)-linear (INV is affine), so
//     the operands' spare columns run through the same sensing micro-steps
//     as the data and the result's check bits land on the spare write
//     drivers directly. Costs spare sensing + programming energy, zero
//     extra latency, and is exposed to multi-row sense flips like the data.
//
//   - OR / AND: parity is not linear under either, so the encoder trees at
//     the bank row buffer recompute the check bits from the result stream
//     during writeback. Costs encode logic + spare programming energy plus
//     one command-bus slot per column group to stream the syndrome
//     pipeline.
func (c *Controller) ECCProgram(dst memarch.RowAddr, golden []uint64, bits int, op sense.Op, nsrc int) (ECCCost, error) {
	var cost ECCCost
	if c.codec == nil {
		return cost, fmt.Errorf("pim: ECCProgram with ECC disabled")
	}
	geo := c.mem.Geometry()
	if bits < 1 || bits > geo.RowBits() {
		return cost, fmt.Errorf("pim: bits=%d outside 1..%d (row length)", bits, geo.RowBits())
	}
	if !geo.Valid(dst) {
		return cost, fmt.Errorf("pim: destination %v outside geometry", dst)
	}
	if w := bitvec.WordsFor(bits); len(golden) < w {
		return cost, fmt.Errorf("pim: reference of %d words for a %d-bit encode", len(golden), bits)
	}
	check := c.codec.EncodeRow(golden, bits)
	e := c.mem.Tech().Energy
	cb := float64(c.codec.CheckRowBits(bits))
	switch op {
	case sense.OpXOR, sense.OpINV, sense.OpRead:
		// Linear fast path: spare columns of the open operand rows sense the
		// result's check bits alongside the data micro-steps.
		n := float64(nsrc)
		if n < 1 {
			n = 1
		}
		cost.Energy.Add(energy.CellArray, cb*e.ActPerBit)
		cost.Energy.Add(energy.SenseAmp,
			float64(op.SenseSteps())*cb*(e.SensePerBit+n*e.SenseRowAdd))
		if c.inj != nil {
			rows := nsrc
			if rows < 1 {
				rows = 1
			}
			c.inj.FlipSensed(op, rows, c.codec.CheckRowBits(bits), check)
		}
	case sense.OpOR, sense.OpAND:
		// Nonlinear: regenerate at the row-buffer encoder trees.
		cost.Seconds = float64(senseGroups(geo, bits)) * c.mem.Tech().Timing.TCMD
		cost.Energy.Add(energy.ECCLogic, float64(bits)*e.ECCPerBit)
	default:
		return cost, fmt.Errorf("pim: ECCProgram of unknown op %d", int(op))
	}
	cost.Energy.Add(energy.WriteDriver, cb*e.WritePerBit)
	c.eccCorruptSpare(dst, check)
	c.checks[c.eccSpareKey(dst)] = eccEntry{bits: bits, words: check}
	return cost, nil
}

// CorrectOrEscalate is the ECC verification of a just-programmed
// destination row: decode the stored data against its spare-column check
// bits on the program-verify sense pass, repair single-bit errors in place,
// and report anything SECDED cannot fix as Uncorrectable so the caller can
// escalate to the read-back degradation ladder. golden is the digital
// reference; a decoded row that still disagrees with it (aliased multi-bit
// error) also escalates rather than being trusted.
func (c *Controller) CorrectOrEscalate(dst memarch.RowAddr, bits int, golden []uint64) (*ECCVerification, error) {
	if c.codec == nil {
		return nil, fmt.Errorf("pim: CorrectOrEscalate with ECC disabled")
	}
	geo := c.mem.Geometry()
	if bits < 1 || bits > geo.RowBits() {
		return nil, fmt.Errorf("pim: bits=%d outside 1..%d (row length)", bits, geo.RowBits())
	}
	if !geo.Valid(dst) {
		return nil, fmt.Errorf("pim: destination %v outside geometry", dst)
	}
	w := bitvec.WordsFor(bits)
	if len(golden) < w {
		return nil, fmt.Errorf("pim: reference of %d words for a %d-bit check", len(golden), bits)
	}
	entry, ok := c.checks[c.eccSpareKey(dst)]
	if !ok || entry.bits != bits {
		return nil, fmt.Errorf("pim: no %d-bit check bits stored for %v (ECCProgram not run?)", bits, dst)
	}

	v := &ECCVerification{}
	e := c.mem.Tech().Energy
	t := c.mem.Tech().Timing
	groups := senseGroups(geo, bits)
	cbBits := c.codec.CheckRowBits(bits)
	// Cost: the data and spare columns are already on the SAs for the final
	// program-verify pass; ECC adds the syndrome pipeline (one command slot
	// per group), the re-verify sense of data+spare, and the decode trees.
	v.Seconds = float64(groups) * t.TCMD
	v.Energy.Add(energy.SenseAmp, float64(bits+cbBits)*e.SensePerBit)
	v.Energy.Add(energy.ECCLogic, float64(bits)*e.ECCPerBit)
	c.counters.SenseSteps += int64(groups)

	// Sense the stored row and its check bits (single-row read margins).
	// Both live only for the decode, so they run on controller scratch.
	stored := c.mem.PeekRow(dst)[:w]
	c.eccData = scratchWords(c.eccData, w)
	data := c.eccData
	copy(data, stored)
	c.eccCheck = scratchWords(c.eccCheck, len(entry.words))
	check := c.eccCheck
	copy(check, entry.words)
	if c.inj != nil {
		c.inj.FlipSensed(sense.OpRead, 1, bits, data)
		c.inj.FlipSensed(sense.OpRead, 1, cbBits, check)
	}

	r := c.codec.DecodeRow(data, check, bits)
	v.CorrectedBits = r.CorrectedData + r.CorrectedCheck
	if !r.Clean() {
		v.Uncorrectable = true
		return v, nil
	}
	// The decode produced a valid codeword; it must also be the oracle's
	// answer. An aliased multi-bit error that decodes "clean" is caught
	// here and escalated instead of silently accepted.
	maskTail(data, bits)
	if !equalMasked(data, golden[:w], bits) {
		v.Uncorrectable = true
		return v, nil
	}
	// Repair the stored row when the corrections were real cell errors (not
	// flips of this verify pass's own sensing): one extra program pulse.
	if r.CorrectedData > 0 && !equalMasked(stored, data, bits) {
		v.Rewritten = true
		v.Seconds += t.TWR
		v.Energy.Add(energy.WriteDriver, float64(bits)*e.WritePerBit)
		c.counters.Writebacks++
		if err := c.store(dst, data); err != nil {
			return nil, err
		}
		// Stuck data cells force themselves back; SECDED cannot hold this
		// row and the caller must escalate (retire / ladder).
		if !equalMasked(c.mem.PeekRow(dst)[:w], golden[:w], bits) {
			v.Uncorrectable = true
			return v, nil
		}
	}
	v.OK = true
	return v, nil
}

// ECCCorrectRead decodes a host read's sensed words against the row's
// spare-column check bits, correcting single-bit errors in place before the
// burst reaches the bus — the conventional DIMM-side use of the code. The
// spare columns ride the read's own activation; the marginal cost is their
// sensing, the decode trees, and one command slot per group. Rows without
// stored check bits (never written through the ECC path, or written at a
// different vector length) pass through untouched at zero cost.
func (c *Controller) ECCCorrectRead(addr memarch.RowAddr, bits int, sensed []uint64) (*ECCVerification, error) {
	if c.codec == nil {
		return nil, fmt.Errorf("pim: ECCCorrectRead with ECC disabled")
	}
	geo := c.mem.Geometry()
	if bits < 1 || bits > geo.RowBits() {
		return nil, fmt.Errorf("pim: bits=%d outside 1..%d (row length)", bits, geo.RowBits())
	}
	w := bitvec.WordsFor(bits)
	if len(sensed) < w {
		return nil, fmt.Errorf("pim: %d sensed words for a %d-bit read", len(sensed), bits)
	}
	entry, ok := c.checks[c.eccSpareKey(addr)]
	if !ok || entry.bits != bits {
		return &ECCVerification{OK: true}, nil
	}
	v := &ECCVerification{}
	e := c.mem.Tech().Energy
	cbBits := c.codec.CheckRowBits(bits)
	groups := senseGroups(geo, bits)
	v.Seconds = float64(groups) * c.mem.Tech().Timing.TCMD
	v.Energy.Add(energy.SenseAmp, float64(cbBits)*e.SensePerBit)
	v.Energy.Add(energy.ECCLogic, float64(bits)*e.ECCPerBit)

	c.eccCheck = scratchWords(c.eccCheck, len(entry.words))
	check := c.eccCheck
	copy(check, entry.words)
	if c.inj != nil {
		c.inj.FlipSensed(sense.OpRead, 1, cbBits, check)
	}
	r := c.codec.DecodeRow(sensed, check, bits)
	v.CorrectedBits = r.CorrectedData + r.CorrectedCheck
	v.Uncorrectable = !r.Clean()
	v.OK = r.Clean()
	return v, nil
}

// equalMasked compares the first `bits` bits of two word slices.
func equalMasked(a, b []uint64, bits int) bool {
	w := bitvec.WordsFor(bits)
	tail := uint(bits % 64)
	for i := 0; i < w; i++ {
		mask := ^uint64(0)
		if i == w-1 && tail != 0 {
			mask = 1<<tail - 1
		}
		if (a[i]^b[i])&mask != 0 {
			return false
		}
	}
	return true
}

// ECCRowBits returns the injector row width covering data plus spare
// columns for a geometry under the codec — the width fault.New needs so
// stuck-at positions can land in the spare stripe too.
func ECCRowBits(geo memarch.Geometry, codec *ecc.Codec) int {
	return geo.RowBits() + codec.CheckRowBits(geo.RowBits())
}

// Package pim implements the Pinatubo memory controller — the paper's core
// contribution. Given a bulk bitwise operation over operand rows, the
// controller classifies it by operand placement (intra-subarray,
// inter-subarray, or inter-bank, Section 4.1), lowers it to a DDR command
// sequence (mode-register setup, LWL-latch multi-row activation, sensing
// steps, in-place writeback), executes it functionally against the memory
// model, and accounts latency and energy.
package pim

import (
	"errors"
	"fmt"

	"pinatubo/internal/analog"
	"pinatubo/internal/backend"
	"pinatubo/internal/bitvec"
	"pinatubo/internal/cmdstream"
	"pinatubo/internal/ddr"
	"pinatubo/internal/dram"
	"pinatubo/internal/ecc"
	"pinatubo/internal/energy"
	"pinatubo/internal/fault"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

// Class is the placement class of an operation.
type Class int

const (
	// ClassIntraSub: all operand rows share a subarray; the modified SA
	// computes the result in one multi-row activation.
	ClassIntraSub Class = iota
	// ClassInterSub: operands share a bank but not a subarray; the add-on
	// logic at the global row buffer combines serially-read rows.
	ClassInterSub
	// ClassInterBank: operands share a rank but not a bank; the add-on
	// logic at the I/O buffer combines them.
	ClassInterBank
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case ClassIntraSub:
		return "intra-subarray"
	case ClassInterSub:
		return "inter-subarray"
	case ClassInterBank:
		return "inter-bank"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ErrCrossRank is returned for operand sets spanning ranks or channels:
// Pinatubo does not operate across chips — the paper relies on the
// PIM-aware memory mapping to avoid such placements.
var ErrCrossRank = errors.New("pim: operands span ranks or channels; not supported (remap or fall back to the CPU)")

// ErrSharedRow is returned when two operands name the same physical row.
var ErrSharedRow = errors.New("pim: operands share a physical row; Pinatubo requires distinct rows")

// ErrActivationFault is returned when a multi-row activation transiently
// fails under fault injection. The operation touched no cell state, so the
// caller may simply reissue it. It aliases the backend seam's sentinel so
// errors.Is works on either side of the interface.
var ErrActivationFault = backend.ErrActivationFault

// InterORLimit caps the operand count of a single inter-subarray/bank OR
// request; longer chains are split by the runtime scheduler.
const InterORLimit = 256

// Result describes one executed operation.
type Result struct {
	Op    sense.Op
	Class Class
	Rows  int // operand row count
	Bits  int // vector length in bits
	// Seconds is the command-sequence latency on one channel.
	Seconds float64
	// Energy is the per-component energy of the operation.
	Energy energy.Meter
	// Commands is the DDR command sequence the controller issued.
	Commands []ddr.Cmd
	// Words is the result vector (bitvec.WordsFor(Bits) words).
	Words []uint64
	// Voted is the replica count of a majority-voted execution (0 for a
	// plain request). Outvoted counts the bit positions where the replica
	// senses disagreed and the majority overrode the minority.
	Voted    int
	Outvoted int64
}

// Counters accumulates the controller's lifetime hardware activity.
type Counters struct {
	Ops         map[Class]int64 // completed ops by placement class
	Activations int64           // row activations (ACT + ACT-LATCH)
	SenseSteps  int64           // column-group sensing steps
	Writebacks  int64           // cell-array writes (WBACK / WR)
	BusBits     int64           // data bits that crossed the DDR bus
}

// Controller drives one PIM-extended main memory. The technology-specific
// part — how a co-located operand set is computed inside the array — lives
// behind the backend seam; the controller owns placement classification,
// the digital inter-subarray/bank datapath, write-back routing, caching,
// counters and ECC, which are technology-generic.
type Controller struct {
	mem      *memarch.Memory
	be       backend.Backend
	bus      ddr.BusParams
	mrs      ddr.ModeRegisters
	counters Counters
	// inj, when attached, corrupts sensing and cell writes — see
	// internal/fault. nil means the ideal-hardware model.
	inj *fault.Injector
	// wearShare, when set, reports how many replicas of a logical row the
	// given physical row stores; programs of such rows accrue 1/share of a
	// wear event each (internal/fault.RecordWriteShared). nil or a return
	// of <= 1 means normal wear.
	wearShare func(memarch.RowAddr) int
	// codec and checks model the in-array SECDED spare columns — see ecc.go.
	// codec nil means no ECC; checks maps encoded row address to that row's
	// stored check bits.
	codec  *ecc.Codec
	checks map[uint64]eccEntry

	// cache memoises the pure part of execute() — placement class, command
	// sequence, latency, energy, counter deltas — keyed by the operation
	// shape (see cache.go). cacheOn gates lookups; the cache itself engages
	// only on the ideal-hardware path (no injector, no ECC codec), where an
	// execution's non-data outputs are a pure function of the key.
	cache   *cmdstream.Cache
	cacheOn bool
	keyBuf  cmdstream.KeyBuffer
	// rowsScratch is reused for the per-execute operand row-slice header
	// list, so steady-state executions of a fixed arity allocate nothing
	// for it.
	rowsScratch [][]uint64
	// voteOuts holds the per-replica sensing buffers of voted executions,
	// reused so the R sensing passes of a steady-state voted request
	// allocate nothing.
	voteOuts [][]uint64
	// eccData / eccCheck are the ECC verification path's decode scratch:
	// the sensed data and check words live only for the decode, so the
	// steady-state verify-every-op loop reuses them.
	eccData  []uint64
	eccCheck []uint64
}

// scratchWords returns buf resized to exactly n words (growing its backing
// storage if needed), for scratch that is fully overwritten before use.
func scratchWords(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

// voteScratch returns r sensing buffers of exactly w words each, backed by
// reused storage.
func (c *Controller) voteScratch(r, w int) [][]uint64 {
	if cap(c.voteOuts) < r {
		grown := make([][]uint64, r)
		copy(grown, c.voteOuts[:cap(c.voteOuts)])
		c.voteOuts = grown
	}
	outs := c.voteOuts[:r]
	for i := range outs {
		if cap(outs[i]) < w {
			outs[i] = make([]uint64, w)
		}
		outs[i] = outs[i][:w]
	}
	c.voteOuts = outs
	return outs
}

// NewController builds a controller over mem, selecting the compute
// backend from the memory's technology: the modified-SA backend for the
// resistive NVMs, the triple-row-activation backend for DRAM. checkBits
// configures the per-op analog cross-check sample of the SA model (0
// disables; ignored by the DRAM backend, whose compute is digital).
func NewController(mem *memarch.Memory, checkBits int) (*Controller, error) {
	be, err := defaultBackend(mem, checkBits)
	if err != nil {
		return nil, err
	}
	return NewControllerWith(mem, be)
}

// defaultBackend maps a technology to its compute backend.
func defaultBackend(mem *memarch.Memory, checkBits int) (backend.Backend, error) {
	p := mem.Tech()
	switch p.Tech {
	case nvm.PCM, nvm.STTMRAM, nvm.ReRAM:
		return backend.NewSenseAmp(p, analog.DefaultSenseConfig(), checkBits)
	case nvm.DRAM:
		return dram.New(p, mem.Geometry())
	default:
		return nil, fmt.Errorf("pim: no compute backend for technology %s", p.Tech)
	}
}

// NewControllerWith builds a controller over mem with an explicit compute
// backend — the pluggable entry point behind NewController's selection.
func NewControllerWith(mem *memarch.Memory, be backend.Backend) (*Controller, error) {
	if be == nil {
		return nil, errors.New("pim: nil compute backend")
	}
	return &Controller{
		mem:      mem,
		be:       be,
		bus:      ddr.DefaultBus(),
		counters: Counters{Ops: make(map[Class]int64)},
	}, nil
}

// Backend returns the controller's compute backend.
func (c *Controller) Backend() backend.Backend { return c.be }

// AttachInjector wires a fault injector into the controller's sensing and
// cell-write paths. Passing nil restores the ideal-hardware model.
func (c *Controller) AttachInjector(in *fault.Injector) { c.inj = in }

// SetProgramCache turns the lowered-program cache on or off. Entries
// survive a disable: the cached views are pure functions of the
// operation shape, so re-enabling may serve them again.
func (c *Controller) SetProgramCache(enabled bool) {
	if enabled && c.cache == nil {
		c.cache = cmdstream.NewCache()
	}
	c.cacheOn = enabled
}

// ProgramCacheEnabled reports whether cache lookups are active.
func (c *Controller) ProgramCacheEnabled() bool { return c.cacheOn }

// InvalidateProgramCache drops every cached program. The System calls
// this whenever its row layout moves (layoutGen bumps: frees, retire
// remaps, replica teardowns), so a cached program can never outlive the
// layout it was lowered against.
func (c *Controller) InvalidateProgramCache() {
	if c.cache != nil {
		c.cache.Invalidate()
	}
}

// CacheStats snapshots the program cache's traffic counters.
func (c *Controller) CacheStats() cmdstream.CacheStats {
	if c.cache == nil {
		return cmdstream.CacheStats{}
	}
	return c.cache.Stats()
}

// Injector returns the attached fault injector (nil when none).
func (c *Controller) Injector() *fault.Injector { return c.inj }

// SetWearSpread installs the replica-share lookup consulted on every cell
// write: rows reported as storing one of R replicas age R× slower per
// logical write. Passing nil restores normal wear.
func (c *Controller) SetWearSpread(f func(memarch.RowAddr) int) { c.wearShare = f }

// AbsorbCounters folds another controller's accumulated hardware activity
// into this one (integer adds — exact under any merge order). The batch
// executor merges per-shard controller counters through here.
func (c *Controller) AbsorbCounters(o Counters) {
	for k, v := range o.Ops {
		if c.counters.Ops == nil {
			c.counters.Ops = make(map[Class]int64)
		}
		c.counters.Ops[k] += v
	}
	c.counters.Activations += o.Activations
	c.counters.SenseSteps += o.SenseSteps
	c.counters.Writebacks += o.Writebacks
	c.counters.BusBits += o.BusBits
}

// ResetForReuse restores the controller to its just-built state so a
// pooled shard sandbox is indistinguishable from a fresh one: counters,
// mode registers, ECC check-bit state, the program-cache traffic
// counters and the SA model's sampling stream all return to their New
// values. Cached lowered programs deliberately survive — they are pure
// functions of operand addresses and geometry, so a reused sandbox
// replaying a same-shaped window hits instead of re-lowering. The
// attached injector and codec stay attached (the owning System resets
// the injector itself).
func (c *Controller) ResetForReuse() {
	c.counters = Counters{Ops: make(map[Class]int64)}
	c.mrs = ddr.ModeRegisters{}
	if c.checks != nil {
		c.checks = make(map[uint64]eccEntry)
	}
	if c.cache != nil {
		c.cache.ResetStats()
	}
	c.be.Reset()
}

// Counters returns a snapshot of the accumulated hardware activity.
func (c *Controller) Counters() Counters {
	out := c.counters
	out.Ops = make(map[Class]int64, len(c.counters.Ops))
	for k, v := range c.counters.Ops {
		out.Ops[k] = v
	}
	return out
}

// tally folds a completed command sequence into the counters.
func (c *Controller) tally(class Class, cmds []ddr.Cmd) {
	act, senseSteps, wb, bus := countersFor(cmds)
	c.tallyDeltas(class, act, senseSteps, wb, bus)
}

// countersFor derives the hardware-counter deltas of a command sequence.
func countersFor(cmds []ddr.Cmd) (act, senseSteps, wb, bus int64) {
	for _, cmd := range cmds {
		switch cmd.Kind {
		case ddr.CmdAct, ddr.CmdActLatch:
			act++
		case ddr.CmdActTRA:
			// A triple-row activation fires three wordlines in one command.
			act += 3
		case ddr.CmdSense:
			senseSteps++
		case ddr.CmdWBack, ddr.CmdWr:
			wb++
		default:
			// MRS, precharge, moves and reads don't feed these counters
			// (reads are tallied as BusBits below).
		}
		if cmd.Kind == ddr.CmdRd || cmd.Kind == ddr.CmdWr {
			bus += int64(cmd.Bits)
		}
	}
	return act, senseSteps, wb, bus
}

// tallyDeltas applies precomputed counter deltas (shared by the fresh and
// cached execution paths, so both leave identical counters).
func (c *Controller) tallyDeltas(class Class, act, senseSteps, wb, bus int64) {
	c.counters.Ops[class]++
	c.counters.Activations += act
	c.counters.SenseSteps += senseSteps
	c.counters.Writebacks += wb
	c.counters.BusBits += bus
}

// Memory returns the controlled memory.
func (c *Controller) Memory() *memarch.Memory { return c.mem }

// Bus returns the DDR bus parameters the controller prices transfers with,
// so trace consumers (the channel scheduler) can cost commands identically.
func (c *Controller) Bus() ddr.BusParams { return c.bus }

// MaxORRows returns the one-step OR operand limit of the technology
// (sensing margin and architectural cap combined).
func (c *Controller) MaxORRows() int { return c.be.Caps().MaxORRows }

// ModeRegister returns the current value of the PIM configuration register.
// Panics only if the built-in PIMRegister index is rejected — a constants
// bug, never a runtime condition.
func (c *Controller) ModeRegister() ddr.MR4 {
	v, err := c.mrs.Read(ddr.PIMRegister)
	if err != nil {
		panic(err) // PIMRegister is a valid constant index
	}
	return ddr.MR4(v)
}

// Classify determines the placement class of an operand set.
func (c *Controller) Classify(srcs []memarch.RowAddr) (Class, error) {
	if len(srcs) == 0 {
		return 0, errors.New("pim: no operand rows")
	}
	geo := c.mem.Geometry()
	for _, a := range srcs {
		if !geo.Valid(a) {
			return 0, fmt.Errorf("pim: operand address %v outside geometry", a)
		}
	}
	if !memarch.DistinctRows(geo, srcs...) {
		return 0, fmt.Errorf("pim: classifying %d operand rows: %w", len(srcs), ErrSharedRow)
	}
	switch {
	case memarch.SameSubarray(srcs...):
		return ClassIntraSub, nil
	case memarch.SameBank(srcs...):
		return ClassInterSub, nil
	case memarch.SameRank(srcs...):
		return ClassInterBank, nil
	default:
		return 0, fmt.Errorf("pim: classifying %d operand rows: %w", len(srcs), ErrCrossRank)
	}
}

// validateOperandCount applies the per-class operand rules.
func (c *Controller) validateOperandCount(op sense.Op, class Class, n int) error {
	if class == ClassIntraSub {
		return c.be.ValidateOperands(op, n)
	}
	// Inter-subarray/bank ops run through digital logic: AND/XOR stay
	// 2-operand, INV/READ 1-operand, OR chains up to the request cap.
	switch op {
	case sense.OpRead, sense.OpINV:
		if n != 1 {
			return fmt.Errorf("pim: %v requires exactly 1 operand, got %d", op, n)
		}
	case sense.OpAND, sense.OpXOR:
		if n != 2 {
			return fmt.Errorf("pim: %v requires exactly 2 operands, got %d", op, n)
		}
	case sense.OpOR:
		if n < 2 || n > InterORLimit {
			return fmt.Errorf("pim: %v supports 2..%d operands, got %d", op, InterORLimit, n)
		}
	default:
		return fmt.Errorf("pim: unknown op %d", int(op))
	}
	return nil
}

// Execute runs op over the operand rows on their first `bits` bits. If dst
// is non-nil the result is written to that row (in place when possible);
// otherwise the result is burst onto the DDR bus for the host. The result
// words are returned either way so callers can verify functionally.
func (c *Controller) Execute(op sense.Op, srcs []memarch.RowAddr, bits int, dst *memarch.RowAddr) (*Result, error) {
	return c.execute(op, srcs, bits, dst, false)
}

// ExecuteDigital forces the serial digital datapath (global row buffer /
// I/O buffer) even when the operands share a subarray. The digital path
// reads every operand with single-row sensing — the widest margin the chip
// has — so the resilience layer uses it when multi-row analog sensing keeps
// failing: slower, never deep-margin-limited.
func (c *Controller) ExecuteDigital(op sense.Op, srcs []memarch.RowAddr, bits int, dst *memarch.RowAddr) (*Result, error) {
	return c.execute(op, srcs, bits, dst, true)
}

// execute lowers one operation to a DDR command sequence, prices it, and
// applies its data effects. Panics if the sequence it built violates the
// DDR protocol — a controller bug, never a caller error.
func (c *Controller) execute(op sense.Op, srcs []memarch.RowAddr, bits int, dst *memarch.RowAddr, digital bool) (*Result, error) {
	if c.cacheEligible() {
		res, ok, err := c.executeCached(op, srcs, bits, dst, digital)
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
	}
	res, err := c.executeFresh(op, srcs, bits, dst, digital)
	if err != nil {
		return nil, err
	}
	if c.cacheEligible() {
		act, senseSteps, wb, bus := countersFor(res.Commands)
		c.cache.Store(c.keyBuf.Bytes(), &progEntry{
			class:       res.Class,
			seconds:     res.Seconds,
			energy:      res.Energy,
			commands:    res.Commands,
			activations: act,
			senseSteps:  senseSteps,
			writebacks:  wb,
			busBits:     bus,
		})
	}
	return res, nil
}

// progEntry is one cached lowering: everything execute() derives from the
// operation shape alone. The command slice is shared by every hit and by
// the miss that built it — a copy-on-write view that no consumer mutates
// (Result.Instr and Program.Request only read it). Words are never
// cached: they depend on memory contents and are recomputed per hit.
type progEntry struct {
	class    Class
	seconds  float64
	energy   energy.Meter
	commands []ddr.Cmd

	// Hardware-counter deltas of the command sequence, precomputed so a
	// hit tallies exactly what the fresh path would.
	activations int64
	senseSteps  int64
	writebacks  int64
	busBits     int64
}

// cacheEligible reports whether the program cache may serve this
// controller's executions. Only the ideal-hardware path qualifies: a
// fault injector makes sensing stateful (wear, per-op substreams) and the
// ECC codec adds per-row check-bit effects, so both force the fresh path.
func (c *Controller) cacheEligible() bool {
	return c.cacheOn && c.inj == nil && c.codec == nil
}

// executeCached serves one execution from the program cache. ok=false
// means no entry (the caller runs the fresh path, and the key left in
// keyBuf is where the fresh result is stored). On a hit the non-data
// outputs come from the entry and the data effects are reproduced
// exactly as the fresh path would produce them: result words computed
// from current memory through the same SA model (including the analog
// cross-check, so the sampling stream stays aligned with an uncached
// run), the accumulation buffer left holding the result on the digital
// paths, and dst programmed.
func (c *Controller) executeCached(op sense.Op, srcs []memarch.RowAddr, bits int, dst *memarch.RowAddr, digital bool) (*Result, bool, error) {
	geo := c.mem.Geometry()
	// Build the key. Addresses are bounds-checked before trusting a hit:
	// Encode is only injective inside the geometry, so an out-of-bounds
	// operand must fall through to the fresh path's validation errors
	// rather than alias a cached valid address.
	k := &c.keyBuf
	k.Reset()
	k.Byte(byte(op))
	var flags byte
	if digital {
		flags |= 1
	}
	if dst != nil {
		flags |= 2
	}
	k.Byte(flags)
	k.Int(bits)
	if dst != nil {
		if !geo.Valid(*dst) {
			return nil, false, nil
		}
		k.Uint64(geo.Encode(*dst))
	}
	k.Int(len(srcs))
	for _, s := range srcs {
		if !geo.Valid(s) {
			return nil, false, nil
		}
		k.Uint64(geo.Encode(s))
	}
	e, ok := c.cache.Lookup(k.Bytes())
	if !ok {
		return nil, false, nil
	}
	ent := e.(*progEntry)

	w := bitvec.WordsFor(bits)
	if cap(c.rowsScratch) < len(srcs) {
		c.rowsScratch = make([][]uint64, len(srcs))
	}
	rows := c.rowsScratch[:len(srcs)]
	for i, s := range srcs {
		rows[i] = c.mem.PeekRow(s)[:w]
	}
	res := &Result{Op: op, Class: ent.class, Rows: len(srcs), Bits: bits,
		Seconds: ent.seconds, Energy: ent.energy, Commands: ent.commands}
	if ent.class == ClassIntraSub {
		out := make([]uint64, w)
		if err := c.be.ComputeInto(out, op, rows); err != nil {
			return nil, false, err
		}
		res.Words = out
	} else {
		out := make([]uint64, w)
		combineWords(op, rows, out)
		var buf []uint64
		if ent.class == ClassInterBank {
			buf = c.mem.IOBuffer(srcs[0].Channel, srcs[0].Rank)
		} else {
			buf = c.mem.GlobalBuffer(srcs[0].Channel, srcs[0].Rank, srcs[0].Bank)
		}
		copy(buf[:w], out)
		res.Words = out
	}
	c.tallyDeltas(ent.class, ent.activations, ent.senseSteps, ent.writebacks, ent.busBits)
	if dst != nil {
		if err := c.store(*dst, res.Words); err != nil {
			return nil, false, err
		}
	}
	return res, true, nil
}

// combineWords folds operand rows through the digital add-on logic — the
// same word math execInter's streaming accumulation performs.
func combineWords(op sense.Op, rows [][]uint64, out []uint64) {
	copy(out, rows[0][:len(out)])
	switch op {
	case sense.OpINV:
		for j := range out {
			out[j] = ^out[j]
		}
	case sense.OpAND:
		for _, r := range rows[1:] {
			for j := range out {
				out[j] &= r[j]
			}
		}
	case sense.OpOR:
		for _, r := range rows[1:] {
			for j := range out {
				out[j] |= r[j]
			}
		}
	case sense.OpXOR:
		for _, r := range rows[1:] {
			for j := range out {
				out[j] ^= r[j]
			}
		}
	default:
		// OpRead: the copy above is the whole operation.
	}
}

// executeFresh is the uncached lowering path. Panics if the command
// sequence it built violates the DDR protocol — a controller bug, never
// a caller error.
func (c *Controller) executeFresh(op sense.Op, srcs []memarch.RowAddr, bits int, dst *memarch.RowAddr, digital bool) (*Result, error) {
	geo := c.mem.Geometry()
	if bits < 1 || bits > geo.RowBits() {
		return nil, fmt.Errorf("pim: bits=%d outside 1..%d (row length)", bits, geo.RowBits())
	}
	class, err := c.Classify(srcs)
	if err != nil {
		return nil, err
	}
	if digital && class == ClassIntraSub {
		class = ClassInterSub
	}
	if err := c.validateOperandCount(op, class, len(srcs)); err != nil {
		return nil, err
	}
	if dst != nil {
		if !geo.Valid(*dst) {
			return nil, fmt.Errorf("pim: destination %v outside geometry", *dst)
		}
		if !memarch.SameRank(append([]memarch.RowAddr{*dst}, srcs...)...) {
			return nil, ErrCrossRank
		}
	}

	// Configure MR4: the DIMM-side SA reference / datapath selector.
	mr4, err := ddr.EncodeMR4(op, len(srcs))
	if err != nil {
		return nil, err
	}
	if err := c.mrs.Write(ddr.PIMRegister, uint16(mr4)); err != nil {
		return nil, err
	}

	res := &Result{Op: op, Class: class, Rows: len(srcs), Bits: bits}
	res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdMRS})

	switch class {
	case ClassIntraSub:
		err = c.execIntra(op, srcs, bits, dst, res)
	case ClassInterSub:
		err = c.execInter(op, srcs, bits, dst, res, false)
	case ClassInterBank:
		err = c.execInter(op, srcs, bits, dst, res, true)
	}
	if err != nil {
		return nil, err
	}

	// Close the destination's row (or the computing subarray's when the
	// result streamed to the host) so the precharge lands on the bank it
	// occupies in the channel schedule.
	preAddr := srcs[0]
	if dst != nil {
		preAddr = *dst
	}
	res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdPre, Addr: preAddr})
	if err := ddr.ValidateSequence(res.Commands); err != nil {
		// A protocol violation is a controller bug, never a caller error.
		panic(fmt.Sprintf("pim: invalid command sequence for %v/%v: %v", op, class, err))
	}
	res.Seconds = ddr.Duration(res.Commands, c.mem.Tech().Timing, c.bus)
	c.tally(class, res.Commands)

	if dst != nil {
		if err := c.store(*dst, res.Words); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// store programs a row, routing the write through the wear model: worn rows
// keep their stuck-at bits regardless of what the write drivers deliver.
func (c *Controller) store(addr memarch.RowAddr, words []uint64) error {
	if err := c.mem.WriteRow(addr, words); err != nil {
		return err
	}
	if c.inj != nil {
		key := c.mem.Geometry().Encode(addr)
		share := 1
		if c.wearShare != nil {
			if s := c.wearShare(addr); s > 1 {
				share = s
			}
		}
		c.inj.RecordWriteShared(key, share)
		if c.inj.Worn(key) {
			c.inj.CorruptStored(key, c.mem.PeekRow(addr))
		}
	}
	return nil
}

// senseGroups returns how many serial column-group sensing steps cover
// `bits` bits.
func senseGroups(geo memarch.Geometry, bits int) int {
	return backend.SenseGroups(geo, bits)
}

// execIntra delegates the in-array computation to the technology backend:
// it peeks the operand rows, hands the request to the backend's lowering
// (which appends commands, charges energy and computes the result into a
// fresh buffer), and routes the result through the generic write-back.
func (c *Controller) execIntra(op sense.Op, srcs []memarch.RowAddr, bits int, dst *memarch.RowAddr, res *Result) error {
	geo := c.mem.Geometry()
	w := bitvec.WordsFor(bits)
	if cap(c.rowsScratch) < len(srcs) {
		c.rowsScratch = make([][]uint64, len(srcs))
	}
	rows := c.rowsScratch[:len(srcs)]
	for i, s := range srcs {
		rows[i] = c.mem.PeekRow(s)[:w]
	}
	req := backend.IntraRequest{
		Op:     op,
		Srcs:   srcs,
		Bits:   bits,
		Rows:   rows,
		Out:    make([]uint64, w),
		Geo:    geo,
		Inj:    c.inj,
		Energy: &res.Energy,
	}
	cmds, err := c.be.LowerIntra(&req, res.Commands)
	if err != nil {
		return err
	}
	res.Commands = cmds
	res.Words = req.Out
	return c.writeback(srcs[0], bits, dst, res, ClassIntraSub)
}

// execInter performs the serial global-buffer operation (inter-subarray
// when interBank is false, inter-bank when true).
func (c *Controller) execInter(op sense.Op, srcs []memarch.RowAddr, bits int, dst *memarch.RowAddr, res *Result, interBank bool) error {
	geo := c.mem.Geometry()
	e := c.mem.Tech().Energy
	groups := senseGroups(geo, bits)
	w := bitvec.WordsFor(bits)

	moveKind := ddr.CmdGDLMove
	moveEnergy := e.GDLPerBit
	moveComp := energy.GDL
	if interBank {
		moveKind = ddr.CmdIOMove
		moveEnergy = e.IOBusPerBit
		moveComp = energy.IOBus
	}

	// The accumulation buffer: global row buffer of the first operand's
	// bank, or the rank's I/O buffer.
	var buf []uint64
	if interBank {
		buf = c.mem.IOBuffer(srcs[0].Channel, srcs[0].Rank)
	} else {
		buf = c.mem.GlobalBuffer(srcs[0].Channel, srcs[0].Rank, srcs[0].Bank)
	}

	fbits := float64(bits)
	for i, s := range srcs {
		// Read the operand row: activate + normal sensing per group.
		res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdAct, Addr: s})
		for g := 0; g < groups; g++ {
			res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdSense, Addr: s})
		}
		res.Commands = append(res.Commands, ddr.Cmd{Kind: moveKind, Addr: s, Bits: bits})
		// Close the operand's row before the next serial read (the data is
		// safe in the accumulation buffer).
		res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdPre, Addr: s})
		res.Energy.Add(energy.CellArray, fbits*e.ActPerBit)
		res.Energy.Add(energy.LWLDriver, e.LWLPerAct)
		res.Energy.Add(energy.SenseAmp, fbits*e.SensePerBit)
		res.Energy.Add(moveComp, fbits*moveEnergy)
		res.Energy.Add(energy.Buffer, fbits*e.BufferPerBit)

		row := c.mem.PeekRow(s)[:w]
		if c.inj != nil {
			// The digital path senses each operand with an ordinary
			// single-row read; flips are possible but read-margin rare.
			cp := make([]uint64, w)
			copy(cp, row)
			c.inj.FlipSensed(sense.OpRead, 1, bits, cp)
			row = cp
		}
		if i == 0 {
			copy(buf[:w], row)
			continue
		}
		// Add-on digital logic combines the streamed row into the buffer.
		res.Energy.Add(energy.Logic, fbits*e.LogicPerBit)
		switch op {
		case sense.OpAND:
			for j := 0; j < w; j++ {
				buf[j] &= row[j]
			}
		case sense.OpOR:
			for j := 0; j < w; j++ {
				buf[j] |= row[j]
			}
		case sense.OpXOR:
			for j := 0; j < w; j++ {
				buf[j] ^= row[j]
			}
		default:
			return fmt.Errorf("pim: op %v cannot have %d operands on the %s path",
				op, len(srcs), res.Class)
		}
	}
	if len(srcs) == 1 && op == sense.OpINV {
		for j := 0; j < w; j++ {
			buf[j] = ^buf[j]
		}
		res.Energy.Add(energy.Logic, fbits*e.LogicPerBit)
	}

	res.Words = make([]uint64, w)
	copy(res.Words, buf[:w])
	return c.writeback(srcs[0], bits, dst, res, res.Class)
}

// writeback routes the result to dst (or to the host when dst is nil) and
// charges the corresponding commands and energy. locus is where the result
// currently sits: the computing subarray's SAs (intra) or a buffer.
func (c *Controller) writeback(locus memarch.RowAddr, bits int, dst *memarch.RowAddr, res *Result, class Class) error {
	e := c.mem.Tech().Energy
	fbits := float64(bits)
	if dst == nil {
		// Burst to the host over the DDR bus.
		res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdRd, Addr: locus, Bits: bits})
		res.Energy.Add(energy.IOBus, fbits*e.IOBusPerBit)
		return nil
	}
	sameSub := memarch.SameSubarray(locus, *dst)
	sameBank := memarch.SameBank(locus, *dst)
	switch {
	case class == ClassIntraSub && sameSub:
		// Pure in-place update: SA output feeds the WDs directly.
	case sameBank:
		// Move over the bank's GDLs to the destination subarray's WDs.
		res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdGDLMove, Addr: *dst, Bits: bits})
		res.Energy.Add(energy.GDL, fbits*e.GDLPerBit)
	default:
		// Cross-bank: GDL out of the source bank, I/O datapath across,
		// GDL into the destination bank.
		res.Commands = append(res.Commands,
			ddr.Cmd{Kind: ddr.CmdGDLMove, Addr: locus, Bits: bits},
			ddr.Cmd{Kind: ddr.CmdIOMove, Addr: *dst, Bits: bits},
			ddr.Cmd{Kind: ddr.CmdGDLMove, Addr: *dst, Bits: bits})
		res.Energy.Add(energy.GDL, 2*fbits*e.GDLPerBit)
		res.Energy.Add(energy.IOBus, fbits*e.IOBusPerBit)
	}
	res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdWBack, Addr: *dst})
	res.Energy.Add(energy.WriteDriver, fbits*e.WritePerBit)
	return nil
}

// ReadRow performs a conventional read of `bits` bits from a row to the
// host, returning latency/energy like Execute (used by baselines and the
// public API's Read).
func (c *Controller) ReadRow(addr memarch.RowAddr, bits int) (*Result, error) {
	return c.Execute(sense.OpRead, []memarch.RowAddr{addr}, bits, nil)
}

// WriteRowFromHost performs a conventional write of `bits` bits from the
// host into a row, pricing the bus transfer and cell programming. Panics if
// the fixed ACT/WR/PRE sequence violates the DDR protocol — a controller
// bug, never a caller error.
func (c *Controller) WriteRowFromHost(addr memarch.RowAddr, words []uint64, bits int) (*Result, error) {
	geo := c.mem.Geometry()
	if bits < 1 || bits > geo.RowBits() {
		return nil, fmt.Errorf("pim: bits=%d outside 1..%d", bits, geo.RowBits())
	}
	if !geo.Valid(addr) {
		return nil, fmt.Errorf("pim: address %v outside geometry", addr)
	}
	if want := bitvec.WordsFor(bits); len(words) > want {
		return nil, fmt.Errorf("pim: %d words exceed %d-bit vector", len(words), bits)
	}
	res := &Result{Op: sense.OpRead, Class: ClassIntraSub, Rows: 1, Bits: bits}
	res.Commands = []ddr.Cmd{
		{Kind: ddr.CmdAct, Addr: addr},
		{Kind: ddr.CmdWr, Addr: addr, Bits: bits},
		{Kind: ddr.CmdPre, Addr: addr},
	}
	if err := ddr.ValidateSequence(res.Commands); err != nil {
		panic(fmt.Sprintf("pim: invalid host-write sequence: %v", err))
	}
	res.Seconds = ddr.Duration(res.Commands, c.mem.Tech().Timing, c.bus)
	c.tally(ClassIntraSub, res.Commands)
	e := c.mem.Tech().Energy
	res.Energy.Add(energy.IOBus, float64(bits)*e.IOBusPerBit)
	res.Energy.Add(energy.WriteDriver, float64(bits)*e.WritePerBit)
	if err := c.store(addr, words); err != nil {
		return nil, err
	}
	if c.codec != nil {
		c.eccProgramHost(addr, words, bits, res)
	}
	res.Words = words
	return res, nil
}

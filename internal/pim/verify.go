package pim

import (
	"fmt"
	"math/bits"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/ddr"
	"pinatubo/internal/energy"
	"pinatubo/internal/memarch"
	"pinatubo/internal/sense"
)

// This file is the controller half of the verify-and-retry resilience layer
// (the scheduler half lives in internal/pimrt): a zero-cost digital
// reference computation and a cost-accounted read-back check that compares a
// destination row against it. The check models streaming the operand rows
// through the add-on digital logic once more while the destination row is
// burst to the checker — conservative single-row sensing end to end, which
// the fault model treats as reliable. Replacing this read-everything check
// with in-array ECC is an open item (ROADMAP).

// Golden computes the digital reference result of op over the operand rows'
// current contents. It is the simulator's oracle: no commands, no energy,
// no injected faults. Bits beyond `bits` in the last word are zeroed.
func (c *Controller) Golden(op sense.Op, srcs []memarch.RowAddr, bits int) ([]uint64, error) {
	geo := c.mem.Geometry()
	if bits < 1 || bits > geo.RowBits() {
		return nil, fmt.Errorf("pim: bits=%d outside 1..%d (row length)", bits, geo.RowBits())
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("pim: golden %v of no operand rows", op)
	}
	for _, a := range srcs {
		if !geo.Valid(a) {
			return nil, fmt.Errorf("pim: operand address %v outside geometry", a)
		}
	}
	w := bitvec.WordsFor(bits)
	out := make([]uint64, w)
	copy(out, c.mem.PeekRow(srcs[0])[:w])
	switch op {
	case sense.OpRead:
		if len(srcs) != 1 {
			return nil, fmt.Errorf("pim: golden READ of %d rows", len(srcs))
		}
	case sense.OpINV:
		if len(srcs) != 1 {
			return nil, fmt.Errorf("pim: golden INV of %d rows", len(srcs))
		}
		for i := range out {
			out[i] = ^out[i]
		}
	case sense.OpAND:
		if len(srcs) != 2 {
			return nil, fmt.Errorf("pim: golden AND of %d rows", len(srcs))
		}
		row := c.mem.PeekRow(srcs[1])[:w]
		for i := range out {
			out[i] &= row[i]
		}
	case sense.OpXOR:
		if len(srcs) != 2 {
			return nil, fmt.Errorf("pim: golden XOR of %d rows", len(srcs))
		}
		row := c.mem.PeekRow(srcs[1])[:w]
		for i := range out {
			out[i] ^= row[i]
		}
	case sense.OpOR:
		for _, s := range srcs[1:] {
			row := c.mem.PeekRow(s)[:w]
			for i := range out {
				out[i] |= row[i]
			}
		}
	default:
		return nil, fmt.Errorf("pim: golden of unknown op %d", int(op))
	}
	maskTail(out, bits)
	return out, nil
}

// Verification reports one read-back verification pass.
type Verification struct {
	// OK is true when the destination row matches the digital reference on
	// every bit of the vector.
	OK bool
	// MismatchedBits counts destination bits that disagree with the
	// reference — the wrong answers the check intercepted.
	MismatchedBits int
	// WriteFault is true when the stored row differs from what the
	// writeback claimed to program: the cells themselves are damaged
	// (stuck-at wear), so re-executing into the same row cannot help and
	// the row should be retired.
	WriteFault bool
	// Seconds and Energy are the cost of the check.
	Seconds float64
	Energy  energy.Meter
}

// VerifyAgainst re-reads dst and compares its first `bits` bits with the
// digital reference `golden`. nsrc prices the reference recompute (that many
// operand rows streamed through the digital combine path; pass 0 when the
// reference is already host-resident, e.g. after a host write). claimed,
// when non-nil, is what the writeback believed it stored; a stored/claimed
// disagreement is attributed to cell damage via Verification.WriteFault.
func (c *Controller) VerifyAgainst(nsrc, bitCount int, dst memarch.RowAddr, golden, claimed []uint64) (*Verification, error) {
	geo := c.mem.Geometry()
	if bitCount < 1 || bitCount > geo.RowBits() {
		return nil, fmt.Errorf("pim: bits=%d outside 1..%d (row length)", bitCount, geo.RowBits())
	}
	if !geo.Valid(dst) {
		return nil, fmt.Errorf("pim: destination %v outside geometry", dst)
	}
	w := bitvec.WordsFor(bitCount)
	if len(golden) < w {
		return nil, fmt.Errorf("pim: reference of %d words for a %d-bit check", len(golden), bitCount)
	}
	stored := c.mem.PeekRow(dst)[:w]

	v := &Verification{}
	tail := uint(bitCount % 64)
	for i := 0; i < w; i++ {
		mask := ^uint64(0)
		if i == w-1 && tail != 0 {
			mask = 1<<tail - 1
		}
		v.MismatchedBits += bits.OnesCount64((stored[i] ^ golden[i]) & mask)
		if claimed != nil && (stored[i]^claimed[i])&mask != 0 {
			v.WriteFault = true
		}
	}
	v.OK = v.MismatchedBits == 0

	// Cost: burst dst to the checker (ACT + serial sensing + RD) and stream
	// the nsrc operand rows through the digital combine path once more
	// (ACT + sensing + GDL move + compare logic each). All single-row reads.
	t := c.mem.Tech().Timing
	e := c.mem.Tech().Energy
	groups := senseGroups(geo, bitCount)
	fbits := float64(bitCount)
	cmdTime := func(k ddr.CmdKind, payload int) float64 {
		return ddr.CmdTime(ddr.Cmd{Kind: k, Bits: payload}, t, c.bus)
	}
	perRowRead := cmdTime(ddr.CmdAct, 0) + float64(groups)*cmdTime(ddr.CmdSense, 0) + cmdTime(ddr.CmdPre, 0)
	v.Seconds = perRowRead + cmdTime(ddr.CmdRd, bitCount) // dst read-back
	v.Energy.Add(energy.CellArray, fbits*e.ActPerBit)
	v.Energy.Add(energy.LWLDriver, e.LWLPerAct)
	v.Energy.Add(energy.SenseAmp, fbits*e.SensePerBit)
	v.Energy.Add(energy.IOBus, fbits*e.IOBusPerBit)
	for i := 0; i < nsrc; i++ {
		v.Seconds += perRowRead + cmdTime(ddr.CmdGDLMove, bitCount)
		v.Energy.Add(energy.CellArray, fbits*e.ActPerBit)
		v.Energy.Add(energy.LWLDriver, e.LWLPerAct)
		v.Energy.Add(energy.SenseAmp, fbits*e.SensePerBit)
		v.Energy.Add(energy.GDL, fbits*e.GDLPerBit)
		v.Energy.Add(energy.Logic, fbits*e.LogicPerBit)
	}
	c.counters.Activations += int64(1 + nsrc)
	c.counters.SenseSteps += int64(groups * (1 + nsrc))
	c.counters.BusBits += int64(bitCount)
	return v, nil
}

// maskTail zeroes the bits beyond bitCount in the last word.
func maskTail(words []uint64, bitCount int) {
	if tail := uint(bitCount % 64); tail != 0 && len(words) > 0 {
		words[len(words)-1] &= 1<<tail - 1
	}
}

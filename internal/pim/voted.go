package pim

import (
	"fmt"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/ddr"
	"pinatubo/internal/energy"
	"pinatubo/internal/memarch"
	"pinatubo/internal/sense"
)

// ExecuteVoted runs op over R replicated operand sets and majority-votes
// the sensed results — the proactive rung of the resilience ladder.
// sets[0] is the primary operand set; sets[1..] hold replica copies of the
// same logical rows. Each set is activated and sensed as its own
// multi-row group (LWL reset, activate, sense) inside one command
// sequence, so the per-step analog margin — and therefore the operand
// depth limit — is exactly that of a plain request; the reliability gain
// is the ⌈R/2⌉-of-R vote over the R independent sensing passes, taken in
// the subarray's add-on logic before write-back. Only the primary
// destination row is written: replica refresh is the runtime's job, where
// it is priced as explicit copy requests.
//
// All rows of all sets must share a subarray (the analog vote has no
// meaning on the serial digital path). A transient activation fault in
// any replica group fails the whole request, exactly like a plain
// multi-row activation — nothing was written, so the caller may reissue.
// Panics if the command sequence it built violates the extended-DDR
// protocol (a controller bug by construction, like Execute).
func (c *Controller) ExecuteVoted(op sense.Op, sets [][]memarch.RowAddr, bits int, dst *memarch.RowAddr) (*Result, error) {
	if !c.be.Caps().VotedSensing {
		return nil, fmt.Errorf("pim: voted execution requires a backend that can re-sense an operand set at full margin; the %s backend cannot",
			c.be.Params().Tech)
	}
	r := len(sets)
	if r%2 == 0 || r < 3 || r > 7 {
		return nil, fmt.Errorf("pim: voted execution needs an odd replica count in 3..7, got %d", r)
	}
	n := len(sets[0])
	var all []memarch.RowAddr
	for i, set := range sets {
		if len(set) != n {
			return nil, fmt.Errorf("pim: replica set %d has %d rows, primary has %d", i, len(set), n)
		}
		all = append(all, set...)
	}
	geo := c.mem.Geometry()
	if bits < 1 || bits > geo.RowBits() {
		return nil, fmt.Errorf("pim: bits=%d outside 1..%d (row length)", bits, geo.RowBits())
	}
	class, err := c.Classify(all)
	if err != nil {
		return nil, err
	}
	if class != ClassIntraSub {
		return nil, fmt.Errorf("pim: voted execution requires intra-subarray placement, got %s", class)
	}
	if err := c.validateOperandCount(op, ClassIntraSub, n); err != nil {
		return nil, err
	}
	if dst != nil {
		if !geo.Valid(*dst) {
			return nil, fmt.Errorf("pim: destination %v outside geometry", *dst)
		}
		if !memarch.SameRank(append([]memarch.RowAddr{*dst}, all...)...) {
			return nil, ErrCrossRank
		}
	}

	mr4, err := ddr.EncodeMR4(op, n)
	if err != nil {
		return nil, err
	}
	if err := c.mrs.Write(ddr.PIMRegister, uint16(mr4)); err != nil {
		return nil, err
	}

	res := &Result{Op: op, Class: ClassIntraSub, Rows: n, Bits: bits, Voted: r}
	res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdMRS})

	e := c.mem.Tech().Energy
	w := bitvec.WordsFor(bits)
	groups := senseGroups(geo, bits)
	steps := groups * op.SenseSteps()
	fbits := float64(bits)
	fn := float64(n)

	outs := c.voteScratch(r, w)
	if cap(c.rowsScratch) < n {
		c.rowsScratch = make([][]uint64, n)
	}
	for si, set := range sets {
		// Each replica group is a fresh multi-row activation: the LWL reset
		// closes the previous group's rows and re-arms the latches, so the
		// protocol checker sees R well-formed groups in one sequence.
		lwl := NewLWL(geo.RowsPerSubarray)
		lwl.Reset()
		res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdLWLReset, Addr: set[0]})
		for i, s := range set {
			if err := lwl.Latch(s.Row); err != nil {
				return nil, err
			}
			kind := ddr.CmdActLatch
			if i == 0 {
				kind = ddr.CmdAct
			}
			res.Commands = append(res.Commands, ddr.Cmd{Kind: kind, Addr: s})
		}
		if lwl.OpenCount() != n {
			return nil, fmt.Errorf("pim: LWL opened %d rows, want %d", lwl.OpenCount(), n)
		}
		if c.inj != nil && c.inj.ActivationFault(n) {
			return nil, fmt.Errorf("pim: activating %d rows (voted): %w", n, ErrActivationFault)
		}
		for i := 0; i < steps; i++ {
			res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdSense, Addr: set[0]})
		}

		rows := c.rowsScratch[:n]
		for i, s := range set {
			rows[i] = c.mem.PeekRow(s)[:w]
		}
		out := outs[si]
		if err := c.be.ComputeInto(out, op, rows); err != nil {
			return nil, err
		}
		if c.inj != nil {
			// Every replica pass senses independently at the same margin —
			// this is the independence the majority vote exploits.
			c.inj.FlipSensed(op, n, bits, out)
		}

		res.Energy.Add(energy.CellArray, fbits*e.ActPerBit)
		res.Energy.Add(energy.LWLDriver, fn*e.LWLPerAct)
		res.Energy.Add(energy.SenseAmp,
			float64(op.SenseSteps())*fbits*(e.SensePerBit+fn*e.SenseRowAdd))
	}

	// The majority words become res.Words, which outlives this call (the
	// scheduler verifies and stores through it), so they get a fresh
	// buffer — only the per-replica sensing passes run on scratch.
	maj := make([]uint64, w)
	disagree, err := sense.MajorityWordsInto(maj, outs, bits)
	if err != nil {
		return nil, err
	}
	res.Words = maj
	res.Outvoted = int64(disagree)
	// The vote gate lives in the subarray's add-on logic, one pass per
	// replica beyond the first (the carry-save counters fold R-1 times).
	res.Energy.Add(energy.Logic, float64(r-1)*fbits*e.LogicPerBit)

	if err := c.writeback(sets[0][0], bits, dst, res, ClassIntraSub); err != nil {
		return nil, err
	}

	preAddr := sets[0][0]
	if dst != nil {
		preAddr = *dst
	}
	res.Commands = append(res.Commands, ddr.Cmd{Kind: ddr.CmdPre, Addr: preAddr})
	if err := ddr.ValidateSequence(res.Commands); err != nil {
		panic(fmt.Sprintf("pim: invalid voted command sequence for %v: %v", op, err))
	}
	res.Seconds = ddr.Duration(res.Commands, c.mem.Tech().Timing, c.bus)
	c.tally(ClassIntraSub, res.Commands)

	if dst != nil {
		if err := c.store(*dst, res.Words); err != nil {
			return nil, err
		}
	}
	return res, nil
}

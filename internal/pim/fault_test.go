package pim

import (
	"errors"
	"math/rand"
	"testing"

	"pinatubo/internal/analog"
	"pinatubo/internal/bitvec"
	"pinatubo/internal/fault"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

func attachInjector(t testing.TB, c *Controller, cfg fault.Config) *fault.Injector {
	t.Helper()
	in, err := fault.New(cfg, c.mem.Tech(), analog.DefaultSenseConfig(), c.mem.Geometry().RowBits())
	if err != nil {
		t.Fatal(err)
	}
	c.AttachInjector(in)
	return in
}

// Satellite: table-driven rejection coverage. Every operand-set shape the
// controller must refuse, checked through both Classify and Execute so the
// wrapped sentinels stay programmable with errors.Is.
func TestRejectionTable(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	cases := []struct {
		name string
		srcs []memarch.RowAddr
		want error
	}{
		{
			name: "cross-channel",
			srcs: []memarch.RowAddr{{Channel: 0}, {Channel: 1}},
			want: ErrCrossRank,
		},
		{
			name: "cross-rank",
			srcs: []memarch.RowAddr{{Rank: 0}, {Rank: 0, Row: 1}, {Channel: 2}},
			want: ErrCrossRank,
		},
		{
			name: "shared-row",
			srcs: []memarch.RowAddr{{Row: 4}, {Row: 4}},
			want: ErrSharedRow,
		},
		{
			name: "shared-row-among-many",
			srcs: []memarch.RowAddr{{Row: 0}, {Row: 1}, {Row: 2}, {Row: 1}},
			want: ErrSharedRow,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := c.Classify(tc.srcs); !errors.Is(err, tc.want) {
				t.Errorf("Classify: err=%v, want %v", err, tc.want)
			}
			if _, err := c.Execute(sense.OpOR, tc.srcs, 64, nil); !errors.Is(err, tc.want) {
				t.Errorf("Execute: err=%v, want %v", err, tc.want)
			}
			if _, err := c.Golden(sense.OpOR, tc.srcs, 64); err == nil && tc.want == ErrCrossRank {
				// Golden has no placement constraint (pure math), but must
				// still reject invalid addresses; nothing to assert here.
				_ = err
			}
		})
	}
}

func TestActivationFaultSurfacesAsSentinel(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	// 127 extra rows x 0.01 clamps the transient failure to certainty.
	attachInjector(t, c, fault.Config{ActivationFailRate: 0.01})
	srcs := addrsInSubarray(128)
	_, err := c.Execute(sense.OpOR, srcs, 64, nil)
	if !errors.Is(err, ErrActivationFault) {
		t.Fatalf("err=%v, want ErrActivationFault", err)
	}
	// Single-row ops never activation-fault.
	if _, err := c.Execute(sense.OpRead, srcs[:1], 64, nil); err != nil {
		t.Fatalf("single-row read faulted: %v", err)
	}
}

func TestSenseFlipsCorruptDeepORNotWritePath(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	inj := attachInjector(t, c, fault.Config{Seed: 5, SenseFlipRate: 0.5})
	rng := rand.New(rand.NewSource(11))
	srcs := addrsInSubarray(128)
	w := 1 << 7
	bits := w * 64
	want := make([]uint64, w)
	for _, a := range srcs {
		row := fillRow(t, c, a, w, rng)
		for i := range want {
			want[i] |= row[i]
		}
	}
	r, err := c.Execute(sense.OpOR, srcs, bits, nil)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range want {
		if r.Words[i] != want[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("a 0.5 flip rate over a 128-row OR corrupted nothing")
	}
	if inj.Stats().SenseFlips == 0 {
		t.Fatal("injector recorded no flips")
	}
}

func TestGoldenMatchesDigitalReference(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	rng := rand.New(rand.NewSource(3))
	srcs := addrsInSubarray(4)
	w := 8
	bits := w*64 - 13 // ragged tail
	rows := make([][]uint64, len(srcs))
	for i, a := range srcs {
		rows[i] = fillRow(t, c, a, w, rng)
	}
	ref := func(f func(a, b uint64) uint64, vs ...[]uint64) []uint64 {
		out := append([]uint64(nil), vs[0]...)
		for _, v := range vs[1:] {
			for i := range out {
				out[i] = f(out[i], v[i])
			}
		}
		if tail := uint(bits % 64); tail != 0 {
			out[len(out)-1] &= 1<<tail - 1
		}
		return out
	}
	cases := []struct {
		op   sense.Op
		n    int
		want []uint64
	}{
		{sense.OpRead, 1, ref(func(a, b uint64) uint64 { return a }, rows[0])},
		{sense.OpINV, 1, ref(func(a, b uint64) uint64 { return a }, invert(rows[0]))},
		{sense.OpAND, 2, ref(func(a, b uint64) uint64 { return a & b }, rows[0], rows[1])},
		{sense.OpXOR, 2, ref(func(a, b uint64) uint64 { return a ^ b }, rows[0], rows[1])},
		{sense.OpOR, 4, ref(func(a, b uint64) uint64 { return a | b }, rows...)},
	}
	for _, tc := range cases {
		got, err := c.Golden(tc.op, srcs[:tc.n], bits)
		if err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		if !bitvec.FromWords(bits, got).Equal(bitvec.FromWords(bits, tc.want)) {
			t.Errorf("%v: golden disagrees with the digital reference", tc.op)
		}
	}
	// Arity misuse errors.
	if _, err := c.Golden(sense.OpAND, srcs[:3], bits); err == nil {
		t.Error("3-operand AND accepted")
	}
	if _, err := c.Golden(sense.OpINV, srcs[:2], bits); err == nil {
		t.Error("2-operand INV accepted")
	}
	if _, err := c.Golden(sense.OpOR, nil, bits); err == nil {
		t.Error("0-operand OR accepted")
	}
}

func invert(v []uint64) []uint64 {
	out := make([]uint64, len(v))
	for i := range v {
		out[i] = ^v[i]
	}
	return out
}

func TestVerifyAgainstDistinguishesFlipFromWriteFault(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	rng := rand.New(rand.NewSource(7))
	dst := memarch.RowAddr{Row: 9}
	w := 4
	bits := w * 64
	stored := fillRow(t, c, dst, w, rng)

	golden := append([]uint64(nil), stored...)
	// Clean: stored == golden == claimed.
	v, err := c.VerifyAgainst(2, bits, dst, golden, stored)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.MismatchedBits != 0 || v.WriteFault {
		t.Fatalf("clean row: %+v", v)
	}
	if v.Seconds <= 0 || v.Energy.Total() <= 0 {
		t.Fatal("verification must cost time and energy")
	}

	// Sense flip: the writeback claimed (and stored) a wrong bit — stored
	// matches the claim, so the cells are fine; re-execution can fix it.
	bad := append([]uint64(nil), stored...)
	bad[0] ^= 1 << 17
	v, err = c.VerifyAgainst(2, bits, dst, bad, stored)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK || v.MismatchedBits != 1 || v.WriteFault {
		t.Fatalf("flip case: %+v", v)
	}

	// Write fault: the cells hold something other than what the writeback
	// claimed — row damage, re-execution into it cannot help.
	v, err = c.VerifyAgainst(2, bits, dst, bad, bad)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK || !v.WriteFault {
		t.Fatalf("write-fault case: %+v", v)
	}
}

func TestExecuteDigitalForcesInterPath(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	rng := rand.New(rand.NewSource(13))
	srcs := addrsInSubarray(2)
	w := 4
	bits := w * 64
	a := fillRow(t, c, srcs[0], w, rng)
	b := fillRow(t, c, srcs[1], w, rng)

	native, err := c.Execute(sense.OpAND, srcs, bits, nil)
	if err != nil {
		t.Fatal(err)
	}
	digital, err := c.ExecuteDigital(sense.OpAND, srcs, bits, nil)
	if err != nil {
		t.Fatal(err)
	}
	if native.Class != ClassIntraSub {
		t.Fatalf("native class %v", native.Class)
	}
	if digital.Class != ClassInterSub {
		t.Fatalf("digital class %v, want forced inter-subarray", digital.Class)
	}
	if digital.Seconds <= native.Seconds {
		t.Fatal("the serial digital path should be slower than native intra")
	}
	for i := range digital.Words {
		if digital.Words[i] != (a[i] & b[i]) {
			t.Fatal("digital path computed wrong AND")
		}
	}
}

func TestWearCorruptsStoredRowAfterLimit(t *testing.T) {
	c := newCtl(t, nvm.PCM)
	inj := attachInjector(t, c, fault.Config{Seed: 2, WearLimit: 3})
	dst := memarch.RowAddr{Row: 5}
	w := c.mem.Geometry().RowBits() / 64
	words := make([]uint64, w) // all zero
	for i := 0; i < 5; i++ {
		if _, err := c.WriteRowFromHost(dst, words, w*64); err != nil {
			t.Fatal(err)
		}
	}
	if !inj.Worn(c.mem.Geometry().Encode(dst)) {
		t.Fatal("row not worn after 5 > WearLimit programs")
	}
	// The stuck bit must be visible in memory if its stuck value is 1
	// (all-zero writes disagree with a stuck-at-1 cell), and stats must
	// show the wear model engaged either way.
	if inj.Stats().RowWrites != 5 {
		t.Fatalf("RowWrites = %d, want 5", inj.Stats().RowWrites)
	}
	stored := c.mem.PeekRow(dst)
	corrupted := 0
	for _, word := range stored {
		if word != 0 {
			corrupted++
		}
	}
	if forced := inj.Stats().StuckBitsForced; forced > 0 && corrupted == 0 {
		t.Fatalf("stats claim %d forced bits but memory holds the written zeros", forced)
	} else if forced == 0 && corrupted > 0 {
		t.Fatal("memory corrupted without the wear model claiming it")
	}
}

package pim

import (
	"pinatubo/internal/cmdstream"
	"pinatubo/internal/memarch"
)

// This file is the lowering boundary between the controller and the
// cmdstream IR: every cost-bearing artifact the controller produces knows
// how to emit itself as one cmdstream.Instr, so the runtime records a
// program instead of maintaining cost and trace side channels.

// Instr lowers a controller request to a KindRequest instruction carrying
// its full extended-DDR command sequence and end-to-end cost. A
// majority-voted request lowers to KindVoted instead, carrying its replica
// count and outvoted-bit tally so vote accounting is derived from the
// program like every other cost.
func (r *Result) Instr() cmdstream.Instr {
	kind := cmdstream.KindRequest
	if r.Voted > 0 {
		kind = cmdstream.KindVoted
	}
	return cmdstream.Instr{
		Kind:     kind,
		Cmds:     r.Commands,
		Seconds:  r.Seconds,
		Joules:   r.Energy.Total(),
		Votes:    r.Voted,
		Outvoted: r.Outvoted,
	}
}

// Instr lowers a read-back verification pass to a KindVerify instruction
// occupying dst's bank.
func (v *Verification) Instr(dst memarch.RowAddr) cmdstream.Instr {
	return cmdstream.Instr{
		Kind:    cmdstream.KindVerify,
		Addr:    dst,
		Seconds: v.Seconds,
		Joules:  v.Energy.Total(),
	}
}

// Instr lowers a syndrome-decode verification pass to a KindVerify
// instruction occupying dst's bank.
func (v *ECCVerification) Instr(dst memarch.RowAddr) cmdstream.Instr {
	return cmdstream.Instr{
		Kind:    cmdstream.KindVerify,
		Addr:    dst,
		Seconds: v.Seconds,
		Joules:  v.Energy.Total(),
	}
}

// Instr lowers a check-bit maintenance pass to a KindVerify instruction
// occupying dst's bank. The linear fast path prices Seconds at 0: such an
// instruction carries energy only and leaves no scheduling footprint.
func (c ECCCost) Instr(dst memarch.RowAddr) cmdstream.Instr {
	return cmdstream.Instr{
		Kind:    cmdstream.KindVerify,
		Addr:    dst,
		Seconds: c.Seconds,
		Joules:  c.Energy.Total(),
	}
}

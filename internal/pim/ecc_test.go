package pim

import (
	"math/rand"
	"testing"

	"pinatubo/internal/analog"
	"pinatubo/internal/bitvec"
	"pinatubo/internal/ecc"
	"pinatubo/internal/energy"
	"pinatubo/internal/fault"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

func newECCCtl(t testing.TB) *Controller {
	t.Helper()
	c := newCtl(t, nvm.PCM)
	c.EnableECC(ecc.Default())
	return c
}

func TestECCHostWriteEncodesCheckBits(t *testing.T) {
	plain := newCtl(t, nvm.PCM)
	eccd := newECCCtl(t)
	addr := memarch.RowAddr{Row: 3}
	words := []uint64{0xdeadbeefcafef00d, 0x0123456789abcdef}
	bits := 128

	rp, err := plain.WriteRowFromHost(addr, words, bits)
	if err != nil {
		t.Fatal(err)
	}
	re, err := eccd.WriteRowFromHost(addr, words, bits)
	if err != nil {
		t.Fatal(err)
	}
	// Spare columns program inside the same tWR window: identical latency,
	// extra encode + spare-programming energy.
	if re.Seconds != rp.Seconds {
		t.Errorf("ECC host write latency %g != plain %g", re.Seconds, rp.Seconds)
	}
	if re.Energy.Component(energy.ECCLogic) <= 0 {
		t.Error("ECC host write charged no encoder energy")
	}
	cb := eccd.ECCCodec().CheckRowBits(bits)
	extra := re.Energy.Component(energy.WriteDriver) - rp.Energy.Component(energy.WriteDriver)
	want := float64(cb) * nvm.Get(nvm.PCM).Energy.WritePerBit
	if extra <= 0 || extra > 1.01*want {
		t.Errorf("spare write energy %g, want ~%g", extra, want)
	}
	entry, ok := eccd.checks[eccd.eccSpareKey(addr)]
	if !ok || entry.bits != bits {
		t.Fatal("no check entry stored for the written row")
	}
	if got := eccd.ECCCodec().DecodeRow(append([]uint64(nil), words...), entry.words, bits); got != (ecc.RowResult{}) {
		t.Fatalf("stored check bits inconsistent with data: %+v", got)
	}
}

func TestECCProgramAndVerifyCleanOp(t *testing.T) {
	c := newECCCtl(t)
	rng := rand.New(rand.NewSource(7))
	srcs := addrsInSubarray(4)
	dst := memarch.RowAddr{Channel: 0, Bank: 1, Subarray: 2, Row: 100}
	const bits = 1 << 12
	w := bitvec.WordsFor(bits)
	for _, a := range srcs {
		fillRow(t, c, a, w, rng)
	}
	golden, err := c.Golden(sense.OpOR, srcs, bits)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(sense.OpOR, srcs, bits, &dst); err != nil {
		t.Fatal(err)
	}
	cost, err := c.ECCProgram(dst, golden, bits, sense.OpOR, len(srcs))
	if err != nil {
		t.Fatal(err)
	}
	// OR is not GF(2)-linear: the encoder path must be charged.
	if cost.Energy.Component(energy.ECCLogic) <= 0 {
		t.Error("nonlinear regen charged no encoder energy")
	}
	t0 := nvm.Get(nvm.PCM).Timing
	groups := senseGroups(c.mem.Geometry(), bits)
	if want := float64(groups) * t0.TCMD; cost.Seconds != want {
		t.Errorf("nonlinear regen latency %g, want %g", cost.Seconds, want)
	}

	v, err := c.CorrectOrEscalate(dst, bits, golden)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.CorrectedBits != 0 || v.Uncorrectable || v.Rewritten {
		t.Fatalf("clean verify came back %+v", v)
	}
	if want := float64(groups) * t0.TCMD; v.Seconds != want {
		t.Errorf("clean verify latency %g, want %g (syndrome pipeline only)", v.Seconds, want)
	}

	// The linear fast path (XOR) must not touch the encoder trees.
	xg, err := c.Golden(sense.OpXOR, srcs[:2], bits)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(sense.OpXOR, srcs[:2], bits, &dst); err != nil {
		t.Fatal(err)
	}
	xc, err := c.ECCProgram(dst, xg, bits, sense.OpXOR, 2)
	if err != nil {
		t.Fatal(err)
	}
	if xc.Energy.Component(energy.ECCLogic) != 0 {
		t.Error("linear fast path charged encoder energy")
	}
	if xc.Seconds != 0 {
		t.Errorf("linear fast path added %g s latency, want 0", xc.Seconds)
	}
	if xc.Energy.Component(energy.SenseAmp) <= 0 {
		t.Error("linear fast path charged no spare sensing")
	}
}

func TestCorrectOrEscalateFixesSingleBitAndRepairsRow(t *testing.T) {
	c := newECCCtl(t)
	dst := memarch.RowAddr{Row: 9}
	const bits = 512
	words := make([]uint64, bits/64)
	rng := rand.New(rand.NewSource(9))
	for i := range words {
		words[i] = rng.Uint64()
	}
	if _, err := c.WriteRowFromHost(dst, words, bits); err != nil {
		t.Fatal(err)
	}
	// One stored data bit goes wrong (as a written-back sense flip would).
	c.mem.PeekRow(dst)[1] ^= 1 << 17
	v, err := c.CorrectOrEscalate(dst, bits, words)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.CorrectedBits != 1 || !v.Rewritten {
		t.Fatalf("single-bit repair came back %+v", v)
	}
	if got := c.mem.PeekRow(dst)[1]; got != words[1] {
		t.Fatalf("stored word not repaired: %#x != %#x", got, words[1])
	}
	tm := nvm.Get(nvm.PCM).Timing
	groups := senseGroups(c.mem.Geometry(), bits)
	if want := float64(groups)*tm.TCMD + tm.TWR; v.Seconds != want {
		t.Errorf("repair latency %g, want %g (pipeline + reprogram)", v.Seconds, want)
	}
}

func TestCorrectOrEscalateDoubleBitEscalates(t *testing.T) {
	c := newECCCtl(t)
	dst := memarch.RowAddr{Row: 10}
	const bits = 256
	words := []uint64{1, 2, 3, 4}
	if _, err := c.WriteRowFromHost(dst, words, bits); err != nil {
		t.Fatal(err)
	}
	c.mem.PeekRow(dst)[2] ^= 0b101 // two flips in one 64-bit group
	v, err := c.CorrectOrEscalate(dst, bits, words)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Uncorrectable || v.OK {
		t.Fatalf("double-bit error came back %+v, want Uncorrectable", v)
	}
}

func TestECCCorrectReadFixesSensedFlip(t *testing.T) {
	c := newECCCtl(t)
	addr := memarch.RowAddr{Row: 11}
	const bits = 192
	words := []uint64{7, 8, 9}
	if _, err := c.WriteRowFromHost(addr, words, bits); err != nil {
		t.Fatal(err)
	}
	sensed := append([]uint64(nil), words...)
	sensed[0] ^= 1 << 40
	v, err := c.ECCCorrectRead(addr, bits, sensed)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.CorrectedBits != 1 {
		t.Fatalf("read correction came back %+v", v)
	}
	if sensed[0] != words[0] {
		t.Fatalf("sensed word not corrected: %#x != %#x", sensed[0], words[0])
	}
	// A row never written through the ECC path passes through untouched.
	other := memarch.RowAddr{Row: 12}
	raw := []uint64{0xffff, 0, 0}
	v2, err := c.ECCCorrectRead(other, bits, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.OK || v2.Seconds != 0 || v2.CorrectedBits != 0 {
		t.Fatalf("unencoded row decode came back %+v, want free no-op", v2)
	}
}

func TestECCStuckSpareColumnStaysHonest(t *testing.T) {
	// Wear a row with an injector sized for data + spare columns until a
	// stuck bit lands in the spare stripe; the stored check bits must carry
	// it, and the decoder must absorb it as a check-bit correction.
	c := newECCCtl(t)
	rowBits := ECCRowBits(c.mem.Geometry(), c.ECCCodec())
	if rowBits <= c.mem.Geometry().RowBits() {
		t.Fatal("ECCRowBits must extend past the data row")
	}
	in, err := fault.New(fault.Config{Seed: 21, WearLimit: 1}, c.mem.Tech(), analog.DefaultSenseConfig(), rowBits)
	if err != nil {
		t.Fatal(err)
	}
	c.AttachInjector(in)

	dataBits := c.mem.Geometry().RowBits()
	bits := dataBits // full-width rows so the whole spare stripe is in play
	words := make([]uint64, bits/64)
	for i := range words {
		words[i] = 0xaaaaaaaaaaaaaaaa
	}
	found := false
	for row := 0; row < 512 && !found; row++ {
		addr := memarch.RowAddr{Row: row}
		if _, err := c.WriteRowFromHost(addr, words, bits); err != nil {
			t.Fatal(err)
		}
		key := c.eccSpareKey(addr)
		for _, b := range in.StuckPositions(key) {
			// Only spare positions inside the packed check words of this
			// vector length are observable.
			if b >= dataBits && b < dataBits+c.ECCCodec().CheckRowBits(bits) {
				found = true
			}
		}
		if !found {
			continue
		}
		// Re-write so the stuck spare cell corrupts the fresh check bits.
		if _, err := c.WriteRowFromHost(addr, words, bits); err != nil {
			t.Fatal(err)
		}
		v, err := c.CorrectOrEscalate(addr, bits, words)
		if err != nil {
			t.Fatal(err)
		}
		// The stuck spare cell either flipped a check bit (absorbed as a
		// correction) or happened to agree with the encoded value (clean);
		// either way the data must verify OK — unless the same worn row
		// also has stuck data bits, in which case escalation is correct.
		if !v.OK && !v.Uncorrectable {
			t.Fatalf("stuck spare column verify came back %+v", v)
		}
	}
	if !found {
		t.Fatal("no stuck bit landed in the spare stripe after 512 worn rows")
	}
}

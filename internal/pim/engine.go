package pim

import (
	"fmt"

	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// Engine adapts the Pinatubo controller to the workload.Engine interface
// used by the evaluation. It prices every request by actually executing it
// on a controller against template operand placements, so the figures and
// the functional model can never drift apart.
//
// The variant's one-step OR depth distinguishes "Pinatubo-2" (pairwise only,
// what STT-MRAM-class sensing would give) from "Pinatubo-128" (the PCM
// multi-row configuration). Requests wider than the depth are chained
// through an accumulator row, paying the intermediate writebacks — exactly
// why the paper's multi-row operations win.
type Engine struct {
	ctl      *Controller
	maxRows  int
	channels int
	// cache memoises OpCost by spec: evaluation traces repeat identical
	// requests thousands of times, and the controller execution that
	// prices a spec is deterministic.
	cache map[costKey]workload.Cost
}

// costKey identifies a request for memoisation.
type costKey struct {
	op        sense.Op
	operands  int
	bits      int
	placement workload.Placement
	groups    string
}

func keyFor(spec workload.OpSpec) costKey {
	k := costKey{
		op:        spec.Op,
		operands:  spec.Operands,
		bits:      spec.Bits,
		placement: spec.Placement,
	}
	if spec.Groups != nil {
		var sb []byte
		for _, g := range spec.Groups {
			sb = fmt.Appendf(sb, "%d,", g)
		}
		k.groups = string(sb)
	}
	return k
}

// NewEngine builds a Pinatubo engine on a fresh memory of the given
// technology with the default geometry. maxRows caps the one-step OR depth
// (it is additionally clamped to the technology's sensing limit).
func NewEngine(tech nvm.Tech, maxRows int) (*Engine, error) {
	return NewEngineWithGeometry(tech, maxRows, memarch.Default())
}

// NewEngineWithGeometry is NewEngine with an explicit memory organisation —
// the hook the ablation studies use to sweep the column-mux ratio and
// subarray shape.
func NewEngineWithGeometry(tech nvm.Tech, maxRows int, geo memarch.Geometry) (*Engine, error) {
	mem, err := memarch.NewMemory(geo, nvm.Get(tech))
	if err != nil {
		return nil, err
	}
	ctl, err := NewController(mem, 0) // pricing engine: skip analog sampling
	if err != nil {
		return nil, err
	}
	if maxRows < 2 {
		return nil, fmt.Errorf("pim: engine needs maxRows >= 2, got %d", maxRows)
	}
	if lim := ctl.MaxORRows(); maxRows > lim {
		maxRows = lim
	}
	return &Engine{
		ctl:      ctl,
		maxRows:  maxRows,
		channels: geo.Channels,
		cache:    make(map[costKey]workload.Cost),
	}, nil
}

// Name implements workload.Engine.
func (e *Engine) Name() string { return fmt.Sprintf("Pinatubo-%d", e.maxRows) }

// MaxRows returns the engine's one-step OR depth.
func (e *Engine) MaxRows() int { return e.maxRows }

// Parallelism implements workload.Engine: one in-flight PIM op per channel
// (multi-row activation is power hungry; one rank operates at a time).
func (e *Engine) Parallelism() float64 { return float64(e.channels) }

// templates returns the operand addresses and destination for a placement.
// The address generators guarantee pairwise-distinct rows and the intended
// placement class for any count the engine produces.
func (e *Engine) srcAddr(p workload.Placement, i int) memarch.RowAddr {
	geo := e.ctl.Memory().Geometry()
	switch p {
	case workload.PlaceIntra:
		return memarch.RowAddr{Bank: 0, Subarray: 0, Row: i % (geo.RowsPerSubarray - 2)}
	case workload.PlaceInterSub:
		nsub := geo.SubarraysPerBank - 1
		return memarch.RowAddr{Bank: 0, Subarray: 1 + i%nsub, Row: i / nsub}
	default: // PlaceInterBank
		nb := geo.BanksPerChip
		return memarch.RowAddr{Bank: i % nb, Subarray: 1 + (i/nb)%(geo.SubarraysPerBank-1), Row: i / (nb * (geo.SubarraysPerBank - 1))}
	}
}

func (e *Engine) dstAddr(p workload.Placement) memarch.RowAddr {
	geo := e.ctl.Memory().Geometry()
	switch p {
	case workload.PlaceIntra:
		return memarch.RowAddr{Bank: 0, Subarray: 0, Row: geo.RowsPerSubarray - 1}
	case workload.PlaceInterSub:
		return memarch.RowAddr{Bank: 0, Subarray: 0, Row: 0}
	default:
		return memarch.RowAddr{Bank: 0, Subarray: 0, Row: 0}
	}
}

// accAddr is the accumulator row for chained requests.
func (e *Engine) accAddr(p workload.Placement) memarch.RowAddr {
	geo := e.ctl.Memory().Geometry()
	a := e.dstAddr(p)
	a.Row = geo.RowsPerSubarray - 2
	return a
}

// exec runs one controller op and converts its result to a cost.
func (e *Engine) exec(op sense.Op, srcs []memarch.RowAddr, bits int, dst memarch.RowAddr) (workload.Cost, error) {
	res, err := e.ctl.Execute(op, srcs, bits, &dst)
	if err != nil {
		return workload.Cost{}, err
	}
	return workload.Cost{Seconds: res.Seconds, Joules: res.Energy.Total()}, nil
}

// OpCost implements workload.Engine.
func (e *Engine) OpCost(spec workload.OpSpec) (workload.Cost, error) {
	if err := spec.Validate(); err != nil {
		return workload.Cost{}, err
	}
	key := keyFor(spec)
	if c, ok := e.cache[key]; ok {
		return c, nil
	}
	rowBits := e.ctl.Memory().Geometry().RowBits()
	var total workload.Cost
	remaining := spec.Bits
	for remaining > 0 {
		bits := remaining
		if bits > rowBits {
			bits = rowBits
		}
		remaining -= bits
		c, err := e.batchCost(spec, bits)
		if err != nil {
			return workload.Cost{}, err
		}
		total.Add(c)
	}
	e.cache[key] = total
	return total, nil
}

// batchCost prices one row-sized batch of the request.
func (e *Engine) batchCost(spec workload.OpSpec, bits int) (workload.Cost, error) {
	dst := e.dstAddr(spec.Placement)
	var total workload.Cost

	switch spec.Op {
	case sense.OpINV, sense.OpRead:
		c, err := e.exec(spec.Op, []memarch.RowAddr{e.srcAddr(spec.Placement, 0)}, bits, dst)
		if err != nil {
			return workload.Cost{}, err
		}
		total.Add(c)

	case sense.OpAND, sense.OpXOR:
		// Pairwise chain: (a op b) op c ... through the accumulator.
		acc := e.accAddr(spec.Placement)
		for k := 1; k < spec.Operands; k++ {
			a := e.srcAddr(spec.Placement, k-1)
			if k > 1 {
				a = acc
			}
			b := e.srcAddr(spec.Placement, k)
			out := acc
			if k == spec.Operands-1 {
				out = dst
			}
			c, err := e.exec(spec.Op, []memarch.RowAddr{a, b}, bits, out)
			if err != nil {
				return workload.Cost{}, err
			}
			total.Add(c)
		}

	case sense.OpOR:
		if spec.Groups != nil && len(spec.Groups) > 1 {
			return e.groupedOR(spec, bits)
		}
		if spec.Placement == workload.PlaceIntra {
			return e.chainedIntraOR(spec.Operands, bits)
		}
		// Inter paths read operands serially anyway; issue in request-cap
		// chunks through the accumulator.
		acc := e.accAddr(spec.Placement)
		done := 0
		first := true
		for done < spec.Operands {
			take := spec.Operands - done
			if max := InterORLimit; first && take > max {
				take = max
			} else if !first && take > InterORLimit-1 {
				take = InterORLimit - 1
			}
			srcs := make([]memarch.RowAddr, 0, take+1)
			if !first {
				srcs = append(srcs, acc)
			}
			for i := 0; i < take; i++ {
				srcs = append(srcs, e.srcAddr(spec.Placement, done+i))
			}
			out := acc
			if done+take == spec.Operands {
				out = e.dstAddr(spec.Placement)
			}
			c, err := e.exec(sense.OpOR, srcs, bits, out)
			if err != nil {
				return workload.Cost{}, err
			}
			total.Add(c)
			done += take
			first = false
		}

	default:
		return workload.Cost{}, fmt.Errorf("pim: engine cannot price op %v", spec.Op)
	}
	return total, nil
}

// groupedOR prices a scheduler-partitioned OR: each subarray-local group
// collapses with an intra-subarray multi-row OR (free for single-operand
// groups — the row itself is the partial result), then the per-group
// partial rows combine over the inter-subarray/bank path.
func (e *Engine) groupedOR(spec workload.OpSpec, bits int) (workload.Cost, error) {
	var total workload.Cost
	for _, g := range spec.Groups {
		if g < 2 {
			continue
		}
		c, err := e.chainedIntraOR(g, bits)
		if err != nil {
			return workload.Cost{}, err
		}
		total.Add(c)
	}
	combine := workload.OpSpec{
		Op:        sense.OpOR,
		Operands:  len(spec.Groups),
		Bits:      bits,
		Placement: spec.Placement,
	}
	if combine.Operands < 2 {
		return total, nil
	}
	c, err := e.batchCost(combine, bits)
	if err != nil {
		return workload.Cost{}, err
	}
	total.Add(c)
	return total, nil
}

// chainedIntraOR prices an n-operand intra-subarray OR at the engine's
// one-step depth, chaining through an accumulator when n exceeds it.
func (e *Engine) chainedIntraOR(n, bits int) (workload.Cost, error) {
	var total workload.Cost
	acc := e.accAddr(workload.PlaceIntra)
	dst := e.dstAddr(workload.PlaceIntra)

	take := n
	if take > e.maxRows {
		take = e.maxRows
	}
	srcs := make([]memarch.RowAddr, 0, e.maxRows)
	for i := 0; i < take; i++ {
		srcs = append(srcs, e.srcAddr(workload.PlaceIntra, i))
	}
	out := acc
	if take == n {
		out = dst
	}
	c, err := e.exec(sense.OpOR, srcs, bits, out)
	if err != nil {
		return workload.Cost{}, err
	}
	total.Add(c)
	done := take
	for done < n {
		take = n - done
		if take > e.maxRows-1 {
			take = e.maxRows - 1
		}
		srcs = srcs[:0]
		srcs = append(srcs, acc)
		for i := 0; i < take; i++ {
			srcs = append(srcs, e.srcAddr(workload.PlaceIntra, done+i))
		}
		out = acc
		if done+take == n {
			out = dst
		}
		c, err := e.exec(sense.OpOR, srcs, bits, out)
		if err != nil {
			return workload.Cost{}, err
		}
		total.Add(c)
		done += take
	}
	return total, nil
}

var _ workload.Engine = (*Engine)(nil)

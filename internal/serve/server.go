package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"pinatubo"
)

// Config configures a Server.
type Config struct {
	// System is the simulator the server fronts. The server's state loop
	// becomes its owning goroutine; nothing else may touch it while Run
	// is live.
	System *pinatubo.System
	// Arb is the channel arbitration policy windows schedule under.
	Arb pinatubo.Arbiter
	// WindowCap bounds ops per batch window. 0 asks the planner: the cap
	// becomes the live System's saturation point for deep ORs — the
	// concurrency past which more in-flight ops stop paying.
	WindowCap int
	// PlanProbe is the concurrency the sizing plan explores (default 16).
	PlanProbe int
	// ReplanEvery re-derives WindowCap from a fresh Plan every N windows
	// (0 keeps the startup cap; only used when WindowCap was auto-sized).
	ReplanEvery int64
	// QueueLimit bounds the total backlog (queued requests across
	// tenants) before the admission controller sheds load. 0 defaults to
	// 8 windows' worth.
	QueueLimit int
}

// Server is pinatubod's core: a single state-loop goroutine that owns the
// System and pipelines batch windows. Requests admitted while window N's
// shards execute are validated, footprinted and sharded into window
// N+1's builder; at the window boundary the finished shards merge, the
// queues drain fairly, and the next window launches. Connection
// goroutines never touch the System — they only move Requests in and
// Responses out.
type Server struct {
	sys         *pinatubo.System
	arb         pinatubo.Arbiter
	windowCap   int
	autoCap     bool
	planProbe   int
	replanEvery int64
	queueLimit  int

	reqCh chan envelope
	now   func() time.Time

	// State-loop-owned fields — no locking, single goroutine. The
	// pinlint:owned directives make the convention machine-checked:
	// loopowner flags any access outside Run's call tree or from a
	// goroutine-reachable function.
	tenants  map[string]*tenant     //pinlint:owned Run
	builder  *pinatubo.BatchBuilder //pinlint:owned Run
	pending  []windowOp             //pinlint:owned Run
	run      *pinatubo.BatchRun     //pinlint:owned Run
	running  []windowOp             //pinlint:owned Run
	windowID int64                  //pinlint:owned Run
	queued   int                    //pinlint:owned Run

	mu  sync.Mutex
	met *metricsState
}

// New sizes the admission window (consulting the System's planner when
// Config.WindowCap is 0) and returns a ready Server. Run starts serving.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("serve: Config.System is nil")
	}
	s := &Server{
		sys:         cfg.System,
		arb:         cfg.Arb,
		windowCap:   cfg.WindowCap,
		planProbe:   cfg.PlanProbe,
		replanEvery: cfg.ReplanEvery,
		queueLimit:  cfg.QueueLimit,
		reqCh:       make(chan envelope, 256),
		now:         time.Now,
		tenants:     make(map[string]*tenant),
	}
	if s.planProbe < 1 {
		s.planProbe = 16
	}
	if s.windowCap < 1 {
		s.autoCap = true
		cap, err := s.planCap()
		if err != nil {
			return nil, err
		}
		s.windowCap = cap
	}
	if s.queueLimit < 1 {
		s.queueLimit = s.windowCap * 8
	}
	s.builder = s.sys.NewBatchBuilder()
	s.met = newMetricsState(s.now())
	s.met.windowCap = s.windowCap
	return s, nil
}

// planCap asks the live System's planner for the deep-OR saturation
// point. Plan runs entirely on sandboxes, so sizing never disturbs the
// simulator's state — the server can re-plan between windows.
func (s *Server) planCap() (int, error) {
	rep, err := s.sys.Plan(pinatubo.OpOr, s.planProbe, 0, pinatubo.WithArbiter(s.arb))
	if err != nil {
		return 0, fmt.Errorf("serve: sizing window: %w", err)
	}
	if rep.SaturationPoint < 1 {
		return 1, nil
	}
	return rep.SaturationPoint, nil
}

// Metrics snapshots the server's sustained-throughput and fairness
// figures. Safe from any goroutine.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.met.snapshot(s.now())
}

// metric runs one mutation of the metrics state under the lock.
func (s *Server) metric(f func(*metricsState)) {
	s.mu.Lock()
	f(s.met)
	s.mu.Unlock()
}

// Run is the state loop. It owns the System until it returns: requests
// arrive over the channel, windows launch and land, and on ctx
// cancellation the in-flight window is discarded all-or-nothing (its
// sandboxes never merge) and every waiting request is answered with an
// error.
func (s *Server) Run(ctx context.Context) error {
	for {
		var done <-chan struct{}
		if s.run != nil {
			done = s.run.Done()
		}
		select {
		case <-ctx.Done():
			s.shutdown()
			return ctx.Err()
		case env := <-s.reqCh:
			s.handle(ctx, env)
		case <-done:
			s.boundary(ctx)
		}
	}
}

// Serve accepts connections until the listener closes or ctx is
// cancelled, handing each to HandleConn. Callers run the state loop
// (Run) themselves.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		s.HandleConn(conn)
	}
}

// HandleConn attaches one client connection: a reader goroutine decodes
// line-delimited JSON requests into the state loop, and a writer
// goroutine drains the connection's outbox. Responses to a request may
// arrive out of line-order (ops answer at window boundaries); clients
// match on ID.
func (s *Server) HandleConn(conn net.Conn) {
	ob := newOutbox()
	go func() {
		defer conn.Close()
		enc := json.NewEncoder(conn)
		for {
			resp, ok := ob.pop()
			if !ok {
				return
			}
			if err := enc.Encode(resp); err != nil {
				ob.discard()
				return
			}
		}
	}()
	go func() {
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		var received int64
		for sc.Scan() {
			line := sc.Bytes()
			received++
			var req Request
			if err := json.Unmarshal(line, &req); err != nil {
				ob.push(Response{Error: fmt.Sprintf("serve: bad request: %v", err)})
				continue
			}
			s.reqCh <- envelope{req: req, out: ob}
		}
		// EOF only half-closes: a pipe client may have sent its whole
		// script and still be reading, so the writer stays until every
		// received request has been answered (each request gets exactly
		// one response — at admission, a window boundary, a drain, or
		// shutdown).
		ob.closeAfter(received)
	}()
}

// tenantFor returns (creating on first use) the tenant named by the
// request. The empty tenant name is a valid single-tenant default.
func (s *Server) tenantFor(name string) *tenant {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{name: name, vecs: make(map[string]*pinatubo.BitVector)}
		s.tenants[name] = t
	}
	return t
}

// handle admits one request: stats answer immediately; host-path
// requests run now when their tenant is idle and no window is executing,
// else queue behind the tenant's earlier traffic; ops join the next
// window up to the cap and the tenant's fair share, then queue, then
// shed once the backlog passes the limit.
func (s *Server) handle(ctx context.Context, env envelope) {
	req := env.req
	switch req.Type {
	case "stats":
		m := s.Metrics()
		env.out.push(Response{ID: req.ID, OK: true, Stats: &m})
		return
	case "alloc", "write", "read", "free":
		t := s.tenantFor(req.Tenant)
		if s.run == nil && t.idle() {
			s.execHost(t, env)
			return
		}
		s.enqueue(t, env)
	case "op":
		t := s.tenantFor(req.Tenant)
		if len(t.queue) > 0 {
			// Earlier requests of this tenant are still queued; jumping
			// past them would break per-tenant program order.
			s.enqueue(t, env)
			return
		}
		if s.run == nil {
			// Idle: the op opens a window immediately; ops arriving while
			// it executes will accumulate into the next one.
			if s.admitOp(t, env) {
				s.startWindow(ctx)
			}
			return
		}
		if s.builder.Len() < s.windowCap && t.pendingOps < s.tenantShare(t) {
			s.admitOp(t, env)
			return
		}
		s.enqueue(t, env)
	default:
		env.out.push(Response{ID: req.ID, Error: fmt.Sprintf("serve: unknown request type %q", req.Type)})
	}
}

// enqueue appends to the tenant's FIFO, shedding when the server-wide
// backlog has passed the limit — the admission controller's load-
// shedding rung.
func (s *Server) enqueue(t *tenant, env envelope) {
	if s.queued >= s.queueLimit {
		env.out.push(Response{ID: env.req.ID, Shed: true,
			Error: "serve: saturated, request shed"})
		s.metric(func(m *metricsState) {
			m.opsShed++
			m.tenant(t.name).Shed++
		})
		return
	}
	t.queue = append(t.queue, env)
	s.queued++
}

// tenantShare is the per-tenant slot budget of the next window: the cap
// split across currently contending tenants, at least 1.
func (s *Server) tenantShare(t *tenant) int {
	active := 0
	for _, other := range s.tenants {
		if other == t || other.contending() {
			active++
		}
	}
	if active < 1 {
		active = 1
	}
	share := s.windowCap / active
	if share < 1 {
		share = 1
	}
	return share
}

// admitOp resolves the op's vectors, validates it through the builder
// (footprint + incremental sharding) and records who to answer at the
// window boundary.
func (s *Server) admitOp(t *tenant, env envelope) bool {
	op, err := s.buildOp(t, env.req)
	if err != nil {
		env.out.push(Response{ID: env.req.ID, Error: err.Error()})
		return false
	}
	if err := s.builder.Add(op); err != nil {
		env.out.push(Response{ID: env.req.ID, Error: err.Error()})
		return false
	}
	s.pending = append(s.pending, windowOp{t: t, env: env})
	t.pendingOps++
	s.metric(func(m *metricsState) { m.tenant(t.name).Admitted++ })
	return true
}

// buildOp maps wire vector names onto the tenant's arena.
func (s *Server) buildOp(t *tenant, req Request) (pinatubo.BatchOp, error) {
	op, err := parseOp(req.Op)
	if err != nil {
		return pinatubo.BatchOp{}, err
	}
	dst, ok := t.vecs[req.Dst]
	if !ok {
		return pinatubo.BatchOp{}, fmt.Errorf("serve: unknown vector %q", req.Dst)
	}
	srcs := make([]*pinatubo.BitVector, len(req.Srcs))
	for i, name := range req.Srcs {
		v, ok := t.vecs[name]
		if !ok {
			return pinatubo.BatchOp{}, fmt.Errorf("serve: unknown vector %q", name)
		}
		srcs[i] = v
	}
	return pinatubo.BatchOp{Op: op, Dst: dst, Srcs: srcs}, nil
}

// startWindow launches the accumulated builder as the next window. On a
// launch error every pending op is answered with it and the builder is
// rebuilt empty.
func (s *Server) startWindow(ctx context.Context) {
	if s.builder.Len() == 0 {
		return
	}
	run, err := s.builder.Start(pinatubo.WithArbiter(s.arb), pinatubo.WithContext(ctx))
	if err != nil {
		for _, w := range s.pending {
			w.t.pendingOps--
			w.env.out.push(Response{ID: w.env.req.ID, Error: err.Error()})
		}
		s.pending = nil
		s.builder = s.sys.NewBatchBuilder()
		return
	}
	s.windowID++
	s.run = run
	s.running = s.pending
	s.pending = nil
	for _, w := range s.running {
		w.t.pendingOps--
		w.t.inflight++
	}
}

// boundary lands a finished window: merge (inside Wait), answer its ops,
// optionally re-plan the cap, drain the queues fairly into the next
// builder and launch it.
func (s *Server) boundary(ctx context.Context) {
	br, err := s.run.Wait()
	s.run = nil
	running := s.running
	s.running = nil
	if err != nil {
		for _, w := range running {
			w.t.inflight--
			w.env.out.push(Response{ID: w.env.req.ID, Error: err.Error()})
		}
	} else {
		for i, w := range running {
			w.t.inflight--
			res := br.Results[i]
			w.env.out.push(Response{
				ID:        w.env.req.ID,
				OK:        true,
				Window:    s.windowID,
				LatencyNS: int64(br.Completion[i]),
				Class:     res.Class.String(),
				Count:     res.Count,
			})
		}
		perf := s.sys.PerfStats()
		s.metric(func(m *metricsState) {
			m.windows++
			m.opsDone += int64(len(running))
			m.simSeconds += br.Makespan.Seconds()
			m.windowLatencies = append(m.windowLatencies, br.Makespan)
			for i := range running {
				m.opLatencies = append(m.opLatencies, br.Completion[i])
			}
			m.perf = perf
		})
		if s.autoCap && s.replanEvery > 0 && s.windowID%s.replanEvery == 0 {
			if cap, err := s.planCap(); err == nil {
				s.windowCap = cap
				s.metric(func(m *metricsState) { m.windowCap = cap })
			}
		}
	}
	s.drain(ctx)
	s.startWindow(ctx)
}

// drain moves queued requests forward at a window boundary: round-robin
// over tenants in name order, one request per tenant per round, host
// requests running in place (no window is executing here) and ops
// filling the next builder up to the cap and each tenant's share.
func (s *Server) drain(ctx context.Context) {
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for progress := true; progress; {
		progress = false
		for _, name := range names {
			t := s.tenants[name]
			if len(t.queue) == 0 {
				continue
			}
			env := t.queue[0]
			if env.req.Type == "op" {
				if s.builder.Len() >= s.windowCap || t.pendingOps >= s.tenantShare(t) {
					continue
				}
				t.queue = t.queue[1:]
				s.queued--
				s.admitOp(t, env)
				progress = true
				continue
			}
			// Host-path request: runs only once every earlier op of the
			// tenant has left the builder and completed.
			if t.pendingOps > 0 || t.inflight > 0 {
				continue
			}
			t.queue = t.queue[1:]
			s.queued--
			s.execHost(t, env)
			progress = true
		}
	}
}

// execHost runs one host-path request on the live System. Only called
// when no window is executing and the tenant has no earlier traffic in
// flight, so the request observes and produces exactly the sequential
// program-order state.
func (s *Server) execHost(t *tenant, env envelope) {
	req := env.req
	s.metric(func(m *metricsState) {
		m.hostOps++
		m.tenant(t.name).HostOps++
	})
	fail := func(err error) {
		env.out.push(Response{ID: req.ID, Error: err.Error()})
	}
	switch req.Type {
	case "alloc":
		if _, exists := t.vecs[req.Name]; exists {
			fail(fmt.Errorf("serve: vector %q already allocated", req.Name))
			return
		}
		v, err := s.sys.Alloc(req.Bits)
		if err != nil {
			fail(err)
			return
		}
		t.vecs[req.Name] = v
		env.out.push(Response{ID: req.ID, OK: true})
	case "write":
		v, ok := t.vecs[req.Name]
		if !ok {
			fail(fmt.Errorf("serve: unknown vector %q", req.Name))
			return
		}
		words, err := decodeWords(req.Words)
		if err != nil {
			fail(err)
			return
		}
		res, err := s.sys.Write(v, words)
		if err != nil {
			fail(err)
			return
		}
		env.out.push(Response{ID: req.ID, OK: true,
			LatencyNS: int64(res.Latency), Class: res.Class.String()})
	case "read":
		v, ok := t.vecs[req.Name]
		if !ok {
			fail(fmt.Errorf("serve: unknown vector %q", req.Name))
			return
		}
		words, res, err := s.sys.Read(v)
		if err != nil {
			fail(err)
			return
		}
		env.out.push(Response{ID: req.ID, OK: true, Words: encodeWords(words),
			LatencyNS: int64(res.Latency), Class: res.Class.String()})
	case "free":
		v, ok := t.vecs[req.Name]
		if !ok {
			fail(fmt.Errorf("serve: unknown vector %q", req.Name))
			return
		}
		if err := s.sys.Free(v); err != nil {
			fail(err)
			return
		}
		delete(t.vecs, req.Name)
		env.out.push(Response{ID: req.ID, OK: true})
	}
}

// shutdown answers everything still waiting after ctx cancellation. The
// in-flight window's Wait returns the context error without merging, so
// the System holds exactly the state of the last landed window.
func (s *Server) shutdown() {
	if s.run != nil {
		br, err := s.run.Wait()
		s.run = nil
		for i, w := range s.running {
			w.t.inflight--
			if err != nil {
				w.env.out.push(Response{ID: w.env.req.ID, Error: "serve: shutting down"})
				continue
			}
			// The window finished (and merged) before the cancellation
			// landed; its ops deserve their real answers.
			res := br.Results[i]
			w.env.out.push(Response{ID: w.env.req.ID, OK: true, Window: s.windowID,
				LatencyNS: int64(br.Completion[i]), Class: res.Class.String(), Count: res.Count})
		}
		s.running = nil
	}
	for _, w := range s.pending {
		w.t.pendingOps--
		w.env.out.push(Response{ID: w.env.req.ID, Error: "serve: shutting down"})
	}
	s.pending = nil
	s.builder = s.sys.NewBatchBuilder()
	for _, t := range s.tenants {
		for _, env := range t.queue {
			env.out.push(Response{ID: env.req.ID, Error: "serve: shutting down"})
		}
		s.queued -= len(t.queue)
		t.queue = nil
	}
}

// outbox is an unbounded per-connection response queue: the state loop
// pushes without ever blocking on a slow client, and the connection's
// writer goroutine drains in order.
type outbox struct {
	mu     sync.Mutex
	queue  []Response
	signal chan struct{}
	// eof is set when the reader stops; expected is how many requests it
	// received, sent how many responses the writer has dequeued. The
	// writer exits once eof && sent == expected.
	eof      bool
	expected int64
	sent     int64
	dead     bool
}

func newOutbox() *outbox {
	return &outbox{signal: make(chan struct{}, 1)}
}

func (o *outbox) push(r Response) {
	o.mu.Lock()
	if o.dead {
		o.mu.Unlock()
		return
	}
	o.queue = append(o.queue, r)
	o.mu.Unlock()
	select {
	case o.signal <- struct{}{}:
	default:
	}
}

// pop blocks for the next response; ok=false means the connection is
// done — every request received before EOF has had its response
// delivered (or a write error killed the connection).
func (o *outbox) pop() (Response, bool) {
	for {
		o.mu.Lock()
		if len(o.queue) > 0 {
			r := o.queue[0]
			o.queue = o.queue[1:]
			o.sent++
			o.mu.Unlock()
			return r, true
		}
		done := o.dead || (o.eof && o.sent >= o.expected)
		o.mu.Unlock()
		if done {
			return Response{}, false
		}
		<-o.signal
	}
}

// closeAfter marks that no further requests will arrive (reader saw
// EOF) after expected requests in total; the writer exits once each has
// been answered.
func (o *outbox) closeAfter(expected int64) {
	o.mu.Lock()
	o.eof = true
	o.expected = expected
	o.mu.Unlock()
	select {
	case o.signal <- struct{}{}:
	default:
	}
}

// discard drops the outbox after a write error: future pushes are no-ops.
func (o *outbox) discard() {
	o.mu.Lock()
	o.dead = true
	o.queue = nil
	o.mu.Unlock()
	select {
	case o.signal <- struct{}{}:
	default:
	}
}

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/bits"
	"math/rand"
	"net"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"pinatubo"
)

// serveGeometry spreads consecutive operand groups across banks (one
// subarray per bank), the layout under which disjoint ops run one per
// shard — which keeps even the float ledger merge bit-identical to
// sequential order.
func serveGeometry() pinatubo.Geometry {
	return pinatubo.Geometry{
		Channels:         1,
		RanksPerChannel:  1,
		ChipsPerRank:     8,
		BanksPerChip:     16,
		SubarraysPerBank: 1,
		MatsPerSubarray:  16,
		RowsPerSubarray:  256,
		MatRowBits:       4096,
		MuxRatio:         32,
	}
}

// collector is a synchronous sink for white-box tests driven on one
// goroutine.
type collector struct {
	resps []Response
}

func (c *collector) push(r Response) { c.resps = append(c.resps, r) }

func (c *collector) byID(id int64) (Response, bool) {
	for _, r := range c.resps {
		if r.ID == id {
			return r, true
		}
	}
	return Response{}, false
}

// driver feeds requests straight into the state machine — no goroutines,
// no timing: admission, window boundaries and drains happen exactly
// where the test puts them.
type driver struct {
	t      *testing.T
	s      *Server
	ctx    context.Context
	nextID int64
}

func newDriver(t *testing.T, cfg Config) (*driver, *Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &driver{t: t, s: s, ctx: context.Background()}, s
}

// send dispatches one request and returns its ID.
func (d *driver) send(out sink, req Request) int64 {
	d.nextID++
	req.ID = d.nextID
	d.s.handle(d.ctx, envelope{req: req, out: out})
	return req.ID
}

// land runs window boundaries until the server is idle.
func (d *driver) land() {
	for d.s.run != nil {
		<-d.s.run.Done()
		d.s.boundary(d.ctx)
	}
}

// mustOK sends and requires an immediate OK response.
func (d *driver) mustOK(out *collector, req Request) Response {
	d.t.Helper()
	id := d.send(out, req)
	r, ok := out.byID(id)
	if !ok {
		d.t.Fatalf("request %d (%s) not answered synchronously", id, req.Type)
	}
	if !r.OK {
		d.t.Fatalf("request %d (%s): %s", id, req.Type, r.Error)
	}
	return r
}

func hexWords(rng *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = strconv.FormatUint(rng.Uint64(), 16)
	}
	return out
}

// TestServeDifferential pins the pipelined window server to the
// sequential baseline: a scripted request stream — allocs, writes, ops
// spread across several pipelined windows, reads — produces responses
// and a final System state bit-identical to a twin executing the same
// program through Alloc/Write/Apply/Read in arrival order. Runs clean
// and with a fault injector attached.
func TestServeDifferential(t *testing.T) {
	cases := []struct {
		name string
		cfg  pinatubo.Config
	}{
		{"pcm", pinatubo.Config{Tech: pinatubo.PCM, Geometry: serveGeometry()}},
		{"pcm-faulty-readback", pinatubo.Config{Tech: pinatubo.PCM, Geometry: serveGeometry(),
			Resilience: pinatubo.ResilienceConfig{Verify: pinatubo.VerifyReadback},
			Fault:      pinatubo.FaultConfig{Seed: 3, SenseFlipRate: 1e-3, ActivationFailRate: 1e-4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := pinatubo.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			twin, err := pinatubo.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			d, srv := newDriver(t, Config{System: sys, WindowCap: 4})
			out := &collector{}

			const bits = 4096
			words := (bits + 63) / 64
			rngA := rand.New(rand.NewSource(11))
			rngB := rand.New(rand.NewSource(11))

			// One operand group per op so ops land in distinct banks. The
			// twin allocates in the same order, so rows match exactly.
			type opSpec struct {
				op   string
				nsrc int
			}
			specs := []opSpec{{"or", 4}, {"and", 2}, {"xor", 2}, {"not", 1}, {"copy", 1}, {"popcount", 0}}
			type built struct {
				spec  opSpec
				names []string // srcs then dst
				dst   *pinatubo.BitVector
				srcs  []*pinatubo.BitVector
			}
			var all []built
			for gi, spec := range specs {
				b := built{spec: spec}
				tg, err := twin.AllocGroup(spec.nsrc+1, bits)
				if err != nil {
					t.Fatal(err)
				}
				for vi := 0; vi <= spec.nsrc; vi++ {
					name := fmt.Sprintf("v%d_%d", gi, vi)
					b.names = append(b.names, name)
					d.mustOK(out, Request{Type: "alloc", Name: name, Bits: bits})
					data := hexWords(rngA, words)
					d.mustOK(out, Request{Type: "write", Name: name, Words: data})
					tdata := hexWords(rngB, words)
					dw, err := decodeWords(tdata)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := twin.Write(tg[vi], dw); err != nil {
						t.Fatal(err)
					}
				}
				b.dst = tg[spec.nsrc]
				b.srcs = tg[:spec.nsrc]
				all = append(all, b)
			}

			// Ops: the first opens a window; the rest are admitted while it
			// (and its successors) execute — pipelined windows of up to 4.
			opIDs := make([]int64, len(all))
			for i, b := range all {
				req := Request{Type: "op", Op: b.spec.op, Dst: b.names[b.spec.nsrc]}
				for _, n := range b.names[:b.spec.nsrc] {
					req.Srcs = append(req.Srcs, n)
				}
				opIDs[i] = d.send(out, req)
			}
			d.land()

			// Twin executes the same ops in arrival order.
			wantRes := make([]pinatubo.Result, len(all))
			for i, b := range all {
				res, err := twin.Apply(parseOpOrDie(t, b.spec.op), b.dst, b.srcs)
				if err != nil {
					t.Fatal(err)
				}
				wantRes[i] = res
			}

			for i, id := range opIDs {
				r, ok := out.byID(id)
				if !ok {
					t.Fatalf("op %d never answered", i)
				}
				if !r.OK {
					t.Fatalf("op %d failed: %s", i, r.Error)
				}
				if r.Window == 0 {
					t.Errorf("op %d missing window id", i)
				}
				if r.Class != wantRes[i].Class.String() {
					t.Errorf("op %d class %q, want %q", i, r.Class, wantRes[i].Class)
				}
				if (r.Count == nil) != (wantRes[i].Count == nil) {
					t.Errorf("op %d count presence mismatch", i)
				} else if r.Count != nil && *r.Count != *wantRes[i].Count {
					t.Errorf("op %d count %d, want %d", i, *r.Count, *wantRes[i].Count)
				}
			}

			// Contents: read every vector back over the wire; the twin reads
			// in the same order (Read draws a fault substream too, so order
			// matters under injection).
			for _, b := range all {
				tvecs := append(append([]*pinatubo.BitVector{}, b.srcs...), b.dst)
				for vi, name := range b.names {
					r := d.mustOK(out, Request{Type: "read", Name: name})
					tw, _, err := twin.Read(tvecs[vi])
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(r.Words, encodeWords(tw)) {
						t.Errorf("vector %s: served contents diverge from sequential twin", name)
					}
				}
			}

			// Ledgers, bit for bit — the full bit-identity acceptance.
			if a, b := sys.Stats(), twin.Stats(); !reflect.DeepEqual(a, b) {
				t.Errorf("Stats diverge: served %+v, sequential %+v", a, b)
			}
			if a, b := sys.HardwareCounters(), twin.HardwareCounters(); !reflect.DeepEqual(a, b) {
				t.Errorf("HardwareCounters diverge: served %+v, sequential %+v", a, b)
			}
			if a, b := sys.FaultStats(), twin.FaultStats(); a != b {
				t.Errorf("FaultStats diverge: served %+v, sequential %+v", a, b)
			}

			m := srv.Metrics()
			if m.OpsDone != int64(len(all)) {
				t.Errorf("OpsDone=%d, want %d", m.OpsDone, len(all))
			}
			if m.Windows < 2 {
				t.Errorf("Windows=%d, want pipelined execution across >=2 windows", m.Windows)
			}
			if m.SimOpsPerSec <= 0 || m.Latency.P99 <= 0 || m.WindowLatency.P50 <= 0 {
				t.Errorf("metrics not populated: %+v", m)
			}
		})
	}
}

func parseOpOrDie(t *testing.T, name string) pinatubo.Op {
	t.Helper()
	op, err := parseOp(name)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// TestServeFairness drives two tenants at 10:1 offered load through a
// fixed window cap and checks the admission controller keeps the light
// tenant within its fair share: windows serving both backlogs split
// slots within 2x of even, and the light tenant drains long before the
// heavy one. Fully scripted — deterministic by construction.
func TestServeFairness(t *testing.T) {
	sys, err := pinatubo.New(pinatubo.Config{Tech: pinatubo.PCM, Geometry: serveGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	const cap = 8
	d, srv := newDriver(t, Config{System: sys, WindowCap: cap, QueueLimit: 1 << 20})

	outs := map[string]*collector{"heavy": {}, "light": {}}
	const bits = 4096
	rng := rand.New(rand.NewSource(5))
	for _, tenant := range []string{"heavy", "light"} {
		for _, name := range []string{"src", "dst"} {
			d.mustOK(outs[tenant], Request{Tenant: tenant, Type: "alloc", Name: name, Bits: bits})
			d.mustOK(outs[tenant], Request{Tenant: tenant, Type: "write", Name: name,
				Words: hexWords(rng, (bits+63)/64)})
		}
	}

	// 10:1 offered load, interleaved: heavy sends 10 ops for every light
	// op. 80 heavy + 8 light.
	ids := map[string][]int64{}
	op := func(tenant string) {
		ids[tenant] = append(ids[tenant], d.send(outs[tenant],
			Request{Tenant: tenant, Type: "op", Op: "not", Dst: "dst", Srcs: []string{"src"}}))
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 10; j++ {
			op("heavy")
		}
		op("light")
	}
	d.land()

	// Every op answered OK.
	windowOf := func(tenant string, id int64) int64 {
		r, ok := outs[tenant].byID(id)
		if !ok || !r.OK {
			t.Fatalf("%s op %d: %+v", tenant, id, r)
		}
		return r.Window
	}
	slots := map[int64]map[string]int{}
	lastWindow := map[string]int64{}
	for tenant, tids := range ids {
		for _, id := range tids {
			w := windowOf(tenant, id)
			if slots[w] == nil {
				slots[w] = map[string]int{}
			}
			slots[w][tenant]++
			if w > lastWindow[tenant] {
				lastWindow[tenant] = w
			}
		}
	}

	// While both tenants were backlogged — every window up to the light
	// tenant's last — slots split within 2x of even.
	for w, byTenant := range slots {
		if w >= lastWindow["light"] || byTenant["light"] == 0 {
			continue
		}
		ratio := float64(byTenant["heavy"]) / float64(byTenant["light"])
		if ratio > 2 {
			t.Errorf("window %d: heavy/light slot ratio %.1f (%d:%d), want <= 2",
				w, ratio, byTenant["heavy"], byTenant["light"])
		}
	}
	// The light tenant's 8 ops fit in its fair share of the first few
	// windows; the heavy tenant's 80 keep going long after.
	if lastWindow["light"] >= lastWindow["heavy"] {
		t.Errorf("light tenant finished at window %d, heavy at %d — no fairness",
			lastWindow["light"], lastWindow["heavy"])
	}
	if lastWindow["light"] > 5 {
		t.Errorf("light tenant's 8 ops took until window %d, want <= 5", lastWindow["light"])
	}

	m := srv.Metrics()
	if m.Tenants["heavy"].Admitted != 80 || m.Tenants["light"].Admitted != 8 {
		t.Errorf("admission ledger %+v, want 80/8", m.Tenants)
	}
}

// TestServeShedding checks the backlog bound: once queued requests pass
// QueueLimit, new ops are answered Shed instead of queued, and every op
// is accounted exactly once (done or shed).
func TestServeShedding(t *testing.T) {
	sys, err := pinatubo.New(pinatubo.Config{Tech: pinatubo.PCM, Geometry: serveGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	d, srv := newDriver(t, Config{System: sys, WindowCap: 2, QueueLimit: 4})
	out := &collector{}
	const bits = 4096
	d.mustOK(out, Request{Type: "alloc", Name: "src", Bits: bits})
	d.mustOK(out, Request{Type: "alloc", Name: "dst", Bits: bits})
	d.mustOK(out, Request{Type: "write", Name: "src",
		Words: hexWords(rand.New(rand.NewSource(1)), (bits+63)/64)})

	const offered = 20
	ids := make([]int64, offered)
	for i := range ids {
		ids[i] = d.send(out, Request{Type: "op", Op: "copy", Dst: "dst", Srcs: []string{"src"}})
	}
	d.land()

	done, shed := 0, 0
	for i, id := range ids {
		r, ok := out.byID(id)
		if !ok {
			t.Fatalf("op %d unanswered", i)
		}
		switch {
		case r.OK:
			done++
		case r.Shed:
			shed++
		default:
			t.Fatalf("op %d neither done nor shed: %+v", i, r)
		}
	}
	if done+shed != offered {
		t.Fatalf("done %d + shed %d != offered %d", done, shed, offered)
	}
	if shed == 0 {
		t.Fatal("no ops shed past a 4-deep backlog at window cap 2")
	}
	m := srv.Metrics()
	if m.OpsShed != int64(shed) || m.OpsDone != int64(done) {
		t.Errorf("metrics %d/%d, responses %d/%d", m.OpsDone, m.OpsShed, done, shed)
	}
}

// TestServeConcurrentClients is the end-to-end smoke under -race: a live
// Run loop, real connections (net.Pipe), concurrent clients in separate
// goroutines issuing allocs, writes, pipelined ops and reads — every
// response OK and every OR result verified against a host-side model.
func TestServeConcurrentClients(t *testing.T) {
	sys, err := pinatubo.New(pinatubo.Config{Tech: pinatubo.PCM, Geometry: serveGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{System: sys, WindowCap: 8, QueueLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx) }()

	const clients = 8
	const bits = 2048
	words := (bits + 63) / 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cliConn, srvConn := net.Pipe()
			srv.HandleConn(srvConn)
			defer cliConn.Close()
			cli := newTestClient(cliConn)
			tenant := fmt.Sprintf("client-%d", c)
			rng := rand.New(rand.NewSource(int64(100 + c)))

			a := make([]uint64, words)
			b := make([]uint64, words)
			for i := range a {
				a[i], b[i] = rng.Uint64(), rng.Uint64()
			}
			for _, step := range []Request{
				{Tenant: tenant, Type: "alloc", Name: "a", Bits: bits},
				{Tenant: tenant, Type: "alloc", Name: "b", Bits: bits},
				{Tenant: tenant, Type: "alloc", Name: "out", Bits: bits},
				{Tenant: tenant, Type: "write", Name: "a", Words: encodeWords(a)},
				{Tenant: tenant, Type: "write", Name: "b", Words: encodeWords(b)},
			} {
				if _, err := cli.call(step); err != nil {
					errs <- fmt.Errorf("client %d %s: %w", c, step.Type, err)
					return
				}
			}
			for round := 0; round < 4; round++ {
				if _, err := cli.call(Request{Tenant: tenant, Type: "op", Op: "or",
					Dst: "out", Srcs: []string{"a", "b"}}); err != nil {
					errs <- fmt.Errorf("client %d or: %w", c, err)
					return
				}
				pc, err := cli.call(Request{Tenant: tenant, Type: "op", Op: "popcount", Dst: "out"})
				if err != nil {
					errs <- fmt.Errorf("client %d popcount: %w", c, err)
					return
				}
				wantPC := 0
				for i := range a {
					wantPC += bits_OnesCount64(a[i] | b[i])
				}
				if pc.Count == nil || *pc.Count != wantPC {
					errs <- fmt.Errorf("client %d round %d: popcount %v, want %d", c, round, pc.Count, wantPC)
					return
				}
			}
			rd, err := cli.call(Request{Tenant: tenant, Type: "read", Name: "out"})
			if err != nil {
				errs <- fmt.Errorf("client %d read: %w", c, err)
				return
			}
			got, err := decodeWords(rd.Words)
			if err != nil {
				errs <- err
				return
			}
			for i := range a {
				if got[i] != a[i]|b[i] {
					errs <- fmt.Errorf("client %d: word %d = %x, want %x", c, i, got[i], a[i]|b[i])
					return
				}
			}
			st, err := cli.call(Request{Tenant: tenant, Type: "stats"})
			if err != nil {
				errs <- fmt.Errorf("client %d stats: %w", c, err)
				return
			}
			if st.Stats == nil || st.Stats.OpsDone == 0 {
				errs <- fmt.Errorf("client %d: empty stats %+v", c, st.Stats)
				return
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := srv.Metrics()
	if m.OpsDone != clients*8 {
		t.Errorf("OpsDone=%d, want %d", m.OpsDone, clients*8)
	}
	cancel()
	select {
	case err := <-runDone:
		if err != context.Canceled {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not exit on cancel")
	}
}

// bits_OnesCount64 keeps the math/bits dependency in one place.
func bits_OnesCount64(x uint64) int { return bits.OnesCount64(x) }

// testClient is a blocking RPC view of the line protocol: send one
// request, read responses until the matching ID arrives.
type testClient struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	next int64
}

func newTestClient(conn net.Conn) *testClient {
	return &testClient{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

func (c *testClient) call(req Request) (Response, error) {
	c.next++
	req.ID = c.next
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	for {
		var resp Response
		if err := c.dec.Decode(&resp); err != nil {
			return Response{}, err
		}
		if resp.ID != req.ID {
			continue
		}
		if !resp.OK {
			return resp, fmt.Errorf("%s", resp.Error)
		}
		return resp, nil
	}
}

package serve

import (
	"sort"
	"time"

	"pinatubo"
)

// TenantMetrics is one tenant's share of the server's work.
type TenantMetrics struct {
	// Admitted counts ops that made it into a batch window.
	Admitted int64 `json:"admitted"`
	// Shed counts ops rejected by the admission controller past
	// saturation.
	Shed int64 `json:"shed"`
	// HostOps counts alloc/write/read/free requests served.
	HostOps int64 `json:"host_ops"`
}

// Metrics is a snapshot of the server's sustained behaviour. Simulated
// figures come from the scheduler's clock (the sum of window makespans);
// wall figures from the host clock.
type Metrics struct {
	// Windows is the number of batch windows executed.
	Windows int64 `json:"windows"`
	// WindowCap is the admission controller's current window size — the
	// planner's live saturation point.
	WindowCap int `json:"window_cap"`
	// OpsDone / OpsShed count admitted-and-completed vs shed ops.
	OpsDone int64 `json:"ops_done"`
	OpsShed int64 `json:"ops_shed"`
	// HostOps counts host-path requests (alloc/write/read/free).
	HostOps int64 `json:"host_ops"`
	// SimSeconds is the accumulated simulated channel time of every
	// window; SimOpsPerSec is OpsDone over it — the sustained in-memory
	// throughput the windows achieved.
	SimSeconds   float64 `json:"sim_seconds"`
	SimOpsPerSec float64 `json:"sim_ops_per_sec"`
	// WallOpsPerSec is OpsDone over host wall time since the server
	// started serving.
	WallOpsPerSec float64 `json:"wall_ops_per_sec"`
	// Latency spreads per-op completion times inside their windows
	// (simulated, nearest-rank percentiles).
	Latency pinatubo.LatencyStats `json:"latency"`
	// WindowLatency spreads window makespans (simulated).
	WindowLatency pinatubo.LatencyStats `json:"window_latency"`
	// Program-cache and sandbox-pool counters from the System's PerfStats,
	// snapshotted at each window boundary — the raw-speed observability of
	// the simulator itself (cached and uncached runs are bit-identical).
	ProgramCacheHits   int64 `json:"program_cache_hits"`
	ProgramCacheMisses int64 `json:"program_cache_misses"`
	SandboxPoolGets    int64 `json:"sandbox_pool_gets"`
	SandboxPoolReuses  int64 `json:"sandbox_pool_reuses"`
	// Tenants breaks admission down per tenant — the fairness ledger.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
}

// metricsState accumulates raw samples on the state loop; snapshots are
// computed on demand.
type metricsState struct {
	windows    int64
	windowCap  int
	opsDone    int64
	opsShed    int64
	hostOps    int64
	simSeconds float64
	started    time.Time

	opLatencies     []time.Duration
	windowLatencies []time.Duration
	perf            pinatubo.PerfStats
	tenants         map[string]*TenantMetrics
}

func newMetricsState(now time.Time) *metricsState {
	return &metricsState{started: now, tenants: make(map[string]*TenantMetrics)}
}

func (m *metricsState) tenant(name string) *TenantMetrics {
	tm, ok := m.tenants[name]
	if !ok {
		tm = &TenantMetrics{}
		m.tenants[name] = tm
	}
	return tm
}

// snapshot renders the accumulated samples as a Metrics value.
func (m *metricsState) snapshot(now time.Time) Metrics {
	out := Metrics{
		Windows:    m.windows,
		WindowCap:  m.windowCap,
		OpsDone:    m.opsDone,
		OpsShed:    m.opsShed,
		HostOps:    m.hostOps,
		SimSeconds: m.simSeconds,
		Latency:    latencyStats(m.opLatencies),
		Tenants:    make(map[string]TenantMetrics, len(m.tenants)),
	}
	out.WindowLatency = latencyStats(m.windowLatencies)
	out.ProgramCacheHits = m.perf.ProgramCacheHits
	out.ProgramCacheMisses = m.perf.ProgramCacheMisses
	out.SandboxPoolGets = m.perf.SandboxPoolGets
	out.SandboxPoolReuses = m.perf.SandboxPoolReuses
	if m.simSeconds > 0 {
		out.SimOpsPerSec = float64(m.opsDone) / m.simSeconds
	}
	if wall := now.Sub(m.started).Seconds(); wall > 0 {
		out.WallOpsPerSec = float64(m.opsDone) / wall
	}
	for name, tm := range m.tenants {
		out.Tenants[name] = *tm
	}
	return out
}

// latencyStats pools samples into nearest-rank percentiles, the same
// summary shape the planner reports.
func latencyStats(samples []time.Duration) pinatubo.LatencyStats {
	if len(samples) == 0 {
		return pinatubo.LatencyStats{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	return pinatubo.LatencyStats{
		P50:  rank(0.50),
		P99:  rank(0.99),
		Mean: sum / time.Duration(len(sorted)),
		Max:  sorted[len(sorted)-1],
	}
}

// Package serve implements pinatubod's batch-window service front-end: a
// persistent server that accepts streams of bulk bitwise-op requests from
// many concurrent clients, admission-controls them into batch windows,
// and executes each window through the System's pipelined BatchBuilder —
// window N+1 is admitted, validated and sharded while window N's shards
// are still running. A single state-loop goroutine owns the System;
// connection goroutines only decode requests and encode responses, so
// the simulator itself never needs a lock.
package serve

import (
	"fmt"
	"strconv"
	"strings"

	"pinatubo"
)

// Request is one line-delimited JSON request. Type selects the verb:
//
//	alloc    — allocate vector Name with Bits bits in the tenant's arena
//	write    — store Words (hex) into vector Name
//	read     — load vector Name back as hex words
//	free     — release vector Name
//	op       — queue Op (or|and|xor|not|copy|popcount) with Dst/Srcs
//	           vector names for the next batch window
//	stats    — snapshot the server's metrics
//
// Tenant namespaces the vector arena; requests from one tenant execute in
// the order sent (FIFO), while ops from different tenants share batch
// windows.
type Request struct {
	ID     int64    `json:"id"`
	Tenant string   `json:"tenant,omitempty"`
	Type   string   `json:"type"`
	Name   string   `json:"name,omitempty"`
	Bits   int      `json:"bits,omitempty"`
	Words  []string `json:"words,omitempty"`
	Op     string   `json:"op,omitempty"`
	Dst    string   `json:"dst,omitempty"`
	Srcs   []string `json:"srcs,omitempty"`
}

// Response is the reply to one Request, matched by ID. Ops answered at a
// window boundary carry the window sequence number and the op's
// completion latency inside the window's schedule.
type Response struct {
	ID        int64    `json:"id"`
	OK        bool     `json:"ok"`
	Error     string   `json:"error,omitempty"`
	Shed      bool     `json:"shed,omitempty"`
	Window    int64    `json:"window,omitempty"`
	LatencyNS int64    `json:"latency_ns,omitempty"`
	Class     string   `json:"class,omitempty"`
	Count     *int     `json:"count,omitempty"`
	Words     []string `json:"words,omitempty"`
	Stats     *Metrics `json:"stats,omitempty"`
}

// parseOp maps the wire spelling onto the public Op, accepting exactly
// the String() forms.
func parseOp(name string) (pinatubo.Op, error) {
	switch strings.ToLower(name) {
	case "or":
		return pinatubo.OpOr, nil
	case "and":
		return pinatubo.OpAnd, nil
	case "xor":
		return pinatubo.OpXor, nil
	case "not":
		return pinatubo.OpNot, nil
	case "copy":
		return pinatubo.OpCopy, nil
	case "popcount":
		return pinatubo.OpPopcount, nil
	default:
		return 0, fmt.Errorf("serve: unknown op %q", name)
	}
}

// encodeWords renders vector words as hex strings — JSON numbers cannot
// carry 64-bit values losslessly.
func encodeWords(words []uint64) []string {
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = strconv.FormatUint(w, 16)
	}
	return out
}

// decodeWords parses hex word strings.
func decodeWords(words []string) ([]uint64, error) {
	out := make([]uint64, len(words))
	for i, s := range words {
		w, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: word %d: %v", i, err)
		}
		out[i] = w
	}
	return out, nil
}

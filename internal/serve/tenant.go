package serve

import "pinatubo"

// sink receives responses for one client connection. The network path
// implements it with an unbounded outbox drained by a writer goroutine;
// tests implement it with a slice collector.
type sink interface {
	push(Response)
}

// envelope pairs a decoded request with the connection it answers to.
type envelope struct {
	req Request
	out sink
}

// tenant is one namespace's state, owned by the state loop. A tenant's
// requests execute in the order sent: ops from one tenant enter windows
// in FIFO order, and host-path requests (alloc/write/read/free) wait
// until every earlier op of the tenant has completed — the per-tenant
// program-order guarantee that makes window pipelining invisible.
type tenant struct {
	name string
	vecs map[string]*pinatubo.BitVector
	// queue holds requests not yet admitted, in arrival order.
	queue []envelope
	// pendingOps counts this tenant's ops admitted to the next window's
	// builder; inflight counts its ops inside the executing window.
	pendingOps int
	inflight   int
}

// contending reports whether the tenant is competing for window slots —
// the denominator of the fair-share calculation.
func (t *tenant) contending() bool {
	return t.pendingOps > 0 || t.inflight > 0 || len(t.queue) > 0
}

// idle reports whether a host-path request may run right now without
// reordering against the tenant's earlier ops.
func (t *tenant) idle() bool {
	return t.pendingOps == 0 && t.inflight == 0 && len(t.queue) == 0
}

// windowOp tracks one admitted op through its window, aligned index-for-
// index with the builder's ops.
type windowOp struct {
	t   *tenant
	env envelope
}

// Package imgproc implements the image-processing workload family the
// paper motivates (its citation [6]: Bruce et al., fast color segmentation
// for interactive robots): threshold-based color-class segmentation over
// per-channel bit masks.
//
// The classic trick stores, per channel, one bitmap per threshold bucket;
// a color class (e.g. "ball orange") is the AND of three channel-range
// masks, and composite classes (e.g. "any field marking") are ORs of class
// masks — all bulk bitwise operations over pixel bitmaps, which is exactly
// the structure Pinatubo accelerates. A 512×512 frame's mask is 2^18 bits:
// half a rank row.
package imgproc

import (
	"fmt"
	"math/rand"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// Image is a planar 3-channel (YUV-style) image.
type Image struct {
	W, H int
	// Chan[c][y*W+x] is channel c's value for the pixel.
	Chan [3][]uint8
}

// Pixels returns the pixel count.
func (im *Image) Pixels() int { return im.W * im.H }

// NewImage allocates a zero image.
func NewImage(w, h int) (*Image, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("imgproc: bad dimensions %dx%d", w, h)
	}
	im := &Image{W: w, H: h}
	for c := range im.Chan {
		im.Chan[c] = make([]uint8, w*h)
	}
	return im, nil
}

// Blob is a synthetic colored region.
type Blob struct {
	CX, CY, R int      // disc centre and radius in pixels
	Color     [3]uint8 // channel values inside the disc
}

// Synthetic renders a frame with background noise and the given blobs —
// the robot-soccer scene of the Bruce et al. setting.
func Synthetic(w, h int, blobs []Blob, seed int64) (*Image, error) {
	im, err := NewImage(w, h)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range im.Chan[0] {
		im.Chan[0][i] = uint8(40 + rng.Intn(30)) // dim noisy background
		im.Chan[1][i] = uint8(110 + rng.Intn(20))
		im.Chan[2][i] = uint8(110 + rng.Intn(20))
	}
	for _, b := range blobs {
		for dy := -b.R; dy <= b.R; dy++ {
			for dx := -b.R; dx <= b.R; dx++ {
				if dx*dx+dy*dy > b.R*b.R {
					continue
				}
				x, y := b.CX+dx, b.CY+dy
				if x < 0 || y < 0 || x >= w || y >= h {
					continue
				}
				for c := 0; c < 3; c++ {
					// Small per-pixel jitter keeps thresholds honest.
					jitter := int(b.Color[c]) + rng.Intn(7) - 3
					if jitter < 0 {
						jitter = 0
					}
					if jitter > 255 {
						jitter = 255
					}
					im.Chan[c][y*w+x] = uint8(jitter)
				}
			}
		}
	}
	return im, nil
}

// ChannelMask returns the bitmap of pixels with lo <= channel value <= hi.
func (im *Image) ChannelMask(channel int, lo, hi uint8) (*bitvec.Vector, error) {
	if channel < 0 || channel >= 3 {
		return nil, fmt.Errorf("imgproc: channel %d", channel)
	}
	if lo > hi {
		return nil, fmt.Errorf("imgproc: empty range [%d,%d]", lo, hi)
	}
	v := bitvec.New(im.Pixels())
	for i, val := range im.Chan[channel] {
		if val >= lo && val <= hi {
			v.Set(i)
		}
	}
	return v, nil
}

// ColorClass is a threshold box in channel space.
type ColorClass struct {
	Name string
	Lo   [3]uint8
	Hi   [3]uint8
}

// Contains reports whether a pixel's channel triple falls in the class box.
func (c ColorClass) Contains(p [3]uint8) bool {
	for i := 0; i < 3; i++ {
		if p[i] < c.Lo[i] || p[i] > c.Hi[i] {
			return false
		}
	}
	return true
}

// CPUWork prices the segmentation's non-bitwise part: building the channel
// masks (one pass over the pixels per threshold) and extracting connected
// regions from the final mask.
type CPUWork struct {
	SecPerPixel float64 // threshold one pixel while building a channel mask
	SecPerWord  float64 // scan one word of a result mask
	PowerW      float64
}

// DefaultCPUWork returns the evaluation constants.
func DefaultCPUWork() CPUWork {
	return CPUWork{SecPerPixel: 1e-9, SecPerWord: 1e-9, PowerW: 65}
}

func (c CPUWork) charge(tr *workload.Trace, seconds float64) {
	if tr == nil {
		return
	}
	tr.Other.Seconds += seconds
	tr.Other.Joules += seconds * c.PowerW
}

// Segment computes the class membership mask: the AND of the three
// channel-range masks. Channel-mask construction is CPU work; the two ANDs
// are bulk ops.
func Segment(im *Image, class ColorClass, cpu CPUWork, tr *workload.Trace) (*bitvec.Vector, error) {
	bits := im.Pixels()
	var masks [3]*bitvec.Vector
	for c := 0; c < 3; c++ {
		m, err := im.ChannelMask(c, class.Lo[c], class.Hi[c])
		if err != nil {
			return nil, err
		}
		masks[c] = m
		cpu.charge(tr, float64(bits)*cpu.SecPerPixel)
	}
	out := masks[0].Clone()
	for _, m := range masks[1:] {
		if tr != nil {
			tr.Append(workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: bits})
		}
		out.And(out, m)
	}
	cpu.charge(tr, float64(bitvec.WordsFor(bits))*cpu.SecPerWord)
	return out, nil
}

// Union ORs several class masks into a composite mask (one multi-row OR).
func Union(masks []*bitvec.Vector, cpu CPUWork, tr *workload.Trace) (*bitvec.Vector, error) {
	if len(masks) == 0 {
		return nil, fmt.Errorf("imgproc: union of no masks")
	}
	bits := masks[0].Len()
	for i, m := range masks[1:] {
		if m.Len() != bits {
			return nil, fmt.Errorf("imgproc: mask %d length %d vs %d", i+1, m.Len(), bits)
		}
	}
	out := bitvec.New(bits)
	out.OrAll(masks...)
	if tr != nil && len(masks) >= 2 {
		tr.Append(workload.OpSpec{
			Op: sense.OpOR, Operands: len(masks), Bits: bits,
			Placement: workload.PlaceIntra, // masks are allocated as a group
		})
	}
	cpu.charge(tr, float64(bitvec.WordsFor(bits))*cpu.SecPerWord)
	return out, nil
}

// BruteForceSegment classifies each pixel directly (validation oracle).
func BruteForceSegment(im *Image, class ColorClass) *bitvec.Vector {
	v := bitvec.New(im.Pixels())
	for i := 0; i < im.Pixels(); i++ {
		p := [3]uint8{im.Chan[0][i], im.Chan[1][i], im.Chan[2][i]}
		if class.Contains(p) {
			v.Set(i)
		}
	}
	return v
}

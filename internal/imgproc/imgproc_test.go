package imgproc

import (
	"testing"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

var (
	orange = ColorClass{Name: "ball", Lo: [3]uint8{180, 140, 160}, Hi: [3]uint8{255, 200, 220}}
	green  = ColorClass{Name: "field", Lo: [3]uint8{80, 60, 60}, Hi: [3]uint8{140, 110, 110}}
)

func testScene(t *testing.T) *Image {
	t.Helper()
	im, err := Synthetic(256, 256, []Blob{
		{CX: 64, CY: 64, R: 20, Color: [3]uint8{220, 170, 190}},   // orange ball
		{CX: 180, CY: 120, R: 35, Color: [3]uint8{100, 80, 80}},   // green patch
		{CX: 200, CY: 220, R: 10, Color: [3]uint8{220, 170, 190}}, // second ball
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestNewImageErrors(t *testing.T) {
	if _, err := NewImage(0, 5); err == nil {
		t.Error("zero width accepted")
	}
}

func TestChannelMask(t *testing.T) {
	im, err := NewImage(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	im.Chan[1] = []uint8{10, 50, 100, 200}
	m, err := im.ChannelMask(1, 40, 150)
	if err != nil {
		t.Fatal(err)
	}
	if m.Popcount() != 2 || !m.Get(1) || !m.Get(2) {
		t.Errorf("mask wrong: %v", m)
	}
	if _, err := im.ChannelMask(5, 0, 1); err == nil {
		t.Error("bad channel accepted")
	}
	if _, err := im.ChannelMask(0, 9, 3); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestSegmentMatchesBruteForce(t *testing.T) {
	im := testScene(t)
	tr := &workload.Trace{}
	for _, class := range []ColorClass{orange, green} {
		got, err := Segment(im, class, DefaultCPUWork(), tr)
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForceSegment(im, class)
		if !got.Equal(want) {
			t.Fatalf("%s: segmentation differs from per-pixel classification", class.Name)
		}
		if got.Popcount() == 0 {
			t.Fatalf("%s: empty mask — scene generator broken?", class.Name)
		}
	}
	// Two ANDs per class.
	ands := 0
	for _, op := range tr.Ops {
		if op.Op == sense.OpAND {
			ands++
		}
		if err := op.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if ands != 4 {
		t.Errorf("%d AND ops want 4", ands)
	}
	if tr.Other.Seconds <= 0 {
		t.Error("no CPU work charged")
	}
}

func TestBallsAndFieldDisjoint(t *testing.T) {
	im := testScene(t)
	cpu := DefaultCPUWork()
	ball, err := Segment(im, orange, cpu, nil)
	if err != nil {
		t.Fatal(err)
	}
	field, err := Segment(im, green, cpu, nil)
	if err != nil {
		t.Fatal(err)
	}
	overlap := bitvec.New(ball.Len())
	overlap.And(ball, field)
	if overlap.Any() {
		t.Error("ball and field masks overlap")
	}
}

func TestUnion(t *testing.T) {
	im := testScene(t)
	cpu := DefaultCPUWork()
	ball, _ := Segment(im, orange, cpu, nil)
	field, _ := Segment(im, green, cpu, nil)
	tr := &workload.Trace{}
	all, err := Union([]*bitvec.Vector{ball, field}, cpu, tr)
	if err != nil {
		t.Fatal(err)
	}
	if all.Popcount() != ball.Popcount()+field.Popcount() {
		t.Error("union popcount mismatch for disjoint masks")
	}
	if len(tr.Ops) != 1 || tr.Ops[0].Op != sense.OpOR || tr.Ops[0].Operands != 2 {
		t.Errorf("union trace wrong: %+v", tr.Ops)
	}
	if _, err := Union(nil, cpu, nil); err == nil {
		t.Error("empty union accepted")
	}
	if _, err := Union([]*bitvec.Vector{ball, bitvec.New(4)}, cpu, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(64, 64, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(64, 64, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		for i := range a.Chan[c] {
			if a.Chan[c][i] != b.Chan[c][i] {
				t.Fatal("same seed, different frames")
			}
		}
	}
}

func TestColorClassContains(t *testing.T) {
	c := ColorClass{Lo: [3]uint8{10, 20, 30}, Hi: [3]uint8{20, 30, 40}}
	if !c.Contains([3]uint8{15, 25, 35}) {
		t.Error("interior point rejected")
	}
	if c.Contains([3]uint8{5, 25, 35}) || c.Contains([3]uint8{15, 25, 45}) {
		t.Error("exterior point accepted")
	}
}

func BenchmarkSegment512(b *testing.B) {
	im, err := Synthetic(512, 512, []Blob{{CX: 100, CY: 100, R: 40, Color: [3]uint8{220, 170, 190}}}, 1)
	if err != nil {
		b.Fatal(err)
	}
	cpu := DefaultCPUWork()
	b.SetBytes(int64(im.Pixels()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Segment(im, orange, cpu, nil); err != nil {
			b.Fatal(err)
		}
	}
}

package analog

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pinatubo/internal/nvm"
)

var cfg = DefaultSenseConfig()

func TestParallelR(t *testing.T) {
	if got := ParallelR(100); got != 100 {
		t.Errorf("ParallelR(100)=%g", got)
	}
	if got := ParallelR(100, 100); math.Abs(got-50) > 1e-9 {
		t.Errorf("ParallelR(100,100)=%g want 50", got)
	}
	if got := ParallelR(100, 100, 100, 100); math.Abs(got-25) > 1e-9 {
		t.Errorf("ParallelR(4x100)=%g want 25", got)
	}
}

func TestParallelRPanics(t *testing.T) {
	for _, bad := range [][]float64{{}, {0}, {-5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ParallelR(%v) did not panic", bad)
				}
			}()
			ParallelR(bad...)
		}()
	}
}

func TestBLResistance(t *testing.T) {
	c := nvm.Get(nvm.PCM).Cell
	// One low cell alone.
	if got := BLResistance(c, 1, 0); got != c.RLow {
		t.Errorf("1 low cell R=%g want %g", got, c.RLow)
	}
	// Rlow || Rhigh.
	want := 1 / (1/c.RLow + 1/c.RHigh)
	if got := BLResistance(c, 1, 1); math.Abs(got-want) > 1e-9 {
		t.Errorf("low||high=%g want %g", got, want)
	}
	// n high cells: Rhigh/n.
	if got := BLResistance(c, 0, 4); math.Abs(got-c.RHigh/4) > 1e-9 {
		t.Errorf("4 high cells=%g want %g", got, c.RHigh/4)
	}
}

func TestReferenceOrdering(t *testing.T) {
	// Fig. 5: Rref-or must sit strictly between the weakest "1" pattern and
	// the strongest "0" pattern, for every operand count we support.
	c := nvm.Get(nvm.PCM).Cell
	for n := 2; n <= 128; n *= 2 {
		r1 := BLResistance(c, 1, n-1)
		r0 := BLResistance(c, 0, n)
		ref := RefOR(c, n)
		if !(r1 < ref && ref < r0) {
			t.Errorf("n=%d: RefOR %g not between %g and %g", n, ref, r1, r0)
		}
	}
	// AND reference between all-ones and one-zero patterns.
	r1 := BLResistance(c, 2, 0)
	r0 := BLResistance(c, 1, 1)
	ref := RefAND(c, 2)
	if !(r1 < ref && ref < r0) {
		t.Errorf("RefAND %g not between %g and %g", ref, r1, r0)
	}
	// Read reference between Rlow and Rhigh.
	if rr := RefRead(c); !(c.RLow < rr && rr < c.RHigh) {
		t.Errorf("RefRead %g outside (%g,%g)", rr, c.RLow, c.RHigh)
	}
}

func TestPaperClaimPCM128RowOR(t *testing.T) {
	// The paper's headline sensing claim: PCM supports up to 128-row OR.
	p := nvm.Get(nvm.PCM)
	n, err := MaxORRows(cfg, p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if n < 128 {
		t.Fatalf("PCM analog OR depth %d, need >= 128", n)
	}
}

func TestPaperClaimReRAMMultiRowOR(t *testing.T) {
	p := nvm.Get(nvm.ReRAM)
	n, err := MaxORRows(cfg, p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if n < 128 {
		t.Fatalf("ReRAM analog OR depth %d, need >= 128", n)
	}
}

func TestPaperClaimSTTShallow(t *testing.T) {
	// The paper conservatively caps STT-MRAM at 2-row operations because of
	// its low ON/OFF ratio. The analog depth must be small (2 or 3), with
	// the architectural cap at 2.
	p := nvm.Get(nvm.STTMRAM)
	n, err := MaxORRows(cfg, p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 || n > 3 {
		t.Fatalf("STT-MRAM analog OR depth %d, want 2..3", n)
	}
	if p.MaxOpenRows != 2 {
		t.Fatalf("STT-MRAM architectural cap %d, want 2", p.MaxOpenRows)
	}
}

func TestPaperClaimNoMultiRowAND(t *testing.T) {
	// Footnote 3: multi-row AND is not supported for n>2 — Rlow/(n-1)||Rhigh
	// is indistinguishable from Rlow/n.
	for _, p := range nvm.All() {
		n, err := MaxANDRows(cfg, p, 16)
		if err != nil {
			t.Fatal(err)
		}
		if n > 2 {
			t.Errorf("%v: analog AND depth %d, paper says max 2", p.Tech, n)
		}
		if p.Tech != nvm.STTMRAM && n != 2 {
			t.Errorf("%v: 2-row AND should resolve, got depth %d", p.Tech, n)
		}
	}
}

func TestMaxRowsDRAMRejected(t *testing.T) {
	if _, err := MaxORRows(cfg, nvm.Get(nvm.DRAM), 8); !errors.Is(err, ErrNotResistive) {
		t.Fatalf("err=%v want ErrNotResistive", err)
	}
	if _, err := MaxANDRows(cfg, nvm.Get(nvm.DRAM), 8); !errors.Is(err, ErrNotResistive) {
		t.Fatalf("err=%v want ErrNotResistive", err)
	}
}

func TestMarginsMonotoneInN(t *testing.T) {
	// More open rows always shrink the OR margin.
	c := nvm.Get(nvm.PCM).Cell
	prev := math.Inf(1)
	for n := 2; n <= 256; n *= 2 {
		m := ORMargin(cfg, c, n)
		if m >= prev {
			t.Fatalf("OR margin not decreasing at n=%d: %g >= %g", n, m, prev)
		}
		prev = m
	}
}

func TestReadMarginHealthy(t *testing.T) {
	for _, p := range nvm.All() {
		if m := ReadMargin(cfg, p.Cell); m < cfg.OffsetTol {
			t.Errorf("%v: read margin %g below offset tolerance", p.Tech, m)
		}
	}
}

func TestSenseORTruthTable(t *testing.T) {
	c := nvm.Get(nvm.PCM).Cell
	cases := []struct {
		cells []bool
		want  bool
	}{
		{[]bool{false, false}, false},
		{[]bool{true, false}, true},
		{[]bool{false, true}, true},
		{[]bool{true, true}, true},
	}
	for _, tc := range cases {
		if got := SenseOR(cfg, c, tc.cells); got != tc.want {
			t.Errorf("SenseOR(%v)=%v want %v", tc.cells, got, tc.want)
		}
	}
}

func TestSenseANDTruthTable(t *testing.T) {
	c := nvm.Get(nvm.PCM).Cell
	cases := []struct {
		cells []bool
		want  bool
	}{
		{[]bool{false, false}, false},
		{[]bool{true, false}, false},
		{[]bool{false, true}, false},
		{[]bool{true, true}, true},
	}
	for _, tc := range cases {
		if got := SenseAND(cfg, c, tc.cells); got != tc.want {
			t.Errorf("SenseAND(%v)=%v want %v", tc.cells, got, tc.want)
		}
	}
}

func TestSenseReadXORINV(t *testing.T) {
	c := nvm.Get(nvm.PCM).Cell
	if !SenseRead(cfg, c, true) || SenseRead(cfg, c, false) {
		t.Error("SenseRead wrong")
	}
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			if got := SenseXOR(cfg, c, a, b); got != (a != b) {
				t.Errorf("SenseXOR(%v,%v)=%v", a, b, got)
			}
		}
		if got := SenseINV(cfg, c, a); got != !a {
			t.Errorf("SenseINV(%v)=%v", a, got)
		}
	}
}

// Property: for any pattern of up to 128 PCM cells with at least 2 cells,
// the analog OR sense agrees with the boolean OR of the pattern.
func TestPropAnalogORMatchesBoolean(t *testing.T) {
	c := nvm.Get(nvm.PCM).Cell
	f := func(seed int64, nSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSeed)%127 + 2
		cells := make([]bool, n)
		want := false
		for i := range cells {
			cells[i] = rng.Intn(2) == 1
			want = want || cells[i]
		}
		return SenseOR(cfg, c, cells) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMonteCarloORCleanAtApprovedDepth(t *testing.T) {
	// At the architecturally approved depths the Monte-Carlo error rate
	// must be zero (the margin analysis is the 4-sigma worst case, so
	// random sampling should never err).
	rng := rand.New(rand.NewSource(42))
	for _, p := range nvm.All() {
		res := MonteCarloOR(cfg, p.Cell, p.MaxOpenRows, 20000, rng)
		if res.Errors != 0 {
			t.Errorf("%v: %d/%d OR sense errors at depth %d",
				p.Tech, res.Errors, res.Trials, p.MaxOpenRows)
		}
	}
}

func TestMonteCarloANDCleanAt2(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, p := range nvm.All() {
		res := MonteCarloAND(cfg, p.Cell, 2, 20000, rng)
		if res.Errors != 0 {
			t.Errorf("%v: %d/%d AND sense errors at depth 2",
				p.Tech, res.Errors, res.Trials)
		}
	}
}

func TestMarginCollapsesBeyondDepth(t *testing.T) {
	// Far beyond the approved depth the worst-case classes overlap outright
	// (negative margin) — the analysis is sensitive to depth, not vacuous.
	c := nvm.Get(nvm.STTMRAM).Cell
	if m := ORMargin(cfg, c, 16); m >= 0 {
		t.Errorf("16-row OR margin on STT-MRAM = %g, want negative (class overlap)", m)
	}
	pcm := nvm.Get(nvm.PCM).Cell
	if m := ORMargin(cfg, pcm, 1024); m >= cfg.OffsetTol {
		t.Errorf("1024-row OR margin on PCM = %g, want below tolerance", m)
	}
}

func TestErrorRate(t *testing.T) {
	if (MonteCarloResult{}).ErrorRate() != 0 {
		t.Error("empty result should have rate 0")
	}
	if got := (MonteCarloResult{Trials: 4, Errors: 1}).ErrorRate(); got != 0.25 {
		t.Errorf("rate=%g want 0.25", got)
	}
}

func TestResolveTimeWithinTCL(t *testing.T) {
	// A nominal 2-row and a 128-row PCM OR must both resolve within tCL,
	// otherwise the timing model's one-sense-step-per-tCL assumption breaks.
	p := nvm.Get(nvm.PCM)
	csa := DefaultCSAParams()
	for _, n := range []int{2, 128} {
		iBL := cfg.VRead / BLResistance(p.Cell, 1, n-1) // weakest "1"
		iRef := cfg.VRead / RefOR(p.Cell, n)
		tr, ok := csa.ResolveTime(iBL, iRef)
		if !ok {
			t.Fatalf("n=%d: latch did not flip", n)
		}
		if tr > p.Timing.TCL {
			t.Errorf("n=%d: resolve time %.3gs exceeds tCL %.3gs", n, tr, p.Timing.TCL)
		}
	}
}

func TestResolveTimeDegradesWithMargin(t *testing.T) {
	csa := DefaultCSAParams()
	tBig, ok1 := csa.ResolveTime(10e-6, 5e-6)
	tSmall, ok2 := csa.ResolveTime(5.05e-6, 5e-6)
	if !ok1 || !ok2 {
		t.Fatal("both should resolve")
	}
	if tSmall <= tBig {
		t.Error("smaller margin should take longer to resolve")
	}
	if _, ok := csa.ResolveTime(5e-6, 5e-6); ok {
		t.Error("zero margin must not resolve")
	}
}

func TestTransientWaveform(t *testing.T) {
	csa := DefaultCSAParams()
	trace, out := csa.Transient(10e-6, 5e-6, 50)
	if !out {
		t.Fatal("iBL > iRef should latch 1")
	}
	if len(trace) != 50 {
		t.Fatalf("trace has %d points want 50", len(trace))
	}
	// Phases must appear in order and all be present.
	seen := map[Phase]bool{}
	last := Phase(-1)
	for _, pt := range trace {
		if pt.Phase < last {
			t.Fatalf("phase went backwards: %v after %v", pt.Phase, last)
		}
		last = pt.Phase
		seen[pt.Phase] = true
	}
	for _, ph := range []Phase{PhaseSample, PhaseAmplify, PhaseSecond} {
		if !seen[ph] {
			t.Errorf("phase %v missing from waveform", ph)
		}
	}
	// Final point carries the latched output at VDD.
	if fin := trace[len(trace)-1]; fin.Out == 0 {
		t.Error("final output should be at VDD")
	}
	// Opposite comparison latches 0.
	trace0, out0 := csa.Transient(2e-6, 5e-6, 10)
	if out0 {
		t.Error("iBL < iRef should latch 0")
	}
	if fin := trace0[len(trace0)-1]; fin.Out != 0 {
		t.Error("final output should be 0")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseSample.String() == "" || Phase(9).String() == "" {
		t.Error("Phase.String empty")
	}
}

func BenchmarkSenseOR128(b *testing.B) {
	c := nvm.Get(nvm.PCM).Cell
	cells := make([]bool, 128)
	cells[17] = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SenseOR(cfg, c, cells)
	}
}

func BenchmarkMonteCarloOR(b *testing.B) {
	c := nvm.Get(nvm.PCM).Cell
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MonteCarloOR(cfg, c, 128, 100, rng)
	}
}

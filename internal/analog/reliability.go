package analog

import (
	"fmt"
	"math"

	"pinatubo/internal/nvm"
)

// This file extends the sensing model with the two PCM reliability effects
// that interact with Pinatubo's multi-row margins and that the paper's
// "we assume the variation is well controlled" sentence sweeps under the
// rug: resistance drift of the amorphous (RESET) state over time, and the
// temperature dependence of both states. Neither breaks the design — drift
// *widens* OR margins (Rhigh grows), and moderate heating shrinks them only
// gradually — but a credible release has to show that, not assert it.

// DriftedCell returns the cell parameters after the RESET state has
// drifted for `seconds` since programming. Amorphous PCM follows the
// canonical power law R(t) = R0 · (t/t0)^ν with ν ≈ 0.05–0.11 and
// t0 = 1 s; the crystalline SET state drifts negligibly (ν ≈ 0.005).
// R0 is the resistance characterised at the t0 = 1 s reference, so times
// below t0 clamp to it: the power law extrapolated below its reference
// would (wrongly) shrink RHigh, and sub-second structural relaxation is
// not what this model models.
func DriftedCell(c nvm.CellParams, seconds float64) (nvm.CellParams, error) {
	if seconds <= 0 {
		return nvm.CellParams{}, fmt.Errorf("analog: drift time %g s must be positive", seconds)
	}
	if seconds < 1 {
		seconds = 1
	}
	const (
		nuReset = 0.08
		nuSet   = 0.005
	)
	out := c
	out.RHigh = c.RHigh * math.Pow(seconds, nuReset)
	out.RLow = c.RLow * math.Pow(seconds, nuSet)
	return out, nil
}

// TemperatureDeratedCell returns the cell parameters at an operating
// temperature offset from the 25 °C characterisation point. Both PCM
// states conduct better when hot (thermally activated transport, Ea ≈
// 0.3 eV for the amorphous state → ~3.9 %/°C raw). Sense references are
// generated from on-die replica cells that see the same temperature, so
// the common-mode dependence cancels; the coefficients here are the
// *residual* mismatch after that tracking (~40% of raw for RESET).
func TemperatureDeratedCell(c nvm.CellParams, deltaC float64) (nvm.CellParams, error) {
	if deltaC < -50 || deltaC > 120 {
		return nvm.CellParams{}, fmt.Errorf("analog: temperature offset %g °C outside -50..120", deltaC)
	}
	const (
		kReset = 0.015 // per °C, residual after replica tracking
		kSet   = 0.003
	)
	out := c
	out.RHigh = c.RHigh * math.Exp(-kReset*deltaC)
	out.RLow = c.RLow * math.Exp(-kSet*deltaC)
	return out, nil
}

// ReliabilityPoint is one entry of a margin-over-condition sweep.
type ReliabilityPoint struct {
	Condition float64 // seconds of drift, or °C offset
	Ratio     float64 // resulting ON/OFF ratio
	Margin128 float64 // worst-case 128-row OR margin
	Depth     int     // margin-limited OR depth at this condition
}

// DriftSweep evaluates the 128-row OR margin across retention times.
func DriftSweep(cfg SenseConfig, p nvm.Params, times []float64) ([]ReliabilityPoint, error) {
	out := make([]ReliabilityPoint, 0, len(times))
	for _, t := range times {
		cell, err := DriftedCell(p.Cell, t)
		if err != nil {
			return nil, err
		}
		pt, err := reliabilityPoint(cfg, p, cell, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// TemperatureSweep evaluates the 128-row OR margin across temperatures.
func TemperatureSweep(cfg SenseConfig, p nvm.Params, offsetsC []float64) ([]ReliabilityPoint, error) {
	out := make([]ReliabilityPoint, 0, len(offsetsC))
	for _, dT := range offsetsC {
		cell, err := TemperatureDeratedCell(p.Cell, dT)
		if err != nil {
			return nil, err
		}
		pt, err := reliabilityPoint(cfg, p, cell, dT)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func reliabilityPoint(cfg SenseConfig, p nvm.Params, cell nvm.CellParams, cond float64) (ReliabilityPoint, error) {
	derated := p
	derated.Cell = cell
	depth, err := MaxORRows(cfg, derated, p.MaxOpenRows)
	if err != nil {
		return ReliabilityPoint{}, err
	}
	return ReliabilityPoint{
		Condition: cond,
		Ratio:     cell.OnOffRatio(),
		Margin128: ORMargin(cfg, cell, 128),
		Depth:     depth,
	}, nil
}

// Majority-vote margin model for the replicated execution mode (the
// PULSAR-style proactive rung of the resilience ladder). Activating the
// operand set R times and majority-voting the R sensed results does not
// change the per-step analog margin — relMargin is scale invariant, so
// opening R·n rows at once gains nothing and would blow the MaxOpenRows
// cap. What voting buys is statistical: a per-bit misresolve of
// probability p survives the vote only if at least ⌈R/2⌉ of the R
// independent sensing steps misresolve the same bit, a binomial tail that
// collapses p ≈ 1e-3 to ≈ 3e-6 for R = 3. This file prices that as an
// *effective* margin so the fault injector and the figures can compare
// replication against depth-splitting in the same currency.
package analog

import (
	"fmt"
	"math"
)

// ValidReplication reports whether r is a legal replication factor for
// majority voting: 0 (disabled) or an odd count in 3..7. Even counts can
// tie and factors past 7 cost more capacity than any margin they buy.
func ValidReplication(r int) bool {
	return r == 0 || (r%2 == 1 && r >= 3 && r <= 7)
}

// MajorityErrProb returns the probability that a bit sensed r times, each
// time misresolving independently with probability p, still comes out
// wrong after a ⌈r/2⌉-of-r majority vote: the upper binomial tail
// P[X ≥ ⌈r/2⌉], X ~ B(r, p). Panics on an invalid replication factor or a
// probability outside [0,1]; r == 0 (voting disabled) returns p unchanged.
func MajorityErrProb(p float64, r int) float64 {
	if !ValidReplication(r) {
		panic(fmt.Sprintf("analog: invalid replication factor %d", r))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("analog: flip probability %g outside 0..1", p))
	}
	if r == 0 {
		return p
	}
	need := r/2 + 1
	tail := 0.0
	for k := need; k <= r; k++ {
		tail += binomialPMF(r, k, p)
	}
	if tail > 1 {
		tail = 1
	}
	return tail
}

// binomialPMF returns C(n,k)·p^k·(1-p)^(n-k) for the tiny n in play here.
func binomialPMF(n, k int, p float64) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c *= float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

// VotedEffectiveMargin converts a raw sensing margin m into the margin a
// single sensing step would need to match the voted error rate. The fault
// injector maps margin to flip probability as p = exp(-(m-tol)/tol) times
// the base rate; inverting that map on the voted tail probability gives
//
//	m_eff = tol·(1 − ln(MajorityErrProb(exp(−(m−tol)/tol), r)))
//
// so a 128-row PCM OR sitting near the margin floor reads as if it had
// several offset tolerances of headroom once triple-voted. With r == 0 the
// margin is returned unchanged. Margins at or below the floor clamp to the
// floor before inversion (the injector saturates there too). Panics on an
// invalid replication factor, like MajorityErrProb.
func VotedEffectiveMargin(cfg SenseConfig, m float64, r int) float64 {
	if !ValidReplication(r) {
		panic(fmt.Sprintf("analog: invalid replication factor %d", r))
	}
	if r == 0 {
		return m
	}
	tol := cfg.OffsetTol
	x := m
	if x < tol {
		x = tol
	}
	p := math.Exp(-(x - tol) / tol)
	pv := MajorityErrProb(p, r)
	if pv <= 0 {
		return math.Inf(1)
	}
	return tol * (1 - math.Log(pv))
}

package analog

import (
	"fmt"
	"math"

	"pinatubo/internal/nvm"
)

// CSAParams describe the transient behaviour of the three-phase current
// sense amplifier (Chang, JSSC'13; the paper's Fig. 1): current sampling
// onto the gate capacitors, current-ratio amplification on the
// cross-coupled pair, and second-stage amplification into the latch.
type CSAParams struct {
	CSample   float64 // sampling capacitor Cs, farads
	CHold     float64 // XOR hold capacitor Ch, farads
	VLatch    float64 // differential voltage at which the latch flips, volts
	TSample   float64 // phase-1 duration, seconds
	TSecond   float64 // phase-3 duration, seconds
	MaxAmplfy float64 // phase-2 timeout, seconds
}

// DefaultCSAParams returns transient parameters sized so that a healthy
// margin resolves well within the PCM tCL of 8.9 ns.
func DefaultCSAParams() CSAParams {
	return CSAParams{
		CSample:   5e-15,  // 5 fF
		CHold:     10e-15, // 10 fF
		VLatch:    0.05,   // 50 mV differential flips the latch
		TSample:   2e-9,
		TSecond:   1.5e-9,
		MaxAmplfy: 20e-9,
	}
}

// ResolveTime returns the total sensing time for a bitline current iBL
// against reference current iRef: sampling + amplification + second stage.
// The amplification phase integrates the current difference onto the
// sampling capacitors until the differential reaches VLatch; a tiny
// difference therefore takes (reportedly) longer, which is how a margin
// violation shows up as a timeout. The returned ok is false if the latch
// does not flip within the phase-2 timeout.
func (p CSAParams) ResolveTime(iBL, iRef float64) (t float64, ok bool) {
	dI := math.Abs(iBL - iRef)
	if dI == 0 {
		return p.TSample + p.MaxAmplfy + p.TSecond, false
	}
	tAmp := p.CSample * p.VLatch / dI
	if tAmp > p.MaxAmplfy {
		return p.TSample + p.MaxAmplfy + p.TSecond, false
	}
	return p.TSample + tAmp + p.TSecond, true
}

// Phase identifies one of the CSA's three sensing phases.
type Phase int

const (
	PhaseSample  Phase = iota // current sampling
	PhaseAmplify              // current-ratio amplification
	PhaseSecond               // 2nd-stage amplification / latch
)

// String names the phase as in Fig. 1.
func (p Phase) String() string {
	switch p {
	case PhaseSample:
		return "current-sampling"
	case PhaseAmplify:
		return "current-ratio amplification"
	case PhaseSecond:
		return "2nd-stage amplification"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// TracePoint is one sample of the transient sensing waveform.
type TracePoint struct {
	T     float64 // seconds since sensing started
	Phase Phase
	VC    float64 // cell-side node voltage
	VR    float64 // reference-side node voltage
	Out   float64 // latched output (0 / VDD), valid after PhaseSecond
}

// Transient simulates the three sensing phases for a bitline current
// against a reference current and returns the waveform sampled at `points`
// instants plus the latched output bit. This reproduces the qualitative
// HSPICE waveforms of Fig. 6 (right).
func (p CSAParams) Transient(iBL, iRef float64, points int) ([]TracePoint, bool) {
	if points < 2 {
		points = 2
	}
	const vdd = 0.8 // matches the 0.8 V rails in the paper's Fig. 6 plot
	tRes, _ := p.ResolveTime(iBL, iRef)
	total := tRes
	out := iBL > iRef
	trace := make([]TracePoint, 0, points)
	for i := 0; i < points; i++ {
		t := total * float64(i) / float64(points-1)
		pt := TracePoint{T: t}
		switch {
		case t <= p.TSample:
			pt.Phase = PhaseSample
			// Both nodes charge toward the common-mode sampling level.
			cm := vdd / 2 * (t / p.TSample)
			pt.VC, pt.VR = cm, cm
		case t <= total-p.TSecond:
			pt.Phase = PhaseAmplify
			// Differential grows linearly with the integrated ΔI.
			dt := t - p.TSample
			dv := (iBL - iRef) * dt / p.CSample
			dv = clamp(dv, -vdd/2, vdd/2)
			pt.VC = vdd/2 + dv/2
			pt.VR = vdd/2 - dv/2
		default:
			pt.Phase = PhaseSecond
			if out {
				pt.VC, pt.VR, pt.Out = vdd, 0, vdd
			} else {
				pt.VC, pt.VR, pt.Out = 0, vdd, 0
			}
		}
		trace = append(trace, pt)
	}
	return trace, out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// SenseXOR performs the two-micro-step XOR of the modified CSA: the first
// operand is read onto the hold capacitor Ch, the second into the latch;
// the two add-on transistors output the exclusive-or (Fig. 6 left). Each
// micro-step is a full single-row read, so XOR costs two sensing steps —
// the timing model charges it accordingly.
func SenseXOR(cfg SenseConfig, c nvm.CellParams, a, b bool) bool {
	first := SenseRead(cfg, c, a)  // micro-step 1: onto Ch
	second := SenseRead(cfg, c, b) // micro-step 2: into the latch
	return first != second
}

// SenseINV reads one row and outputs the latch's differential (inverted)
// value — a single sensing step.
func SenseINV(cfg SenseConfig, c nvm.CellParams, a bool) bool {
	return !SenseRead(cfg, c, a)
}

// XORSteps and INVSteps document the micro-step counts the timing model
// charges for the SA-internal composite operations.
const (
	XORSteps = 2
	INVSteps = 1
)

package analog

import (
	"testing"

	"pinatubo/internal/nvm"
)

func TestDriftWidensORMargins(t *testing.T) {
	// Amorphous-state drift raises Rhigh, so the all-zero pattern gets
	// easier to tell apart from one-hot: multi-row OR margins must not
	// degrade with retention time.
	p := nvm.Get(nvm.PCM)
	prev := ORMargin(cfg, p.Cell, 128)
	for _, secs := range []float64{10, 1e3, 1e6} { // 10 s .. ~12 days
		cell, err := DriftedCell(p.Cell, secs)
		if err != nil {
			t.Fatal(err)
		}
		m := ORMargin(cfg, cell, 128)
		if m < prev {
			t.Errorf("drift to %g s shrank the 128-row margin: %g -> %g", secs, prev, m)
		}
		prev = m
		if cell.RHigh <= p.Cell.RHigh {
			t.Errorf("RESET state did not drift up at %g s", secs)
		}
		// SET state drifts far less.
		if cell.RLow > p.Cell.RLow*1.2 {
			t.Errorf("SET state drifted implausibly at %g s: %g", secs, cell.RLow)
		}
	}
}

func TestDriftErrors(t *testing.T) {
	if _, err := DriftedCell(nvm.Get(nvm.PCM).Cell, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := DriftedCell(nvm.Get(nvm.PCM).Cell, -5); err == nil {
		t.Error("negative time accepted")
	}
}

func TestDriftSubSecondClampsToReference(t *testing.T) {
	// The power law's R0 is characterised at t0 = 1 s; extrapolating below
	// that reference used to *shrink* RHigh (t^ν < 1 for t < 1). Sub-second
	// times must clamp to the fresh cell instead.
	cell := nvm.Get(nvm.PCM).Cell
	for _, secs := range []float64{1e-9, 0.01, 0.5, 0.999} {
		got, err := DriftedCell(cell, secs)
		if err != nil {
			t.Fatalf("t=%g s: %v", secs, err)
		}
		if got.RHigh < cell.RHigh {
			t.Errorf("t=%g s shrank RHigh: %g -> %g", secs, cell.RHigh, got.RHigh)
		}
		ref, err := DriftedCell(cell, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("t=%g s not clamped to the t0=1 s reference: %+v vs %+v", secs, got, ref)
		}
	}
}

func TestHeatShrinksMargins(t *testing.T) {
	// Heating conducts the amorphous state harder, compressing the ON/OFF
	// ratio and hence the deep-OR margin.
	p := nvm.Get(nvm.PCM)
	cold := ORMargin(cfg, p.Cell, 128)
	hot, err := TemperatureDeratedCell(p.Cell, 60)
	if err != nil {
		t.Fatal(err)
	}
	hotMargin := ORMargin(cfg, hot, 128)
	if hotMargin >= cold {
		t.Errorf("+60°C margin %g should be below the 25°C margin %g", hotMargin, cold)
	}
	if hot.OnOffRatio() >= p.Cell.OnOffRatio() {
		t.Error("heating should compress the ON/OFF ratio")
	}
	// But moderate operating temperatures must keep 128-row OR viable
	// (otherwise the architectural cap would need thermal throttling).
	warm, err := TemperatureDeratedCell(p.Cell, 30)
	if err != nil {
		t.Fatal(err)
	}
	derated := p
	derated.Cell = warm
	depth, err := MaxORRows(cfg, derated, 128)
	if err != nil {
		t.Fatal(err)
	}
	if depth < 64 {
		t.Errorf("+30°C OR depth %d — thermal derating too aggressive", depth)
	}
}

func TestTemperatureErrors(t *testing.T) {
	c := nvm.Get(nvm.PCM).Cell
	if _, err := TemperatureDeratedCell(c, -100); err == nil {
		t.Error("-100°C accepted")
	}
	if _, err := TemperatureDeratedCell(c, 200); err == nil {
		t.Error("+200°C accepted")
	}
}

func TestDriftSweepShape(t *testing.T) {
	p := nvm.Get(nvm.PCM)
	pts, err := DriftSweep(cfg, p, []float64{1, 1e3, 1e6, 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Ratio <= pts[i-1].Ratio {
			t.Errorf("ON/OFF ratio not growing with drift at %g s", pts[i].Condition)
		}
		if pts[i].Depth < pts[i-1].Depth {
			t.Errorf("OR depth shrank with drift at %g s", pts[i].Condition)
		}
	}
	if pts[0].Depth < 128 {
		t.Errorf("fresh cells support depth %d, want >= 128", pts[0].Depth)
	}
}

func TestTemperatureSweepShape(t *testing.T) {
	p := nvm.Get(nvm.PCM)
	pts, err := TemperatureSweep(cfg, p, []float64{0, 25, 50, 85})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Margin128 >= pts[i-1].Margin128 {
			t.Errorf("margin not shrinking with temperature at +%g°C", pts[i].Condition)
		}
	}
	// At the hottest automotive-ish corner the depth degrades but the
	// basic 2-row operation must survive.
	hottest := pts[len(pts)-1]
	if hottest.Depth < 2 {
		t.Errorf("+85°C depth %d — even 2-row OR lost", hottest.Depth)
	}
	// Sweep errors propagate.
	if _, err := TemperatureSweep(cfg, p, []float64{500}); err == nil {
		t.Error("out-of-range sweep accepted")
	}
	if _, err := DriftSweep(cfg, p, []float64{-1}); err == nil {
		t.Error("negative drift sweep accepted")
	}
}

// Package analog models Pinatubo's modified current sense amplifier (CSA)
// numerically, standing in for the HSPICE validation in the paper
// (Figs. 5–7).
//
// The model works in current space. Activating n cells on one bitline puts
// their resistances in parallel; the CSA samples the bitline current and
// compares it with a programmable reference current. Pinatubo's change is
// exactly the reference: besides the normal read reference, it adds an OR
// reference (between "all operands 0" and "exactly one operand 1") and an
// AND reference (between "all operands 1" and "exactly one operand 0").
//
// The package provides
//   - the reference placement math (worst-case midpoints),
//   - a sensing-margin analysis with log-normal process variation and a
//     finite SA offset tolerance, which yields the paper's claims: 128-row
//     OR for PCM/ReRAM, 2-row only for STT-MRAM, and no multi-row AND, and
//   - a three-phase transient model of the CSA (current sampling, current
//     ratio amplification, second-stage amplification) used by the examples
//     to render Fig. 6-style waveforms and by the timing model to check the
//     resolve time fits within tCL.
package analog

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"pinatubo/internal/nvm"
)

// SenseConfig sets the robustness requirements of the margin analysis.
type SenseConfig struct {
	// QuantileSigmas is how many sigmas of log-normal resistance spread the
	// worst-case analysis allows for (per cell, applied coherently — the
	// pessimistic assumption).
	QuantileSigmas float64
	// OffsetTol is the minimum relative current-mode margin
	// (Ia-Ib)/(Ia+Ib) that the CSA can resolve, covering its input-referred
	// offset. Chang's JSSC'13 CSA is offset tolerant but not offset free.
	OffsetTol float64
	// VRead is the read voltage applied to the bitline.
	VRead float64
}

// DefaultSenseConfig returns the configuration used throughout the
// evaluation: 4-sigma worst case and a 5% relative offset tolerance.
func DefaultSenseConfig() SenseConfig {
	return SenseConfig{QuantileSigmas: 4, OffsetTol: 0.05, VRead: 0.3}
}

// ErrNotResistive is returned when a charge-based technology (DRAM) is used
// with the resistive sensing model.
var ErrNotResistive = errors.New("analog: technology is not resistive; Pinatubo sensing requires resistance-based cells")

// ParallelR returns the equivalent resistance of resistances in parallel.
// It panics if rs is empty or contains a non-positive resistance.
func ParallelR(rs ...float64) float64 {
	if len(rs) == 0 {
		panic("analog: ParallelR of no resistances")
	}
	g := 0.0
	for _, r := range rs {
		if r <= 0 {
			panic(fmt.Sprintf("analog: non-positive resistance %g", r))
		}
		g += 1 / r
	}
	return 1 / g
}

// BLResistance returns the nominal bitline equivalent resistance when
// `ones` cells in the low-resistance state and `zeros` cells in the
// high-resistance state are activated together. Panics on negative or
// all-zero cell counts — callers derive them from validated row sets.
func BLResistance(c nvm.CellParams, ones, zeros int) float64 {
	if ones < 0 || zeros < 0 || ones+zeros == 0 {
		panic(fmt.Sprintf("analog: bad cell counts ones=%d zeros=%d", ones, zeros))
	}
	g := float64(ones)/c.RLow + float64(zeros)/c.RHigh
	return 1 / g
}

// blCurrent is the nominal bitline current for the given open-cell mix.
func blCurrent(cfg SenseConfig, c nvm.CellParams, ones, zeros int) float64 {
	return cfg.VRead / BLResistance(c, ones, zeros)
}

// worstLow returns the lowest plausible current for the mix (resistances
// inflated by the configured quantile), worstHigh the highest plausible
// current (resistances deflated).
func worstLow(cfg SenseConfig, c nvm.CellParams, ones, zeros int) float64 {
	f := math.Exp(cfg.QuantileSigmas * c.SigmaLog)
	g := float64(ones)/(c.RLow*f) + float64(zeros)/(c.RHigh*f)
	return cfg.VRead * g
}

func worstHigh(cfg SenseConfig, c nvm.CellParams, ones, zeros int) float64 {
	f := math.Exp(-cfg.QuantileSigmas * c.SigmaLog)
	g := float64(ones)/(c.RLow*f) + float64(zeros)/(c.RHigh*f)
	return cfg.VRead * g
}

// relMargin is the relative current margin between a (larger) and b
// (smaller); non-positive means the classes overlap.
func relMargin(a, b float64) float64 { return (a - b) / (a + b) }

// RefRead returns the read reference resistance: the geometric mean of RLow
// and RHigh (Fig. 5a's Rref-read).
func RefRead(c nvm.CellParams) float64 { return math.Sqrt(c.RLow * c.RHigh) }

// RefOR returns the reference resistance for an n-row OR (Fig. 5b's
// Rref-or generalised): the geometric midpoint between the weakest "1"
// pattern (one low cell, n-1 high cells) and the strongest "0" pattern
// (n high cells). Panics for n < 2 — a multi-row reference is meaningless
// below two operands.
func RefOR(c nvm.CellParams, n int) float64 {
	if n < 2 {
		panic(fmt.Sprintf("analog: RefOR needs n>=2, got %d", n))
	}
	r1 := BLResistance(c, 1, n-1) // weakest "1"
	r0 := BLResistance(c, 0, n)   // strongest "0"
	return math.Sqrt(r1 * r0)
}

// RefAND returns the reference resistance for an n-row AND: the geometric
// midpoint between the all-ones pattern and the strongest not-all-ones
// pattern (n-1 low cells, one high cell). Panics for n < 2, like RefOR.
func RefAND(c nvm.CellParams, n int) float64 {
	if n < 2 {
		panic(fmt.Sprintf("analog: RefAND needs n>=2, got %d", n))
	}
	r1 := BLResistance(c, n, 0)   // all ones
	r0 := BLResistance(c, n-1, 1) // weakest "0" case
	return math.Sqrt(r1 * r0)
}

// ORMargin returns the worst-case relative current margin of an n-row OR:
// the gap between the weakest "1" (one low-resistance cell among n-1 high)
// and the strongest "0" (all n high), after process variation. A margin
// below cfg.OffsetTol means the SA cannot resolve the operation reliably.
// Panics for n < 2, like RefOR.
func ORMargin(cfg SenseConfig, c nvm.CellParams, n int) float64 {
	if n < 2 {
		panic(fmt.Sprintf("analog: ORMargin needs n>=2, got %d", n))
	}
	i1 := worstLow(cfg, c, 1, n-1) // weakest "1" current
	i0 := worstHigh(cfg, c, 0, n)  // strongest "0" current
	return relMargin(i1, i0)
}

// ANDMargin returns the worst-case relative current margin of an n-row AND:
// the gap between all-ones and (n-1) ones + one zero. Panics for n < 2,
// like RefOR.
func ANDMargin(cfg SenseConfig, c nvm.CellParams, n int) float64 {
	if n < 2 {
		panic(fmt.Sprintf("analog: ANDMargin needs n>=2, got %d", n))
	}
	i1 := worstLow(cfg, c, n, 0)
	i0 := worstHigh(cfg, c, n-1, 1)
	return relMargin(i1, i0)
}

// ReadMargin returns the single-cell read margin (Fig. 5a).
func ReadMargin(cfg SenseConfig, c nvm.CellParams) float64 {
	i1 := worstLow(cfg, c, 1, 0)
	i0 := worstHigh(cfg, c, 0, 1)
	return relMargin(i1, i0)
}

// MaxORRows returns the largest n (searched up to limit) for which an n-row
// OR still meets the sensing margin, and ErrNotResistive for DRAM. n==1
// means not even a 2-row OR resolves.
func MaxORRows(cfg SenseConfig, p nvm.Params, limit int) (int, error) {
	if !p.Tech.Resistive() {
		return 0, ErrNotResistive
	}
	n := 1
	for k := 2; k <= limit; k++ {
		if ORMargin(cfg, p.Cell, k) < cfg.OffsetTol {
			break
		}
		n = k
	}
	return n, nil
}

// MaxANDRows is the AND counterpart of MaxORRows.
func MaxANDRows(cfg SenseConfig, p nvm.Params, limit int) (int, error) {
	if !p.Tech.Resistive() {
		return 0, ErrNotResistive
	}
	n := 1
	for k := 2; k <= limit; k++ {
		if ANDMargin(cfg, p.Cell, k) < cfg.OffsetTol {
			break
		}
		n = k
	}
	return n, nil
}

// SenseOR resolves an n-row OR for the given cell values through the
// current comparison (not through boolean logic): it draws the nominal
// bitline current for the pattern and compares it against the OR reference.
// Panics on fewer than 2 cells.
func SenseOR(cfg SenseConfig, c nvm.CellParams, cells []bool) bool {
	ones, zeros := countCells(cells)
	if ones+zeros < 2 {
		panic("analog: SenseOR needs at least 2 cells")
	}
	iBL := blCurrent(cfg, c, ones, zeros)
	iRef := cfg.VRead / RefOR(c, ones+zeros)
	return iBL > iRef
}

// SenseAND resolves an n-row AND through the current comparison. Panics on
// fewer than 2 cells, like SenseOR.
func SenseAND(cfg SenseConfig, c nvm.CellParams, cells []bool) bool {
	ones, zeros := countCells(cells)
	if ones+zeros < 2 {
		panic("analog: SenseAND needs at least 2 cells")
	}
	iBL := blCurrent(cfg, c, ones, zeros)
	iRef := cfg.VRead / RefAND(c, ones+zeros)
	return iBL > iRef
}

// SenseRead resolves a normal single-cell read.
func SenseRead(cfg SenseConfig, c nvm.CellParams, cell bool) bool {
	ones, zeros := 0, 1
	if cell {
		ones, zeros = 1, 0
	}
	iBL := blCurrent(cfg, c, ones, zeros)
	iRef := cfg.VRead / RefRead(c)
	return iBL > iRef
}

func countCells(cells []bool) (ones, zeros int) {
	for _, b := range cells {
		if b {
			ones++
		} else {
			zeros++
		}
	}
	return ones, zeros
}

// MonteCarloResult summarises a Monte-Carlo sensing experiment.
type MonteCarloResult struct {
	Trials int
	Errors int
}

// ErrorRate returns Errors/Trials.
func (m MonteCarloResult) ErrorRate() float64 {
	if m.Trials == 0 {
		return 0
	}
	return float64(m.Errors) / float64(m.Trials)
}

// MonteCarloOR samples n-row OR sensing with log-normally distributed cell
// resistances and random data patterns, counting misclassifications against
// the boolean OR of the pattern. An SA offset uniform in ±OffsetTol of the
// reference current is injected each trial.
func MonteCarloOR(cfg SenseConfig, c nvm.CellParams, n, trials int, rng *rand.Rand) MonteCarloResult {
	return monteCarlo(cfg, c, n, trials, rng, true)
}

// MonteCarloAND is the AND counterpart of MonteCarloOR.
func MonteCarloAND(cfg SenseConfig, c nvm.CellParams, n, trials int, rng *rand.Rand) MonteCarloResult {
	return monteCarlo(cfg, c, n, trials, rng, false)
}

// monteCarlo samples per-cell resistance variation and counts sensing
// failures. Panics for n < 2 — the exported wrappers share RefOR's
// two-operand floor.
func monteCarlo(cfg SenseConfig, c nvm.CellParams, n, trials int, rng *rand.Rand, isOR bool) MonteCarloResult {
	if n < 2 {
		panic("analog: monte carlo needs n>=2")
	}
	res := MonteCarloResult{Trials: trials}
	for t := 0; t < trials; t++ {
		g := 0.0
		want := !isOR // identity element: OR→false, AND→true
		for i := 0; i < n; i++ {
			bit := rng.Intn(2) == 1
			if isOR {
				want = want || bit
			} else {
				want = want && bit
			}
			base := c.RHigh
			if bit {
				base = c.RLow
			}
			r := base * math.Exp(rng.NormFloat64()*c.SigmaLog)
			g += 1 / r
		}
		iBL := cfg.VRead * g
		var ref float64
		if isOR {
			ref = RefOR(c, n)
		} else {
			ref = RefAND(c, n)
		}
		iRef := cfg.VRead / ref
		// Inject SA offset as a fraction of the reference current.
		iRef *= 1 + (rng.Float64()*2-1)*cfg.OffsetTol
		if got := iBL > iRef; got != want {
			res.Errors++
		}
	}
	return res
}

// Package cmdstream is the typed command-stream IR the execution pipeline
// is built around. Pinatubo's system stack (paper §5) talks to the memory
// in *extended DDR command sequences* — the command stream is the
// architecture's contract — so every stage of the pipeline shares one
// representation of it:
//
//	lower    — internal/pim emits a Program while executing: one
//	           KindRequest instruction per controller request (multi-row
//	           ACT, SA-op, WD-bypass write, buffer moves — the full
//	           ddr.Cmd sequence), one KindVerify instruction per lump-sum
//	           verification or ECC pass;
//	schedule — Program.Request lowers a program onto the event-driven
//	           channel scheduler (internal/chansim) with per-command
//	           bank/channel resources, for the planner and the batch
//	           executor;
//	execute  — internal/pimrt records the program of everything a
//	           scheduled operation put on the channel and derives its
//	           Cost, request count and TraceSegments from it in exactly
//	           one place.
//
// Each instruction carries its cost annotation (Seconds, Joules) as priced
// by the controller's architectural model, so accounting is a fold over
// the program rather than a side channel maintained next to it.
package cmdstream

import (
	"pinatubo/internal/chansim"
	"pinatubo/internal/ddr"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/workload"
)

// Kind discriminates the instruction forms of the IR.
type Kind int

const (
	// KindRequest is one controller-executed hardware request: an extended
	// DDR command sequence (MRS mode write, multi-row activation, sense
	// steps, buffer moves, write-back, precharge) with its end-to-end cost.
	KindRequest Kind = iota
	// KindVerify is a lump-sum verification or ECC pass (read-back verify,
	// syndrome decode, check-bit reprogram) that occupies the destination's
	// bank for Seconds without an explicit command sequence. A zero-second
	// verify (the linear ECC fast path) carries energy only and leaves no
	// scheduling footprint.
	KindVerify
	// KindVoted is a replicated controller request: the operand set is
	// activated and sensed once per replica copy (R sequential
	// LWL-reset/activate/sense groups inside one command sequence) and the
	// sensed results majority-voted before write-back. It schedules and
	// prices exactly like KindRequest — the Cmds carry the full R-group
	// sequence — but stays distinguishable so vote accounting is derived
	// from the program, not tracked beside it. Votes holds the replica
	// count, Outvoted the disagreeing bit positions the vote overrode.
	KindVoted
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindVerify:
		return "verify"
	case KindVoted:
		return "voted"
	default:
		return "Kind(" + itoa(int(k)) + ")"
	}
}

// itoa avoids importing fmt for one error-path formatter.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Instr is one instruction of a lowered program.
type Instr struct {
	// Kind selects the form.
	Kind Kind
	// Cmds is the DDR command sequence of a KindRequest instruction (nil
	// for KindVerify).
	Cmds []ddr.Cmd
	// Addr locates the bank a KindVerify pass occupies.
	Addr memarch.RowAddr
	// Seconds is the instruction's simulated latency. For KindRequest it
	// equals ddr.Duration over Cmds as priced by the controller; for
	// KindVerify it is the lump-sum pass latency (0 on the linear ECC fast
	// path).
	Seconds float64
	// Joules is the instruction's simulated energy.
	Joules float64
	// Votes is the replica count of a KindVoted instruction (0 otherwise).
	Votes int
	// Outvoted is the number of bit positions where a KindVoted
	// instruction's replicas disagreed and the majority overrode the
	// minority (0 otherwise).
	Outvoted int64
}

// Program is an ordered sequence of instructions — the lowered form of one
// logical operation, including every resilience expansion (retries, depth
// splits, verification passes, ECC reprograms) in execution order.
type Program struct {
	Instrs []Instr
}

// Emit appends one instruction.
func (p *Program) Emit(in Instr) { p.Instrs = append(p.Instrs, in) }

// Append concatenates another program onto this one.
func (p *Program) Append(q Program) { p.Instrs = append(p.Instrs, q.Instrs...) }

// Len returns the instruction count.
func (p Program) Len() int { return len(p.Instrs) }

// Cost folds the program's cost annotations in program order — the same
// float-addition order the execution path accumulated them in, so the fold
// is bit-identical to the live accounting it replaces.
func (p Program) Cost() workload.Cost {
	var c workload.Cost
	for _, in := range p.Instrs {
		c.Add(workload.Cost{Seconds: in.Seconds, Joules: in.Joules})
	}
	return c
}

// Requests counts the controller-executed hardware requests. A voted
// request is one request: its replica groups share a single command
// sequence on the channel.
func (p Program) Requests() int {
	n := 0
	for _, in := range p.Instrs {
		if in.Kind == KindRequest || in.Kind == KindVoted {
			n++
		}
	}
	return n
}

// Votes folds the program's majority-vote accounting: how many voted
// requests ran and how many disagreeing bits their majorities overrode.
func (p Program) Votes() (votes int, outvoted int64) {
	for _, in := range p.Instrs {
		if in.Kind == KindVoted {
			votes++
			outvoted += in.Outvoted
		}
	}
	return votes, outvoted
}

// Channel returns the memory channel the program runs on: the channel of
// the first command or verify pass that names a bank. Programs are
// single-channel by construction — the controller rejects cross-rank
// operand sets, and a rank lives on one channel.
func (p Program) Channel() int {
	for _, in := range p.Instrs {
		switch in.Kind {
		case KindRequest, KindVoted:
			for _, c := range in.Cmds {
				if c.Kind != ddr.CmdMRS {
					return c.Addr.Channel
				}
			}
		case KindVerify:
			return in.Addr.Channel
		}
	}
	return 0
}

// Request lowers the program onto the channel scheduler: KindRequest
// instructions through chansim.FromDDR's per-command pricing (issue slots,
// exec times, bank resources), KindVerify passes as one command-bus issue
// slot plus a bank-busy interval. Zero-second verify passes leave no
// scheduling footprint, exactly as they leave no trace segment.
func (p Program) Request(name string, t nvm.Timing, bus ddr.BusParams, banks int) chansim.Request {
	req := chansim.Request{Name: name, Channel: p.Channel()}
	for _, in := range p.Instrs {
		switch in.Kind {
		case KindRequest, KindVoted:
			part := chansim.FromDDR(name, in.Cmds, t, bus, banks)
			req.Cmds = append(req.Cmds, part.Cmds...)
		case KindVerify:
			if in.Seconds <= 0 {
				continue
			}
			req.Cmds = append(req.Cmds, chansim.Cmd{
				Issue:    t.TCMD,
				Exec:     in.Seconds,
				Resource: chansim.BankResource(in.Addr, banks),
			})
		}
	}
	return req
}

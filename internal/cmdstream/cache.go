package cmdstream

// This file holds the lowered-program cache. Lowering one bulk bitwise
// operation — classifying its placement, building and protocol-checking
// the DDR command sequence, pricing latency and energy — is a pure
// function of the operation shape (op kind, operand addresses, bit span,
// datapath selection) on a fixed geometry: the data words are the only
// part of an execution that depends on memory contents. The cache
// memoises that pure part so a repeated op skips straight to its data
// effects. Entries are treated as immutable after Store (copy-on-write:
// consumers take cost/trace *views* of a cached entry and must never
// mutate the shared command slice); the owner invalidates the whole cache
// whenever the row layout moves underneath it (System.layoutGen bumps).

// CacheStats counts cache traffic. Hits+Misses is the number of eligible
// lookups; entries is the current population.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// Cache is a keyed store of lowered-program entries. The value type is
// opaque to this package (the controller stores its own entry struct);
// the cache owns keying, hit/miss accounting and invalidation. Not safe
// for concurrent use — each controller owns exactly one, and a controller
// is single-goroutine by the System's ownership rules.
type Cache struct {
	entries map[string]any
	hits    int64
	misses  int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]any)}
}

// Lookup returns the entry stored under key. The []byte→string conversion
// in the map index compiles to an alloc-free lookup, so a hit costs no
// allocations.
func (c *Cache) Lookup(key []byte) (any, bool) {
	e, ok := c.entries[string(key)]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// Store inserts an entry under key (copying the key). The entry must be
// immutable from this point on: every later Lookup returns the same
// value, concurrently with whatever the first execution still holds.
func (c *Cache) Store(key []byte, entry any) {
	c.entries[string(key)] = entry
}

// Invalidate drops every entry. Hit/miss counters survive — they describe
// lifetime traffic, not the current population.
func (c *Cache) Invalidate() {
	if len(c.entries) > 0 {
		c.entries = make(map[string]any)
	}
}

// ResetStats zeroes the traffic counters without touching the stored
// programs. This is the sandbox-reuse reset: the pool absorbs a
// sandbox's counters when it is returned, so a reused sandbox must
// start counting from zero — but its lowered programs stay valid
// across a memory reset, because they depend only on operand addresses
// and geometry, never on cell contents. Keeping them is what turns the
// second window of a repeated workload into all cache hits.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// KeyBuffer builds cache keys without allocating: the byte slice is
// reused across calls, and the map lookup in Cache.Lookup never retains
// it. Keys are raw little-endian field concatenations — unambiguous
// because every encoder writes a fixed width.
type KeyBuffer struct {
	buf []byte
}

// Reset empties the buffer for the next key.
func (k *KeyBuffer) Reset() { k.buf = k.buf[:0] }

// Byte appends a one-byte field.
func (k *KeyBuffer) Byte(b byte) { k.buf = append(k.buf, b) }

// Uint64 appends a fixed-width 64-bit field.
func (k *KeyBuffer) Uint64(v uint64) {
	k.buf = append(k.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Int appends an int as a fixed-width 64-bit field.
func (k *KeyBuffer) Int(v int) { k.Uint64(uint64(int64(v))) }

// Bytes returns the assembled key, valid until the next Reset.
func (k *KeyBuffer) Bytes() []byte { return k.buf }

package cmdstream

import (
	"testing"

	"pinatubo/internal/chansim"
	"pinatubo/internal/ddr"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/workload"
)

func TestKindString(t *testing.T) {
	if KindRequest.String() != "request" || KindVerify.String() != "verify" {
		t.Error("kind names wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Errorf("unknown kind = %q", Kind(7).String())
	}
	if Kind(-3).String() != "Kind(-3)" {
		t.Errorf("negative kind = %q", Kind(-3).String())
	}
}

func TestProgramFold(t *testing.T) {
	var p Program
	p.Emit(Instr{Kind: KindRequest, Seconds: 1e-7, Joules: 3e-9})
	p.Emit(Instr{Kind: KindVerify, Seconds: 2e-7, Joules: 5e-9})
	var q Program
	q.Emit(Instr{Kind: KindRequest, Seconds: 4e-7, Joules: 7e-9})
	p.Append(q)

	if p.Len() != 3 {
		t.Fatalf("Len=%d want 3", p.Len())
	}
	if p.Requests() != 2 {
		t.Errorf("Requests=%d want 2 (verify passes are not requests)", p.Requests())
	}
	// The fold must replay the exact float-addition order of the live
	// accounting it replaced.
	var want workload.Cost
	for _, in := range p.Instrs {
		want.Add(workload.Cost{Seconds: in.Seconds, Joules: in.Joules})
	}
	if got := p.Cost(); got != want {
		t.Errorf("Cost=%+v want %+v", got, want)
	}
}

func TestProgramChannel(t *testing.T) {
	var empty Program
	if empty.Channel() != 0 {
		t.Error("empty program channel != 0")
	}
	// MRS commands carry no bank address; the first addressed command wins.
	var p Program
	p.Emit(Instr{Kind: KindRequest, Cmds: []ddr.Cmd{
		{Kind: ddr.CmdMRS},
		{Kind: ddr.CmdAct, Addr: memarch.RowAddr{Channel: 2, Bank: 5}},
	}})
	if p.Channel() != 2 {
		t.Errorf("Channel=%d want 2", p.Channel())
	}
	var v Program
	v.Emit(Instr{Kind: KindVerify, Addr: memarch.RowAddr{Channel: 3}, Seconds: 1e-8})
	if v.Channel() != 3 {
		t.Errorf("verify-only Channel=%d want 3", v.Channel())
	}
}

func TestProgramRequestLowering(t *testing.T) {
	timing := nvm.Get(nvm.PCM).Timing
	bus := ddr.DefaultBus()
	const banks = 8
	cmds := []ddr.Cmd{
		{Kind: ddr.CmdMRS},
		{Kind: ddr.CmdAct, Addr: memarch.RowAddr{Bank: 3}},
		{Kind: ddr.CmdPre, Addr: memarch.RowAddr{Bank: 3}},
	}
	var p Program
	p.Emit(Instr{Kind: KindRequest, Cmds: cmds, Seconds: 1e-7})
	p.Emit(Instr{Kind: KindVerify, Addr: memarch.RowAddr{Bank: 3}, Seconds: 5e-8})
	p.Emit(Instr{Kind: KindVerify, Addr: memarch.RowAddr{Bank: 3}, Seconds: 0, Joules: 1e-9})

	req := p.Request("op", timing, bus, banks)
	if req.Name != "op" || req.Channel != 0 {
		t.Errorf("req name/channel = %q/%d", req.Name, req.Channel)
	}
	ref := chansim.FromDDR("op", cmds, timing, bus, banks)
	if len(req.Cmds) != len(ref.Cmds)+1 {
		t.Fatalf("lowered %d cmds, want %d FromDDR cmds + 1 verify slot (zero-second verify must be skipped)",
			len(req.Cmds), len(ref.Cmds))
	}
	for i, c := range ref.Cmds {
		if req.Cmds[i] != c {
			t.Errorf("cmd %d = %+v, FromDDR prices %+v", i, req.Cmds[i], c)
		}
	}
	last := req.Cmds[len(req.Cmds)-1]
	want := chansim.Cmd{
		Issue:    timing.TCMD,
		Exec:     5e-8,
		Resource: chansim.BankResource(memarch.RowAddr{Bank: 3}, banks),
	}
	if last != want {
		t.Errorf("verify slot = %+v want %+v", last, want)
	}
}

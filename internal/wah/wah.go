// Package wah implements Word-Aligned Hybrid bitmap compression, the format
// FastBit (the paper's database workload) stores its index bitmaps in. A
// compressed bitmap is a sequence of 64-bit words: literal words carry 63
// payload bits (MSB clear), fill words (MSB set) encode a run of identical
// 63-bit groups with the fill bit in bit 62 and the group count in the low
// 62 bits.
//
// The package provides compression, decompression and logical operations
// directly on the compressed form. The simulator's PIM path operates on
// dense rows; WAH is the CPU-side storage format and the functional
// cross-check for the database workload.
package wah

import (
	"fmt"

	"pinatubo/internal/bitvec"
)

const (
	groupBits = 63
	fillFlag  = uint64(1) << 63
	fillBit   = uint64(1) << 62
	countMask = fillBit - 1
)

// Bitmap is a WAH-compressed bit vector.
type Bitmap struct {
	nbits int
	words []uint64
}

// Len returns the uncompressed length in bits.
func (b *Bitmap) Len() int { return b.nbits }

// CompressedWords returns the number of 64-bit words in the compressed
// representation.
func (b *Bitmap) CompressedWords() int { return len(b.words) }

// CompressionRatio returns uncompressed words / compressed words.
func (b *Bitmap) CompressionRatio() float64 {
	if len(b.words) == 0 {
		return 1
	}
	return float64(bitvec.WordsFor(b.nbits)) / float64(len(b.words))
}

// appendGroup adds one 63-bit group to the compressed stream.
func appendGroup(words []uint64, g uint64) []uint64 {
	switch g {
	case 0:
		return appendFill(words, 0)
	case (uint64(1) << groupBits) - 1:
		return appendFill(words, 1)
	default:
		return append(words, g)
	}
}

// appendFill extends a fill run of the given bit, or starts one.
func appendFill(words []uint64, bit uint64) []uint64 {
	if n := len(words); n > 0 {
		last := words[n-1]
		if last&fillFlag != 0 && (last&fillBit != 0) == (bit == 1) && last&countMask < countMask {
			words[n-1] = last + 1
			return words
		}
	}
	w := fillFlag | 1
	if bit == 1 {
		w |= fillBit
	}
	return append(words, w)
}

// Compress converts a dense vector into WAH form.
func Compress(v *bitvec.Vector) *Bitmap {
	b := &Bitmap{nbits: v.Len()}
	groups := (v.Len() + groupBits - 1) / groupBits
	for gi := 0; gi < groups; gi++ {
		lo := gi * groupBits
		hi := lo + groupBits
		if hi > v.Len() {
			hi = v.Len()
		}
		var g uint64
		for i := lo; i < hi; i++ {
			if v.Get(i) {
				g |= 1 << uint(i-lo)
			}
		}
		// The final partial group compresses as a literal unless all its
		// defined bits are zero (an all-ones partial group is not a full
		// fill group).
		if hi-lo < groupBits && g != 0 {
			b.words = append(b.words, g)
			continue
		}
		if hi-lo < groupBits {
			b.words = appendFill(b.words, 0)
			continue
		}
		b.words = appendGroup(b.words, g)
	}
	return b
}

// Decompress expands the bitmap back to a dense vector.
func (b *Bitmap) Decompress() *bitvec.Vector {
	v := bitvec.New(b.nbits)
	pos := 0
	for _, w := range b.words {
		if w&fillFlag == 0 {
			for i := 0; i < groupBits && pos+i < b.nbits; i++ {
				if w&(1<<uint(i)) != 0 {
					v.Set(pos + i)
				}
			}
			pos += groupBits
			continue
		}
		count := int(w & countMask)
		if w&fillBit != 0 {
			hi := pos + count*groupBits
			if hi > b.nbits {
				hi = b.nbits
			}
			if pos < hi {
				v.SetRange(pos, hi)
			}
		}
		pos += count * groupBits
	}
	return v
}

// runIter yields (bitsRemainingInRun, isFill, fillBitSet, literal) over the
// compressed stream, one group at a time for literals and whole runs for
// fills.
type runIter struct {
	words []uint64
	idx   int
	// pending fill groups of the current fill word
	fillLeft int
	fillOne  bool
}

func (it *runIter) next() (isLiteral bool, lit uint64, ok bool) {
	for {
		if it.fillLeft > 0 {
			it.fillLeft--
			if it.fillOne {
				return false, (uint64(1) << groupBits) - 1, true
			}
			return false, 0, true
		}
		if it.idx >= len(it.words) {
			return false, 0, false
		}
		w := it.words[it.idx]
		it.idx++
		if w&fillFlag == 0 {
			return true, w, true
		}
		it.fillLeft = int(w & countMask)
		it.fillOne = w&fillBit != 0
	}
}

// binaryOp combines two bitmaps group-wise.
func binaryOp(a, b *Bitmap, f func(x, y uint64) uint64) (*Bitmap, error) {
	if a.nbits != b.nbits {
		return nil, fmt.Errorf("wah: length mismatch %d vs %d", a.nbits, b.nbits)
	}
	out := &Bitmap{nbits: a.nbits}
	ia := &runIter{words: a.words}
	ib := &runIter{words: b.words}
	groups := (a.nbits + groupBits - 1) / groupBits
	tail := a.nbits % groupBits
	for gi := 0; gi < groups; gi++ {
		_, ga, okA := ia.next()
		_, gb, okB := ib.next()
		if !okA || !okB {
			return nil, fmt.Errorf("wah: corrupt bitmap: stream ended at group %d/%d", gi, groups)
		}
		g := f(ga, gb) & ((uint64(1) << groupBits) - 1)
		last := gi == groups-1 && tail != 0
		if last {
			g &= (uint64(1) << uint(tail)) - 1
			if g != 0 {
				out.words = append(out.words, g)
			} else {
				out.words = appendFill(out.words, 0)
			}
			continue
		}
		out.words = appendGroup(out.words, g)
	}
	return out, nil
}

// And returns a AND b.
func And(a, b *Bitmap) (*Bitmap, error) {
	return binaryOp(a, b, func(x, y uint64) uint64 { return x & y })
}

// Or returns a OR b.
func Or(a, b *Bitmap) (*Bitmap, error) {
	return binaryOp(a, b, func(x, y uint64) uint64 { return x | y })
}

// Xor returns a XOR b.
func Xor(a, b *Bitmap) (*Bitmap, error) {
	return binaryOp(a, b, func(x, y uint64) uint64 { return x ^ y })
}

// Popcount counts set bits without decompressing.
func (b *Bitmap) Popcount() int {
	n := 0
	pos := 0
	for _, w := range b.words {
		if w&fillFlag == 0 {
			for i := 0; i < groupBits && pos+i < b.nbits; i++ {
				if w&(1<<uint(i)) != 0 {
					n++
				}
			}
			pos += groupBits
			continue
		}
		count := int(w & countMask)
		if w&fillBit != 0 {
			bitsHere := count * groupBits
			if pos+bitsHere > b.nbits {
				bitsHere = b.nbits - pos
			}
			n += bitsHere
		}
		pos += count * groupBits
	}
	return n
}

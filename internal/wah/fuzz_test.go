package wah

import (
	"testing"

	"pinatubo/internal/bitvec"
)

// vectorFromBytes builds a deterministic bit vector from fuzz bytes.
func vectorFromBytes(data []byte, nbits int) *bitvec.Vector {
	v := bitvec.New(nbits)
	for i := 0; i < nbits; i++ {
		if len(data) == 0 {
			break
		}
		b := data[i%len(data)]
		if (b>>(uint(i)%8))&1 == 1 {
			v.Set(i)
		}
	}
	return v
}

// FuzzRoundTrip: Compress∘Decompress must be the identity for any bit
// pattern and any length.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0x00}, uint16(1))
	f.Add([]byte{0xFF}, uint16(63))
	f.Add([]byte{0xAA, 0x55}, uint16(200))
	f.Add([]byte{0x01, 0x80, 0xFF, 0x00}, uint16(4096))
	f.Fuzz(func(t *testing.T, data []byte, nb uint16) {
		nbits := int(nb)%5000 + 1
		v := vectorFromBytes(data, nbits)
		b := Compress(v)
		got := b.Decompress()
		if !got.Equal(v) {
			t.Fatalf("round trip mismatch at %d bits", nbits)
		}
		if b.Popcount() != v.Popcount() {
			t.Fatalf("compressed popcount %d want %d", b.Popcount(), v.Popcount())
		}
	})
}

// FuzzOpsAgree: compressed AND/OR/XOR must match the dense reference.
func FuzzOpsAgree(f *testing.F) {
	f.Add([]byte{0xF0}, []byte{0x0F}, uint16(64))
	f.Add([]byte{0x00}, []byte{0xFF}, uint16(126))
	f.Fuzz(func(t *testing.T, da, db []byte, nb uint16) {
		nbits := int(nb)%3000 + 1
		a := vectorFromBytes(da, nbits)
		b := vectorFromBytes(db, nbits)
		ca, cb := Compress(a), Compress(b)
		and, err := And(ca, cb)
		if err != nil {
			t.Fatal(err)
		}
		or, err := Or(ca, cb)
		if err != nil {
			t.Fatal(err)
		}
		xor, err := Xor(ca, cb)
		if err != nil {
			t.Fatal(err)
		}
		wa, wo, wx := bitvec.New(nbits), bitvec.New(nbits), bitvec.New(nbits)
		wa.And(a, b)
		wo.Or(a, b)
		wx.Xor(a, b)
		if !and.Decompress().Equal(wa) || !or.Decompress().Equal(wo) || !xor.Decompress().Equal(wx) {
			t.Fatal("compressed op mismatch")
		}
	})
}

package wah

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pinatubo/internal/bitvec"
)

func randomVector(rng *rand.Rand, n int, density float64) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			v.Set(i)
		}
	}
	return v
}

func TestRoundTripPatterns(t *testing.T) {
	patterns := []func(n int) *bitvec.Vector{
		func(n int) *bitvec.Vector { return bitvec.New(n) }, // all zero
		func(n int) *bitvec.Vector { v := bitvec.New(n); v.SetAll(); return v },
		func(n int) *bitvec.Vector { // alternating
			v := bitvec.New(n)
			for i := 0; i < n; i += 2 {
				v.Set(i)
			}
			return v
		},
		func(n int) *bitvec.Vector { // one long run
			v := bitvec.New(n)
			v.SetRange(n/4, 3*n/4)
			return v
		},
	}
	for _, n := range []int{1, 62, 63, 64, 126, 127, 1000, 63 * 100} {
		for pi, gen := range patterns {
			v := gen(n)
			b := Compress(v)
			if b.Len() != n {
				t.Fatalf("n=%d pat=%d: Len=%d", n, pi, b.Len())
			}
			got := b.Decompress()
			if !got.Equal(v) {
				t.Fatalf("n=%d pat=%d: round trip mismatch", n, pi)
			}
		}
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	// Sparse bitmaps (the FastBit case) must compress well.
	rng := rand.New(rand.NewSource(1))
	v := randomVector(rng, 63*1000, 0.001)
	b := Compress(v)
	if r := b.CompressionRatio(); r < 5 {
		t.Errorf("sparse compression ratio %.1f, want > 5", r)
	}
	// Dense random bitmaps do not compress (ratio ~1, tolerating overhead).
	d := Compress(randomVector(rng, 63*1000, 0.5))
	if r := d.CompressionRatio(); r > 1.2 {
		t.Errorf("random bitmap 'compressed' by %.2fx?", r)
	}
}

func TestPopcountMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, density := range []float64{0, 0.001, 0.3, 1} {
		v := randomVector(rng, 10000, density)
		if density == 1 {
			v.SetAll()
		}
		b := Compress(v)
		if b.Popcount() != v.Popcount() {
			t.Errorf("density %g: popcount %d want %d", density, b.Popcount(), v.Popcount())
		}
	}
}

func TestLogicalOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 63*37 + 17 // deliberately ragged tail
	a := randomVector(rng, n, 0.02)
	b := randomVector(rng, n, 0.3)
	ca, cb := Compress(a), Compress(b)

	and, err := And(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	or, err := Or(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	xor, err := Xor(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	wantAnd, wantOr, wantXor := bitvec.New(n), bitvec.New(n), bitvec.New(n)
	wantAnd.And(a, b)
	wantOr.Or(a, b)
	wantXor.Xor(a, b)
	if !and.Decompress().Equal(wantAnd) {
		t.Error("AND mismatch")
	}
	if !or.Decompress().Equal(wantOr) {
		t.Error("OR mismatch")
	}
	if !xor.Decompress().Equal(wantXor) {
		t.Error("XOR mismatch")
	}
}

func TestOpsLengthMismatch(t *testing.T) {
	a := Compress(bitvec.New(100))
	b := Compress(bitvec.New(101))
	if _, err := And(a, b); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFillRunMerging(t *testing.T) {
	// A long all-zero bitmap must compress to a single fill word.
	v := bitvec.New(63 * 500)
	b := Compress(v)
	if b.CompressedWords() != 1 {
		t.Errorf("all-zero bitmap uses %d words, want 1", b.CompressedWords())
	}
	v.SetAll()
	b = Compress(v)
	if b.CompressedWords() != 1 {
		t.Errorf("all-one bitmap uses %d words, want 1", b.CompressedWords())
	}
}

// Property: Compress/Decompress is the identity.
func TestPropRoundTrip(t *testing.T) {
	f := func(seed int64, nSeed uint16, density uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSeed)%4000 + 1
		v := randomVector(rng, n, float64(density%101)/100)
		return Compress(v).Decompress().Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: compressed AND/OR agree with dense ops.
func TestPropOpsAgree(t *testing.T) {
	f := func(seed int64, nSeed uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSeed)%3000 + 1
		a := randomVector(rng, n, 0.05)
		b := randomVector(rng, n, 0.5)
		and, err1 := And(Compress(a), Compress(b))
		or, err2 := Or(Compress(a), Compress(b))
		if err1 != nil || err2 != nil {
			return false
		}
		wa, wo := bitvec.New(n), bitvec.New(n)
		wa.And(a, b)
		wo.Or(a, b)
		return and.Decompress().Equal(wa) && or.Decompress().Equal(wo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := randomVector(rng, 1<<17, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(v)
	}
}

func BenchmarkCompressedOr(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Compress(randomVector(rng, 1<<17, 0.01))
	y := Compress(randomVector(rng, 1<<17, 0.01))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Or(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

package chansim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Percentiles summarises a sample with nearest-rank percentiles.
type Percentiles struct {
	P50  float64
	P99  float64
	Mean float64
	Max  float64
}

// PercentilesOf computes nearest-rank p50/p99 plus mean and max of xs.
// An empty sample returns the zero value.
func PercentilesOf(xs []float64) Percentiles {
	if len(xs) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := func(p float64) float64 {
		// Nearest-rank: the smallest value with at least p of the mass
		// at or below it.
		i := int(p*float64(len(sorted))+0.9999999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Percentiles{
		P50:  rank(0.50),
		P99:  rank(0.99),
		Mean: sum / float64(len(sorted)),
		Max:  sorted[len(sorted)-1],
	}
}

// MCConfig drives a Monte Carlo scheduling experiment.
type MCConfig struct {
	// Seed is the base RNG seed; replication r uses Seed+r, so the whole
	// experiment is reproducible and replications are independent.
	Seed int64
	// Replications is the number of independent trace samples (>= 1).
	Replications int
	// Arb is the arbitration policy to schedule under.
	Arb Arbiter
}

// MCResult aggregates the schedule statistics across replications.
type MCResult struct {
	Replications int
	// Latency pools every request's completion time across replications.
	Latency Percentiles
	// Makespan, Throughput (requests/sec) and BusUtilisation are
	// per-replication statistics.
	Makespan       Percentiles
	Throughput     Percentiles
	BusUtilisation Percentiles
}

// MonteCarlo samples gen once per replication (with a seeded, replication
// private RNG), schedules each sample under cfg.Arb and aggregates
// latency/makespan/throughput percentiles. gen may ignore the RNG when the
// caller's traces carry their own randomness (e.g. pre-sampled fault
// expansions keyed off the replication index).
func MonteCarlo(cfg MCConfig, gen func(rng *rand.Rand, rep int) ([]Request, error)) (MCResult, error) {
	if cfg.Replications < 1 {
		return MCResult{}, fmt.Errorf("chansim: replications=%d", cfg.Replications)
	}
	var latencies, makespans, throughputs, utils []float64
	for rep := 0; rep < cfg.Replications; rep++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
		reqs, err := gen(rng, rep)
		if err != nil {
			return MCResult{}, fmt.Errorf("chansim: replication %d: %w", rep, err)
		}
		res, err := ScheduleWith(reqs, cfg.Arb)
		if err != nil {
			return MCResult{}, fmt.Errorf("chansim: replication %d: %w", rep, err)
		}
		latencies = append(latencies, res.Completion...)
		makespans = append(makespans, res.Makespan)
		if res.Makespan > 0 {
			throughputs = append(throughputs, float64(len(reqs))/res.Makespan)
		}
		utils = append(utils, res.BusUtilisation())
	}
	return MCResult{
		Replications:   cfg.Replications,
		Latency:        PercentilesOf(latencies),
		Makespan:       PercentilesOf(makespans),
		Throughput:     PercentilesOf(throughputs),
		BusUtilisation: PercentilesOf(utils),
	}, nil
}

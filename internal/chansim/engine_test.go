package chansim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// legacySchedule is the original fixed-sequence single-channel greedy
// scheduler, kept verbatim as the reference the event-driven engine must
// reproduce bit-identically under ArbFIFO.
func legacySchedule(reqs []Request) Result {
	type state struct {
		next     int
		prevDone float64
	}
	states := make([]state, len(reqs))
	busFree := 0.0
	resourceFree := map[int]float64{}
	res := Result{Completion: make([]float64, len(reqs)), Channels: 1}
	for {
		best := -1
		bestStart := 0.0
		for i := range reqs {
			st := &states[i]
			if st.next >= len(reqs[i].Cmds) {
				continue
			}
			c := reqs[i].Cmds[st.next]
			start := st.prevDone
			if busFree > start {
				start = busFree
			}
			if c.Resource >= 0 && resourceFree[c.Resource] > start {
				start = resourceFree[c.Resource]
			}
			if best == -1 || start < bestStart {
				best, bestStart = i, start
			}
		}
		if best == -1 {
			break
		}
		c := reqs[best].Cmds[states[best].next]
		issueEnd := bestStart + c.Issue
		execEnd := bestStart + c.Exec
		if issueEnd > execEnd {
			execEnd = issueEnd
		}
		busFree = issueEnd
		res.BusBusy += c.Issue
		if c.Resource >= 0 {
			resourceFree[c.Resource] = execEnd
		}
		states[best].prevDone = execEnd
		states[best].next++
		if states[best].next == len(reqs[best].Cmds) {
			res.Completion[best] = execEnd
			if execEnd > res.Makespan {
				res.Makespan = execEnd
			}
		}
	}
	return res
}

func randomRequests(rng *rand.Rand) []Request {
	n := 1 + rng.Intn(6)
	reqs := make([]Request, n)
	for i := range reqs {
		m := rng.Intn(8)
		cmds := make([]Cmd, m)
		for j := range cmds {
			cmds[j] = Cmd{
				Issue:    float64(rng.Intn(5)) * 0.5,
				Exec:     float64(rng.Intn(20)) * 0.5,
				Resource: rng.Intn(5) - 1, // -1..3, includes bus-only
			}
		}
		reqs[i] = Request{Cmds: cmds}
	}
	return reqs
}

func TestFIFOMatchesLegacyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		reqs := randomRequests(rng)
		want := legacySchedule(reqs)
		got, err := ScheduleWith(reqs, ArbFIFO)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: engine diverged from legacy scheduler:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

// Satellite property tests: makespan >= max standalone duration, bus
// utilisation <= 1, and determinism for a fixed seed.
func TestScheduleProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		reqs := randomRequests(rng)
		for _, arb := range []Arbiter{ArbFIFO, ArbOldestReady} {
			res, err := ScheduleWith(reqs, arb)
			if err != nil {
				t.Fatal(err)
			}
			maxDur := 0.0
			for _, r := range reqs {
				if d := r.Duration(); d > maxDur {
					maxDur = d
				}
			}
			if res.Makespan < maxDur-1e-12 {
				t.Fatalf("trial %d %v: makespan %g < max standalone duration %g", trial, arb, res.Makespan, maxDur)
			}
			if u := res.BusUtilisation(); u > 1+1e-12 {
				t.Fatalf("trial %d %v: bus utilisation %g > 1", trial, arb, u)
			}
			for i, c := range res.Completion {
				if c > res.Makespan {
					t.Fatalf("trial %d %v: completion[%d]=%g beyond makespan %g", trial, arb, i, c, res.Makespan)
				}
			}
			again, err := ScheduleWith(reqs, arb)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, again) {
				t.Fatalf("trial %d %v: schedule not deterministic", trial, arb)
			}
		}
	}
}

func TestGrowExtendsRequestMidFlight(t *testing.T) {
	// A request that reveals one extra command after the first two have
	// executed behaves exactly like the fully expanded fixed sequence.
	base := []Cmd{{Issue: 1, Exec: 10, Resource: 0}, {Issue: 1, Exec: 10, Resource: 0}}
	extra := Cmd{Issue: 1, Exec: 25, Resource: 1}
	grown := 0
	growing := Request{Cmds: base, Grow: func(executed int) []Cmd {
		if executed == len(base) && grown == 0 {
			grown++
			return []Cmd{extra}
		}
		return nil
	}}
	fixed := Request{Cmds: append(append([]Cmd(nil), base...), extra)}

	got, err := Schedule([]Request{growing})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Schedule([]Request{fixed})
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan || got.BusBusy != want.BusBusy {
		t.Errorf("grown schedule %+v != fixed schedule %+v", got, want)
	}
	if grown != 1 {
		t.Errorf("grow hook called %d times at the expansion point, want 1", grown)
	}

	// Negative times from a Grow hook are rejected like queued ones.
	bad := Request{Grow: func(int) []Cmd { return []Cmd{{Issue: -1}} }}
	if _, err := Schedule([]Request{bad}); err == nil {
		t.Error("negative grown command accepted")
	}
}

func TestMultiChannelBusesAreIndependent(t *testing.T) {
	// Two pure-bus requests on different channels overlap fully; on one
	// channel they serialise.
	mk := func(ch int) Request {
		return Request{Channel: ch, Cmds: []Cmd{{Issue: 10, Exec: 0, Resource: -1}}}
	}
	same, err := Schedule([]Request{mk(0), mk(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(same.Makespan, 20, 1e-12) {
		t.Errorf("same channel makespan %g want 20", same.Makespan)
	}
	split, err := Schedule([]Request{mk(0), mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(split.Makespan, 10, 1e-12) {
		t.Errorf("two channels makespan %g want 10", split.Makespan)
	}
	if split.Channels != 2 {
		t.Errorf("channels %d want 2", split.Channels)
	}
	if !approx(split.BusUtilisation(), 1, 1e-12) {
		t.Errorf("two-channel utilisation %g want 1", split.BusUtilisation())
	}
	if _, err := Schedule([]Request{{Channel: -1}}); err == nil {
		t.Error("negative channel accepted")
	}
	if _, err := ScheduleWith(nil, Arbiter(99)); err == nil {
		t.Error("unknown arbiter accepted")
	}
}

func TestOldestReadyInterleavesFairly(t *testing.T) {
	// Two identical bus-command streams. FIFO's earliest-start/lowest
	// index rule drains request 0 completely before request 1 ever
	// issues; oldest-ready alternates between them (the request whose
	// previous command finished longest ago goes next), so the spread
	// between first and last completion shrinks while makespan and total
	// bus work stay identical.
	mk := func() Request {
		var cmds []Cmd
		for i := 0; i < 10; i++ {
			cmds = append(cmds, Cmd{Issue: 1, Exec: 0, Resource: -1})
		}
		return Request{Cmds: cmds}
	}
	reqs := []Request{mk(), mk()}

	fifo, err := ScheduleWith(reqs, ArbFIFO)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := ScheduleWith(reqs, ArbOldestReady)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(r Result) float64 {
		return math.Abs(r.Completion[0] - r.Completion[1])
	}
	if !approx(fifo.Makespan, fair.Makespan, 1e-12) {
		t.Errorf("makespan differs: fifo %g fair %g", fifo.Makespan, fair.Makespan)
	}
	if math.Abs(fifo.BusBusy-fair.BusBusy) > 1e-12 {
		t.Errorf("bus work differs: fifo %g fair %g", fifo.BusBusy, fair.BusBusy)
	}
	if spread(fifo) < 9 {
		t.Errorf("FIFO spread %g — expected head-of-line drain near 10", spread(fifo))
	}
	if spread(fair) >= spread(fifo) {
		t.Errorf("oldest-ready spread %g not tighter than FIFO's %g", spread(fair), spread(fifo))
	}
}

// Satellite regression: ThroughputCurve used to flatten every in-request
// resource to a single bank per copy (cc.Resource = i), erasing
// intra-request bank distinctness. Replicate must offset per copy instead.
func TestReplicatePreservesIntraRequestBanks(t *testing.T) {
	template := Request{Name: "multi", Cmds: []Cmd{
		{Issue: 1, Exec: 10, Resource: 0},
		{Issue: 1, Exec: 10, Resource: 3},
		{Issue: 1, Exec: 0, Resource: -1},
	}}
	copies := Replicate(template, 3)
	if len(copies) != 3 {
		t.Fatalf("got %d copies", len(copies))
	}
	stride := template.ResourceStride()
	if stride != 4 {
		t.Fatalf("stride %d want 4", stride)
	}
	for i, r := range copies {
		if r.Cmds[0].Resource != i*stride || r.Cmds[1].Resource != i*stride+3 {
			t.Errorf("copy %d resources (%d,%d) lost intra-request distinctness (want %d,%d)",
				i, r.Cmds[0].Resource, r.Cmds[1].Resource, i*stride, i*stride+3)
		}
		if r.Cmds[2].Resource != -1 {
			t.Errorf("copy %d bus-only command got resource %d", i, r.Cmds[2].Resource)
		}
	}
	// Copies must be disjoint: scheduling k copies of a bank-bound
	// template scales ~k.
	curve, err := ThroughputCurve(template, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if gain := curve[1] / curve[0]; gain < 1.9 {
		t.Errorf("2 disjoint copies gained only %.2fx", gain)
	}
	// The original template is untouched by replication.
	if template.Cmds[0].Resource != 0 || template.Cmds[1].Resource != 3 {
		t.Error("Replicate mutated the template")
	}
}

func TestPercentilesOf(t *testing.T) {
	if p := PercentilesOf(nil); p != (Percentiles{}) {
		t.Errorf("empty sample gave %+v", p)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	p := PercentilesOf(xs)
	if p.P50 != 50 || p.P99 != 99 || p.Max != 100 {
		t.Errorf("percentiles %+v want p50=50 p99=99 max=100", p)
	}
	if !approx(p.Mean, 50.5, 1e-9) {
		t.Errorf("mean %g want 50.5", p.Mean)
	}
	one := PercentilesOf([]float64{7})
	if one.P50 != 7 || one.P99 != 7 || one.Max != 7 || one.Mean != 7 {
		t.Errorf("singleton percentiles %+v", one)
	}
}

func TestMonteCarloDeterministicForSeed(t *testing.T) {
	gen := func(rng *rand.Rand, rep int) ([]Request, error) {
		n := 2 + rng.Intn(4)
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Cmds: []Cmd{
				{Issue: 1, Exec: 10 + float64(rng.Intn(50)), Resource: rng.Intn(4)},
			}}
		}
		return reqs, nil
	}
	cfg := MCConfig{Seed: 99, Replications: 8, Arb: ArbFIFO}
	a, err := MonteCarlo(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed gave different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 100
	c, err := MonteCarlo(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds gave identical results (suspicious)")
	}
	if a.Latency.P99 < a.Latency.P50 {
		t.Errorf("p99 %g < p50 %g", a.Latency.P99, a.Latency.P50)
	}
	if _, err := MonteCarlo(MCConfig{Replications: 0}, gen); err == nil {
		t.Error("zero replications accepted")
	}
}

func BenchmarkScheduleFIFO(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var sets [][]Request
	for i := 0; i < 16; i++ {
		sets = append(sets, randomRequests(rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(sets[i%len(sets)]); err != nil {
			b.Fatal(err)
		}
	}
}

// Package chansim is a discrete-event scheduler for concurrent Pinatubo
// requests on one memory channel. The trace-level evaluation treats
// requests as overlappable only across channels (a deliberately
// conservative assumption: multi-row activation is power hungry); this
// simulator models the finer truth — the command bus serialises command
// *issue* slots while banks execute independently — so the assumption can
// be checked rather than asserted, and the concurrency ablation can show
// where bank-level overlap would saturate.
//
// The model: each request is an ordered command sequence. A command c may
// start when (a) the channel command bus is free for its issue slot, (b)
// its target resource (bank) has finished every earlier command bound to
// it, and (c) the previous command of the same request has completed
// (intra-request dependency). The bus is held only for the issue slot;
// the resource is held for the command's full execution time.
package chansim

import (
	"fmt"
	"sort"

	"pinatubo/internal/ddr"
	"pinatubo/internal/nvm"
)

// Cmd is one command of a request, reduced to its scheduling footprint.
type Cmd struct {
	// Issue is the command-bus occupancy (one slot, e.g. 1.25 ns).
	Issue float64
	// Exec is how long the target resource stays busy executing it
	// (tRCD for an activate, tCL for a sense step, ...). Exec >= 0;
	// commands with Exec < Issue still hold the bus for Issue.
	Exec float64
	// Resource identifies the bank (or buffer) the command occupies.
	// Resource < 0 means bus-only (e.g. MRS).
	Resource int
}

// Request is an ordered command sequence.
type Request struct {
	Name string
	Cmds []Cmd
}

// Duration returns the request's standalone latency (no contention).
func (r Request) Duration() float64 {
	t := 0.0
	for _, c := range r.Cmds {
		d := c.Exec
		if c.Issue > d {
			d = c.Issue
		}
		t += d
	}
	return t
}

// Result is the outcome of a schedule.
type Result struct {
	// Makespan is the completion time of the last request.
	Makespan float64
	// Completion[i] is request i's finish time.
	Completion []float64
	// BusBusy is the total command-bus occupancy (for utilisation).
	BusBusy float64
}

// BusUtilisation returns BusBusy / Makespan.
func (r Result) BusUtilisation() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return r.BusBusy / r.Makespan
}

// Schedule runs the requests concurrently on one channel and returns the
// makespan. Scheduling is greedy earliest-start-first with FIFO
// tie-breaking, which is how a simple in-order per-request controller with
// a shared bus behaves.
func Schedule(reqs []Request) (Result, error) {
	type state struct {
		next     int     // next command index
		prevDone float64 // completion of the previous command
	}
	states := make([]state, len(reqs))
	for i, r := range reqs {
		for j, c := range r.Cmds {
			if c.Issue < 0 || c.Exec < 0 {
				return Result{}, fmt.Errorf("chansim: request %d command %d has negative time", i, j)
			}
		}
		_ = i
	}

	busFree := 0.0
	resourceFree := map[int]float64{}
	res := Result{Completion: make([]float64, len(reqs))}

	for {
		// Find the request whose next command can start earliest.
		best := -1
		bestStart := 0.0
		for i := range reqs {
			st := &states[i]
			if st.next >= len(reqs[i].Cmds) {
				continue
			}
			c := reqs[i].Cmds[st.next]
			start := st.prevDone
			if busFree > start {
				start = busFree
			}
			if c.Resource >= 0 && resourceFree[c.Resource] > start {
				start = resourceFree[c.Resource]
			}
			if best == -1 || start < bestStart {
				best, bestStart = i, start
			}
		}
		if best == -1 {
			break // all done
		}
		c := reqs[best].Cmds[states[best].next]
		issueEnd := bestStart + c.Issue
		execEnd := bestStart + c.Exec
		if issueEnd > execEnd {
			execEnd = issueEnd
		}
		busFree = issueEnd
		res.BusBusy += c.Issue
		if c.Resource >= 0 {
			resourceFree[c.Resource] = execEnd
		}
		states[best].prevDone = execEnd
		states[best].next++
		if states[best].next == len(reqs[best].Cmds) {
			res.Completion[best] = execEnd
			if execEnd > res.Makespan {
				res.Makespan = execEnd
			}
		}
	}
	return res, nil
}

// ThroughputCurve schedules k copies of a template request, each targeting
// a distinct resource (bank), for every k in ks, and returns requests
// completed per second — the channel's concurrency scaling curve.
func ThroughputCurve(template Request, ks []int) ([]float64, error) {
	out := make([]float64, len(ks))
	for ki, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("chansim: k=%d", k)
		}
		reqs := make([]Request, k)
		for i := 0; i < k; i++ {
			r := Request{Name: fmt.Sprintf("%s#%d", template.Name, i)}
			for _, c := range template.Cmds {
				cc := c
				if cc.Resource >= 0 {
					cc.Resource = i // distinct bank per copy
				}
				r.Cmds = append(r.Cmds, cc)
			}
			reqs[i] = r
		}
		res, err := Schedule(reqs)
		if err != nil {
			return nil, err
		}
		out[ki] = float64(k) / res.Makespan
	}
	return out, nil
}

// SaturationPoint returns the smallest k in ks beyond which adding another
// in-flight request improves channel throughput by less than frac.
func SaturationPoint(template Request, ks []int, frac float64) (int, error) {
	sorted := append([]int(nil), ks...)
	sort.Ints(sorted)
	curve, err := ThroughputCurve(template, sorted)
	if err != nil {
		return 0, err
	}
	for i := 1; i < len(curve); i++ {
		gain := curve[i]/curve[i-1] - 1
		perStep := gain / float64(sorted[i]-sorted[i-1])
		if perStep < frac {
			return sorted[i-1], nil
		}
	}
	return sorted[len(sorted)-1], nil
}

// FromDDR converts a controller-emitted DDR command sequence into a
// schedulable request. Every command occupies one command-bus slot except
// the data bursts (CmdRd/CmdWr), which hold the bus for their transfer
// time; execution occupies the command's target bank for its full
// duration. geoBanks is the bank count used to flatten bank addresses into
// resource IDs.
func FromDDR(name string, cmds []ddr.Cmd, t nvm.Timing, bus ddr.BusParams, geoBanks int) Request {
	r := Request{Name: name}
	for _, c := range cmds {
		exec := ddr.CmdTime(c, t, bus)
		issue := t.TCMD
		if c.Kind == ddr.CmdRd || c.Kind == ddr.CmdWr {
			// Bursts occupy the data bus; model as bus occupancy too.
			issue = exec
		}
		resource := c.Addr.Channel
		resource = resource*64 + c.Addr.Rank
		resource = resource*geoBanks + c.Addr.Bank
		if c.Kind == ddr.CmdMRS {
			resource = -1 // register write: bus only
		}
		r.Cmds = append(r.Cmds, Cmd{Issue: issue, Exec: exec, Resource: resource})
	}
	return r
}

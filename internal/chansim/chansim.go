// Package chansim is an event-driven scheduler for concurrent Pinatubo
// requests on one or more memory channels. The trace-level evaluation
// treats requests as overlappable only across channels (a deliberately
// conservative assumption: multi-row activation is power hungry); this
// simulator models the finer truth — each channel's command bus serialises
// command *issue* slots while banks execute independently — so the
// assumption can be checked rather than asserted, and the concurrency
// ablation can show where bank-level overlap would saturate.
//
// The model: each request is an ordered command sequence bound to one
// channel. A command c may start when (a) its channel's command bus is
// free for its issue slot, (b) its target resource (bank) has finished
// every earlier command bound to it, and (c) the previous command of the
// same request has completed (intra-request dependency). The bus is held
// only for the issue slot; the resource is held for the command's full
// execution time.
//
// Requests may grow mid-flight: a Request with a Grow hook is asked for
// more commands whenever its queue drains, which is how stochastic
// sequences (verify-and-retry, depth splits, ECC corrective reprograms)
// are replayed — the scheduler discovers each expansion only after the
// commands that triggered it have executed, exactly like a controller
// reacting to a failed verify.
package chansim

import (
	"fmt"
	"sort"

	"pinatubo/internal/ddr"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
)

// Cmd is one command of a request, reduced to its scheduling footprint.
type Cmd struct {
	// Issue is the command-bus occupancy (one slot, e.g. 1.25 ns).
	Issue float64
	// Exec is how long the target resource stays busy executing it
	// (tRCD for an activate, tCL for a sense step, ...). Exec >= 0;
	// commands with Exec < Issue still hold the bus for Issue.
	Exec float64
	// Resource identifies the bank (or buffer) the command occupies.
	// Resource < 0 means bus-only (e.g. MRS).
	Resource int
}

// Request is an ordered command sequence bound to one channel.
type Request struct {
	Name string
	Cmds []Cmd
	// Channel selects the command bus the request issues on (default 0).
	// Banks are global resource IDs, so requests on different channels
	// still serialise if they name the same resource.
	Channel int
	// Grow, if non-nil, is consulted when the queued commands are
	// exhausted: it receives the number of commands executed so far and
	// returns the next batch, or nil/empty when the request is finished.
	// This is how stochastic traces (retries, depth splits, ECC
	// reprograms) extend a request mid-flight.
	Grow func(executed int) []Cmd
}

// Duration returns the request's standalone latency (no contention) over
// the currently queued commands. Grow expansions are not included.
func (r Request) Duration() float64 {
	t := 0.0
	for _, c := range r.Cmds {
		d := c.Exec
		if c.Issue > d {
			d = c.Issue
		}
		t += d
	}
	return t
}

// ResourceStride returns 1 + the largest resource ID queued in r (minimum
// 1): offsetting a copy's resources by a multiple of the stride keeps the
// copy's banks disjoint from the original while preserving intra-request
// bank distinctness.
func (r Request) ResourceStride() int {
	max := -1
	for _, c := range r.Cmds {
		if c.Resource > max {
			max = c.Resource
		}
	}
	if max < 0 {
		return 1
	}
	return max + 1
}

// WithResourceOffset returns a deep copy of r with every non-negative
// resource ID shifted by off. Bus-only commands (Resource < 0) are left
// untouched.
func (r Request) WithResourceOffset(off int) Request {
	out := r
	out.Cmds = make([]Cmd, len(r.Cmds))
	for i, c := range r.Cmds {
		if c.Resource >= 0 {
			c.Resource += off
		}
		out.Cmds[i] = c
	}
	return out
}

// Replicate returns k copies of the template, copy i offset by
// i*template.ResourceStride() so each copy targets its own disjoint bank
// set while keeping the template's intra-request bank structure.
func Replicate(template Request, k int) []Request {
	stride := template.ResourceStride()
	reqs := make([]Request, k)
	for i := 0; i < k; i++ {
		r := template.WithResourceOffset(i * stride)
		r.Name = fmt.Sprintf("%s#%d", template.Name, i)
		reqs[i] = r
	}
	return reqs
}

// Arbiter selects which ready request issues next when several compete.
type Arbiter int

const (
	// ArbFIFO issues the command that can start earliest, breaking ties
	// by request index — how a simple in-order controller with a shared
	// bus behaves. This is the deterministic legacy policy.
	ArbFIFO Arbiter = iota
	// ArbOldestReady issues for the request that has been ready longest
	// (smallest previous-command completion time), breaking ties by
	// earliest start then request index. It trades a little peak
	// throughput for fairness: a request stalled behind a busy bank
	// cannot be starved by a stream of short newcomers.
	ArbOldestReady
)

func (a Arbiter) String() string {
	switch a {
	case ArbFIFO:
		return "fifo"
	case ArbOldestReady:
		return "oldest-ready"
	}
	return fmt.Sprintf("Arbiter(%d)", int(a))
}

// Result is the outcome of a schedule.
type Result struct {
	// Makespan is the completion time of the last request.
	Makespan float64
	// Completion[i] is request i's finish time.
	Completion []float64
	// BusBusy is the total command-bus occupancy across all channels.
	BusBusy float64
	// Channels is the number of command buses the schedule spanned.
	Channels int
}

// BusUtilisation returns the command-bus occupancy as a fraction of the
// aggregate bus time available (Makespan × channels). Always <= 1.
func (r Result) BusUtilisation() float64 {
	if r.Makespan == 0 {
		return 0
	}
	ch := r.Channels
	if ch < 1 {
		ch = 1
	}
	return r.BusBusy / (r.Makespan * float64(ch))
}

// Schedule runs the requests concurrently and returns the makespan, using
// FIFO arbitration. For fixed single-channel command sequences this
// reproduces the original greedy earliest-start-first scheduler exactly.
func Schedule(reqs []Request) (Result, error) {
	return ScheduleWith(reqs, ArbFIFO)
}

// ScheduleWith runs the requests concurrently under the given arbitration
// policy. Requests with Grow hooks are re-queried as their command queues
// drain, so the schedule reflects expansions (retries, splits) that are
// only discovered once earlier commands have executed.
func ScheduleWith(reqs []Request, arb Arbiter) (Result, error) {
	if arb != ArbFIFO && arb != ArbOldestReady {
		return Result{}, fmt.Errorf("chansim: unknown arbiter %d", int(arb))
	}
	type state struct {
		cmds     []Cmd
		next     int     // next command index
		executed int     // commands executed so far (passed to Grow)
		prevDone float64 // completion of the previous command
		grow     func(int) []Cmd
		done     bool
	}
	states := make([]state, len(reqs))
	channels := 1
	for i, r := range reqs {
		for j, c := range r.Cmds {
			if c.Issue < 0 || c.Exec < 0 {
				return Result{}, fmt.Errorf("chansim: request %d command %d has negative time", i, j)
			}
		}
		if r.Channel < 0 {
			return Result{}, fmt.Errorf("chansim: request %d has negative channel", i)
		}
		if r.Channel+1 > channels {
			channels = r.Channel + 1
		}
		states[i] = state{cmds: r.Cmds, grow: r.Grow}
	}

	busFree := make([]float64, channels)
	resourceFree := map[int]float64{}
	res := Result{Completion: make([]float64, len(reqs)), Channels: channels}

	// refill tops up a drained request from its Grow hook and records the
	// completion time once the request is truly finished.
	refill := func(i int) error {
		st := &states[i]
		for !st.done && st.next >= len(st.cmds) {
			if st.grow == nil {
				st.done = true
				break
			}
			more := st.grow(st.executed)
			if len(more) == 0 {
				st.grow = nil
				st.done = true
				break
			}
			for j, c := range more {
				if c.Issue < 0 || c.Exec < 0 {
					return fmt.Errorf("chansim: request %d grown command %d has negative time", i, j)
				}
			}
			st.cmds = append(st.cmds, more...)
		}
		if st.done && res.Completion[i] == 0 {
			res.Completion[i] = st.prevDone
			if st.prevDone > res.Makespan {
				res.Makespan = st.prevDone
			}
		}
		return nil
	}

	for {
		// Find the request whose next command the arbiter favours.
		best := -1
		bestStart, bestReady := 0.0, 0.0
		for i := range reqs {
			if err := refill(i); err != nil {
				return Result{}, err
			}
			st := &states[i]
			if st.done {
				continue
			}
			c := st.cmds[st.next]
			start := st.prevDone
			if bf := busFree[reqs[i].Channel]; bf > start {
				start = bf
			}
			if c.Resource >= 0 && resourceFree[c.Resource] > start {
				start = resourceFree[c.Resource]
			}
			switch arb {
			case ArbFIFO:
				if best == -1 || start < bestStart {
					best, bestStart = i, start
				}
			case ArbOldestReady:
				// The tie-break compares event times for exact equality on
				// purpose: both are copies of the same computed value, and an
				// epsilon here would make arbitration depend on magnitudes.
				if best == -1 || st.prevDone < bestReady ||
					//pinlint:ignore floateq exact tie-break on identical event times keeps arbitration deterministic
					(st.prevDone == bestReady && start < bestStart) {
					best, bestStart, bestReady = i, start, st.prevDone
				}
			}
		}
		if best == -1 {
			break // all done
		}
		st := &states[best]
		c := st.cmds[st.next]
		issueEnd := bestStart + c.Issue
		execEnd := bestStart + c.Exec
		if issueEnd > execEnd {
			execEnd = issueEnd
		}
		busFree[reqs[best].Channel] = issueEnd
		res.BusBusy += c.Issue
		if c.Resource >= 0 {
			resourceFree[c.Resource] = execEnd
		}
		st.prevDone = execEnd
		st.next++
		st.executed++
	}
	return res, nil
}

// ThroughputCurve schedules k copies of a template request for every k in
// ks and returns requests completed per second — the channel's concurrency
// scaling curve. Copy i's resources are offset by i×stride (stride = one
// past the template's largest resource ID), so each copy targets its own
// disjoint bank set while intra-request bank distinctness is preserved.
func ThroughputCurve(template Request, ks []int) ([]float64, error) {
	out := make([]float64, len(ks))
	for ki, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("chansim: k=%d", k)
		}
		res, err := Schedule(Replicate(template, k))
		if err != nil {
			return nil, err
		}
		out[ki] = float64(k) / res.Makespan
	}
	return out, nil
}

// SaturationPoint returns the smallest k in ks beyond which adding another
// in-flight request improves channel throughput by less than frac.
func SaturationPoint(template Request, ks []int, frac float64) (int, error) {
	sorted := append([]int(nil), ks...)
	sort.Ints(sorted)
	curve, err := ThroughputCurve(template, sorted)
	if err != nil {
		return 0, err
	}
	return SaturationOf(sorted, curve, frac), nil
}

// SaturationOf applies SaturationPoint's per-step marginal-gain rule to an
// already computed throughput curve (ks must be sorted ascending): it
// returns the smallest k beyond which throughput improves by less than
// frac per added request.
func SaturationOf(ks []int, curve []float64, frac float64) int {
	for i := 1; i < len(curve); i++ {
		gain := curve[i]/curve[i-1] - 1
		perStep := gain / float64(ks[i]-ks[i-1])
		if perStep < frac {
			return ks[i-1]
		}
	}
	return ks[len(ks)-1]
}

// BankResource flattens a row address into the global scheduler resource
// ID used by FromDDR: channel, rank and bank are packed so distinct banks
// anywhere in the system never collide.
func BankResource(a memarch.RowAddr, geoBanks int) int {
	return (a.Channel*64+a.Rank)*geoBanks + a.Bank
}

// FromDDR converts a controller-emitted DDR command sequence into a
// schedulable request. Every command occupies one command-bus slot except
// the data bursts (CmdRd/CmdWr), which hold the bus for their transfer
// time; execution occupies the command's target bank for its full
// duration. geoBanks is the bank count used to flatten bank addresses into
// resource IDs.
func FromDDR(name string, cmds []ddr.Cmd, t nvm.Timing, bus ddr.BusParams, geoBanks int) Request {
	r := Request{Name: name}
	for _, c := range cmds {
		exec := ddr.CmdTime(c, t, bus)
		issue := t.TCMD
		if c.Kind == ddr.CmdRd || c.Kind == ddr.CmdWr {
			// Bursts occupy the data bus; model as bus occupancy too.
			issue = exec
		}
		resource := BankResource(c.Addr, geoBanks)
		if c.Kind == ddr.CmdMRS {
			resource = -1 // register write: bus only
		}
		r.Cmds = append(r.Cmds, Cmd{Issue: issue, Exec: exec, Resource: resource})
	}
	return r
}

package chansim_test

import (
	"math"
	"testing"

	"pinatubo/internal/chansim"
	"pinatubo/internal/ddr"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleRequestMatchesDuration(t *testing.T) {
	r := chansim.Request{Name: "one", Cmds: []chansim.Cmd{
		{Issue: 1, Exec: 10, Resource: 0},
		{Issue: 1, Exec: 5, Resource: 0},
		{Issue: 1, Exec: 0, Resource: -1},
	}}
	res, err := chansim.Schedule([]chansim.Request{r})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Makespan, r.Duration(), 1e-12) {
		t.Errorf("makespan %g want %g", res.Makespan, r.Duration())
	}
	if res.Completion[0] != res.Makespan {
		t.Error("completion mismatch")
	}
}

func TestTwoBanksOverlap(t *testing.T) {
	// Two requests on different banks overlap almost fully: the makespan
	// approaches one request's duration plus the issue-slot skew.
	mk := func(bank int) chansim.Request {
		return chansim.Request{Cmds: []chansim.Cmd{
			{Issue: 1, Exec: 100, Resource: bank},
			{Issue: 1, Exec: 100, Resource: bank},
		}}
	}
	res, err := chansim.Schedule([]chansim.Request{mk(0), mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > 210 {
		t.Errorf("different banks did not overlap: makespan %g", res.Makespan)
	}
	if res.Makespan < 200 {
		t.Errorf("makespan %g below a single request's work", res.Makespan)
	}
}

func TestSameBankSerialises(t *testing.T) {
	mk := func() chansim.Request {
		return chansim.Request{Cmds: []chansim.Cmd{{Issue: 1, Exec: 100, Resource: 7}}}
	}
	res, err := chansim.Schedule([]chansim.Request{mk(), mk()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 200 {
		t.Errorf("same bank overlapped: makespan %g", res.Makespan)
	}
}

func TestBusSerialisesIssue(t *testing.T) {
	// Pure bus commands cannot overlap at all.
	mk := func() chansim.Request {
		return chansim.Request{Cmds: []chansim.Cmd{{Issue: 10, Exec: 0, Resource: -1}}}
	}
	res, err := chansim.Schedule([]chansim.Request{mk(), mk(), mk()})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Makespan, 30, 1e-12) {
		t.Errorf("makespan %g want 30", res.Makespan)
	}
	if !approx(res.BusUtilisation(), 1, 1e-12) {
		t.Errorf("bus utilisation %g want 1", res.BusUtilisation())
	}
}

func TestNegativeTimesRejected(t *testing.T) {
	if _, err := chansim.Schedule([]chansim.Request{{Cmds: []chansim.Cmd{{Issue: -1}}}}); err == nil {
		t.Error("negative issue accepted")
	}
}

func TestEmptySchedule(t *testing.T) {
	res, err := chansim.Schedule(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.BusUtilisation() != 0 {
		t.Error("empty schedule not zero")
	}
}

func TestThroughputCurveMonotone(t *testing.T) {
	template := chansim.Request{Cmds: []chansim.Cmd{
		{Issue: 1, Exec: 50, Resource: 0},
		{Issue: 1, Exec: 150, Resource: 0},
	}}
	ks := []int{1, 2, 4, 8}
	curve, err := chansim.ThroughputCurve(template, ks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]*0.999 {
			t.Errorf("throughput dropped at k=%d: %g -> %g", ks[i], curve[i-1], curve[i])
		}
	}
	// With a 2-slot bus footprint and 200 time units of bank work, tens of
	// requests fit before the bus saturates: k=8 ≈ 8x k=1.
	if curve[3] < 7*curve[0] {
		t.Errorf("k=8 speedup only %.1fx", curve[3]/curve[0])
	}
	if _, err := chansim.ThroughputCurve(template, []int{0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSaturationPoint(t *testing.T) {
	// Bus-bound template: issue dominates, so extra in-flight requests add
	// nothing — saturation at k=1.
	busBound := chansim.Request{Cmds: []chansim.Cmd{{Issue: 100, Exec: 100, Resource: 0}}}
	k, err := chansim.SaturationPoint(busBound, []int{1, 2, 4}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("bus-bound saturation at k=%d want 1", k)
	}
	// Bank-bound template: scales far beyond 4.
	bankBound := chansim.Request{Cmds: []chansim.Cmd{{Issue: 1, Exec: 1000, Resource: 0}}}
	k, err = chansim.SaturationPoint(bankBound, []int{1, 2, 4, 8}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k < 8 {
		t.Errorf("bank-bound saturation at k=%d want 8 (unsaturated)", k)
	}
}

// TestPinatuboOpConcurrency bridges a real controller command sequence and
// checks the evaluation's conservative parallelism assumption: a 2-row
// intra OR is bank-execution-bound, so several could overlap per channel —
// the fixed Parallelism()=channels undersells, never oversells, Pinatubo.
func TestPinatuboOpConcurrency(t *testing.T) {
	mem, err := memarch.NewMemory(memarch.Default(), nvm.Get(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := pim.NewController(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []memarch.RowAddr{{Bank: 0, Subarray: 0, Row: 0}, {Bank: 0, Subarray: 0, Row: 1}}
	dst := memarch.RowAddr{Bank: 0, Subarray: 0, Row: 5}
	res, err := ctl.Execute(sense.OpOR, srcs, 1<<19, &dst)
	if err != nil {
		t.Fatal(err)
	}
	tech := nvm.Get(nvm.PCM)
	req := chansim.FromDDR("or2", res.Commands, tech.Timing, ddr.DefaultBus(), 8)

	// Standalone duration must agree with the controller's own pricing.
	if !approx(req.Duration(), res.Seconds, res.Seconds*0.05) {
		t.Errorf("chansim duration %.4g vs controller %.4g", req.Duration(), res.Seconds)
	}

	curve, err := chansim.ThroughputCurve(req, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	// At least the assumed 4x overlap must be available per channel when
	// requests hit distinct banks.
	if gain := curve[1] / curve[0]; gain < 3.5 {
		t.Errorf("4 in-flight ops gained only %.2fx — the Parallelism=4 assumption oversells", gain)
	}
}

func TestFromDDRMapsResources(t *testing.T) {
	tech := nvm.Get(nvm.PCM)
	cmds := []ddr.Cmd{
		{Kind: ddr.CmdMRS},
		{Kind: ddr.CmdAct, Addr: memarch.RowAddr{Bank: 3}},
		{Kind: ddr.CmdRd, Bits: 8192},
	}
	req := chansim.FromDDR("x", cmds, tech.Timing, ddr.DefaultBus(), 8)
	if req.Cmds[0].Resource != -1 {
		t.Error("MRS should be bus-only")
	}
	if req.Cmds[1].Resource != 3 {
		t.Errorf("ACT resource %d want 3", req.Cmds[1].Resource)
	}
	// The data burst occupies the bus for its transfer time.
	if req.Cmds[2].Issue != req.Cmds[2].Exec {
		t.Error("RD burst should hold the bus for its transfer")
	}
}

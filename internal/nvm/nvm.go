// Package nvm holds the technology parameter tables for the non-volatile
// memories Pinatubo targets (PCM, STT-MRAM, ReRAM) plus the DRAM parameters
// needed by the S-DRAM and SIMD baselines.
//
// All parameters are representative values taken from the prototypes the
// paper cites: the 90 nm PCM chip (De Sandre, ISSCC'10; the paper's PCM main
// memory timing tRCD/tCL/tWR = 18.3/8.9/151.1 ns comes from the CACTI-3DD
// configuration built on it), the 64 Mb STT-MRAM chip (Tsuchida, ISSCC'10),
// the current-sensing ReRAM front end (Chang, JSSC'13), and the NVMDB
// technology survey (Suzuki, UCSD 2015) for resistance ranges. Where the
// paper does not pin a number we choose one from the cited source and record
// it in DESIGN.md.
package nvm

import "fmt"

// Tech identifies a memory cell technology.
type Tech int

const (
	// PCM is 1T1R phase-change memory, the paper's case-study technology.
	PCM Tech = iota
	// STTMRAM is spin-transfer-torque magnetic RAM. Its low ON/OFF ratio
	// limits Pinatubo to 2-row operations.
	STTMRAM
	// ReRAM is resistive RAM (HfOx-class). Behaves like PCM for Pinatubo:
	// high ON/OFF ratio, multi-row OR capable.
	ReRAM
	// DRAM is charge based, so it cannot run Pinatubo's resistive sensing;
	// it computes through the triple-row-activation backend instead
	// (internal/dram) and also parameterises the S-DRAM baseline.
	DRAM
)

// String returns the conventional name of the technology.
func (t Tech) String() string {
	switch t {
	case PCM:
		return "PCM"
	case STTMRAM:
		return "STT-MRAM"
	case ReRAM:
		return "ReRAM"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Resistive reports whether the technology stores data as cell resistance,
// which is the property Pinatubo's modified sensing relies on.
func (t Tech) Resistive() bool { return t == PCM || t == STTMRAM || t == ReRAM }

// CellParams describes one memory cell's electrical behaviour. Resistances
// are in ohms. The low-resistance state encodes logic "1" and the
// high-resistance state logic "0" for PCM/ReRAM (the encoding the paper
// assumes for multi-row OR).
type CellParams struct {
	RLow  float64 // SET / parallel / low-resistance state (logic "1")
	RHigh float64 // RESET / anti-parallel / high-resistance state (logic "0")
	// SigmaLog is the standard deviation of ln(R) for each state's
	// log-normal process spread. The paper assumes "variation is well
	// controlled so that no overlap exists"; the analog model checks this.
	SigmaLog float64
	// AreaF2 is the cell footprint in F² (F = feature size).
	AreaF2 float64
}

// OnOffRatio returns RHigh/RLow, the figure that bounds how many rows can be
// sensed in parallel.
func (c CellParams) OnOffRatio() float64 { return c.RHigh / c.RLow }

// Timing holds the DDR-visible timing of a main memory built from the
// technology. All values are in seconds (float64, so sub-nanosecond values
// such as the paper's 18.3 ns tRCD are exact); use Dur to convert a derived
// latency to time.Duration for presentation.
type Timing struct {
	TRCD float64 // activate: row open to data sensed
	TCL  float64 // CAS latency: column access / one sense step
	TWR  float64 // write recovery: cell array write completion
	TCMD float64 // one slot on the command bus (address issue)
	TRST float64 // LWL-latch RESET pulse before a multi-row activate
}

// Energy holds per-event energies in joules. "Per bit" entries are for one
// sensed/written/transferred bit.
type Energy struct {
	ActPerBit    float64 // cell-array activation (row open) per sensed bit
	LWLPerAct    float64 // wordline decode + drive energy per row activation
	SensePerBit  float64 // sense amplifier resolve, per bit, single row on BL
	SenseRowAdd  float64 // extra SA energy per additional open row per bit
	WritePerBit  float64 // cell write (SET/RESET average) per bit
	GDLPerBit    float64 // global data line transfer inside a bank, per bit
	IOBusPerBit  float64 // chip I/O + DDR bus transfer, per bit
	LogicPerBit  float64 // digital add-on logic (AC-PIM / global buffers), per bit op
	BufferPerBit float64 // latching one bit in a global/I-O buffer
	RefreshPerB  float64 // refresh energy per bit per refresh (DRAM only)
	// ECCPerBit is the SECDED check-bit generate / syndrome-decode logic
	// energy per data bit. A (72,64) encoder is a shallow XOR tree (~3
	// gate equivalents per data bit), far lighter than the full add-on
	// datapath LogicPerBit prices.
	ECCPerBit float64
}

// Params bundles everything known about a technology node.
type Params struct {
	Tech   Tech
	Node   int // feature size in nm
	Cell   CellParams
	Timing Timing
	Energy Energy
	// MaxOpenRows is the architectural cap on simultaneously opened rows
	// for multi-row operations, derived from the sensing margin analysis
	// (see internal/analog). The paper: 128 for PCM (TCAM-precedent
	// sensing margins), 2 for STT-MRAM.
	MaxOpenRows int
}

// Get returns the default parameter set for a technology. It panics on an
// unknown technology, which indicates a programming error, not bad input.
func Get(t Tech) Params {
	switch t {
	case PCM:
		return pcmParams
	case STTMRAM:
		return sttParams
	case ReRAM:
		return rramParams
	case DRAM:
		return dramParams
	default:
		panic(fmt.Sprintf("nvm: unknown technology %d", int(t)))
	}
}

// All returns the parameter sets of the three NVM technologies.
func All() []Params { return []Params{pcmParams, sttParams, rramParams} }

var pcmParams = Params{
	Tech: PCM,
	Node: 65,
	Cell: CellParams{
		// GST PCM: Rlow ~ 10 kΩ SET, Rhigh ~ 1 MΩ RESET (NVMDB range).
		RLow:     1.0e4,
		RHigh:    1.0e6,
		SigmaLog: 0.05,
		AreaF2:   9, // 1T1R PCM with BJT/MOS selector
	},
	Timing: Timing{
		// The paper's stated PCM main-memory timing.
		TRCD: nsf(18.3),
		TCL:  nsf(8.9),
		TWR:  nsf(151.1),
		TCMD: nsf(1.25), // one DDR3-1600 command-bus slot
		TRST: nsf(1.25),
	},
	Energy: Energy{
		ActPerBit:    0.5e-12, // BL precharge/bias per sensed bit
		LWLPerAct:    2.0e-12,
		SensePerBit:  0.25e-12, // analog CSA resolve (Chang JSSC'13 class)
		SenseRowAdd:  0.05e-12,
		WritePerBit:  8.0e-12, // PCM programming dominates all other events
		GDLPerBit:    2.0e-12,
		IOBusPerBit:  8.0e-12, // chip pad + DDR channel
		LogicPerBit:  6.0e-12, // 65 nm synthesized datapath incl. clock/control
		BufferPerBit: 0.5e-12,
		RefreshPerB:  0,
		ECCPerBit:    0.3e-12,
	},
	MaxOpenRows: 128,
}

var sttParams = Params{
	Tech: STTMRAM,
	Node: 65,
	Cell: CellParams{
		// MTJ: Rlow ~ 2.5 kΩ parallel, TMR ~ 150% → Rhigh ~ 6.25 kΩ.
		RLow:     2.5e3,
		RHigh:    6.25e3,
		SigmaLog: 0.03,
		AreaF2:   14, // larger access transistor for write current
	},
	Timing: Timing{
		TRCD: nsf(5.5),
		TCL:  nsf(5.0),
		TWR:  nsf(12.5),
		TCMD: nsf(1.25),
		TRST: nsf(1.25),
	},
	Energy: Energy{
		ActPerBit:    1.0e-12,
		LWLPerAct:    1.0e-12,
		SensePerBit:  0.35e-12, // small signal needs a bigger SA
		SenseRowAdd:  0.15e-12,
		WritePerBit:  5.0e-12,
		GDLPerBit:    2.0e-12,
		IOBusPerBit:  8.0e-12,
		LogicPerBit:  6.0e-12,
		BufferPerBit: 0.5e-12,
		RefreshPerB:  0,
		ECCPerBit:    0.3e-12,
	},
	MaxOpenRows: 2,
}

var rramParams = Params{
	Tech: ReRAM,
	Node: 65,
	Cell: CellParams{
		// HfOx ReRAM: Rlow ~ 20 kΩ, Rhigh ~ 2 MΩ.
		RLow:     2.0e4,
		RHigh:    2.0e6,
		SigmaLog: 0.05,
		AreaF2:   8,
	},
	Timing: Timing{
		TRCD: nsf(10.0),
		TCL:  nsf(8.0),
		TWR:  nsf(50.0),
		TCMD: nsf(1.25),
		TRST: nsf(1.25),
	},
	Energy: Energy{
		ActPerBit:    1.5e-12,
		LWLPerAct:    1.5e-12,
		SensePerBit:  0.25e-12,
		SenseRowAdd:  0.05e-12,
		WritePerBit:  4.0e-12,
		GDLPerBit:    2.0e-12,
		IOBusPerBit:  8.0e-12,
		LogicPerBit:  6.0e-12,
		BufferPerBit: 0.5e-12,
		RefreshPerB:  0,
		ECCPerBit:    0.3e-12,
	},
	MaxOpenRows: 128,
}

var dramParams = Params{
	Tech: DRAM,
	Node: 65,
	Cell: CellParams{
		// Charge based; resistance fields unused but kept non-zero so that
		// accidental resistive use of DRAM fails loudly in the analog model
		// rather than dividing by zero.
		RLow:     1,
		RHigh:    1,
		SigmaLog: 0,
		AreaF2:   6,
	},
	Timing: Timing{
		// DDR3-1600: 13.75 ns tRCD/tCL, 15 ns tWR.
		TRCD: nsf(13.75),
		TCL:  nsf(13.75),
		TWR:  nsf(15.0),
		TCMD: nsf(1.25),
		TRST: nsf(1.25),
	},
	Energy: Energy{
		ActPerBit:    1.2e-12,
		LWLPerAct:    1.5e-12,
		SensePerBit:  0.15e-12,
		SenseRowAdd:  0.1e-12,
		WritePerBit:  1.2e-12,
		GDLPerBit:    2.0e-12,
		IOBusPerBit:  8.0e-12,
		LogicPerBit:  6.0e-12,
		BufferPerBit: 0.5e-12,
		RefreshPerB:  0.05e-12,
		ECCPerBit:    0.3e-12, // same shallow XOR-tree logic as the NVMs
	},
	MaxOpenRows: 3, // triple-row activation used by in-DRAM computing
}

// nsf converts nanoseconds to seconds.
func nsf(ns float64) float64 { return ns * 1e-9 }

package nvm

import (
	"math"
	"testing"
)

func TestTechString(t *testing.T) {
	cases := map[Tech]string{
		PCM:     "PCM",
		STTMRAM: "STT-MRAM",
		ReRAM:   "ReRAM",
		DRAM:    "DRAM",
		Tech(9): "Tech(9)",
	}
	for tech, want := range cases {
		if got := tech.String(); got != want {
			t.Errorf("%d.String()=%q want %q", int(tech), got, want)
		}
	}
}

func TestResistive(t *testing.T) {
	for _, tech := range []Tech{PCM, STTMRAM, ReRAM} {
		if !tech.Resistive() {
			t.Errorf("%v should be resistive", tech)
		}
	}
	if DRAM.Resistive() {
		t.Error("DRAM should not be resistive")
	}
}

func TestGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(unknown) did not panic")
		}
	}()
	Get(Tech(42))
}

func TestPaperPCMTiming(t *testing.T) {
	// The paper states tRCD-tCL-tWR = 18.3-8.9-151.1 ns for the 1T1R PCM
	// main memory. This is load-bearing for every latency figure.
	p := Get(PCM)
	approx := func(s, ns float64) bool {
		return math.Abs(s-ns*1e-9) < 1e-13
	}
	if !approx(p.Timing.TRCD, 18.3) {
		t.Errorf("PCM tRCD=%v want 18.3ns", p.Timing.TRCD)
	}
	if !approx(p.Timing.TCL, 8.9) {
		t.Errorf("PCM tCL=%v want 8.9ns", p.Timing.TCL)
	}
	if !approx(p.Timing.TWR, 151.1) {
		t.Errorf("PCM tWR=%v want 151.1ns", p.Timing.TWR)
	}
}

func TestMaxOpenRowsClaims(t *testing.T) {
	// Paper: maximal 128-row operations for PCM, 2-row for STT-MRAM.
	if got := Get(PCM).MaxOpenRows; got != 128 {
		t.Errorf("PCM MaxOpenRows=%d want 128", got)
	}
	if got := Get(STTMRAM).MaxOpenRows; got != 2 {
		t.Errorf("STT-MRAM MaxOpenRows=%d want 2", got)
	}
	if got := Get(ReRAM).MaxOpenRows; got != 128 {
		t.Errorf("ReRAM MaxOpenRows=%d want 128", got)
	}
}

func TestOnOffRatios(t *testing.T) {
	// PCM and ReRAM need ratios around 100 for deep multi-row OR; STT-MRAM
	// is low (TMR ~ 150% → ratio ~ 2.5), which is why it is capped at 2.
	if r := Get(PCM).Cell.OnOffRatio(); r < 50 {
		t.Errorf("PCM ON/OFF ratio %g too small for 128-row OR", r)
	}
	if r := Get(ReRAM).Cell.OnOffRatio(); r < 50 {
		t.Errorf("ReRAM ON/OFF ratio %g too small for multi-row OR", r)
	}
	if r := Get(STTMRAM).Cell.OnOffRatio(); r > 5 {
		t.Errorf("STT-MRAM ON/OFF ratio %g unrealistically large", r)
	}
}

func TestParamsSanity(t *testing.T) {
	for _, p := range append(All(), Get(DRAM)) {
		if p.Cell.RLow <= 0 || p.Cell.RHigh < p.Cell.RLow {
			t.Errorf("%v: bad resistance pair %g/%g", p.Tech, p.Cell.RLow, p.Cell.RHigh)
		}
		if p.Timing.TRCD <= 0 || p.Timing.TCL <= 0 || p.Timing.TWR <= 0 {
			t.Errorf("%v: non-positive timing", p.Tech)
		}
		if p.Energy.SensePerBit <= 0 || p.Energy.WritePerBit <= 0 {
			t.Errorf("%v: non-positive energy", p.Tech)
		}
		if p.MaxOpenRows < 1 {
			t.Errorf("%v: MaxOpenRows=%d", p.Tech, p.MaxOpenRows)
		}
		if p.Cell.AreaF2 <= 0 || p.Node <= 0 {
			t.Errorf("%v: bad geometry params", p.Tech)
		}
	}
}

func TestAllReturnsThreeNVMs(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("All() returned %d techs, want 3", len(all))
	}
	seen := map[Tech]bool{}
	for _, p := range all {
		if !p.Tech.Resistive() {
			t.Errorf("All() contains non-resistive %v", p.Tech)
		}
		seen[p.Tech] = true
	}
	if !seen[PCM] || !seen[STTMRAM] || !seen[ReRAM] {
		t.Error("All() missing a technology")
	}
}

func TestPCMWriteDominatesRead(t *testing.T) {
	// PCM's defining asymmetry: writes are far slower and more expensive
	// than reads. The in-place-update modelling depends on it.
	p := Get(PCM)
	if p.Timing.TWR < 5*p.Timing.TRCD {
		t.Error("PCM tWR should dominate tRCD")
	}
	if p.Energy.WritePerBit < 4*p.Energy.ActPerBit {
		t.Error("PCM write energy should dominate read energy")
	}
}

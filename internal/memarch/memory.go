package memarch

import (
	"fmt"
	"sort"

	"pinatubo/internal/nvm"
)

// Memory is the functional storage model of an NVM main memory: every
// rank-logical row is addressable, rows are materialised lazily (a default
// geometry holds 16 GiB per rank, far more than a simulation ever touches),
// and unwritten rows read as all zeros — the RESET (high-resistance, logic
// "0") state a fresh PCM array powers up in.
//
// Memory also owns the two buffer levels Pinatubo's inter-subarray and
// inter-bank datapaths latch results in: one global row buffer per bank and
// one I/O buffer per rank.
type Memory struct {
	geo  Geometry
	tech nvm.Params
	rows map[uint64][]uint64

	// globalBuf[channel][rank][bank] is the bank's global row buffer.
	globalBuf map[[3]int][]uint64
	// ioBuf[channel][rank] is the rank's I/O buffer.
	ioBuf map[[2]int][]uint64

	// Counters for verification and reporting.
	rowReads  int64
	rowWrites int64
	// writeCounts tracks per-row write totals — PCM endurance is finite
	// (~10^8 writes), so the evaluation's chained designs must be
	// auditable for write amplification.
	writeCounts map[uint64]int64

	// freeRows recycles zeroed row storage from Reset, so a pooled shard
	// memory re-materialises its working set without fresh allocations.
	freeRows [][]uint64

	// aliased marks rows whose backing is borrowed read-only from another
	// Memory (AliasRow). Reset detaches them instead of zeroing and
	// recycling them, and WriteRow refuses them — a write to a borrowed
	// row would corrupt the lender.
	aliased map[uint64]bool
}

// NewMemory builds a memory with the given geometry and technology.
func NewMemory(geo Geometry, tech nvm.Params) (*Memory, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	return &Memory{
		geo:         geo,
		tech:        tech,
		rows:        make(map[uint64][]uint64),
		globalBuf:   make(map[[3]int][]uint64),
		ioBuf:       make(map[[2]int][]uint64),
		writeCounts: make(map[uint64]int64),
	}, nil
}

// Geometry returns the memory organisation.
func (m *Memory) Geometry() Geometry { return m.geo }

// Tech returns the technology parameters.
func (m *Memory) Tech() nvm.Params { return m.tech }

// RowReads and RowWrites expose access counters for tests and stats.
func (m *Memory) RowReads() int64  { return m.rowReads }
func (m *Memory) RowWrites() int64 { return m.rowWrites }

// row returns the backing words of addr, materialising them if needed.
func (m *Memory) row(addr RowAddr) []uint64 {
	key := m.geo.Encode(addr)
	r, ok := m.rows[key]
	if !ok {
		if n := len(m.freeRows); n > 0 {
			r = m.freeRows[n-1]
			m.freeRows = m.freeRows[:n-1]
		} else {
			r = make([]uint64, m.geo.RowWords())
		}
		m.rows[key] = r
	}
	return r
}

// AliasRow installs words as addr's backing without copying. The row is
// borrowed read-only from another Memory: Reset detaches it (never zeroes
// or recycles it) and WriteRow refuses it. The batch executor aliases a
// shard's read-only footprint rows this way, so window setup does not
// copy data nothing in the window writes.
func (m *Memory) AliasRow(addr RowAddr, words []uint64) {
	key := m.geo.Encode(addr)
	m.rows[key] = words
	if m.aliased == nil {
		m.aliased = make(map[uint64]bool)
	}
	m.aliased[key] = true
}

// Aliased reports whether addr's backing is borrowed via AliasRow.
func (m *Memory) Aliased(addr RowAddr) bool {
	return len(m.aliased) > 0 && m.aliased[m.geo.Encode(addr)]
}

// Reset restores the memory to its fresh all-zeros state: every
// materialised row, buffer and counter is cleared. Row storage is zeroed
// and kept on a freelist, so a pooled shard memory that re-materialises a
// similar working set on its next window allocates nothing for it.
// Borrowed rows are detached untouched — their storage belongs to the
// lending memory.
func (m *Memory) Reset() {
	for k, r := range m.rows {
		if len(m.aliased) > 0 && m.aliased[k] {
			delete(m.rows, k)
			continue
		}
		for i := range r {
			r[i] = 0
		}
		//pinlint:ignore maporder recycled buffers are zeroed and interchangeable; pop order is unobservable
		m.freeRows = append(m.freeRows, r)
		delete(m.rows, k)
	}
	for k := range m.aliased {
		delete(m.aliased, k)
	}
	for k, b := range m.globalBuf {
		for i := range b {
			b[i] = 0
		}
		//pinlint:ignore maporder recycled buffers are zeroed and interchangeable; pop order is unobservable
		m.freeRows = append(m.freeRows, b)
		delete(m.globalBuf, k)
	}
	for k, b := range m.ioBuf {
		for i := range b {
			b[i] = 0
		}
		//pinlint:ignore maporder recycled buffers are zeroed and interchangeable; pop order is unobservable
		m.freeRows = append(m.freeRows, b)
		delete(m.ioBuf, k)
	}
	for k := range m.writeCounts {
		delete(m.writeCounts, k)
	}
	m.rowReads = 0
	m.rowWrites = 0
}

// PeekRow returns the words of a row without copying and without counting
// a read access. Intended for the PIM datapath, which accounts for accesses
// itself; ordinary clients should use ReadRow.
func (m *Memory) PeekRow(addr RowAddr) []uint64 { return m.row(addr) }

// ReadRow returns a copy of the row's words.
func (m *Memory) ReadRow(addr RowAddr) []uint64 {
	m.rowReads++
	src := m.row(addr)
	dst := make([]uint64, len(src))
	copy(dst, src)
	return dst
}

// WriteRow overwrites the row with words (shorter slices zero-fill the
// rest; longer slices are an error).
func (m *Memory) WriteRow(addr RowAddr, words []uint64) error {
	if len(words) > m.geo.RowWords() {
		return fmt.Errorf("memarch: writing %d words into a %d-word row %v",
			len(words), m.geo.RowWords(), addr)
	}
	key := m.geo.Encode(addr)
	if len(m.aliased) > 0 && m.aliased[key] {
		return fmt.Errorf("memarch: write to row %v borrowed read-only via AliasRow", addr)
	}
	m.rowWrites++
	m.writeCounts[key]++
	dst := m.row(addr)
	n := copy(dst, words)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return nil
}

// MaterializedRows reports how many rows have backing storage (testing aid).
func (m *Memory) MaterializedRows() int { return len(m.rows) }

// MaterializedAddrs returns the addresses of every row with backing
// storage, in ascending row-key order (deterministic regardless of map
// iteration order). The batch executor uses it to copy a shard memory's
// touched rows back into the live memory.
func (m *Memory) MaterializedAddrs() []RowAddr {
	keys := make([]uint64, 0, len(m.rows))
	for k := range m.rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]RowAddr, len(keys))
	for i, k := range keys {
		out[i] = m.geo.Decode(k)
	}
	return out
}

// AbsorbCounters folds another memory's access counters into this one.
// Shard memories of the batch executor count reads, writes and per-row
// programs while running concurrently; merging them here (in shard order,
// after all shards join) keeps the live memory's wear ledger exact — the
// adds are integer, so no count is dropped or double-applied.
func (m *Memory) AbsorbCounters(o *Memory) {
	m.rowReads += o.rowReads
	m.rowWrites += o.rowWrites
	for k, v := range o.writeCounts {
		m.writeCounts[k] += v
	}
}

// RowWriteCount returns how many times addr has been programmed.
func (m *Memory) RowWriteCount(addr RowAddr) int64 {
	return m.writeCounts[m.geo.Encode(addr)]
}

// HottestRow returns the most-written row and its write count — the
// endurance hot spot a wear-levelling layer would need to rotate. The
// zero address with count 0 means nothing was written yet.
func (m *Memory) HottestRow() (RowAddr, int64) {
	var bestKey uint64
	var best int64
	for k, n := range m.writeCounts {
		if n > best || (n == best && k < bestKey) {
			bestKey, best = k, n
		}
	}
	if best == 0 {
		return RowAddr{}, 0
	}
	return m.geo.Decode(bestKey), best
}

// GlobalBuffer returns the bank's global row buffer, materialising it on
// first use.
func (m *Memory) GlobalBuffer(channel, rank, bank int) []uint64 {
	key := [3]int{channel, rank, bank}
	b, ok := m.globalBuf[key]
	if !ok {
		b = make([]uint64, m.geo.RowWords())
		m.globalBuf[key] = b
	}
	return b
}

// IOBuffer returns the rank's I/O buffer, materialising it on first use.
func (m *Memory) IOBuffer(channel, rank int) []uint64 {
	key := [2]int{channel, rank}
	b, ok := m.ioBuf[key]
	if !ok {
		b = make([]uint64, m.geo.RowWords())
		m.ioBuf[key] = b
	}
	return b
}

// Package memarch models the physical organisation of the NVM main memory
// Pinatubo lives in: channels of ranks, each rank built from lock-step
// chips, each chip from banks, banks from subarrays, subarrays from
// lock-step MATs whose bitlines share sense amplifiers through a column
// multiplexer (Fig. 3 of the paper).
//
// Because the eight chips of a rank and the MATs of a subarray operate in
// lock step, the simulator's unit of storage is the *rank-logical row*: the
// concatenation of one physical row from every MAT of one subarray across
// all chips. With the default geometry that is 2^19 bits — which is exactly
// why the paper's Fig. 9 throughput curve kinks at a 2^19-bit vector
// (turning point B), while the 32:1 column mux leaves 2^14 concurrently
// active SAs (turning point A).
package memarch

import "fmt"

// Geometry describes the memory organisation. All counts must be powers of
// two (address slicing relies on it).
type Geometry struct {
	Channels         int // independent channels
	RanksPerChannel  int // ranks sharing one channel bus
	ChipsPerRank     int // lock-step chips forming a rank
	BanksPerChip     int // banks per chip
	SubarraysPerBank int // subarrays sharing the bank's global row buffer
	MatsPerSubarray  int // lock-step MATs per subarray
	RowsPerSubarray  int // wordlines per MAT (same in every MAT)
	MatRowBits       int // bits on one MAT row (columns per MAT)
	MuxRatio         int // adjacent columns sharing one SA (the paper: 32)
}

// Default returns the geometry used throughout the evaluation, sized so
// that the rank row is 2^19 bits and the concurrent SA width 2^14 bits.
func Default() Geometry {
	return Geometry{
		Channels:         4,
		RanksPerChannel:  1,
		ChipsPerRank:     8,
		BanksPerChip:     8,
		SubarraysPerBank: 32,
		MatsPerSubarray:  16,
		RowsPerSubarray:  1024,
		MatRowBits:       4096,
		MuxRatio:         32,
	}
}

// Validate checks structural invariants.
func (g Geometry) Validate() error {
	fields := []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"RanksPerChannel", g.RanksPerChannel},
		{"ChipsPerRank", g.ChipsPerRank},
		{"BanksPerChip", g.BanksPerChip},
		{"SubarraysPerBank", g.SubarraysPerBank},
		{"MatsPerSubarray", g.MatsPerSubarray},
		{"RowsPerSubarray", g.RowsPerSubarray},
		{"MatRowBits", g.MatRowBits},
		{"MuxRatio", g.MuxRatio},
	}
	for _, f := range fields {
		if f.v <= 0 {
			return fmt.Errorf("memarch: %s must be positive, got %d", f.name, f.v)
		}
		if f.v&(f.v-1) != 0 {
			return fmt.Errorf("memarch: %s must be a power of two, got %d", f.name, f.v)
		}
	}
	if g.MatRowBits%g.MuxRatio != 0 {
		return fmt.Errorf("memarch: MuxRatio %d does not divide MatRowBits %d", g.MuxRatio, g.MatRowBits)
	}
	if g.RowBits()%64 != 0 {
		return fmt.Errorf("memarch: rank row of %d bits is not word aligned", g.RowBits())
	}
	return nil
}

// ChipRowBits is the row width contributed by one chip (all MATs of one
// subarray in lock step).
func (g Geometry) ChipRowBits() int { return g.MatsPerSubarray * g.MatRowBits }

// RowBits is the rank-logical row width: the unit of a Pinatubo operation.
func (g Geometry) RowBits() int { return g.ChipRowBits() * g.ChipsPerRank }

// RowWords is RowBits in 64-bit words.
func (g Geometry) RowWords() int { return g.RowBits() / 64 }

// SenseWidthBits is the number of bits resolved per sensing step across the
// rank: one SA per MuxRatio columns.
func (g Geometry) SenseWidthBits() int { return g.RowBits() / g.MuxRatio }

// ColumnGroups is the number of serial sensing steps needed to cover a full
// row (equals MuxRatio).
func (g Geometry) ColumnGroups() int { return g.MuxRatio }

// RowsPerBank is the number of rank-logical rows a bank holds.
func (g Geometry) RowsPerBank() int { return g.SubarraysPerBank * g.RowsPerSubarray }

// RowsPerRank is the number of rank-logical rows a rank holds.
func (g Geometry) RowsPerRank() int { return g.BanksPerChip * g.RowsPerBank() }

// TotalRows is the number of rank-logical rows in the whole memory.
func (g Geometry) TotalRows() int {
	return g.Channels * g.RanksPerChannel * g.RowsPerRank()
}

// CapacityBits is the total storage capacity in bits.
func (g Geometry) CapacityBits() int64 {
	return int64(g.TotalRows()) * int64(g.RowBits())
}

// RowAddr locates one rank-logical row.
type RowAddr struct {
	Channel  int
	Rank     int
	Bank     int
	Subarray int
	Row      int // wordline index within the subarray
}

// String renders the address in ch/rk/ba/sa/row form.
func (a RowAddr) String() string {
	return fmt.Sprintf("ch%d.rk%d.ba%d.sa%d.row%d", a.Channel, a.Rank, a.Bank, a.Subarray, a.Row)
}

// Valid reports whether the address is inside the geometry.
func (g Geometry) Valid(a RowAddr) bool {
	return a.Channel >= 0 && a.Channel < g.Channels &&
		a.Rank >= 0 && a.Rank < g.RanksPerChannel &&
		a.Bank >= 0 && a.Bank < g.BanksPerChip &&
		a.Subarray >= 0 && a.Subarray < g.SubarraysPerBank &&
		a.Row >= 0 && a.Row < g.RowsPerSubarray
}

// Encode flattens a RowAddr to a dense index in [0, TotalRows). Panics on
// an address outside the geometry — addresses are validated at the API
// boundary, so an invalid one here is a simulator bug.
func (g Geometry) Encode(a RowAddr) uint64 {
	if !g.Valid(a) {
		panic(fmt.Sprintf("memarch: invalid address %v for geometry", a))
	}
	idx := uint64(a.Channel)
	idx = idx*uint64(g.RanksPerChannel) + uint64(a.Rank)
	idx = idx*uint64(g.BanksPerChip) + uint64(a.Bank)
	idx = idx*uint64(g.SubarraysPerBank) + uint64(a.Subarray)
	idx = idx*uint64(g.RowsPerSubarray) + uint64(a.Row)
	return idx
}

// Decode expands a dense row index back to a RowAddr. Panics on an index
// outside [0, TotalRows) — the inverse of Encode's contract.
func (g Geometry) Decode(idx uint64) RowAddr {
	if idx >= uint64(g.TotalRows()) {
		panic(fmt.Sprintf("memarch: row index %d out of range", idx))
	}
	a := RowAddr{}
	a.Row = int(idx % uint64(g.RowsPerSubarray))
	idx /= uint64(g.RowsPerSubarray)
	a.Subarray = int(idx % uint64(g.SubarraysPerBank))
	idx /= uint64(g.SubarraysPerBank)
	a.Bank = int(idx % uint64(g.BanksPerChip))
	idx /= uint64(g.BanksPerChip)
	a.Rank = int(idx % uint64(g.RanksPerChannel))
	idx /= uint64(g.RanksPerChannel)
	a.Channel = int(idx)
	return a
}

// SameSubarray reports whether all addresses share channel, rank, bank and
// subarray — the precondition for an intra-subarray (SA-computed) op.
func SameSubarray(addrs ...RowAddr) bool {
	for _, a := range addrs[1:] {
		if a.Channel != addrs[0].Channel || a.Rank != addrs[0].Rank ||
			a.Bank != addrs[0].Bank || a.Subarray != addrs[0].Subarray {
			return false
		}
	}
	return true
}

// SameBank reports whether all addresses share channel, rank and bank — the
// precondition for an inter-subarray (global-row-buffer) op.
func SameBank(addrs ...RowAddr) bool {
	for _, a := range addrs[1:] {
		if a.Channel != addrs[0].Channel || a.Rank != addrs[0].Rank || a.Bank != addrs[0].Bank {
			return false
		}
	}
	return true
}

// SameRank reports whether all addresses share channel and rank — the
// precondition for an inter-bank (I/O-buffer) op. With lock-step chips the
// rank is the "chip" locus of the paper's Fig. 3(a).
func SameRank(addrs ...RowAddr) bool {
	for _, a := range addrs[1:] {
		if a.Channel != addrs[0].Channel || a.Rank != addrs[0].Rank {
			return false
		}
	}
	return true
}

// DistinctRows reports whether all addresses name pairwise distinct rows —
// the paper notes Pinatubo cannot operate on bit-vectors sharing one row.
func DistinctRows(g Geometry, addrs ...RowAddr) bool {
	seen := make(map[uint64]bool, len(addrs))
	for _, a := range addrs {
		k := g.Encode(a)
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}

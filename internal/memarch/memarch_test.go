package memarch

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pinatubo/internal/nvm"
)

func TestDefaultGeometryInvariants(t *testing.T) {
	g := Default()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Load-bearing: Fig. 9's turning points depend on these two widths.
	if g.RowBits() != 1<<19 {
		t.Errorf("RowBits=%d want 2^19", g.RowBits())
	}
	if g.SenseWidthBits() != 1<<14 {
		t.Errorf("SenseWidthBits=%d want 2^14", g.SenseWidthBits())
	}
	if g.ColumnGroups() != 32 {
		t.Errorf("ColumnGroups=%d want 32 (the paper's SA sharing)", g.ColumnGroups())
	}
	if g.ChipRowBits() != 1<<16 {
		t.Errorf("ChipRowBits=%d want 2^16", g.ChipRowBits())
	}
	if g.RowWords() != g.RowBits()/64 {
		t.Errorf("RowWords inconsistent")
	}
	if g.CapacityBits() <= 0 {
		t.Errorf("capacity overflowed: %d", g.CapacityBits())
	}
}

func TestGeometryValidateRejects(t *testing.T) {
	bad := Default()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels should fail")
	}
	bad = Default()
	bad.MatsPerSubarray = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two should fail")
	}
	bad = Default()
	bad.MuxRatio = 4096 * 2
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "MuxRatio") {
		t.Errorf("mux > row bits should fail, got %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := Default()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := RowAddr{
			Channel:  rng.Intn(g.Channels),
			Rank:     rng.Intn(g.RanksPerChannel),
			Bank:     rng.Intn(g.BanksPerChip),
			Subarray: rng.Intn(g.SubarraysPerBank),
			Row:      rng.Intn(g.RowsPerSubarray),
		}
		if got := g.Decode(g.Encode(a)); got != a {
			t.Fatalf("round trip %v -> %v", a, got)
		}
	}
}

func TestEncodeDense(t *testing.T) {
	// Encode must be a bijection onto [0, TotalRows): check corners.
	g := Default()
	first := RowAddr{}
	last := RowAddr{
		Channel:  g.Channels - 1,
		Rank:     g.RanksPerChannel - 1,
		Bank:     g.BanksPerChip - 1,
		Subarray: g.SubarraysPerBank - 1,
		Row:      g.RowsPerSubarray - 1,
	}
	if g.Encode(first) != 0 {
		t.Errorf("Encode(first)=%d", g.Encode(first))
	}
	if got, want := g.Encode(last), uint64(g.TotalRows()-1); got != want {
		t.Errorf("Encode(last)=%d want %d", got, want)
	}
}

func TestEncodeInvalidPanics(t *testing.T) {
	g := Default()
	defer func() {
		if recover() == nil {
			t.Fatal("Encode of invalid address did not panic")
		}
	}()
	g.Encode(RowAddr{Channel: g.Channels})
}

func TestDecodeOutOfRangePanics(t *testing.T) {
	g := Default()
	defer func() {
		if recover() == nil {
			t.Fatal("Decode out of range did not panic")
		}
	}()
	g.Decode(uint64(g.TotalRows()))
}

func TestPlacementPredicates(t *testing.T) {
	a := RowAddr{Channel: 1, Rank: 0, Bank: 2, Subarray: 3, Row: 4}
	sameSub := RowAddr{Channel: 1, Rank: 0, Bank: 2, Subarray: 3, Row: 9}
	sameBank := RowAddr{Channel: 1, Rank: 0, Bank: 2, Subarray: 7, Row: 4}
	sameRank := RowAddr{Channel: 1, Rank: 0, Bank: 5, Subarray: 3, Row: 4}
	otherCh := RowAddr{Channel: 2, Rank: 0, Bank: 2, Subarray: 3, Row: 4}

	if !SameSubarray(a, sameSub) || SameSubarray(a, sameBank) {
		t.Error("SameSubarray wrong")
	}
	if !SameBank(a, sameSub, sameBank) || SameBank(a, sameRank) {
		t.Error("SameBank wrong")
	}
	if !SameRank(a, sameSub, sameBank, sameRank) || SameRank(a, otherCh) {
		t.Error("SameRank wrong")
	}
}

func TestDistinctRows(t *testing.T) {
	g := Default()
	a := RowAddr{Row: 1}
	b := RowAddr{Row: 2}
	if !DistinctRows(g, a, b) {
		t.Error("distinct rows reported as shared")
	}
	if DistinctRows(g, a, b, a) {
		t.Error("duplicate row not detected")
	}
}

func TestRowAddrString(t *testing.T) {
	s := RowAddr{Channel: 1, Rank: 2, Bank: 3, Subarray: 4, Row: 5}.String()
	if s != "ch1.rk2.ba3.sa4.row5" {
		t.Errorf("String=%q", s)
	}
}

func newMem(t *testing.T) *Memory {
	t.Helper()
	m, err := NewMemory(Default(), nvm.Get(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemoryZeroFill(t *testing.T) {
	m := newMem(t)
	r := m.ReadRow(RowAddr{Row: 7})
	if len(r) != m.Geometry().RowWords() {
		t.Fatalf("row has %d words want %d", len(r), m.Geometry().RowWords())
	}
	for _, w := range r {
		if w != 0 {
			t.Fatal("fresh row not zero")
		}
	}
}

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := newMem(t)
	addr := RowAddr{Channel: 3, Bank: 1, Subarray: 9, Row: 100}
	data := []uint64{1, 2, 3, 0xDEAD}
	if err := m.WriteRow(addr, data); err != nil {
		t.Fatal(err)
	}
	got := m.ReadRow(addr)
	for i, w := range data {
		if got[i] != w {
			t.Fatalf("word %d = %d want %d", i, got[i], w)
		}
	}
	for i := len(data); i < len(got); i++ {
		if got[i] != 0 {
			t.Fatal("partial write did not zero-fill")
		}
	}
}

func TestMemoryWriteShortens(t *testing.T) {
	m := newMem(t)
	addr := RowAddr{Row: 1}
	if err := m.WriteRow(addr, []uint64{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRow(addr, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	got := m.ReadRow(addr)
	if got[0] != 5 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("overwrite did not clear old tail: %v", got[:3])
	}
}

func TestMemoryWriteTooLong(t *testing.T) {
	m := newMem(t)
	big := make([]uint64, m.Geometry().RowWords()+1)
	if err := m.WriteRow(RowAddr{}, big); err == nil {
		t.Error("oversized write should fail")
	}
}

func TestMemoryReadIsCopy(t *testing.T) {
	m := newMem(t)
	addr := RowAddr{Row: 3}
	if err := m.WriteRow(addr, []uint64{42}); err != nil {
		t.Fatal(err)
	}
	r := m.ReadRow(addr)
	r[0] = 7
	if m.ReadRow(addr)[0] != 42 {
		t.Error("ReadRow did not copy")
	}
}

func TestMemoryLazyMaterialisation(t *testing.T) {
	m := newMem(t)
	if m.MaterializedRows() != 0 {
		t.Fatal("fresh memory should have no rows")
	}
	m.ReadRow(RowAddr{Row: 1})
	if err := m.WriteRow(RowAddr{Row: 2}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if m.MaterializedRows() != 2 {
		t.Fatalf("materialized %d rows want 2", m.MaterializedRows())
	}
}

func TestMemoryCounters(t *testing.T) {
	m := newMem(t)
	m.ReadRow(RowAddr{})
	m.ReadRow(RowAddr{})
	if err := m.WriteRow(RowAddr{}, nil); err != nil {
		t.Fatal(err)
	}
	if m.RowReads() != 2 || m.RowWrites() != 1 {
		t.Errorf("counters %d/%d want 2/1", m.RowReads(), m.RowWrites())
	}
	// PeekRow must not count.
	m.PeekRow(RowAddr{})
	if m.RowReads() != 2 {
		t.Error("PeekRow counted as a read")
	}
}

func TestBuffersPersistAndSize(t *testing.T) {
	m := newMem(t)
	gb := m.GlobalBuffer(0, 0, 3)
	if len(gb) != m.Geometry().RowWords() {
		t.Fatalf("global buffer %d words", len(gb))
	}
	gb[0] = 99
	if m.GlobalBuffer(0, 0, 3)[0] != 99 {
		t.Error("global buffer not persistent")
	}
	if m.GlobalBuffer(0, 0, 4)[0] != 0 {
		t.Error("buffers not distinct per bank")
	}
	io := m.IOBuffer(1, 0)
	io[1] = 7
	if m.IOBuffer(1, 0)[1] != 7 {
		t.Error("I/O buffer not persistent")
	}
}

func TestNewMemoryRejectsBadGeometry(t *testing.T) {
	g := Default()
	g.MuxRatio = 0
	if _, err := NewMemory(g, nvm.Get(nvm.PCM)); err == nil {
		t.Error("bad geometry accepted")
	}
}

// Property: Encode is injective over random valid addresses.
func TestPropEncodeInjective(t *testing.T) {
	g := Default()
	f := func(c1, r1, b1, s1, w1, c2, r2, b2, s2, w2 uint16) bool {
		a := RowAddr{
			Channel:  int(c1) % g.Channels,
			Rank:     int(r1) % g.RanksPerChannel,
			Bank:     int(b1) % g.BanksPerChip,
			Subarray: int(s1) % g.SubarraysPerBank,
			Row:      int(w1) % g.RowsPerSubarray,
		}
		b := RowAddr{
			Channel:  int(c2) % g.Channels,
			Rank:     int(r2) % g.RanksPerChannel,
			Bank:     int(b2) % g.BanksPerChip,
			Subarray: int(s2) % g.SubarraysPerBank,
			Row:      int(w2) % g.RowsPerSubarray,
		}
		if a == b {
			return g.Encode(a) == g.Encode(b)
		}
		return g.Encode(a) != g.Encode(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReadRow(b *testing.B) {
	m, _ := NewMemory(Default(), nvm.Get(nvm.PCM))
	addr := RowAddr{Row: 1}
	if err := m.WriteRow(addr, []uint64{1}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(m.Geometry().RowWords() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ReadRow(addr)
	}
}

func TestWriteCountsAndHottestRow(t *testing.T) {
	m := newMem(t)
	if _, n := m.HottestRow(); n != 0 {
		t.Error("fresh memory has a hottest row")
	}
	a := RowAddr{Row: 1}
	b := RowAddr{Row: 2}
	for i := 0; i < 5; i++ {
		if err := m.WriteRow(a, []uint64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WriteRow(b, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if got := m.RowWriteCount(a); got != 5 {
		t.Errorf("RowWriteCount=%d want 5", got)
	}
	hot, n := m.HottestRow()
	if hot != a || n != 5 {
		t.Errorf("HottestRow=%v/%d want %v/5", hot, n, a)
	}
}

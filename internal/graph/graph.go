// Package graph provides the graph-processing workload of the evaluation:
// synthetic graph generators standing in for the paper's dblp-2010,
// eswiki-2013 and amazon-2008 datasets (see DESIGN.md for the substitution
// rationale), and a bitmap-based BFS whose frontier expansion is exactly
// the bulk OR Pinatubo accelerates — the next frontier is the OR of the
// adjacency bit-rows of every frontier vertex, masked by the unvisited set.
package graph

import (
	"fmt"
	"math/rand"
	"sort"

	"pinatubo/internal/bitvec"
)

// Graph is an undirected graph in adjacency-list form.
type Graph struct {
	n   int
	adj [][]int32
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns v's adjacency list (not a copy; callers must not
// mutate).
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// AdjacencyBitmap returns vertex v's adjacency row as an n-bit vector —
// the representation the PIM memory stores one row per vertex.
func (g *Graph) AdjacencyBitmap(v int) *bitvec.Vector {
	row := bitvec.New(g.n)
	for _, u := range g.adj[v] {
		row.Set(int(u))
	}
	return row
}

// newGraph builds a Graph from an edge set, deduplicating and dropping
// self-loops. Edges are sorted before the adjacency lists are built so the
// lists (and everything downstream: host BFS traversal order, frontier
// construction) do not inherit map iteration order.
func newGraph(n int, edges map[[2]int32]bool) *Graph {
	g := &Graph{n: n, adj: make([][]int32, n)}
	list := make([][2]int32, 0, len(edges))
	for e := range edges {
		list = append(list, e)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i][0] != list[j][0] {
			return list[i][0] < list[j][0]
		}
		return list[i][1] < list[j][1]
	})
	for _, e := range list {
		u, v := e[0], e[1]
		g.adj[u] = append(g.adj[u], v)
		g.adj[v] = append(g.adj[v], u)
	}
	return g
}

func addEdge(edges map[[2]int32]bool, u, v int32) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	edges[[2]int32{u, v}] = true
}

// ErdosRenyi generates a uniform random graph with the given average
// degree. Low average degrees (<2) produce the paper's "loose" graphs:
// many small components, so BFS spends its time scanning for unvisited
// vertices rather than computing.
func ErdosRenyi(n int, avgDegree float64, seed int64) (*Graph, error) {
	if n <= 1 {
		return nil, fmt.Errorf("graph: need n > 1, got %d", n)
	}
	if avgDegree < 0 {
		return nil, fmt.Errorf("graph: negative average degree %g", avgDegree)
	}
	rng := rand.New(rand.NewSource(seed))
	edgeCount := int(avgDegree * float64(n) / 2)
	edges := make(map[[2]int32]bool, edgeCount)
	for len(edges) < edgeCount {
		addEdge(edges, int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return newGraph(n, edges), nil
}

// RMAT generates a power-law graph (Chakrabarti et al.) with 2^scale
// vertices and edgeFactor × n edges, the standard stand-in for social and
// citation networks like dblp. Dense, tightly connected — the favourable
// case for bitmap BFS.
func RMAT(scale, edgeFactor int, seed int64) (*Graph, error) {
	if scale < 1 || scale > 24 {
		return nil, fmt.Errorf("graph: RMAT scale %d outside 1..24", scale)
	}
	if edgeFactor < 1 {
		return nil, fmt.Errorf("graph: RMAT edge factor %d", edgeFactor)
	}
	n := 1 << scale
	rng := rand.New(rand.NewSource(seed))
	const a, b, c = 0.57, 0.19, 0.19 // standard Graph500 parameters
	edges := make(map[[2]int32]bool, n*edgeFactor)
	target := n * edgeFactor
	for attempts := 0; len(edges) < target && attempts < target*20; attempts++ {
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a: // top-left
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		addEdge(edges, int32(u), int32(v))
	}
	return newGraph(n, edges), nil
}

// BFSResult records a breadth-first traversal.
type BFSResult struct {
	// Level[v] is the BFS depth of v, or -1 if unreachable from the roots
	// explored.
	Level []int
	// Levels is the number of non-empty frontier expansions performed.
	Levels int
	// Visited is the number of reached vertices.
	Visited int
	// Components is the number of BFS restarts (connected components).
	Components int
}

// ReferenceBFS is the scalar queue-based BFS over all components, used to
// validate the bitmap implementation.
func ReferenceBFS(g *Graph) BFSResult {
	level := make([]int, g.n)
	for i := range level {
		level[i] = -1
	}
	res := BFSResult{Level: level}
	queue := make([]int32, 0, g.n)
	for root := 0; root < g.n; root++ {
		if level[root] != -1 {
			continue
		}
		res.Components++
		level[root] = 0
		res.Visited++
		queue = append(queue[:0], int32(root))
		for len(queue) > 0 {
			next := queue[:0:0]
			advanced := false
			for _, v := range queue {
				for _, u := range g.adj[v] {
					if level[u] == -1 {
						level[u] = level[v] + 1
						res.Visited++
						next = append(next, u)
						advanced = true
					}
				}
			}
			if advanced {
				res.Levels++
			}
			queue = next
		}
	}
	return res
}

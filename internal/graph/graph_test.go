package graph

import (
	"testing"

	"pinatubo/internal/memarch"
	"pinatubo/internal/pimrt"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

func mustMapper(t *testing.T) pimrt.Mapper {
	t.Helper()
	m, err := pimrt.NewMapper(memarch.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestErdosRenyiShape(t *testing.T) {
	g, err := ErdosRenyi(1000, 2.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1000 {
		t.Errorf("N=%d", g.N())
	}
	if e := g.Edges(); e != 1000 {
		t.Errorf("edges=%d want 1000 (avgDeg 2)", e)
	}
	// No self loops, no duplicate neighbours.
	for v := 0; v < g.N(); v++ {
		seen := map[int32]bool{}
		for _, u := range g.Neighbors(v) {
			if int(u) == v {
				t.Fatalf("self loop at %d", v)
			}
			if seen[u] {
				t.Fatalf("duplicate edge %d-%d", v, u)
			}
			seen[u] = true
		}
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	if _, err := ErdosRenyi(1, 2, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ErdosRenyi(10, -1, 1); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestRMATShape(t *testing.T) {
	g, err := RMAT(10, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1024 {
		t.Errorf("N=%d", g.N())
	}
	if g.Edges() < 1024*4 {
		t.Errorf("edges=%d, too sparse for edge factor 8", g.Edges())
	}
	// Power law: the max degree should far exceed the average.
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(2*g.Edges()) / float64(g.N())
	if float64(maxDeg) < 4*avg {
		t.Errorf("max degree %d vs avg %.1f: no skew, not power law?", maxDeg, avg)
	}
}

func TestRMATErrors(t *testing.T) {
	if _, err := RMAT(0, 8, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := RMAT(30, 8, 1); err == nil {
		t.Error("scale 30 accepted")
	}
	if _, err := RMAT(10, 0, 1); err == nil {
		t.Error("edge factor 0 accepted")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, _ := ErdosRenyi(500, 2, 42)
	b, _ := ErdosRenyi(500, 2, 42)
	if a.Edges() != b.Edges() {
		t.Error("same seed, different graphs")
	}
	c, _ := ErdosRenyi(500, 2, 43)
	if a.Edges() == c.Edges() {
		// Edge counts are forced equal by construction; compare adjacency.
		same := true
		for v := 0; v < 500 && same; v++ {
			if len(a.Neighbors(v)) != len(c.Neighbors(v)) {
				same = false
			}
		}
		if same {
			t.Log("different seeds produced suspiciously similar graphs (tolerated)")
		}
	}
}

func TestAdjacencyBitmap(t *testing.T) {
	g, _ := ErdosRenyi(300, 3, 5)
	for _, v := range []int{0, 150, 299} {
		bm := g.AdjacencyBitmap(v)
		if bm.Len() != 300 {
			t.Fatalf("bitmap length %d", bm.Len())
		}
		if bm.Popcount() != g.Degree(v) {
			t.Fatalf("v=%d popcount %d degree %d", v, bm.Popcount(), g.Degree(v))
		}
		for _, u := range g.Neighbors(v) {
			if !bm.Get(int(u)) {
				t.Fatalf("neighbour %d missing from bitmap of %d", u, v)
			}
		}
	}
}

func TestReferenceBFSSimple(t *testing.T) {
	// Path graph 0-1-2-3 plus isolated vertex 4.
	edges := map[[2]int32]bool{}
	addEdge(edges, 0, 1)
	addEdge(edges, 1, 2)
	addEdge(edges, 2, 3)
	g := newGraph(5, edges)
	res := ReferenceBFS(g)
	want := []int{0, 1, 2, 3, 0}
	for v, lvl := range want {
		if res.Level[v] != lvl {
			t.Errorf("level[%d]=%d want %d", v, res.Level[v], lvl)
		}
	}
	if res.Components != 2 || res.Visited != 5 || res.Levels != 3 {
		t.Errorf("res=%+v", res)
	}
}

func TestBitmapBFSMatchesReference(t *testing.T) {
	mapper := mustMapper(t)
	cpu := DefaultCPUWork()
	for _, build := range []func() (*Graph, error){
		func() (*Graph, error) { return ErdosRenyi(1<<10, 1.0, 3) },
		func() (*Graph, error) { return RMAT(10, 4, 9) },
	} {
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		ref := ReferenceBFS(g)
		tr := &workload.Trace{}
		got, err := BitmapBFS(g, mapper, cpu, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got.Visited != ref.Visited || got.Components != ref.Components {
			t.Fatalf("visited/components %d/%d want %d/%d",
				got.Visited, got.Components, ref.Visited, ref.Components)
		}
		for v := range ref.Level {
			if got.Level[v] != ref.Level[v] {
				t.Fatalf("level[%d]=%d want %d", v, got.Level[v], ref.Level[v])
			}
		}
		if len(tr.Ops) == 0 || tr.Other.Seconds <= 0 {
			t.Error("trace not populated")
		}
		for i, op := range tr.Ops {
			if err := op.Validate(); err != nil {
				t.Fatalf("op %d invalid: %v", i, err)
			}
		}
	}
}

func TestBitmapBFSNilTrace(t *testing.T) {
	g, _ := ErdosRenyi(256, 2, 1)
	if _, err := BitmapBFS(g, mustMapper(t), DefaultCPUWork(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestBFSTraceContainsMultiRowORs(t *testing.T) {
	// On a dense graph the frontier ORs must be genuine multi-operand ops.
	g, err := RMAT(11, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{}
	if _, err := BitmapBFS(g, mustMapper(t), DefaultCPUWork(), tr); err != nil {
		t.Fatal(err)
	}
	maxOperands := 0
	for _, op := range tr.Ops {
		if op.Op == sense.OpOR && op.Operands > maxOperands {
			maxOperands = op.Operands
		}
	}
	if maxOperands < 32 {
		t.Errorf("largest frontier OR has %d operands; expected a wide one", maxOperands)
	}
}

func TestDatasets(t *testing.T) {
	ds := Datasets()
	if len(ds) != 3 {
		t.Fatalf("%d datasets", len(ds))
	}
	for _, d := range ds {
		g, err := d.Build()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if g.N() < 1<<10 {
			t.Errorf("%s: only %d vertices", d.Name, g.N())
		}
		ref := ReferenceBFS(g)
		if d.Loose {
			if ref.Components < g.N()/20 {
				t.Errorf("%s: %d components — not loose", d.Name, ref.Components)
			}
		} else {
			if ref.Components != 1 {
				t.Errorf("%s: %d components, want a single tight component", d.Name, ref.Components)
			}
		}
	}
	if _, err := DatasetByName("dblp"); err != nil {
		t.Error(err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDefaultCPUWorkPositive(t *testing.T) {
	c := DefaultCPUWork()
	if c.SecPerScanBit <= 0 || c.SecPerWord <= 0 || c.SecPerVertex <= 0 || c.PowerW <= 0 {
		t.Error("CPU work constants must be positive")
	}
}

func BenchmarkBitmapBFSDblp(b *testing.B) {
	d, _ := DatasetByName("dblp")
	g, err := d.Build()
	if err != nil {
		b.Fatal(err)
	}
	mapper, err := pimrt.NewMapper(memarch.Default())
	if err != nil {
		b.Fatal(err)
	}
	cpu := DefaultCPUWork()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BitmapBFS(g, mapper, cpu, nil); err != nil {
			b.Fatal(err)
		}
	}
}

package graph

import (
	"fmt"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/pimrt"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// CPUWork prices the non-bitwise part of the applications on the reference
// processor: per-edge scalar traversal in top-down steps, bit-scans for
// frontier enumeration and restart search, and per-vertex bookkeeping.
// These costs are charged identically to every engine — Pinatubo
// accelerates only the bulk bitwise phase.
type CPUWork struct {
	SecPerScanBit float64 // naive bit-scan for an unvisited vertex
	SecPerWord    float64 // word-granular popcount/extract pass
	SecPerVertex  float64 // enqueue/bookkeep one discovered vertex
	SecPerEdge    float64 // inspect one edge in a scalar top-down step
	PowerW        float64 // processor power while doing this work
}

// DefaultCPUWork returns the constants used in the evaluation (a ~3.3 GHz
// core doing dependent pointer-chasing work against PCM main memory,
// where a random edge lookup costs tens of nanoseconds).
func DefaultCPUWork() CPUWork {
	return CPUWork{
		SecPerScanBit: 0.5e-9,
		SecPerWord:    1.0e-9,
		SecPerVertex:  25.0e-9,
		SecPerEdge:    30.0e-9,
		PowerW:        65,
	}
}

// charge adds seconds of CPU work to the trace's Other cost.
func (c CPUWork) charge(tr *workload.Trace, seconds float64) {
	tr.Other.Seconds += seconds
	tr.Other.Joules += seconds * c.PowerW
}

// BitmapBFS runs the direction-optimising bitmap BFS of the paper's Graph
// workload (after Beamer et al. [5]) over every component of g.
//
// Small frontiers take scalar top-down steps: every frontier vertex's edges
// are inspected on the CPU (charged per edge), and the discovered set is
// merged into the visited bitmap with one bulk OR. Large frontiers flip to
// the bitmap step, where the next frontier is computed wholesale with bulk
// bitwise operations:
//
//	next    = OR over the adjacency bit-rows of the frontier vertices
//	next   &= NOT visited        (INV + AND in Pinatubo)
//	visited |= next
//
// The frontier-expansion OR is the multi-row operation Pinatubo executes in
// one step per subarray group. Every bulk op is appended to trace (when
// non-nil) with its real operand placement from the mapper; scalar work is
// charged to trace.Other.
//
// The returned result is validated against ReferenceBFS in tests: both
// formulations must produce identical levels.
func BitmapBFS(g *Graph, mapper pimrt.Mapper, cpu CPUWork, trace *workload.Trace) (BFSResult, error) {
	n := g.N()
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	res := BFSResult{Level: level}

	// The hybrid threshold: frontiers at least this large use the bitmap
	// step (Beamer's alpha/beta heuristic reduced to a size cut: only the
	// few giant frontiers of a tight graph justify streaming whole
	// adjacency rows).
	threshold := n / 4
	if threshold < 2 {
		threshold = 2
	}

	visited := bitvec.New(n)
	next := bitvec.New(n)
	emit := func(spec workload.OpSpec) {
		if trace != nil {
			trace.Append(spec)
		}
	}
	charge := func(s float64) {
		if trace != nil {
			cpu.charge(trace, s)
		}
	}

	frontier := make([]int, 0, n)
	for root := 0; root < n; root++ {
		if level[root] != -1 {
			continue
		}
		// Searching for an unvisited bit-vector: the naive scan restarts
		// from 0 (this is what dominates on "loose" graphs — the paper's
		// eswiki/amazon observation).
		charge(float64(root+1) * cpu.SecPerScanBit)

		res.Components++
		level[root] = 0
		visited.Set(root)
		res.Visited++
		frontier = append(frontier[:0], root)
		depth := 0

		for len(frontier) > 0 {
			depth++
			if len(frontier) >= threshold {
				// --- bitmap (bottom-up style) step: bulk bitwise ---
				spec, err := mapper.SpecForIDs(frontier, n)
				if err != nil {
					return res, fmt.Errorf("graph: frontier OR: %w", err)
				}
				emit(spec)
				next.Reset()
				for _, v := range frontier {
					for _, u := range g.adj[v] {
						next.Set(int(u))
					}
				}
				// next &= NOT visited; visited |= next.
				emit(workload.OpSpec{Op: sense.OpINV, Operands: 1, Bits: n})
				emit(workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: n})
				next.AndNot(next, visited)
				emit(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: n})
				visited.Or(visited, next)
				// Enumerating the next frontier is a CPU pass, and BFS
				// still assigns a parent to every discovered vertex by
				// probing its neighbour list (~deg/2 edges) — per-vertex
				// work the bulk OR cannot replace.
				charge(float64(bitvec.WordsFor(n)) * cpu.SecPerWord)
				probes := 0
				next.ForEachSet(func(i int) { probes += len(g.adj[i]) / 2 })
				charge(float64(probes) * cpu.SecPerEdge)
			} else {
				// --- scalar top-down step ---
				next.Reset()
				edges := 0
				for _, v := range frontier {
					edges += len(g.adj[v])
					for _, u := range g.adj[v] {
						if !visited.Get(int(u)) {
							next.Set(int(u))
						}
					}
				}
				charge(float64(edges) * cpu.SecPerEdge)
				next.AndNot(next, visited) // no-op functionally; kept for clarity
				if next.Any() {
					// Fold the discovered set into the visited bitmap.
					emit(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: n})
				}
				visited.Or(visited, next)
			}

			frontier = frontier[:0]
			next.ForEachSet(func(i int) {
				level[i] = depth
				frontier = append(frontier, i)
			})
			if len(frontier) > 0 {
				res.Levels++
				res.Visited += len(frontier)
				charge(float64(len(frontier)) * cpu.SecPerVertex)
			}
		}
	}
	return res, nil
}

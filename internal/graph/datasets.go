package graph

import "fmt"

// Dataset is one of the evaluation's graph workloads. The originals
// (dblp-2010, eswiki-2013, amazon-2008 from the LAW collection) are
// replaced by synthetic generators scaled to simulator-friendly sizes while
// preserving the property the paper's analysis hinges on: dblp is dense and
// tightly connected (bitmap BFS does real work every level), while eswiki
// and amazon are "loose" (BFS spends its time scanning for unvisited
// vertices across many small components).
type Dataset struct {
	Name string
	// Loose marks the datasets the paper calls "loose".
	Loose bool
	// Build generates the graph deterministically.
	Build func() (*Graph, error)
}

// Datasets returns the three graph workloads of Table 1.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name: "dblp",
			Build: func() (*Graph, error) {
				g, err := RMAT(14, 16, 0xD1B0)
				if err != nil {
					return nil, err
				}
				return connectIsolated(g, 0xD1B1)
			},
		},
		{
			Name:  "eswiki",
			Loose: true,
			Build: func() (*Graph, error) { return ErdosRenyi(1<<15, 0.8, 0xE5) },
		},
		{
			Name:  "amazon",
			Loose: true,
			Build: func() (*Graph, error) { return ErdosRenyi(1<<15, 1.3, 0xA2) },
		},
	}
}

// DatasetByName returns the named dataset.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("graph: unknown dataset %q", name)
}

// connectIsolated stitches all components of an RMAT sample into a single
// one by chaining each component's lowest-numbered vertex to the previous
// component's (dblp's largest component covers almost the whole collaboration
// graph; the workload models it as fully connected).
func connectIsolated(g *Graph, seed int64) (*Graph, error) {
	_ = seed
	edges := make(map[[2]int32]bool)
	for v := 0; v < g.n; v++ {
		for _, u := range g.adj[v] {
			addEdge(edges, int32(v), u)
		}
	}
	ref := ReferenceBFS(g)
	// Attach every component's representative (its BFS root) to the first
	// component's root, star-wise, so the stitching adds at most two levels.
	hub := int32(-1)
	for v := 0; v < g.n; v++ {
		if ref.Level[v] != 0 {
			continue
		}
		if hub < 0 {
			hub = int32(v)
			continue
		}
		addEdge(edges, hub, int32(v))
	}
	return newGraph(g.n, edges), nil
}

// Package area is an NVSim-style parametric area model for the Pinatubo
// evaluation's overhead analysis (Fig. 13). It computes the baseline chip
// area from the memory geometry and cell technology, then sizes every
// Pinatubo add-on from transistor/gate counts:
//
//   - the extra AND/OR reference branches in each sense amplifier,
//   - the XOR hold capacitor, pass transistors and output mux per SA,
//   - the two latch/reset transistors added to each local-wordline driver,
//   - the digital logic + latching added to each bank's global row buffer
//     (inter-subarray ops), and
//   - the same logic at the rank I/O buffer (inter-bank ops),
//
// plus the AC-PIM comparison point, which instead puts full digital compute
// logic in every subarray.
//
// All areas are expressed in F² (F = feature size) so the fractions are
// node independent. Gate-equivalent counts are calibrated in
// DefaultParams; the resulting breakdown reproduces the paper's 0.9% vs
// 6.4% comparison from component counts, not from hard-coded totals.
package area

import (
	"fmt"

	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
)

// Params holds the layout-level calibration constants.
type Params struct {
	// GateAreaF2 is the area of one gate equivalent (NAND2) in dense logic.
	GateAreaF2 float64
	// PeriWiring is the wiring blow-up factor for peripheral (buffer-side)
	// logic, which is routing dominated.
	PeriWiring float64
	// ArrayEfficiency is the fraction of chip area occupied by cell arrays
	// in the baseline design.
	ArrayEfficiency float64
	// SARefGE: gate equivalents of the added AND/OR reference branches per
	// sense amplifier (SA-pitch-matched, no wiring factor).
	SARefGE float64
	// SAXorGE: gate equivalents of the XOR hold cap + transistors + output
	// mux per SA.
	SAXorGE float64
	// LWLLatchGE: gate equivalents of the two transistors added to each
	// local wordline driver.
	LWLLatchGE float64
	// BufLogicGE: gate equivalents per bit of the global row buffer / I/O
	// buffer add-on logic (latch + AND/OR/XOR gates + select mux).
	BufLogicGE float64
	// ACPIMGEPerBit: gate equivalents per row bit of AC-PIM's per-subarray
	// compute logic (pitch-matched under the array).
	ACPIMGEPerBit float64
	// ECCLogicGE: gate equivalents per data bit of the SECDED encode /
	// syndrome-decode trees at each bank's row buffer. A (72,64) Hamming
	// encoder is ~3 XOR2 per data bit; the decoder shares the same tree.
	ECCLogicGE float64
}

// DefaultParams returns the 65 nm calibration used in the evaluation.
func DefaultParams() Params {
	return Params{
		GateAreaF2:      150,
		PeriWiring:      3.0,
		ArrayEfficiency: 0.5,
		SARefGE:         0.8,
		SAXorGE:         2.4,
		LWLLatchGE:      0.25,
		BufLogicGE:      9.4,
		ACPIMGEPerBit:   7.9,
		ECCLogicGE:      3.0,
	}
}

// Overhead is the per-component area cost of Pinatubo on one chip, in F².
type Overhead struct {
	BaseChipF2 float64 // baseline chip area

	ANDORF2     float64 // SA reference branches (intra-subarray AND/OR)
	XORF2       float64 // SA XOR circuitry
	LWLF2       float64 // wordline-driver latches (multi-row activation)
	InterSubF2  float64 // global row buffer logic
	InterBankF2 float64 // I/O buffer logic
}

// IntraF2 is the total intra-subarray add-on area.
func (o Overhead) IntraF2() float64 { return o.ANDORF2 + o.XORF2 + o.LWLF2 }

// TotalF2 is the total Pinatubo add-on area.
func (o Overhead) TotalF2() float64 { return o.IntraF2() + o.InterSubF2 + o.InterBankF2 }

// Fraction returns an add-on area as a fraction of the baseline chip.
func (o Overhead) Fraction(f2 float64) float64 { return f2 / o.BaseChipF2 }

// TotalFraction is the headline overhead number (the paper: 0.9%).
func (o Overhead) TotalFraction() float64 { return o.Fraction(o.TotalF2()) }

// BreakdownEntry is one row of the Fig. 13 breakdown.
type BreakdownEntry struct {
	Name     string
	F2       float64
	Fraction float64
}

// Breakdown returns the Fig. 13 components, largest first, using the
// paper's labels.
func (o Overhead) Breakdown() []BreakdownEntry {
	entries := []BreakdownEntry{
		{"inter-sub", o.InterSubF2, o.Fraction(o.InterSubF2)},
		{"inter-bank", o.InterBankF2, o.Fraction(o.InterBankF2)},
		{"xor", o.XORF2, o.Fraction(o.XORF2)},
		{"wl act", o.LWLF2, o.Fraction(o.LWLF2)},
		{"and/or", o.ANDORF2, o.Fraction(o.ANDORF2)},
	}
	return entries
}

// chipCounts derives per-chip structure counts from the geometry.
type chipCounts struct {
	cells      float64 // memory cells
	sas        float64 // sense amplifiers
	lwlDrivers float64 // local wordline drivers
	bankBits   float64 // global row buffer bits per bank
	banks      float64
	subarrays  float64 // subarrays per chip
	rowBits    float64 // chip row width in bits
}

func countChip(geo memarch.Geometry) chipCounts {
	matsPerChip := float64(geo.BanksPerChip * geo.SubarraysPerBank * geo.MatsPerSubarray)
	return chipCounts{
		cells:      matsPerChip * float64(geo.MatRowBits) * float64(geo.RowsPerSubarray),
		sas:        matsPerChip * float64(geo.MatRowBits/geo.MuxRatio),
		lwlDrivers: matsPerChip * float64(geo.RowsPerSubarray),
		bankBits:   float64(geo.ChipRowBits()),
		banks:      float64(geo.BanksPerChip),
		subarrays:  float64(geo.BanksPerChip * geo.SubarraysPerBank),
		rowBits:    float64(geo.ChipRowBits()),
	}
}

// Pinatubo computes the Pinatubo add-on areas for one chip.
func Pinatubo(geo memarch.Geometry, tech nvm.Params, p Params) (Overhead, error) {
	if err := geo.Validate(); err != nil {
		return Overhead{}, err
	}
	if p.ArrayEfficiency <= 0 || p.ArrayEfficiency > 1 {
		return Overhead{}, fmt.Errorf("area: array efficiency %g outside (0,1]", p.ArrayEfficiency)
	}
	c := countChip(geo)
	ge := p.GateAreaF2
	peri := ge * p.PeriWiring

	o := Overhead{
		BaseChipF2:  c.cells * tech.Cell.AreaF2 / p.ArrayEfficiency,
		ANDORF2:     c.sas * p.SARefGE * ge,
		XORF2:       c.sas * p.SAXorGE * ge,
		LWLF2:       c.lwlDrivers * p.LWLLatchGE * ge,
		InterSubF2:  c.banks * c.bankBits * p.BufLogicGE * peri,
		InterBankF2: c.rowBits * p.BufLogicGE * peri,
	}
	return o, nil
}

// ACPIM computes the accelerator-in-memory comparison point: full digital
// compute logic in every subarray (the paper: 6.4%), returned as the add-on
// fraction of the baseline chip.
func ACPIM(geo memarch.Geometry, tech nvm.Params, p Params) (float64, error) {
	if err := geo.Validate(); err != nil {
		return 0, err
	}
	c := countChip(geo)
	base := c.cells * tech.Cell.AreaF2 / p.ArrayEfficiency
	logic := c.subarrays * c.rowBits * p.ACPIMGEPerBit * p.GateAreaF2
	return logic / base, nil
}

// ECCOverhead is the in-array SECDED add-on cost on one chip, in F². The
// spare stripe is the analogue of an ECC DIMM's ninth chip folded into the
// array: checkBits extra columns per dataBits data columns, carrying the
// same cell, sense-amplifier and wordline structure as the columns they
// protect (so the whole stripe scales as checkBits/dataBits of the chip).
type ECCOverhead struct {
	BaseChipF2 float64 // baseline (non-ECC) chip area
	SpareF2    float64 // spare check-bit columns: cells + pitch-matched periphery
	LogicF2    float64 // encode + syndrome-decode trees at the bank row buffers
}

// TotalF2 is the total ECC add-on area.
func (o ECCOverhead) TotalF2() float64 { return o.SpareF2 + o.LogicF2 }

// Fraction returns an add-on area as a fraction of the baseline chip.
func (o ECCOverhead) Fraction(f2 float64) float64 { return f2 / o.BaseChipF2 }

// TotalFraction is the headline ECC overhead (a (72,64) code: ~12.5% spare
// stripe plus a small logic term).
func (o ECCOverhead) TotalFraction() float64 { return o.Fraction(o.TotalF2()) }

// ECC computes the SECDED spare-column and logic areas for one chip storing
// checkBits of in-array check columns per dataBits-wide word group.
func ECC(geo memarch.Geometry, tech nvm.Params, p Params, dataBits, checkBits int) (ECCOverhead, error) {
	if err := geo.Validate(); err != nil {
		return ECCOverhead{}, err
	}
	if p.ArrayEfficiency <= 0 || p.ArrayEfficiency > 1 {
		return ECCOverhead{}, fmt.Errorf("area: array efficiency %g outside (0,1]", p.ArrayEfficiency)
	}
	if dataBits < 1 || checkBits < 1 {
		return ECCOverhead{}, fmt.Errorf("area: ECC code (%d data, %d check) bits must be positive", dataBits, checkBits)
	}
	c := countChip(geo)
	base := c.cells * tech.Cell.AreaF2 / p.ArrayEfficiency
	return ECCOverhead{
		BaseChipF2: base,
		SpareF2:    base * float64(checkBits) / float64(dataBits),
		LogicF2:    c.banks * c.bankBits * p.ECCLogicGE * p.GateAreaF2 * p.PeriWiring,
	}, nil
}

// SDRAMCapacityLoss returns the in-DRAM computing baseline's reported
// capacity cost (~0.5%, reserved compute rows); included for the Fig. 13
// narrative, orthogonal to the NVM chip model.
func SDRAMCapacityLoss() float64 { return 0.005 }

package area

import (
	"testing"

	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
)

func defaultOverhead(t *testing.T) Overhead {
	t.Helper()
	o, err := Pinatubo(memarch.Default(), nvm.Get(nvm.PCM), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestPinatuboTotalNearPaper(t *testing.T) {
	// Paper Fig. 13: Pinatubo's total overhead is 0.9% of the PCM chip.
	o := defaultOverhead(t)
	got := o.TotalFraction()
	if got < 0.007 || got > 0.011 {
		t.Errorf("Pinatubo overhead %.4f want ~0.009 (0.7..1.1%% band)", got)
	}
}

func TestACPIMNearPaper(t *testing.T) {
	// Paper Fig. 13: AC-PIM costs 6.4%.
	f, err := ACPIM(memarch.Default(), nvm.Get(nvm.PCM), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.05 || f > 0.08 {
		t.Errorf("AC-PIM overhead %.4f want ~0.064 (5..8%% band)", f)
	}
}

func TestACPIMDominatesPinatubo(t *testing.T) {
	o := defaultOverhead(t)
	f, err := ACPIM(memarch.Default(), nvm.Get(nvm.PCM), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if f < 5*o.TotalFraction() {
		t.Errorf("AC-PIM (%.4f) should cost several times Pinatubo (%.4f)", f, o.TotalFraction())
	}
}

func TestBreakdownOrdering(t *testing.T) {
	// Paper breakdown: inter-sub 0.72% > inter-bank 0.09% > xor 0.06% >
	// wl act 0.05% > and/or 0.02%. Assert the ordering and the dominance
	// of the inter-subarray logic.
	o := defaultOverhead(t)
	bd := o.Breakdown()
	if len(bd) != 5 {
		t.Fatalf("breakdown has %d entries", len(bd))
	}
	names := []string{"inter-sub", "inter-bank", "xor", "wl act", "and/or"}
	for i, e := range bd {
		if e.Name != names[i] {
			t.Errorf("entry %d = %q want %q", i, e.Name, names[i])
		}
	}
	for i := 1; i < len(bd); i++ {
		if bd[i].Fraction >= bd[i-1].Fraction {
			t.Errorf("breakdown not descending at %q: %.5f >= %.5f",
				bd[i].Name, bd[i].Fraction, bd[i-1].Fraction)
		}
	}
	if bd[0].Fraction < 0.5*o.TotalFraction() {
		t.Error("inter-sub logic should dominate the overhead")
	}
}

func TestBreakdownComponentBands(t *testing.T) {
	o := defaultOverhead(t)
	bands := map[string][2]float64{
		"inter-sub":  {0.005, 0.010},
		"inter-bank": {0.0005, 0.0015},
		"xor":        {0.0003, 0.0010},
		"wl act":     {0.0003, 0.0008},
		"and/or":     {0.0001, 0.0004},
	}
	for _, e := range o.Breakdown() {
		b := bands[e.Name]
		if e.Fraction < b[0] || e.Fraction > b[1] {
			t.Errorf("%s = %.5f outside paper band [%.5f,%.5f]",
				e.Name, e.Fraction, b[0], b[1])
		}
	}
}

func TestIntraAndTotalConsistent(t *testing.T) {
	o := defaultOverhead(t)
	if got, want := o.IntraF2(), o.ANDORF2+o.XORF2+o.LWLF2; got != want {
		t.Errorf("IntraF2=%g want %g", got, want)
	}
	if got, want := o.TotalF2(), o.IntraF2()+o.InterSubF2+o.InterBankF2; got != want {
		t.Errorf("TotalF2=%g want %g", got, want)
	}
	if o.BaseChipF2 <= 0 {
		t.Error("baseline area must be positive")
	}
}

func TestScalesWithGeometry(t *testing.T) {
	// Twice the banks → twice the inter-sub logic, same fraction of a
	// twice-as-large chip.
	small := memarch.Default()
	big := small
	big.BanksPerChip *= 2
	oS, err := Pinatubo(small, nvm.Get(nvm.PCM), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	oB, err := Pinatubo(big, nvm.Get(nvm.PCM), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if oB.InterSubF2 != 2*oS.InterSubF2 {
		t.Errorf("inter-sub area did not double: %g vs %g", oB.InterSubF2, oS.InterSubF2)
	}
	if oB.BaseChipF2 != 2*oS.BaseChipF2 {
		t.Errorf("chip area did not double")
	}
}

func TestErrors(t *testing.T) {
	bad := memarch.Default()
	bad.Channels = 0
	if _, err := Pinatubo(bad, nvm.Get(nvm.PCM), DefaultParams()); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := ACPIM(bad, nvm.Get(nvm.PCM), DefaultParams()); err == nil {
		t.Error("bad geometry accepted by ACPIM")
	}
	p := DefaultParams()
	p.ArrayEfficiency = 0
	if _, err := Pinatubo(memarch.Default(), nvm.Get(nvm.PCM), p); err == nil {
		t.Error("zero efficiency accepted")
	}
}

func TestECCOverhead(t *testing.T) {
	// A (72,64) code stripes 8 check columns per 64 data columns: the spare
	// stripe alone is 12.5% of the chip, and the syndrome logic adds a small
	// fraction on top.
	o, err := ECC(memarch.Default(), nvm.Get(nvm.PCM), DefaultParams(), 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Fraction(o.SpareF2); got != 0.125 {
		t.Errorf("spare stripe fraction %.4f want exactly 8/64 = 0.125", got)
	}
	logic := o.Fraction(o.LogicF2)
	if logic <= 0 || logic > 0.01 {
		t.Errorf("syndrome logic fraction %.5f should be small but nonzero", logic)
	}
	if tot := o.TotalFraction(); tot <= 0.125 || tot > 0.14 {
		t.Errorf("total ECC fraction %.4f outside (0.125, 0.14]", tot)
	}
	bad := memarch.Default()
	bad.Channels = 0
	if _, err := ECC(bad, nvm.Get(nvm.PCM), DefaultParams(), 64, 8); err == nil {
		t.Error("bad geometry accepted by ECC")
	}
	if _, err := ECC(memarch.Default(), nvm.Get(nvm.PCM), DefaultParams(), 0, 8); err == nil {
		t.Error("zero data bits accepted by ECC")
	}
}

func TestSDRAMCapacityLoss(t *testing.T) {
	if l := SDRAMCapacityLoss(); l <= 0 || l > 0.01 {
		t.Errorf("S-DRAM capacity loss %g outside (0, 1%%]", l)
	}
}

package fastbit

import (
	"math/rand"
	"testing"

	"pinatubo/internal/memarch"
	"pinatubo/internal/pimrt"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

func mustMapper(t *testing.T) pimrt.Mapper {
	t.Helper()
	m, err := pimrt.NewMapper(memarch.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestColumnBinning(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	c, err := NewColumn("x", values, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.NBins() != 4 || c.Rows() != 8 {
		t.Fatalf("bins=%d rows=%d", c.NBins(), c.Rows())
	}
	// Every row appears in exactly one bin.
	for row := range values {
		count := 0
		for b := 0; b < c.NBins(); b++ {
			if c.Bitmap(b).Get(row) {
				count++
			}
		}
		if count != 1 {
			t.Errorf("row %d in %d bins", row, count)
		}
	}
	// BinOf agrees with bitmap membership.
	for row, v := range values {
		if !c.Bitmap(c.BinOf(v)).Get(row) {
			t.Errorf("BinOf(%g) bin does not contain row %d", v, row)
		}
	}
}

func TestColumnErrors(t *testing.T) {
	if _, err := NewColumn("x", nil, 4); err == nil {
		t.Error("empty column accepted")
	}
	if _, err := NewColumn("x", []float64{1, 2}, 1); err == nil {
		t.Error("1 bin accepted")
	}
	if _, err := NewColumn("x", []float64{1, 2}, 5); err == nil {
		t.Error("more bins than rows accepted")
	}
}

func TestColumnWithHeavyTies(t *testing.T) {
	values := make([]float64, 100)
	for i := 50; i < 100; i++ {
		values[i] = 1
	}
	c, err := NewColumn("ties", values, 8)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for b := 0; b < c.NBins(); b++ {
		total += c.Bitmap(b).Popcount()
	}
	if total != 100 {
		t.Errorf("rows across bins = %d want 100", total)
	}
}

func TestTableConstruction(t *testing.T) {
	tbl, err := NewTable(10)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = float64(i)
	}
	if err := tbl.AddColumn("a", vals, 2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("a", vals, 2); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := tbl.AddColumn("b", vals[:5], 2); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, ok := tbl.Column("a"); !ok {
		t.Error("column lookup failed")
	}
	if got := tbl.Columns(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Columns=%v", got)
	}
	if _, err := NewTable(0); err == nil {
		t.Error("empty table accepted")
	}
}

func newSTAR(t *testing.T) *Table {
	t.Helper()
	tbl, err := SyntheticSTAR(1<<13, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestEvaluateMatchesBruteForce(t *testing.T) {
	tbl := newSTAR(t)
	mapper := mustMapper(t)
	cpu := DefaultCPUWork()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 25; i++ {
		q := tbl.RandomQuery(rng, 0.1+0.3*rng.Float64())
		got, err := tbl.Evaluate(q, mapper, cpu, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tbl.BruteForce(q)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("query %d: bitmap-index result differs from scan (%d vs %d matches)",
				i, got.Popcount(), want.Popcount())
		}
	}
}

func TestEvaluateEmitsExpectedOps(t *testing.T) {
	tbl := newSTAR(t)
	tr := &workload.Trace{}
	rng := rand.New(rand.NewSource(3))
	q := tbl.RandomQuery(rng, 0.4)
	if _, err := tbl.Evaluate(q, mustMapper(t), DefaultCPUWork(), tr); err != nil {
		t.Fatal(err)
	}
	var ors, ands int
	for _, op := range tr.Ops {
		if err := op.Validate(); err != nil {
			t.Fatalf("invalid op: %v", err)
		}
		switch op.Op {
		case sense.OpOR:
			ors++
			if op.Operands < 2 {
				t.Error("bin OR with < 2 operands")
			}
		case sense.OpAND:
			ands++
		}
	}
	// 3 dimensions: up to 3 bin ORs (wide ranges) and exactly 2 ANDs.
	if ands != 2 {
		t.Errorf("ANDs=%d want 2", ands)
	}
	if ors == 0 {
		t.Error("no bin ORs emitted")
	}
	if tr.Other.Seconds <= 0 {
		t.Error("no CPU work charged")
	}
}

func TestEvaluateErrors(t *testing.T) {
	tbl := newSTAR(t)
	mapper := mustMapper(t)
	cpu := DefaultCPUWork()
	if _, err := tbl.Evaluate(Query{}, mapper, cpu, nil); err == nil {
		t.Error("empty query accepted")
	}
	bad := Query{Conds: []RangeCond{{Col: "nope", Lo: 0, Hi: 1}}}
	if _, err := tbl.Evaluate(bad, mapper, cpu, nil); err == nil {
		t.Error("unknown column accepted")
	}
	empty := Query{Conds: []RangeCond{{Col: "energy", Lo: 5, Hi: 5}}}
	if _, err := tbl.Evaluate(empty, mapper, cpu, nil); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := tbl.BruteForce(Query{}); err == nil {
		t.Error("brute force empty query accepted")
	}
}

func TestSyntheticSTARShape(t *testing.T) {
	tbl := newSTAR(t)
	if tbl.Rows() != 1<<13 {
		t.Errorf("rows=%d", tbl.Rows())
	}
	cols := tbl.Columns()
	if len(cols) != 3 {
		t.Fatalf("columns=%v", cols)
	}
	// Energy must be heavy tailed: the top bin spans more value range than
	// the bottom bin (equal-population bins on an exponential).
	c, _ := tbl.Column("energy")
	nb := c.NBins()
	low := c.edges[1] - c.edges[0]
	high := c.edges[nb] - c.edges[nb-1]
	if high <= low {
		t.Error("energy bins not widening — distribution not heavy tailed")
	}
}

func TestWorkloadBatches(t *testing.T) {
	tbl := newSTAR(t)
	tr, matches, err := Workload(tbl, 40, mustMapper(t), DefaultCPUWork(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) < 40 {
		t.Errorf("only %d ops for 40 queries", len(tr.Ops))
	}
	if matches <= 0 {
		t.Error("no matches across the batch — selectivities wrong")
	}
	if tr.Name != "fastbit-40" {
		t.Errorf("trace name %q", tr.Name)
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	tbl := newSTAR(t)
	m := mustMapper(t)
	_, m1, err := Workload(tbl, 10, m, DefaultCPUWork(), 9)
	if err != nil {
		t.Fatal(err)
	}
	_, m2, err := Workload(tbl, 10, m, DefaultCPUWork(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("same seed, different results")
	}
}

func BenchmarkEvaluate(b *testing.B) {
	tbl, err := SyntheticSTAR(1<<13, 32, 7)
	if err != nil {
		b.Fatal(err)
	}
	m, err := pimrt.NewMapper(memarch.Default())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	q := tbl.RandomQuery(rng, 0.3)
	cpu := DefaultCPUWork()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Evaluate(q, m, cpu, nil); err != nil {
			b.Fatal(err)
		}
	}
}

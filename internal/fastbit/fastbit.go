// Package fastbit implements the evaluation's database workload: a
// FastBit-style equality-encoded bitmap index over synthetic STAR-detector
// event records (the real STAR data is not public; DESIGN.md documents the
// substitution). Multi-dimensional range queries decompose into exactly the
// bulk bitwise algebra Pinatubo accelerates: per dimension an OR over the
// bin bitmaps the range covers (a natural multi-row OR), then an AND across
// dimensions; boundary-bin candidates are re-checked against the raw values
// on the CPU, as FastBit does.
package fastbit

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/pimrt"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// Column is one attribute's equality-encoded bitmap index.
type Column struct {
	Name    string
	rows    int
	edges   []float64 // nbins+1 ascending bin edges
	bitmaps []*bitvec.Vector
	values  []float64 // raw values, for candidate checks and validation
}

// NewColumn builds the index for a value array with equal-population bins
// (FastBit's default binning for skewed physics data).
func NewColumn(name string, values []float64, nbins int) (*Column, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("fastbit: column %q has no rows", name)
	}
	if nbins < 2 || nbins > len(values) {
		return nil, fmt.Errorf("fastbit: column %q: %d bins for %d rows", name, nbins, len(values))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	edges := make([]float64, nbins+1)
	for i := 0; i <= nbins; i++ {
		pos := i * (len(sorted) - 1) / nbins
		edges[i] = sorted[pos]
	}
	edges[nbins] = math.Nextafter(sorted[len(sorted)-1], math.Inf(1))
	// Deduplicate degenerate edges (heavy ties) by nudging.
	for i := 1; i <= nbins; i++ {
		if edges[i] <= edges[i-1] {
			edges[i] = math.Nextafter(edges[i-1], math.Inf(1))
		}
	}
	c := &Column{Name: name, rows: len(values), edges: edges, values: values}
	c.bitmaps = make([]*bitvec.Vector, nbins)
	for i := range c.bitmaps {
		c.bitmaps[i] = bitvec.New(len(values))
	}
	for row, v := range values {
		c.bitmaps[c.BinOf(v)].Set(row)
	}
	return c, nil
}

// NBins returns the bin count.
func (c *Column) NBins() int { return len(c.bitmaps) }

// Rows returns the row count.
func (c *Column) Rows() int { return c.rows }

// Bitmap returns bin b's bitmap (shared; callers must not mutate).
func (c *Column) Bitmap(b int) *bitvec.Vector { return c.bitmaps[b] }

// Value returns the raw value of one row — the read FastBit performs when
// re-checking boundary-bin candidates.
func (c *Column) Value(row int) float64 { return c.values[row] }

// BinOf returns the bin index of value v (clamped to the edge bins).
func (c *Column) BinOf(v float64) int {
	// First edge whose value exceeds v, minus one. The comparison below is
	// an exact membership probe against stored (assigned, never computed)
	// bin edges — FastBit's closed-open bin boundary semantics.
	i := sort.SearchFloat64s(c.edges, v)
	//pinlint:ignore floateq exact probe against stored bin edges, not computed floats
	if i < len(c.edges) && c.edges[i] == v {
		i++
	}
	i--
	if i < 0 {
		return 0
	}
	if i >= c.NBins() {
		return c.NBins() - 1
	}
	return i
}

// Table is a collection of indexed columns over the same rows.
type Table struct {
	rows int
	cols map[string]*Column
	// order preserves column addition order for deterministic mapping.
	order []string
}

// NewTable builds an empty table expecting the given row count.
func NewTable(rows int) (*Table, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("fastbit: table with %d rows", rows)
	}
	return &Table{rows: rows, cols: make(map[string]*Column)}, nil
}

// AddColumn indexes a value array under the name.
func (t *Table) AddColumn(name string, values []float64, nbins int) error {
	if len(values) != t.rows {
		return fmt.Errorf("fastbit: column %q has %d rows, table has %d", name, len(values), t.rows)
	}
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("fastbit: duplicate column %q", name)
	}
	c, err := NewColumn(name, values, nbins)
	if err != nil {
		return err
	}
	t.cols[name] = c
	t.order = append(t.order, name)
	return nil
}

// Rows returns the row count.
func (t *Table) Rows() int { return t.rows }

// Column returns the named column.
func (t *Table) Column(name string) (*Column, bool) {
	c, ok := t.cols[name]
	return c, ok
}

// Columns returns the column names in addition order.
func (t *Table) Columns() []string { return append([]string(nil), t.order...) }

// bitmapID returns the logical PIM bit-vector ID of (column, bin): columns'
// bitmap sets are allocated back to back by pim_malloc.
// bitmapID flattens (column, bin) to a dense bitmap index. Panics on an
// unknown column name — the schema is fixed at table construction, so a
// miss is a harness bug.
func (t *Table) bitmapID(col string, bin int) int {
	base := 0
	for _, name := range t.order {
		if name == col {
			return base + bin
		}
		base += t.cols[name].NBins()
	}
	panic(fmt.Sprintf("fastbit: unknown column %q", col))
}

// RangeCond is one dimension's predicate lo <= value < hi.
type RangeCond struct {
	Col    string
	Lo, Hi float64
}

// Query is a conjunction of range predicates.
type Query struct {
	Conds []RangeCond
}

// CPUWork prices the database's non-bitwise work.
type CPUWork struct {
	SecPerCandidate float64 // re-check one boundary-bin row against its value
	SecPerMatch     float64 // fetch/aggregate one matching event record
	SecPerWord      float64 // result-bitmap popcount/extraction per word
	PowerW          float64
}

// DefaultCPUWork returns the evaluation's constants.
func DefaultCPUWork() CPUWork {
	return CPUWork{
		SecPerCandidate: 4e-9,
		SecPerMatch:     20e-9,
		SecPerWord:      1e-9,
		PowerW:          65,
	}
}

func (c CPUWork) charge(tr *workload.Trace, seconds float64) {
	if tr == nil {
		return
	}
	tr.Other.Seconds += seconds
	tr.Other.Joules += seconds * c.PowerW
}

// Evaluate answers the query exactly, emitting the bitmap-algebra ops to
// trace (when non-nil) and charging candidate checks and result handling to
// trace.Other. The mapper supplies operand placement for the per-dimension
// bin ORs.
func (t *Table) Evaluate(q Query, mapper pimrt.Mapper, cpu CPUWork, trace *workload.Trace) (*bitvec.Vector, error) {
	if len(q.Conds) == 0 {
		return nil, fmt.Errorf("fastbit: empty query")
	}
	emit := func(spec workload.OpSpec) {
		if trace != nil {
			trace.Append(spec)
		}
	}

	var result *bitvec.Vector
	for dimIdx, cond := range q.Conds {
		col, ok := t.cols[cond.Col]
		if !ok {
			return nil, fmt.Errorf("fastbit: unknown column %q", cond.Col)
		}
		if cond.Lo >= cond.Hi {
			return nil, fmt.Errorf("fastbit: empty range [%g,%g) on %q", cond.Lo, cond.Hi, cond.Col)
		}
		loBin, hiBin := col.BinOf(cond.Lo), col.BinOf(cond.Hi)

		// OR the touched bins — the multi-row operation.
		ids := make([]int, 0, hiBin-loBin+1)
		for b := loBin; b <= hiBin; b++ {
			ids = append(ids, t.bitmapID(cond.Col, b))
		}
		dim := bitvec.New(t.rows)
		if len(ids) == 1 {
			emit(workload.OpSpec{Op: sense.OpRead, Operands: 1, Bits: t.rows})
			dim.CopyFrom(col.bitmaps[loBin])
		} else {
			spec, err := mapper.SpecForIDs(ids, t.rows)
			if err != nil {
				return nil, err
			}
			emit(spec)
			ops := make([]*bitvec.Vector, len(ids))
			for i, b := 0, loBin; b <= hiBin; i, b = i+1, b+1 {
				ops[i] = col.bitmaps[b]
			}
			dim.OrAll(ops...)
		}

		// Candidate check: rows in the boundary bins may fall outside the
		// exact range; FastBit re-reads their values.
		candidates := 0
		for _, b := range []int{loBin, hiBin} {
			candidates += col.bitmaps[b].Popcount()
			if loBin == hiBin {
				break
			}
		}
		cpu.charge(trace, float64(candidates)*cpu.SecPerCandidate)
		for _, b := range []int{loBin, hiBin} {
			col.bitmaps[b].ForEachSet(func(row int) {
				v := col.values[row]
				if v < cond.Lo || v >= cond.Hi {
					dim.Clear(row)
				}
			})
			if loBin == hiBin {
				break
			}
		}

		if dimIdx == 0 {
			result = dim
			continue
		}
		// AND with the running result: dimension results are hot.
		emit(workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: t.rows, CacheResident: true})
		result.And(result, dim)
	}

	// Result extraction: popcount + per-match record fetch.
	cpu.charge(trace, float64(bitvec.WordsFor(t.rows))*cpu.SecPerWord)
	cpu.charge(trace, float64(result.Popcount())*cpu.SecPerMatch)
	return result, nil
}

// BruteForce answers the query by scanning raw values (validation oracle).
func (t *Table) BruteForce(q Query) (*bitvec.Vector, error) {
	if len(q.Conds) == 0 {
		return nil, fmt.Errorf("fastbit: empty query")
	}
	res := bitvec.New(t.rows)
	res.SetAll()
	for _, cond := range q.Conds {
		col, ok := t.cols[cond.Col]
		if !ok {
			return nil, fmt.Errorf("fastbit: unknown column %q", cond.Col)
		}
		for row, v := range col.values {
			if v < cond.Lo || v >= cond.Hi {
				res.Clear(row)
			}
		}
	}
	return res, nil
}

// SyntheticSTAR builds the synthetic detector-event table: `rows` events
// with heavy-tailed energy, transverse momentum and pseudo-rapidity
// distributions, indexed at nbins bins per attribute.
func SyntheticSTAR(rows, nbins int, seed int64) (*Table, error) {
	t, err := NewTable(rows)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	energy := make([]float64, rows)
	pt := make([]float64, rows)
	eta := make([]float64, rows)
	for i := 0; i < rows; i++ {
		energy[i] = rng.ExpFloat64() * 10           // GeV, exponential tail
		pt[i] = math.Abs(rng.NormFloat64())*2 + 0.1 // GeV/c
		eta[i] = rng.NormFloat64() * 1.5            // pseudo-rapidity
	}
	for _, col := range []struct {
		name string
		vals []float64
	}{{"energy", energy}, {"pt", pt}, {"eta", eta}} {
		if err := t.AddColumn(col.name, col.vals, nbins); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// RandomQuery draws a multi-dimensional range query with per-dimension
// selectivity around `sel` (fraction of the value population).
func (t *Table) RandomQuery(rng *rand.Rand, sel float64) Query {
	var q Query
	for _, name := range t.order {
		col := t.cols[name]
		span := int(sel * float64(col.NBins()))
		if span < 1 {
			span = 1
		}
		lo := rng.Intn(col.NBins() - span + 1)
		q.Conds = append(q.Conds, RangeCond{
			Col: name,
			Lo:  col.edges[lo],
			Hi:  col.edges[lo+span],
		})
	}
	return q
}

// Workload runs a batch of `queries` random queries (the paper's 240/480/
// 720 workloads), returning the trace and the total matches (for tests).
func Workload(t *Table, queries int, mapper pimrt.Mapper, cpu CPUWork, seed int64) (*workload.Trace, int, error) {
	tr := &workload.Trace{Name: fmt.Sprintf("fastbit-%d", queries)}
	rng := rand.New(rand.NewSource(seed))
	matches := 0
	for i := 0; i < queries; i++ {
		q := t.RandomQuery(rng, 0.2+0.2*rng.Float64())
		res, err := t.Evaluate(q, mapper, cpu, tr)
		if err != nil {
			return nil, 0, err
		}
		matches += res.Popcount()
	}
	return tr, matches, nil
}

package dram

import (
	"math/rand"
	"strings"
	"testing"

	"pinatubo/internal/analog"
	"pinatubo/internal/backend"
	"pinatubo/internal/ddr"
	"pinatubo/internal/energy"
	"pinatubo/internal/fault"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

// testGeo is a deliberately small organisation: 256-bit rows, 64-bit sense
// width (2 column groups for the 128-bit requests below), 32 rows per
// subarray — enough for the compute group, the scratch row and data.
func testGeo() memarch.Geometry {
	return memarch.Geometry{
		Channels:         1,
		RanksPerChannel:  1,
		ChipsPerRank:     1,
		BanksPerChip:     1,
		SubarraysPerBank: 1,
		MatsPerSubarray:  1,
		RowsPerSubarray:  32,
		MatRowBits:       256,
		MuxRatio:         4,
	}
}

func newBackend(t *testing.T) *Backend {
	t.Helper()
	b, err := New(nvm.Get(nvm.DRAM), testGeo())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// makeReq builds an intra request over nsrc operand rows (rows 0..nsrc-1
// of subarray 0) with deterministic random contents.
func makeReq(op sense.Op, nsrc, bits int) *backend.IntraRequest {
	rng := rand.New(rand.NewSource(21))
	words := (bits + 63) / 64
	rows := make([][]uint64, nsrc)
	srcs := make([]memarch.RowAddr, nsrc)
	for i := range rows {
		rows[i] = make([]uint64, words)
		for j := range rows[i] {
			rows[i][j] = rng.Uint64()
		}
		srcs[i] = memarch.RowAddr{Row: i}
	}
	return &backend.IntraRequest{
		Op:     op,
		Srcs:   srcs,
		Bits:   bits,
		Rows:   rows,
		Out:    make([]uint64, words),
		Geo:    testGeo(),
		Energy: &energy.Meter{},
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(nvm.Get(nvm.PCM), testGeo()); err == nil {
		t.Error("PCM parameters accepted, want error")
	}
	small := testGeo()
	small.RowsPerSubarray = ComputeRows + 2
	if _, err := New(nvm.Get(nvm.DRAM), small); err == nil {
		t.Error("geometry with no data rows accepted, want error")
	}
}

func TestCaps(t *testing.T) {
	caps := newBackend(t).Caps()
	want := backend.Caps{MaxORRows: 2, VotedSensing: false, ComputeRows: 7, FaultInjection: false}
	if caps != want {
		t.Errorf("Caps() = %+v, want %+v", caps, want)
	}
}

func TestValidateOperands(t *testing.T) {
	b := newBackend(t)
	cases := []struct {
		op sense.Op
		n  int
		ok bool
	}{
		{sense.OpRead, 1, true},
		{sense.OpRead, 2, false},
		{sense.OpINV, 1, true},
		{sense.OpINV, 2, false},
		{sense.OpAND, 2, true},
		{sense.OpAND, 3, false},
		{sense.OpOR, 2, true},
		{sense.OpOR, 1, false},
		{sense.OpOR, 3, false}, // pairwise only: deep ORs chain upstream
		{sense.OpXOR, 2, true},
		{sense.OpXOR, 1, false},
		{sense.Op(99), 1, false},
	}
	for _, c := range cases {
		err := b.ValidateOperands(c.op, c.n)
		if c.ok && err != nil {
			t.Errorf("ValidateOperands(%v, %d) = %v, want nil", c.op, c.n, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ValidateOperands(%v, %d) = nil, want error", c.op, c.n)
		}
	}
}

func TestComputeIntoMatchesHost(t *testing.T) {
	b := newBackend(t)
	cases := []struct {
		op     sense.Op
		nsrc   int
		golden func(rows [][]uint64, i int) uint64
	}{
		{sense.OpRead, 1, func(r [][]uint64, i int) uint64 { return r[0][i] }},
		{sense.OpINV, 1, func(r [][]uint64, i int) uint64 { return ^r[0][i] }},
		{sense.OpAND, 2, func(r [][]uint64, i int) uint64 { return r[0][i] & r[1][i] }},
		{sense.OpOR, 2, func(r [][]uint64, i int) uint64 { return r[0][i] | r[1][i] }},
		{sense.OpXOR, 2, func(r [][]uint64, i int) uint64 { return r[0][i] ^ r[1][i] }},
	}
	for _, c := range cases {
		req := makeReq(c.op, c.nsrc, 128)
		if err := b.ComputeInto(req.Out, c.op, req.Rows); err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		for i, got := range req.Out {
			if want := c.golden(req.Rows, i); got != want {
				t.Errorf("%v word %d: %x want %x", c.op, i, got, want)
			}
		}
	}
	if err := b.ComputeInto(make([]uint64, 2), sense.OpAND, makeReq(sense.OpAND, 1, 128).Rows); err == nil {
		t.Error("ComputeInto with wrong operand count accepted, want error")
	}
}

// kindCounts tallies the command kinds of a lowered sequence.
func kindCounts(cmds []ddr.Cmd) map[ddr.CmdKind]int {
	m := map[ddr.CmdKind]int{}
	for _, c := range cmds {
		m[c.Kind]++
	}
	return m
}

// TestLowerIntraCommandShapes pins the exact command structure of every
// lowering at 2 column groups (128 bits over a 64-bit sense width):
// an open is ACT + 2×SENSE, an AAP adds WBACK + PRE, a TRA is ACT-TRA +
// 2×SENSE. The controller appends the write-back and final PRE, so each
// sequence must replay cleanly against the DDR protocol checker once
// those are appended — and must end with the result amplified in the SAs
// (its last command a SENSE).
func TestLowerIntraCommandShapes(t *testing.T) {
	const groups = 2
	cases := []struct {
		op   sense.Op
		nsrc int
		want map[ddr.CmdKind]int
	}{
		// READ: one open.
		{sense.OpRead, 1, map[ddr.CmdKind]int{
			ddr.CmdAct: 1, ddr.CmdSense: groups}},
		// NOT: AAP through the DCC row, then open it.
		{sense.OpINV, 1, map[ddr.CmdKind]int{
			ddr.CmdAct: 2, ddr.CmdSense: 2 * groups, ddr.CmdWBack: 1, ddr.CmdPre: 1}},
		// AND/OR: stage a, b and a control row (3 AAPs), one TRA.
		{sense.OpAND, 2, map[ddr.CmdKind]int{
			ddr.CmdAct: 3, ddr.CmdActTRA: 1, ddr.CmdSense: 4 * groups,
			ddr.CmdWBack: 3, ddr.CmdPre: 3}},
		{sense.OpOR, 2, map[ddr.CmdKind]int{
			ddr.CmdAct: 3, ddr.CmdActTRA: 1, ddr.CmdSense: 4 * groups,
			ddr.CmdWBack: 3, ddr.CmdPre: 3}},
		// XOR: 11 AAPs and 3 TRAs (two partial AND terms, final OR);
		// the two intermediate TRAs close their group (2 extra PREs).
		{sense.OpXOR, 2, map[ddr.CmdKind]int{
			ddr.CmdAct: 11, ddr.CmdActTRA: 3, ddr.CmdSense: 14 * groups,
			ddr.CmdWBack: 11, ddr.CmdPre: 13}},
	}
	b := newBackend(t)
	for _, c := range cases {
		req := makeReq(c.op, c.nsrc, 128)
		cmds, err := b.LowerIntra(req, nil)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		got := kindCounts(cmds)
		for k, n := range c.want {
			if got[k] != n {
				t.Errorf("%v: %d %v commands, want %d", c.op, got[k], k, n)
			}
		}
		for k, n := range got {
			if c.want[k] == 0 && n > 0 {
				t.Errorf("%v: unexpected %v commands (%d)", c.op, k, n)
			}
		}
		if last := cmds[len(cmds)-1].Kind; last != ddr.CmdSense {
			t.Errorf("%v: last command %v, want SENSE (result must be left in the SAs)", c.op, last)
		}
		// Controller epilogue: write the result back, precharge everything.
		closed := append(append([]ddr.Cmd{}, cmds...),
			ddr.Cmd{Kind: ddr.CmdWBack, Addr: memarch.RowAddr{Row: 20}},
			ddr.Cmd{Kind: ddr.CmdPre})
		if err := ddr.ValidateSequence(closed); err != nil {
			t.Errorf("%v: lowered sequence violates the DDR protocol: %v", c.op, err)
		}
		// Functional output must have been filled.
		for i := range req.Out {
			tmp := make([]uint64, len(req.Out))
			combine(tmp, c.op, req.Rows)
			if req.Out[i] != tmp[i] {
				t.Errorf("%v: Out word %d = %x, want %x", c.op, i, req.Out[i], tmp[i])
			}
		}
		if req.Energy.Total() <= 0 {
			t.Errorf("%v: no energy charged", c.op)
		}
	}
}

// TestLowerIntraEnergyOrdering checks that pricing tracks work: XOR (3
// TRAs, 11 copies) must cost more than AND (1 TRA, 3 copies), which must
// cost more than a plain read.
func TestLowerIntraEnergyOrdering(t *testing.T) {
	b := newBackend(t)
	cost := func(op sense.Op, nsrc int) float64 {
		req := makeReq(op, nsrc, 128)
		if _, err := b.LowerIntra(req, nil); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		return req.Energy.Total()
	}
	read := cost(sense.OpRead, 1)
	and := cost(sense.OpAND, 2)
	xor := cost(sense.OpXOR, 2)
	if !(read > 0 && and > read && xor > and) {
		t.Errorf("energy ordering violated: read=%g and=%g xor=%g", read, and, xor)
	}
}

func TestLowerIntraRejections(t *testing.T) {
	b := newBackend(t)

	// Fault injection belongs to resistive sensing; the seam must refuse
	// it rather than silently not injecting.
	inj, err := fault.New(fault.Config{Seed: 1, SenseFlipRate: 1e-3},
		nvm.Get(nvm.PCM), analog.DefaultSenseConfig(), 256)
	if err != nil {
		t.Fatal(err)
	}
	req := makeReq(sense.OpAND, 2, 128)
	req.Inj = inj
	if _, err := b.LowerIntra(req, nil); err == nil {
		t.Error("fault injector accepted, want error")
	}

	// Operand rows inside the reserved compute group would be clobbered
	// by the lowering's own staging.
	req = makeReq(sense.OpAND, 2, 128)
	req.Srcs[1].Row = testGeo().RowsPerSubarray - 1 - ComputeRows
	if _, err := b.LowerIntra(req, nil); err == nil {
		t.Error("operand in the compute-row group accepted, want error")
	} else if !strings.Contains(err.Error(), "compute-row") {
		t.Errorf("error %q does not explain the reserved range", err)
	}

	req = makeReq(sense.Op(99), 1, 128)
	if _, err := b.LowerIntra(req, nil); err == nil {
		t.Error("unknown op accepted, want error")
	}
}

// TestLowerXNOR pins the out-of-band XNOR building block: same command
// shape as XOR (complementary partial terms), complement result.
func TestLowerXNOR(t *testing.T) {
	b := newBackend(t)
	req := makeReq(sense.OpXOR, 2, 128) // op field unused by LowerXNOR
	cmds, err := b.LowerXNOR(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := kindCounts(cmds)
	if got[ddr.CmdActTRA] != 3 || got[ddr.CmdAct] != 11 {
		t.Errorf("XNOR shape: %d ACT / %d ACT-TRA, want 11 / 3", got[ddr.CmdAct], got[ddr.CmdActTRA])
	}
	for i := range req.Out {
		if want := ^(req.Rows[0][i] ^ req.Rows[1][i]); req.Out[i] != want {
			t.Errorf("word %d: %x want %x", i, req.Out[i], want)
		}
	}
	closed := append(append([]ddr.Cmd{}, cmds...),
		ddr.Cmd{Kind: ddr.CmdWBack, Addr: memarch.RowAddr{Row: 20}},
		ddr.Cmd{Kind: ddr.CmdPre})
	if err := ddr.ValidateSequence(closed); err != nil {
		t.Errorf("XNOR sequence violates the DDR protocol: %v", err)
	}
	if req.Energy.Total() <= 0 {
		t.Error("no energy charged")
	}
	bad := makeReq(sense.OpINV, 1, 128)
	if _, err := b.LowerXNOR(bad, nil); err == nil {
		t.Error("XNOR with one operand accepted, want error")
	}
}

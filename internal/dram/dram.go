// Package dram implements the in-DRAM processing-using-memory backend
// behind the backend.Backend seam: bulk bitwise operations computed with
// charge sharing instead of resistive sensing, following the RowClone /
// Ambit line of work (see PAPERS.md). The primitives are:
//
//   - TRA (triple-row activation): simultaneously activating three rows
//     makes each bitline resolve to the majority of the three cells, so
//     MAJ(a,b,0) = a AND b and MAJ(a,b,1) = a OR b. TRA is
//     destructive-restore: after the sense, all three rows hold the
//     majority value.
//   - DCC (dual-contact cell) row: one row per subarray whose cells
//     connect to both the bitline and its complement, so copying a row
//     into it through the negated port yields NOT.
//   - RowClone AAP (activate-activate-precharge): intra-subarray bulk
//     copy through the sense amplifiers and write drivers, used to stage
//     operands into the compute group without touching the DDR bus.
//
// XOR is synthesized from MAJ and NOT — a XOR b = MAJ(a∧¬b, ¬a∧b, 1) —
// and XNOR (the BNN building block) the same way from the complementary
// partial terms; see LowerXNOR.
//
// Because TRA is destructive, operands are never computed on in place:
// every operation first AAP-stages its operands into a designated
// compute-row group at the top of each subarray (T0..T3, the DCC row, and
// two control rows C0/C1 pre-initialised to all-zeros/all-ones). The
// backend reserves these rows through Caps().ComputeRows, so the
// allocator never hands them out. Their contents are bookkeeping internal
// to one lowering — the functional result of the operation depends only
// on the operand rows — so the simulator models them virtually: commands
// are emitted and priced against their addresses, but no memory row is
// materialised for them.
package dram

import (
	"fmt"

	"pinatubo/internal/backend"
	"pinatubo/internal/ddr"
	"pinatubo/internal/energy"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

// ComputeRows is how many rows at the top of every subarray the backend
// reserves (below the scheduler's scratch row): the TRA group T0/T1/T2,
// the spill row T3 XOR needs for its first partial term, the dual-contact
// NOT row, and the all-zeros/all-ones control rows.
const ComputeRows = 7

// Offsets of the compute rows from the end of the subarray. Row
// RowsPerSubarray-1 is the scheduler's scratch row; the compute group
// sits directly below it.
const (
	offT0  = 2
	offT1  = 3
	offT2  = 4
	offT3  = 5
	offDCC = 6
	offC0  = 7
	offC1  = 8
)

// maxORRows is the one-step OR depth: one TRA combines exactly two
// operands with a control row, so deep ORs chain pairwise (the runtime
// scheduler already does this for STT-MRAM, whose limit is also 2).
const maxORRows = 2

// Backend lowers intra-subarray requests to TRA/AAP command sequences.
type Backend struct {
	p nvm.Params
}

// New builds the DRAM backend. The geometry must leave room for the
// compute-row group, the scheduler's scratch row and at least two data
// rows per subarray.
func New(p nvm.Params, geo memarch.Geometry) (*Backend, error) {
	if p.Tech != nvm.DRAM {
		return nil, fmt.Errorf("dram: backend requires DRAM parameters, got %s", p.Tech)
	}
	if min := ComputeRows + 3; geo.RowsPerSubarray < min {
		return nil, fmt.Errorf("dram: %d rows per subarray cannot hold the %d compute rows, the scratch row and data (need >= %d)",
			geo.RowsPerSubarray, ComputeRows, min)
	}
	return &Backend{p: p}, nil
}

// Params returns the DRAM parameter set.
func (b *Backend) Params() nvm.Params { return b.p }

// Caps: pairwise OR only (one TRA per combine), no voted sensing (a TRA
// is destructive, so an operand set cannot be re-sensed), seven reserved
// compute rows, and no resistive fault model.
func (b *Backend) Caps() backend.Caps {
	return backend.Caps{
		MaxORRows:      maxORRows,
		VotedSensing:   false,
		ComputeRows:    ComputeRows,
		FaultInjection: false,
	}
}

// ValidateOperands applies the TRA operand rules: READ/NOT one operand,
// AND/XOR/OR exactly two.
func (b *Backend) ValidateOperands(op sense.Op, n int) error {
	switch op {
	case sense.OpRead, sense.OpINV:
		if n != 1 {
			return &sense.OperandError{Op: op, Tech: b.p.Tech, N: n, Want: 1}
		}
	case sense.OpAND, sense.OpXOR:
		if n != 2 {
			return &sense.OperandError{Op: op, Tech: b.p.Tech, N: n, Want: 2}
		}
	case sense.OpOR:
		if n < 2 || n > maxORRows {
			return &sense.OperandError{Op: op, Tech: b.p.Tech, N: n, Max: maxORRows}
		}
	default:
		return fmt.Errorf("dram: unknown op %d", int(op))
	}
	return nil
}

// ComputeInto resolves op functionally. DRAM compute is fully digital at
// the model level — no stochastic sensing stream — so this is plain word
// math, shared with LowerIntra.
func (b *Backend) ComputeInto(dst []uint64, op sense.Op, rows [][]uint64) error {
	if err := b.ValidateOperands(op, len(rows)); err != nil {
		return err
	}
	combine(dst, op, rows)
	return nil
}

// Reset is a no-op: the backend keeps no sampling or scratch state.
func (b *Backend) Reset() {}

// combine fills dst with the result of op over the operand rows. Callers
// validated the operand count. Panics on an op outside the sense.Op set —
// an exhaustiveness bug when the op set grows, never a data condition
// (both callers validate first).
func combine(dst []uint64, op sense.Op, rows [][]uint64) {
	a := rows[0]
	switch op {
	case sense.OpRead:
		copy(dst, a[:len(dst)])
	case sense.OpINV:
		for i := range dst {
			dst[i] = ^a[i]
		}
	case sense.OpAND:
		for i := range dst {
			dst[i] = a[i] & rows[1][i]
		}
	case sense.OpOR:
		for i := range dst {
			dst[i] = a[i] | rows[1][i]
		}
	case sense.OpXOR:
		for i := range dst {
			dst[i] = a[i] ^ rows[1][i]
		}
	default:
		panic(fmt.Sprintf("dram: combine of unvalidated op %d", int(op)))
	}
}

// lowering carries the emission state of one request.
type lowering struct {
	p      nvm.Params
	cmds   []ddr.Cmd
	en     *energy.Meter
	base   memarch.RowAddr // subarray carrier; Row is overridden per command
	bits   int
	groups int
	per    int // rows per subarray
}

func (l *lowering) row(off int) memarch.RowAddr {
	a := l.base
	a.Row = l.per - off
	return a
}

// open activates one row and senses every column group, leaving the row's
// contents amplified in the SAs.
func (l *lowering) open(a memarch.RowAddr) {
	e := l.p.Energy
	fbits := float64(l.bits)
	l.cmds = append(l.cmds, ddr.Cmd{Kind: ddr.CmdAct, Addr: a})
	for g := 0; g < l.groups; g++ {
		l.cmds = append(l.cmds, ddr.Cmd{Kind: ddr.CmdSense, Addr: a})
	}
	l.en.Add(energy.DRAMArray, fbits*e.ActPerBit)
	l.en.Add(energy.LWLDriver, e.LWLPerAct)
	l.en.Add(energy.SenseAmp, fbits*e.SensePerBit)
}

// aap is RowClone's activate-activate-precharge intra-subarray copy: open
// src, feed the SA contents into dst's cells through the write drivers,
// precharge. Copies into the DCC row latch through its negated port, so
// aap(src, DCC) stores NOT src — same commands, same cost.
func (l *lowering) aap(src, dst memarch.RowAddr) {
	l.open(src)
	l.cmds = append(l.cmds, ddr.Cmd{Kind: ddr.CmdWBack, Addr: dst})
	l.en.Add(energy.WriteDriver, float64(l.bits)*l.p.Energy.WritePerBit)
	l.pre(src)
}

func (l *lowering) pre(a memarch.RowAddr) {
	l.cmds = append(l.cmds, ddr.Cmd{Kind: ddr.CmdPre, Addr: a})
}

// tra issues the triple-row activation over T0/T1/T2 and senses every
// column group: the SAs resolve and restore MAJ(T0,T1,T2). When close is
// set the group is precharged afterwards (intermediate step); otherwise
// the result stays in the SAs for the controller's write-back.
func (l *lowering) tra(close bool) {
	e := l.p.Energy
	fbits := float64(l.bits)
	t0 := l.row(offT0)
	l.cmds = append(l.cmds, ddr.Cmd{Kind: ddr.CmdActTRA, Addr: t0})
	for g := 0; g < l.groups; g++ {
		l.cmds = append(l.cmds, ddr.Cmd{Kind: ddr.CmdSense, Addr: t0})
	}
	// Three wordlines fire and three rows' cells are restored; the sense
	// itself carries the three-open-rows adder, like a depth-3 NVM sense.
	l.en.Add(energy.DRAMArray, 3*fbits*e.ActPerBit)
	l.en.Add(energy.LWLDriver, 3*e.LWLPerAct)
	l.en.Add(energy.SenseAmp, fbits*(e.SensePerBit+3*e.SenseRowAdd))
	if close {
		l.pre(t0)
	}
}

// LowerIntra stages the operands into the compute group and computes
// through TRA / the DCC row. The final activation's result is left in the
// SAs (rows open) for the controller's generic write-back and precharge.
func (b *Backend) LowerIntra(req *backend.IntraRequest, cmds []ddr.Cmd) ([]ddr.Cmd, error) {
	if req.Inj != nil {
		return nil, fmt.Errorf("dram: fault injection models resistive sensing margins and does not apply to the DRAM backend")
	}
	if err := b.ValidateOperands(req.Op, len(req.Srcs)); err != nil {
		return nil, err
	}
	per := req.Geo.RowsPerSubarray
	for _, s := range req.Srcs {
		if s.Row >= per-1-ComputeRows && s.Row < per-1 {
			return nil, fmt.Errorf("dram: operand row %d lies in the reserved compute-row group [%d,%d)",
				s.Row, per-1-ComputeRows, per-1)
		}
	}
	l := &lowering{
		p:      b.p,
		cmds:   cmds,
		en:     req.Energy,
		base:   req.Srcs[0],
		bits:   req.Bits,
		groups: backend.SenseGroups(req.Geo, req.Bits),
		per:    per,
	}

	switch req.Op {
	case sense.OpRead:
		// A plain open: the row's contents are in the SAs.
		l.open(req.Srcs[0])
	case sense.OpINV:
		// Copy through the DCC row's negated port, then open the DCC row.
		l.aap(req.Srcs[0], l.row(offDCC))
		l.open(l.row(offDCC))
	case sense.OpAND:
		l.stageTRA(req.Srcs[0], req.Srcs[1], offC0) // MAJ(a,b,0) = a AND b
		l.tra(false)
	case sense.OpOR:
		l.stageTRA(req.Srcs[0], req.Srcs[1], offC1) // MAJ(a,b,1) = a OR b
		l.tra(false)
	case sense.OpXOR:
		l.lowerXorLike(req.Srcs[0], req.Srcs[1], false)
	default:
		return nil, fmt.Errorf("dram: unknown op %d", int(req.Op))
	}

	combine(req.Out, req.Op, req.Rows)
	return l.cmds, nil
}

// stageTRA copies the two operands and a control row into the TRA group.
func (l *lowering) stageTRA(a, b memarch.RowAddr, ctrlOff int) {
	l.aap(a, l.row(offT0))
	l.aap(b, l.row(offT1))
	l.aap(l.row(ctrlOff), l.row(offT2))
}

// lowerXorLike synthesizes XOR (or XNOR when invert is set) from MAJ and
// NOT: two AND partial terms, OR-ed by a final MAJ(·,·,1).
//
//	XOR  = (a ∧ ¬b) ∨ (¬a ∧ b)
//	XNOR = (a ∧ b)  ∨ (¬a ∧ ¬b)
//
// TRA's destructive restore is what makes this work in-array: after each
// intermediate TRA the whole group holds the partial term, so T0 can be
// spilled to T3 (first term) or simply left in place (second term).
func (l *lowering) lowerXorLike(a, b memarch.RowAddr, invert bool) {
	dcc := l.row(offDCC)
	// First partial term into T0..T2, spilled to T3.
	if invert {
		l.stageTRA(a, b, offC0) // a ∧ b
	} else {
		l.aap(b, dcc) // dcc = ¬b
		l.aap(a, l.row(offT0))
		l.aap(dcc, l.row(offT1))
		l.aap(l.row(offC0), l.row(offT2)) // a ∧ ¬b
	}
	l.tra(true)
	l.aap(l.row(offT0), l.row(offT3))
	// Second partial term into T0..T2.
	l.aap(a, dcc) // dcc = ¬a
	l.aap(dcc, l.row(offT0))
	if invert {
		l.aap(b, dcc) // dcc = ¬b
		l.aap(dcc, l.row(offT1))
	} else {
		l.aap(b, l.row(offT1))
	}
	l.aap(l.row(offC0), l.row(offT2))
	l.tra(true)
	// OR the two terms: T0 holds the second term, T1 gets the spilled
	// first term, T2 the all-ones control row.
	l.aap(l.row(offT3), l.row(offT1))
	l.aap(l.row(offC1), l.row(offT2))
	l.tra(false)
}

// LowerXNOR lowers the XNOR of req's two operands — the BNN XNOR-popcount
// building block — through the same MAJ/NOT synthesis as XOR. It is not
// reachable through sense.Op (the public op set matches the paper's);
// workloads that need XNOR call it directly. Contract as LowerIntra:
// result in req.Out, final activation left open for write-back.
func (b *Backend) LowerXNOR(req *backend.IntraRequest, cmds []ddr.Cmd) ([]ddr.Cmd, error) {
	if req.Inj != nil {
		return nil, fmt.Errorf("dram: fault injection models resistive sensing margins and does not apply to the DRAM backend")
	}
	if len(req.Srcs) != 2 || len(req.Rows) != 2 {
		return nil, fmt.Errorf("dram: XNOR requires exactly 2 operands, got %d", len(req.Srcs))
	}
	l := &lowering{
		p:      b.p,
		cmds:   cmds,
		en:     req.Energy,
		base:   req.Srcs[0],
		bits:   req.Bits,
		groups: backend.SenseGroups(req.Geo, req.Bits),
		per:    req.Geo.RowsPerSubarray,
	}
	l.lowerXorLike(req.Srcs[0], req.Srcs[1], true)
	for i := range req.Out {
		req.Out[i] = ^(req.Rows[0][i] ^ req.Rows[1][i])
	}
	return l.cmds, nil
}

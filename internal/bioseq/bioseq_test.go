package bioseq

import (
	"math/rand"
	"strings"
	"testing"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/memarch"
	"pinatubo/internal/pimrt"
	"pinatubo/internal/workload"
)

func mustMapper(t *testing.T) pimrt.Mapper {
	t.Helper()
	m, err := pimrt.NewMapper(memarch.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSpectrumBits(t *testing.T) {
	if SpectrumBits(1) != 4 || SpectrumBits(8) != 65536 || SpectrumBits(9) != 1<<18 {
		t.Error("SpectrumBits wrong")
	}
}

func TestKmerSpectrumSmall(t *testing.T) {
	// "ACGT" with k=2 has 2-mers AC, CG, GT → codes 0b0001, 0b0110, 0b1011.
	v, err := KmerSpectrum("ACGT", 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0b0001, 0b0110, 0b1011}
	if v.Popcount() != len(want) {
		t.Fatalf("popcount=%d want %d", v.Popcount(), len(want))
	}
	for _, code := range want {
		if !v.Get(code) {
			t.Errorf("k-mer code %b missing", code)
		}
	}
}

func TestKmerSpectrumSkipsInvalid(t *testing.T) {
	v, err := KmerSpectrum("ACNGT", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Windows spanning N are dropped: only AC and GT remain.
	if v.Popcount() != 2 || !v.Get(0b0001) || !v.Get(0b1011) {
		t.Errorf("invalid-base handling wrong: %d k-mers", v.Popcount())
	}
	// Lowercase accepted.
	lv, err := KmerSpectrum("acgt", 2)
	if err != nil {
		t.Fatal(err)
	}
	if lv.Popcount() != 3 {
		t.Error("lowercase not handled")
	}
}

func TestKmerSpectrumEdges(t *testing.T) {
	if _, err := KmerSpectrum("ACGT", 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KmerSpectrum("ACGT", 13); err == nil {
		t.Error("k=13 accepted")
	}
	v, err := KmerSpectrum("AC", 3) // shorter than k
	if err != nil {
		t.Fatal(err)
	}
	if v.Any() {
		t.Error("short sequence should have empty spectrum")
	}
}

func TestRandomGenomeAndMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomGenome(rng, 5000, 6)
	if len(g) != 5000 {
		t.Fatalf("genome length %d", len(g))
	}
	for i := 0; i < len(g); i++ {
		if !strings.ContainsRune(Alphabet, rune(g[i])) {
			t.Fatalf("invalid base %q", g[i])
		}
	}
	m := Mutate(rng, g, 0.05)
	if len(m) != len(g) {
		t.Fatal("mutation changed length")
	}
	diff := 0
	for i := range g {
		if g[i] != m[i] {
			diff++
		}
	}
	if diff == 0 || diff > len(g)/5 {
		t.Errorf("mutation count %d implausible for rate 0.05", diff)
	}
}

func newFam(t *testing.T, n int) *Family {
	t.Helper()
	f, err := NewFamily(n, 4000, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFamilyUnionMatchesReference(t *testing.T) {
	f := newFam(t, 12)
	tr := &workload.Trace{}
	got, err := f.Union(mustMapper(t), DefaultCPUWork(), tr)
	if err != nil {
		t.Fatal(err)
	}
	want := bitvec.New(SpectrumBits(8))
	want.OrAll(f.Spectra...)
	if !got.Equal(want) {
		t.Error("union mismatch")
	}
	// The union is one multi-row OR request spec.
	if len(tr.Ops) != 1 || tr.Ops[0].Operands != 12 {
		t.Errorf("trace ops %+v", tr.Ops)
	}
	if err := tr.Ops[0].Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Other.Seconds <= 0 {
		t.Error("no CPU work charged")
	}
}

func TestFamilyCore(t *testing.T) {
	f := newFam(t, 5)
	tr := &workload.Trace{}
	core := f.Core(DefaultCPUWork(), tr)
	want := bitvec.New(SpectrumBits(8))
	want.AndAll(f.Spectra...)
	if !core.Equal(want) {
		t.Error("core mismatch")
	}
	if len(tr.Ops) != 4 {
		t.Errorf("%d AND ops want 4", len(tr.Ops))
	}
	// Related genomes share a core.
	if core.Popcount() == 0 {
		t.Error("family core empty — genomes unrelated?")
	}
}

func TestJaccard(t *testing.T) {
	f := newFam(t, 3)
	cpu := DefaultCPUWork()
	self, err := f.Jaccard(1, 1, cpu, nil)
	if err != nil {
		t.Fatal(err)
	}
	if self != 1 {
		t.Errorf("self similarity %g want 1", self)
	}
	sim, err := f.Jaccard(0, 1, cpu, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2% mutation keeps relatives similar but not identical.
	if sim <= 0.3 || sim >= 1 {
		t.Errorf("relative similarity %g outside (0.3,1)", sim)
	}
	if _, err := f.Jaccard(0, 99, cpu, nil); err == nil {
		t.Error("out-of-range member accepted")
	}
}

func TestJaccardEmptySpectra(t *testing.T) {
	f := &Family{K: 4, Spectra: []*bitvec.Vector{
		bitvec.New(SpectrumBits(4)), bitvec.New(SpectrumBits(4)),
	}}
	sim, err := f.Jaccard(0, 1, DefaultCPUWork(), nil)
	if err != nil || sim != 0 {
		t.Errorf("empty spectra similarity %g err %v", sim, err)
	}
}

func TestScreen(t *testing.T) {
	f := newFam(t, 8)
	tr := &workload.Trace{}
	cpu := DefaultCPUWork()
	panel, err := f.Union(mustMapper(t), cpu, tr)
	if err != nil {
		t.Fatal(err)
	}
	// A member screens at 100%; an unrelated genome screens low.
	rng := rand.New(rand.NewSource(99))
	stranger, err := KmerSpectrum(RandomGenome(rng, 4000, 8), 8)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Screen(panel, []*bitvec.Vector{f.Spectra[3], stranger}, cpu, tr)
	if err != nil {
		t.Fatal(err)
	}
	if fr[0] != 1 {
		t.Errorf("member containment %g want 1", fr[0])
	}
	if fr[1] >= 0.9 {
		t.Errorf("stranger containment %g suspiciously high", fr[1])
	}
	// Length mismatch rejected.
	if _, err := Screen(panel, []*bitvec.Vector{bitvec.New(4)}, cpu, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestNewFamilyErrors(t *testing.T) {
	if _, err := NewFamily(0, 100, 8, 1); err == nil {
		t.Error("empty family accepted")
	}
	if _, err := NewFamily(2, 100, 99, 1); err == nil {
		t.Error("bad k accepted")
	}
}

func BenchmarkKmerSpectrum(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := RandomGenome(rng, 100000, 8)
	b.SetBytes(int64(len(g)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KmerSpectrum(g, 9); err != nil {
			b.Fatal(err)
		}
	}
}

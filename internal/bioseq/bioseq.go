// Package bioseq implements the bio-informatics workload family the paper
// motivates (its citation [21]: bitwise operations for genetic algorithms /
// sequence analysis): k-mer presence bitmaps over DNA sequences.
//
// A sequence's k-mer spectrum is a 4^k-bit vector with bit i set when the
// k-mer with 2-bit encoding i occurs. Spectra make classic sequence
// questions bulk bitwise operations:
//
//   - family union  = multi-row OR of the members' spectra (one Pinatubo
//     step for up to 128 genomes),
//   - shared core   = AND chain,
//   - Jaccard similarity = popcount(AND) / popcount(OR),
//   - containment screening = AND with a reference panel's union.
//
// With k = 9 a spectrum is 2^18 bits — half a Pinatubo rank row.
package bioseq

import (
	"fmt"
	"math/rand"
	"strings"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/pimrt"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// Alphabet is the DNA alphabet in encoding order.
const Alphabet = "ACGT"

// encodeBase maps a base to its 2-bit code, or -1.
func encodeBase(b byte) int {
	switch b {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't':
		return 3
	default:
		return -1
	}
}

// SpectrumBits returns the bitmap length for k-mers of length k (4^k).
func SpectrumBits(k int) int { return 1 << (2 * k) }

// KmerSpectrum builds the presence bitmap of a sequence's k-mers. Windows
// containing non-ACGT characters are skipped, as sequence toolchains do.
func KmerSpectrum(seq string, k int) (*bitvec.Vector, error) {
	if k < 1 || k > 12 {
		return nil, fmt.Errorf("bioseq: k=%d outside 1..12", k)
	}
	v := bitvec.New(SpectrumBits(k))
	if len(seq) < k {
		return v, nil
	}
	mask := SpectrumBits(k) - 1
	code, valid := 0, 0
	for i := 0; i < len(seq); i++ {
		b := encodeBase(seq[i])
		if b < 0 {
			code, valid = 0, 0
			continue
		}
		code = (code<<2 | b) & mask
		valid++
		if valid >= k {
			v.Set(code)
		}
	}
	return v, nil
}

// RandomGenome generates a synthetic sequence of the given length with a
// repeat structure (tandem copies of a few motifs) so spectra of related
// genomes overlap realistically.
func RandomGenome(rng *rand.Rand, length, motifs int) string {
	var sb strings.Builder
	sb.Grow(length)
	bank := make([]string, motifs)
	for i := range bank {
		m := make([]byte, 20+rng.Intn(30))
		for j := range m {
			m[j] = Alphabet[rng.Intn(4)]
		}
		bank[i] = string(m)
	}
	for sb.Len() < length {
		if rng.Float64() < 0.5 && motifs > 0 {
			sb.WriteString(bank[rng.Intn(motifs)])
		} else {
			sb.WriteByte(Alphabet[rng.Intn(4)])
		}
	}
	return sb.String()[:length]
}

// Mutate returns a copy of seq with the given per-base substitution rate —
// used to derive related family members.
func Mutate(rng *rand.Rand, seq string, rate float64) string {
	out := []byte(seq)
	for i := range out {
		if rng.Float64() < rate {
			out[i] = Alphabet[rng.Intn(4)]
		}
	}
	return string(out)
}

// Family is a set of related sequences with their spectra.
type Family struct {
	K       int
	Spectra []*bitvec.Vector
}

// NewFamily builds n related genomes (mutated copies of one ancestor) and
// their k-mer spectra.
func NewFamily(n, genomeLen, k int, seed int64) (*Family, error) {
	if n < 1 {
		return nil, fmt.Errorf("bioseq: family of %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	ancestor := RandomGenome(rng, genomeLen, 8)
	f := &Family{K: k}
	for i := 0; i < n; i++ {
		seq := Mutate(rng, ancestor, 0.02)
		sp, err := KmerSpectrum(seq, k)
		if err != nil {
			return nil, err
		}
		f.Spectra = append(f.Spectra, sp)
	}
	return f, nil
}

// CPUWork prices the non-bitwise part (sequence scanning, spectrum
// construction bookkeeping, popcount extraction).
type CPUWork struct {
	SecPerBase float64 // scan one base while building a spectrum
	SecPerWord float64 // popcount/extract one word of a result bitmap
	PowerW     float64
}

// DefaultCPUWork returns the evaluation constants.
func DefaultCPUWork() CPUWork {
	return CPUWork{SecPerBase: 2e-9, SecPerWord: 1e-9, PowerW: 65}
}

func (c CPUWork) charge(tr *workload.Trace, seconds float64) {
	if tr == nil {
		return
	}
	tr.Other.Seconds += seconds
	tr.Other.Joules += seconds * c.PowerW
}

// Union computes the family's pan-spectrum (the OR of every member),
// emitting the multi-row OR to the trace with real mapper placement. IDs
// 0..n-1 are the members' spectra rows.
func (f *Family) Union(mapper pimrt.Mapper, cpu CPUWork, tr *workload.Trace) (*bitvec.Vector, error) {
	if len(f.Spectra) == 1 {
		return f.Spectra[0].Clone(), nil
	}
	ids := make([]int, len(f.Spectra))
	for i := range ids {
		ids[i] = i
	}
	bits := SpectrumBits(f.K)
	spec, err := mapper.SpecForIDs(ids, bits)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Append(spec)
	}
	out := bitvec.New(bits)
	out.OrAll(f.Spectra...)
	cpu.charge(tr, float64(bitvec.WordsFor(bits))*cpu.SecPerWord)
	return out, nil
}

// Core computes the k-mers shared by every member (AND chain), emitting
// the 2-row ANDs.
func (f *Family) Core(cpu CPUWork, tr *workload.Trace) *bitvec.Vector {
	bits := SpectrumBits(f.K)
	out := f.Spectra[0].Clone()
	for _, sp := range f.Spectra[1:] {
		if tr != nil {
			tr.Append(workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: bits})
		}
		out.And(out, sp)
	}
	cpu.charge(tr, float64(bitvec.WordsFor(bits))*cpu.SecPerWord)
	return out
}

// Jaccard computes |A∩B| / |A∪B| between two members, emitting the AND and
// OR plus the popcount passes.
func (f *Family) Jaccard(i, j int, cpu CPUWork, tr *workload.Trace) (float64, error) {
	if i < 0 || j < 0 || i >= len(f.Spectra) || j >= len(f.Spectra) {
		return 0, fmt.Errorf("bioseq: member index out of range (%d,%d)", i, j)
	}
	bits := SpectrumBits(f.K)
	and, or := bitvec.New(bits), bitvec.New(bits)
	and.And(f.Spectra[i], f.Spectra[j])
	or.Or(f.Spectra[i], f.Spectra[j])
	if tr != nil {
		tr.Append(workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: bits})
		tr.Append(workload.OpSpec{Op: sense.OpOR, Operands: 2, Bits: bits})
	}
	cpu.charge(tr, 2*float64(bitvec.WordsFor(bits))*cpu.SecPerWord)
	union := or.Popcount()
	if union == 0 {
		return 0, nil
	}
	return float64(and.Popcount()) / float64(union), nil
}

// Screen reports, for each query spectrum, the fraction of its k-mers
// present in the panel union — the containment screen used in
// contamination checks. Each query costs one AND plus popcounts.
func Screen(panel *bitvec.Vector, queries []*bitvec.Vector, cpu CPUWork, tr *workload.Trace) ([]float64, error) {
	out := make([]float64, len(queries))
	tmp := bitvec.New(panel.Len())
	for qi, q := range queries {
		if q.Len() != panel.Len() {
			return nil, fmt.Errorf("bioseq: query %d length %d vs panel %d", qi, q.Len(), panel.Len())
		}
		if tr != nil {
			tr.Append(workload.OpSpec{Op: sense.OpAND, Operands: 2, Bits: panel.Len()})
		}
		tmp.And(q, panel)
		cpu.charge(tr, float64(bitvec.WordsFor(panel.Len()))*cpu.SecPerWord)
		if n := q.Popcount(); n > 0 {
			out[qi] = float64(tmp.Popcount()) / float64(n)
		}
	}
	return out, nil
}

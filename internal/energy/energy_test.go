package energy

import (
	"strings"
	"testing"
)

func TestMeterAddTotal(t *testing.T) {
	var m Meter
	m.Add(CellArray, 1e-12)
	m.Add(SenseAmp, 2e-12)
	m.Add(CellArray, 3e-12)
	if got := m.Component(CellArray); got != 4e-12 {
		t.Errorf("CellArray=%g", got)
	}
	if got := m.Total(); got != 6e-12 {
		t.Errorf("Total=%g", got)
	}
}

func TestMeterNegativePanics(t *testing.T) {
	var m Meter
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	m.Add(CellArray, -1)
}

func TestMeterUnknownComponentPanics(t *testing.T) {
	var m Meter
	defer func() {
		if recover() == nil {
			t.Fatal("unknown component did not panic")
		}
	}()
	m.Add(Component(99), 1)
}

func TestAddMeter(t *testing.T) {
	var a, b Meter
	a.Add(CPUCore, 1)
	b.Add(CPUCore, 2)
	b.Add(IOBus, 3)
	a.AddMeter(&b)
	if a.Component(CPUCore) != 3 || a.Component(IOBus) != 3 {
		t.Errorf("merge wrong: %v", a.Breakdown())
	}
}

func TestBreakdownSorted(t *testing.T) {
	var m Meter
	m.Add(SenseAmp, 5)
	m.Add(CellArray, 1)
	m.Add(IOBus, 10)
	bd := m.Breakdown()
	if len(bd) != 3 {
		t.Fatalf("breakdown has %d entries", len(bd))
	}
	if bd[0].Component != IOBus || bd[2].Component != CellArray {
		t.Errorf("breakdown not sorted: %v", bd)
	}
}

func TestReset(t *testing.T) {
	var m Meter
	m.Add(Logic, 1)
	m.Reset()
	if m.Total() != 0 {
		t.Error("reset failed")
	}
}

func TestComponentsAndStrings(t *testing.T) {
	cs := Components()
	if len(cs) != int(numComponents) {
		t.Fatalf("Components has %d entries", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "component(") {
			t.Errorf("component %d has no name", int(c))
		}
		if seen[s] {
			t.Errorf("duplicate component name %q", s)
		}
		seen[s] = true
	}
	if Component(99).String() != "component(99)" {
		t.Error("unknown component string")
	}
}

func TestFormatJoules(t *testing.T) {
	cases := map[float64]string{
		0:       "0J",
		5e-13:   "0.5pJ",
		2.5e-9:  "2.5nJ",
		1e-6:    "1µJ",
		3.2e-3:  "3.2mJ",
		4:       "4J",
		1.5e-10: "150pJ",
	}
	for j, want := range cases {
		if got := FormatJoules(j); got != want {
			t.Errorf("FormatJoules(%g)=%q want %q", j, got, want)
		}
	}
}

func TestMeterString(t *testing.T) {
	var m Meter
	if m.String() != "0J" {
		t.Errorf("empty meter string %q", m.String())
	}
	m.Add(SenseAmp, 1e-12)
	s := m.String()
	if !strings.Contains(s, "sense-amp") || !strings.Contains(s, "1pJ") {
		t.Errorf("String=%q", s)
	}
}

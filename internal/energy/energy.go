// Package energy provides event-based energy accounting for the simulator.
// Every engine (Pinatubo, SIMD, S-DRAM, AC-PIM) charges joules to named
// components; figures and tests read totals and breakdowns.
package energy

import (
	"fmt"
	"sort"
	"strings"
)

// Component identifies where energy was spent.
type Component int

const (
	CellArray   Component = iota // cell activation / read current
	SenseAmp                     // sense amplifier resolve
	WriteDriver                  // cell programming
	LWLDriver                    // wordline decoding + latch switching
	GDL                          // global data lines inside a bank
	IOBus                        // chip pads + DDR channel
	Logic                        // digital add-on logic (global buffers, AC-PIM)
	Buffer                       // global row / I/O buffer latches
	CPUCore                      // processor pipeline
	CacheHier                    // L1/L2/L3 accesses
	DRAMArray                    // DRAM cell array (S-DRAM baseline)
	ECCLogic                     // SECDED check-bit generation + syndrome decode
	numComponents
)

// String names the component.
func (c Component) String() string {
	names := [...]string{
		"cell-array", "sense-amp", "write-driver", "lwl-driver", "gdl",
		"io-bus", "logic", "buffer", "cpu-core", "cache", "dram-array",
		"ecc-logic",
	}
	if c < 0 || int(c) >= len(names) {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return names[c]
}

// Components lists all components in declaration order.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Meter accumulates energy per component. The zero value is ready to use.
type Meter struct {
	joules [numComponents]float64
}

// Add charges j joules to component c. Negative charges and unknown
// components panic: they always indicate a sign or enum error in a model,
// never a meaningful event.
func (m *Meter) Add(c Component, j float64) {
	if j < 0 {
		panic(fmt.Sprintf("energy: negative charge %g J to %v", j, c))
	}
	if c < 0 || c >= numComponents {
		panic(fmt.Sprintf("energy: unknown component %d", int(c)))
	}
	m.joules[c] += j
}

// AddMeter merges another meter's charges into m.
func (m *Meter) AddMeter(o *Meter) {
	for i := range m.joules {
		m.joules[i] += o.joules[i]
	}
}

// Component returns the energy charged to c.
func (m *Meter) Component(c Component) float64 { return m.joules[c] }

// Total returns the energy across all components.
func (m *Meter) Total() float64 {
	t := 0.0
	for _, j := range m.joules {
		t += j
	}
	return t
}

// Reset zeroes the meter.
func (m *Meter) Reset() { m.joules = [numComponents]float64{} }

// Breakdown returns non-zero components sorted by descending energy.
func (m *Meter) Breakdown() []Entry {
	var out []Entry
	for i, j := range m.joules {
		if j > 0 {
			out = append(out, Entry{Component(i), j})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Joules > out[b].Joules })
	return out
}

// Entry is one row of a breakdown.
type Entry struct {
	Component Component
	Joules    float64
}

// String renders the meter as "total (comp: x, comp: y, ...)".
func (m *Meter) String() string {
	var sb strings.Builder
	sb.WriteString(FormatJoules(m.Total()))
	bd := m.Breakdown()
	if len(bd) == 0 {
		return sb.String()
	}
	sb.WriteString(" (")
	for i, e := range bd {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%v: %s", e.Component, FormatJoules(e.Joules))
	}
	sb.WriteString(")")
	return sb.String()
}

// FormatJoules renders an energy with an SI prefix.
func FormatJoules(j float64) string {
	switch {
	case j == 0:
		return "0J"
	case j < 1e-9:
		return fmt.Sprintf("%.3gpJ", j*1e12)
	case j < 1e-6:
		return fmt.Sprintf("%.3gnJ", j*1e9)
	case j < 1e-3:
		return fmt.Sprintf("%.3gµJ", j*1e6)
	case j < 1:
		return fmt.Sprintf("%.3gmJ", j*1e3)
	default:
		return fmt.Sprintf("%.3gJ", j)
	}
}

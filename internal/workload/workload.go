// Package workload defines the common currency of the evaluation: bulk
// bitwise operation requests (OpSpec), engines that price them (SIMD,
// S-DRAM, AC-PIM, Pinatubo-2, Pinatubo-128, Ideal), and traces that combine
// the bitwise phase with an application's non-bitwise work to produce the
// paper's overall speedup/energy numbers (Fig. 12) from its bitwise-only
// numbers (Figs. 10–11).
package workload

import (
	"errors"
	"fmt"
	"math"

	"pinatubo/internal/sense"
)

// Placement describes where a request's operand bit-vectors live relative
// to each other in the PIM memory — the outcome of the PIM-aware mapping.
type Placement int

const (
	// PlaceIntra: all operands in one subarray (the mapping's goal).
	PlaceIntra Placement = iota
	// PlaceInterSub: same bank, different subarrays.
	PlaceInterSub
	// PlaceInterBank: same rank, different banks.
	PlaceInterBank
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case PlaceIntra:
		return "intra"
	case PlaceInterSub:
		return "inter-sub"
	case PlaceInterBank:
		return "inter-bank"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// OpSpec is one bulk bitwise operation request.
type OpSpec struct {
	Op       sense.Op
	Operands int // number of source bit-vectors (1 for INV)
	Bits     int // bit-vector length
	// Placement is where the PIM mapping managed to put the operands (for
	// grouped requests: how the groups relate to each other).
	Placement Placement
	// Groups optionally partitions the operands by subarray, as produced
	// by the PIM-aware scheduler: each entry is the number of operands
	// co-located in one subarray. A PIM engine computes each group with an
	// intra-subarray multi-row op and combines the partial results over
	// the Placement path; data-movement engines (SIMD) ignore the split.
	// nil means all operands share the Placement locality directly.
	Groups []int
	// CacheResident marks requests whose working set a CPU baseline would
	// find in its last-level cache (hot bitmaps reused across queries).
	CacheResident bool
}

// Validate sanity-checks the spec.
func (s OpSpec) Validate() error {
	if s.Bits < 1 {
		return fmt.Errorf("workload: op on %d bits", s.Bits)
	}
	switch s.Op {
	case sense.OpINV, sense.OpRead:
		if s.Operands != 1 {
			return fmt.Errorf("workload: %v with %d operands", s.Op, s.Operands)
		}
	case sense.OpAND, sense.OpOR, sense.OpXOR:
		if s.Operands < 2 {
			return fmt.Errorf("workload: %v with %d operands", s.Op, s.Operands)
		}
	default:
		return fmt.Errorf("workload: unknown op %v", s.Op)
	}
	if s.Groups != nil {
		if s.Op != sense.OpOR {
			return fmt.Errorf("workload: operand groups only apply to OR, not %v", s.Op)
		}
		sum := 0
		for i, g := range s.Groups {
			if g < 1 {
				return fmt.Errorf("workload: group %d has %d operands", i, g)
			}
			sum += g
		}
		if sum != s.Operands {
			return fmt.Errorf("workload: groups sum to %d operands, spec has %d", sum, s.Operands)
		}
		if len(s.Groups) > 1 && s.Placement == PlaceIntra {
			return fmt.Errorf("workload: %d groups cannot all be intra-subarray", len(s.Groups))
		}
	}
	return nil
}

// Cost is a time + energy price.
type Cost struct {
	Seconds float64
	Joules  float64
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.Seconds += o.Seconds
	c.Joules += o.Joules
}

// Scale returns the cost multiplied by k.
func (c Cost) Scale(k float64) Cost {
	return Cost{Seconds: c.Seconds * k, Joules: c.Joules * k}
}

// Engine prices bulk bitwise operation requests.
type Engine interface {
	// Name identifies the engine in figures ("SIMD", "Pinatubo-128", ...).
	Name() string
	// OpCost prices one request end to end (including any operand copies,
	// chained decomposition, or CPU fallback the engine needs).
	OpCost(spec OpSpec) (Cost, error)
	// Parallelism is the number of independent requests the engine can
	// overlap (channel-level concurrency for PIM engines; 1 for the CPU
	// model, whose cost is already aggregate across cores).
	Parallelism() float64
}

// ErrUnsupportedOp signals an engine cannot run the op natively; callers
// may route it to a fallback engine.
var ErrUnsupportedOp = errors.New("workload: operation not supported by this engine")

// Trace is an application's recorded bitwise phase plus its non-bitwise
// remainder as measured on the reference CPU.
type Trace struct {
	Name string
	Ops  []OpSpec
	// Other is the CPU cost of everything that is not a bulk bitwise op
	// (scan loops, queue management, popcounts, ...). It is charged
	// unchanged to every engine — PIM accelerates only the bitwise phase.
	Other Cost
}

// Append adds an op to the trace.
func (t *Trace) Append(spec OpSpec) { t.Ops = append(t.Ops, spec) }

// RunResult is a trace priced on one engine.
type RunResult struct {
	Engine  string
	Bitwise Cost // bitwise phase (after engine parallelism)
	Total   Cost // bitwise + other
}

// Run prices the trace on an engine. Request-level parallelism divides the
// bitwise time (the requests in a trace are overwhelmingly independent —
// see the workload definitions), never the energy.
func (t *Trace) Run(e Engine) (RunResult, error) {
	var bit Cost
	for i, op := range t.Ops {
		if err := op.Validate(); err != nil {
			return RunResult{}, fmt.Errorf("op %d: %w", i, err)
		}
		c, err := e.OpCost(op)
		if err != nil {
			return RunResult{}, fmt.Errorf("op %d (%v/%d/%db): %w", i, op.Op, op.Operands, op.Bits, err)
		}
		bit.Add(c)
	}
	p := e.Parallelism()
	if p < 1 {
		return RunResult{}, fmt.Errorf("workload: engine %s has parallelism %g", e.Name(), p)
	}
	bit.Seconds /= p
	res := RunResult{Engine: e.Name(), Bitwise: bit}
	res.Total = bit
	res.Total.Add(t.Other)
	return res, nil
}

// Speedup returns base's time divided by this result's time for the
// bitwise phase.
func (r RunResult) Speedup(base RunResult) float64 {
	return base.Bitwise.Seconds / r.Bitwise.Seconds
}

// EnergySaving returns base's bitwise energy divided by this result's.
func (r RunResult) EnergySaving(base RunResult) float64 {
	return base.Bitwise.Joules / r.Bitwise.Joules
}

// OverallSpeedup returns base's total time divided by this result's.
func (r RunResult) OverallSpeedup(base RunResult) float64 {
	return base.Total.Seconds / r.Total.Seconds
}

// OverallEnergySaving returns base's total energy divided by this result's.
func (r RunResult) OverallEnergySaving(base RunResult) float64 {
	return base.Total.Joules / r.Total.Joules
}

// Ideal is the paper's "Ideal" legend: bulk bitwise operations are free.
type Ideal struct{}

// Name implements Engine.
func (Ideal) Name() string { return "Ideal" }

// OpCost implements Engine: zero cost.
func (Ideal) OpCost(OpSpec) (Cost, error) { return Cost{}, nil }

// Parallelism implements Engine.
func (Ideal) Parallelism() float64 { return 1 }

// Gmean returns the geometric mean of positive values; it panics on empty
// or non-positive input (a figure-harness bug, not data).
func Gmean(vals []float64) float64 {
	if len(vals) == 0 {
		panic("workload: gmean of nothing")
	}
	s := 0.0
	for _, v := range vals {
		if v <= 0 {
			panic(fmt.Sprintf("workload: gmean of non-positive value %g", v))
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// TraceStats summarises a trace's operation mix — used by the figure
// harness's sanity checks and by cmd/figures' verbose output.
type TraceStats struct {
	Ops          int
	ByOp         map[sense.Op]int
	ByPlacement  map[Placement]int
	OperandRows  int64 // total operand rows across all requests
	OperandBits  int64 // total operand data volume in bits
	WidestOR     int   // largest OR operand count
	GroupedOps   int   // ops carrying a scheduler grouping
	OtherSeconds float64
}

// Stats computes the summary.
func (t *Trace) Stats() TraceStats {
	s := TraceStats{
		ByOp:         make(map[sense.Op]int),
		ByPlacement:  make(map[Placement]int),
		OtherSeconds: t.Other.Seconds,
	}
	for _, op := range t.Ops {
		s.Ops++
		s.ByOp[op.Op]++
		s.ByPlacement[op.Placement]++
		s.OperandRows += int64(op.Operands)
		s.OperandBits += int64(op.Operands) * int64(op.Bits)
		if op.Op == sense.OpOR && op.Operands > s.WidestOR {
			s.WidestOR = op.Operands
		}
		if op.Groups != nil {
			s.GroupedOps++
		}
	}
	return s
}

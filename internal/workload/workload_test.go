package workload

import (
	"errors"
	"math"
	"testing"

	"pinatubo/internal/sense"
)

func TestPlacementString(t *testing.T) {
	if PlaceIntra.String() != "intra" || PlaceInterSub.String() != "inter-sub" ||
		PlaceInterBank.String() != "inter-bank" {
		t.Error("placement names wrong")
	}
	if Placement(9).String() == "" {
		t.Error("unknown placement string empty")
	}
}

func TestOpSpecValidate(t *testing.T) {
	good := []OpSpec{
		{Op: sense.OpOR, Operands: 2, Bits: 64},
		{Op: sense.OpOR, Operands: 128, Bits: 1 << 19},
		{Op: sense.OpAND, Operands: 2, Bits: 1},
		{Op: sense.OpXOR, Operands: 5, Bits: 8},
		{Op: sense.OpINV, Operands: 1, Bits: 8},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", s, err)
		}
	}
	bad := []OpSpec{
		{Op: sense.OpOR, Operands: 1, Bits: 64},
		{Op: sense.OpINV, Operands: 2, Bits: 64},
		{Op: sense.OpOR, Operands: 2, Bits: 0},
		{Op: sense.Op(9), Operands: 2, Bits: 64},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v accepted", s)
		}
	}
}

func TestCostAddScale(t *testing.T) {
	c := Cost{Seconds: 1, Joules: 2}
	c.Add(Cost{Seconds: 3, Joules: 4})
	if c.Seconds != 4 || c.Joules != 6 {
		t.Errorf("Add wrong: %+v", c)
	}
	s := c.Scale(0.5)
	if s.Seconds != 2 || s.Joules != 3 {
		t.Errorf("Scale wrong: %+v", s)
	}
}

// fakeEngine charges a constant per op.
type fakeEngine struct {
	name string
	per  Cost
	par  float64
	err  error
}

func (f fakeEngine) Name() string                { return f.name }
func (f fakeEngine) OpCost(OpSpec) (Cost, error) { return f.per, f.err }
func (f fakeEngine) Parallelism() float64        { return f.par }

func TestTraceRun(t *testing.T) {
	tr := &Trace{Name: "test", Other: Cost{Seconds: 10, Joules: 100}}
	for i := 0; i < 4; i++ {
		tr.Append(OpSpec{Op: sense.OpOR, Operands: 2, Bits: 64})
	}
	e := fakeEngine{name: "fake", per: Cost{Seconds: 1, Joules: 2}, par: 2}
	res, err := tr.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	// 4 ops × 1s / parallelism 2 = 2s; energy never divided: 8 J.
	if res.Bitwise.Seconds != 2 || res.Bitwise.Joules != 8 {
		t.Errorf("bitwise %+v", res.Bitwise)
	}
	if res.Total.Seconds != 12 || res.Total.Joules != 108 {
		t.Errorf("total %+v", res.Total)
	}
}

func TestTraceRunErrors(t *testing.T) {
	tr := &Trace{}
	tr.Append(OpSpec{Op: sense.OpOR, Operands: 1, Bits: 64}) // invalid
	if _, err := tr.Run(fakeEngine{par: 1}); err == nil {
		t.Error("invalid op accepted")
	}
	tr2 := &Trace{}
	tr2.Append(OpSpec{Op: sense.OpOR, Operands: 2, Bits: 64})
	if _, err := tr2.Run(fakeEngine{par: 1, err: errors.New("boom")}); err == nil {
		t.Error("engine error swallowed")
	}
	if _, err := tr2.Run(fakeEngine{par: 0}); err == nil {
		t.Error("zero parallelism accepted")
	}
}

func TestSpeedupAndSavings(t *testing.T) {
	base := RunResult{Bitwise: Cost{Seconds: 100, Joules: 1000}, Total: Cost{Seconds: 110, Joules: 1100}}
	fast := RunResult{Bitwise: Cost{Seconds: 1, Joules: 10}, Total: Cost{Seconds: 11, Joules: 110}}
	if got := fast.Speedup(base); got != 100 {
		t.Errorf("Speedup=%g", got)
	}
	if got := fast.EnergySaving(base); got != 100 {
		t.Errorf("EnergySaving=%g", got)
	}
	if got := fast.OverallSpeedup(base); got != 10 {
		t.Errorf("OverallSpeedup=%g", got)
	}
	if got := fast.OverallEnergySaving(base); got != 10 {
		t.Errorf("OverallEnergySaving=%g", got)
	}
}

func TestIdealEngine(t *testing.T) {
	var e Ideal
	if e.Name() != "Ideal" || e.Parallelism() != 1 {
		t.Error("Ideal metadata wrong")
	}
	c, err := e.OpCost(OpSpec{Op: sense.OpOR, Operands: 2, Bits: 64})
	if err != nil || c.Seconds != 0 || c.Joules != 0 {
		t.Error("Ideal should be free")
	}
	// An ideal run equals the trace's Other cost.
	tr := &Trace{Other: Cost{Seconds: 7, Joules: 9}}
	tr.Append(OpSpec{Op: sense.OpOR, Operands: 2, Bits: 64})
	res, err := tr.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != tr.Other {
		t.Errorf("ideal total %+v want %+v", res.Total, tr.Other)
	}
}

func TestGmean(t *testing.T) {
	if got := Gmean([]float64{4, 9}); math.Abs(got-6) > 1e-12 {
		t.Errorf("Gmean=%g want 6", got)
	}
	if got := Gmean([]float64{5}); got != 5 {
		t.Errorf("Gmean single=%g", got)
	}
	for _, bad := range [][]float64{nil, {1, 0}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gmean(%v) did not panic", bad)
				}
			}()
			Gmean(bad)
		}()
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{Other: Cost{Seconds: 3}}
	tr.Append(OpSpec{Op: sense.OpOR, Operands: 64, Bits: 1 << 14, Placement: PlaceIntra})
	tr.Append(OpSpec{Op: sense.OpOR, Operands: 8, Bits: 1 << 14, Placement: PlaceInterSub, Groups: []int{4, 4}})
	tr.Append(OpSpec{Op: sense.OpAND, Operands: 2, Bits: 1 << 10})
	tr.Append(OpSpec{Op: sense.OpINV, Operands: 1, Bits: 1 << 10})
	s := tr.Stats()
	if s.Ops != 4 || s.ByOp[sense.OpOR] != 2 || s.ByOp[sense.OpAND] != 1 {
		t.Errorf("op counts wrong: %+v", s)
	}
	if s.WidestOR != 64 {
		t.Errorf("WidestOR=%d", s.WidestOR)
	}
	if s.GroupedOps != 1 {
		t.Errorf("GroupedOps=%d", s.GroupedOps)
	}
	if s.OperandRows != 64+8+2+1 {
		t.Errorf("OperandRows=%d", s.OperandRows)
	}
	wantBits := int64(64+8)<<14 + int64(2+1)<<10
	if s.OperandBits != wantBits {
		t.Errorf("OperandBits=%d want %d", s.OperandBits, wantBits)
	}
	if s.OtherSeconds != 3 {
		t.Errorf("OtherSeconds=%g", s.OtherSeconds)
	}
	if s.ByPlacement[PlaceInterSub] != 1 {
		t.Errorf("placement counts wrong: %v", s.ByPlacement)
	}
}

func TestOpSpecGroupValidation(t *testing.T) {
	good := OpSpec{Op: sense.OpOR, Operands: 5, Bits: 64,
		Placement: PlaceInterSub, Groups: []int{3, 2}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid grouped spec rejected: %v", err)
	}
	cases := []OpSpec{
		// Groups on a non-OR op.
		{Op: sense.OpAND, Operands: 2, Bits: 64, Groups: []int{1, 1}, Placement: PlaceInterSub},
		// Group sum mismatch.
		{Op: sense.OpOR, Operands: 5, Bits: 64, Groups: []int{3, 3}, Placement: PlaceInterSub},
		// Zero-sized group.
		{Op: sense.OpOR, Operands: 3, Bits: 64, Groups: []int{3, 0}, Placement: PlaceInterSub},
		// Multiple groups claiming intra placement.
		{Op: sense.OpOR, Operands: 4, Bits: 64, Groups: []int{2, 2}, Placement: PlaceIntra},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
	// A single group with intra placement is fine.
	one := OpSpec{Op: sense.OpOR, Operands: 4, Bits: 64, Groups: []int{4}, Placement: PlaceIntra}
	if err := one.Validate(); err != nil {
		t.Errorf("single intra group rejected: %v", err)
	}
}

package lint

// This file is the dataflow half of the engine: a generic forward worklist
// solver over a CFG. Analyzers supply the lattice (join, equality) and the
// transfer function; the solver iterates to fixpoint, which is what makes
// loop back-edges (a lock re-taken at the top of a retry loop, a frozen
// program mutated on the second trip around) converge instead of being
// missed by a single syntactic pass.

// Solve runs a forward worklist dataflow analysis over g and returns the
// fact holding at each block's entry. boundary is the fact at the entry
// block; every other block starts at init (the lattice bottom). transfer
// folds one block's Nodes over its entry fact and returns the exit fact;
// it must not mutate its input (return a fresh value). join merges two
// facts at a control-flow merge point; equal detects convergence.
//
// The worklist is seeded in block order and re-queues a block whenever a
// predecessor's exit fact changes its entry fact, so the fixpoint is
// reached regardless of loop shape. With a finite-height lattice (every
// analyzer here uses finite sets over a function's identifiers) the loop
// terminates.
func Solve[S any](g *CFG, boundary, init S,
	transfer func(*Block, S) S,
	join func(S, S) S,
	equal func(S, S) bool) map[*Block]S {

	in := make(map[*Block]S, len(g.Blocks))
	out := make(map[*Block]S, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = init
		out[b] = transfer(b, init)
	}
	in[g.Entry] = boundary
	out[g.Entry] = transfer(g.Entry, boundary)

	work := make([]*Block, 0, len(g.Blocks))
	queued := make([]bool, len(g.Blocks))
	push := func(b *Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		entry := in[b]
		if b == g.Entry {
			entry = boundary
		}
		for _, p := range b.Preds {
			entry = join(entry, out[p])
		}
		exit := transfer(b, entry)
		in[b] = entry
		if !equal(exit, out[b]) {
			out[b] = exit
			for _, s := range b.Succs {
				push(s)
			}
		}
	}
	return in
}

// Package linttest drives lint analyzers over fixture packages, mirroring
// golang.org/x/tools/go/analysis/analysistest: fixture files mark expected
// findings with trailing
//
//	// want "regexp"    (or a backquoted regexp)
//
// comments, and the harness fails the test on any unmatched expectation or
// unexpected diagnostic. Fixture packages live under testdata/src/<name>
// and must type-check (they may import the standard library and any package
// of this module).
package linttest

import (
	"go/parser"
	"go/token"
	"regexp"
	"strconv"
	"testing"

	"pinatubo/internal/lint"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*$")

// expectation is one `// want "re"` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads the fixture package at dir, applies the analyzer, and compares
// diagnostics against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	expects := parseWants(t, pkg)
	diags, err := lint.Run(a, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		matched := false
		for i := range expects {
			e := &expects[i]
			if e.met || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// parseWants re-parses each fixture file for trailing want comments.
func parseWants(t *testing.T, pkg *lint.Package) []expectation {
	t.Helper()
	var out []expectation
	fset := token.NewFileSet()
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		parsed, err := parser.ParseFile(fset, filename, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("re-parsing %s: %v", filename, err)
		}
		for _, cg := range parsed.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pattern, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", filename, m[1], err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", filename, pattern, err)
				}
				out = append(out, expectation{
					file: filename,
					line: fset.Position(c.Pos()).Line,
					re:   re,
				})
			}
		}
	}
	return out
}

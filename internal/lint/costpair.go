package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CostPair guards the invariant behind "trace segments sum exactly to
// Cost.Seconds": any function that emits channel-schedulable trace segments
// (appends a TraceSegment, or calls the addOpaque helper) must also touch
// the paired Cost accounting in the same body — otherwise the command trace
// replayed through chansim diverges from the cost the operation reported,
// and the planning API's saturation numbers quietly stop being real.
//
// Detection is type-name driven: an append whose element type is named
// TraceSegment, paired with a selector of a field or value named Cost (or a
// call to Cost.Add). A helper whose whole job is the trace side of the pair
// documents that with a pinlint:ignore directive at its declaration.
var CostPair = &Analyzer{
	Name: "costpair",
	Doc: "functions emitting TraceSegments must touch Cost accounting in the same body " +
		"(trace segments must sum to Cost.Seconds)",
	Run: runCostPair,
}

func runCostPair(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			emit, emitPos := emitsTrace(pass, fd.Body)
			if !emit {
				continue
			}
			if touchesCost(pass, fd.Body) {
				continue
			}
			pass.Reportf(emitPos,
				"%s emits TraceSegments without touching Cost accounting; pair the trace append with Cost.Add",
				fd.Name.Name)
		}
	}
	return nil
}

// emitsTrace reports whether the body appends TraceSegment values or calls
// the trace-only helper addOpaque.
func emitsTrace(pass *Pass, body *ast.BlockStmt) (bool, token.Pos) {
	var found ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin && fun.Name == "append" {
				if len(call.Args) > 0 && sliceOfTraceSegments(pass, call.Args[0]) {
					found = n
					return false
				}
			}
			if fun.Name == "addOpaque" {
				found = n
				return false
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "addOpaque" {
				found = n
				return false
			}
		}
		return true
	})
	if found == nil {
		return false, token.NoPos
	}
	return true, found.Pos()
}

func sliceOfTraceSegments(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := types.Unalias(slice.Elem()).(*types.Named)
	return ok && named.Obj().Name() == "TraceSegment"
}

// touchesCost reports whether the body references cost accounting: a
// selector named Cost (field read, method value, or Cost.Add receiver).
func touchesCost(pass *Pass, body *ast.BlockStmt) bool {
	touched := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "Cost" {
			touched = true
			return false
		}
		return true
	})
	return touched
}

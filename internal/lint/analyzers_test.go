package lint_test

import (
	"testing"

	"pinatubo/internal/lint"
	"pinatubo/internal/lint/linttest"
)

// Each fixture package holds at least one positive (a line carrying a
// `// want "re"` expectation) and at least one negative (clean code the
// analyzer must stay silent on); linttest fails on both unmet expectations
// and unexpected diagnostics, so the negatives are genuinely asserted.

func TestDetRand(t *testing.T) {
	linttest.Run(t, lint.DetRand, "testdata/src/detrand")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/src/maporder")
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, lint.FloatEq, "testdata/src/floateq")
}

func TestWrapErr(t *testing.T) {
	linttest.Run(t, lint.WrapErr, "testdata/src/wraperr")
}

func TestEnumSwitch(t *testing.T) {
	linttest.Run(t, lint.EnumSwitch, "testdata/src/enumswitch")
}

func TestCostPair(t *testing.T) {
	linttest.Run(t, lint.CostPair, "testdata/src/costpair")
}

func TestPanicFree(t *testing.T) {
	linttest.Run(t, lint.PanicFree, "testdata/src/panicfree")
}

func TestTimeMix(t *testing.T) {
	linttest.Run(t, lint.TimeMix, "testdata/src/timemix")
}

func TestAPILeak(t *testing.T) {
	linttest.Run(t, lint.APILeak, "testdata/src/apileak")
}

func TestIgnoreReason(t *testing.T) {
	linttest.Run(t, lint.IgnoreReason, "testdata/src/ignorereason")
}

func TestLoopOwner(t *testing.T) {
	linttest.Run(t, lint.LoopOwner, "testdata/src/loopowner")
}

func TestFrozenProg(t *testing.T) {
	linttest.Run(t, lint.FrozenProg, "testdata/src/frozenprog")
}

func TestAliasWrite(t *testing.T) {
	linttest.Run(t, lint.AliasWrite, "testdata/src/aliaswrite")
}

func TestJoinAll(t *testing.T) {
	linttest.Run(t, lint.JoinAll, "testdata/src/joinall")
}

func TestLockPair(t *testing.T) {
	linttest.Run(t, lint.LockPair, "testdata/src/lockpair")
}

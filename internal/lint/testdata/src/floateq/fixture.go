// Package floateqtest exercises the floateq analyzer: exact comparison of
// computed floats is a positive; the constant-0 sentinel, epsilon
// comparison, and integer equality are negatives.
package floateqtest

func bad(a, b float64) bool {
	return a == b // want `exact float comparison a == b`
}

func badNeq(lat float32) bool {
	return lat != 1.5 // want `exact float comparison lat != 1\.5`
}

func badSum(seconds []float64, total float64) bool {
	var sum float64
	for _, s := range seconds {
		sum += s
	}
	return sum == total // want `exact float comparison sum == total`
}

func goodZero(rate float64) bool {
	return rate == 0 // assigned sentinel, never computed: allowed
}

func goodZeroLeft(rate float64) bool {
	return 0.0 != rate // constant zero on either side: allowed
}

func goodEpsilon(a, b float64) bool {
	const eps = 1e-12
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

func goodInt(a, b int) bool {
	return a == b
}

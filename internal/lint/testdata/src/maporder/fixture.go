// Package mapordertest exercises the maporder analyzer: unsorted appends,
// direct output and float accumulation inside map-range loops are
// positives; the collect-then-sort idiom and order-independent map writes
// are negatives.
package mapordertest

import (
	"fmt"
	"sort"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside a map-range loop`
	}
	return keys
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside a map-range loop`
	}
}

func badFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum`
	}
	return sum
}

func goodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSortSlice(m map[uint64]int) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func goodMapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v // map write: order-independent
	}
	return out
}

func goodIntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer addition is associative
	}
	return total
}

func goodSliceRange(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x // slice iteration is ordered
	}
	return sum
}

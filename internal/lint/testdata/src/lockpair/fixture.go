// Package lockpairtest exercises the lockpair analyzer: locks leaked on an
// early-return path and write locks retakeable before release are
// positives; straightline pairs, deferred unlocks, RW read pairs and
// independent mutexes are negatives.
package lockpairtest

import "sync"

func badLeakOnBranch(mu *sync.Mutex, ok bool) {
	mu.Lock() // want `locked here but not released on every path to return`
	if ok {
		return
	}
	mu.Unlock()
}

func badLeakAlways(mu *sync.Mutex, xs []int) int {
	mu.Lock() // want `locked here but not released on every path to return`
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func badRelock(mu *sync.Mutex, hot bool) {
	mu.Lock() // want `locked again before this Lock is released`
	if hot {
		mu.Lock()
		mu.Unlock()
	}
	mu.Unlock()
}

func badRWLeak(mu *sync.RWMutex, ok bool) int {
	mu.RLock() // want `locked here but not released on every path to return`
	if ok {
		return 1
	}
	mu.RUnlock()
	return 0
}

func goodStraightline(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

func goodDefer(mu *sync.Mutex, ok bool) int {
	mu.Lock()
	defer mu.Unlock()
	if ok {
		return 1
	}
	return 2
}

func goodDeferredLit(mu *sync.Mutex, ok bool) int {
	mu.Lock()
	defer func() {
		mu.Unlock()
	}()
	if ok {
		return 1
	}
	return 2
}

func goodBothBranches(mu *sync.Mutex, ok bool) {
	mu.Lock()
	if ok {
		mu.Unlock()
		return
	}
	mu.Unlock()
}

func goodLoopPair(mu *sync.Mutex, xs []int) {
	for range xs {
		mu.Lock()
		mu.Unlock()
	}
}

func goodTwoMutexes(a, b *sync.Mutex) {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

func goodRW(mu *sync.RWMutex) int {
	mu.RLock()
	defer mu.RUnlock()
	return 0
}

func badSelectBranchLeak(mu *sync.Mutex, ch chan int) int {
	mu.Lock() // want `locked here but not released on every path to return`
	select {
	case v := <-ch:
		mu.Unlock()
		return v
	case <-ch:
		return 0 // leak: no unlock on this path
	}
}

func goodSelectBothBranches(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	select {
	case v := <-ch:
		mu.Unlock()
		return v
	case <-ch:
		mu.Unlock()
		return 0
	}
}

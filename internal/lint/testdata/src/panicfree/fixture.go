// Package panicfreetest exercises the panicfree analyzer: an undocumented
// panic in a library function is a positive; a "Panics ..." doc sentence,
// an acknowledged directive, and a shadowed panic identifier are negatives.
// The fixture's import path sits under internal/, so the analyzer's
// library-path gate admits it.
package panicfreetest

import "fmt"

func bad(n int) int {
	if n < 0 {
		panic("negative") // want `panic in library code \(bad\)`
	}
	return n
}

func badFormatted(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // want `panic in library code \(badFormatted\)`
	}
	return n
}

// goodDocumented clamps its input. Panics if n is negative — callers must
// validate, exactly like the stdlib's make with a negative length.
func goodDocumented(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

func goodAcknowledged(n int) int {
	if n < 0 {
		//pinlint:ignore panicfree unreachable: every caller validates n at the API boundary
		panic("negative")
	}
	return n
}

func goodShadowed(n int) int {
	panic := func(string) {}
	panic("not the builtin")
	return n
}

func goodErroring(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative %d", n)
	}
	return n, nil
}

// Package loopownertest exercises the loopowner analyzer: accesses to
// //pinlint:owned fields from goroutines, goroutine-reachable functions
// and functions outside the owner's call tree are positives; the owner's
// own call tree and constructors are negatives.
package loopownertest

type loop struct {
	//pinlint:owned Run
	state int
	gauge int //pinlint:owned Run
	other int // unannotated: never checked
}

// newLoop is a constructor (its result mentions *loop), so initializing
// the owned fields before the loop starts is fine.
func newLoop() *loop {
	l := &loop{}
	l.state = 1
	l.gauge = 2
	return l
}

// Run is the owner: direct access and access through callees are fine.
func (l *loop) Run() {
	l.state++
	l.step()
	go func() {
		l.gauge = 0 // want `accessed inside a go statement`
	}()
}

// step is in Run's call tree.
func (l *loop) step() {
	l.state += l.other
}

// Peek is neither the owner, reachable from it, nor a constructor.
func (l *loop) Peek() int {
	return l.state // want `outside the owner's call tree`
}

func spawnHelper(l *loop) {
	done := make(chan struct{})
	go func() {
		leak(l)
		close(done)
	}()
	<-done
}

// leak is reachable from a go statement, so even a read races the owner.
func leak(l *loop) {
	_ = l.gauge // want `reachable from a go statement`
}

// Package wraperrtest exercises the wraperr analyzer: sentinels formatted
// with %v/%s are positives; %w wraps, non-sentinel arguments and plain
// formats are negatives.
package wraperrtest

import (
	"errors"
	"fmt"
)

// ErrExhausted is a package sentinel callers match with errors.Is.
var ErrExhausted = errors.New("exhausted")

// ErrWorn is a second sentinel.
var ErrWorn = errors.New("worn out")

func bad(n int) error {
	return fmt.Errorf("op %d failed: %v", n, ErrExhausted) // want `sentinel ErrExhausted formatted with %v`
}

func badString(n int) error {
	return fmt.Errorf("row %d: %s", n, ErrWorn) // want `sentinel ErrWorn formatted with %s`
}

func badSecond(n int) error {
	return fmt.Errorf("op %d: %w after %v", n, ErrExhausted, ErrWorn) // want `sentinel ErrWorn formatted with %v`
}

func good(n int) error {
	return fmt.Errorf("op %d failed: %w", n, ErrExhausted)
}

func goodDouble(n int) error {
	return fmt.Errorf("op %d: %w (%w)", n, ErrExhausted, ErrWorn)
}

func goodPlain(n int) error {
	return fmt.Errorf("op %d failed", n)
}

func goodLocal(err error) error {
	// A non-sentinel error variable is outside this analyzer's contract
	// (go vet's printf check already encourages %w for those).
	return fmt.Errorf("wrapped: %v", err)
}

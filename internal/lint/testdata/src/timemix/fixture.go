// Package timemixtest exercises the timemix analyzer: bare conversions
// between float time and time.Duration are positives; conversions that
// spell the unit with a time constant — in the operand or anywhere in the
// same arithmetic chain — are negatives, as is integer/Duration traffic.
package timemixtest

import "time"

func badToDuration(seconds float64) time.Duration {
	return time.Duration(seconds) // want `time\.Duration\(seconds\) converts a float with no time-unit constant`
}

func badToDurationExpr(a, b float64) time.Duration {
	return time.Duration(a*b + 1) // want `converts a float with no time-unit constant`
}

func badFromDuration(d time.Duration) float64 {
	return float64(d) // want `float64\(d\) converts time\.Duration with no time-unit constant`
}

func badFromDurationSum(ds []time.Duration) float64 {
	var total float64
	for _, d := range ds {
		total += float64(d) // want `converts time\.Duration with no time-unit constant`
	}
	return total
}

func badCompare(d time.Duration, seconds float64) bool {
	return float64(d) > seconds // want `converts time\.Duration with no time-unit constant`
}

func goodToDuration(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}

func goodToDurationMillis(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

func goodFromDuration(d time.Duration) float64 {
	return float64(d) / float64(time.Second)
}

func goodFromDurationParen(d time.Duration, scale float64) float64 {
	return (float64(d) / float64(time.Second)) * scale
}

func goodNamedUnit(d time.Duration) float64 {
	const tick = 10 * time.Millisecond
	return float64(d) / float64(tick)
}

func goodIntNanos(ns int64) time.Duration {
	return time.Duration(ns) // integer nanosecond counts are Duration's own unit
}

func goodDurationMath(d time.Duration) time.Duration {
	return 2 * d
}

// Package joinalltest exercises the joinall analyzer: goroutines with no
// channel, select, close or WaitGroup evidence anywhere in their call
// closure are positives; inline joins and joins hidden behind a helper
// call are negatives.
package joinalltest

import (
	"sync"
	"time"
)

var counter int

func badFireAndForget() {
	go func() { // want `no visible join point`
		counter++
	}()
}

func badNamedNoJoin() {
	go spin() // want `no visible join point`
}

func spin() {
	for i := 0; i < 10; i++ {
		counter += i
	}
}

func badExternalCallee() {
	go time.Sleep(time.Millisecond) // want `no visible join point`
}

func goodWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		counter++
	}()
	wg.Wait()
}

func goodChannelSend() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- counter
	}()
	return out
}

func goodClose() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		counter++
		close(done)
	}()
	return done
}

func goodSelect(stop <-chan struct{}) {
	go func() {
		select {
		case <-stop:
		default:
		}
	}()
}

func goodRangeChannel(in <-chan int) {
	go func() {
		for v := range in {
			counter += v
		}
	}()
}

// goodHelperJoin joins through a helper: the spawned body has no channel
// op of its own, but the callgraph reaches one in pump.
func goodHelperJoin(in <-chan int) {
	go func() {
		pump(in)
	}()
}

func pump(in <-chan int) {
	counter += <-in
}

// goodNamedHelper spawns a named function whose body blocks on a receive.
func goodNamedHelper(in <-chan int) {
	go pump(in)
}

// Package frozenprogtest exercises the frozenprog analyzer with a local
// stand-in for the cmdstream program cache (a named type Cache with
// Store/Lookup methods, the shape the analyzer matches): mutating a
// stored or looked-up entry — field writes, element stores, copy or
// append into its backing arrays, pointer-receiver method calls — is a
// positive; mutating before Store, or building a fresh value that copies
// fields out of a cached entry, is a negative.
package frozenprogtest

type Cache struct{ m map[string]any }

func NewCache() *Cache { return &Cache{m: make(map[string]any)} }

func (c *Cache) Store(key []byte, e any) { c.m[string(key)] = e }

func (c *Cache) Lookup(key []byte) (any, bool) {
	e, ok := c.m[string(key)]
	return e, ok
}

type Program struct{ Instrs []int }

func (p *Program) Emit(x int) { p.Instrs = append(p.Instrs, x) }

type entry struct {
	prog  *Program
	words []int
}

func badFieldAfterStore(c *Cache, p *Program) {
	c.Store([]byte("k"), &entry{prog: p})
	p.Instrs = nil // want `mutated after insertion`
}

func badMethodAfterStore(c *Cache, p *Program) {
	c.Store([]byte("k"), p)
	p.Emit(3) // want `pointer-receiver method Emit may mutate`
}

func badElemAfterLookup(c *Cache) {
	e, ok := c.Lookup([]byte("k"))
	if !ok {
		return
	}
	ent := e.(*entry)
	ent.words[0] = 1 // want `mutated after insertion`
}

func badAppendAfterLookup(c *Cache) []int {
	e, _ := c.Lookup([]byte("k"))
	ent := e.(*entry)
	return append(ent.words, 1) // want `append may write into the backing array`
}

func badCopyAfterLookup(c *Cache, src []int) {
	e, _ := c.Lookup([]byte("k"))
	ent := e.(*entry)
	copy(ent.words, src) // want `copy writes into the backing array`
}

// badLoopCarried only mutates an entry frozen on the previous loop
// iteration — the dataflow back edge has to carry the fact around.
func badLoopCarried(c *Cache, ps []*Program) {
	var last *Program
	for _, p := range ps {
		if last != nil {
			last.Emit(9) // want `pointer-receiver method Emit may mutate`
		}
		c.Store([]byte("k"), p)
		last = p
	}
}

func goodMutateBeforeStore(c *Cache, p *Program) {
	p.Emit(1)
	c.Store([]byte("k"), p)
}

// goodCopyOut builds a fresh value from a cached entry's fields — the
// sanctioned copy-on-write pattern; the fresh value is freely mutable.
func goodCopyOut(c *Cache) *entry {
	e, ok := c.Lookup([]byte("k"))
	if !ok {
		return nil
	}
	ent := e.(*entry)
	out := &entry{prog: ent.prog}
	out.words = make([]int, len(ent.words))
	copy(out.words, ent.words)
	return out
}

// goodRebind reuses the variable for something unfrozen.
func goodRebind(c *Cache, p *Program) {
	c.Store([]byte("k"), p)
	p = &Program{}
	p.Emit(1)
}

// Package costpairtest exercises the costpair analyzer: emitting trace
// segments without touching Cost accounting is a positive; the paired form
// and the directive-acknowledged trace-only helper are negatives.
package costpairtest

// TraceSegment mirrors pimrt.TraceSegment for the analyzer's type-name
// driven detection.
type TraceSegment struct {
	Seconds float64
}

// Cost mirrors workload.Cost.
type Cost struct {
	Seconds float64
	Joules  float64
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.Seconds += o.Seconds
	c.Joules += o.Joules
}

type result struct {
	Cost  Cost
	Trace []TraceSegment
}

func bad(res *result, sec float64) {
	res.Trace = append(res.Trace, TraceSegment{Seconds: sec}) // want `bad emits TraceSegments without touching Cost`
}

func badCaller(res *result, sec float64) {
	res.addOpaque(sec) // want `badCaller emits TraceSegments without touching Cost`
}

func good(res *result, sec float64) {
	res.Cost.Add(Cost{Seconds: sec})
	res.Trace = append(res.Trace, TraceSegment{Seconds: sec})
}

func goodCaller(res *result, sec float64) {
	res.Cost.Add(Cost{Seconds: sec})
	res.addOpaque(sec)
}

// addOpaque is the trace-only half of the pair; its callers own the cost
// side, which the directive records.
//
//pinlint:ignore costpair trace-only helper, callers pair with Cost.Add
func (r *result) addOpaque(sec float64) {
	if sec <= 0 {
		return
	}
	r.Trace = append(r.Trace, TraceSegment{Seconds: sec})
}

func goodUnrelatedAppend(xs []float64, x float64) []float64 {
	return append(xs, x) // not a TraceSegment slice
}

// Package aliaswritetest exercises the aliaswrite analyzer with a local
// stand-in for the shard memory API: raw row writes (copy into a PeekRow
// slice, element stores through one) must be dominated by an Aliased(...)
// check or a write-set map lookup. Guards on a non-dominating branch or
// after the write don't count.
package aliaswritetest

type mem struct {
	rows    map[uint64][]uint64
	aliased map[uint64]bool
}

func (m *mem) PeekRow(addr uint64) []uint64 { return m.rows[addr] }

func (m *mem) Aliased(addr uint64) bool { return m.aliased[addr] }

func (m *mem) AliasRow(addr uint64, src []uint64) {
	m.rows[addr] = src
	m.aliased[addr] = true
}

func goodAliasedGuard(dst, src *mem, addr uint64) {
	if dst.Aliased(addr) {
		return
	}
	copy(dst.PeekRow(addr), src.PeekRow(addr))
}

func goodWriteSetGuard(dst, src *mem, addr uint64, written map[uint64]bool) {
	if !written[addr] {
		dst.AliasRow(addr, src.PeekRow(addr))
		return
	}
	copy(dst.PeekRow(addr), src.PeekRow(addr))
}

func badUnguardedCopy(dst, src *mem, addr uint64) {
	dst.AliasRow(addr+1, src.PeekRow(addr+1))
	copy(dst.PeekRow(addr), src.PeekRow(addr)) // want `not dominated by an Aliased`
}

func badUnguardedElem(dst, src *mem, addr uint64) {
	dst.AliasRow(addr+1, src.PeekRow(addr+1))
	dst.PeekRow(addr)[0] = 1 // want `not dominated by an Aliased`
}

// badWrongBranch checks the classification on one branch only — the write
// is reachable without passing the guard, so domination fails.
func badWrongBranch(dst, src *mem, addr uint64, flag bool) {
	if flag {
		if dst.Aliased(addr) {
			return
		}
	}
	copy(dst.PeekRow(addr), src.PeekRow(addr)) // want `not dominated by an Aliased`
}

// badGuardAfter consults the classification too late.
func badGuardAfter(dst, src *mem, addr uint64) {
	copy(dst.PeekRow(addr), src.PeekRow(addr)) // want `not dominated by an Aliased`
	if dst.Aliased(addr) {
		return
	}
}

// goodOutOfScope never participates in the aliasing protocol, so raw row
// copies are not this analyzer's business.
func goodOutOfScope(dst, src *mem, addr uint64) {
	copy(dst.PeekRow(addr), src.PeekRow(addr))
}

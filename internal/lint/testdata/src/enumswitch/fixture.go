// Package enumswitchtest exercises the enumswitch analyzer: a defaultless
// switch missing a declared constant is a positive; defaulted, exhaustive,
// and non-enum switches are negatives.
package enumswitchtest

import "fmt"

// Color is a module-local enum with three values.
type Color int

const (
	Red Color = iota
	Green
	Blue
)

func bad(c Color) string {
	switch c { // want `switch over Color has no default and misses Blue`
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return ""
}

func goodDefault(c Color) string {
	switch c {
	case Red:
		return "red"
	default:
		return fmt.Sprintf("Color(%d)", int(c))
	}
}

func goodExhaustive(c Color) string {
	switch c {
	case Red:
		return "r"
	case Green:
		return "g"
	case Blue:
		return "b"
	}
	return ""
}

func goodMultiValueCase(c Color) bool {
	switch c {
	case Red, Green, Blue:
		return true
	}
	return false
}

// lone has a single constant, so it is not an enum.
type lone int

const only lone = 0

func goodNotEnum(x lone) bool {
	switch x {
	case only:
		return true
	}
	return false
}

func goodNonConstCase(c Color, dynamic Color) bool {
	// Coverage is unprovable with a non-constant case; the analyzer must
	// stay silent rather than guess.
	switch c {
	case dynamic:
		return true
	}
	return false
}

package selleak

import "sync"

// leakInSelect: lock held; one select branch unlocks, the other returns
// while still holding the lock. Should be flagged as a leak.
func leakInSelect(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	select {
	case v := <-ch:
		mu.Unlock()
		return v
	case <-ch:
		return 0 // leak: no unlock on this path
	}
}

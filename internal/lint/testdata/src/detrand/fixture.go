// Package detrandtest exercises the detrand analyzer: global math/rand and
// wall-clock reads are positives; seeded generators and monotonic-free time
// construction are negatives.
package detrandtest

import (
	"math/rand"
	"time"
)

func bad() int {
	n := rand.Intn(10)                 // want `global math/rand\.Intn draws from the shared, unseeded source`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand\.Shuffle`
	_ = time.Now()                     // want `time\.Now reads the wall clock`
	return n
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func good(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // seeded: allowed
	return r.Intn(10)                   // method on *rand.Rand: allowed
}

func goodTime() time.Time {
	return time.Unix(0, 0) // fixed instant: allowed
}

func suppressed() int {
	return rand.Intn(3) //pinlint:ignore detrand fixture demonstrates the directive
}

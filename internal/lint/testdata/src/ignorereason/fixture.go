// Package ignorereasontest exercises the ignorereason analyzer. The
// positives embed their `// want` expectations inside the directive
// comment itself: the nested `//` both ends the directive's content (so
// the reason really is empty) and carries the expectation the harness
// matches. The suppression-proof property is asserted the same way — a
// reasonless directive naming ignorereason (or all) is still reported.
package ignorereasontest

func covered(a, b float64) bool {
	//pinlint:ignore floateq tie-break on identical sampled times is deliberate
	return a == b
}

func noReason(a, b float64) bool {
	//pinlint:ignore floateq // want `has no reason`
	return a == b
}

func selfSuppressing(a, b float64) bool {
	//pinlint:ignore ignorereason // want `has no reason`
	return a == b
}

func allSuppressing(a, b float64) bool {
	//pinlint:ignore all // want `has no reason`
	return a == b
}

// prose that merely mentions a pinlint:ignore directive is not one.
func mentioned() {}

// Package apileaktest exercises the apileak analyzer: exported symbols
// whose types mention internal/ named types are positives; unexported
// symbols, exported symbols built from public and stdlib types, and
// acknowledged directives are negatives. The fixture sits under
// testdata/, which the analyzer's internal-path gate admits as a
// stand-in for a publicly importable package.
package apileaktest

import "pinatubo/internal/memarch"

func BadParam(g memarch.Geometry) {} // want `exported function BadParam mentions internal type pinatubo/internal/memarch\.Geometry`

func BadResult() *memarch.Memory { return nil } // want `exported function BadResult mentions internal type pinatubo/internal/memarch\.Memory`

func BadSlice() []memarch.RowAddr { return nil } // want `pinatubo/internal/memarch\.RowAddr`

type BadAlias = memarch.Geometry // want `exported type alias BadAlias mentions internal type`

type BadDefined []memarch.RowAddr // want `exported type BadDefined mentions internal type`

type Mixed struct {
	Leaky  memarch.RowAddr // want `exported field Mixed\.Leaky mentions internal type`
	Clean  int
	hidden memarch.Geometry
}

func (Mixed) BadMethod(memarch.RowAddr) {} // want `exported method Mixed\.BadMethod mentions internal type`

func (Mixed) goodMethod(memarch.RowAddr) {}

type Iface interface {
	Bad() memarch.RowAddr // want `exported method Iface\.Bad mentions internal type`
	good() memarch.Geometry
}

func goodUnexported(memarch.Geometry) {}

func GoodPublic(n int, s string) []byte { return nil }

// GoodAcknowledged returns an opaque handle.
//
//pinlint:ignore apileak opaque handle: callers only pass it back, never construct one
func GoodAcknowledged() *memarch.Memory { return nil }

package lint

import (
	"strings"
)

// IgnoreReason requires every `//pinlint:ignore` directive to name the
// analyzers it acknowledges and to carry a non-empty reason. A directive is
// a reviewed claim that flagged code is deliberate; a bare one is
// indistinguishable from a silenced warning nobody looked at. Uniquely,
// this analyzer's findings cannot themselves be suppressed by a directive —
// otherwise a reasonless `//pinlint:ignore ignorereason` would silence the
// very check that demands the reason.
var IgnoreReason = &Analyzer{
	Name: "ignorereason",
	Doc: "require //pinlint:ignore directives to name an analyzer and carry a non-empty " +
		"reason (directives cannot suppress this analyzer)",
	Run: runIgnoreReason,
}

func runIgnoreReason(pass *Pass) error {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, directivePrefix) {
					continue // prose mentioning the directive, not a directive
				}
				fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
				// A field opening a nested comment is not a real analyzer
				// name or reason — it is where the directive's content ends
				// (fixtures use this to attach expectations).
				if len(fields) == 0 || strings.HasPrefix(fields[0], "//") {
					pass.reportAlways(c.Pos(),
						"bare //pinlint:ignore directive: name the acknowledged analyzer(s) and give a reason")
					continue
				}
				reason := fields[1:]
				if len(reason) == 0 || strings.HasPrefix(reason[0], "//") {
					pass.reportAlways(c.Pos(),
						"//pinlint:ignore %s has no reason; a directive is a reviewed claim — say why the finding is deliberate",
						fields[0])
				}
			}
		}
	}
	return nil
}

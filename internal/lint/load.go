package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the package's import path ("pinatubo/internal/pimrt").
	Path string
	// Dir is the directory the sources were read from.
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages of the current module without any
// dependency on golang.org/x/tools: module-internal imports are resolved
// recursively from source, everything else (the standard library) goes
// through go/importer's source importer.
type Loader struct {
	Fset *token.FileSet

	modulePath string
	moduleRoot string
	std        types.ImporterFrom
	pkgs       map[string]*Package // keyed by directory
	byPath     map[string]*Package // keyed by import path
	loading    map[string]bool
}

// NewLoader builds a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer is not an ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		modulePath: modPath,
		moduleRoot: root,
		std:        src,
		pkgs:       map[string]*Package{},
		byPath:     map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModuleRoot returns the directory holding the module's go.mod.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// importPathFor maps a directory inside the module onto its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.moduleRoot)
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// Load parses and type-checks the package in dir (non-test files only,
// filtered through the usual build constraints). Results are cached, so a
// package shared by many lint targets is checked once.
func (l *Loader) Load(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[dir]; ok {
		return p, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var checkErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { checkErrs = append(checkErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(checkErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, checkErrs[0])
	}
	p := &Package{
		Path:      importPath,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[dir] = p
	l.byPath[importPath] = p
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom resolves module-internal imports from source and delegates the
// rest to the standard library's source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		if p, ok := l.byPath[path]; ok {
			return p.Types, nil
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		p, err := l.Load(filepath.Join(l.moduleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Expand resolves command-line package patterns ("./...", "dir", "dir/...")
// into package directories, skipping testdata, vendor, hidden directories
// and directories without Go files.
func (l *Loader) Expand(patterns []string, cwd string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "" || pat == "." {
			pat = cwd
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(cwd, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Cost, energy and
// latency arithmetic accumulates rounding, so exact comparison silently
// couples behaviour to evaluation order and compiler fusion; compare with
// an epsilon or carry integer picoseconds instead. Comparison against the
// exact constant 0 is allowed — the simulator's configs use 0 as the
// "feature off" sentinel, which is assigned, never computed.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= on float operands (except the constant-0 sentinel); " +
		"use an epsilon or integer picoseconds",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(pass, bin.X) || !isFloatOperand(pass, bin.Y) {
				return true
			}
			if isExactZero(pass, bin.X) || isExactZero(pass, bin.Y) {
				return true
			}
			pass.Reportf(bin.Pos(),
				"exact float comparison %s %s %s; use an epsilon or integer picoseconds",
				types.ExprString(bin.X), bin.Op, types.ExprString(bin.Y))
			return true
		})
	}
	return nil
}

func isFloatOperand(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isExactZero reports whether the expression is a compile-time constant
// equal to zero.
func isExactZero(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}

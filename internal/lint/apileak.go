package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// APILeak flags internal types escaping through the public API surface:
// an exported function, method, variable, constant, type alias, struct
// field or interface method in a publicly importable package whose type
// mentions a named type defined under an internal/ path. Importers
// outside the module cannot name such a type, so the symbol is unusable
// (a parameter they cannot construct) or viral (a return value they can
// hold but never declare). The fix is to wrap or re-declare the type in
// the public package, or unexport the symbol; a deliberate opaque handle
// can carry a `//pinlint:ignore apileak <reason>` directive.
var APILeak = &Analyzer{
	Name: "apileak",
	Doc: "flag exported symbols in publicly importable packages whose types mention " +
		"internal/ named types; wrap the type publicly or unexport the symbol",
	Run: runAPILeak,
}

func runAPILeak(pass *Pass) error {
	path := pass.Pkg.Path()
	// Packages under internal/ may pass internal types around freely —
	// except the analyzer's own fixtures, which sit under testdata/ inside
	// internal/lint and stand in for publicly importable packages.
	if isInternalPath(path) && !strings.Contains(path, "/testdata/") {
		return nil
	}
	if pass.Pkg.Name() == "main" {
		return nil // commands are not importable
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			reportLeaks(pass, o.Pos(), "function "+name, o.Type())
		case *types.Var:
			reportLeaks(pass, o.Pos(), "variable "+name, o.Type())
		case *types.Const:
			reportLeaks(pass, o.Pos(), "constant "+name, o.Type())
		case *types.TypeName:
			checkTypeName(pass, o)
		}
	}
	return nil
}

// isInternalPath reports whether an import path has an "internal" element,
// making the package unimportable from outside the module.
func isInternalPath(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// checkTypeName examines one exported type declaration: an alias leaks
// whatever it names; a defined type leaks through its exported surface —
// exported struct fields, exported interface methods, the underlying type
// of other kinds (reachable by indexing, dereferencing, receiving), and
// the signatures of its exported methods.
func checkTypeName(pass *Pass, o *types.TypeName) {
	name := o.Name()
	if o.IsAlias() {
		reportLeaks(pass, o.Pos(), "type alias "+name, types.Unalias(o.Type()))
		return
	}
	named, ok := o.Type().(*types.Named)
	if !ok {
		return
	}
	switch u := named.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if f.Exported() {
				reportLeaks(pass, f.Pos(), fmt.Sprintf("field %s.%s", name, f.Name()), f.Type())
			}
		}
	case *types.Interface:
		for i := 0; i < u.NumExplicitMethods(); i++ {
			m := u.ExplicitMethod(i)
			if m.Exported() {
				reportLeaks(pass, m.Pos(), fmt.Sprintf("method %s.%s", name, m.Name()), m.Type())
			}
		}
	default:
		reportLeaks(pass, o.Pos(), "type "+name, u)
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if !m.Exported() {
			continue
		}
		sig := m.Signature()
		// The receiver is the named type itself; only the rest of the
		// signature can leak.
		reportLeaks(pass, m.Pos(), fmt.Sprintf("method %s.%s", name, m.Name()),
			types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic()))
	}
}

// reportLeaks walks typ and reports each distinct internal named type it
// mentions.
func reportLeaks(pass *Pass, pos token.Pos, what string, typ types.Type) {
	seen := map[types.Type]bool{}
	leaked := map[string]bool{}
	var walk func(t types.Type)
	walk = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		switch t := t.(type) {
		case *types.Alias:
			walk(types.Unalias(t))
		case *types.Named:
			if pkg := t.Obj().Pkg(); pkg != nil && isInternalPath(pkg.Path()) {
				full := pkg.Path() + "." + t.Obj().Name()
				if !leaked[full] {
					leaked[full] = true
					pass.Reportf(pos,
						"exported %s mentions internal type %s; importers cannot name it — "+
							"wrap it in a public type or unexport the symbol", what, full)
				}
				return
			}
			// A public named type's own surface is checked when its package
			// is linted; only its type arguments matter here.
			if args := t.TypeArgs(); args != nil {
				for i := 0; i < args.Len(); i++ {
					walk(args.At(i))
				}
			}
		case *types.Pointer:
			walk(t.Elem())
		case *types.Slice:
			walk(t.Elem())
		case *types.Array:
			walk(t.Elem())
		case *types.Chan:
			walk(t.Elem())
		case *types.Map:
			walk(t.Key())
			walk(t.Elem())
		case *types.Signature:
			walk(t.Params())
			walk(t.Results())
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				walk(t.At(i).Type())
			}
		case *types.Struct:
			for i := 0; i < t.NumFields(); i++ {
				walk(t.Field(i).Type())
			}
		case *types.Interface:
			for i := 0; i < t.NumExplicitMethods(); i++ {
				walk(t.ExplicitMethod(i).Type())
			}
			for i := 0; i < t.NumEmbeddeds(); i++ {
				walk(t.EmbeddedType(i))
			}
		}
	}
	walk(typ)
}

package lint

// LoopOwner makes the state-loop ownership convention machine-checked. The
// server's bit-exactness argument (DESIGN §13) rests on a single goroutine
// owning the System and the window state: connection readers/writers only
// move requests and responses, and everything between admission and merge
// happens on the loop. That convention is declared in the source with
//
//	//pinlint:owned <Owner>[,<Owner>...]
//
// on a struct field: the field may be touched only by the named owner
// function/method and the functions it dominates in the direct-call
// callgraph — never from a go statement's subtree, and never from a
// function reachable from one. Functions whose results mention the
// annotated struct's type are constructors and exempt (they initialize the
// value before the owner's loop starts).

import (
	"go/ast"
	"go/types"
	"strings"
)

// LoopOwner flags accesses to //pinlint:owned struct fields from outside
// the owner's call tree or from goroutine-reachable code.
var LoopOwner = &Analyzer{
	Name: "loopowner",
	Doc: "flag accesses to //pinlint:owned struct fields from outside the " +
		"owner's call tree or from goroutine-reachable code",
	Run: runLoopOwner,
}

const ownedPrefix = "pinlint:owned"

// ownedField is one annotated struct field with its resolved check sets.
type ownedField struct {
	obj    types.Object // the field's *types.Var
	strct  *types.Named // the struct's named type
	owners []string     // owner function/method names from the directive
	// ownerSet is the owner's direct-call closure; ctors are the struct's
	// constructors. Filled in by runLoopOwner.
	ownerSet map[*types.Func]bool
	ctors    map[*types.Func]bool
}

func runLoopOwner(pass *Pass) error {
	fields := collectOwnedFields(pass)
	if len(fields) == 0 {
		return nil
	}
	cg := BuildCallGraph(pass)
	goSet := cg.GoroutineReachable()

	checks := make(map[types.Object]*ownedField)
	for i := range fields {
		f := &fields[i]
		var seed []*types.Func
		for fn := range cg.Decls() {
			if !containsName(f.owners, fn.Name()) {
				continue
			}
			if r := recvNamed(fn); r == nil || r == f.strct {
				//pinlint:ignore maporder seed feeds Reachable's set closure; collection order cannot reach the output
				seed = append(seed, fn)
			}
		}
		f.ownerSet = cg.Reachable(seed...)
		f.ctors = constructorsOf(cg, f.strct)
		checks[f.obj] = f
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			checkOwnedAccesses(pass, fd.Body, fn, checks, goSet, false)
		}
	}
	return nil
}

// checkOwnedAccesses reports annotated-field accesses in body. inGo marks
// that body executes on a spawned goroutine (a go statement's literal).
func checkOwnedAccesses(pass *Pass, body ast.Node, fn *types.Func,
	checks map[types.Object]*ownedField, goSet map[*types.Func]bool, inGo bool) {

	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				// Arguments evaluate on the spawning goroutine; the body
				// runs on the new one.
				for _, arg := range g.Call.Args {
					checkOwnedAccesses(pass, arg, fn, checks, goSet, inGo)
				}
				checkOwnedAccesses(pass, lit.Body, fn, checks, goSet, true)
				return false
			}
			return true
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil {
			return true
		}
		f, ok := checks[obj]
		if !ok {
			return true
		}
		fieldName := f.strct.Obj().Name() + "." + obj.Name()
		owner := strings.Join(f.owners, ",")
		switch {
		case inGo:
			pass.Reportf(sel.Pos(),
				"state-loop-owned field %s (owner %s) accessed inside a go statement",
				fieldName, owner)
		case goSet[fn]:
			pass.Reportf(sel.Pos(),
				"state-loop-owned field %s (owner %s) accessed in %s, which is reachable from a go statement",
				fieldName, owner, fn.Name())
		case !f.ownerSet[fn] && !f.ctors[fn]:
			pass.Reportf(sel.Pos(),
				"state-loop-owned field %s (owner %s) accessed in %s, outside the owner's call tree",
				fieldName, owner, fn.Name())
		}
		return true
	})
}

// collectOwnedFields parses //pinlint:owned directives on struct fields.
func collectOwnedFields(pass *Pass) []ownedField {
	var out []ownedField
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if tn == nil {
				return true
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				owners := ownedDirective(field.Doc)
				if owners == nil {
					owners = ownedDirective(field.Comment)
				}
				if owners == nil {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out = append(out, ownedField{obj: obj, strct: named, owners: owners})
					}
				}
			}
			return true
		})
	}
	return out
}

// ownedDirective parses one comment group for //pinlint:owned. Like Go's
// own directives the marker must follow the slashes immediately — prose
// that merely mentions pinlint:owned mid-sentence is not a directive.
func ownedDirective(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+ownedPrefix)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		return strings.Split(fields[0], ",")
	}
	return nil
}

// constructorsOf returns the declared functions whose result types mention
// strct (directly or behind a pointer) — the builders that run before any
// ownership discipline applies.
func constructorsOf(cg *CallGraph, strct *types.Named) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	for fn := range cg.Decls() {
		res := fn.Signature().Results()
		for i := 0; i < res.Len(); i++ {
			t := res.At(i).Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named == strct {
				out[fn] = true
			}
		}
	}
	return out
}

// recvNamed returns the named type of fn's receiver (nil for plain
// functions), unwrapping a pointer receiver.
func recvNamed(fn *types.Func) *types.Named {
	recv := fn.Signature().Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func containsName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

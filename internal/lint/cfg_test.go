package lint_test

// Engine-level tests: the CFG builder and the dataflow solver are
// exercised directly on hand-written function shapes — branches, loops
// with break, early returns, panics, select, defer, goto — asserting
// reachability, dominance and fixpoint facts rather than analyzer output.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"pinatubo/internal/lint"
)

// buildCFG parses src (a file body without the package clause), finds
// func f, and builds its CFG.
func buildCFG(t *testing.T, src string) (*lint.CFG, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return lint.BuildCFG(fd.Body), file
		}
	}
	t.Fatal("no func f in source")
	return nil, nil
}

// assignBlock returns the block holding the first assignment whose target
// identifier is name (tests keep these unique per function).
func assignBlock(t *testing.T, g *lint.CFG, file *ast.File, name string) *lint.Block {
	t.Helper()
	var found *lint.Block
	ast.Inspect(file, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == name {
				found = g.BlockOf(as)
				return false
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("no block found for assignment to %s", name)
	}
	return found
}

// incBlock returns the block holding the inc/dec statement of name.
func incBlock(t *testing.T, g *lint.CFG, file *ast.File, name string) *lint.Block {
	t.Helper()
	var found *lint.Block
	ast.Inspect(file, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if inc, ok := n.(*ast.IncDecStmt); ok {
			if id, ok := inc.X.(*ast.Ident); ok && id.Name == name {
				found = g.BlockOf(inc)
				return false
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("no block found for inc/dec of %s", name)
	}
	return found
}

// stmtBlock returns the block of the first statement satisfying pred.
func stmtBlock(t *testing.T, g *lint.CFG, file *ast.File, pred func(ast.Stmt) bool) *lint.Block {
	t.Helper()
	var found *lint.Block
	ast.Inspect(file, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && pred(s) {
			found = g.BlockOf(s)
			return false
		}
		return true
	})
	if found == nil {
		t.Fatal("no block found for statement")
	}
	return found
}

func TestCFGIfElseDiamond(t *testing.T) {
	g, file := buildCFG(t, `
func f(c bool) int {
	a := 0
	if c {
		b := 1
		_ = b
	} else {
		d := 2
		_ = d
	}
	e := 3
	return e
}`)
	entry := assignBlock(t, g, file, "a")
	thenB := assignBlock(t, g, file, "b")
	elseB := assignBlock(t, g, file, "d")
	join := assignBlock(t, g, file, "e")

	if thenB == elseB || thenB == join || elseB == join {
		t.Fatalf("branch and join blocks not distinct: then=%d else=%d join=%d",
			thenB.Index, elseB.Index, join.Index)
	}
	for _, b := range []*lint.Block{thenB, elseB, join, g.Exit} {
		if !g.Dominates(entry, b) {
			t.Errorf("entry-side block %d should dominate block %d", entry.Index, b.Index)
		}
	}
	if g.Dominates(thenB, join) {
		t.Error("then-branch must not dominate the join (else path bypasses it)")
	}
	if r := g.Reachable(thenB); r[elseB] {
		t.Error("else branch must not be reachable from the then branch")
	}
	if r := g.Reachable(entry); !r[g.Exit] {
		t.Error("exit must be reachable from entry")
	}
}

func TestCFGLoopWithBreak(t *testing.T) {
	g, file := buildCFG(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		b := i
		s = b
	}
	r := s
	return r
}`)
	body := assignBlock(t, g, file, "b")
	after := assignBlock(t, g, file, "r")
	post := incBlock(t, g, file, "i")

	// The loop body re-reaches itself around the back edge.
	if r := g.Reachable(post); !r[body] {
		t.Error("loop body must be reachable from the post statement (back edge)")
	}
	if !g.Dominates(body, post) {
		t.Error("the loop body tail must dominate i++ (only path to the post statement)")
	}
	if g.Dominates(body, after) {
		t.Error("loop body must not dominate the after-loop block (break bypasses it)")
	}
	if r := g.Reachable(body); !r[after] || !r[g.Exit] {
		t.Error("after-loop block and exit must be reachable from the loop body")
	}
}

func TestCFGEarlyReturnAndPanic(t *testing.T) {
	g, file := buildCFG(t, `
func f(c bool) int {
	if !c {
		panic("x")
	}
	a := 1
	return a
}`)
	panicB := stmtBlock(t, g, file, func(s ast.Stmt) bool {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	})
	retB := assignBlock(t, g, file, "a")

	r := g.Reachable(panicB)
	if !r[g.Exit] {
		t.Error("panic must flow to the exit block")
	}
	if r[retB] {
		t.Error("code after the panicking branch must not be reachable from it")
	}
}

func TestCFGSelect(t *testing.T) {
	g, file := buildCFG(t, `
func f(a, b chan int) int {
	x := 0
	select {
	case v := <-a:
		p := v
		_ = p
	case b <- 1:
		q := 2
		_ = q
	default:
		w := 3
		_ = w
	}
	r := x
	return r
}`)
	c1 := assignBlock(t, g, file, "p")
	c2 := assignBlock(t, g, file, "q")
	c3 := assignBlock(t, g, file, "w")
	join := assignBlock(t, g, file, "r")

	if c1 == c2 || c2 == c3 || c1 == c3 {
		t.Fatal("select clauses must get distinct blocks")
	}
	for _, c := range []*lint.Block{c1, c2, c3} {
		if g.Dominates(c, join) {
			t.Errorf("clause block %d must not dominate the join", c.Index)
		}
		if r := g.Reachable(c); !r[join] {
			t.Errorf("join must be reachable from clause block %d", c.Index)
		}
	}
}

func TestCFGDefer(t *testing.T) {
	g, _ := buildCFG(t, `
func done() {}
func f(c bool) int {
	defer done()
	if c {
		return 1
	}
	defer done()
	return 2
}`)
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 recorded defers, got %d", len(g.Defers))
	}
}

func TestCFGGotoAndLabeledBreak(t *testing.T) {
	g, file := buildCFG(t, `
func f(n int) int {
	s := 0
loop:
	for i := 0; i < n; i++ {
		for {
			if i > 2 {
				break loop
			}
			s++
			if s > 10 {
				goto end
			}
			break
		}
	}
end:
	r := s
	return r
}`)
	body := incBlock(t, g, file, "s")
	end := assignBlock(t, g, file, "r")

	if r := g.Reachable(body); !r[end] {
		t.Error("end label must be reachable from the inner loop body (goto edge)")
	}
	if r := g.Reachable(g.Entry); !r[g.Exit] {
		t.Error("exit must be reachable from entry through the labeled loops")
	}
}

// TestSolveLoopFixpoint runs an "assigned variables" forward analysis and
// checks that loop-carried facts converge around the back edge.
func TestSolveLoopFixpoint(t *testing.T) {
	g, file := buildCFG(t, `
func f(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		x = i
	}
	r := x
	return r
}`)
	type fact = map[string]bool
	clone := func(f fact) fact {
		out := make(fact, len(f))
		for k := range f {
			out[k] = true
		}
		return out
	}
	transfer := func(b *lint.Block, in fact) fact {
		out := clone(in)
		for _, n := range b.Nodes {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					out[id.Name] = true
				}
			case *ast.IncDecStmt:
				if id, ok := n.X.(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		}
		return out
	}
	join := func(a, b fact) fact {
		out := clone(a)
		for k := range b {
			out[k] = true
		}
		return out
	}
	equal := func(a, b fact) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	entry := lint.Solve(g, fact{}, fact{}, transfer, join, equal)

	after := assignBlock(t, g, file, "r")
	got := entry[after]
	for _, name := range []string{"x", "i"} {
		if !got[name] {
			t.Errorf("after-loop entry fact should contain %q (loop-carried), got %v", name, got)
		}
	}
}

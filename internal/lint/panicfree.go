package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// panicsDoc matches the Go convention for a documented panicking contract:
// a doc-comment sentence containing the word "panics" (as in "Panics if n
// is negative." or "It panics when ..."). A function that declares its
// panic this way has made the crash part of its API — a programmer-error
// assertion like the stdlib's — and is exempt.
var panicsDoc = regexp.MustCompile(`\b[Pp]anics?\b`)

// PanicFree bans panic in library code under internal/: the simulator is
// embedded by CLIs, figure harnesses and tests, and an undocumented panic
// in a leaf package tears the whole process down instead of surfacing as
// an error the resilience layer (or the caller) could handle. A panic is
// legitimate only as a documented programmer-error assertion: either the
// enclosing function's doc comment says "Panics ..." (the stdlib
// convention), or the site carries a `//pinlint:ignore panicfree <reason>`
// directive.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc: "ban panic in library packages under internal/; document the contract with a " +
		"\"Panics ...\" doc sentence or return an error",
	Run: runPanicFree,
}

func runPanicFree(pass *Pass) error {
	if !strings.Contains(pass.Pkg.Path(), "/internal/") {
		return nil // public API, commands, examples: not a library leaf
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && fd.Doc != nil && panicsDoc.MatchString(fd.Doc.Text()) {
				continue // documented panicking contract
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
					return true // shadowed identifier, not the builtin
				}
				where := "package-level initialiser"
				if isFunc {
					where = fd.Name.Name
				}
				pass.Reportf(call.Pos(),
					"panic in library code (%s); return an error, or document the assertion "+
						"with a \"Panics ...\" doc sentence", where)
				return true
			})
		}
	}
	return nil
}

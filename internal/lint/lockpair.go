package lint

// LockPair machine-checks the mutex discipline the concurrent paths rely
// on (the sandbox pool's poolMu, the server's metrics mu, the per-
// connection outbox mu): every sync.Mutex/RWMutex Lock must be released
// on every control-flow path to the function's exit, either by an Unlock
// that post-dominates it or by a deferred Unlock armed before any escape.
// The check is CFG-based — a forward walk from each Lock call site — so
// early returns, loop back-edges and panicking branches are real paths,
// not text below the Lock.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockPair flags Lock/RLock calls that can reach a return while still
// holding the lock, and Locks that can reach themselves again before an
// Unlock (self-deadlock).
var LockPair = &Analyzer{
	Name: "lockpair",
	Doc: "flag sync.Mutex/RWMutex Lock calls not paired with an Unlock on " +
		"every path to return, and re-locks reachable before the Unlock",
	Run: runLockPair,
}

const (
	muLock = iota
	muUnlock
	muDeferUnlock
)

// muOp is one mutex operation found in a block, in execution order.
type muOp struct {
	kind int
	key  string // receiver expression + "/r" for the read half of an RWMutex
	pos  token.Pos
	read bool
}

func runLockPair(pass *Pass) error {
	funcBodies(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		g := BuildCFG(body)
		ops := make([][]muOp, len(g.Blocks))
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				ops[b.Index] = append(ops[b.Index], mutexOps(pass, n)...)
			}
		}
		for _, b := range g.Blocks {
			for i, op := range ops[b.Index] {
				if op.kind == muLock {
					checkLock(pass, g, ops, b, i, op)
				}
			}
		}
	})
	return nil
}

// checkLock walks forward from one Lock call. A path ends at a matching
// Unlock or deferred Unlock; a path that reaches the CFG exit first means
// the lock leaks on that return, and re-reaching a Lock of the same key
// (write locks only — shared read locks may nest) means a self-deadlock.
func checkLock(pass *Pass, g *CFG, ops [][]muOp, b *Block, idx int, lock muOp) {
	leaked, relocked := false, false
	visited := make([]bool, len(g.Blocks))
	// scan processes a block's ops from position `from`; returns true when
	// the path is closed by a release.
	scan := func(blk *Block, from int) bool {
		for _, op := range ops[blk.Index][from:] {
			if op.key != lock.key {
				continue
			}
			switch op.kind {
			case muUnlock, muDeferUnlock:
				return true
			case muLock:
				if !lock.read {
					relocked = true
				}
			}
		}
		return false
	}
	var walk func(blk *Block)
	walk = func(blk *Block) {
		if visited[blk.Index] {
			return
		}
		visited[blk.Index] = true
		if blk == g.Exit {
			leaked = true
			return
		}
		if scan(blk, 0) {
			return
		}
		for _, s := range blk.Succs {
			walk(s)
		}
	}
	if !scan(b, idx+1) {
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if leaked {
		pass.Reportf(lock.pos,
			"%s is locked here but not released on every path to return; add the missing Unlock or defer it", lock.key)
	}
	if relocked {
		pass.Reportf(lock.pos,
			"%s can be locked again before this Lock is released (self-deadlock on a reachable path)", lock.key)
	}
}

// mutexOps extracts the mutex operations of one block-level node, in
// pre-order (evaluation order for the flat statements the CFG emits).
// Function literals are their own bodies; go statements run elsewhere.
func mutexOps(pass *Pass, node ast.Node) []muOp {
	var out []muOp
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			// The CFG records the select statement itself as a node of the
			// block that reaches it (joinall looks for it there), but its
			// comm clauses and bodies live in the successor branch blocks.
			// Descending here would attribute one branch's Unlock to the
			// pre-select path and hide a leak in a sibling branch.
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() — or a deferred literal containing one.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if op, ok := mutexCall(pass, call); ok && op.kind == muUnlock {
							op.kind = muDeferUnlock
							out = append(out, op)
						}
					}
					return true
				})
			} else if op, ok := mutexCall(pass, n.Call); ok && op.kind == muUnlock {
				op.kind = muDeferUnlock
				out = append(out, op)
			}
			return false
		case *ast.CallExpr:
			if op, ok := mutexCall(pass, n); ok {
				out = append(out, op)
			}
		}
		return true
	})
	return out
}

// mutexCall classifies one call as a sync mutex Lock/Unlock, keyed by the
// receiver expression so distinct mutexes in one function pair separately.
func mutexCall(pass *Pass, call *ast.CallExpr) (muOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return muOp{}, false
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return muOp{}, false
	}
	op := muOp{key: types.ExprString(sel.X), pos: call.Pos()}
	switch fn.Name() {
	case "Lock":
		op.kind = muLock
	case "Unlock":
		op.kind = muUnlock
	case "RLock":
		op.kind, op.read = muLock, true
		op.key += "/r"
	case "RUnlock":
		op.kind, op.read = muUnlock, true
		op.key += "/r"
	default:
		return muOp{}, false
	}
	return op, true
}

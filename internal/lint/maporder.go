package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags map-range loops whose iteration order can leak into
// results: appending to a slice that is never sorted afterwards, emitting
// output directly from the loop, or accumulating floating-point sums
// (float addition is not associative, so a different iteration order gives
// a different bit pattern). The accepted idiom is collect-keys-then-sort,
// which the analyzer recognises: an append target that is later passed to a
// sort.* / slices.Sort* call in the same block is not reported.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map-range loops that let iteration order reach results " +
		"(unsorted appends, direct output, float accumulation)",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmts := stmtList(n)
			if stmts == nil {
				return true
			}
			for i, stmt := range stmts {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rng) {
					continue
				}
				checkMapRange(pass, rng, stmts[i+1:])
			}
			return true
		})
	}
	return nil
}

// stmtList returns the statement list a node carries, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func isMapRange(pass *Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range loop body for order-sensitive sinks.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if target := appendTarget(pass, n); target != nil {
				if declaredWithin(pass, target, rng) {
					return true
				}
				if sortedLater(pass, target, rest) {
					return true
				}
				pass.Reportf(n.Pos(),
					"append to %s inside a map-range loop leaks iteration order; sort it afterwards or iterate sorted keys",
					types.ExprString(target))
				return true
			}
			if isFloatAccumulation(pass, n) && !lhsDeclaredWithin(pass, n, rng) {
				pass.Reportf(n.Pos(),
					"float accumulation into %s inside a map-range loop is order-dependent (float addition is not associative); iterate sorted keys",
					types.ExprString(n.Lhs[0]))
			}
		case *ast.CallExpr:
			if fn := calledFunc(pass, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
				pass.Reportf(n.Pos(),
					"fmt.%s inside a map-range loop emits output in iteration order; iterate sorted keys",
					fn.Name())
			}
		}
		return true
	})
}

// appendTarget returns the expression being appended to when the statement
// is the canonical x = append(x, ...) form.
func appendTarget(pass *Pass, assign *ast.AssignStmt) ast.Expr {
	if len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); !isBuiltin || ident.Name != "append" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	return call.Args[0]
}

// declaredWithin reports whether the expression's root object is declared
// inside the range statement (a loop-local accumulator is harmless: its
// final order cannot escape unless it is itself appended outwards, which a
// second loop-level check would catch).
func declaredWithin(pass *Pass, expr ast.Expr, rng *ast.RangeStmt) bool {
	root := expr
	for {
		switch e := root.(type) {
		case *ast.SelectorExpr:
			root = e.X
		case *ast.IndexExpr:
			root = e.X
		case *ast.ParenExpr:
			root = e.X
		default:
			ident, ok := root.(*ast.Ident)
			if !ok {
				return false
			}
			obj := pass.TypesInfo.Uses[ident]
			if obj == nil {
				obj = pass.TypesInfo.Defs[ident]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
		}
	}
}

func lhsDeclaredWithin(pass *Pass, assign *ast.AssignStmt, rng *ast.RangeStmt) bool {
	return len(assign.Lhs) == 1 && declaredWithin(pass, assign.Lhs[0], rng)
}

// isFloatAccumulation reports compound float assignment (+=, -=, *=, /=).
func isFloatAccumulation(pass *Pass, assign *ast.AssignStmt) bool {
	switch assign.Tok.String() {
	case "+=", "-=", "*=", "/=":
	default:
		return false
	}
	if len(assign.Lhs) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[assign.Lhs[0]]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// sortedLater reports whether a later statement in the same block passes
// the append target to a sort call.
func sortedLater(pass *Pass, target ast.Expr, rest []ast.Stmt) bool {
	want := types.ExprString(target)
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if !isSortFunc(fn) {
				return true
			}
			for _, arg := range call.Args {
				if types.ExprString(arg) == want {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isSortFunc recognises the sort and slices entry points that establish a
// deterministic order.
func isSortFunc(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// calledFunc resolves the package-level function or method a call targets.
func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

package lint_test

import (
	"testing"

	"pinatubo/internal/lint"
)

func TestSelectLeakRepro(t *testing.T) {
	loader, err := lint.NewLoader("testdata/src/selleak")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("testdata/src/selleak")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(lint.LockPair, pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Logf("diag: %v", d)
	}
	if len(diags) == 0 {
		t.Errorf("expected a leak finding for the select branch that returns while locked; got none")
	}
}

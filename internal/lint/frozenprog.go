package lint

// FrozenProg makes the program-cache immutability contract static. The
// lowered-program cache (cmdstream.Cache) shares one entry across every
// request that hits the same key, so an entry is frozen the moment it is
// stored: mutating its fields or the backing arrays of its slices after
// Store — or after fetching it back with Lookup — silently corrupts every
// concurrent and future user of the cache. The analyzer runs the dataflow
// solver with a "frozen roots" fact: Store freezes every variable the
// stored entry was built from, Lookup freezes the fetched value, aliasing
// expressions (selectors, indexes, type asserts, dereferences, slices,
// address-of) propagate frozenness, and composite literals deliberately do
// not — building a fresh value that copies fields out of a cached entry is
// the sanctioned pattern.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FrozenProg flags mutation of cached program entries after insertion into
// or retrieval from the program cache.
var FrozenProg = &Analyzer{
	Name: "frozenprog",
	Doc: "flag writes to cmdstream program-cache entries (fields, slice " +
		"elements, appends, mutating methods) after Store or Lookup",
	Run: runFrozenProg,
}

// frozenFact is the set of local variables rooted in a cached entry.
type frozenFact map[types.Object]bool

func (f frozenFact) clone() frozenFact {
	out := make(frozenFact, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

func runFrozenProg(pass *Pass) error {
	funcBodies(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		if !mentionsCache(pass, body) {
			return
		}
		g := BuildCFG(body)
		transfer := func(b *Block, in frozenFact) frozenFact {
			fact := in.clone()
			for _, n := range b.Nodes {
				fact = frozenStep(pass, n, fact, nil)
			}
			return fact
		}
		join := func(a, b frozenFact) frozenFact {
			out := a.clone()
			for k := range b {
				out[k] = true
			}
			return out
		}
		equal := func(a, b frozenFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		}
		entry := Solve(g, frozenFact{}, frozenFact{}, transfer, join, equal)
		// Reporting pass: replay each block from its converged entry fact.
		for _, b := range g.Blocks {
			fact := entry[b].clone()
			for _, n := range b.Nodes {
				fact = frozenStep(pass, n, fact, pass.Reportf)
			}
		}
	})
	return nil
}

// frozenStep folds one CFG node over the frozen set. With report non-nil it
// also diagnoses mutations of frozen-rooted expressions.
func frozenStep(pass *Pass, node ast.Node, fact frozenFact,
	report func(token.Pos, string, ...any)) frozenFact {

	diag := func(pos token.Pos, format string, args ...any) {
		if report != nil {
			report(pos, format, args...)
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			// Separate bodies get their own CFGs via funcBodies.
			return false
		case *ast.AssignStmt:
			fact = frozenAssign(pass, n, fact, diag)
			return true
		case *ast.IncDecStmt:
			if obj := frozenRoot(pass, n.X, fact); obj != nil {
				diag(n.Pos(), "cached program entry %s is mutated after insertion into the program cache", obj.Name())
			}
			return true
		case *ast.CallExpr:
			fact = frozenCall(pass, n, fact, diag)
			return true
		}
		return true
	})
	return fact
}

// frozenAssign handles one assignment: reports writes through frozen roots
// and updates which plain identifiers are frozen.
func frozenAssign(pass *Pass, as *ast.AssignStmt, fact frozenFact,
	diag func(token.Pos, string, ...any)) frozenFact {

	// A Lookup result is frozen the moment it is bound.
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isCacheMethod(pass, call, "Lookup") {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if obj := identObj(pass, id); obj != nil {
					fact = fact.clone()
					fact[obj] = true
				}
			}
			return fact
		}
	}
	for i, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			obj := identObj(pass, id)
			if obj == nil {
				continue
			}
			frozen := false
			if len(as.Rhs) == len(as.Lhs) {
				frozen = frozenRoot(pass, as.Rhs[i], fact) != nil
			}
			fact = fact.clone()
			if frozen {
				fact[obj] = true
			} else {
				delete(fact, obj)
			}
			continue
		}
		if obj := frozenRoot(pass, lhs, fact); obj != nil {
			diag(lhs.Pos(), "cached program entry %s is mutated after insertion into the program cache", obj.Name())
		}
	}
	return fact
}

// frozenCall handles one call: Store freezes the stored value's roots,
// copy/append into a frozen backing array and pointer-receiver methods on
// frozen values are mutations.
func frozenCall(pass *Pass, call *ast.CallExpr, fact frozenFact,
	diag func(token.Pos, string, ...any)) frozenFact {

	if isCacheMethod(pass, call, "Store") && len(call.Args) >= 2 {
		fact = fact.clone()
		ast.Inspect(call.Args[1], func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj, ok := identObj(pass, id).(*types.Var); ok && !obj.IsField() {
					fact[obj] = true
				}
			}
			return true
		})
		return fact
	}
	if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) >= 1 {
		switch id.Name {
		case "copy":
			if obj := frozenRoot(pass, call.Args[0], fact); obj != nil {
				diag(call.Pos(), "copy writes into the backing array of cached program entry %s", obj.Name())
			}
		case "append":
			if obj := frozenRoot(pass, call.Args[0], fact); obj != nil {
				diag(call.Pos(), "append may write into the backing array of cached program entry %s", obj.Name())
			}
		}
		return fact
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := frozenRoot(pass, sel.X, fact); obj != nil {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
				if recv := fn.Signature().Recv(); recv != nil {
					if _, ptr := recv.Type().(*types.Pointer); ptr {
						diag(call.Pos(), "pointer-receiver method %s may mutate cached program entry %s", fn.Name(), obj.Name())
					}
				}
			}
		}
	}
	return fact
}

// frozenRoot returns the frozen local variable an expression aliases, or
// nil. Aliasing follows selectors, indexes, slices, dereferences, type
// asserts, parens and address-of — but not composite literals or calls, so
// a freshly built value that copies fields out of a cached entry is clean.
func frozenRoot(pass *Pass, expr ast.Expr, fact frozenFact) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			obj := identObj(pass, e)
			if obj != nil && fact[obj] {
				return obj
			}
			return nil
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.TypeAssertExpr:
			expr = e.X
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return nil
			}
			expr = e.X
		default:
			return nil
		}
	}
}

func identObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// isCacheMethod reports whether call is cacheType.Store / cacheType.Lookup
// — a method of that name on a named type called Cache (the cmdstream
// program cache, or a fixture stand-in with the same shape).
func isCacheMethod(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Name() != name {
		return false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Cache"
}

// mentionsCache is the cheap gate: only bodies that touch a Cache method
// need the dataflow pass.
func mentionsCache(pass *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if isCacheMethod(pass, call, "Store") || isCacheMethod(pass, call, "Lookup") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

package lint

// JoinAll enforces the "no orphan goroutines" rule on the batch and server
// hot paths: every go statement must be tied to a join point the launcher
// can observe — a WaitGroup Done/Wait pair, a channel send/receive/close
// handshake (BatchRun's done channel, the server's outbox signal), a
// select, or a context-cancellation receive. A goroutine with none of
// these can outlive the window it was spawned for, racing the merge step
// that assumes all shard work has quiesced. Evidence is searched in the
// spawned body itself and through the module-internal callgraph (a helper
// like outbox.pop blocking on <-o.signal counts), so the check follows the
// code's real structure instead of demanding the join be written inline.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// JoinAll flags go statements whose spawned goroutine has no reachable
// join evidence (send, receive, select, close, or WaitGroup call).
var JoinAll = &Analyzer{
	Name: "joinall",
	Doc: "flag go statements not tied to a join point: no channel " +
		"send/receive/close, select, or WaitGroup Done/Wait is reachable " +
		"from the spawned body",
	Run: runJoinAll,
}

func runJoinAll(pass *Pass) error {
	cg := BuildCallGraph(pass)
	for _, site := range cg.GoSites() {
		if joinEvidence(pass, cg, site) {
			continue
		}
		pass.Reportf(site.Stmt.Pos(),
			"goroutine launched here has no visible join point: no channel send/receive/close, select, or WaitGroup Done/Wait is reachable from the spawned body")
	}
	return nil
}

// joinEvidence looks for a join point in the spawned body and in the
// direct-call closure of the package-local functions it calls.
func joinEvidence(pass *Pass, cg *CallGraph, site GoSite) bool {
	if site.Lit != nil && hasJoinEvidence(pass, site.Lit.Body) {
		return true
	}
	seed := append([]*types.Func{site.Fn}, site.Calls...)
	for fn := range cg.Reachable(seed...) {
		if decl := cg.Decl(fn); decl != nil && hasJoinEvidence(pass, decl.Body) {
			return true
		}
	}
	return false
}

// hasJoinEvidence scans one body for join constructs, excluding code that
// runs on further-spawned goroutines (their sites are checked separately).
func hasJoinEvidence(pass *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					return false
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
					if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "sync" &&
						(fn.Name() == "Done" || fn.Name() == "Wait") {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

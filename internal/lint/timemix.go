package lint

import (
	"go/ast"
	"go/types"
)

// TimeMix flags conversions that mix the simulator's unit-bearing float
// time (seconds, picoseconds) with host time.Duration without an explicit
// time-unit constant in the expression. The simulator carries simulated
// time as float64 seconds; time.Duration counts integer nanoseconds. A
// bare time.Duration(seconds) silently reinterprets seconds as
// nanoseconds (a 1e9 error), and a bare float64(d) leaks nanosecond
// counts into seconds arithmetic. The sanctioned idioms spell the unit:
// time.Duration(s * float64(time.Second)) and float64(d)/float64(time.Second).
var TimeMix = &Analyzer{
	Name: "timemix",
	Doc: "flag time.Duration <-> float conversions with no time-unit constant " +
		"in the expression; simulated seconds and host nanoseconds must not mix bare",
	Run: runTimeMix,
}

func runTimeMix(pass *Pass) error {
	for _, file := range pass.Files {
		parents := map[ast.Node]ast.Node{}
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			arg := call.Args[0]
			argType := pass.TypesInfo.Types[arg].Type
			if argType == nil {
				return true
			}
			switch {
			case isDurationType(tv.Type) && isFloatType(argType):
				// time.Duration(f): the float operand must spell its unit.
				if !hasTimeUnit(pass, arg) {
					pass.Reportf(call.Pos(),
						"time.Duration(%s) converts a float with no time-unit constant; "+
							"scale explicitly, e.g. time.Duration(x * float64(time.Second))",
						types.ExprString(arg))
				}
			case isFloatType(tv.Type) && isDurationType(argType):
				// float64(d): the surrounding expression must spell the unit
				// (float64(d) / float64(time.Second)); a bare conversion
				// leaks a nanosecond count into seconds arithmetic.
				if !hasTimeUnit(pass, enclosingExpr(parents, call)) {
					pass.Reportf(call.Pos(),
						"%s converts time.Duration with no time-unit constant nearby; "+
							"divide explicitly, e.g. float64(d) / float64(time.Second)",
						types.ExprString(call))
				}
			}
			return true
		})
	}
	return nil
}

// enclosingExpr walks up through binary and paren expressions to the
// outermost expression containing n, so a unit constant anywhere in the
// same arithmetic chain sanctions the conversion.
func enclosingExpr(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for {
		p := parents[n]
		switch p.(type) {
		case *ast.BinaryExpr, *ast.ParenExpr:
			n = p
		default:
			return n
		}
	}
}

// hasTimeUnit reports whether the expression's subtree references a
// constant of type time.Duration — time.Second and friends, or a named
// unit constant derived from them.
func hasTimeUnit(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		expr, ok := c.(ast.Expr)
		if !ok || found {
			return !found
		}
		tv, ok := pass.TypesInfo.Types[expr]
		if ok && tv.Value != nil && isDurationType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isDurationType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

func isFloatType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

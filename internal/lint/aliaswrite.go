package lint

// AliasWrite turns the copy-on-write row discipline into a static check.
// Shard memories alias rows the window's write-set classified read-only
// (AliasRow) and deep-copy only rows that will be written; the merge step
// must skip aliased rows or it would copy a row onto itself through two
// names. Any raw row write — copy into a PeekRow'd slice, or an element
// store through one — is therefore only sound when control flow has
// already consulted the classification: an Aliased(...) call or a
// write-set lookup (an index into a map[...]bool). The analyzer demands
// that every such write be dominated by a guard, using the CFG's dominator
// tree, so a guard in a non-dominating branch ("checked on the other
// path") does not count.

import (
	"go/ast"
	"go/types"
)

// AliasWrite flags raw row writes (copy into or element store through a
// PeekRow slice) not dominated by an alias/write-set guard.
var AliasWrite = &Analyzer{
	Name: "aliaswrite",
	Doc: "flag raw row writes through PeekRow that are not dominated by an " +
		"Aliased(...) check or a write-set map lookup",
	Run: runAliasWrite,
}

func runAliasWrite(pass *Pass) error {
	funcBodies(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		if !mentionsAliasing(body) {
			return
		}
		g := BuildCFG(body)
		// Per block: node indices holding guards, and the row writes.
		guards := make([][]int, len(g.Blocks))
		type rowWrite struct {
			node ast.Node
			idx  int
		}
		writes := make([][]rowWrite, len(g.Blocks))
		for _, b := range g.Blocks {
			for i, n := range b.Nodes {
				if isAliasGuard(pass, n) {
					guards[b.Index] = append(guards[b.Index], i)
				}
				if w := rowWriteIn(pass, n); w != nil {
					writes[b.Index] = append(writes[b.Index], rowWrite{node: w, idx: i})
				}
			}
		}
		for _, b := range g.Blocks {
			for _, w := range writes[b.Index] {
				if aliasGuarded(g, guards, b, w.idx) {
					continue
				}
				pass.Reportf(w.node.Pos(),
					"raw row write is not dominated by an Aliased(...) check or a write-set lookup; an aliased read-only row could be clobbered")
			}
		}
	})
	return nil
}

// aliasGuarded reports whether a write at node index idx of block b is
// dominated by a guard: an earlier guard in the same block, or any guard
// in a strictly dominating block.
func aliasGuarded(g *CFG, guards [][]int, b *Block, idx int) bool {
	for _, gi := range guards[b.Index] {
		if gi < idx {
			return true
		}
	}
	for _, d := range g.Blocks {
		if d != b && len(guards[d.Index]) > 0 && g.Dominates(d, b) {
			return true
		}
	}
	return false
}

// isAliasGuard reports whether a CFG node consults the row classification:
// a call to Aliased, or an index into a map[...]bool (the write-set).
func isAliasGuard(pass *Pass, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Aliased" {
				found = true
				return false
			}
		case *ast.IndexExpr:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if m, ok := t.Underlying().(*types.Map); ok {
					if basic, ok := m.Elem().Underlying().(*types.Basic); ok && basic.Kind() == types.Bool {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// rowWriteIn returns the raw row write inside a CFG node, or nil: a copy
// whose destination goes through PeekRow, or an assignment whose left side
// does.
func rowWriteIn(pass *Pass, node ast.Node) ast.Node {
	var w ast.Node
	ast.Inspect(node, func(n ast.Node) bool {
		if w != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && callsPeekRow(n.Args[0]) {
					w = n
					return false
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if callsPeekRow(lhs) {
					w = n
					return false
				}
			}
		}
		return true
	})
	return w
}

// callsPeekRow reports whether an expression contains a PeekRow call —
// the raw-slice escape hatch of the memory API.
func callsPeekRow(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "PeekRow" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsAliasing is the scope gate: the discipline only applies to
// functions that participate in the aliasing protocol at all.
func mentionsAliasing(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Aliased" || sel.Sel.Name == "AliasRow") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// EnumSwitch requires switches over the module's integer enum types
// (pinatubo.Op, VerifyMode, PlacementClass, sense.Op, chansim.Arbiter, …)
// to either carry a default clause or cover every declared constant of the
// type. Without this, adding a new Op silently falls through the Apply /
// resilience-ladder dispatch paths instead of failing loudly.
//
// A type counts as an enum when it is a named integer type declared in this
// module with at least two package-level constants of exactly that type.
// Switches containing non-constant case expressions are skipped (coverage
// cannot be proven either way).
var EnumSwitch = &Analyzer{
	Name: "enumswitch",
	Doc: "require switches over module enum types to be exhaustive or carry a default, " +
		"so new enum values cannot silently fall through",
	Run: runEnumSwitch,
}

func runEnumSwitch(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkEnumSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !sameModule(pkg.Path(), pass.Pkg.Path()) {
		return
	}

	// Declared constants of exactly this type, grouped by value (aliased
	// constants with equal values cover each other).
	declared := map[string]string{} // value key -> representative name
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if _, seen := declared[key]; !seen {
			declared[key] = name
		}
	}
	if len(declared) < 2 {
		return // not an enum
	}

	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // default clause: new values cannot fall through silently
		}
		for _, expr := range clause.List {
			etv, ok := pass.TypesInfo.Types[expr]
			if !ok || etv.Value == nil {
				return // non-constant case: coverage unprovable, skip switch
			}
			covered[canonicalConst(etv.Value)] = true
		}
	}

	var missing []string
	for key, name := range declared {
		if !covered[key] {
			missing = append(missing, fmt.Sprintf("%s (%s)", name, key))
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over %s has no default and misses %s; cover every constant or add a default",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// canonicalConst normalises a constant value the way declared keys are
// built, so int-typed and untyped representations of the same value match.
func canonicalConst(v constant.Value) string {
	if i, ok := constant.Int64Val(v); ok {
		return constant.MakeInt64(i).ExactString()
	}
	return v.ExactString()
}

// sameModule approximates module membership: two import paths belong to the
// same module when they share their first path element (the module path's
// root — "pinatubo" for this repo). Standard-library enums (reflect.Kind,
// token.Token, …) therefore never qualify.
func sameModule(a, b string) bool {
	return firstSegment(a) == firstSegment(b)
}

func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

package lint

// This file is the interprocedural half of the engine: a module-internal
// direct-call callgraph over one type-checked package. Edges are static
// calls whose callee resolves to a function or method declared in the
// package; calls through function values, interfaces, or other packages
// are not edges (the analyzers that consume the graph are conservative in
// the direction that matters to them). The graph distinguishes calls made
// on the spawning goroutine from code launched via go statements, which is
// what lets loopowner answer "which goroutine can reach this statement"
// and joinall find a goroutine's join evidence through helper calls.

import (
	"go/ast"
	"go/types"
)

// GoSite is one go statement: the spawned function literal or named
// callee, plus the direct same-package calls the spawned body makes on its
// own goroutine (for literals; named callees contribute their Calls edge
// through the graph).
type GoSite struct {
	Stmt *ast.GoStmt
	// Lit is the spawned literal (nil when the go statement calls a named
	// function or method).
	Lit *ast.FuncLit
	// Fn is the named callee when it resolves to a package-local
	// declaration (nil for literals and unresolvable callees).
	Fn *types.Func
	// Calls are the direct package-local calls made from Lit's body,
	// excluding code inside further nested go statements (those are their
	// own sites).
	Calls []*types.Func
}

// CallGraph is the package's direct-call graph.
type CallGraph struct {
	decls map[*types.Func]*ast.FuncDecl
	// calls[f] are the package-local functions f calls directly on its own
	// goroutine (code inside go-launched literals is excluded — it runs
	// elsewhere and is accounted to the GoSite instead).
	calls map[*types.Func][]*types.Func
	sites []GoSite
}

// BuildCallGraph constructs the callgraph of the package under analysis.
func BuildCallGraph(pass *Pass) *CallGraph {
	cg := &CallGraph{
		decls: make(map[*types.Func]*ast.FuncDecl),
		calls: make(map[*types.Func][]*types.Func),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				cg.decls[fn] = fd
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.walkBody(pass, fn, fd.Body)
		}
	}
	return cg
}

// Decl returns the declaration of a package-local function, or nil.
func (cg *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return cg.decls[fn] }

// Decls returns every package-local declared function with a body. The map
// is the graph's own index — callers must not mutate it.
func (cg *CallGraph) Decls() map[*types.Func]*ast.FuncDecl { return cg.decls }

// Calls returns fn's direct same-goroutine callees.
func (cg *CallGraph) Calls(fn *types.Func) []*types.Func { return cg.calls[fn] }

// GoSites returns every go statement in the package, in file order.
func (cg *CallGraph) GoSites() []GoSite { return cg.sites }

// walkBody collects call edges and go sites from one function body. owner
// is the declared function the synchronous code belongs to.
func (cg *CallGraph) walkBody(pass *Pass, owner *types.Func, body ast.Node) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			cg.addGoSite(pass, n)
			// The call expression's arguments evaluate on the spawning
			// goroutine; the spawned body does not.
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			if _, isLit := n.Call.Fun.(*ast.FuncLit); !isLit {
				ast.Inspect(n.Call.Fun, walk)
			}
			return false
		case *ast.CallExpr:
			if callee := cg.resolve(pass, n); callee != nil {
				cg.calls[owner] = append(cg.calls[owner], callee)
			}
		case *ast.FuncLit:
			// Non-go literal: runs (when called) on contexts that at least
			// include the owner's; attribute its calls to the owner.
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// addGoSite records one go statement, collecting the spawned literal's
// direct calls (stopping at nested go statements, which recurse into their
// own sites via the enclosing walk).
func (cg *CallGraph) addGoSite(pass *Pass, g *ast.GoStmt) {
	site := GoSite{Stmt: g}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		site.Lit = lit
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.GoStmt); ok {
				cg.addGoSite(pass, inner)
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := cg.resolve(pass, call); callee != nil {
					site.Calls = append(site.Calls, callee)
				}
			}
			return true
		})
	} else if callee := cg.resolve(pass, g.Call); callee != nil {
		site.Fn = callee
	}
	cg.sites = append(cg.sites, site)
}

// resolve returns the package-local declared function a call statically
// targets, or nil.
func (cg *CallGraph) resolve(pass *Pass, call *ast.CallExpr) *types.Func {
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return nil
	}
	if _, ok := cg.decls[fn]; !ok {
		return nil
	}
	return fn
}

// Reachable returns the closure of seed under same-goroutine direct-call
// edges, including the seeds themselves.
func (cg *CallGraph) Reachable(seed ...*types.Func) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	var stack []*types.Func
	for _, fn := range seed {
		if fn != nil && !out[fn] {
			out[fn] = true
			stack = append(stack, fn)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, callee := range cg.calls[fn] {
			if !out[callee] {
				out[callee] = true
				stack = append(stack, callee)
			}
		}
	}
	return out
}

// GoroutineReachable returns every package-local function that can run on
// a spawned goroutine: named go targets, direct calls from go-launched
// literals, and the direct-call closure of both.
func (cg *CallGraph) GoroutineReachable() map[*types.Func]bool {
	var seed []*types.Func
	for _, site := range cg.sites {
		if site.Fn != nil {
			seed = append(seed, site.Fn)
		}
		seed = append(seed, site.Calls...)
	}
	return cg.Reachable(seed...)
}

// funcBodies calls fn for every function body in the package: each
// declared function and each function literal, with the literal's
// enclosing declaration. Analyzers that build per-body CFGs iterate
// through here so literal bodies are not skipped.
func funcBodies(files []*ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, file := range files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd, nil, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(fd, lit, lit.Body)
				}
				return true
			})
		}
	}
}

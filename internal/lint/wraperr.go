package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// WrapErr requires %w whenever a fmt.Errorf format references a package
// sentinel error (a package-level `Err*` variable, like
// ErrResilienceExhausted or ErrUncorrectable). A sentinel formatted with %v
// or %s flattens into text: callers matching with errors.Is silently stop
// seeing it, which is exactly the contract the resilience layer's tests
// rely on.
var WrapErr = &Analyzer{
	Name: "wraperr",
	Doc:  "require %w when fmt.Errorf formats a package sentinel error, so errors.Is keeps matching",
	Run:  runWrapErr,
}

func runWrapErr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true // non-literal format: nothing to prove
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			verbs, ok := formatVerbs(format)
			if !ok {
				return true // indexed or starred verbs: out of scope
			}
			for i, verb := range verbs {
				argIdx := 1 + i
				if argIdx >= len(call.Args) {
					break
				}
				if verb == 'w' {
					continue
				}
				if name, isSentinel := sentinelError(pass, call.Args[argIdx]); isSentinel {
					pass.Reportf(call.Args[argIdx].Pos(),
						"sentinel %s formatted with %%%c; use %%w so errors.Is matches through the wrap",
						name, verb)
				}
			}
			return true
		})
	}
	return nil
}

// formatVerbs returns the verb rune for each argument-consuming verb of a
// Printf format string, in argument order. It reports !ok for explicit
// argument indexes (%[1]d) and starred widths (%*d), which break the simple
// 1:1 verb-to-argument mapping.
func formatVerbs(format string) ([]rune, bool) {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			continue
		case '*', '[':
			return nil, false
		default:
			verbs = append(verbs, rune(format[i]))
		}
	}
	return verbs, true
}

// sentinelError reports whether the expression denotes a package-level
// error variable whose name starts with Err.
func sentinelError(pass *Pass, expr ast.Expr) (string, bool) {
	var obj types.Object
	switch e := expr.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return "", false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return "", false
	}
	if !implementsError(v.Type()) {
		return "", false
	}
	return v.Name(), true
}

func implementsError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}

package lint

// This file is the control-flow half of pinlint's analysis engine: an
// intra-procedural CFG built from go/ast alone (no SSA, no x/tools), with
// dominator computation on top. The concurrency-ownership analyzers
// (lockpair, aliaswrite, frozenprog) need exactly two questions answered
// that per-function AST walks cannot: "which statements can execute after
// this one" (reachability along edges, including loop back-edges) and
// "does every path to this statement pass through that guard" (dominance).
// The CFG is statement-granular — each Block holds the ast.Nodes that
// execute unconditionally together, in order — which keeps transfer
// functions simple folds over Block.Nodes.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal run of nodes with a single entry and
// a single exit point. Branch conditions (if/for conditions, switch tags,
// range operands) appear as the last node of the block that evaluates
// them, so a guard's position in the dominator tree is the position of the
// block holding its condition.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Nodes are the statements and condition expressions executed in
	// order when control enters the block.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Exit is a synthetic
// empty block every return (and the fall-off-the-end path) edges to, so
// "reaches function exit" is a plain reachability query.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	// Defers lists every defer statement in the body, in source order.
	// Deferred calls run at every exit; path-sensitive analyses treat
	// reaching a DeferStmt as arming its call for the rest of the
	// function.
	Defers []*ast.DeferStmt

	blockOf map[ast.Node]*Block
	idom    []*Block // lazily computed immediate dominators, by Index
}

// BlockOf returns the block a node was placed in, or nil for nodes that
// are not block-level (sub-expressions, nested statements inside a node
// that was added whole).
func (g *CFG) BlockOf(n ast.Node) *Block { return g.blockOf[n] }

// BuildCFG constructs the CFG of one function body. It handles the full
// statement grammar: if/else chains, for and range loops, expression and
// type switches (including fallthrough), select, labeled break/continue,
// goto, and early returns. Calls to panic terminate their path (edge to
// Exit): the analyzers' paths-to-exit queries then see panicking branches
// as returns, which is how the runtime treats them too. Function literals
// are opaque nodes here — each literal body gets its own CFG via the
// funcBodies walk in callgraph.go.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{blockOf: make(map[ast.Node]*Block)}
	b := &cfgBuilder{g: g, labels: make(map[string]*labelTarget)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.collectLabels(body)
	b.stmtList(body.List)
	// Fall off the end of the body: an implicit return.
	b.edge(b.cur, g.Exit)
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// labelTarget resolves one label: the block a goto jumps to, and the
// break/continue targets while the labeled statement is being built.
type labelTarget struct {
	goto_     *Block // jump-in point (created on demand)
	break_    *Block
	continue_ *Block
}

type cfgBuilder struct {
	g   *CFG
	cur *Block
	// breakTo / continueTo are the innermost unlabeled targets.
	breakTo    *Block
	continueTo *Block
	labels     map[string]*labelTarget
	// pendingLabel is the target record of the labeled statement
	// currently being built, so the loop/switch it labels can bind its
	// break/continue blocks to it.
	pendingLabel *labelTarget
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block and records its placement.
func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.blockOf[n] = b.cur
}

// collectLabels pre-creates a jump-in block for every label so forward
// gotos have a target before their labeled statement is reached.
func (b *cfgBuilder) collectLabels(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if l, ok := n.(*ast.LabeledStmt); ok {
			b.labels[l.Label.Name] = &labelTarget{goto_: b.newBlock()}
		}
		return true
	})
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall reports a direct call to the panic builtin (by name; the
// CFG is type-free, and shadowing panic would be its own finding).
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(condBlk, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(condBlk, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, after)
		}
		b.edge(head, body)
		b.withLoop(after, post, func() {
			b.cur = body
			b.stmtList(s.Body.List)
		})
		b.edge(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
			b.edge(post, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(s.X)
		b.edge(head, body)
		b.edge(head, after) // empty collection
		b.withLoop(after, head, func() {
			b.cur = body
			b.stmtList(s.Body.List)
		})
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		b.add(s) // the select itself (for analyses that look for it)
		selBlk := b.cur
		after := b.newBlock()
		var bodies []*Block
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(selBlk, blk)
			bodies = append(bodies, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.withBreak(after, func() {
				b.stmtList(cc.Body)
			})
			b.edge(b.cur, after)
		}
		if len(bodies) == 0 {
			b.edge(selBlk, after)
		}
		b.cur = after

	case *ast.LabeledStmt:
		lt := b.labels[s.Label.Name]
		b.edge(b.cur, lt.goto_)
		b.cur = lt.goto_
		// break/continue targets are wired by the inner statement builders
		// through withLoop/withBreak, which consult pendingLabel.
		b.pendingLabel = lt
		b.stmt(s.Stmt)
		if b.pendingLabel == lt {
			b.pendingLabel = nil
		}

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s, true); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s, false); t != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			if lt, ok := b.labels[s.Label.Name]; ok {
				b.edge(b.cur, lt.goto_)
			}
		case token.FALLTHROUGH:
			// handled by switchStmt wiring (edge to next clause)
		}
		if s.Tok != token.FALLTHROUGH {
			b.cur = b.newBlock() // unreachable continuation
		}

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)

	default:
		// Flat statements: assignments, declarations, expression
		// statements (including go), sends, inc/dec, empty.
		b.add(s)
		if isPanicCall(s) {
			b.edge(b.cur, b.g.Exit)
			b.cur = b.newBlock()
		}
	}
}

func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	var init ast.Stmt
	var tag ast.Node
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, tag, clauses = s.Init, s.Tag, s.Body.List
	case *ast.TypeSwitchStmt:
		init, tag, clauses = s.Init, s.Assign, s.Body.List
	}
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	tagBlk := b.cur
	after := b.newBlock()
	hasDefault := false
	var bodyBlks []*Block
	var caseBodies [][]ast.Stmt
	for _, c := range clauses {
		cc := c.(*ast.CaseClause)
		blk := b.newBlock()
		b.edge(tagBlk, blk)
		if cc.List == nil {
			hasDefault = true
		} else {
			for _, e := range cc.List {
				b.g.blockOf[e] = blk
				blk.Nodes = append(blk.Nodes, e)
			}
		}
		bodyBlks = append(bodyBlks, blk)
		caseBodies = append(caseBodies, cc.Body)
	}
	if !hasDefault {
		b.edge(tagBlk, after)
	}
	for i, blk := range bodyBlks {
		b.cur = blk
		b.withBreak(after, func() {
			b.stmtList(caseBodies[i])
		})
		// fallthrough: edge to the next clause's body block
		if n := len(caseBodies[i]); n > 0 {
			if br, ok := caseBodies[i][n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(bodyBlks) {
				b.edge(b.cur, bodyBlks[i+1])
			}
		}
		b.edge(b.cur, after)
	}
	b.cur = after
}

// withLoop runs fn with break/continue targets installed, binding a
// pending label (if the loop is labeled) to the same targets.
func (b *cfgBuilder) withLoop(brk, cont *Block, fn func()) {
	oldB, oldC := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = brk, cont
	if b.pendingLabel != nil {
		b.pendingLabel.break_ = brk
		b.pendingLabel.continue_ = cont
		b.pendingLabel = nil
	}
	fn()
	b.breakTo, b.continueTo = oldB, oldC
}

// withBreak runs fn with only the break target installed (switch/select).
func (b *cfgBuilder) withBreak(brk *Block, fn func()) {
	old := b.breakTo
	b.breakTo = brk
	if b.pendingLabel != nil {
		b.pendingLabel.break_ = brk
		b.pendingLabel = nil
	}
	fn()
	b.breakTo = old
}

// branchTarget resolves a break/continue, labeled or not.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, isBreak bool) *Block {
	if s.Label != nil {
		if lt, ok := b.labels[s.Label.Name]; ok {
			if isBreak {
				return lt.break_
			}
			return lt.continue_
		}
		return nil
	}
	if isBreak {
		return b.breakTo
	}
	return b.continueTo
}

// Reachable returns the set of blocks reachable from `from` along edges,
// including `from` itself.
func (g *CFG) Reachable(from *Block) map[*Block]bool {
	seen := map[*Block]bool{from: true}
	stack := []*Block{from}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// Dominates reports whether block a dominates block b: every path from
// the entry to b passes through a. Unreachable blocks are dominated by
// nothing but themselves. Computed lazily (Cooper–Harvey–Kennedy) and
// cached on the CFG.
func (g *CFG) Dominates(a, b *Block) bool {
	if a == b {
		return true
	}
	if g.idom == nil {
		g.computeDominators()
	}
	for d := g.idom[b.Index]; d != nil; d = g.idom[d.Index] {
		if d == a {
			return true
		}
		if d == g.Entry {
			break
		}
	}
	return false
}

// computeDominators runs the iterative dominator algorithm over a reverse
// postorder of the reachable blocks.
func (g *CFG) computeDominators() {
	// Reverse postorder from entry.
	var order []*Block
	state := make([]int, len(g.Blocks)) // 0 unvisited, 1 on stack, 2 done
	var dfs func(*Block)
	dfs = func(blk *Block) {
		state[blk.Index] = 1
		for _, s := range blk.Succs {
			if state[s.Index] == 0 {
				dfs(s)
			}
		}
		state[blk.Index] = 2
		order = append(order, blk)
	}
	dfs(g.Entry)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoIndex := make([]int, len(g.Blocks))
	for i, blk := range order {
		rpoIndex[blk.Index] = i
	}

	g.idom = make([]*Block, len(g.Blocks))
	g.idom[g.Entry.Index] = g.Entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpoIndex[a.Index] > rpoIndex[b.Index] {
				a = g.idom[a.Index]
			}
			for rpoIndex[b.Index] > rpoIndex[a.Index] {
				b = g.idom[b.Index]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range order {
			if blk == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range blk.Preds {
				if g.idom[p.Index] == nil {
					continue // unreachable pred
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && g.idom[blk.Index] != newIdom {
				g.idom[blk.Index] = newIdom
				changed = true
			}
		}
	}
	g.idom[g.Entry.Index] = nil // entry has no strict dominator
}

// Package lint is pinlint's analysis framework: a small, stdlib-only
// re-implementation of the golang.org/x/tools/go/analysis driver shape
// (Analyzer, Pass, Diagnostic) plus the project's analyzers.
//
// The repo's headline claims are bit-exactness claims — the zero-fault ECC
// build is pinned bit-identical to the golden path and the event-driven
// scheduler bit-identical to the legacy loop — and the invariants that make
// those claims hold (seeded RNG only, no wall clock, no map-iteration-order
// leaking into results, no float == in cost math, %w-wrapped sentinels,
// exhaustive enum switches, trace segments paired with cost accounting,
// no undocumented panics in library packages) are what these analyzers
// machine-check. cmd/pinlint runs the suite over the module; each analyzer
// has positive and negative fixtures under testdata/src driven by the
// linttest harness.
//
// A finding can be acknowledged in place with a directive comment
//
//	//pinlint:ignore <analyzer> <reason>
//
// on the same line, the line above, or in the doc comment of the enclosing
// function declaration. The reason is mandatory and machine-checked (the
// ignorereason analyzer): a directive is a reviewed claim that the flagged
// code is deliberate, and a bare one is indistinguishable from a silenced
// warning nobody looked at.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker, mirroring the x/tools analysis.Analyzer
// surface pinlint needs: a name, a doc string, and a Run function over a
// fully type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is the one-paragraph description `pinlint -list` prints.
	Doc string
	// Run inspects one package and reports findings through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags      []Diagnostic
	directives []directive
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(pos, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportAlways records a finding regardless of ignore directives. Only the
// directive hygiene analyzer uses it: a directive must not be able to
// suppress the check that validates directives.
func (p *Pass) reportAlways(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //pinlint:ignore comment.
type directive struct {
	file      string
	line      int
	analyzers map[string]bool
	// funcRange is set when the directive sits in a function's doc
	// comment: it then covers the whole declaration.
	funcStart, funcEnd token.Pos
}

func (d directive) covers(name string, pos token.Pos, position token.Position) bool {
	if !d.analyzers[name] && !d.analyzers["all"] {
		return false
	}
	if d.funcStart != token.NoPos {
		return pos >= d.funcStart && pos <= d.funcEnd
	}
	return d.file == position.Filename &&
		(d.line == position.Line || d.line == position.Line-1)
}

func (p *Pass) suppressed(pos token.Pos, position token.Position) bool {
	for _, d := range p.directives {
		if d.covers(p.Analyzer.Name, pos, position) {
			return true
		}
	}
	return false
}

const directivePrefix = "pinlint:ignore"

// parseDirectives collects every //pinlint:ignore comment in the package.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		// Doc-comment directives cover the whole declared function.
		funcDocs := map[*ast.CommentGroup]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
				if len(fields) == 0 {
					continue
				}
				d := directive{
					analyzers: map[string]bool{},
					file:      fset.Position(c.Pos()).Filename,
					line:      fset.Position(c.Pos()).Line,
				}
				for _, name := range strings.Split(fields[0], ",") {
					d.analyzers[name] = true
				}
				if fd, ok := funcDocs[cg]; ok {
					d.funcStart, d.funcEnd = fd.Pos(), fd.End()
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Run executes one analyzer over one loaded package and returns its
// findings sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.TypesInfo,
		directives: parseDirectives(pkg.Fset, pkg.Files),
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sort.Slice(pass.diags, func(i, j int) bool {
		a, b := pass.diags[i].Pos, pass.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return pass.diags, nil
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DetRand,
		MapOrder,
		FloatEq,
		WrapErr,
		EnumSwitch,
		CostPair,
		PanicFree,
		TimeMix,
		APILeak,
		IgnoreReason,
		LoopOwner,
		FrozenProg,
		AliasWrite,
		JoinAll,
		LockPair,
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// detrandGlobals are the math/rand (and v2) package-level functions that
// draw from the process-global, time-seeded source. Constructors taking an
// explicit seed or source (New, NewSource, NewPCG, NewChaCha8, NewZipf) are
// deliberately absent: seeded generators are exactly what the simulator
// wants, and internal/fault and internal/chansim already route all
// randomness through config-provided seeds.
var detrandGlobals = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// detrandClock are the time functions that read the wall clock. Anything
// built on them (time-seeded RNG, timestamped results) breaks replay.
var detrandClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// DetRand forbids nondeterministic inputs in simulator code: the global
// math/rand functions (whose shared source is randomly seeded) and the wall
// clock (time.Now / Since / Until). Every Pinatubo result must be a pure
// function of configuration and seeds, or the bit-exactness pins on the ECC
// and scheduler paths stop meaning anything.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand functions and wall-clock reads in simulator code; " +
		"randomness must flow from config-provided seeds",
	Run: runDetRand,
}

func runDetRand(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method call, e.g. (*rand.Rand).Intn — seeded, fine
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if detrandGlobals[fn.Name()] {
					pass.Reportf(call.Pos(),
						"global %s.%s draws from the shared, unseeded source; use a seeded *rand.Rand from config",
						fn.Pkg().Path(), fn.Name())
				}
			case "time":
				if detrandClock[fn.Name()] {
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock; simulated results must not depend on real time",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

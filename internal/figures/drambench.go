package figures

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"pinatubo"
)

// DRAM backend smoke benchmark: the Apply hot-path workload (repeated
// AND / XOR / chained-OR rounds) on a DRAM system. Beyond the two
// host-independent software figures the Apply gate watches (allocations
// per op, program-cache hit rate), the DRAM system injects no faults, so
// its simulated time and energy are fully deterministic — the gate pins
// them too, and any change to the TRA lowering's command count or
// pricing shows up as a gate failure rather than a silent drift.

// dramBenchRounds is the measured round count; each round issues three
// ops (AND, XOR, 3-source chained OR) over the same operands.
const dramBenchRounds = 128

// DRAMBenchResult is the committed-baseline artifact (BENCH_dram.json).
type DRAMBenchResult struct {
	// Ops is the number of Apply calls in the measured window.
	Ops int `json:"ops"`
	// WallOpsPerSec is host-clock throughput — informational only.
	WallOpsPerSec float64 `json:"wall_ops_per_sec"`
	// AllocsPerOp is steady-state heap allocations per Apply. Gated.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// CacheHitRate is program-cache hits over lookups for the measured
	// window. Gated: the DRAM backend's cached path recomputes words
	// through ComputeInto, so a key bug collapses this to ~0.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// SimSecondsPerOp is simulated time per Apply — deterministic (no
	// fault injection on DRAM), host-independent, gated. Moves only if
	// the TRA lowering's command sequences or timing parameters change.
	SimSecondsPerOp float64 `json:"sim_seconds_per_op"`
	// PJPerBit is simulated operation energy per result bit, averaged
	// over the window — deterministic and gated, like SimSecondsPerOp.
	PJPerBit float64 `json:"pj_per_bit"`
}

// DRAMBench runs the repeated-op workload on a DRAM system, once warm
// and once measured.
func DRAMBench() (DRAMBenchResult, error) {
	sys, err := pinatubo.New(pinatubo.Config{Tech: pinatubo.DRAM})
	if err != nil {
		return DRAMBenchResult{}, err
	}
	vs, err := sys.AllocGroup(6, sys.RowBits())
	if err != nil {
		return DRAMBenchResult{}, err
	}
	rng := rand.New(rand.NewSource(42))
	data := make([]uint64, sys.RowBits()/64)
	for _, v := range vs[:4] {
		for i := range data {
			data[i] = rng.Uint64()
		}
		if _, err := sys.Write(v, data); err != nil {
			return DRAMBenchResult{}, err
		}
	}
	var simSeconds, joules float64
	round := func() error {
		for _, call := range []func() (pinatubo.Result, error){
			func() (pinatubo.Result, error) { return sys.And(vs[4], vs[0], vs[1]) },
			func() (pinatubo.Result, error) { return sys.Xor(vs[5], vs[2], vs[3]) },
			func() (pinatubo.Result, error) { return sys.Or(vs[4], vs[0], vs[1], vs[2]) },
		} {
			res, err := call()
			if err != nil {
				return err
			}
			simSeconds += res.Latency.Seconds()
			joules += res.EnergyJoules
		}
		return nil
	}
	// Warm up: populate the program cache and grow scratch buffers, then
	// snapshot counters so every figure covers only the measured window.
	if err := round(); err != nil {
		return DRAMBenchResult{}, err
	}
	warm := sys.PerfStats()
	simSeconds, joules = 0, 0

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	//pinlint:ignore detrand wall-clock throughput is the benchmark's informational measurement, not a simulated result
	start := time.Now()
	for i := 0; i < dramBenchRounds; i++ {
		if err := round(); err != nil {
			return DRAMBenchResult{}, err
		}
	}
	//pinlint:ignore detrand wall-clock throughput is the benchmark's informational measurement, not a simulated result
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	res := DRAMBenchResult{Ops: dramBenchRounds * 3}
	if s := wall.Seconds(); s > 0 {
		res.WallOpsPerSec = float64(res.Ops) / s
	}
	res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(res.Ops)
	perf := sys.PerfStats()
	hits := perf.ProgramCacheHits - warm.ProgramCacheHits
	misses := perf.ProgramCacheMisses - warm.ProgramCacheMisses
	if lookups := hits + misses; lookups > 0 {
		res.CacheHitRate = float64(hits) / float64(lookups)
	}
	res.SimSecondsPerOp = simSeconds / float64(res.Ops)
	res.PJPerBit = joules / float64(res.Ops) / float64(sys.RowBits()) * 1e12
	return res, nil
}

// FormatDRAMBench renders the benchmark as a short text block.
func FormatDRAMBench(res DRAMBenchResult) string {
	return fmt.Sprintf(
		"DRAM TRA backend hot path — %d repeated ops on one system\n"+
			"  wall throughput %14.0f ops/s (informational)\n"+
			"  allocations     %14.1f allocs/op (gated)\n"+
			"  cache hit rate  %14.3f (gated)\n"+
			"  simulated time  %14.3e s/op (gated, deterministic)\n"+
			"  energy          %14.3f pJ/bit (gated, deterministic)\n",
		res.Ops, res.WallOpsPerSec, res.AllocsPerOp, res.CacheHitRate,
		res.SimSecondsPerOp, res.PJPerBit)
}

// WriteDRAMBenchResultJSON writes an already-computed benchmark result,
// so a caller can both persist and gate one run.
func WriteDRAMBenchResultJSON(w io.Writer, res DRAMBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// GateDRAMBench compares a fresh benchmark against the committed
// baseline on the host-independent figures. Allocations, simulated time
// and energy may not regress beyond tolerance; the cache hit rate may
// not fall more than tolerance below baseline. Improvements re-baseline
// by committing the fresh BENCH_dram.json.
func GateDRAMBench(fresh, baseline DRAMBenchResult, tolerance float64) error {
	if baseline.AllocsPerOp <= 0 || baseline.SimSecondsPerOp <= 0 || baseline.PJPerBit <= 0 {
		return fmt.Errorf("figures: DRAM baseline has non-positive gated figures — regenerate with -dramout")
	}
	if limit := baseline.AllocsPerOp * (1 + tolerance); fresh.AllocsPerOp > limit {
		return fmt.Errorf("figures: dram allocs/op regression: %.1f vs baseline %.1f (limit %.1f, +%.0f%%)",
			fresh.AllocsPerOp, baseline.AllocsPerOp, limit, tolerance*100)
	}
	if floor := baseline.CacheHitRate * (1 - tolerance); fresh.CacheHitRate < floor {
		return fmt.Errorf("figures: dram cache hit rate regression: %.3f vs baseline %.3f (floor %.3f, -%.0f%%)",
			fresh.CacheHitRate, baseline.CacheHitRate, floor, tolerance*100)
	}
	if limit := baseline.SimSecondsPerOp * (1 + tolerance); fresh.SimSecondsPerOp > limit {
		return fmt.Errorf("figures: dram simulated time regression: %.3e s/op vs baseline %.3e (limit %.3e, +%.0f%%)",
			fresh.SimSecondsPerOp, baseline.SimSecondsPerOp, limit, tolerance*100)
	}
	if limit := baseline.PJPerBit * (1 + tolerance); fresh.PJPerBit > limit {
		return fmt.Errorf("figures: dram energy regression: %.3f pJ/bit vs baseline %.3f (limit %.3f, +%.0f%%)",
			fresh.PJPerBit, baseline.PJPerBit, limit, tolerance*100)
	}
	return nil
}

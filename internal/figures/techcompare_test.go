package figures

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTechCompare(t *testing.T) {
	rows, err := TechCompare()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(techCompareTechs) * len(techCompareOps); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	byKey := map[string]TechCompareRow{}
	for _, r := range rows {
		if r.Latency <= 0 || r.GBps <= 0 || r.PJPerBit <= 0 {
			t.Errorf("%s %s: non-positive figures %+v", r.Tech, r.Op, r)
		}
		byKey[r.Tech+"/"+r.Op] = r
	}
	// The table's honesty checks: DRAM's staged TRA XOR must cost more
	// than its AND (3 activations and 11 copies vs 1 and 3), and a
	// 4-deep OR must cost the pairwise technologies more than a 2-deep
	// one while the wide-OR technologies pay only one more operand.
	if d, a := byKey["DRAM/xor"], byKey["DRAM/and"]; d.Latency <= a.Latency || d.PJPerBit <= a.PJPerBit {
		t.Errorf("DRAM xor (%v, %.2f pJ/bit) not costlier than and (%v, %.2f pJ/bit)",
			d.Latency, d.PJPerBit, a.Latency, a.PJPerBit)
	}
	for _, tech := range []string{"STT-MRAM", "DRAM"} {
		if deep, shallow := byKey[tech+"/or4"], byKey[tech+"/or2"]; deep.Latency < 2*shallow.Latency {
			t.Errorf("%s or4 latency %v < 2x or2 %v — chaining not priced", tech, deep.Latency, shallow.Latency)
		}
	}
	if deep, shallow := byKey["PCM/or4"], byKey["PCM/or2"]; deep.Latency >= 2*shallow.Latency {
		t.Errorf("PCM or4 latency %v >= 2x or2 %v — multi-row OR lost its one-step advantage",
			deep.Latency, shallow.Latency)
	}

	text := FormatTechCompare(rows)
	for _, wantStr := range []string{"PCM", "STT-MRAM", "ReRAM", "DRAM", "xor", "vs PCM"} {
		if !strings.Contains(text, wantStr) {
			t.Errorf("formatted table missing %q:\n%s", wantStr, text)
		}
	}
	var buf bytes.Buffer
	if err := WriteTechCompareCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(rows)+1 {
		t.Errorf("CSV lines = %d, want %d", lines, len(rows)+1)
	}
}

func TestDRAMBenchAndGate(t *testing.T) {
	res, err := DRAMBench()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != dramBenchRounds*3 {
		t.Errorf("Ops = %d, want %d", res.Ops, dramBenchRounds*3)
	}
	if res.CacheHitRate < 0.9 {
		t.Errorf("cache hit rate %.3f — repeated-op workload should be nearly all hits", res.CacheHitRate)
	}
	if res.SimSecondsPerOp <= 0 || res.PJPerBit <= 0 {
		t.Errorf("non-positive deterministic figures: %+v", res)
	}

	var buf bytes.Buffer
	if err := WriteDRAMBenchResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back DRAMBenchResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back != res {
		t.Errorf("JSON round trip changed the result: %+v != %+v", back, res)
	}

	// A fresh run gates cleanly against itself...
	if err := GateDRAMBench(res, res, 0.15); err != nil {
		t.Errorf("self-gate failed: %v", err)
	}
	// ...and each gated figure trips individually.
	worse := res
	worse.AllocsPerOp = res.AllocsPerOp * 2
	if err := GateDRAMBench(worse, res, 0.15); err == nil {
		t.Error("doubled allocs/op passed the gate")
	}
	worse = res
	worse.CacheHitRate = res.CacheHitRate / 2
	if err := GateDRAMBench(worse, res, 0.15); err == nil {
		t.Error("halved cache hit rate passed the gate")
	}
	worse = res
	worse.SimSecondsPerOp = res.SimSecondsPerOp * 2
	if err := GateDRAMBench(worse, res, 0.15); err == nil {
		t.Error("doubled simulated time passed the gate")
	}
	worse = res
	worse.PJPerBit = res.PJPerBit * 2
	if err := GateDRAMBench(worse, res, 0.15); err == nil {
		t.Error("doubled energy passed the gate")
	}
	if err := GateDRAMBench(res, DRAMBenchResult{}, 0.15); err == nil {
		t.Error("zero baseline accepted — must demand regeneration")
	}
}

package figures

import (
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWriteFig9CSV(t *testing.T) {
	rows, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFig9CSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	// 11 lengths × 7 depths + header.
	if len(recs) != 11*7+1 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "len_log2" || len(recs[1]) != 4 {
		t.Errorf("header/shape wrong: %v", recs[0])
	}
}

func TestWriteComparisonCSV(t *testing.T) {
	rows := fig10(t)
	var sb strings.Builder
	if err := WriteComparisonCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 12 { // 11 workloads + header
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][2] != "S-DRAM" || recs[0][5] != "Pinatubo-128" {
		t.Errorf("header %v", recs[0])
	}
}

func TestWriteFig12CSV(t *testing.T) {
	rows, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFig12CSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 6*2+1 { // 6 workloads × 2 metrics + header
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][len(recs[0])-1] != "Ideal" {
		t.Errorf("header %v", recs[0])
	}
}

func TestWriteFig13CSV(t *testing.T) {
	res, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFig13CSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 2+5+1 { // totals + 5 breakdown entries + header
		t.Fatalf("%d records", len(recs))
	}
	if recs[1][0] != "pinatubo-total" {
		t.Errorf("first row %v", recs[1])
	}
}

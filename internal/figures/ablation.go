package figures

import (
	"fmt"
	"strings"

	"pinatubo/internal/area"
	"pinatubo/internal/chansim"
	"pinatubo/internal/ddr"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// This file holds the ablation studies DESIGN.md calls out: the design
// choices the paper fixes (32:1 column mux, 128-row OR depth, PCM) swept
// across their plausible ranges so the sensitivity of the headline results
// is visible.

// DepthAblationRow is one point of the OR-depth sweep.
type DepthAblationRow struct {
	Depth int
	// GmeanSpeedup is the bitwise-speedup gmean over the five Vector
	// workloads, normalised to the SIMD baseline.
	GmeanSpeedup float64
}

// DepthAblation sweeps the one-step OR depth (the paper picks 128 for PCM,
// 2 for STT-MRAM) over the Vector workloads. It shows where the returns
// of deeper multi-row sensing saturate — and that even depth 4 already
// beats the chained 2-row design.
func DepthAblation() ([]DepthAblationRow, error) {
	simdEng, err := newSIMDPCM()
	if err != nil {
		return nil, err
	}
	var traces []*workload.Trace
	for _, vw := range VectorWorkloads() {
		tr, err := BuildVectorTrace(vw)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	var out []DepthAblationRow
	for _, depth := range []int{2, 4, 8, 16, 32, 64, 128} {
		eng, err := pim.NewEngine(nvm.PCM, depth)
		if err != nil {
			return nil, err
		}
		var speedups []float64
		for _, tr := range traces {
			base, err := tr.Run(simdEng)
			if err != nil {
				return nil, err
			}
			res, err := tr.Run(eng)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, res.Speedup(base))
		}
		out = append(out, DepthAblationRow{Depth: depth, GmeanSpeedup: workload.Gmean(speedups)})
	}
	return out, nil
}

// MuxAblationRow is one point of the column-mux sweep.
type MuxAblationRow struct {
	MuxRatio int
	// GBps2Row / GBps128Row: one-op OR throughput at the full rank row.
	GBps2Row   float64
	GBps128Row float64
	// AreaFraction is Pinatubo's add-on area at this mux ratio (more SAs
	// per MAT → more reference/XOR circuitry).
	AreaFraction float64
}

// MuxAblation sweeps the SA-sharing ratio. The paper's NVM design point is
// 32:1 (turning point A); a smaller mux senses more bits per step (faster)
// but pays for more sense amplifiers and their Pinatubo add-ons.
func MuxAblation() ([]MuxAblationRow, error) {
	var out []MuxAblationRow
	for _, mux := range []int{8, 16, 32, 64} {
		geo := memarch.Default()
		geo.MuxRatio = mux
		eng, err := pim.NewEngineWithGeometry(nvm.PCM, 128, geo)
		if err != nil {
			return nil, err
		}
		row := MuxAblationRow{MuxRatio: mux}
		bits := geo.RowBits()
		for _, n := range []int{2, 128} {
			cost, err := eng.OpCost(workload.OpSpec{
				Op: sense.OpOR, Operands: n, Bits: bits, Placement: workload.PlaceIntra,
			})
			if err != nil {
				return nil, err
			}
			gbps := float64(n) * float64(bits) / 8 / cost.Seconds / 1e9
			if n == 2 {
				row.GBps2Row = gbps
			} else {
				row.GBps128Row = gbps
			}
		}
		o, err := area.Pinatubo(geo, nvm.Get(nvm.PCM), area.DefaultParams())
		if err != nil {
			return nil, err
		}
		row.AreaFraction = o.TotalFraction()
		out = append(out, row)
	}
	return out, nil
}

// TechAblationRow is one technology's result.
type TechAblationRow struct {
	Tech nvm.Tech
	// Depth is the effective one-step OR depth (margin-limited).
	Depth int
	// GmeanSpeedup over the Vector workloads vs a SIMD baseline attached
	// to the same memory technology.
	GmeanSpeedup float64
}

// TechAblation compares Pinatubo built on each NVM technology, each
// against a SIMD processor using the same memory. STT-MRAM's fast array
// cannot compensate for its 2-row sensing cap on multi-row workloads —
// the quantitative form of the paper's technology discussion.
func TechAblation() ([]TechAblationRow, error) {
	var traces []*workload.Trace
	for _, vw := range VectorWorkloads() {
		tr, err := BuildVectorTrace(vw)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	var out []TechAblationRow
	for _, p := range nvm.All() {
		eng, err := pim.NewEngine(p.Tech, 128) // clamped to the tech's limit
		if err != nil {
			return nil, err
		}
		simdEng, err := newSIMDFor(p.Tech)
		if err != nil {
			return nil, err
		}
		var speedups []float64
		for _, tr := range traces {
			base, err := tr.Run(simdEng)
			if err != nil {
				return nil, err
			}
			res, err := tr.Run(eng)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, res.Speedup(base))
		}
		out = append(out, TechAblationRow{
			Tech:         p.Tech,
			Depth:        eng.MaxRows(),
			GmeanSpeedup: workload.Gmean(speedups),
		})
	}
	return out, nil
}

// FormatAblations renders all three studies.
func FormatAblations(depth []DepthAblationRow, mux []MuxAblationRow, tech []TechAblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation A — one-step OR depth (Vector workloads, gmean speedup vs SIMD)\n")
	for _, r := range depth {
		fmt.Fprintf(&sb, "  depth %3d: %8.1fx\n", r.Depth, r.GmeanSpeedup)
	}
	sb.WriteString("\nAblation B — SA column-mux ratio (2^19-bit OR throughput / add-on area)\n")
	for _, r := range mux {
		fmt.Fprintf(&sb, "  mux %2d:1  2-row %8.1f GBps  128-row %9.1f GBps  area %+.2f%%\n",
			r.MuxRatio, r.GBps2Row, r.GBps128Row, r.AreaFraction*100)
	}
	sb.WriteString("\nAblation C — cell technology (Vector workloads, gmean speedup vs same-memory SIMD)\n")
	for _, r := range tech {
		fmt.Fprintf(&sb, "  %-9s depth %3d: %8.1fx\n", r.Tech, r.Depth, r.GmeanSpeedup)
	}
	return sb.String()
}

// ConcurrencyRow is one point of the in-flight-requests sweep.
type ConcurrencyRow struct {
	Depth     int       // operand rows of the template OR
	InFlight  []int     // swept k values
	OpsPerSec []float64 // channel throughput at each k
	Saturate  int       // k beyond which throughput gains < 5%/step
}

// ConcurrencyAblation drives the discrete-event channel simulator with
// real controller command sequences to measure how many Pinatubo requests
// one channel can genuinely overlap across banks — validating that the
// trace evaluation's Parallelism = channels assumption is conservative.
func ConcurrencyAblation() ([]ConcurrencyRow, error) {
	mem, err := memarch.NewMemory(memarch.Default(), nvm.Get(nvm.PCM))
	if err != nil {
		return nil, err
	}
	ctl, err := pim.NewController(mem, 0)
	if err != nil {
		return nil, err
	}
	tech := nvm.Get(nvm.PCM)
	ks := []int{1, 2, 4, 8, 16, 32}
	var out []ConcurrencyRow
	for _, depth := range []int{2, 128} {
		srcs := make([]memarch.RowAddr, depth)
		for i := range srcs {
			srcs[i] = memarch.RowAddr{Subarray: 0, Row: i}
		}
		dst := memarch.RowAddr{Subarray: 0, Row: memarch.Default().RowsPerSubarray - 1}
		res, err := ctl.Execute(sense.OpOR, srcs, memarch.Default().RowBits(), &dst)
		if err != nil {
			return nil, err
		}
		req := chansim.FromDDR(fmt.Sprintf("or%d", depth), res.Commands,
			tech.Timing, ddr.DefaultBus(), memarch.Default().BanksPerChip)
		curve, err := chansim.ThroughputCurve(req, ks)
		if err != nil {
			return nil, err
		}
		sat, err := chansim.SaturationPoint(req, ks, 0.05)
		if err != nil {
			return nil, err
		}
		out = append(out, ConcurrencyRow{
			Depth:     depth,
			InFlight:  append([]int(nil), ks...),
			OpsPerSec: curve,
			Saturate:  sat,
		})
	}
	return out, nil
}

// FormatConcurrency renders the concurrency ablation.
func FormatConcurrency(rows []ConcurrencyRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation D — per-channel request concurrency (discrete-event command bus)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %3d-row OR: ", r.Depth)
		for i, k := range r.InFlight {
			fmt.Fprintf(&sb, "k=%-2d %6.2f Mops/s  ", k, r.OpsPerSec[i]/1e6)
		}
		fmt.Fprintf(&sb, "(saturates ~k=%d)\n", r.Saturate)
	}
	return sb.String()
}

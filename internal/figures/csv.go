package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers for every figure, so the regenerated data can be plotted
// with any external tool (cmd/figures -csv).

// WriteFig9CSV emits columns: len_log2, rows, gbps, region.
func WriteFig9CSV(w io.Writer, rows []Fig9Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"len_log2", "rows", "gbps", "region"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.LenLog),
			strconv.Itoa(r.Rows),
			strconv.FormatFloat(r.GBps, 'f', 3, 64),
			r.Region,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteComparisonCSV emits Fig. 10/11-style rows: group, workload, then one
// column per engine in figure order.
func WriteComparisonCSV(w io.Writer, rows []ComparisonRow) error {
	cw := csv.NewWriter(w)
	header := append([]string{"group", "workload"}, EngineOrder...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Group, r.Workload}
		for _, e := range EngineOrder {
			rec = append(rec, strconv.FormatFloat(r.Values[e], 'f', 3, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig12CSV emits: group, workload, metric (speedup|energy), engines.
func WriteFig12CSV(w io.Writer, rows []Fig12Row) error {
	cw := csv.NewWriter(w)
	header := append([]string{"group", "workload", "metric"}, Fig12Order...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		for _, metric := range []struct {
			name string
			vals map[string]float64
		}{{"speedup", r.Speedup}, {"energy", r.EnergySaving}} {
			rec := []string{r.Group, r.Workload, metric.name}
			for _, e := range Fig12Order {
				rec = append(rec, strconv.FormatFloat(metric.vals[e], 'f', 4, 64))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig13CSV emits: component, fraction.
func WriteFig13CSV(w io.Writer, res *Fig13Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"component", "fraction"}); err != nil {
		return err
	}
	rows := [][]string{
		{"pinatubo-total", fmt.Sprintf("%.5f", res.PinatuboFraction)},
		{"acpim-total", fmt.Sprintf("%.5f", res.ACPIMFraction)},
	}
	for _, e := range res.Breakdown {
		rows = append(rows, []string{e.Name, fmt.Sprintf("%.5f", e.Fraction)})
	}
	for _, rec := range rows {
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"pinatubo"
	"pinatubo/internal/bitvec"
)

// This file holds the ECC sweep: read-back verification and the in-array
// SECDED path side by side across injected sense-error rates. The fault
// sweep showed correctness is buyable but the read-back tax is ~44x even on
// perfect hardware; this sweep shows the SECDED path prices verification at
// a few command-bus slots instead, while keeping the same bit-exactness
// contract (single-bit errors corrected in the array, double-bit syndromes
// escalated to the read-back ladder).

// ECCSweepRow is one (rate, verification mode) point.
type ECCSweepRow struct {
	// Rate is the configured sense-flip probability per bit at the margin
	// floor (SenseFlipRate).
	Rate float64
	// Mode is the verification mode ("readback" or "ecc").
	Mode string
	// GBps is the effective operand bandwidth of 128-row ORs including all
	// verification, correction and degradation traffic.
	GBps float64
	// Overhead is GBps(unverified, fault-free) / GBps — the price of the
	// verification mode relative to trusting the hardware outright.
	Overhead float64
	// Injected flips and the layer's response, summed over the run.
	SenseFlips       int64
	Verifies         int64
	EccDecodes       int64
	EccCorrected     int64
	EccUncorrectable int64
	Retries          int64
	HostFallbacks    int64
	// WrongWords counts result words that disagree with the host golden
	// model. The contract is that this is zero at every rate in both modes.
	WrongWords int
}

// eccSweepPoint runs the standard deep-OR batch under one configuration and
// returns its bandwidth and outcome. VerifyOff at rate 0 is the unverified
// baseline the Overhead column is normalised against.
func eccSweepPoint(rate float64, mode pinatubo.VerifyMode) (ECCSweepRow, error) {
	const (
		bits = 1 << 16
		ops  = 4
	)
	w := bitvec.WordsFor(bits)
	cfg := pinatubo.DefaultConfig()
	cfg.Fault = pinatubo.FaultConfig{Seed: 1, SenseFlipRate: rate}
	cfg.Resilience.Verify = mode
	sys, err := pinatubo.New(cfg)
	if err != nil {
		return ECCSweepRow{}, err
	}
	srcs, err := sys.AllocGroup(128, bits)
	if err != nil {
		return ECCSweepRow{}, err
	}
	rng := rand.New(rand.NewSource(99))
	golden := make([]uint64, w)
	words := make([]uint64, w)
	for _, v := range srcs {
		for j := range words {
			words[j] = rng.Uint64()
			golden[j] |= words[j]
		}
		if _, err := sys.Write(v, words); err != nil {
			return ECCSweepRow{}, err
		}
	}
	dst, err := sys.Alloc(bits)
	if err != nil {
		return ECCSweepRow{}, err
	}

	row := ECCSweepRow{Rate: rate, Mode: mode.String()}
	var seconds float64
	for k := 0; k < ops; k++ {
		res, err := sys.Or(dst, srcs...)
		if err != nil {
			return ECCSweepRow{}, err
		}
		seconds += res.Latency.Seconds()
	}
	got, _, err := sys.Read(dst)
	if err != nil {
		return ECCSweepRow{}, err
	}
	for j := range golden {
		if got[j] != golden[j] {
			row.WrongWords++
		}
	}
	st := sys.FaultStats()
	row.SenseFlips = st.SenseFlips
	row.Verifies = st.Verifies
	row.EccDecodes = st.EccDecodes
	row.EccCorrected = st.EccCorrectedBits
	row.EccUncorrectable = st.EccUncorrectables
	row.Retries = st.Retries
	row.HostFallbacks = st.HostFallbacks
	row.GBps = float64(ops) * 128 * float64(bits) / 8 / seconds / 1e9
	return row, nil
}

// ECCSweep runs the deep-OR batch at each injected error rate under both
// read-back and SECDED verification, normalised against one unverified
// fault-free baseline run.
func ECCSweep(rates []float64) ([]ECCSweepRow, error) {
	base, err := eccSweepPoint(0, pinatubo.VerifyOff)
	if err != nil {
		return nil, err
	}
	var out []ECCSweepRow
	for _, rate := range rates {
		for _, mode := range []pinatubo.VerifyMode{pinatubo.VerifyReadback, pinatubo.VerifyECC} {
			row, err := eccSweepPoint(rate, mode)
			if err != nil {
				return nil, err
			}
			if base.GBps > 0 {
				row.Overhead = base.GBps / row.GBps
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// FormatECCSweep renders the sweep as an aligned text table.
func FormatECCSweep(rows []ECCSweepRow) string {
	var sb strings.Builder
	sb.WriteString("ECC sweep — 128-row OR bandwidth: read-back vs in-array SECDED verification\n")
	sb.WriteString("  (overhead is relative to the unverified fault-free baseline; results checked\n")
	sb.WriteString("   against the host golden model at every point)\n")
	for _, r := range rows {
		label := "fault-free"
		if r.Rate > 0 {
			label = fmt.Sprintf("rate %.0e", r.Rate)
		}
		status := "exact"
		if r.WrongWords > 0 {
			status = fmt.Sprintf("%d WRONG WORDS", r.WrongWords)
		}
		fmt.Fprintf(&sb, "  %-10s %-8s %8.1f GBps  %6.2fx overhead  flips %-6d decodes %-5d corrected %-5d escalated %-4d readbacks %-4d retries %-4d %s\n",
			label, r.Mode, r.GBps, r.Overhead, r.SenseFlips, r.EccDecodes,
			r.EccCorrected, r.EccUncorrectable, r.Verifies, r.Retries, status)
	}
	return sb.String()
}

// WriteECCSweepCSV emits: rate, mode, gbps, overhead, flips, ecc_decodes,
// ecc_corrected, ecc_uncorrectable, readback_verifies, retries,
// host_fallbacks, wrong_words.
func WriteECCSweepCSV(w io.Writer, rows []ECCSweepRow) error {
	cw := csv.NewWriter(w)
	header := []string{"rate", "mode", "gbps", "overhead", "flips", "ecc_decodes",
		"ecc_corrected", "ecc_uncorrectable", "readback_verifies", "retries",
		"host_fallbacks", "wrong_words"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.FormatFloat(r.Rate, 'e', 1, 64),
			r.Mode,
			strconv.FormatFloat(r.GBps, 'f', 3, 64),
			strconv.FormatFloat(r.Overhead, 'f', 3, 64),
			strconv.FormatInt(r.SenseFlips, 10),
			strconv.FormatInt(r.EccDecodes, 10),
			strconv.FormatInt(r.EccCorrected, 10),
			strconv.FormatInt(r.EccUncorrectable, 10),
			strconv.FormatInt(r.Verifies, 10),
			strconv.FormatInt(r.Retries, 10),
			strconv.FormatInt(r.HostFallbacks, 10),
			strconv.Itoa(r.WrongWords),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

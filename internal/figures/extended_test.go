package figures

import (
	"strings"
	"testing"

	"pinatubo/internal/workload"
)

func TestExtendedWorkloads(t *testing.T) {
	rows, err := Extended()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d extended workloads", len(rows))
	}
	for _, r := range rows {
		// Pinatubo-128 accelerates the bitwise phase on both domains...
		if r.Speedup["Pinatubo-128"] < 10 {
			t.Errorf("%s: Pinatubo-128 bitwise speedup %.1fx implausibly low",
				r.Workload, r.Speedup["Pinatubo-128"])
		}
		// ...never slows the whole application down, and stays under the
		// Ideal bound.
		for name, v := range r.Overall {
			if v < 0.99 {
				t.Errorf("%s: %s overall %.3fx — slowdown", r.Workload, name, v)
			}
			if v > r.IdealOverall*1.0001 {
				t.Errorf("%s: %s overall %.3fx exceeds ideal %.3fx",
					r.Workload, name, v, r.IdealOverall)
			}
		}
		// Amdahl bound sanity: the segmentation stream is mask-build bound.
		if r.Workload == "segmentation" && r.IdealOverall > 1.2 {
			t.Errorf("segmentation ideal %.3fx — CPU mask building should dominate", r.IdealOverall)
		}
	}
	s := FormatExtended(rows)
	if !strings.Contains(s, "kmers") || !strings.Contains(s, "segmentation") {
		t.Error("format incomplete")
	}
}

func TestExtendedTracesValid(t *testing.T) {
	km, err := KmerTrace()
	if err != nil {
		t.Fatal(err)
	}
	sg, err := SegmentationTrace()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []*workload.Trace{km, sg} {
		if len(tr.Ops) == 0 || tr.Other.Seconds <= 0 {
			t.Errorf("%s: empty trace", tr.Name)
		}
		for i, op := range tr.Ops {
			if err := op.Validate(); err != nil {
				t.Fatalf("%s op %d: %v", tr.Name, i, err)
			}
		}
	}
}

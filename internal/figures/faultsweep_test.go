package figures

import (
	"bytes"
	"strings"
	"testing"
)

func TestFaultSweep(t *testing.T) {
	// One fault-free point and one hot enough that the ladder must engage.
	rows, err := FaultSweep([]float64{0, 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.WrongWords != 0 {
			t.Fatalf("rate %g returned %d wrong words — resilience contract broken", r.Rate, r.WrongWords)
		}
		if r.GBps <= 0 {
			t.Fatalf("rate %g: bandwidth %g", r.Rate, r.GBps)
		}
	}
	base, hot := rows[0], rows[1]
	if base.SenseFlips != 0 || base.Retries != 0 || base.Slowdown != 1 {
		t.Fatalf("fault-free baseline shows ladder activity: %+v", base)
	}
	if hot.SenseFlips == 0 || hot.Retries == 0 {
		t.Fatalf("1e-4 point shows no faults or retries: %+v", hot)
	}
	if hot.Slowdown <= 1 {
		t.Fatalf("verification traffic should cost bandwidth: slowdown %g", hot.Slowdown)
	}

	text := FormatFaultSweep(rows)
	if !strings.Contains(text, "fault-free") || !strings.Contains(text, "exact") {
		t.Fatalf("format output missing labels:\n%s", text)
	}

	var buf bytes.Buffer
	if err := WriteFaultSweepCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "rate,gbps") {
		t.Fatalf("csv output malformed:\n%s", buf.String())
	}
}

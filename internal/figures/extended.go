package figures

import (
	"fmt"
	"strings"

	"pinatubo/internal/bioseq"
	"pinatubo/internal/bitvec"
	"pinatubo/internal/imgproc"
	"pinatubo/internal/memarch"
	"pinatubo/internal/pimrt"
	"pinatubo/internal/workload"
)

// defaultMapper builds the default-geometry logical mapper.
func defaultMapper() (pimrt.Mapper, error) {
	return pimrt.NewMapper(memarch.Default())
}

// Extended workloads: the two application domains the paper's introduction
// motivates but does not evaluate (bio-informatics and image processing),
// run through the same engine matrix as Figs. 10/12. They are extensions —
// kept out of the 11-workload paper set so the reproduced figures stay
// faithful.

// KmerTrace builds the bio-informatics trace: pan-genome unions, core
// intersections and containment screens over a family of related genomes.
func KmerTrace() (*workload.Trace, error) {
	const (
		members   = 64
		genomeLen = 20000
		k         = 9
	)
	fam, err := bioseq.NewFamily(members, genomeLen, k, 0xB105)
	if err != nil {
		return nil, err
	}
	mapper, err := defaultMapper()
	if err != nil {
		return nil, err
	}
	cpu := bioseq.DefaultCPUWork()
	tr := &workload.Trace{Name: "kmers"}
	// Building the spectra is the CPU-side cost of the application.
	cpu.PowerW = bioseq.DefaultCPUWork().PowerW
	tr.Other.Seconds += float64(members*genomeLen) * cpu.SecPerBase
	tr.Other.Joules += tr.Other.Seconds * cpu.PowerW

	panel, err := fam.Union(mapper, cpu, tr)
	if err != nil {
		return nil, err
	}
	fam.Core(cpu, tr)
	// Pairwise similarity over a sample of member pairs.
	for i := 0; i < members; i += 4 {
		if _, err := fam.Jaccard(i, (i+members/2)%members, cpu, tr); err != nil {
			return nil, err
		}
	}
	// Screen the whole family against the panel (contamination check).
	if _, err := bioseq.Screen(panel, fam.Spectra, cpu, tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// SegmentationTrace builds the image-processing trace: color-class
// segmentation of a stream of synthetic camera frames.
func SegmentationTrace() (*workload.Trace, error) {
	const frames = 24
	classes := []imgproc.ColorClass{
		{Name: "ball", Lo: [3]uint8{180, 140, 160}, Hi: [3]uint8{255, 200, 220}},
		{Name: "field", Lo: [3]uint8{80, 60, 60}, Hi: [3]uint8{140, 110, 110}},
		{Name: "line", Lo: [3]uint8{200, 100, 100}, Hi: [3]uint8{255, 139, 159}},
	}
	cpu := imgproc.DefaultCPUWork()
	tr := &workload.Trace{Name: "segmentation"}
	for f := 0; f < frames; f++ {
		im, err := imgproc.Synthetic(512, 512, []imgproc.Blob{
			{CX: 100 + 9*f, CY: 140, R: 28, Color: [3]uint8{220, 170, 190}},
			{CX: 360, CY: 300, R: 90, Color: [3]uint8{100, 80, 80}},
		}, int64(f))
		if err != nil {
			return nil, err
		}
		var masks []*bitvec.Vector
		for _, class := range classes {
			m, err := imgproc.Segment(im, class, cpu, tr)
			if err != nil {
				return nil, err
			}
			masks = append(masks, m)
		}
		if _, err := imgproc.Union(masks, cpu, tr); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// ExtendedRow is one extended workload's engine-matrix result.
type ExtendedRow struct {
	Workload     string
	Speedup      map[string]float64 // bitwise speedup vs SIMD
	Overall      map[string]float64 // overall speedup vs SIMD
	IdealOverall float64
}

// Extended runs both extension traces on the engine matrix.
func Extended() ([]ExtendedRow, error) {
	engines, err := Engines()
	if err != nil {
		return nil, err
	}
	builders := []func() (*workload.Trace, error){KmerTrace, SegmentationTrace}
	var out []ExtendedRow
	for _, build := range builders {
		tr, err := build()
		if err != nil {
			return nil, err
		}
		base, err := tr.Run(engines.SIMD)
		if err != nil {
			return nil, err
		}
		row := ExtendedRow{
			Workload: tr.Name,
			Speedup:  map[string]float64{},
			Overall:  map[string]float64{},
		}
		for _, e := range engines.Compared() {
			res, err := tr.Run(e)
			if err != nil {
				return nil, err
			}
			row.Speedup[e.Name()] = res.Speedup(base)
			row.Overall[e.Name()] = res.OverallSpeedup(base)
		}
		ideal, err := tr.Run(workload.Ideal{})
		if err != nil {
			return nil, err
		}
		row.IdealOverall = ideal.OverallSpeedup(base)
		out = append(out, row)
	}
	return out, nil
}

// FormatExtended renders the extension table.
func FormatExtended(rows []ExtendedRow) string {
	var sb strings.Builder
	sb.WriteString("Extended workloads (paper motivation domains, beyond its evaluation)\n")
	fmt.Fprintf(&sb, "%-14s", "workload")
	for _, e := range EngineOrder {
		fmt.Fprintf(&sb, "%14s", e)
	}
	fmt.Fprintf(&sb, "%14s\n", "Ideal(ovr)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s", r.Workload+" (bit)")
		for _, e := range EngineOrder {
			fmt.Fprintf(&sb, "%13.1fx", r.Speedup[e])
		}
		sb.WriteString("\n")
		fmt.Fprintf(&sb, "%-14s", "  (overall)")
		for _, e := range EngineOrder {
			fmt.Fprintf(&sb, "%13.3fx", r.Overall[e])
		}
		fmt.Fprintf(&sb, "%13.3fx\n", r.IdealOverall)
	}
	return sb.String()
}

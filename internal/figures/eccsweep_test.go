package figures

import (
	"bytes"
	"strings"
	"testing"
)

func TestECCSweep(t *testing.T) {
	// One fault-free point (the headline overhead comparison) and one hot
	// enough that SECDED must both correct and escalate.
	rows, err := ECCSweep([]float64{0, 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byKey := map[string]ECCSweepRow{}
	for _, r := range rows {
		if r.WrongWords != 0 {
			t.Fatalf("rate %g mode %s returned %d wrong words — verification contract broken",
				r.Rate, r.Mode, r.WrongWords)
		}
		if r.GBps <= 0 {
			t.Fatalf("rate %g mode %s: bandwidth %g", r.Rate, r.Mode, r.GBps)
		}
		key := "cold-" + r.Mode
		if r.Rate > 0 {
			key = "hot-" + r.Mode
		}
		byKey[key] = r
	}

	// The point of the PR: SECDED verification is nearly free on clean
	// hardware, where read-back costs tens of x.
	if r := byKey["cold-ecc"]; r.Overhead > 1.1 {
		t.Errorf("zero-fault ECC overhead %.3fx exceeds the 1.1x budget", r.Overhead)
	}
	if r := byKey["cold-readback"]; r.Overhead < 2 {
		t.Errorf("zero-fault read-back overhead %.3fx suspiciously low", r.Overhead)
	}
	if r := byKey["cold-ecc"]; r.EccDecodes == 0 || r.EccCorrected != 0 || r.EccUncorrectable != 0 {
		t.Errorf("clean ECC run shows wrong syndrome activity: %+v", r)
	}

	hot := byKey["hot-ecc"]
	if hot.EccCorrected == 0 {
		t.Errorf("hot ECC run corrected nothing in-array: %+v", hot)
	}
	if hot.EccUncorrectable == 0 || hot.Verifies <= byKey["cold-ecc"].Verifies {
		t.Errorf("hot ECC run never escalated a double-bit syndrome to the ladder: %+v", hot)
	}

	text := FormatECCSweep(rows)
	if !strings.Contains(text, "fault-free") || !strings.Contains(text, "exact") ||
		!strings.Contains(text, "ecc") || !strings.Contains(text, "readback") {
		t.Fatalf("format output missing labels:\n%s", text)
	}

	var buf bytes.Buffer
	if err := WriteECCSweepCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "rate,mode") {
		t.Fatalf("csv output malformed:\n%s", buf.String())
	}
}

package figures

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"pinatubo"
)

// This file holds the batch-execution sweep: System.Batch exercised over a
// widening op mix on a geometry that spreads operations across banks, so
// the event-driven scheduler can overlap them. Each point is cross-checked
// against the planner: at fault rate 0 the batch makespan must reproduce
// Plan's prediction bit-identically — the two share one lowering path
// through the cmdstream IR, so a mismatch is a scheduler bug, not noise.

// DefaultBatchKs is the batch-size sweep cmd/figures runs.
var DefaultBatchKs = []int{1, 2, 4, 8, 16}

// BatchRow is one batch-size point of the sweep.
type BatchRow struct {
	// K is the number of deep-OR operations in the batch.
	K int
	// Shards is how many isolated memory shards the data effects ran on.
	Shards int
	// Sequential is the back-to-back time of the K requests with no
	// overlap.
	Sequential time.Duration
	// Makespan is the scheduled end-to-end time of the batch.
	Makespan time.Duration
	// Speedup is Sequential / Makespan.
	Speedup float64
	// PlanMakespan is what Plan predicted for K in-flight ops of this
	// shape, and PlanMatch whether the batch reproduced it bit-identically.
	PlanMakespan time.Duration
	PlanMatch    bool
}

// batchSpreadGeometry is a single-channel, single-rank organisation with
// one subarray per bank, so consecutive full-row allocation groups land in
// consecutive banks and a K-op batch exercises K independent bank
// resources.
func batchSpreadGeometry() pinatubo.Geometry {
	return pinatubo.Geometry{
		Channels:         1,
		RanksPerChannel:  1,
		ChipsPerRank:     8,
		BanksPerChip:     16,
		SubarraysPerBank: 1,
		MatsPerSubarray:  16,
		RowsPerSubarray:  256,
		MatRowBits:       4096,
		MuxRatio:         32,
	}
}

// batchDeepORs allocates k maximally-deep full-row OR operations, one per
// bank, on a fresh spread-geometry system.
func batchDeepORs(k int) (*pinatubo.System, []pinatubo.BatchOp, error) {
	cfg := pinatubo.DefaultConfig()
	cfg.Geometry = batchSpreadGeometry()
	sys, err := pinatubo.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	ops := make([]pinatubo.BatchOp, k)
	for i := range ops {
		srcs, err := sys.AllocGroup(sys.MaxORRows(), sys.RowBits())
		if err != nil {
			return nil, nil, err
		}
		dst, err := sys.Alloc(sys.RowBits())
		if err != nil {
			return nil, nil, err
		}
		ops[i] = pinatubo.BatchOp{Op: pinatubo.OpOr, Dst: dst, Srcs: srcs}
	}
	return sys, ops, nil
}

// BatchSweep runs a K-deep-OR batch at each batch size and cross-checks
// every makespan against the planner's prediction.
func BatchSweep(ks []int) ([]BatchRow, error) {
	var out []BatchRow
	for _, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("figures: batch size %d", k)
		}
		sys, ops, err := batchDeepORs(k)
		if err != nil {
			return nil, err
		}
		br, err := sys.Batch(ops, pinatubo.WithArbiter(pinatubo.ArbFIFO))
		if err != nil {
			return nil, err
		}
		rep, err := sys.Plan(pinatubo.OpOr, k, 0, pinatubo.WithArbiter(pinatubo.ArbFIFO))
		if err != nil {
			return nil, err
		}
		plan := rep.Points[len(rep.Points)-1].Makespan
		out = append(out, BatchRow{
			K:            k,
			Shards:       br.Shards,
			Sequential:   br.Sequential,
			Makespan:     br.Makespan,
			Speedup:      br.Speedup,
			PlanMakespan: plan,
			PlanMatch:    br.Makespan == plan,
		})
	}
	return out, nil
}

// FormatBatch renders the sweep as an aligned text table.
func FormatBatch(rows []BatchRow) string {
	var sb strings.Builder
	sb.WriteString("Batch execution — K deep ORs spread across banks, one scheduled batch\n")
	sb.WriteString("  (makespan cross-checked bit-identically against the planner at every K)\n")
	for _, r := range rows {
		match := "plan match"
		if !r.PlanMatch {
			match = fmt.Sprintf("PLAN MISMATCH (plan %v)", r.PlanMakespan)
		}
		fmt.Fprintf(&sb, "  k=%-3d shards %-3d sequential %10v  makespan %10v  speedup %5.2fx  %s\n",
			r.K, r.Shards, r.Sequential, r.Makespan, r.Speedup, match)
	}
	return sb.String()
}

// WriteBatchCSV emits: k, shards, sequential_s, makespan_s, speedup,
// plan_match.
func WriteBatchCSV(w io.Writer, rows []BatchRow) error {
	cw := csv.NewWriter(w)
	header := []string{"k", "shards", "sequential_s", "makespan_s", "speedup", "plan_match"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.K),
			strconv.Itoa(r.Shards),
			strconv.FormatFloat(r.Sequential.Seconds(), 'e', 6, 64),
			strconv.FormatFloat(r.Makespan.Seconds(), 'e', 6, 64),
			strconv.FormatFloat(r.Speedup, 'f', 3, 64),
			strconv.FormatBool(r.PlanMatch),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// BatchBenchResult is the CI smoke benchmark: simulated-time throughput of
// the largest sweep point, sequential vs batched. Every figure is derived
// from the deterministic simulated clock, so the committed baseline is
// reproducible on any machine and the gate measures model regressions, not
// host noise.
type BatchBenchResult struct {
	K                   int     `json:"k"`
	SequentialOpsPerSec float64 `json:"sequential_ops_per_sec"`
	BatchedOpsPerSec    float64 `json:"batched_ops_per_sec"`
	Speedup             float64 `json:"speedup"`
	// MakespanSeconds is the batched schedule's simulated end-to-end time —
	// the figure the CI regression gate compares against the committed
	// baseline.
	MakespanSeconds float64 `json:"makespan_s"`
}

// BatchBench runs the largest default sweep point and reports ops/s in
// simulated time for the back-to-back and batched schedules.
func BatchBench() (BatchBenchResult, error) {
	k := DefaultBatchKs[len(DefaultBatchKs)-1]
	sys, ops, err := batchDeepORs(k)
	if err != nil {
		return BatchBenchResult{}, err
	}
	br, err := sys.Batch(ops, pinatubo.WithArbiter(pinatubo.ArbFIFO))
	if err != nil {
		return BatchBenchResult{}, err
	}
	res := BatchBenchResult{K: k, Speedup: br.Speedup, MakespanSeconds: br.Makespan.Seconds()}
	if s := br.Sequential.Seconds(); s > 0 {
		res.SequentialOpsPerSec = float64(k) / s
	}
	if m := br.Makespan.Seconds(); m > 0 {
		res.BatchedOpsPerSec = float64(k) / m
	}
	return res, nil
}

// WriteBatchBenchJSON runs BatchBench and writes its JSON to w (the CI
// BENCH_batch.json artifact).
func WriteBatchBenchJSON(w io.Writer) error {
	res, err := BatchBench()
	if err != nil {
		return err
	}
	return WriteBatchBenchResultJSON(w, res)
}

// WriteBatchBenchResultJSON writes an already-computed benchmark result,
// so a caller can both persist and gate one run.
func WriteBatchBenchResultJSON(w io.Writer, res BatchBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// GateBatchBench compares a fresh benchmark against the committed baseline
// and fails on a makespan regression beyond tolerance (0.15 = +15%). A
// faster makespan passes: improvements re-baseline by committing the fresh
// BENCH_batch.json.
func GateBatchBench(fresh, baseline BatchBenchResult, tolerance float64) error {
	if baseline.MakespanSeconds <= 0 {
		return fmt.Errorf("figures: baseline makespan %v is not positive — regenerate the baseline with -benchout",
			baseline.MakespanSeconds)
	}
	limit := baseline.MakespanSeconds * (1 + tolerance)
	if fresh.MakespanSeconds > limit {
		return fmt.Errorf("figures: batch makespan regression: %.6es vs baseline %.6es (limit %.6es, +%.0f%%)",
			fresh.MakespanSeconds, baseline.MakespanSeconds, limit, tolerance*100)
	}
	return nil
}

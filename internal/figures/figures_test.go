package figures

import (
	"strings"
	"testing"

	"pinatubo/internal/nvm"
	"pinatubo/internal/workload"
)

// The figure tests assert the paper's qualitative claims — who wins, where
// the crossovers fall — not absolute values (EXPERIMENTS.md records those).

func fig9Map(t *testing.T) map[[2]int]Fig9Row {
	t.Helper()
	rows, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	m := map[[2]int]Fig9Row{}
	for _, r := range rows {
		m[[2]int{r.LenLog, r.Rows}] = r
	}
	return m
}

func TestFig9MonotoneInDepth(t *testing.T) {
	m := fig9Map(t)
	for lenLog := 10; lenLog <= 20; lenLog++ {
		prev := 0.0
		for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
			r := m[[2]int{lenLog, n}]
			if r.GBps <= prev {
				t.Errorf("len 2^%d: %d-row OR (%.1f GBps) not faster than previous depth (%.1f)",
					lenLog, n, r.GBps, prev)
			}
			prev = r.GBps
		}
	}
}

func TestFig9TurningPointA(t *testing.T) {
	// Below 2^14 bits throughput grows ~linearly with length; above it the
	// column-group serialisation bends the curve (point A).
	m := fig9Map(t)
	for _, n := range []int{2, 128} {
		growthBefore := m[[2]int{14, n}].GBps / m[[2]int{13, n}].GBps
		growthAfter := m[[2]int{16, n}].GBps / m[[2]int{15, n}].GBps
		if growthBefore < 1.9 {
			t.Errorf("n=%d: growth below point A is %.2f, want ~2 (latency-flat region)", n, growthBefore)
		}
		if growthAfter >= growthBefore-0.05 {
			t.Errorf("n=%d: no slope drop at point A: %.2f then %.2f", n, growthBefore, growthAfter)
		}
	}
}

func TestFig9TurningPointB(t *testing.T) {
	// Beyond the 2^19-bit rank row, throughput flattens completely.
	m := fig9Map(t)
	for _, n := range []int{2, 128} {
		at19 := m[[2]int{19, n}].GBps
		at20 := m[[2]int{20, n}].GBps
		if ratio := at20 / at19; ratio < 0.95 || ratio > 1.05 {
			t.Errorf("n=%d: throughput changed %.2fx across point B, want flat", n, ratio)
		}
	}
}

func TestFig9Regions(t *testing.T) {
	m := fig9Map(t)
	if r := m[[2]int{10, 2}]; r.Region != "below-DDR-bus" {
		t.Errorf("short 2-row OR region %q, want below-DDR-bus (%.2f GBps)", r.Region, r.GBps)
	}
	if r := m[[2]int{19, 2}]; r.Region != "internal" {
		t.Errorf("long 2-row OR region %q want internal (%.2f GBps)", r.Region, r.GBps)
	}
	if r := m[[2]int{19, 128}]; r.Region != "beyond-internal" {
		t.Errorf("128-row OR region %q want beyond-internal (%.2f GBps) — DRAM can never reach this",
			r.Region, r.GBps)
	}
}

func TestFig9Format(t *testing.T) {
	rows, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	s := FormatFig9(rows)
	if !strings.Contains(s, "2^19") || !strings.Contains(s, "128") {
		t.Errorf("formatted table incomplete:\n%s", s)
	}
}

// fig10and11 runs the expensive comparison once for all dependent tests.
var figCache struct {
	f10, f11 []ComparisonRow
}

func fig10(t *testing.T) []ComparisonRow {
	t.Helper()
	if figCache.f10 == nil {
		rows, err := Fig10()
		if err != nil {
			t.Fatal(err)
		}
		figCache.f10 = rows
	}
	return figCache.f10
}

func fig11(t *testing.T) []ComparisonRow {
	t.Helper()
	if figCache.f11 == nil {
		rows, err := Fig11()
		if err != nil {
			t.Fatal(err)
		}
		figCache.f11 = rows
	}
	return figCache.f11
}

func TestFig10Shape(t *testing.T) {
	rows := fig10(t)
	if len(rows) != 11 {
		t.Fatalf("%d workloads, want 11 (Table 1)", len(rows))
	}
	g := Gmeans(rows)
	// Pinatubo-128 wins overall, by a wide margin.
	if g["Pinatubo-128"] < 2*g["S-DRAM"] {
		t.Errorf("Pinatubo-128 gmean %.1f should be well above S-DRAM %.1f (paper: 22x)",
			g["Pinatubo-128"], g["S-DRAM"])
	}
	if g["Pinatubo-128"] < 20 {
		t.Errorf("Pinatubo-128 gmean speedup %.1f implausibly low", g["Pinatubo-128"])
	}
	for _, r := range rows {
		// Every engine beats the CPU baseline on every workload, except
		// chained Pinatubo-2 which may only break even on graph workloads.
		for name, v := range r.Values {
			if v < 0.9 {
				t.Errorf("%s on %s: %.2fx — slower than the CPU", name, r.Workload, v)
			}
		}
		// AC-PIM is slower than Pinatubo(-128) in every single case.
		if r.Values["AC-PIM"] >= r.Values["Pinatubo-128"] {
			t.Errorf("%s: AC-PIM (%.1f) not slower than Pinatubo-128 (%.1f)",
				r.Workload, r.Values["AC-PIM"], r.Values["Pinatubo-128"])
		}
	}
}

func TestFig10RandomPlacementCollapse(t *testing.T) {
	// 14-16-7r: random placement demotes ops to inter-subarray/bank, so
	// Pinatubo-128 degenerates to roughly Pinatubo-2 (paper's observation).
	for _, r := range fig10(t) {
		if r.Workload != "14-16-7r" {
			continue
		}
		ratio := r.Values["Pinatubo-128"] / r.Values["Pinatubo-2"]
		if ratio > 3 {
			t.Errorf("random workload: Pinatubo-128/Pinatubo-2 = %.1f, want ~1", ratio)
		}
		// And far below its sequential twin.
		for _, seq := range fig10(t) {
			if seq.Workload == "14-16-7s" {
				if r.Values["Pinatubo-128"] > seq.Values["Pinatubo-128"]/5 {
					t.Errorf("random placement should collapse the multi-row advantage: %0.1f vs %0.1f",
						r.Values["Pinatubo-128"], seq.Values["Pinatubo-128"])
				}
			}
		}
		return
	}
	t.Fatal("14-16-7r row missing")
}

func TestFig10MultiRowDominatesOnSequential(t *testing.T) {
	for _, r := range fig10(t) {
		if r.Workload == "19-16-7s" {
			if r.Values["Pinatubo-128"] < 10*r.Values["Pinatubo-2"] {
				t.Errorf("128-row requests: Pinatubo-128 (%.0f) should crush Pinatubo-2 (%.0f)",
					r.Values["Pinatubo-128"], r.Values["Pinatubo-2"])
			}
			return
		}
	}
	t.Fatal("19-16-7s row missing")
}

func TestFig11ACPIMSavesLeast(t *testing.T) {
	// Paper: "AC-PIM never has a chance to save more energy than any of
	// the other three solutions" — analog computing beats digital.
	for _, r := range fig11(t) {
		ac := r.Values["AC-PIM"]
		for _, other := range []string{"S-DRAM", "Pinatubo-2", "Pinatubo-128"} {
			if ac > r.Values[other]*1.001 {
				t.Errorf("%s: AC-PIM saving %.1f exceeds %s %.1f",
					r.Workload, ac, other, r.Values[other])
			}
		}
	}
}

func TestFig11Pinatubo128Best(t *testing.T) {
	g := Gmeans(fig11(t))
	for _, other := range []string{"S-DRAM", "AC-PIM", "Pinatubo-2"} {
		if g["Pinatubo-128"] < g[other] {
			t.Errorf("Pinatubo-128 gmean energy saving %.0f below %s %.0f",
				g["Pinatubo-128"], other, g[other])
		}
	}
	if g["Pinatubo-128"] < 100 {
		t.Errorf("Pinatubo-128 gmean energy saving %.0f implausibly low", g["Pinatubo-128"])
	}
}

func TestFig11AllSave(t *testing.T) {
	for _, r := range fig11(t) {
		for name, v := range r.Values {
			if v < 1 {
				t.Errorf("%s on %s: energy saving %.2f < 1", name, r.Workload, v)
			}
		}
	}
}

func TestComparisonFormat(t *testing.T) {
	s := FormatComparison("title", fig10(t))
	if !strings.Contains(s, "gmean") || !strings.Contains(s, "Pinatubo-128") {
		t.Errorf("format incomplete:\n%s", s)
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d app workloads, want 6", len(rows))
	}
	for _, r := range rows {
		ideal := r.Speedup["Ideal"]
		p128 := r.Speedup["Pinatubo-128"]
		// Pinatubo almost achieves the ideal acceleration (paper).
		if p128 < 0.9*ideal {
			t.Errorf("%s: Pinatubo-128 %.3f far from ideal %.3f", r.Workload, p128, ideal)
		}
		if p128 > ideal*1.0001 {
			t.Errorf("%s: Pinatubo-128 %.3f exceeds ideal %.3f", r.Workload, p128, ideal)
		}
		// Overall gains are bounded by the bitwise fraction: single digits.
		if ideal > 10 {
			t.Errorf("%s: ideal speedup %.2f — bitwise fraction unrealistically high", r.Workload, ideal)
		}
		for name, v := range r.Speedup {
			if v < 0.9 {
				t.Errorf("%s: %s overall speedup %.3f < 1", r.Workload, name, v)
			}
		}
	}
	// dblp is the best graph workload; loose graphs gain little.
	byName := map[string]Fig12Row{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	if byName["dblp"].Speedup["Pinatubo-128"] <= byName["eswiki"].Speedup["Pinatubo-128"] {
		t.Error("dblp should out-gain the loose eswiki")
	}
	if v := byName["eswiki"].Speedup["Pinatubo-128"]; v > 1.2 {
		t.Errorf("loose graph gained %.2f, paper says ~1.0x", v)
	}
	if v := byName["dblp"].Speedup["Pinatubo-128"]; v < 1.15 || v > 1.8 {
		t.Errorf("dblp overall speedup %.2f outside the paper band (1.37x)", v)
	}
	// Database workloads land near the paper's 1.29x.
	if v := byName["fastbit-240"].Speedup["Pinatubo-128"]; v < 1.1 || v > 1.5 {
		t.Errorf("fastbit overall speedup %.2f outside the paper band (1.29x)", v)
	}
}

func TestFig12Gmeans(t *testing.T) {
	rows, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	sp := Fig12Gmeans(rows, "Graph", false)
	if sp["Pinatubo-128"] < 1.05 || sp["Pinatubo-128"] > 1.4 {
		t.Errorf("graph gmean speedup %.3f outside paper band (1.15x)", sp["Pinatubo-128"])
	}
	en := Fig12Gmeans(rows, "", true)
	if en["Pinatubo-128"] < 1.05 {
		t.Errorf("overall energy gmean %.3f below paper band (~1.11x)", en["Pinatubo-128"])
	}
	if s := FormatFig12(rows); !strings.Contains(s, "Ideal") {
		t.Error("Fig12 format missing Ideal column")
	}
}

func TestFig13MatchesPaper(t *testing.T) {
	r, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if r.PinatuboFraction < 0.007 || r.PinatuboFraction > 0.011 {
		t.Errorf("Pinatubo overhead %.4f outside 0.7..1.1%% (paper 0.9%%)", r.PinatuboFraction)
	}
	if r.ACPIMFraction < 0.05 || r.ACPIMFraction > 0.08 {
		t.Errorf("AC-PIM overhead %.4f outside 5..8%% (paper 6.4%%)", r.ACPIMFraction)
	}
	if s := FormatFig13(r); !strings.Contains(s, "inter-sub") {
		t.Error("Fig13 format missing breakdown")
	}
}

func TestTable1Format(t *testing.T) {
	s := FormatTable1()
	for _, want := range []string{"19-16-1s", "14-16-7r", "dblp", "720"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestVectorTraceShapes(t *testing.T) {
	// Sequential: almost everything intra. Random: almost nothing intra.
	seq, err := BuildVectorTrace(VectorWorkload{Name: "s", LenLog: 14, CountLog: 12, RowsLog: 7})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := BuildVectorTrace(VectorWorkload{Name: "r", LenLog: 14, CountLog: 12, RowsLog: 7, Random: true})
	if err != nil {
		t.Fatal(err)
	}
	intraShare := func(tr *workload.Trace) float64 {
		intra := 0
		for _, op := range tr.Ops {
			if op.Placement == workload.PlaceIntra && op.Groups == nil {
				intra++
			}
		}
		return float64(intra) / float64(len(tr.Ops))
	}
	if s := intraShare(seq); s < 0.5 {
		t.Errorf("sequential workload only %.0f%% intra", s*100)
	}
	if s := intraShare(rnd); s > 0.05 {
		t.Errorf("random workload %.0f%% intra, want ~0", s*100)
	}
	if len(seq.Ops) != 1<<5 {
		t.Errorf("sequential trace has %d ops, want 32 (2^12 vectors / 2^7)", len(seq.Ops))
	}
}

func TestEnginesConstruct(t *testing.T) {
	e, err := Engines()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, eng := range e.Compared() {
		names[eng.Name()] = true
	}
	for _, want := range EngineOrder {
		if !names[want] {
			t.Errorf("engine %s missing", want)
		}
	}
	if e.SIMD.Name() != "SIMD" {
		t.Error("baseline engine wrong")
	}
}

func TestFig9TechVariants(t *testing.T) {
	// ReRAM sweeps like PCM (faster timing, same depth); STT-MRAM's curves
	// collapse to the 2-row line.
	reram, err := Fig9Tech(nvm.ReRAM)
	if err != nil {
		t.Fatal(err)
	}
	stt, err := Fig9Tech(nvm.STTMRAM)
	if err != nil {
		t.Fatal(err)
	}
	peak := func(rows []Fig9Row) float64 {
		best := 0.0
		for _, r := range rows {
			if r.GBps > best {
				best = r.GBps
			}
		}
		return best
	}
	if peak(reram) < 10000 {
		t.Errorf("ReRAM peak %.0f GBps — multi-row advantage missing", peak(reram))
	}
	if peak(stt) > 2000 {
		t.Errorf("STT-MRAM peak %.0f GBps — 2-row cap not applied", peak(stt))
	}
}

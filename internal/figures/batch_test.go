package figures

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBatchSweep(t *testing.T) {
	rows, err := BatchSweep([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if !r.PlanMatch {
			t.Errorf("k=%d: batch makespan %v != plan %v", r.K, r.Makespan, r.PlanMakespan)
		}
		if r.Makespan <= 0 || r.Makespan > r.Sequential {
			t.Errorf("k=%d: makespan %v outside (0, %v]", r.K, r.Makespan, r.Sequential)
		}
		if r.Shards != r.K {
			t.Errorf("k=%d: shards = %d", r.K, r.Shards)
		}
	}
	if rows[1].Speedup <= rows[0].Speedup {
		t.Errorf("speedup not increasing: k=1 %.3f, k=4 %.3f", rows[0].Speedup, rows[1].Speedup)
	}

	text := FormatBatch(rows)
	if !strings.Contains(text, "plan match") || strings.Contains(text, "MISMATCH") {
		t.Errorf("unexpected format output:\n%s", text)
	}
	var buf bytes.Buffer
	if err := WriteBatchCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("CSV lines = %d, want 3", lines)
	}
}

func TestBatchBenchJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatchBenchJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var res BatchBenchResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.K != DefaultBatchKs[len(DefaultBatchKs)-1] {
		t.Errorf("K = %d", res.K)
	}
	if res.BatchedOpsPerSec <= res.SequentialOpsPerSec {
		t.Errorf("batched %.0f ops/s not above sequential %.0f ops/s",
			res.BatchedOpsPerSec, res.SequentialOpsPerSec)
	}
	if res.Speedup <= 1 {
		t.Errorf("speedup = %.3f, want > 1", res.Speedup)
	}
}

package figures

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"pinatubo"
)

// This file holds the Apply hot-path smoke benchmark: a repeated-op
// workload (the shape the program cache and the zero-alloc pass exist
// for) driven through System.Apply. Simulated time is bit-identical with
// the cache on or off, so the regression gate compares the two figures
// that are host-independent: steady-state heap allocations per op and
// the program-cache hit rate. Wall-clock ops/s is reported for the
// before/after tables but never gated — it is machine noise in CI.

// applyBenchRounds is the measured round count; each round issues three
// ops (AND, XOR, 3-source OR) over the same operands.
const applyBenchRounds = 128

// ApplyBenchResult is the committed-baseline artifact (BENCH_apply.json).
type ApplyBenchResult struct {
	// Ops is the number of Apply calls in the measured window.
	Ops int `json:"ops"`
	// WallOpsPerSec is host-clock throughput — informational only.
	WallOpsPerSec float64 `json:"wall_ops_per_sec"`
	// AllocsPerOp is steady-state heap allocations per Apply. Gated:
	// a new allocation on the hot path shows up here on any machine.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// CacheHitRate is program-cache hits over lookups for the measured
	// window. Gated: a key or invalidation bug collapses it to ~0.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// ApplyBench runs the repeated-op workload once warm and once measured.
func ApplyBench() (ApplyBenchResult, error) {
	sys, err := pinatubo.New(pinatubo.DefaultConfig())
	if err != nil {
		return ApplyBenchResult{}, err
	}
	vs, err := sys.AllocGroup(6, sys.RowBits())
	if err != nil {
		return ApplyBenchResult{}, err
	}
	rng := rand.New(rand.NewSource(42))
	data := make([]uint64, sys.RowBits()/64)
	for _, v := range vs[:4] {
		for i := range data {
			data[i] = rng.Uint64()
		}
		if _, err := sys.Write(v, data); err != nil {
			return ApplyBenchResult{}, err
		}
	}
	round := func() error {
		if _, err := sys.And(vs[4], vs[0], vs[1]); err != nil {
			return err
		}
		if _, err := sys.Xor(vs[5], vs[2], vs[3]); err != nil {
			return err
		}
		if _, err := sys.Or(vs[4], vs[0], vs[1], vs[2]); err != nil {
			return err
		}
		return nil
	}
	// Warm up: populate the program cache and grow every scratch buffer
	// to steady-state size, then snapshot the cache counters so the hit
	// rate covers only the measured window.
	if err := round(); err != nil {
		return ApplyBenchResult{}, err
	}
	warm := sys.PerfStats()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	//pinlint:ignore detrand wall-clock throughput is the benchmark's informational measurement, not a simulated result
	start := time.Now()
	for i := 0; i < applyBenchRounds; i++ {
		if err := round(); err != nil {
			return ApplyBenchResult{}, err
		}
	}
	//pinlint:ignore detrand wall-clock throughput is the benchmark's informational measurement, not a simulated result
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	res := ApplyBenchResult{Ops: applyBenchRounds * 3}
	if s := wall.Seconds(); s > 0 {
		res.WallOpsPerSec = float64(res.Ops) / s
	}
	res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(res.Ops)
	perf := sys.PerfStats()
	hits := perf.ProgramCacheHits - warm.ProgramCacheHits
	misses := perf.ProgramCacheMisses - warm.ProgramCacheMisses
	if lookups := hits + misses; lookups > 0 {
		res.CacheHitRate = float64(hits) / float64(lookups)
	}
	return res, nil
}

// FormatApplyBench renders the benchmark as a short text block.
func FormatApplyBench(res ApplyBenchResult) string {
	return fmt.Sprintf(
		"Apply hot path — %d repeated ops on one system\n"+
			"  wall throughput %12.0f ops/s (informational)\n"+
			"  allocations     %12.1f allocs/op (gated)\n"+
			"  cache hit rate  %12.3f (gated)\n",
		res.Ops, res.WallOpsPerSec, res.AllocsPerOp, res.CacheHitRate)
}

// WriteApplyBenchResultJSON writes an already-computed benchmark result,
// so a caller can both persist and gate one run.
func WriteApplyBenchResultJSON(w io.Writer, res ApplyBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// GateApplyBench compares a fresh benchmark against the committed
// baseline on the host-independent figures. Allocations per op may not
// regress beyond tolerance; the cache hit rate may not fall more than
// tolerance below the baseline. Improvements re-baseline by committing
// the fresh BENCH_apply.json.
func GateApplyBench(fresh, baseline ApplyBenchResult, tolerance float64) error {
	if baseline.AllocsPerOp <= 0 {
		return fmt.Errorf("figures: baseline allocs/op %v is not positive — regenerate the baseline with -applyout",
			baseline.AllocsPerOp)
	}
	if limit := baseline.AllocsPerOp * (1 + tolerance); fresh.AllocsPerOp > limit {
		return fmt.Errorf("figures: apply allocs/op regression: %.1f vs baseline %.1f (limit %.1f, +%.0f%%)",
			fresh.AllocsPerOp, baseline.AllocsPerOp, limit, tolerance*100)
	}
	if floor := baseline.CacheHitRate * (1 - tolerance); fresh.CacheHitRate < floor {
		return fmt.Errorf("figures: apply cache hit rate regression: %.3f vs baseline %.3f (floor %.3f, -%.0f%%)",
			fresh.CacheHitRate, baseline.CacheHitRate, floor, tolerance*100)
	}
	return nil
}

package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"pinatubo"
	"pinatubo/internal/bitvec"
)

// This file holds the fault sweep: the resilience layer exercised across
// injected sense-error rates, reporting what correctness costs. The paper
// assumes fault-free multi-row sensing; the sweep quantifies how far the
// verify-retry-degrade ladder can stretch that assumption before the
// effective bandwidth collapses — and shows the results stay bit-exact at
// every point.

// DefaultFaultRates is the sweep cmd/figures runs: fault-free baseline,
// then one decade per point up to a rate where almost every deep OR is
// corrupted at least once.
var DefaultFaultRates = []float64{0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3}

// FaultSweepRow is one injected-error-rate point.
type FaultSweepRow struct {
	// Rate is the configured sense-flip probability per bit at the margin
	// floor (SenseFlipRate).
	Rate float64
	// GBps is the effective operand bandwidth of 128-row ORs including all
	// verification, retry and degradation traffic.
	GBps float64
	// Slowdown is GBps(0) / GBps at this rate.
	Slowdown float64
	// Injected sense flips and the ladder's response, summed over the run.
	SenseFlips    int64
	Retries       int64
	DepthSplits   int64
	HostFallbacks int64
	BitsCorrected int64
	// WrongWords counts result words that disagree with the host golden
	// model. The resilience contract is that this is zero at every rate.
	WrongWords int
}

// FaultSweep runs a batch of deep 128-row ORs at each injected error rate
// and measures throughput, ladder activity and (most importantly) that the
// returned bits never go wrong.
func FaultSweep(rates []float64) ([]FaultSweepRow, error) {
	const (
		bits = 1 << 16
		ops  = 4
	)
	w := bitvec.WordsFor(bits)
	var out []FaultSweepRow
	for _, rate := range rates {
		cfg := pinatubo.DefaultConfig()
		cfg.Fault = pinatubo.FaultConfig{Seed: 1, SenseFlipRate: rate}
		sys, err := pinatubo.New(cfg)
		if err != nil {
			return nil, err
		}
		srcs, err := sys.AllocGroup(128, bits)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(99))
		golden := make([]uint64, w)
		words := make([]uint64, w)
		for _, v := range srcs {
			for j := range words {
				words[j] = rng.Uint64()
				golden[j] |= words[j]
			}
			if _, err := sys.Write(v, words); err != nil {
				return nil, err
			}
		}
		dst, err := sys.Alloc(bits)
		if err != nil {
			return nil, err
		}

		row := FaultSweepRow{Rate: rate}
		var seconds float64
		for k := 0; k < ops; k++ {
			res, err := sys.Or(dst, srcs...)
			if err != nil {
				return nil, err
			}
			seconds += res.Latency.Seconds()
		}
		got, _, err := sys.Read(dst)
		if err != nil {
			return nil, err
		}
		for j := range golden {
			if got[j] != golden[j] {
				row.WrongWords++
			}
		}
		st := sys.FaultStats()
		row.SenseFlips = st.SenseFlips
		row.Retries = st.Retries
		row.DepthSplits = st.DepthReductions
		row.HostFallbacks = st.HostFallbacks
		row.BitsCorrected = st.BitsCorrected
		row.GBps = float64(ops) * 128 * float64(bits) / 8 / seconds / 1e9
		out = append(out, row)
	}
	for i := range out {
		if out[0].GBps > 0 {
			out[i].Slowdown = out[0].GBps / out[i].GBps
		}
	}
	return out, nil
}

// FormatFaultSweep renders the sweep as an aligned text table.
func FormatFaultSweep(rows []FaultSweepRow) string {
	var sb strings.Builder
	sb.WriteString("Fault sweep — 128-row OR bandwidth vs injected sense-error rate\n")
	sb.WriteString("  (verify-and-retry resilience on; results checked against the host golden model)\n")
	for _, r := range rows {
		label := "fault-free"
		if r.Rate > 0 {
			label = fmt.Sprintf("rate %.0e", r.Rate)
		}
		status := "exact"
		if r.WrongWords > 0 {
			status = fmt.Sprintf("%d WRONG WORDS", r.WrongWords)
		}
		fmt.Fprintf(&sb, "  %-10s %8.1f GBps  %5.2fx slower  flips %-6d retries %-4d splits %-3d host %-2d corrected %-6d %s\n",
			label, r.GBps, r.Slowdown, r.SenseFlips, r.Retries,
			r.DepthSplits, r.HostFallbacks, r.BitsCorrected, status)
	}
	return sb.String()
}

// WriteFaultSweepCSV emits: rate, gbps, slowdown, flips, retries, splits,
// host_fallbacks, bits_corrected, wrong_words.
func WriteFaultSweepCSV(w io.Writer, rows []FaultSweepRow) error {
	cw := csv.NewWriter(w)
	header := []string{"rate", "gbps", "slowdown", "flips", "retries", "splits",
		"host_fallbacks", "bits_corrected", "wrong_words"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.FormatFloat(r.Rate, 'e', 1, 64),
			strconv.FormatFloat(r.GBps, 'f', 3, 64),
			strconv.FormatFloat(r.Slowdown, 'f', 3, 64),
			strconv.FormatInt(r.SenseFlips, 10),
			strconv.FormatInt(r.Retries, 10),
			strconv.FormatInt(r.DepthSplits, 10),
			strconv.FormatInt(r.HostFallbacks, 10),
			strconv.FormatInt(r.BitsCorrected, 10),
			strconv.Itoa(r.WrongWords),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package figures

import (
	"fmt"
	"sort"
	"strings"

	"pinatubo/internal/area"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// --- Fig. 9: Pinatubo OR throughput ---

// Fig9Row is one point of the throughput sweep.
type Fig9Row struct {
	LenLog int     // log2 of the bit-vector length
	Rows   int     // operands per one-step OR
	GBps   float64 // operand data processed per second
	Region string  // "below-DDR-bus" / "internal" / "beyond-internal"
}

// Fig9 sweeps bit-vector lengths 2^10..2^20 for one-step OR depths
// 2..128, reproducing the paper's throughput plot including the two
// turning points (A at 2^14: SA sharing; B at 2^19: rank row capacity)
// and the three bandwidth regions.
func Fig9() ([]Fig9Row, error) { return Fig9Tech(nvm.PCM) }

// Fig9Tech is the Fig. 9 sweep on an arbitrary NVM technology. Depths
// beyond the technology's sensing margin are clamped (STT-MRAM runs the
// whole sweep at its 2-row cap, so its curves collapse onto one line —
// the visual form of the paper's technology argument).
func Fig9Tech(tech nvm.Tech) ([]Fig9Row, error) {
	eng, err := pim.NewEngine(tech, 128)
	if err != nil {
		return nil, err
	}
	const (
		ddrBusGBps = 12.8 // one DDR3-1600 x64 channel
	)
	// Internal bandwidth: the most a conventional rank can stream out of
	// its arrays — the sense width per tCL, with every bank active.
	geo := memarch.Default()
	tcl := nvm.Get(tech).Timing.TCL
	internalGBps := float64(geo.SenseWidthBits()) / 8 / tcl / 1e9 * float64(geo.BanksPerChip)

	var rows []Fig9Row
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		if n > eng.MaxRows() {
			n = eng.MaxRows() // clamp: the engine chains beyond its depth
		}
		for lenLog := 10; lenLog <= 20; lenLog++ {
			bits := 1 << lenLog
			cost, err := eng.OpCost(workload.OpSpec{
				Op: sense.OpOR, Operands: n, Bits: bits,
				Placement: workload.PlaceIntra,
			})
			if err != nil {
				return nil, err
			}
			gbps := float64(n) * float64(bits) / 8 / cost.Seconds / 1e9
			region := "internal"
			switch {
			case gbps < ddrBusGBps:
				region = "below-DDR-bus"
			case gbps > internalGBps:
				region = "beyond-internal"
			}
			rows = append(rows, Fig9Row{LenLog: lenLog, Rows: n, GBps: gbps, Region: region})
		}
	}
	return rows, nil
}

// FormatFig9 renders the sweep as an aligned table, one line per length,
// one column per OR depth.
func FormatFig9(rows []Fig9Row) string {
	depths := []int{2, 4, 8, 16, 32, 64, 128}
	byKey := map[[2]int]Fig9Row{}
	lens := map[int]bool{}
	for _, r := range rows {
		byKey[[2]int{r.LenLog, r.Rows}] = r
		lens[r.LenLog] = true
	}
	var lenLogs []int
	for l := range lens {
		lenLogs = append(lenLogs, l)
	}
	sort.Ints(lenLogs)

	var sb strings.Builder
	sb.WriteString("Fig. 9 — Pinatubo OR throughput (GBps) vs bit-vector length\n")
	sb.WriteString("len\\rows")
	for _, d := range depths {
		fmt.Fprintf(&sb, "%10d", d)
	}
	sb.WriteString("\n")
	for _, l := range lenLogs {
		fmt.Fprintf(&sb, "2^%-6d", l)
		for _, d := range depths {
			if r, ok := byKey[[2]int{l, d}]; ok {
				fmt.Fprintf(&sb, "%10.1f", r.GBps)
			} else {
				fmt.Fprintf(&sb, "%10s", "-")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// --- Figs. 10 & 11: bitwise speedup and energy saving vs SIMD ---

// ComparisonRow is one workload's results across engines.
type ComparisonRow struct {
	Group    string
	Workload string
	// Values maps engine name to the metric (speedup or saving vs SIMD).
	Values map[string]float64
}

// comparison runs all traces on all engines and extracts a metric.
func comparison(metric func(r, base workload.RunResult) float64) ([]ComparisonRow, error) {
	engines, err := Engines()
	if err != nil {
		return nil, err
	}
	traces, err := AllTraces()
	if err != nil {
		return nil, err
	}
	var rows []ComparisonRow
	for _, nt := range traces {
		base, err := nt.Trace.Run(engines.SIMD)
		if err != nil {
			return nil, fmt.Errorf("%s on SIMD: %w", nt.Trace.Name, err)
		}
		row := ComparisonRow{Group: nt.Group, Workload: nt.Trace.Name, Values: map[string]float64{}}
		for _, e := range engines.Compared() {
			res, err := nt.Trace.Run(e)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", nt.Trace.Name, e.Name(), err)
			}
			row.Values[e.Name()] = metric(res, base)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10 returns the bitwise-operation speedup of every engine over the
// SIMD baseline on all 11 workloads.
func Fig10() ([]ComparisonRow, error) {
	return comparison(func(r, base workload.RunResult) float64 { return r.Speedup(base) })
}

// Fig11 returns the bitwise-operation energy saving over SIMD.
func Fig11() ([]ComparisonRow, error) {
	return comparison(func(r, base workload.RunResult) float64 { return r.EnergySaving(base) })
}

// EngineOrder is the column order of Figs. 10-12.
var EngineOrder = []string{"S-DRAM", "AC-PIM", "Pinatubo-2", "Pinatubo-128"}

// Gmeans computes the geometric mean per engine across rows.
func Gmeans(rows []ComparisonRow) map[string]float64 {
	out := map[string]float64{}
	for _, name := range EngineOrder {
		var vals []float64
		for _, r := range rows {
			if v, ok := r.Values[name]; ok {
				vals = append(vals, v)
			}
		}
		if len(vals) > 0 {
			out[name] = workload.Gmean(vals)
		}
	}
	return out
}

// FormatComparison renders a Fig. 10/11-style table with a gmean row.
func FormatComparison(title string, rows []ComparisonRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%-8s %-10s", "group", "workload")
	for _, e := range EngineOrder {
		fmt.Fprintf(&sb, "%14s", e)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-10s", r.Group, r.Workload)
		for _, e := range EngineOrder {
			fmt.Fprintf(&sb, "%14.1f", r.Values[e])
		}
		sb.WriteString("\n")
	}
	g := Gmeans(rows)
	fmt.Fprintf(&sb, "%-8s %-10s", "", "gmean")
	for _, e := range EngineOrder {
		fmt.Fprintf(&sb, "%14.1f", g[e])
	}
	sb.WriteString("\n")
	return sb.String()
}

// --- Fig. 12: overall application speedup and energy ---

// Fig12Row is one application workload's overall (whole-program) results.
type Fig12Row struct {
	Group    string
	Workload string
	// Speedup and EnergySaving map engine name (incl. "Ideal") to the
	// overall ratio vs SIMD.
	Speedup      map[string]float64
	EnergySaving map[string]float64
}

// Fig12 returns overall speedup/energy for the Graph and Fastbit
// applications, including the Ideal (free bitwise ops) legend.
func Fig12() ([]Fig12Row, error) {
	engines, err := Engines()
	if err != nil {
		return nil, err
	}
	traces, err := AppTraces()
	if err != nil {
		return nil, err
	}
	all := append(engines.Compared(), workload.Ideal{})
	var rows []Fig12Row
	for _, nt := range traces {
		base, err := nt.Trace.Run(engines.SIMD)
		if err != nil {
			return nil, err
		}
		row := Fig12Row{
			Group:        nt.Group,
			Workload:     nt.Trace.Name,
			Speedup:      map[string]float64{},
			EnergySaving: map[string]float64{},
		}
		for _, e := range all {
			res, err := nt.Trace.Run(e)
			if err != nil {
				return nil, err
			}
			row.Speedup[e.Name()] = res.OverallSpeedup(base)
			row.EnergySaving[e.Name()] = res.OverallEnergySaving(base)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig12Order is the engine order of Fig. 12, ending with Ideal.
var Fig12Order = append(append([]string{}, EngineOrder...), "Ideal")

// Fig12Gmeans returns the per-engine gmean of a Fig. 12 metric over rows,
// optionally filtered to one group ("" = all).
func Fig12Gmeans(rows []Fig12Row, group string, energyNotSpeed bool) map[string]float64 {
	out := map[string]float64{}
	for _, name := range Fig12Order {
		var vals []float64
		for _, r := range rows {
			if group != "" && r.Group != group {
				continue
			}
			m := r.Speedup
			if energyNotSpeed {
				m = r.EnergySaving
			}
			if v, ok := m[name]; ok {
				vals = append(vals, v)
			}
		}
		if len(vals) > 0 {
			out[name] = workload.Gmean(vals)
		}
	}
	return out
}

// FormatFig12 renders the overall speedup and energy tables.
func FormatFig12(rows []Fig12Row) string {
	var sb strings.Builder
	for _, metric := range []struct {
		title  string
		energy bool
	}{{"Fig. 12a — overall speedup vs SIMD", false}, {"Fig. 12b — overall energy saving vs SIMD", true}} {
		sb.WriteString(metric.title + "\n")
		fmt.Fprintf(&sb, "%-8s %-12s", "group", "workload")
		for _, e := range Fig12Order {
			fmt.Fprintf(&sb, "%14s", e)
		}
		sb.WriteString("\n")
		for _, r := range rows {
			fmt.Fprintf(&sb, "%-8s %-12s", r.Group, r.Workload)
			for _, e := range Fig12Order {
				m := r.Speedup
				if metric.energy {
					m = r.EnergySaving
				}
				fmt.Fprintf(&sb, "%14.3f", m[e])
			}
			sb.WriteString("\n")
		}
		g := Fig12Gmeans(rows, "", metric.energy)
		fmt.Fprintf(&sb, "%-8s %-12s", "", "gmean")
		for _, e := range Fig12Order {
			fmt.Fprintf(&sb, "%14.3f", g[e])
		}
		sb.WriteString("\n\n")
	}
	return sb.String()
}

// --- Fig. 13: area overhead ---

// Fig13Result bundles the area comparison.
type Fig13Result struct {
	PinatuboFraction float64
	ACPIMFraction    float64
	Breakdown        []area.BreakdownEntry
}

// Fig13 computes the area overhead comparison and breakdown.
func Fig13() (*Fig13Result, error) {
	geo := memarch.Default()
	tech := nvm.Get(nvm.PCM)
	params := area.DefaultParams()
	o, err := area.Pinatubo(geo, tech, params)
	if err != nil {
		return nil, err
	}
	ac, err := area.ACPIM(geo, tech, params)
	if err != nil {
		return nil, err
	}
	return &Fig13Result{
		PinatuboFraction: o.TotalFraction(),
		ACPIMFraction:    ac,
		Breakdown:        o.Breakdown(),
	}, nil
}

// FormatFig13 renders the area comparison.
func FormatFig13(r *Fig13Result) string {
	var sb strings.Builder
	sb.WriteString("Fig. 13 — area overhead on the PCM chip\n")
	fmt.Fprintf(&sb, "  Pinatubo total: %.2f%%   (paper: 0.9%%)\n", r.PinatuboFraction*100)
	fmt.Fprintf(&sb, "  AC-PIM total:   %.2f%%   (paper: 6.4%%)\n", r.ACPIMFraction*100)
	sb.WriteString("  breakdown:\n")
	for _, e := range r.Breakdown {
		fmt.Fprintf(&sb, "    %-10s %.3f%%\n", e.Name, e.Fraction*100)
	}
	return sb.String()
}

// --- Table 1 ---

// FormatTable1 renders the benchmark/dataset table.
func FormatTable1() string {
	var sb strings.Builder
	sb.WriteString("Table 1 — benchmarks and data sets\n")
	sb.WriteString("  Vector:   pure vector OR operations\n")
	for _, w := range VectorWorkloads() {
		mode := "sequential"
		if w.Random {
			mode = "random"
		}
		fmt.Fprintf(&sb, "    %-10s 2^%d-bit vectors, 2^%d vectors, 2^%d-row OR, %s\n",
			w.Name, w.LenLog, w.CountLog, w.RowsLog, mode)
	}
	sb.WriteString("  Graph:    bitmap-based BFS (synthetic stand-ins, see DESIGN.md)\n")
	sb.WriteString("    dblp      dense power-law (RMAT), single tight component\n")
	sb.WriteString("    eswiki    loose Erdős–Rényi, many components\n")
	sb.WriteString("    amazon    loose Erdős–Rényi, many components\n")
	sb.WriteString("  Database: bitmap-index range queries (FastBit-style, synthetic STAR events)\n")
	sb.WriteString("    240 / 480 / 720 query batches\n")
	return sb.String()
}

package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"pinatubo"
	"pinatubo/internal/bitvec"
)

// This file holds the replication crossover: the reactive resilience
// ladder (verify, retry, depth-split, fall back) against the proactive
// replication rung (R copies per row, majority-voted sensing) across
// injected sense-error rates. Replication pays a fixed tax everywhere —
// R× capacity, R sequential activation groups per request, replica
// refresh after every verified write — while the ladder pays nothing
// until faults appear and then pays per incident. The sweep finds where
// the curves cross: the rate above which the binomial vote tail
// (p ≈ 1e-3 → ≈ 3e-6 for R = 3) converts almost every would-be
// retry/degradation into a clean first-try result and the fixed tax wins.

// ReplicationRow is one injected-error-rate point of the crossover sweep,
// with both builds measured on identical workloads.
type ReplicationRow struct {
	// Rate is the configured sense-flip probability per bit at the margin
	// floor (SenseFlipRate).
	Rate float64

	// The reactive baseline (Replicate = 0, read-back verification).
	BaseGBps     float64
	BaseRetries  int64
	BaseSplits   int64
	BaseHost     int64
	BaseDegraded int64 // ops that left the native rung (splits + fallbacks)

	// The replicated build (Replicate = 3, same verification).
	RepGBps     float64
	RepVotes    int64
	RepOutvoted int64
	RepRetries  int64
	RepDegraded int64

	// Speedup is RepGBps / BaseGBps: above 1, the proactive rung's fixed
	// tax beats the reactive ladder's per-incident cost.
	Speedup float64
	// WrongWords counts result words either build got wrong — the
	// resilience contract keeps this zero at every rate and both builds.
	WrongWords int
}

// ReplicationSweep measures both builds at each rate on a bank of deep
// 128-row ORs, checking every result against the host golden model.
func ReplicationSweep(rates []float64) ([]ReplicationRow, error) {
	const (
		bits = 1 << 16
		ops  = 4
	)
	var out []ReplicationRow
	for _, rate := range rates {
		row := ReplicationRow{Rate: rate}

		base, err := runReplicationPoint(rate, 0, bits, ops)
		if err != nil {
			return nil, err
		}
		row.BaseGBps = base.gbps
		row.BaseRetries = base.stats.Retries
		row.BaseSplits = base.stats.DepthReductions
		row.BaseHost = base.stats.HostFallbacks
		row.BaseDegraded = base.stats.DepthReductions + base.stats.InterFallbacks + base.stats.HostFallbacks
		row.WrongWords += base.wrongWords

		rep, err := runReplicationPoint(rate, 3, bits, ops)
		if err != nil {
			return nil, err
		}
		row.RepGBps = rep.gbps
		row.RepVotes = rep.stats.Votes
		row.RepOutvoted = rep.stats.BitsOutvoted
		row.RepRetries = rep.stats.Retries
		row.RepDegraded = rep.stats.DepthReductions + rep.stats.InterFallbacks + rep.stats.HostFallbacks
		row.WrongWords += rep.wrongWords

		if row.BaseGBps > 0 {
			row.Speedup = row.RepGBps / row.BaseGBps
		}
		out = append(out, row)
	}
	return out, nil
}

type replicationPoint struct {
	gbps       float64
	stats      pinatubo.FaultStats
	wrongWords int
}

// runReplicationPoint runs the sweep workload on one build: PCM, read-back
// verification, the given replication factor, ops deep ORs over 128
// operand rows. Verification is pinned on even at rate 0 so the fault-free
// point prices the replicated build's fixed tax instead of short-circuiting
// to the raw path.
func runReplicationPoint(rate float64, replicate, bits, ops int) (replicationPoint, error) {
	cfg := pinatubo.DefaultConfig()
	cfg.Fault = pinatubo.FaultConfig{Seed: 1, SenseFlipRate: rate}
	cfg.Resilience = pinatubo.ResilienceConfig{
		Verify:    pinatubo.VerifyReadback,
		Replicate: replicate,
	}
	sys, err := pinatubo.New(cfg)
	if err != nil {
		return replicationPoint{}, err
	}
	w := bitvec.WordsFor(bits)
	srcs, err := sys.AllocGroup(128, bits)
	if err != nil {
		return replicationPoint{}, err
	}
	rng := rand.New(rand.NewSource(99))
	golden := make([]uint64, w)
	words := make([]uint64, w)
	for _, v := range srcs {
		for j := range words {
			words[j] = rng.Uint64()
			golden[j] |= words[j]
		}
		if _, err := sys.Write(v, words); err != nil {
			return replicationPoint{}, err
		}
	}
	dst, err := sys.Alloc(bits)
	if err != nil {
		return replicationPoint{}, err
	}

	var pt replicationPoint
	var seconds float64
	for k := 0; k < ops; k++ {
		res, err := sys.Or(dst, srcs...)
		if err != nil {
			return replicationPoint{}, err
		}
		seconds += res.Latency.Seconds()
	}
	got, _, err := sys.Read(dst)
	if err != nil {
		return replicationPoint{}, err
	}
	for j := range golden {
		if got[j] != golden[j] {
			pt.wrongWords++
		}
	}
	pt.stats = sys.FaultStats()
	pt.gbps = float64(ops) * 128 * float64(bits) / 8 / seconds / 1e9
	return pt, nil
}

// FormatReplicationSweep renders the crossover as an aligned text table.
func FormatReplicationSweep(rows []ReplicationRow) string {
	var sb strings.Builder
	sb.WriteString("Replication crossover — reactive ladder vs R=3 majority voting, 128-row ORs\n")
	sb.WriteString("  (read-back verification on in both builds; results checked against the host golden model)\n")
	for _, r := range rows {
		label := "fault-free"
		if r.Rate > 0 {
			label = fmt.Sprintf("rate %.0e", r.Rate)
		}
		status := "exact"
		if r.WrongWords > 0 {
			status = fmt.Sprintf("%d WRONG WORDS", r.WrongWords)
		}
		fmt.Fprintf(&sb, "  %-10s base %7.1f GBps (retries %-4d degraded %-3d)  R=3 %7.1f GBps (votes %-4d outvoted %-5d degraded %-3d)  %5.2fx  %s\n",
			label, r.BaseGBps, r.BaseRetries, r.BaseDegraded,
			r.RepGBps, r.RepVotes, r.RepOutvoted, r.RepDegraded,
			r.Speedup, status)
	}
	return sb.String()
}

// WriteReplicationCSV emits: rate, base_gbps, base_retries, base_splits,
// base_host, base_degraded, rep_gbps, rep_votes, rep_outvoted,
// rep_retries, rep_degraded, speedup, wrong_words.
func WriteReplicationCSV(w io.Writer, rows []ReplicationRow) error {
	cw := csv.NewWriter(w)
	header := []string{"rate", "base_gbps", "base_retries", "base_splits",
		"base_host", "base_degraded", "rep_gbps", "rep_votes",
		"rep_outvoted", "rep_retries", "rep_degraded", "speedup", "wrong_words"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.FormatFloat(r.Rate, 'e', 1, 64),
			strconv.FormatFloat(r.BaseGBps, 'f', 3, 64),
			strconv.FormatInt(r.BaseRetries, 10),
			strconv.FormatInt(r.BaseSplits, 10),
			strconv.FormatInt(r.BaseHost, 10),
			strconv.FormatInt(r.BaseDegraded, 10),
			strconv.FormatFloat(r.RepGBps, 'f', 3, 64),
			strconv.FormatInt(r.RepVotes, 10),
			strconv.FormatInt(r.RepOutvoted, 10),
			strconv.FormatInt(r.RepRetries, 10),
			strconv.FormatInt(r.RepDegraded, 10),
			strconv.FormatFloat(r.Speedup, 'f', 3, 64),
			strconv.Itoa(r.WrongWords),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

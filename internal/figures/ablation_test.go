package figures

import (
	"strings"
	"testing"

	"pinatubo/internal/nvm"
)

// The sweeps are expensive; run each once per test binary.
var ablCache struct {
	depth []DepthAblationRow
	mux   []MuxAblationRow
	tech  []TechAblationRow
}

func depthAbl(t *testing.T) []DepthAblationRow {
	t.Helper()
	if ablCache.depth == nil {
		rows, err := DepthAblation()
		if err != nil {
			t.Fatal(err)
		}
		ablCache.depth = rows
	}
	return ablCache.depth
}

func muxAbl(t *testing.T) []MuxAblationRow {
	t.Helper()
	if ablCache.mux == nil {
		rows, err := MuxAblation()
		if err != nil {
			t.Fatal(err)
		}
		ablCache.mux = rows
	}
	return ablCache.mux
}

func techAbl(t *testing.T) []TechAblationRow {
	t.Helper()
	if ablCache.tech == nil {
		rows, err := TechAblation()
		if err != nil {
			t.Fatal(err)
		}
		ablCache.tech = rows
	}
	return ablCache.tech
}

func TestDepthAblationMonotone(t *testing.T) {
	rows := depthAbl(t)
	if len(rows) != 7 || rows[0].Depth != 2 || rows[6].Depth != 128 {
		t.Fatalf("unexpected sweep shape: %+v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].GmeanSpeedup <= rows[i-1].GmeanSpeedup {
			t.Errorf("depth %d (%.1fx) not faster than depth %d (%.1fx)",
				rows[i].Depth, rows[i].GmeanSpeedup,
				rows[i-1].Depth, rows[i-1].GmeanSpeedup)
		}
	}
	// Even modest multi-row depth doubles the chained design's speedup.
	if rows[1].GmeanSpeedup < 1.5*rows[0].GmeanSpeedup {
		t.Errorf("depth 4 (%.1fx) should be >= 1.5x depth 2 (%.1fx)",
			rows[1].GmeanSpeedup, rows[0].GmeanSpeedup)
	}
}

func TestMuxAblationTradeoff(t *testing.T) {
	rows := muxAbl(t)
	if len(rows) != 4 {
		t.Fatalf("%d mux points", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		// Wider sharing (bigger mux) → slower ops...
		if rows[i].GBps128Row >= rows[i-1].GBps128Row {
			t.Errorf("mux %d:1 should be slower than %d:1",
				rows[i].MuxRatio, rows[i-1].MuxRatio)
		}
		// ...but cheaper add-on area (fewer SAs to modify).
		if rows[i].AreaFraction >= rows[i-1].AreaFraction {
			t.Errorf("mux %d:1 should cost less area than %d:1",
				rows[i].MuxRatio, rows[i-1].MuxRatio)
		}
	}
	// The paper's 32:1 point stays under ~1% area.
	for _, r := range rows {
		if r.MuxRatio == 32 && (r.AreaFraction < 0.007 || r.AreaFraction > 0.011) {
			t.Errorf("32:1 area %.4f drifted from the paper's 0.9%%", r.AreaFraction)
		}
	}
}

func TestTechAblation(t *testing.T) {
	rows := techAbl(t)
	byTech := map[nvm.Tech]TechAblationRow{}
	for _, r := range rows {
		byTech[r.Tech] = r
	}
	if byTech[nvm.PCM].Depth != 128 || byTech[nvm.ReRAM].Depth != 128 {
		t.Error("PCM/ReRAM should run at depth 128")
	}
	if byTech[nvm.STTMRAM].Depth != 2 {
		t.Errorf("STT-MRAM depth %d want 2 (sensing cap)", byTech[nvm.STTMRAM].Depth)
	}
	// The sensing cap dominates the faster MTJ array on multi-row work.
	if byTech[nvm.STTMRAM].GmeanSpeedup >= byTech[nvm.PCM].GmeanSpeedup {
		t.Errorf("STT-MRAM (%.1fx) should trail PCM (%.1fx) despite faster timing",
			byTech[nvm.STTMRAM].GmeanSpeedup, byTech[nvm.PCM].GmeanSpeedup)
	}
	for _, r := range rows {
		if r.GmeanSpeedup < 1 {
			t.Errorf("%v: Pinatubo slower than its own CPU baseline (%.2fx)", r.Tech, r.GmeanSpeedup)
		}
	}
}

func TestFormatAblations(t *testing.T) {
	s := FormatAblations(depthAbl(t), muxAbl(t), techAbl(t))
	for _, want := range []string{"Ablation A", "Ablation B", "Ablation C", "mux 32:1", "STT-MRAM"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestConcurrencyAblation(t *testing.T) {
	rows, err := ConcurrencyAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.OpsPerSec) != len(r.InFlight) {
			t.Fatalf("curve shape mismatch")
		}
		// Throughput must scale and never regress.
		for i := 1; i < len(r.OpsPerSec); i++ {
			if r.OpsPerSec[i] < r.OpsPerSec[i-1]*0.999 {
				t.Errorf("depth %d: throughput regressed at k=%d", r.Depth, r.InFlight[i])
			}
		}
		// The evaluation's Parallelism=4-per-channel assumption must be
		// conservative: 4 in-flight requests must gain >= 2x over 1.
		if gain := r.OpsPerSec[2] / r.OpsPerSec[0]; gain < 2 {
			t.Errorf("depth %d: k=4 gain %.2fx — the fixed parallelism oversells", r.Depth, gain)
		}
		if r.Saturate < 2 {
			t.Errorf("depth %d saturates at k=%d — no overlap at all?", r.Depth, r.Saturate)
		}
	}
	if s := FormatConcurrency(rows); !strings.Contains(s, "Ablation D") {
		t.Error("format missing title")
	}
}

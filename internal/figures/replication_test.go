package figures

import (
	"bytes"
	"strings"
	"testing"
)

func TestReplicationSweep(t *testing.T) {
	// One fault-free point (pricing the fixed replication tax) and one hot
	// enough that the reactive baseline must degrade.
	rows, err := ReplicationSweep([]float64{0, 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.WrongWords != 0 {
			t.Fatalf("rate %g returned %d wrong words — resilience contract broken", r.Rate, r.WrongWords)
		}
		if r.BaseGBps <= 0 || r.RepGBps <= 0 {
			t.Fatalf("rate %g: bandwidths %g / %g", r.Rate, r.BaseGBps, r.RepGBps)
		}
		if r.RepVotes == 0 {
			t.Fatalf("rate %g: replicated build took no majority votes", r.Rate)
		}
	}
	base, hot := rows[0], rows[1]
	// Fault-free: replication is pure tax — no outvoting, no ladder, and a
	// replicated build strictly no faster than the baseline.
	if base.RepOutvoted != 0 || base.BaseRetries != 0 || base.RepRetries != 0 {
		t.Fatalf("fault-free point shows fault activity: %+v", base)
	}
	if base.Speedup > 1 {
		t.Fatalf("fault-free replication cannot be free: speedup %g", base.Speedup)
	}
	// Hot: the crossover claim — the reactive ladder degrades, the voted
	// build outvotes its flips and stays on the native rung, and wins.
	if hot.BaseDegraded == 0 {
		t.Fatalf("1e-3 baseline never left the native rung: %+v", hot)
	}
	if hot.RepOutvoted == 0 {
		t.Fatalf("1e-3 replicated build outvoted nothing: %+v", hot)
	}
	if hot.RepDegraded >= hot.BaseDegraded {
		t.Fatalf("replication did not reduce degradations: R=3 %d vs base %d",
			hot.RepDegraded, hot.BaseDegraded)
	}
	if hot.Speedup <= 1 {
		t.Fatalf("1e-3 crossover missing: speedup %g", hot.Speedup)
	}

	text := FormatReplicationSweep(rows)
	if !strings.Contains(text, "fault-free") || !strings.Contains(text, "exact") {
		t.Fatalf("format output missing labels:\n%s", text)
	}

	var buf bytes.Buffer
	if err := WriteReplicationCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "rate,base_gbps") {
		t.Fatalf("csv output malformed:\n%s", buf.String())
	}
}

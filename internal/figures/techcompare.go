package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"pinatubo"
)

// Technology comparison: the same public operations run on every backend
// the seam supports — the three resistive technologies computing in their
// modified sense amplifiers, and DRAM computing by triple-row activation
// — priced by each backend's own lowering. This is the figure that keeps
// the backends honest against each other: DRAM pays 11 copies and 3
// activations for an XOR the NVMs resolve in one sensing pass, and the
// table shows it.

// TechCompareRow is one (technology, operation) measurement over a full
// row-width operand set.
type TechCompareRow struct {
	Tech     string
	Op       string
	Latency  time.Duration // simulated operation latency
	GBps     float64       // result bits per simulated second
	PJPerBit float64       // operation energy per result bit
}

// techCompareTechs is the sweep order; PCM first so relative columns can
// reference it.
var techCompareTechs = []pinatubo.Tech{
	pinatubo.PCM, pinatubo.STTMRAM, pinatubo.ReRAM, pinatubo.DRAM,
}

// techCompareOps names the swept operations. or4 is deliberately deeper
// than the pairwise limit of STT-MRAM and DRAM, so those technologies pay
// their chained lowering while PCM/ReRAM do one multi-row activation.
var techCompareOps = []struct {
	name string
	nsrc int
	run  func(s *pinatubo.System, dst *pinatubo.BitVector, srcs []*pinatubo.BitVector) (pinatubo.Result, error)
}{
	{"and", 2, func(s *pinatubo.System, d *pinatubo.BitVector, v []*pinatubo.BitVector) (pinatubo.Result, error) {
		return s.And(d, v[0], v[1])
	}},
	{"or2", 2, func(s *pinatubo.System, d *pinatubo.BitVector, v []*pinatubo.BitVector) (pinatubo.Result, error) {
		return s.Or(d, v...)
	}},
	{"or4", 4, func(s *pinatubo.System, d *pinatubo.BitVector, v []*pinatubo.BitVector) (pinatubo.Result, error) {
		return s.Or(d, v...)
	}},
	{"xor", 2, func(s *pinatubo.System, d *pinatubo.BitVector, v []*pinatubo.BitVector) (pinatubo.Result, error) {
		return s.Xor(d, v[0], v[1])
	}},
	{"not", 1, func(s *pinatubo.System, d *pinatubo.BitVector, v []*pinatubo.BitVector) (pinatubo.Result, error) {
		return s.Not(d, v[0])
	}},
}

// TechCompare sweeps every technology over every operation at row width
// on the default geometry.
func TechCompare() ([]TechCompareRow, error) {
	var rows []TechCompareRow
	for _, tech := range techCompareTechs {
		sys, err := pinatubo.New(pinatubo.Config{Tech: tech})
		if err != nil {
			return nil, fmt.Errorf("building %v system: %w", tech, err)
		}
		bits := sys.RowBits()
		vs, err := sys.AllocGroup(5, bits)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(77))
		data := make([]uint64, bits/64)
		for _, v := range vs[:4] {
			for i := range data {
				data[i] = rng.Uint64()
			}
			if _, err := sys.Write(v, data); err != nil {
				return nil, err
			}
		}
		for _, op := range techCompareOps {
			res, err := op.run(sys, vs[4], vs[:op.nsrc])
			if err != nil {
				return nil, fmt.Errorf("%v %s: %w", tech, op.name, err)
			}
			row := TechCompareRow{
				Tech:    tech.String(),
				Op:      op.name,
				Latency: res.Latency,
			}
			if s := res.Latency.Seconds(); s > 0 {
				row.GBps = float64(bits) / 8 / s / 1e9
			}
			row.PJPerBit = res.EnergyJoules / float64(bits) * 1e12
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTechCompare renders the sweep as one block per operation with a
// latency column relative to PCM (the paper's case-study technology).
func FormatTechCompare(rows []TechCompareRow) string {
	var sb strings.Builder
	sb.WriteString("Technology comparison — one row-width op, default geometry, per-backend lowering\n")
	sb.WriteString("  (or4 exceeds the pairwise limit of STT-MRAM and DRAM: those chain through scratch)\n")
	for _, op := range techCompareOps {
		fmt.Fprintf(&sb, "  %s\n", op.name)
		var pcm float64
		for _, r := range rows {
			if r.Op == op.name && r.Tech == "PCM" {
				pcm = r.Latency.Seconds()
			}
		}
		for _, r := range rows {
			if r.Op != op.name {
				continue
			}
			rel := "     —"
			if pcm > 0 && r.Latency.Seconds() > 0 {
				rel = fmt.Sprintf("%5.2fx", r.Latency.Seconds()/pcm)
			}
			fmt.Fprintf(&sb, "    %-9s latency %12v  %9.1f GB/s  %7.3f pJ/bit  vs PCM %s\n",
				r.Tech, r.Latency, r.GBps, r.PJPerBit, rel)
		}
	}
	return sb.String()
}

// WriteTechCompareCSV emits: tech, op, latency_s, gbps, pj_per_bit.
func WriteTechCompareCSV(w io.Writer, rows []TechCompareRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tech", "op", "latency_s", "gbps", "pj_per_bit"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Tech,
			r.Op,
			strconv.FormatFloat(r.Latency.Seconds(), 'e', 6, 64),
			strconv.FormatFloat(r.GBps, 'f', 3, 64),
			strconv.FormatFloat(r.PJPerBit, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"pinatubo"
)

// This file holds the headroom sweep: the public planning API
// (System.Plan) exercised across injected sense-error rates. Where the
// fault sweep asks "what does correctness cost one operation?", the
// headroom sweep asks "how much in-flight concurrency is still worth
// provisioning once the resilience ladder starts stretching traces?" —
// per rate, the saturation point, the throughput multiple between one
// in-flight OR and that point, and the p50/p99 completion spread there.

// DefaultHeadroomConcurrency is the deepest in-flight level the sweep
// explores: past the four-channel default geometry's saturation at every
// fault rate in DefaultFaultRates.
const DefaultHeadroomConcurrency = 32

// HeadroomRow is one fault-rate point of the sweep: the plan's verdict
// plus its full concurrency curve.
type HeadroomRow struct {
	// Rate is the sense-flip probability per bit the plan assumed.
	Rate float64
	// Report is the full plan at this rate (points ascending in k).
	Report pinatubo.PlanReport
}

// at returns the plan point for level k (the saturation point lies on the
// explored grid by construction).
func (r HeadroomRow) at(k int) pinatubo.PlanPoint {
	for _, p := range r.Report.Points {
		if p.Concurrency == k {
			return p
		}
	}
	return pinatubo.PlanPoint{}
}

// HeadroomSweep plans maximally deep row ORs at each fault rate with up
// to `concurrency` operations in flight. Every plan runs from the same
// seed, so the sweep is reproducible run to run; the zero-rate row is the
// deterministic baseline that matches chansim.SaturationPoint exactly.
func HeadroomSweep(rates []float64, concurrency int) ([]HeadroomRow, error) {
	cfg := pinatubo.DefaultConfig()
	cfg.Fault = pinatubo.FaultConfig{Seed: 1}
	sys, err := pinatubo.New(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]HeadroomRow, 0, len(rates))
	for _, rate := range rates {
		rep, err := sys.Plan(pinatubo.OpOr, concurrency, rate)
		if err != nil {
			return nil, err
		}
		out = append(out, HeadroomRow{Rate: rate, Report: rep})
	}
	return out, nil
}

// FormatHeadroom renders the sweep as an aligned text table: one line per
// fault rate with the saturation verdict and the latency spread there.
func FormatHeadroom(rows []HeadroomRow) string {
	var sb strings.Builder
	sb.WriteString("Headroom sweep — System.Plan of deep row ORs vs injected sense-error rate\n")
	if len(rows) > 0 {
		sb.WriteString(fmt.Sprintf("  (concurrency explored up to %d; latencies at the saturation point)\n",
			rows[0].Report.Concurrency))
	}
	for _, r := range rows {
		label := "fault-free"
		if r.Rate > 0 {
			label = fmt.Sprintf("rate %.0e", r.Rate)
		}
		sat := r.at(r.Report.SaturationPoint)
		fmt.Fprintf(&sb, "  %-10s saturates at %2d in flight  headroom %5.2fx  %9.0f ops/s  p50 %-10v p99 %-10v bus %4.0f%%\n",
			label, r.Report.SaturationPoint, r.Report.Headroom, sat.Throughput,
			sat.Latency.P50.Round(10*time.Nanosecond),
			sat.Latency.P99.Round(10*time.Nanosecond),
			100*sat.BusUtilisation)
	}
	return sb.String()
}

// WriteHeadroomCSV emits the full curves in long format: rate, k,
// throughput_ops_s, p50_s, p99_s, bus_utilisation, saturation_k,
// headroom — one record per (rate, concurrency) point.
func WriteHeadroomCSV(w io.Writer, rows []HeadroomRow) error {
	cw := csv.NewWriter(w)
	header := []string{"rate", "k", "throughput_ops_s", "p50_s", "p99_s",
		"bus_utilisation", "saturation_k", "headroom"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		for _, p := range r.Report.Points {
			rec := []string{
				strconv.FormatFloat(r.Rate, 'e', 1, 64),
				strconv.Itoa(p.Concurrency),
				strconv.FormatFloat(p.Throughput, 'f', 1, 64),
				strconv.FormatFloat(p.Latency.P50.Seconds(), 'e', 6, 64),
				strconv.FormatFloat(p.Latency.P99.Seconds(), 'e', 6, 64),
				strconv.FormatFloat(p.BusUtilisation, 'f', 4, 64),
				strconv.Itoa(r.Report.SaturationPoint),
				strconv.FormatFloat(r.Report.Headroom, 'f', 3, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

package figures

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestHeadroomSweep(t *testing.T) {
	// One deterministic baseline and one stochastic point, shallow enough
	// to stay fast.
	rows, err := HeadroomSweep([]float64{0, 1e-6}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	base, hot := rows[0], rows[1]
	if base.Report.Replications != 1 {
		t.Fatalf("fault-free plan took %d replications, want 1", base.Report.Replications)
	}
	if hot.Report.Replications < 2 {
		t.Fatalf("stochastic plan took %d replications", hot.Report.Replications)
	}
	for _, r := range rows {
		if r.Report.SaturationPoint < 1 || r.Report.SaturationPoint > 8 {
			t.Fatalf("rate %g: saturation %d outside explored range", r.Rate, r.Report.SaturationPoint)
		}
		if r.Report.Headroom < 1 {
			t.Fatalf("rate %g: headroom %g < 1", r.Rate, r.Report.Headroom)
		}
		sat := r.at(r.Report.SaturationPoint)
		if sat.Throughput <= 0 || sat.Latency.P99 < sat.Latency.P50 {
			t.Fatalf("rate %g: saturation point malformed: %+v", r.Rate, sat)
		}
	}

	// Same seed, same sweep: reproducible run to run.
	again, err := HeadroomSweep([]float64{0, 1e-6}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Fatal("headroom sweep not reproducible for a fixed seed")
	}

	text := FormatHeadroom(rows)
	if !strings.Contains(text, "fault-free") || !strings.Contains(text, "saturates at") {
		t.Fatalf("format output missing labels:\n%s", text)
	}

	var buf bytes.Buffer
	if err := WriteHeadroomCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantLines := 1 + len(base.Report.Points) + len(hot.Report.Points)
	if len(lines) != wantLines || !strings.HasPrefix(lines[0], "rate,k") {
		t.Fatalf("csv output malformed (%d lines, want %d):\n%s", len(lines), wantLines, buf.String())
	}
}

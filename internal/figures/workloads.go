// Package figures regenerates every table and figure of the paper's
// evaluation section (Table 1, Figs. 9–13) from the simulator. Each Fig*
// function returns structured rows; Format* helpers render the aligned
// text tables that cmd/figures prints and EXPERIMENTS.md records.
package figures

import (
	"fmt"
	"math/rand"

	"pinatubo/internal/baseline/acpim"
	"pinatubo/internal/baseline/sdram"
	"pinatubo/internal/baseline/simd"
	"pinatubo/internal/fastbit"
	"pinatubo/internal/graph"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/pimrt"
	"pinatubo/internal/workload"
)

// VectorWorkload is one of Table 1's synthetic Vector entries:
// "19-16-7s" = 2^19-bit vectors, 2^16 vectors, 2^7-row OR requests,
// sequentially (s) or randomly (r) placed.
type VectorWorkload struct {
	Name     string
	LenLog   int // log2 of vector length in bits
	CountLog int // log2 of vector count
	RowsLog  int // log2 of operands per OR request
	Random   bool
}

// VectorWorkloads returns Table 1's five Vector entries.
func VectorWorkloads() []VectorWorkload {
	return []VectorWorkload{
		{"19-16-1s", 19, 16, 1, false},
		{"19-16-7s", 19, 16, 7, false},
		{"14-12-7s", 14, 12, 7, false},
		{"14-16-7s", 14, 16, 7, false},
		{"14-16-7r", 14, 16, 7, true},
	}
}

// BuildVectorTrace expands a vector workload into a request trace: the
// 2^CountLog vectors are consumed 2^RowsLog at a time by OR requests.
// Sequential workloads enjoy the allocator's subarray affinity; random ones
// scatter operands across the memory, which is what demotes the requests to
// inter-subarray/bank placements.
func BuildVectorTrace(w VectorWorkload) (*workload.Trace, error) {
	mapper, err := pimrt.NewMapper(memarch.Default())
	if err != nil {
		return nil, err
	}
	bits := 1 << w.LenLog
	vectors := 1 << w.CountLog
	perOp := 1 << w.RowsLog
	if perOp < 2 {
		perOp = 2
	}
	rng := rand.New(rand.NewSource(0x7EC7 + int64(w.LenLog)))
	tr := &workload.Trace{Name: w.Name}

	// Rows per logical vector (vectors longer than a rank row span several
	// physical rows; the mapper IDs below stay per-vector).
	rowBits := memarch.Default().RowBits()
	rowsPerVec := (bits + rowBits - 1) / rowBits

	ids := make([]int, perOp)
	for done := 0; done+perOp <= vectors; done += perOp {
		for i := 0; i < perOp; i++ {
			if w.Random {
				ids[i] = rng.Intn(vectors) * rowsPerVec
			} else {
				ids[i] = (done + i) * rowsPerVec
			}
		}
		// Random draws may collide; nudge duplicates to keep rows distinct.
		seen := map[int]bool{}
		for i := range ids {
			for seen[ids[i]] {
				ids[i] = (ids[i] + rowsPerVec) % (vectors * rowsPerVec)
			}
			seen[ids[i]] = true
		}
		spec, err := mapper.SpecForIDs(ids, bits)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", w.Name, err)
		}
		tr.Append(spec)
	}
	return tr, nil
}

// GraphTrace builds the bitmap-BFS trace for a named graph dataset.
func GraphTrace(name string) (*workload.Trace, error) {
	d, err := graph.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	g, err := d.Build()
	if err != nil {
		return nil, err
	}
	mapper, err := pimrt.NewMapper(memarch.Default())
	if err != nil {
		return nil, err
	}
	tr := &workload.Trace{Name: name}
	if _, err := graph.BitmapBFS(g, mapper, graph.DefaultCPUWork(), tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// FastbitTrace builds the bitmap-database trace for a query-batch size
// (Table 1: 240, 480 or 720 queries against the STAR-like event table).
func FastbitTrace(queries int) (*workload.Trace, error) {
	table, err := fastbit.SyntheticSTAR(1<<17, 64, 0x57A2)
	if err != nil {
		return nil, err
	}
	mapper, err := pimrt.NewMapper(memarch.Default())
	if err != nil {
		return nil, err
	}
	tr, _, err := fastbit.Workload(table, queries, mapper, fastbit.DefaultCPUWork(), 0xDB)
	return tr, err
}

// NamedTrace is one evaluation workload with its Table 1 grouping.
type NamedTrace struct {
	Group string // "Vector", "Graph", "Fastbit"
	Trace *workload.Trace
}

// AllTraces builds the full 11-workload evaluation set of Figs. 10–11.
func AllTraces() ([]NamedTrace, error) {
	var out []NamedTrace
	for _, vw := range VectorWorkloads() {
		tr, err := BuildVectorTrace(vw)
		if err != nil {
			return nil, err
		}
		out = append(out, NamedTrace{Group: "Vector", Trace: tr})
	}
	for _, name := range []string{"dblp", "eswiki", "amazon"} {
		tr, err := GraphTrace(name)
		if err != nil {
			return nil, err
		}
		out = append(out, NamedTrace{Group: "Graph", Trace: tr})
	}
	for _, q := range []int{240, 480, 720} {
		tr, err := FastbitTrace(q)
		if err != nil {
			return nil, err
		}
		out = append(out, NamedTrace{Group: "Fastbit", Trace: tr})
	}
	return out, nil
}

// AppTraces builds only the two real applications of Fig. 12.
func AppTraces() ([]NamedTrace, error) {
	all, err := AllTraces()
	if err != nil {
		return nil, err
	}
	var apps []NamedTrace
	for _, nt := range all {
		if nt.Group != "Vector" {
			apps = append(apps, nt)
		}
	}
	return apps, nil
}

// EngineSet bundles the five engines of the comparison.
type EngineSet struct {
	SIMD        workload.Engine // the normalisation baseline (PCM memory)
	SDRAM       workload.Engine
	ACPIM       workload.Engine
	Pinatubo2   workload.Engine
	Pinatubo128 workload.Engine
}

// Engines constructs the evaluation engine set: the SIMD baseline on PCM
// (the memory Pinatubo and AC-PIM use), S-DRAM with a SIMD-on-DRAM
// fallback, AC-PIM, and the two Pinatubo variants.
func Engines() (*EngineSet, error) {
	simdPCM, err := simd.New(simd.HaswellConfig(nvm.PCM))
	if err != nil {
		return nil, err
	}
	simdDRAM, err := simd.New(simd.HaswellConfig(nvm.DRAM))
	if err != nil {
		return nil, err
	}
	sd, err := sdram.New(sdram.DefaultConfig(simdDRAM))
	if err != nil {
		return nil, err
	}
	ac, err := acpim.New(acpim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	p2, err := pim.NewEngine(nvm.PCM, 2)
	if err != nil {
		return nil, err
	}
	p128, err := pim.NewEngine(nvm.PCM, 128)
	if err != nil {
		return nil, err
	}
	return &EngineSet{
		SIMD:        simdPCM,
		SDRAM:       sd,
		ACPIM:       ac,
		Pinatubo2:   p2,
		Pinatubo128: p128,
	}, nil
}

// Compared returns the non-baseline engines in figure order.
func (e *EngineSet) Compared() []workload.Engine {
	return []workload.Engine{e.SDRAM, e.ACPIM, e.Pinatubo2, e.Pinatubo128}
}

// newSIMDFor builds the CPU baseline attached to a main memory of the
// given technology.
func newSIMDFor(tech nvm.Tech) (workload.Engine, error) {
	return simd.New(simd.HaswellConfig(tech))
}

// newSIMDPCM is the evaluation's default baseline.
func newSIMDPCM() (workload.Engine, error) { return newSIMDFor(nvm.PCM) }

package bitvec

import (
	"math/rand"
	"testing"
)

// The raw-word helpers (PopcountWords, EqualWords, DiffCount) exist so
// the system hot path can work on row buffers whose tail words carry
// garbage past nbits — no Vector wrapping, no allocation. These tests
// pin both properties: tail garbage is ignored, and the helpers are
// allocation-free.

// garble copies words and scribbles junk into the bits past nbits.
func garble(words []uint64, nbits int) []uint64 {
	out := append([]uint64(nil), words...)
	if idx, mask, ok := tailWordMask(nbits); ok {
		out[idx] |= ^mask
	}
	return out
}

func randVec(nbits int, seed int64) *Vector {
	rng := rand.New(rand.NewSource(seed))
	v := New(nbits)
	for i := 0; i < v.WordCount(); i++ {
		v.SetWord(i, rng.Uint64())
	}
	return v
}

func TestPopcountWordsIgnoresTail(t *testing.T) {
	for _, nbits := range []int{1, 63, 64, 65, 300, 4096} {
		v := randVec(nbits, int64(nbits))
		dirty := garble(v.Words(), nbits)
		if got, want := PopcountWords(dirty, nbits), v.Popcount(); got != want {
			t.Errorf("nbits=%d: PopcountWords=%d want %d", nbits, got, want)
		}
	}
}

func TestEqualWordsIgnoresTail(t *testing.T) {
	for _, nbits := range []int{1, 63, 64, 65, 300} {
		v := randVec(nbits, int64(nbits))
		dirty := garble(v.Words(), nbits)
		if !EqualWords(v.Words(), dirty, nbits) {
			t.Errorf("nbits=%d: tail garbage broke EqualWords", nbits)
		}
		if nbits > 0 {
			flipped := append([]uint64(nil), dirty...)
			flipped[0] ^= 1
			if EqualWords(v.Words(), flipped, nbits) {
				t.Errorf("nbits=%d: EqualWords missed an in-range flip", nbits)
			}
		}
	}
}

func TestDiffCountMatchesXorPopcount(t *testing.T) {
	for _, nbits := range []int{1, 63, 64, 65, 300, 4096} {
		a := randVec(nbits, int64(nbits))
		b := randVec(nbits, int64(nbits)+1000)
		ref := New(nbits)
		ref.Xor(a, b)
		want := ref.Popcount()
		got := DiffCount(garble(a.Words(), nbits), garble(b.Words(), nbits), nbits)
		if got != want {
			t.Errorf("nbits=%d: DiffCount=%d want %d", nbits, got, want)
		}
		if d := DiffCount(garble(a.Words(), nbits), a.Words(), nbits); d != 0 {
			t.Errorf("nbits=%d: DiffCount of identical payloads = %d", nbits, d)
		}
	}
}

func TestWordHelpersZeroAllocs(t *testing.T) {
	a := randVec(4096, 1).Words()
	b := randVec(4096, 2).Words()
	allocs := testing.AllocsPerRun(100, func() {
		_ = PopcountWords(a, 4096)
		_ = EqualWords(a, b, 4096)
		_ = DiffCount(a, b, 4096)
	})
	if allocs != 0 {
		t.Errorf("%v allocs/op across the word helpers, want 0", allocs)
	}
}

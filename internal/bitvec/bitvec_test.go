package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLengthAndZero(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len=%d want %d", v.Len(), n)
		}
		if v.Popcount() != 0 {
			t.Fatalf("new vector of %d bits not zero", n)
		}
		if got, want := v.WordCount(), WordsFor(n); got != want {
			t.Fatalf("WordCount=%d want %d", got, want)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestWordsFor(t *testing.T) {
	cases := []struct{ bits, words int }{
		{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {-5, 0},
	}
	for _, c := range cases {
		if got := WordsFor(c.bits); got != c.words {
			t.Errorf("WordsFor(%d)=%d want %d", c.bits, got, c.words)
		}
	}
}

func TestSetGetClearFlip(t *testing.T) {
	v := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.Popcount() != len(idx) {
		t.Fatalf("popcount=%d want %d", v.Popcount(), len(idx))
	}
	for _, i := range idx {
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
	v.Flip(64)
	if !v.Get(64) {
		t.Fatal("flip 0->1 failed")
	}
	v.Flip(64)
	if v.Get(64) {
		t.Fatal("flip 1->0 failed")
	}
}

func TestIndexPanics(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestTailInvariantSetAllNot(t *testing.T) {
	v := New(70) // 6 tail bits in word 1
	v.SetAll()
	if v.Popcount() != 70 {
		t.Fatalf("SetAll popcount=%d want 70", v.Popcount())
	}
	w := New(70)
	w.Not(v) // all zero
	if w.Any() {
		t.Fatal("NOT of all-ones should be empty")
	}
	w.Not(w)
	if w.Popcount() != 70 {
		t.Fatalf("NOT of empty should be full, got %d", w.Popcount())
	}
}

func TestFromWordsClearsTail(t *testing.T) {
	v := FromWords(4, []uint64{^uint64(0)})
	if v.Popcount() != 4 {
		t.Fatalf("popcount=%d want 4", v.Popcount())
	}
	v.SetWord(0, ^uint64(0))
	if v.Popcount() != 4 {
		t.Fatalf("SetWord tail not cleared: popcount=%d", v.Popcount())
	}
}

func TestFromBits(t *testing.T) {
	bitsIn := []bool{true, false, true, true, false}
	v := FromBits(bitsIn)
	for i, b := range bitsIn {
		if v.Get(i) != b {
			t.Fatalf("bit %d = %v want %v", i, v.Get(i), b)
		}
	}
}

func TestBinaryOps(t *testing.T) {
	a := FromWords(128, []uint64{0xF0F0, 0xAAAA})
	b := FromWords(128, []uint64{0x0FF0, 0x5555})
	and, or, xor, andnot := New(128), New(128), New(128), New(128)
	and.And(a, b)
	or.Or(a, b)
	xor.Xor(a, b)
	andnot.AndNot(a, b)
	if and.Word(0) != 0x00F0 || and.Word(1) != 0 {
		t.Errorf("AND wrong: %x %x", and.Word(0), and.Word(1))
	}
	if or.Word(0) != 0xFFF0 || or.Word(1) != 0xFFFF {
		t.Errorf("OR wrong: %x %x", or.Word(0), or.Word(1))
	}
	if xor.Word(0) != 0xFF00 || xor.Word(1) != 0xFFFF {
		t.Errorf("XOR wrong: %x %x", xor.Word(0), xor.Word(1))
	}
	if andnot.Word(0) != 0xF000 || andnot.Word(1) != 0xAAAA {
		t.Errorf("ANDNOT wrong: %x %x", andnot.Word(0), andnot.Word(1))
	}
}

func TestOpsAliasing(t *testing.T) {
	a := FromWords(64, []uint64{0xF0F0})
	b := FromWords(64, []uint64{0x0FF0})
	a.And(a, b)
	if a.Word(0) != 0x00F0 {
		t.Errorf("aliased AND wrong: %x", a.Word(0))
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(64), New(65)
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	New(64).And(a, b)
}

func TestOrAllAndAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, k = 300, 7
	ops := make([]*Vector, k)
	for i := range ops {
		ops[i] = randomVector(rng, n)
	}
	or, and := New(n), New(n)
	or.OrAll(ops...)
	and.AndAll(ops...)
	for i := 0; i < n; i++ {
		wantOr, wantAnd := false, true
		for _, o := range ops {
			wantOr = wantOr || o.Get(i)
			wantAnd = wantAnd && o.Get(i)
		}
		if or.Get(i) != wantOr {
			t.Fatalf("OrAll bit %d = %v want %v", i, or.Get(i), wantOr)
		}
		if and.Get(i) != wantAnd {
			t.Fatalf("AndAll bit %d = %v want %v", i, and.Get(i), wantAnd)
		}
	}
}

func TestOrAllEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OrAll() did not panic")
		}
	}()
	New(8).OrAll()
}

func TestAndAllEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AndAll() did not panic")
		}
	}()
	New(8).AndAll()
}

func TestNextSetNextClear(t *testing.T) {
	v := New(200)
	v.Set(3)
	v.Set(64)
	v.Set(199)
	if got := v.NextSet(0); got != 3 {
		t.Errorf("NextSet(0)=%d want 3", got)
	}
	if got := v.NextSet(4); got != 64 {
		t.Errorf("NextSet(4)=%d want 64", got)
	}
	if got := v.NextSet(65); got != 199 {
		t.Errorf("NextSet(65)=%d want 199", got)
	}
	if got := v.NextSet(200); got != -1 {
		t.Errorf("NextSet(200)=%d want -1", got)
	}
	w := New(130)
	w.SetAll()
	w.Clear(129)
	if got := w.NextClear(0); got != 129 {
		t.Errorf("NextClear(0)=%d want 129", got)
	}
	w.Set(129)
	if got := w.NextClear(0); got != -1 {
		t.Errorf("NextClear full=%d want -1", got)
	}
}

func TestNextClearSkipsFullWords(t *testing.T) {
	v := New(256)
	v.SetAll()
	v.Clear(200)
	if got := v.NextClear(5); got != 200 {
		t.Errorf("NextClear(5)=%d want 200", got)
	}
}

func TestForEachSet(t *testing.T) {
	v := New(300)
	want := []int{0, 5, 63, 64, 128, 299}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestSetClearRange(t *testing.T) {
	v := New(300)
	v.SetRange(10, 200)
	if v.Popcount() != 190 {
		t.Fatalf("popcount=%d want 190", v.Popcount())
	}
	if v.Get(9) || !v.Get(10) || !v.Get(199) || v.Get(200) {
		t.Fatal("range boundaries wrong")
	}
	v.ClearRange(50, 60)
	if v.Popcount() != 180 {
		t.Fatalf("popcount=%d want 180", v.Popcount())
	}
	v.SetRange(5, 5) // empty range is a no-op
	if v.Get(5) {
		t.Fatal("empty range set a bit")
	}
}

func TestRangeWithinOneWord(t *testing.T) {
	v := New(64)
	v.SetRange(3, 9)
	if v.Popcount() != 6 || !v.Get(3) || !v.Get(8) || v.Get(9) {
		t.Fatal("single-word range wrong")
	}
}

func TestBadRangePanics(t *testing.T) {
	v := New(10)
	for _, r := range [][2]int{{-1, 5}, {0, 11}, {7, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetRange(%d,%d) did not panic", r[0], r[1])
				}
			}()
			v.SetRange(r[0], r[1])
		}()
	}
}

func TestCountRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := randomVector(rng, 500)
	for trial := 0; trial < 100; trial++ {
		lo := rng.Intn(500)
		hi := lo + rng.Intn(500-lo+1)
		want := 0
		for i := lo; i < hi; i++ {
			if v.Get(i) {
				want++
			}
		}
		if got := v.CountRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d,%d)=%d want %d", lo, hi, got, want)
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := randomVector(rng, 777)
	w := v.Clone()
	if !v.Equal(w) {
		t.Fatal("clone not equal")
	}
	w.Flip(500)
	if v.Equal(w) {
		t.Fatal("flip should break equality")
	}
	if v.Equal(New(778)) {
		t.Fatal("different lengths should not be equal")
	}
}

func TestCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randomVector(rng, 100)
	w := New(100)
	w.CopyFrom(v)
	if !w.Equal(v) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestAnyNone(t *testing.T) {
	v := New(100)
	if v.Any() || !v.None() {
		t.Fatal("empty vector Any/None wrong")
	}
	v.Set(99)
	if !v.Any() || v.None() {
		t.Fatal("nonempty vector Any/None wrong")
	}
}

func TestString(t *testing.T) {
	v := New(4)
	v.Set(0)
	v.Set(2)
	if s := v.String(); s != "1010" {
		t.Fatalf("String=%q want 1010", s)
	}
	long := New(200)
	if s := long.String(); len(s) < 128 {
		t.Fatalf("long String too short: %q", s)
	}
}

// --- property-based tests ---

func randomVector(rng *rand.Rand, n int) *Vector {
	v := New(n)
	for i := range v.words {
		v.SetWord(i, rng.Uint64())
	}
	return v
}

// prop: De Morgan — NOT(a AND b) == NOT a OR NOT b.
func TestPropDeMorgan(t *testing.T) {
	f := func(aw, bw []uint64, nSeed uint8) bool {
		n := int(nSeed)%512 + 1
		a := FromWords(n, aw)
		b := FromWords(n, bw)
		lhs, rhs, na, nb, ab := New(n), New(n), New(n), New(n), New(n)
		ab.And(a, b)
		lhs.Not(ab)
		na.Not(a)
		nb.Not(b)
		rhs.Or(na, nb)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// prop: XOR is its own inverse — (a XOR b) XOR b == a.
func TestPropXorInvolution(t *testing.T) {
	f := func(aw, bw []uint64, nSeed uint8) bool {
		n := int(nSeed)%512 + 1
		a := FromWords(n, aw)
		b := FromWords(n, bw)
		x := New(n)
		x.Xor(a, b)
		x.Xor(x, b)
		return x.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// prop: OrAll equals left fold of Or; AndAll equals left fold of And.
func TestPropFoldEquivalence(t *testing.T) {
	f := func(seed int64, kSeed, nSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kSeed)%6 + 2
		n := int(nSeed)%300 + 1
		ops := make([]*Vector, k)
		for i := range ops {
			ops[i] = randomVector(rng, n)
		}
		orAll, andAll := New(n), New(n)
		orAll.OrAll(ops...)
		andAll.AndAll(ops...)
		foldOr, foldAnd := ops[0].Clone(), ops[0].Clone()
		for _, o := range ops[1:] {
			foldOr.Or(foldOr, o)
			foldAnd.And(foldAnd, o)
		}
		return orAll.Equal(foldOr) && andAll.Equal(foldAnd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// prop: popcount(a) + popcount(b) == popcount(a AND b) + popcount(a OR b).
func TestPropInclusionExclusion(t *testing.T) {
	f := func(aw, bw []uint64, nSeed uint16) bool {
		n := int(nSeed)%2048 + 1
		a := FromWords(n, aw)
		b := FromWords(n, bw)
		and, or := New(n), New(n)
		and.And(a, b)
		or.Or(a, b)
		return a.Popcount()+b.Popcount() == and.Popcount()+or.Popcount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// prop: NextSet enumerates exactly the set bits.
func TestPropNextSetEnumeration(t *testing.T) {
	f := func(seed int64, nSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSeed)%300 + 1
		v := randomVector(rng, n)
		count := 0
		for i := v.NextSet(0); i != -1; i = v.NextSet(i + 1) {
			if !v.Get(i) {
				return false
			}
			count++
		}
		return count == v.Popcount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOr64K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomVector(rng, 1<<16)
	y := randomVector(rng, 1<<16)
	dst := New(1 << 16)
	b.SetBytes(1 << 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Or(x, y)
	}
}

func BenchmarkOrAll128x64K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ops := make([]*Vector, 128)
	for i := range ops {
		ops[i] = randomVector(rng, 1<<16)
	}
	dst := New(1 << 16)
	b.SetBytes(128 << 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.OrAll(ops...)
	}
}

func BenchmarkPopcount1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := randomVector(rng, 1<<20)
	b.SetBytes(1 << 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Popcount()
	}
}

package bitvec

import "testing"

// FuzzRangeOps: SetRange/ClearRange/CountRange stay mutually consistent
// and respect the tail invariant for arbitrary ranges.
func FuzzRangeOps(f *testing.F) {
	f.Add(uint16(100), uint16(5), uint16(50))
	f.Add(uint16(64), uint16(0), uint16(64))
	f.Add(uint16(1), uint16(0), uint16(1))
	f.Fuzz(func(t *testing.T, nSeed, loSeed, hiSeed uint16) {
		n := int(nSeed)%2000 + 1
		lo := int(loSeed) % (n + 1)
		hi := lo + int(hiSeed)%(n-lo+1)
		v := New(n)
		v.SetRange(lo, hi)
		if got := v.Popcount(); got != hi-lo {
			t.Fatalf("SetRange(%d,%d) popcount %d", lo, hi, got)
		}
		if got := v.CountRange(lo, hi); got != hi-lo {
			t.Fatalf("CountRange inside %d", got)
		}
		if lo > 0 && v.CountRange(0, lo) != 0 {
			t.Fatal("bits set below lo")
		}
		if hi < n && v.CountRange(hi, n) != 0 {
			t.Fatal("bits set above hi")
		}
		v.ClearRange(lo, hi)
		if v.Any() {
			t.Fatal("ClearRange left bits")
		}
		// Tail invariant must survive all of it.
		v.SetAll()
		if v.Popcount() != n {
			t.Fatal("tail invariant broken")
		}
	})
}

// FuzzNextSetClear: the scan primitives agree with bit-by-bit inspection.
func FuzzNextSetClear(f *testing.F) {
	f.Add([]byte{0xA5}, uint16(70))
	f.Add([]byte{0x00, 0xFF}, uint16(130))
	f.Fuzz(func(t *testing.T, data []byte, nSeed uint16) {
		n := int(nSeed)%1000 + 1
		v := New(n)
		for i := 0; i < n && len(data) > 0; i++ {
			if (data[i%len(data)]>>(uint(i)%8))&1 == 1 {
				v.Set(i)
			}
		}
		// NextSet from every position agrees with a linear scan.
		for start := 0; start < n; start += 1 + n/17 {
			want := -1
			for i := start; i < n; i++ {
				if v.Get(i) {
					want = i
					break
				}
			}
			if got := v.NextSet(start); got != want {
				t.Fatalf("NextSet(%d)=%d want %d", start, got, want)
			}
			wantC := -1
			for i := start; i < n; i++ {
				if !v.Get(i) {
					wantC = i
					break
				}
			}
			if got := v.NextClear(start); got != wantC {
				t.Fatalf("NextClear(%d)=%d want %d", start, got, wantC)
			}
		}
	})
}

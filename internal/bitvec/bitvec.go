// Package bitvec provides a dense, word-parallel bit-vector used throughout
// the Pinatubo simulator: applications build bitmaps with it, and the PIM
// functional model uses it as the golden reference for every in-memory
// bitwise operation.
//
// A Vector has a fixed length in bits. All bulk operations require operands
// of equal length; bits past the logical length inside the last word are
// kept zero at all times (the "tail invariant"), so popcounts and equality
// never see garbage.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	// WordBits is the number of bits per storage word.
	WordBits = 64
	wordMask = WordBits - 1
	wordLog  = 6
)

// Vector is a fixed-length dense bit vector.
type Vector struct {
	nbits int
	words []uint64
}

// WordsFor returns the number of 64-bit words needed to store nbits bits.
func WordsFor(nbits int) int {
	if nbits <= 0 {
		return 0
	}
	return (nbits + wordMask) >> wordLog
}

// New returns a zeroed Vector of nbits bits. It panics if nbits is negative.
func New(nbits int) *Vector {
	if nbits < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", nbits))
	}
	return &Vector{nbits: nbits, words: make([]uint64, WordsFor(nbits))}
}

// FromWords builds a Vector of nbits bits from the given words. The slice is
// copied; surplus tail bits are cleared to preserve the tail invariant.
func FromWords(nbits int, words []uint64) *Vector {
	v := New(nbits)
	copy(v.words, words)
	v.clearTail()
	return v
}

// tailWordMask returns the index of the word holding bit nbits-1 and the
// mask of the valid bits inside it, or ok=false when nbits lands exactly
// on a word boundary (no partial tail word).
func tailWordMask(nbits int) (idx int, mask uint64, ok bool) {
	if r := nbits & wordMask; r != 0 {
		return nbits >> wordLog, (uint64(1) << uint(r)) - 1, true
	}
	return 0, 0, false
}

// PopcountWords counts the set bits among the first nbits bits of a raw
// word slice, masking any garbage in the final partial word. It is the
// zero-alloc form of FromWords(nbits, words).Popcount() for hot paths
// that hold row words rather than Vectors (stored rows keep tail garbage;
// this never reads it).
func PopcountWords(words []uint64, nbits int) int {
	w := WordsFor(nbits)
	if w > len(words) {
		w = len(words)
	}
	n := 0
	for _, word := range words[:w] {
		n += bits.OnesCount64(word)
	}
	if idx, mask, ok := tailWordMask(nbits); ok && idx < w {
		n -= bits.OnesCount64(words[idx] &^ mask)
	}
	return n
}

// EqualWords reports whether the first nbits bits of two raw word slices
// agree, ignoring tail garbage past nbits. Both slices must cover nbits
// bits. Zero-alloc counterpart of comparing FromWords vectors.
func EqualWords(a, b []uint64, nbits int) bool {
	w := WordsFor(nbits)
	idx, mask, partial := tailWordMask(nbits)
	for i := 0; i < w; i++ {
		x := a[i] ^ b[i]
		if partial && i == idx {
			x &= mask
		}
		if x != 0 {
			return false
		}
	}
	return true
}

// DiffCount counts the bit positions within the first nbits bits where
// two raw word slices disagree — the zero-alloc XOR-fold the verified
// read path uses to count corrected bits.
func DiffCount(a, b []uint64, nbits int) int {
	w := WordsFor(nbits)
	idx, mask, partial := tailWordMask(nbits)
	n := 0
	for i := 0; i < w; i++ {
		x := a[i] ^ b[i]
		if partial && i == idx {
			x &= mask
		}
		n += bits.OnesCount64(x)
	}
	return n
}

// FromBits builds a Vector from a slice of booleans, one per bit.
func FromBits(bitvals []bool) *Vector {
	v := New(len(bitvals))
	for i, b := range bitvals {
		if b {
			v.Set(i)
		}
	}
	return v
}

// Len returns the logical length of the vector in bits.
func (v *Vector) Len() int { return v.nbits }

// Words returns the backing words. The last word's bits beyond Len() are
// guaranteed zero. The caller must not resize the slice; mutating bits is
// allowed but must preserve the tail invariant (prefer SetWord).
func (v *Vector) Words() []uint64 { return v.words }

// WordCount returns the number of backing words.
func (v *Vector) WordCount() int { return len(v.words) }

// SetWord stores w at word index i, clearing tail bits if i is the last word.
func (v *Vector) SetWord(i int, w uint64) {
	v.words[i] = w
	if i == len(v.words)-1 {
		v.clearTail()
	}
}

// Word returns word i.
func (v *Vector) Word(i int) uint64 { return v.words[i] }

func (v *Vector) clearTail() {
	if tail := uint(v.nbits) & wordMask; tail != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (uint64(1) << tail) - 1
	}
}

// checkIndex panics if i is outside [0, nbits) — the API's index contract,
// like a slice bounds check.
func (v *Vector) checkIndex(i int) {
	if i < 0 || i >= v.nbits {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.nbits))
	}
}

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.checkIndex(i)
	v.words[i>>wordLog] |= 1 << (uint(i) & wordMask)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.checkIndex(i)
	v.words[i>>wordLog] &^= 1 << (uint(i) & wordMask)
}

// Flip toggles bit i.
func (v *Vector) Flip(i int) {
	v.checkIndex(i)
	v.words[i>>wordLog] ^= 1 << (uint(i) & wordMask)
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.checkIndex(i)
	return v.words[i>>wordLog]&(1<<(uint(i)&wordMask)) != 0
}

// SetAll sets every bit to 1.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.clearTail()
}

// Reset clears every bit to 0.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	w := New(v.nbits)
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with src. Lengths must match.
func (v *Vector) CopyFrom(src *Vector) {
	v.mustMatch(src)
	copy(v.words, src.words)
}

// mustMatch panics on an operand length mismatch — a caller bug, never a
// data condition.
func (v *Vector) mustMatch(o *Vector) {
	if v.nbits != o.nbits {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.nbits, o.nbits))
	}
}

// And stores a AND b into v. All three must have equal length; v may alias
// either operand.
func (v *Vector) And(a, b *Vector) {
	v.mustMatch(a)
	v.mustMatch(b)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// Or stores a OR b into v.
func (v *Vector) Or(a, b *Vector) {
	v.mustMatch(a)
	v.mustMatch(b)
	for i := range v.words {
		v.words[i] = a.words[i] | b.words[i]
	}
}

// Xor stores a XOR b into v.
func (v *Vector) Xor(a, b *Vector) {
	v.mustMatch(a)
	v.mustMatch(b)
	for i := range v.words {
		v.words[i] = a.words[i] ^ b.words[i]
	}
}

// AndNot stores a AND NOT b into v.
func (v *Vector) AndNot(a, b *Vector) {
	v.mustMatch(a)
	v.mustMatch(b)
	for i := range v.words {
		v.words[i] = a.words[i] &^ b.words[i]
	}
}

// Not stores NOT a into v (within the logical length).
func (v *Vector) Not(a *Vector) {
	v.mustMatch(a)
	for i := range v.words {
		v.words[i] = ^a.words[i]
	}
	v.clearTail()
}

// OrAll stores the OR of all operands into v. It panics if operands is
// empty. This is the software analogue of Pinatubo's one-step n-row OR.
func (v *Vector) OrAll(operands ...*Vector) {
	if len(operands) == 0 {
		panic("bitvec: OrAll needs at least one operand")
	}
	for _, o := range operands {
		v.mustMatch(o)
	}
	for i := range v.words {
		w := operands[0].words[i]
		for _, o := range operands[1:] {
			w |= o.words[i]
		}
		v.words[i] = w
	}
}

// AndAll stores the AND of all operands into v. It panics if operands is
// empty.
func (v *Vector) AndAll(operands ...*Vector) {
	if len(operands) == 0 {
		panic("bitvec: AndAll needs at least one operand")
	}
	for _, o := range operands {
		v.mustMatch(o)
	}
	for i := range v.words {
		w := operands[0].words[i]
		for _, o := range operands[1:] {
			w &= o.words[i]
		}
		v.words[i] = w
	}
}

// Popcount returns the number of set bits.
func (v *Vector) Popcount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (v *Vector) None() bool { return !v.Any() }

// Equal reports whether v and o have identical length and contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.nbits != o.nbits {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (v *Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.nbits {
		return -1
	}
	wi := i >> wordLog
	w := v.words[wi] >> (uint(i) & wordMask)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi<<wordLog + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// NextClear returns the index of the first clear bit at or after i, or -1
// if every bit in [i, Len) is set.
func (v *Vector) NextClear(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < v.nbits; i++ {
		wi := i >> wordLog
		w := ^v.words[wi] >> (uint(i) & wordMask)
		if w == 0 {
			i = (wi+1)<<wordLog - 1
			continue
		}
		j := i + bits.TrailingZeros64(w)
		if j >= v.nbits {
			return -1
		}
		return j
	}
	return -1
}

// ForEachSet calls fn for every set bit index, in ascending order.
func (v *Vector) ForEachSet(fn func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			fn(wi<<wordLog + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// SetRange sets bits [lo, hi) to 1.
func (v *Vector) SetRange(lo, hi int) {
	v.rangeOp(lo, hi, func(i int, mask uint64) { v.words[i] |= mask })
}

// ClearRange sets bits [lo, hi) to 0.
func (v *Vector) ClearRange(lo, hi int) {
	v.rangeOp(lo, hi, func(i int, mask uint64) { v.words[i] &^= mask })
}

// rangeOp applies a masked word operation over bits [lo, hi). Panics on a
// bad range, mirroring slice-expression semantics.
func (v *Vector) rangeOp(lo, hi int, apply func(i int, mask uint64)) {
	if lo < 0 || hi > v.nbits || lo > hi {
		panic(fmt.Sprintf("bitvec: bad range [%d,%d) for length %d", lo, hi, v.nbits))
	}
	if lo == hi {
		return
	}
	loW, hiW := lo>>wordLog, (hi-1)>>wordLog
	loMask := ^uint64(0) << (uint(lo) & wordMask)
	hiMask := ^uint64(0) >> (wordMask - (uint(hi-1) & wordMask))
	if loW == hiW {
		apply(loW, loMask&hiMask)
		return
	}
	apply(loW, loMask)
	for i := loW + 1; i < hiW; i++ {
		apply(i, ^uint64(0))
	}
	apply(hiW, hiMask)
}

// CountRange returns the number of set bits in [lo, hi). Panics on a bad
// range, mirroring slice-expression semantics.
func (v *Vector) CountRange(lo, hi int) int {
	if lo < 0 || hi > v.nbits || lo > hi {
		panic(fmt.Sprintf("bitvec: bad range [%d,%d) for length %d", lo, hi, v.nbits))
	}
	n := 0
	for i := lo; i < hi; {
		wi := i >> wordLog
		w := v.words[wi]
		// Mask off bits below i.
		w >>= uint(i) & wordMask
		remaining := hi - i
		inWord := WordBits - int(uint(i)&wordMask)
		if remaining < inWord {
			w &= (uint64(1) << uint(remaining)) - 1
			inWord = remaining
		}
		n += bits.OnesCount64(w)
		i += inWord
	}
	return n
}

// String renders the vector as a 0/1 string, bit 0 first. Long vectors are
// truncated with an ellipsis; intended for debugging.
func (v *Vector) String() string {
	const limit = 128
	n := v.nbits
	trunc := false
	if n > limit {
		n, trunc = limit, true
	}
	var sb strings.Builder
	sb.Grow(n + 16)
	for i := 0; i < n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if trunc {
		fmt.Fprintf(&sb, "…(+%d bits)", v.nbits-limit)
	}
	return sb.String()
}

// Package backend defines the technology-backend seam of the simulator:
// the contract a memory technology must implement so the Pinatubo
// controller can lower intra-subarray compute requests through it. The
// controller owns everything placement- and protocol-generic —
// classification, the inter-subarray/bank digital datapath, write-back
// routing, the program cache, counters, ECC — and delegates exactly two
// things to the backend: how a co-located operand set is computed inside
// the array (the command sequence, its energy, and the functional result)
// and what the technology is capable of (operand depth, voted sensing,
// reserved rows).
//
// Two backends exist: the modified-sense-amplifier NVM backend in this
// package (SenseAmp — the paper's architecture, shared by PCM, STT-MRAM
// and ReRAM) and the in-DRAM triple-row-activation backend in
// internal/dram. Both lower to the same ddr.Cmd vocabulary and flow
// through the same cmdstream.Program type, so Plan, Batch sharding and
// the pinatubod window pipeline never see which technology they run on.
package backend

import (
	"errors"

	"pinatubo/internal/ddr"
	"pinatubo/internal/energy"
	"pinatubo/internal/fault"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

// ErrActivationFault is returned when a multi-row activation transiently
// fails under fault injection. The operation touched no cell state, so the
// caller may simply reissue it. (The message keeps the historical "pim:"
// prefix — the sentinel predates the backend seam and callers surface it
// verbatim.)
var ErrActivationFault = errors.New("pim: transient multi-row activation fault")

// Caps describes what a backend's in-array compute path can do. The
// controller and runtime consult it instead of hard-coding technology
// assumptions.
type Caps struct {
	// MaxORRows is the one-step OR operand limit (sensing margin and
	// architectural cap combined). The scheduler chains deeper ORs.
	MaxORRows int
	// VotedSensing reports whether the backend can sense one operand set
	// several times at full margin in a single command sequence — the
	// mechanism behind ExecuteVoted. True only for modified-SA sensing.
	VotedSensing bool
	// ComputeRows is how many rows at the top of every subarray the
	// backend reserves for itself (designated compute/control rows). The
	// allocator keeps them out of circulation, on top of the scheduler's
	// scratch row. Zero for backends that compute in the sense amplifiers.
	ComputeRows int
	// FaultInjection reports whether the resistive fault model applies to
	// this backend's sensing. When false, attaching an injector to the
	// controller is a configuration error the lowering rejects loudly.
	FaultInjection bool
}

// IntraRequest carries one intra-subarray compute request into a backend
// lowering. The controller fills every field; the backend appends
// commands, charges energy and writes the functional result into Out.
type IntraRequest struct {
	Op sense.Op
	// Srcs are the operand rows; all share one subarray and are distinct
	// (the controller classified and validated them).
	Srcs []memarch.RowAddr
	// Bits is the vector length; Rows[i] holds operand i's words, already
	// truncated to bitvec.WordsFor(Bits).
	Bits int
	Rows [][]uint64
	// Out is the result buffer, bitvec.WordsFor(Bits) words, zeroed or
	// stale — the backend must fully overwrite it.
	Out []uint64
	// Geo is the memory organisation (sense-group width, rows per
	// subarray).
	Geo memarch.Geometry
	// Inj is the attached fault injector, nil on the ideal-hardware path.
	// A backend whose Caps().FaultInjection is false must reject a
	// non-nil injector rather than silently ignore it.
	Inj *fault.Injector
	// Energy is the request's meter; the backend adds its per-component
	// spend.
	Energy *energy.Meter
}

// Backend is one memory technology's compute implementation.
type Backend interface {
	// Params returns the technology parameter set the backend prices with.
	Params() nvm.Params
	// Caps returns the backend's capability summary.
	Caps() Caps
	// ValidateOperands applies the backend's intra-subarray operand-count
	// rules (the inter-subarray/bank digital path has its own, in the
	// controller).
	ValidateOperands(op sense.Op, n int) error
	// LowerIntra appends the intra-subarray command sequence for req to
	// cmds, charges req.Energy, and fills req.Out with the functional
	// result. The sequence must leave the result in the computing
	// subarray's sense amplifiers with its rows still open — the
	// controller appends the write-back routing and the closing
	// precharge, exactly as for any other placement class.
	LowerIntra(req *IntraRequest, cmds []ddr.Cmd) ([]ddr.Cmd, error)
	// ComputeInto resolves op over the operand rows functionally, without
	// emitting commands or energy: the program-cache hit path and the
	// voted-execution replica passes recompute data effects through it.
	// For backends with a stochastic sensing model it must consume the
	// same random stream as LowerIntra's compute step, so cached and
	// fresh runs stay bit-identical.
	ComputeInto(dst []uint64, op sense.Op, rows [][]uint64) error
	// Reset restores the backend to its just-built state (sampling
	// streams, scratch) for sandbox reuse.
	Reset()
}

// SenseGroups returns how many serial column-group sensing steps cover
// `bits` bits in the given geometry.
func SenseGroups(geo memarch.Geometry, bits int) int {
	sw := geo.SenseWidthBits()
	return (bits + sw - 1) / sw
}

package backend

import (
	"fmt"

	"pinatubo/internal/analog"
	"pinatubo/internal/ddr"
	"pinatubo/internal/energy"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

// SenseAmp is the paper's backend: bulk bitwise operations computed in the
// modified sense amplifiers of a resistive NVM array (PCM, STT-MRAM,
// ReRAM). One multi-row activation through the LWL latches puts every
// operand on the bitlines at once; a re-referenced sense resolves the
// result in a single analog step per column group.
type SenseAmp struct {
	sa *sense.Array
}

// NewSenseAmp builds the modified-SA backend for a resistive technology.
// checkBits configures the per-op analog cross-check sample (0 disables).
func NewSenseAmp(p nvm.Params, cfg analog.SenseConfig, checkBits int) (*SenseAmp, error) {
	sa, err := sense.NewArray(p, cfg, checkBits)
	if err != nil {
		return nil, err
	}
	return &SenseAmp{sa: sa}, nil
}

// Params returns the technology parameter set.
func (b *SenseAmp) Params() nvm.Params { return b.sa.Params() }

// Caps: operand depth from the sensing-margin analysis, voted sensing
// available (replica groups re-sense at full margin), no reserved rows
// (the SAs are the compute unit), resistive fault model applies.
func (b *SenseAmp) Caps() Caps {
	return Caps{
		MaxORRows:      b.sa.MaxORRows(),
		VotedSensing:   true,
		ComputeRows:    0,
		FaultInjection: true,
	}
}

// ValidateOperands defers to the SA model's margin-derived rules.
func (b *SenseAmp) ValidateOperands(op sense.Op, n int) error {
	return b.sa.ValidateOperands(op, n)
}

// ComputeInto resolves the op through the SA model, including the analog
// cross-check sampling stream — cached and fresh runs stay bit-identical.
func (b *SenseAmp) ComputeInto(dst []uint64, op sense.Op, rows [][]uint64) error {
	return b.sa.ComputeWordsInto(dst, op, rows)
}

// Reset reseeds the SA model's sampling stream for sandbox reuse.
func (b *SenseAmp) Reset() { b.sa.Reset() }

// LowerIntra performs the one-step multi-row operation in the SAs: LWL
// reset, one activation per operand (the first at full tRCD, the rest one
// command slot each), then one re-referenced sense per column group per
// micro-step. The result stays in the SAs for the controller's write-back.
func (b *SenseAmp) LowerIntra(req *IntraRequest, cmds []ddr.Cmd) ([]ddr.Cmd, error) {
	op, srcs, bits, geo := req.Op, req.Srcs, req.Bits, req.Geo
	e := b.sa.Params().Energy

	// Multi-row activation through the LWL latches (protocol-checked).
	lwl := NewLWL(geo.RowsPerSubarray)
	lwl.Reset()
	cmds = append(cmds, ddr.Cmd{Kind: ddr.CmdLWLReset, Addr: srcs[0]})
	for i, s := range srcs {
		if err := lwl.Latch(s.Row); err != nil {
			return nil, err
		}
		kind := ddr.CmdActLatch
		if i == 0 {
			kind = ddr.CmdAct // the first activate biases the array: full tRCD
		}
		cmds = append(cmds, ddr.Cmd{Kind: kind, Addr: s})
	}
	if lwl.OpenCount() != len(srcs) {
		return nil, fmt.Errorf("pim: LWL opened %d rows, want %d", lwl.OpenCount(), len(srcs))
	}
	if req.Inj != nil && req.Inj.ActivationFault(len(srcs)) {
		// The latches lost a row address before sensing began; no cell or
		// buffer state changed, so the request can simply be reissued.
		return nil, fmt.Errorf("pim: activating %d rows: %w", len(srcs), ErrActivationFault)
	}

	// Sensing: one CmdSense per column group per micro-step.
	steps := SenseGroups(geo, bits) * op.SenseSteps()
	for i := 0; i < steps; i++ {
		cmds = append(cmds, ddr.Cmd{Kind: ddr.CmdSense, Addr: srcs[0]})
	}

	// Functional result through the SA model.
	if err := b.sa.ComputeWordsInto(req.Out, op, req.Rows); err != nil {
		return nil, err
	}
	if req.Inj != nil {
		req.Inj.FlipSensed(op, len(srcs), bits, req.Out)
	}

	// Energy: one bitline bias per sensed bit (the BL is shared by all open
	// rows), the cell read current of every open row folded into the
	// per-row SA adder, and LWL decode+latch switching per activation.
	fbits := float64(bits)
	n := float64(len(srcs))
	req.Energy.Add(energy.CellArray, fbits*e.ActPerBit)
	req.Energy.Add(energy.LWLDriver, n*e.LWLPerAct)
	req.Energy.Add(energy.SenseAmp,
		float64(op.SenseSteps())*fbits*(e.SensePerBit+n*e.SenseRowAdd))
	return cmds, nil
}

package backend

import (
	"fmt"
	"sort"
)

// LWL models the modified local-wordline driver of one subarray (Fig. 7):
// each driver gains a feedback transistor that latches its wordline high
// once its address is decoded, and a RESET transistor that forces every
// driver's input to ground. The controller therefore opens n rows by
// pulsing RESET and then issuing the n row addresses one command slot at a
// time; all selected wordlines stay at VDD until the next RESET.
type LWL struct {
	rowsPerSubarray int
	armed           bool // a RESET has been issued since the last batch
	latched         map[int]bool
}

// NewLWL builds the driver model for a subarray with the given row count.
func NewLWL(rowsPerSubarray int) *LWL {
	return &LWL{
		rowsPerSubarray: rowsPerSubarray,
		latched:         make(map[int]bool),
	}
}

// Reset pulses the RESET line: all latches clear and the driver is armed
// for a new multi-row activation.
func (l *LWL) Reset() {
	l.armed = true
	for k := range l.latched {
		delete(l.latched, k)
	}
}

// Latch decodes one row address; the selected wordline latches high. It is
// a protocol error to latch before a RESET (stale wordlines could still be
// open) or to latch the same row twice in one batch (the paper's ops are
// over distinct rows).
func (l *LWL) Latch(row int) error {
	if !l.armed {
		return fmt.Errorf("pim: LWL latch of row %d without a preceding RESET", row)
	}
	if row < 0 || row >= l.rowsPerSubarray {
		return fmt.Errorf("pim: LWL row %d out of range [0,%d)", row, l.rowsPerSubarray)
	}
	if l.latched[row] {
		return fmt.Errorf("pim: LWL row %d latched twice in one batch", row)
	}
	l.latched[row] = true
	return nil
}

// Open returns the currently latched (open) rows in ascending order.
func (l *LWL) Open() []int {
	rows := make([]int, 0, len(l.latched))
	for r := range l.latched {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	return rows
}

// OpenCount returns how many wordlines are currently high.
func (l *LWL) OpenCount() int { return len(l.latched) }

package backend

import (
	"strings"
	"testing"

	"pinatubo/internal/memarch"
)

func TestSenseGroups(t *testing.T) {
	geo := memarch.Default() // 2^19-bit rows, 32:1 mux → 2^14-bit sense width
	sw := geo.SenseWidthBits()
	cases := []struct{ bits, want int }{
		{1, 1},
		{sw, 1},
		{sw + 1, 2},
		{geo.RowBits(), geo.ColumnGroups()},
	}
	for _, c := range cases {
		if got := SenseGroups(geo, c.bits); got != c.want {
			t.Errorf("SenseGroups(%d bits) = %d, want %d", c.bits, got, c.want)
		}
	}
}

// TestErrActivationFaultMessage pins the sentinel's historical "pim:"
// message — errors.Is chains and operator-facing diagnostics in the
// resilience ladder depend on the value staying stable across the move
// into this package.
func TestErrActivationFaultMessage(t *testing.T) {
	if !strings.HasPrefix(ErrActivationFault.Error(), "pim: ") {
		t.Errorf("ErrActivationFault message %q lost its pim: prefix", ErrActivationFault)
	}
}

func TestLWLStateMachine(t *testing.T) {
	l := NewLWL(8)
	if err := l.Latch(1); err == nil {
		t.Error("Latch before Reset accepted")
	}
	l.Reset()
	if err := l.Latch(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Latch(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Latch(2); err == nil {
		t.Error("double latch of one row accepted")
	}
	if got := l.OpenCount(); got != 2 {
		t.Errorf("OpenCount = %d, want 2", got)
	}
	if got := l.Open(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Open() = %v, want [1 2]", got)
	}
	if err := l.Latch(99); err == nil {
		t.Error("row outside the subarray accepted")
	}
}

package sense

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pinatubo/internal/analog"
	"pinatubo/internal/nvm"
)

func newPCM(t *testing.T) *Array {
	t.Helper()
	a, err := NewArray(nvm.Get(nvm.PCM), analog.DefaultSenseConfig(), 16)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestOpString(t *testing.T) {
	want := map[Op]string{OpRead: "READ", OpAND: "AND", OpOR: "OR", OpXOR: "XOR", OpINV: "INV"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String()=%q want %q", int(op), op.String(), s)
		}
	}
	if !strings.HasPrefix(Op(9).String(), "Op(") {
		t.Error("unknown op string")
	}
}

func TestSenseSteps(t *testing.T) {
	if OpXOR.SenseSteps() != 2 {
		t.Error("XOR should take 2 micro-steps")
	}
	for _, op := range []Op{OpRead, OpAND, OpOR, OpINV} {
		if op.SenseSteps() != 1 {
			t.Errorf("%v should take 1 step", op)
		}
	}
}

func TestNewArrayRejectsDRAM(t *testing.T) {
	if _, err := NewArray(nvm.Get(nvm.DRAM), analog.DefaultSenseConfig(), 0); !errors.Is(err, analog.ErrNotResistive) {
		t.Fatalf("err=%v want ErrNotResistive", err)
	}
}

func TestMaxORRowsPerTech(t *testing.T) {
	cfg := analog.DefaultSenseConfig()
	pcm, _ := NewArray(nvm.Get(nvm.PCM), cfg, 0)
	if pcm.MaxORRows() != 128 {
		t.Errorf("PCM MaxORRows=%d want 128", pcm.MaxORRows())
	}
	stt, _ := NewArray(nvm.Get(nvm.STTMRAM), cfg, 0)
	if stt.MaxORRows() != 2 {
		t.Errorf("STT MaxORRows=%d want 2", stt.MaxORRows())
	}
}

func TestValidateOperands(t *testing.T) {
	a := newPCM(t)
	ok := []struct {
		op Op
		n  int
	}{
		{OpRead, 1}, {OpINV, 1}, {OpAND, 2}, {OpXOR, 2}, {OpOR, 2}, {OpOR, 128},
	}
	for _, c := range ok {
		if err := a.ValidateOperands(c.op, c.n); err != nil {
			t.Errorf("ValidateOperands(%v,%d) unexpected error: %v", c.op, c.n, err)
		}
	}
	bad := []struct {
		op Op
		n  int
	}{
		{OpRead, 2}, {OpINV, 2}, {OpAND, 3}, {OpAND, 1}, {OpXOR, 3},
		{OpOR, 1}, {OpOR, 129},
	}
	for _, c := range bad {
		if err := a.ValidateOperands(c.op, c.n); err == nil {
			t.Errorf("ValidateOperands(%v,%d) should fail", c.op, c.n)
		}
	}
	if err := a.ValidateOperands(Op(77), 1); err == nil {
		t.Error("unknown op should fail validation")
	}
}

func TestOperandErrorMessages(t *testing.T) {
	a := newPCM(t)
	err := a.ValidateOperands(OpAND, 3)
	var oe *OperandError
	if !errors.As(err, &oe) {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(err.Error(), "exactly 2") {
		t.Errorf("message %q should mention the fixed count", err)
	}
	err = a.ValidateOperands(OpOR, 500)
	if !errors.As(err, &oe) {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(err.Error(), "2..128") {
		t.Errorf("message %q should mention the range", err)
	}
}

func TestSTTRejectsMultiRowOR(t *testing.T) {
	// Paper: STT-MRAM is conservatively capped at 2-row operations.
	stt, err := NewArray(nvm.Get(nvm.STTMRAM), analog.DefaultSenseConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := stt.ValidateOperands(OpOR, 4); err == nil {
		t.Error("4-row OR on STT-MRAM should be rejected")
	}
	if err := stt.ValidateOperands(OpOR, 2); err != nil {
		t.Errorf("2-row OR on STT-MRAM should pass: %v", err)
	}
}

func TestComputeWordsTruthTables(t *testing.T) {
	a := newPCM(t)
	r0 := []uint64{0b1100}
	r1 := []uint64{0b1010}
	cases := []struct {
		op   Op
		rows [][]uint64
		want uint64
	}{
		{OpRead, [][]uint64{r0}, 0b1100},
		{OpINV, [][]uint64{r0}, ^uint64(0b1100)},
		{OpAND, [][]uint64{r0, r1}, 0b1000},
		{OpOR, [][]uint64{r0, r1}, 0b1110},
		{OpXOR, [][]uint64{r0, r1}, 0b0110},
	}
	for _, c := range cases {
		out, err := a.ComputeWords(c.op, c.rows)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if out[0] != c.want {
			t.Errorf("%v = %b want %b", c.op, out[0], c.want)
		}
	}
}

func TestComputeWordsMultiRowOR(t *testing.T) {
	a := newPCM(t)
	rows := make([][]uint64, 128)
	for i := range rows {
		rows[i] = []uint64{0, 0}
	}
	rows[17][0] = 1 << 5
	rows[99][1] = 1 << 63
	out, err := a.ComputeWords(OpOR, rows)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1<<5 || out[1] != 1<<63 {
		t.Errorf("128-row OR wrong: %x %x", out[0], out[1])
	}
}

func TestComputeWordsRowWidthMismatch(t *testing.T) {
	a := newPCM(t)
	if _, err := a.ComputeWords(OpAND, [][]uint64{{1, 2}, {3}}); err == nil {
		t.Error("width mismatch should error")
	}
}

func TestComputeWordsOperandCountError(t *testing.T) {
	a := newPCM(t)
	if _, err := a.ComputeWords(OpAND, [][]uint64{{1}, {2}, {3}}); err == nil {
		t.Error("3-operand AND should error")
	}
}

func TestAnalogCrossCheckRuns(t *testing.T) {
	// With checking enabled and correct modelling, random workloads must
	// pass without panicking.
	a := newPCM(t)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(127) + 2
		rows := make([][]uint64, n)
		for i := range rows {
			rows[i] = []uint64{rng.Uint64(), rng.Uint64()}
		}
		if _, err := a.ComputeWords(OpOR, rows); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParamsAccessor(t *testing.T) {
	a := newPCM(t)
	if a.Params().Tech != nvm.PCM {
		t.Error("Params() wrong tech")
	}
}

// Property: ComputeWords(OR) equals word-wise fold for arbitrary rows.
func TestPropORAgainstFold(t *testing.T) {
	a := newPCM(t)
	f := func(seed int64, nSeed, wSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSeed)%127 + 2
		w := int(wSeed)%8 + 1
		rows := make([][]uint64, n)
		for i := range rows {
			rows[i] = make([]uint64, w)
			for j := range rows[i] {
				rows[i][j] = rng.Uint64()
			}
		}
		out, err := a.ComputeWords(OpOR, rows)
		if err != nil {
			return false
		}
		for j := 0; j < w; j++ {
			want := uint64(0)
			for i := 0; i < n; i++ {
				want |= rows[i][j]
			}
			if out[j] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkComputeOR128x64Words(b *testing.B) {
	a, _ := NewArray(nvm.Get(nvm.PCM), analog.DefaultSenseConfig(), 0)
	rng := rand.New(rand.NewSource(1))
	rows := make([][]uint64, 128)
	for i := range rows {
		rows[i] = make([]uint64, 64)
		for j := range rows[i] {
			rows[i][j] = rng.Uint64()
		}
	}
	b.SetBytes(128 * 64 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ComputeWords(OpOR, rows); err != nil {
			b.Fatal(err)
		}
	}
}
